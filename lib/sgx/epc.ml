open Twine_sim

type page = int

(* --- enclave/page tag packing ---

   A global page identifier packs the owning enclave id above the page
   number. The encode/decode lives here, in one place, because the tag
   scheme is load-bearing at fleet scale: an enclave id spilling into the
   page bits would silently alias another enclave's pages (an EPC "hit"
   on memory the enclave never touched) and corrupt every per-enclave
   statistic derived from the tag. [page_of] is the only encoder and it
   bounds-checks both halves. *)

let page_no_bits = 40
let max_page_no = (1 lsl page_no_bits) - 1
let max_enclave_id = max_int lsr page_no_bits

let page_of ~enclave_id ~page_no =
  if page_no < 0 || page_no > max_page_no then
    invalid_arg "Epc.page_of: page_no out of range";
  if enclave_id < 0 || enclave_id > max_enclave_id then
    invalid_arg "Epc.page_of: enclave_id out of range";
  (enclave_id lsl page_no_bits) lor page_no

let enclave_of_page p = p lsr page_no_bits
let page_no_of_page p = p land max_page_no

type t = {
  resident : (page, unit) Lru.t;
  obs : Twine_obs.Obs.t option;
  mutable hit_count : int;
  mutable fault_count : int;
  mutable eviction_count : int;
  victim_counts : (int, int) Hashtbl.t;
      (* enclave id -> times one of its pages was evicted *)
  resident_counts : (int, int) Hashtbl.t;
      (* enclave id -> pages currently resident (sums to Lru.length) *)
  evicted_by : (page, int) Hashtbl.t;
      (* victim page -> enclave whose fault evicted it, kept only for
         cross-enclave evictions until the owner faults it back in *)
  mutable cross_refault_count : int;
  mutable on_cross_refault : (owner:int -> evictor:int -> unit) option;
}

let create ?obs ~limit_bytes () =
  let pages = limit_bytes / Costs.page_size in
  if pages < 1 then invalid_arg "Epc.create: limit below one page";
  {
    resident = Lru.create ~capacity:pages ();
    obs;
    hit_count = 0;
    fault_count = 0;
    eviction_count = 0;
    victim_counts = Hashtbl.create 16;
    resident_counts = Hashtbl.create 16;
    evicted_by = Hashtbl.create 64;
    cross_refault_count = 0;
    on_cross_refault = None;
  }

let limit_pages t = Lru.capacity t.resident
let resident_pages t = Lru.length t.resident

let record t name =
  match t.obs with Some o -> Twine_obs.Obs.inc o name | None -> ()

(* Timeline events for the paging that the aggregate counters summarise:
   each fault/eviction lands as an instant tagged with the enclave and
   page number, plus a resident-pages counter track. Hits stay off the
   timeline — they dominate event volume and carry no cliff signal. An
   eviction is tagged with the *victim* page (the one encrypted out),
   plus the enclave whose fault forced it, so cross-enclave interference
   is visible per event. *)
let trace_paging t ?by name page =
  match t.obs with
  | Some o ->
      let args =
        [ ("enclave", enclave_of_page page); ("page", page_no_of_page page) ]
        @ match by with Some e -> [ ("by", e) ] | None -> []
      in
      Twine_obs.Obs.emit o ~cat:"epc" ~args name;
      Twine_obs.Obs.emit_counter o ~cat:"epc" "epc.resident"
        [ ("pages", Lru.length t.resident) ]
  | None -> ()

let bump tbl key d =
  let n = try Hashtbl.find tbl key with Not_found -> 0 in
  Hashtbl.replace tbl key (n + d)

let note_victim t victim = bump t.victim_counts (enclave_of_page victim) 1

(* A refault of a page that a *different* enclave's fault pushed out is
   the per-request face of EPC interference: the victim enclave pays the
   re-encryption cost, the evictor caused it. The provenance entry lives
   from the eviction until the owner faults the page back in, so each
   cross-eviction is blamed at most once. *)
let note_refault t page =
  match Hashtbl.find_opt t.evicted_by page with
  | None -> ()
  | Some evictor ->
      Hashtbl.remove t.evicted_by page;
      t.cross_refault_count <- t.cross_refault_count + 1;
      record t "epc.refault.cross";
      (match t.on_cross_refault with
      | Some f -> f ~owner:(enclave_of_page page) ~evictor
      | None -> ())

let set_refault_hook t f = t.on_cross_refault <- f
let cross_refaults t = t.cross_refault_count

let touch t page =
  match Lru.find t.resident page with
  | Some () ->
      t.hit_count <- t.hit_count + 1;
      record t "epc.hit";
      `Hit
  | None ->
      t.fault_count <- t.fault_count + 1;
      record t "epc.fault";
      note_refault t page;
      bump t.resident_counts (enclave_of_page page) 1;
      let victim =
        match Lru.put t.resident page () with
        | Some (victim, ()) ->
            t.eviction_count <- t.eviction_count + 1;
            note_victim t victim;
            bump t.resident_counts (enclave_of_page victim) (-1);
            let by = enclave_of_page page in
            if by <> enclave_of_page victim then
              Hashtbl.replace t.evicted_by victim by;
            record t "epc.evict";
            trace_paging t ~by "epc.evict" victim;
            Some victim
        | None -> None
      in
      trace_paging t "epc.fault" page;
      `Fault victim

let release_enclave t enclave_id =
  let belongs (page, ()) = enclave_of_page page = enclave_id in
  let doomed = List.filter belongs (Lru.to_list t.resident) in
  List.iter
    (fun (page, ()) ->
      (match Lru.remove t.resident page with
      | Some () -> bump t.resident_counts enclave_id (-1)
      | None -> ());
      Hashtbl.remove t.evicted_by page)
    doomed;
  Hashtbl.remove t.resident_counts enclave_id;
  (* Provenance hygiene for destroy-then-relaunch fleets: drop every
     eviction-provenance entry that names the dead enclave on EITHER
     side. Victim-side entries for its already-evicted (non-resident)
     pages would leak forever — the owner can never fault them back in.
     Evictor-side entries would blame a destroyed enclave (or, worse, a
     later enclave reusing the id) when the surviving owner refaults. *)
  let stale =
    Hashtbl.fold
      (fun page evictor acc ->
        if enclave_of_page page = enclave_id || evictor = enclave_id then
          page :: acc
        else acc)
      t.evicted_by []
  in
  List.iter (Hashtbl.remove t.evicted_by) stale

let hits t = t.hit_count
let faults t = t.fault_count
let evictions t = t.eviction_count

let evictions_of t enclave_id =
  try Hashtbl.find t.victim_counts enclave_id with Not_found -> 0

let resident_of t enclave_id =
  try Hashtbl.find t.resident_counts enclave_id with Not_found -> 0
