open Twine_sim

type page = int

type t = {
  resident : (page, unit) Lru.t;
  obs : Twine_obs.Obs.t option;
  mutable hit_count : int;
  mutable fault_count : int;
  mutable eviction_count : int;
}

let create ?obs ~limit_bytes () =
  let pages = limit_bytes / Costs.page_size in
  if pages < 1 then invalid_arg "Epc.create: limit below one page";
  {
    resident = Lru.create ~capacity:pages ();
    obs;
    hit_count = 0;
    fault_count = 0;
    eviction_count = 0;
  }

let limit_pages t = Lru.capacity t.resident
let resident_pages t = Lru.length t.resident

let record t name =
  match t.obs with Some o -> Twine_obs.Obs.inc o name | None -> ()

(* Timeline events for the paging that the aggregate counters summarise:
   each fault/eviction lands as an instant tagged with the enclave and
   page number, plus a resident-pages counter track. Hits stay off the
   timeline — they dominate event volume and carry no cliff signal. *)
let trace_paging t name page =
  match t.obs with
  | Some o ->
      Twine_obs.Obs.emit o ~cat:"epc"
        ~args:
          [ ("enclave", page lsr 40); ("page", page land ((1 lsl 40) - 1)) ]
        name;
      Twine_obs.Obs.emit_counter o ~cat:"epc" "epc.resident"
        [ ("pages", Lru.length t.resident) ]
  | None -> ()

let touch t page =
  match Lru.find t.resident page with
  | Some () ->
      t.hit_count <- t.hit_count + 1;
      record t "epc.hit";
      `Hit
  | None ->
      t.fault_count <- t.fault_count + 1;
      record t "epc.fault";
      let evicted =
        match Lru.put t.resident page () with
        | Some _ ->
            t.eviction_count <- t.eviction_count + 1;
            record t "epc.evict";
            trace_paging t "epc.evict" page;
            true
        | None -> false
      in
      trace_paging t "epc.fault" page;
      `Fault evicted

let page_of ~enclave_id ~page_no = (enclave_id lsl 40) lor page_no

let release_enclave t enclave_id =
  let belongs (page, ()) = page lsr 40 = enclave_id in
  let doomed = List.filter belongs (Lru.to_list t.resident) in
  List.iter (fun (page, ()) -> ignore (Lru.remove t.resident page)) doomed

let hits t = t.hit_count
let faults t = t.fault_count
let evictions t = t.eviction_count
