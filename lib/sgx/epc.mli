(** Enclave Page Cache simulator.

    The EPC is a machine-wide pool of resident 4 KiB pages shared by all
    enclaves. When a page that is not resident is touched, the kernel
    evicts the least-recently-used resident page (encrypting it out) and
    loads the requested one — the dominant cost once an enclave's working
    set exceeds the EPC (paper §III-A, §V-D). Because the pool is shared,
    one enclave's fault can evict {e another} enclave's page; the trace
    events and {!evictions_of} attribute each eviction to the enclave
    that owned the victim page. *)

type t

type page = int
(** Global page identifier: [(enclave_id lsl 40) lor page_number].
    Encode with {!page_of} (bounds-checked), decode with
    {!enclave_of_page} / {!page_no_of_page}. *)

val page_of : enclave_id:int -> page_no:int -> page
(** The only encoder. @raise Invalid_argument when [page_no] exceeds 40
    bits or [enclave_id] would overflow into the page bits — a collision
    that would silently alias pages between enclaves at fleet scale. *)

val enclave_of_page : page -> int
val page_no_of_page : page -> int
val max_page_no : int
val max_enclave_id : int

val create : ?obs:Twine_obs.Obs.t -> limit_bytes:int -> unit -> t
(** @raise Invalid_argument if the limit is below one page. When [obs] is
    given, every touch records [epc.hit] / [epc.fault] / [epc.evict]. *)

val limit_pages : t -> int
val resident_pages : t -> int

val touch : t -> page -> [ `Hit | `Fault of page option ]
(** Access one page, promoting it; [`Fault victim] means it had to be
    brought in, with [victim = Some p] when the EPC was full and page
    [p] — possibly belonging to a different enclave — was encrypted out
    to make room (the expensive EWB path). *)

val release_enclave : t -> int -> unit
(** Drop all resident pages belonging to an enclave id (EREMOVE), its
    residency counter, and every eviction-provenance entry naming it as
    victim owner {e or} evictor — a destroyed enclave must never be
    blamed for (or credited with) future refaults, and victim-side
    entries for its evicted pages would otherwise leak forever. The
    historical {!evictions_of} count is kept: it describes the past. *)

val hits : t -> int
(** Total resident-page hits since creation. *)

val faults : t -> int
(** Total faults since creation. *)

val evictions : t -> int
(** Total pages evicted (encrypted out) to make room since creation. *)

val evictions_of : t -> int -> int
(** [evictions_of t id]: how many times one of enclave [id]'s pages was
    the eviction victim — the measure of cross-enclave EPC
    interference a shared fleet cares about. *)

val resident_of : t -> int -> int
(** Pages of enclave [id] currently resident. Sums to {!resident_pages}
    over the fleet; the serving simulator samples it per enclave as a
    residency time-series. *)

(** {2 Eviction provenance}

    When enclave A's fault evicts enclave B's page and B later touches
    that page again, B's refault is {e caused} by A. The EPC remembers
    the evictor of each cross-enclave victim page until the owner
    faults it back in, so the blame fires at most once per eviction. *)

val set_refault_hook : t -> (owner:int -> evictor:int -> unit) option -> unit
(** Install (or clear) a callback fired on each cross-enclave refault,
    with the page's owner and the enclave whose earlier fault evicted
    it. The serving fleet points this at the request currently being
    served, turning machine-level paging into per-request interference
    attribution. *)

val cross_refaults : t -> int
(** Total cross-enclave refaults since creation (also counted as the
    [epc.refault.cross] counter when [obs] is attached). *)
