(** Enclave Page Cache simulator.

    The EPC is a machine-wide pool of resident 4 KiB pages shared by all
    enclaves. When a page that is not resident is touched, the kernel
    evicts the least-recently-used resident page (encrypting it out) and
    loads the requested one — the dominant cost once an enclave's working
    set exceeds the EPC (paper §III-A, §V-D). *)

type t

type page = int
(** Global page identifier: [(enclave_id lsl 40) lor page_number]. *)

val create : ?obs:Twine_obs.Obs.t -> limit_bytes:int -> unit -> t
(** @raise Invalid_argument if the limit is below one page. When [obs] is
    given, every touch records [epc.hit] / [epc.fault] / [epc.evict]. *)

val limit_pages : t -> int
val resident_pages : t -> int

val touch : t -> page -> [ `Hit | `Fault of bool ]
(** Access one page, promoting it; [`Fault evicted] means it had to be
    brought in, with [evicted = true] when the EPC was full and another
    page was encrypted out to make room (the expensive EWB path). *)

val release_enclave : t -> int -> unit
(** Drop all resident pages belonging to an enclave id (EREMOVE). *)

val hits : t -> int
(** Total resident-page hits since creation. *)

val faults : t -> int
(** Total faults since creation. *)

val evictions : t -> int
(** Total pages evicted (encrypted out) to make room since creation. *)

val page_of : enclave_id:int -> page_no:int -> page
