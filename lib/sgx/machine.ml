open Twine_sim

type t = {
  clock : Clock.t;
  obs : Twine_obs.Obs.t;
  mutable costs : Costs.t;
  epc : Epc.t;
  cpu_key : string;
  mutable next_enclave_id : int;
}

let usable_epc_bytes = 93 * 1024 * 1024 (* paper §V-A: 128 MiB EPC, 93 usable *)

let create ?(costs = Costs.default) ?(epc_bytes = usable_epc_bytes)
    ?(seed = "twine-machine") () =
  let clock = Clock.create () in
  let obs = Twine_obs.Obs.create ~now:(fun () -> Clock.now_ns clock) () in
  {
    clock;
    obs;
    costs;
    epc = Epc.create ~obs ~limit_bytes:epc_bytes ();
    cpu_key = Twine_crypto.Sha256.digest ("cpu-fuse:" ^ seed);
    next_enclave_id = 1;
  }

let charge t component ns =
  Clock.advance t.clock ns;
  Twine_obs.Obs.observe t.obs component ns

let charge_cycles t component cycles = charge t component (Costs.cycles_ns t.costs cycles)

let now_ns t = Clock.now_ns t.clock

let obs t = t.obs

(* Create a flight recorder on the machine's virtual clock and hang it
   off the telemetry registry, so every instrumented layer starts
   emitting timeline events. *)
let attach_tracer ?capacity t =
  let tr = Twine_obs.Trace.create ?capacity ~now:(fun () -> Clock.now_ns t.clock) () in
  Twine_obs.Obs.set_tracer t.obs (Some tr);
  tr

let set_software_mode t = t.costs <- Costs.software_mode t.costs
