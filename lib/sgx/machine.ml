open Twine_sim

type t = {
  clock : Clock.t;
  obs : Twine_obs.Obs.t;
  ledger : Twine_obs.Ledger.t;
  mutable costs : Costs.t;
  mutable cycle_carry : float;
  epc : Epc.t;
  cpu_key : string;
  mutable next_enclave_id : int;
}

let usable_epc_bytes = 93 * 1024 * 1024 (* paper §V-A: 128 MiB EPC, 93 usable *)

(* Opt-in registry so a bench driver can audit every machine a section
   created (conservation check) without threading them through every
   helper's return value. Off by default: unit tests create throwaway
   machines by the hundred.

   Tracking is *scoped*: [with_tracked] snapshots the registry state and
   restores it on the way out (exception-safe), so one section can never
   see — and re-audit — machines created by an earlier section, and
   nested scopes each observe exactly their own machines. *)
let tracking = ref false
let tracked : t list ref = ref []

let with_tracked f =
  let prev_tracking = !tracking and prev_tracked = !tracked in
  tracking := true;
  tracked := [];
  Fun.protect
    ~finally:(fun () ->
      tracking := prev_tracking;
      tracked := prev_tracked)
    (fun () ->
      let r = f () in
      (r, List.rev !tracked))

let create ?(costs = Costs.default) ?(epc_bytes = usable_epc_bytes)
    ?(seed = "twine-machine") () =
  let clock = Clock.create () in
  let now () = Clock.now_ns clock in
  let obs = Twine_obs.Obs.create ~now () in
  let t =
    {
      clock;
      obs;
      ledger = Twine_obs.Ledger.create ~now ();
      costs;
      cycle_carry = 0.;
      epc = Epc.create ~obs ~limit_bytes:epc_bytes ();
      cpu_key = Twine_crypto.Sha256.digest ("cpu-fuse:" ^ seed);
      next_enclave_id = 1;
    }
  in
  if !tracking then tracked := t :: !tracked;
  t

(* The ONLY Clock.advance call site in the library: every nanosecond of
   virtual time passes through here, so booking each charge into the
   ledger makes the conservation audit (elapsed = booked) structural. *)
let charge t ?account component ns =
  Clock.advance t.clock ns;
  Twine_obs.Obs.observe t.obs component ns;
  let acct = match account with Some a -> a | None -> component in
  Twine_obs.Ledger.book t.ledger acct ns;
  match Twine_obs.Obs.tracer t.obs with
  | None -> ()
  | Some _ ->
      Twine_obs.Obs.emit_counter t.obs ~cat:"ledger" ("ledger." ^ acct)
        [ ("ns", Twine_obs.Ledger.ns t.ledger acct) ]

let charge_cycles t ?account component cycles =
  let ns, carry =
    Costs.cycles_ns_rem t.costs ~carry:t.cycle_carry cycles
  in
  t.cycle_carry <- carry;
  charge t ?account component ns

let now_ns t = Clock.now_ns t.clock

let obs t = t.obs

let ledger t = t.ledger

(* Create a flight recorder on the machine's virtual clock and hang it
   off the telemetry registry, so every instrumented layer starts
   emitting timeline events. *)
let attach_tracer ?capacity t =
  let tr = Twine_obs.Trace.create ?capacity ~now:(fun () -> Clock.now_ns t.clock) () in
  Twine_obs.Obs.set_tracer t.obs (Some tr);
  tr

let set_software_mode t = t.costs <- Costs.software_mode t.costs

(* Fault-plane wiring: every injection books into a [fault.<site>]
   ledger account on this machine (a [Delay] charges its virtual ns,
   everything else books a zero-ns event so the account still appears in
   reports) and lands in the trace ring, keeping the conservation audit
   balanced under injection. *)
let arm_faults t plan =
  Fault.arm plan
    ~now:(fun () -> Clock.now_ns t.clock)
    ~notify:(fun (inj : Fault.injection) ->
      let ns = match inj.Fault.action with Fault.Delay n -> n | _ -> 0 in
      charge t ~account:("fault." ^ inj.Fault.site) "fault.inject" ns;
      Twine_obs.Obs.inc t.obs "fault.injected";
      Twine_obs.Obs.emit t.obs ~cat:"fault"
        ~args:[ ("op", inj.Fault.op) ]
        ("fault." ^ inj.Fault.site))

let disarm_faults () = Fault.disarm ()
