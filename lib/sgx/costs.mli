(** SGX cost model.

    Constants are calibrated against the paper's own measurements on a
    Xeon E3-1275 v6 at 3.80 GHz (§V-A): enclave transitions of up to
    13,100 cycles round-trip, a 128 MiB EPC (93 MiB usable), and the §V-F
    observation that in-enclave memory clearing and cross-boundary buffer
    copies dominate protected-file reads. All values are overridable so
    benches can run ablations (e.g. Fig 6's software mode). *)

type t = {
  cycle_ns : float;  (** nanoseconds per CPU cycle (3.8 GHz -> 0.263) *)
  transition_cycles : int;
      (** cycles per enclave boundary crossing (half a round-trip) *)
  epc_fault_cycles : int;
      (** cycles to evict + reload one 4 KiB EPC page (EWB/ELDU + crypto) *)
  page_add_cycles : int;
      (** cycles per page for EADD+EEXTEND at enclave build time *)
  memset_ns_per_byte : float;
      (** clearing memory through the memory-encryption engine *)
  copy_ns_per_byte : float;  (** copying across the enclave boundary *)
  aes_ns_per_byte : float;  (** AES-GCM/CCM with AES-NI, per byte *)
  untrusted_io_ns_per_byte : float;  (** host-side POSIX read/write *)
  untrusted_io_base_ns : int;  (** host-side syscall fixed cost *)
  launch_base_ns : int;  (** ECREATE/EINIT fixed cost *)
}

val default : t
(** Hardware-mode model matching the paper's testbed. *)

val software_mode : t -> t
(** Fig 6's "SGX software mode": memory protection emulated — no EPC
    fault cost, no MEE surcharge on clears, cheap transitions. *)

val page_size : int
(** 4096, the SGX (and IPFS node) page granularity. *)

val cycles_ns : t -> int -> int
(** Convert a cycle count to (rounded) nanoseconds. Per-call rounding
    loses the sub-ns remainder; prefer {!cycles_ns_rem} when charges
    accumulate (as {!Machine.charge_cycles} does). *)

val cycles_ns_rem : t -> carry:float -> int -> int * float
(** [cycles_ns_rem t ~carry cycles] is [(ns, carry')]: the integer
    nanoseconds to charge now and the sub-ns remainder to feed into the
    next conversion, so repeated cycle charges lose no time (a run of
    1-cycle charges at 3.8 GHz books ~0.263 ns each instead of 0). *)

val bytes_ns : float -> int -> int
(** [bytes_ns per_byte n] rounds [per_byte *. n] to nanoseconds. *)
