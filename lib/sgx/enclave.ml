open Twine_crypto

type t = {
  machine : Machine.t;
  id : int;
  measurement : string;
  signer : string;
  mutable brk : int;  (* next free enclave address *)
  mutable committed : int;  (* committed bytes *)
  mutable depth : int;  (* ecall nesting depth *)
  mutable transition_count : int;
  mutable destroyed : bool;
  mutable poisoned : bool;
  drbg : Drbg.t;
}

exception Destroyed
exception Poisoned

let check t =
  if t.destroyed then raise Destroyed;
  if t.poisoned then raise Poisoned

(* Fault sites at the enclave boundary. [Fail] models a transient entry
   failure (out of TCS slots and friends) the caller may retry; [Crash]
   an asynchronous abort that loses the enclave — it stays poisoned, and
   every later entry raises [Poisoned] until the host tears it down. *)
let fault_gate t site =
  match Twine_sim.Fault.consult site with
  | None | Some (Twine_sim.Fault.Delay _) -> ()
  | Some Twine_sim.Fault.Fail -> raise (Twine_sim.Fault.Transient site)
  | Some
      ( Twine_sim.Fault.Crash | Twine_sim.Fault.Torn _ | Twine_sim.Fault.Corrupt
      | Twine_sim.Fault.Drop ) ->
      t.poisoned <- true;
      raise (Twine_sim.Fault.Crashed site)

let fault_pages (t : t) ~addr ~len =
  if len > 0 then begin
    let m = t.machine in
    let first = addr / Costs.page_size and last = (addr + len - 1) / Costs.page_size in
    for page_no = first to last do
      match Epc.touch m.epc (Epc.page_of ~enclave_id:t.id ~page_no) with
      | `Hit -> ()
      | `Fault victim ->
          (* same cost either way; the ledger splits plain page-ins from
             the capacity-pressure path that had to encrypt a page out *)
          let account =
            match victim with Some _ -> "epc.evict" | None -> "epc.fault"
          in
          Machine.charge_cycles m ~account "sgx.epc_fault"
            m.costs.epc_fault_cycles
    done
  end

(* Enclave-heap counter track beside the EPC residency track: committed
   bytes only ever change here, so the timeline shows heap growth
   aligned with the paging events it causes. No-op without a tracer. *)
let note_heap t =
  Twine_obs.Obs.emit_counter t.machine.Machine.obs ~cat:"sgx" "enclave.heap"
    [ ("bytes", t.committed) ]

let create machine ?(signer = "twine-vendor") ?(heap_bytes = 16 * 1024 * 1024)
    ~code () =
  let id = machine.Machine.next_enclave_id in
  machine.next_enclave_id <- id + 1;
  let t =
    {
      machine;
      id;
      measurement = Sha256.digest ("mrenclave:" ^ code);
      signer = Sha256.digest ("mrsigner:" ^ signer);
      brk = Costs.page_size;  (* keep address 0 unused *)
      committed = 0;
      depth = 0;
      transition_count = 0;
      destroyed = false;
      poisoned = false;
      drbg =
        Drbg.create ~personalization:"sgx-rdrand"
          ~seed:(machine.cpu_key ^ Sha256.digest code ^ string_of_int id)
          ();
    }
  in
  (* ECREATE, then EADD+EEXTEND for every code and heap page. *)
  let pages = (String.length code + heap_bytes + Costs.page_size - 1) / Costs.page_size in
  Machine.charge machine "sgx.launch" machine.costs.launch_base_ns;
  Machine.charge_cycles machine "sgx.launch" (pages * machine.costs.page_add_cycles);
  t.committed <- String.length code + heap_bytes;
  t.brk <- t.brk + String.length code;
  note_heap t;
  t

let machine t = t.machine
let id t = t.id
let measurement t = t.measurement
let signer t = t.signer
let size_bytes t = t.committed

let destroy t =
  if not t.destroyed then begin
    t.destroyed <- true;
    Epc.release_enclave t.machine.epc t.id
  end

(* One enclave-boundary transition (half an ECALL/OCALL round trip).
   The flight recorder gets an instant per transition so the timeline
   shows each boundary crossing, not just the enclosing span. *)
let crossing t ~account name =
  t.transition_count <- t.transition_count + 1;
  Twine_obs.Obs.emit t.machine.Machine.obs ~cat:"sgx"
    ~args:[ ("enclave", t.id); ("transition", t.transition_count) ]
    (name ^ ".crossing");
  Machine.charge_cycles t.machine ~account name
    t.machine.costs.transition_cycles

let ecall t ?(name = "sgx.ecall") f =
  check t;
  let account = "sgx.transition.ecall" in
  let obs = t.machine.Machine.obs in
  if t.depth = 0 then begin
    Twine_obs.Obs.inc obs "sgx.ecall";
    crossing t ~account name
  end;
  t.depth <- t.depth + 1;
  Fun.protect
    ~finally:(fun () ->
      t.depth <- t.depth - 1;
      if t.depth = 0 && not t.destroyed then crossing t ~account name)
    (fun () ->
      fault_gate t "enclave.ecall";
      Twine_obs.Obs.in_span obs name (fun () -> f t))

let ocall t ?(name = "sgx.ocall") f =
  check t;
  if t.depth = 0 then invalid_arg "Enclave.ocall: not inside an ecall";
  let account = "sgx.transition.ocall" in
  let obs = t.machine.Machine.obs in
  Twine_obs.Obs.inc obs "sgx.ocall";
  crossing t ~account name;
  Fun.protect
    ~finally:(fun () -> if not t.destroyed then crossing t ~account name)
    (fun () ->
      fault_gate t "enclave.ocall";
      Twine_obs.Obs.in_span obs name f)

let inside t = t.depth > 0
let transitions t = t.transition_count
let poisoned t = t.poisoned

(* The in-enclave allocator is costlier than a host malloc and its cost
   grows with the committed size (§IV-C observed above-linear behaviour
   when enlarging buffers); we charge a base cost plus a per-committed-MiB
   surcharge, then fault the fresh pages in. *)
let alloc t n =
  check t;
  if n < 0 then invalid_arg "Enclave.alloc: negative size";
  let m = t.machine in
  let committed_mib = t.committed / (1024 * 1024) in
  Machine.charge m "sgx.alloc" (300 + (20 * committed_mib));
  let addr = t.brk in
  t.brk <- t.brk + n;
  t.committed <- t.committed + n;
  note_heap t;
  fault_pages t ~addr ~len:n;
  addr

(* Reserve address space without committing/faulting pages (used for
   large virtual regions whose pages fault in on first touch). *)
let reserve t n =
  check t;
  if n < 0 then invalid_arg "Enclave.reserve: negative size";
  let addr = t.brk in
  t.brk <- t.brk + n;
  addr

let touch t ~addr ~len =
  check t;
  fault_pages t ~addr ~len

(* EAUG-style commit of pages inside a previously reserved region: charge
   the page-add cost, grow the committed size and fault the pages in,
   without moving brk (the region's addresses are already reserved). *)
let commit t ~addr ~len =
  check t;
  if len < 0 then invalid_arg "Enclave.commit: negative size";
  if len > 0 then begin
    let m = t.machine in
    let pages =
      ((addr + len - 1) / Costs.page_size) - (addr / Costs.page_size) + 1
    in
    Machine.charge_cycles m "sgx.commit" (pages * m.costs.page_add_cycles);
    t.committed <- t.committed + len;
    note_heap t;
    fault_pages t ~addr ~len
  end

let memset t ?(label = "sgx.memset") n =
  check t;
  Machine.charge t.machine ~account:"mee.memset" label
    (Costs.bytes_ns t.machine.costs.memset_ns_per_byte n)

let copy_in t ?(label = "sgx.copy_in") n =
  check t;
  Machine.charge t.machine ~account:"mee.copy" label
    (Costs.bytes_ns t.machine.costs.copy_ns_per_byte n)

let copy_out t ?(label = "sgx.copy_out") n =
  check t;
  Machine.charge t.machine ~account:"mee.copy" label
    (Costs.bytes_ns t.machine.costs.copy_ns_per_byte n)

let load_reserved t code =
  check t;
  let n = String.length code in
  copy_in t n;
  (* mprotect-style page permission flips on the reserved region *)
  Machine.charge t.machine "sgx.reserved"
    (200 * ((n + Costs.page_size - 1) / Costs.page_size));
  let addr = t.brk in
  t.brk <- t.brk + n;
  t.committed <- t.committed + n;
  note_heap t;
  fault_pages t ~addr ~len:n;
  addr

let random t n =
  check t;
  Drbg.generate t.drbg n

let drbg t = t.drbg
