type t = {
  cycle_ns : float;
  transition_cycles : int;
  epc_fault_cycles : int;
  page_add_cycles : int;
  memset_ns_per_byte : float;
  copy_ns_per_byte : float;
  aes_ns_per_byte : float;
  untrusted_io_ns_per_byte : float;
  untrusted_io_base_ns : int;
  launch_base_ns : int;
}

let default =
  {
    cycle_ns = 1.0 /. 3.8;
    transition_cycles = 6_550;      (* 13,100-cycle round trip, paper §III-A *)
    epc_fault_cycles = 40_000;
    page_add_cycles = 4_000;
    memset_ns_per_byte = 0.5;
    copy_ns_per_byte = 0.30;
    aes_ns_per_byte = 0.20;
    untrusted_io_ns_per_byte = 0.05;
    untrusted_io_base_ns = 800;
    launch_base_ns = 2_000_000;
  }

let software_mode c =
  {
    c with
    transition_cycles = 150;
    epc_fault_cycles = 0;
    page_add_cycles = 200;
    memset_ns_per_byte = 0.03;
    launch_base_ns = 200_000;
  }

let page_size = 4096

let cycles_ns t cycles = int_of_float (Float.round (t.cycle_ns *. float_of_int cycles))

(* Remainder-carrying conversion: at 3.8 GHz one cycle is 0.263 ns, so
   per-charge rounding would lose (or invent) up to half a nanosecond
   per call — enough that a run of 1-cycle charges rounds to zero time.
   Booking the integer floor and carrying the fraction into the next
   charge keeps the accumulated total exact, which the ledger's
   conservation audit depends on. *)
let cycles_ns_rem t ~carry cycles =
  let exact = (t.cycle_ns *. float_of_int cycles) +. carry in
  let ns = int_of_float (Float.floor exact) in
  (ns, exact -. float_of_int ns)

let bytes_ns per_byte n = int_of_float (Float.round (per_byte *. float_of_int n))
