(** Simulated SGX enclave: lifecycle, boundary crossings, in-enclave
    memory with EPC accounting, reserved memory for dynamically loaded
    code (paper §IV-B), and trusted randomness. *)

type t

exception Destroyed
(** Raised when using an enclave after {!destroy} — in real SGX, writing
    enclave memory from outside terminates the enclave (threat model
    §IV-A); we model the aftermath. *)

exception Poisoned
(** Raised when entering an enclave lost to an injected asynchronous
    abort (fault sites ["enclave.ecall"] / ["enclave.ocall"], action
    [Crash]). The enclave stays poisoned — in real SGX an aborted
    enclave cannot be re-entered; the host must destroy and relaunch.
    A [Fail] injection at the same sites instead raises
    [Twine_sim.Fault.Transient] (a retryable entry failure) and leaves
    the enclave usable. *)

val create :
  Machine.t -> ?signer:string -> ?heap_bytes:int -> code:string -> unit -> t
(** Build an enclave whose identity (MRENCLAVE) is the SHA-256 of [code].
    Charges ECREATE + one EADD/EEXTEND per code and heap page, so launch
    time is proportional to enclave size — the effect behind Table IIIa's
    launch row. *)

val machine : t -> Machine.t
val id : t -> int
val measurement : t -> string
(** 32-byte MRENCLAVE. *)

val signer : t -> string
(** 32-byte MRSIGNER (hash of the signing identity). *)

val size_bytes : t -> int
(** Committed memory: code + heap + reserved pages. *)

val destroy : t -> unit

(* Boundary crossings *)

val ecall : t -> ?name:string -> (t -> 'a) -> 'a
(** Enter the enclave, run the function inside, and leave; charges two
    boundary crossings. Nested calls are allowed and charge nothing (only
    the outermost crossing pays). Counted as [sgx.ecall] and traced as a
    telemetry span named [name] on the machine's registry. *)

val ocall : t -> ?name:string -> (unit -> 'a) -> 'a
(** Call out of the enclave from trusted code; charges a round trip.
    Counted as [sgx.ocall] and traced as a span named [name].
    @raise Invalid_argument if not currently inside an [ecall]. *)

val inside : t -> bool
val transitions : t -> int
(** Count of one-way boundary crossings so far. *)

val poisoned : t -> bool
(** True once an injected abort has lost the enclave (see {!Poisoned}). *)

(* Trusted memory *)

val alloc : t -> int -> int
(** Reserve [n] bytes of enclave heap; returns the base address. Charges
    the (above-linear, §IV-C) in-enclave allocator cost and faults the
    new pages in. *)

val reserve : t -> int -> int
(** Reserve address space without committing pages; pages fault in (and
    count toward EPC pressure) on first {!touch}. *)

val touch : t -> addr:int -> len:int -> unit
(** Account an access to enclave memory: every 4 KiB page covered is
    touched in the EPC, charging a fault where non-resident. *)

val commit : t -> addr:int -> len:int -> unit
(** EAUG-style commit of pages inside a previously {!reserve}d region:
    charges the page-add cost, grows the committed size and faults the
    pages in, without moving the allocation cursor. Used to account linear
    memory grown by [memory.grow] after the region was set up. *)

val memset : t -> ?label:string -> int -> unit
(** Charge clearing [n] bytes of enclave memory (MEE write cost). The
    label names the meter component (default ["sgx.memset"]). *)

val copy_in : t -> ?label:string -> int -> unit
(** Charge copying [n] bytes from untrusted to trusted memory. *)

val copy_out : t -> ?label:string -> int -> unit

val load_reserved : t -> string -> int
(** Map code into reserved memory (§IV-B), returning its base address.
    Charges the copy plus page-permission management. *)

val random : t -> int -> string
(** Trusted in-enclave randomness (deterministic per enclave identity). *)

val drbg : t -> Twine_crypto.Drbg.t
