(** A simulated SGX-capable machine: virtual clock, cost model, EPC, the
    fused CPU secret from which sealing and attestation keys derive, and
    a machine-wide telemetry registry for time-breakdown experiments. *)

type t = {
  clock : Twine_sim.Clock.t;
  obs : Twine_obs.Obs.t;
      (** telemetry registry (counters/histograms/spans, optional flight
          recorder) on the machine's virtual clock; every layer of the
          stack records into it *)
  ledger : Twine_obs.Ledger.t;
      (** cycle ledger on the same clock: every {!charge} books here, so
          [Ledger.audit] proves booked totals equal elapsed virtual time *)
  mutable costs : Costs.t;
  mutable cycle_carry : float;
      (** sub-ns remainder carried between {!charge_cycles} calls *)
  epc : Epc.t;
  cpu_key : string;  (** 32-byte fused secret (never leaves the package) *)
  mutable next_enclave_id : int;
}

val create : ?costs:Costs.t -> ?epc_bytes:int -> ?seed:string -> unit -> t
(** Default EPC is the paper's usable 93 MiB. [seed] makes the fused key
    (and hence all derived randomness) deterministic. *)

val charge : t -> ?account:string -> string -> int -> unit
(** Advance the clock by [ns], record it in the telemetry cost histogram
    of the named component, and book it into the machine ledger under
    [account] (default: the component name). This is the only place
    virtual time advances, so the ledger's conservation audit holds by
    construction. When a tracer is attached, also emits a
    [ledger.<account>] counter track with the account's running total. *)

val charge_cycles : t -> ?account:string -> string -> int -> unit
(** Like {!charge} but in CPU cycles, converting via
    {!Costs.cycles_ns_rem} with a per-machine carry so sub-ns remainders
    accumulate instead of being lost to rounding. *)

val now_ns : t -> int

val obs : t -> Twine_obs.Obs.t

val ledger : t -> Twine_obs.Ledger.t

val with_tracked : (unit -> 'a) -> 'a * t list
(** [with_tracked f] runs [f] with machine tracking enabled and returns
    its result together with exactly the machines created during the
    call, in creation order. The registry state is snapshotted and
    restored on exit (also on exceptions), so scopes compose: a bench
    section can never re-audit machines created by an earlier section,
    and a nested scope observes only its own machines. *)

val attach_tracer : ?capacity:int -> t -> Twine_obs.Trace.t
(** Create a flight recorder on the machine's virtual clock, attach it
    to the registry and return it; from here on every instrumented
    layer emits timeline events (export with {!Twine_obs.Trace_export}). *)

val set_software_mode : t -> unit
(** Switch the cost model to Fig 6's SGX software (simulation) mode. *)

val arm_faults : t -> Twine_sim.Fault.plan -> unit
(** Arm a fault plan with its injections booked on this machine: each
    injected fault lands in a [fault.<site>] ledger account (so the
    conservation audit still balances — [Delay] faults charge their
    virtual ns, all others book a zero-ns event), bumps the
    [fault.injected] counter and emits a trace instant when a flight
    recorder is attached. The machine's virtual clock is installed as
    the plan's time source, so rules with [from_ns]/[until_ns]
    activation windows gate on this machine's virtual time. Disarm with
    {!disarm_faults}. *)

val disarm_faults : unit -> unit
(** Disarm the global fault plan (idempotent). *)
