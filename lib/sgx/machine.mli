(** A simulated SGX-capable machine: virtual clock, cost model, EPC, the
    fused CPU secret from which sealing and attestation keys derive, and a
    machine-wide meter for time-breakdown experiments. *)

type t = {
  clock : Twine_sim.Clock.t;
  meter : Twine_sim.Meter.t;
  obs : Twine_obs.Obs.t;
      (** telemetry registry (counters/histograms/spans) on the machine's
          virtual clock; every layer of the stack records into it *)
  mutable costs : Costs.t;
  epc : Epc.t;
  cpu_key : string;  (** 32-byte fused secret (never leaves the package) *)
  mutable next_enclave_id : int;
}

val create : ?costs:Costs.t -> ?epc_bytes:int -> ?seed:string -> unit -> t
(** Default EPC is the paper's usable 93 MiB. [seed] makes the fused key
    (and hence all derived randomness) deterministic. *)

val charge : t -> string -> int -> unit
(** Advance the clock by [ns] and record it against a meter component and
    the telemetry cost histogram of the same name. *)

val charge_cycles : t -> string -> int -> unit

val now_ns : t -> int

val obs : t -> Twine_obs.Obs.t

val set_software_mode : t -> unit
(** Switch the cost model to Fig 6's SGX software (simulation) mode. *)
