(** A simulated SGX-capable machine: virtual clock, cost model, EPC, the
    fused CPU secret from which sealing and attestation keys derive, and
    a machine-wide telemetry registry for time-breakdown experiments. *)

type t = {
  clock : Twine_sim.Clock.t;
  obs : Twine_obs.Obs.t;
      (** telemetry registry (counters/histograms/spans, optional flight
          recorder) on the machine's virtual clock; every layer of the
          stack records into it *)
  mutable costs : Costs.t;
  epc : Epc.t;
  cpu_key : string;  (** 32-byte fused secret (never leaves the package) *)
  mutable next_enclave_id : int;
}

val create : ?costs:Costs.t -> ?epc_bytes:int -> ?seed:string -> unit -> t
(** Default EPC is the paper's usable 93 MiB. [seed] makes the fused key
    (and hence all derived randomness) deterministic. *)

val charge : t -> string -> int -> unit
(** Advance the clock by [ns] and record it in the telemetry cost
    histogram of the named component. *)

val charge_cycles : t -> string -> int -> unit

val now_ns : t -> int

val obs : t -> Twine_obs.Obs.t

val attach_tracer : ?capacity:int -> t -> Twine_obs.Trace.t
(** Create a flight recorder on the machine's virtual clock, attach it
    to the registry and return it; from here on every instrumented
    layer emits timeline events (export with {!Twine_obs.Trace_export}). *)

val set_software_mode : t -> unit
(** Switch the cost model to Fig 6's SGX software (simulation) mode. *)
