(** Untrusted backing store for protected files — the host file system as
    seen from outside the enclave. Ciphertext only ever lands here. *)

type t

val memory : unit -> t
(** In-memory store (used by tests and benches for determinism). *)

val directory : string -> t
(** Store files under a real directory on the host file system. Path
    separators, leading dots and the empty key are encoded, so keys
    (including ["."], [".."] and [""]) cannot escape or name the root. *)

val logged : Twine_sim.Crashpoint.log -> t -> t
(** Record every mutation (write/truncate/delete) of the wrapped store
    into a crash-point op log, for prefix-replay crash exploration. *)

val read : t -> string -> pos:int -> len:int -> string
(** Short reads at EOF return fewer bytes; a missing file reads as empty.
    Fault site ["backing.read"]: injected faults shorten, corrupt or
    fail the read. *)

val write : t -> string -> pos:int -> string -> unit
(** Extends the file with zero bytes if [pos] is past its current end.
    Fault site ["backing.write"]: injected faults tear, corrupt, drop
    or fail the write. *)

val size : t -> string -> int option
val exists : t -> string -> bool
val delete : t -> string -> bool
val truncate : t -> string -> int -> unit
val list : t -> string list
