(** Intel Protected File System (IPFS) simulation — paper §IV-D/§IV-E/§V-F.

    A protected file is a sequence of 4 KiB plaintext nodes, each sealed
    with authenticated encryption (per-node IV and tag, with the node
    index as associated data so ciphertext nodes cannot be swapped within
    a file). Node IVs/tags live in an encrypted metadata header whose own
    tag acts as the Merkle root. Decrypted nodes are kept in an in-enclave
    LRU cache. Two variants are provided:

    - {b Stock}: Intel's behaviour — node structures are cleared (memset)
      when added to the cache and plaintext cleared again on eviction, and
      the ciphertext is copied from untrusted memory into the enclave
      before AES-GCM decryption (encrypt-then-MAC requires authenticated
      data to be under enclave control).
    - {b Optimised}: the paper's §V-F proposal — no clearing, and AES-CCM
      (MAC-then-encrypt) decrypting straight from the untrusted buffer,
      removing the cross-boundary copy. Up to 4.1× faster random reads.

    Commits are crash-atomic: the metadata header alternates between two
    generation-numbered slots (write-new-then-switch), and in-place node
    overwrites are preceded by a ciphertext pre-image journal keyed by
    the committed generation. {!open_file} recovers: it picks the newest
    authenticated header slot and, when a journal for that generation
    survives (the crash hit mid-commit), rolls the pre-images back — so
    an interrupted {!flush} always yields the previous committed state,
    never a half-written one and never a spurious authentication
    failure. Recovery work is charged to the [ipfs.recovery] ledger
    account, journal maintenance to [ipfs.journal].

    Known limitations faithfully reproduced: no rollback protection (an
    attacker replacing both data and metadata files with an older
    consistent pair is undetected) and metadata leakage (file size to node
    granularity, access patterns). *)

type variant = Stock | Optimized

type t
(** A protected file system instance bound to one enclave and one
    untrusted backing store. *)

type file

exception Integrity_violation of string
(** A node or header failed authentication. *)

val create :
  Twine_sgx.Enclave.t ->
  Backing.t ->
  ?variant:variant ->
  ?cache_nodes:int ->
  unit ->
  t
(** [cache_nodes] is the LRU capacity in decrypted nodes (default 48, the
    Intel SDK default). *)

val variant : t -> variant
val enclave : t -> Twine_sgx.Enclave.t

val open_file :
  t -> ?key:string -> mode:[ `Rdonly | `Rdwr | `Trunc ] -> string -> file
(** Opens (creating under [`Rdwr]/[`Trunc]) a protected file. [key] is the
    non-standard explicit-key open (§IV-E); by default the key is derived
    from the enclave sealing identity and the path, so the file can only
    be reopened by the same enclave on the same CPU.
    Runs crash recovery first (see above); a failed open leaves the
    enclave and the instance untouched — no cache memory is allocated
    and no state registered until the header is read and verified.
    @raise Sys_error if [`Rdonly] and the file does not exist.
    @raise Integrity_violation if the header fails authentication with
    no evidence of an interrupted commit, or the supplied key is
    wrong. *)

val read : file -> Bytes.t -> off:int -> len:int -> int
(** Read from the current position; returns bytes read (0 at EOF). *)

val write : file -> string -> int
(** Write at the current position, extending the file as needed; returns
    the number of bytes written (always the full length). *)

val seek : file -> offset:int -> whence:[ `Set | `Cur | `End ] -> (int, string) result
(** Like [sgx_fseek]: refuses to move beyond the end of the file (the
    quirk §IV-E works around in the WASI layer). *)

val tell : file -> int
val file_size : file -> int

val flush : file -> unit
(** Write back dirty nodes and commit the metadata header atomically:
    after a crash anywhere inside [flush], reopening yields either the
    previous committed state or (once the new header slot is complete)
    the new one. *)

val close : file -> unit
(** Flush and drop cached nodes. Idempotent. *)

val delete : t -> string -> bool
(** Remove a protected file (data + both metadata slots + journal) from
    the backing store. Both slots are tombstoned before removal, so a
    crash mid-delete reads as "file absent", never as a stale older
    generation. *)

val exists : t -> string -> bool

val cache_stats : t -> int * int
(** (hits, misses) across all files of this instance. *)
