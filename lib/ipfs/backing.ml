open Twine_sim

type mem_file = { mutable data : Bytes.t; mutable len : int }

type impl =
  | Memory of (string, mem_file) Hashtbl.t
  | Directory of string
  | Logged of Crashpoint.log * impl

type t = impl

let memory () = Memory (Hashtbl.create 16)

let directory root =
  if not (Sys.file_exists root) then Unix.mkdir root 0o755;
  Directory root

let logged log inner = Logged (log, inner)

(* Keys may contain '/'; encode them so everything stays flat in [root].
   A leading '.' is encoded too, so the keys "." and ".." (which would
   name the root itself or escape it) and "" (which would vanish) map to
   ordinary files. The scheme stays injective: '%' is itself escaped, so
   no plain key can collide with an encoded one. *)
let encode_key key =
  if key = "" then "%empty"
  else begin
    let b = Buffer.create (String.length key) in
    String.iteri
      (fun i c ->
        match c with
        | '/' -> Buffer.add_string b "%2f"
        | '%' -> Buffer.add_string b "%25"
        | '.' when i = 0 -> Buffer.add_string b "%2e"
        | c -> Buffer.add_char b c)
      key;
    Buffer.contents b
  end

let host_path root key = Filename.concat root (encode_key key)

let mem_get tbl key =
  match Hashtbl.find_opt tbl key with
  | Some f -> f
  | None ->
      let f = { data = Bytes.create 4096; len = 0 } in
      Hashtbl.add tbl key f;
      f

let mem_ensure f n =
  if n > Bytes.length f.data then begin
    let cap = max n (2 * Bytes.length f.data) in
    let grown = Bytes.make cap '\000' in
    Bytes.blit f.data 0 grown 0 f.len;
    f.data <- grown
  end;
  (* Zero any gap between the current end and the write position. *)
  if n > f.len then Bytes.fill f.data f.len (n - f.len) '\000'

let rec raw_read t key ~pos ~len =
  match t with
  | Logged (_, inner) -> raw_read inner key ~pos ~len
  | Memory tbl -> (
      match Hashtbl.find_opt tbl key with
      | None -> ""
      | Some f ->
          if pos >= f.len then ""
          else Bytes.sub_string f.data pos (min len (f.len - pos)))
  | Directory root -> (
      let path = host_path root key in
      if not (Sys.file_exists path) then ""
      else begin
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () ->
            let n = in_channel_length ic in
            if pos >= n then ""
            else begin
              seek_in ic pos;
              really_input_string ic (min len (n - pos))
            end)
      end)

let read t key ~pos ~len =
  if pos < 0 || len < 0 then invalid_arg "Backing.read";
  let data = raw_read t key ~pos ~len in
  match Fault.consult "backing.read" with
  | None -> data
  | Some Fault.Fail -> raise (Fault.Transient ("backing.read " ^ key))
  | Some Fault.Crash -> raise (Fault.Crashed ("backing.read " ^ key))
  | Some Fault.Drop -> ""
  | Some ((Fault.Torn _ | Fault.Corrupt) as a) -> Fault.mutilate a data
  | Some (Fault.Delay _) -> data

let rec raw_write t key ~pos data =
  match t with
  | Logged (log, inner) ->
      Crashpoint.record log (Crashpoint.Write { file = key; pos; data });
      raw_write inner key ~pos data
  | Memory tbl ->
      let f = mem_get tbl key in
      let endpos = pos + String.length data in
      mem_ensure f endpos;
      Bytes.blit_string data 0 f.data pos (String.length data);
      f.len <- max f.len endpos
  | Directory root ->
      let path = host_path root key in
      let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644 in
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () ->
          ignore (Unix.lseek fd pos Unix.SEEK_SET);
          let b = Bytes.unsafe_of_string data in
          let rec loop off remaining =
            if remaining > 0 then begin
              let n = Unix.write fd b off remaining in
              loop (off + n) (remaining - n)
            end
          in
          loop 0 (Bytes.length b))

let write t key ~pos data =
  if pos < 0 then invalid_arg "Backing.write";
  match Fault.consult "backing.write" with
  | None -> raw_write t key ~pos data
  | Some Fault.Fail -> raise (Fault.Transient ("backing.write " ^ key))
  | Some Fault.Crash -> raise (Fault.Crashed ("backing.write " ^ key))
  | Some Fault.Drop -> ()
  | Some ((Fault.Torn _ | Fault.Corrupt) as a) ->
      raw_write t key ~pos (Fault.mutilate a data)
  | Some (Fault.Delay _) -> raw_write t key ~pos data

let rec size t key =
  match t with
  | Logged (_, inner) -> size inner key
  | Memory tbl -> Option.map (fun f -> f.len) (Hashtbl.find_opt tbl key)
  | Directory root ->
      let path = host_path root key in
      if Sys.file_exists path then Some (Unix.stat path).Unix.st_size else None

let exists t key = size t key <> None

let rec delete t key =
  match t with
  | Logged (log, inner) ->
      Crashpoint.record log (Crashpoint.Delete { file = key });
      delete inner key
  | Memory tbl ->
      let existed = Hashtbl.mem tbl key in
      Hashtbl.remove tbl key;
      existed
  | Directory root ->
      let path = host_path root key in
      if Sys.file_exists path then begin
        Sys.remove path;
        true
      end
      else false

let rec truncate t key n =
  match t with
  | Logged (log, inner) ->
      Crashpoint.record log (Crashpoint.Truncate { file = key; size = n });
      truncate inner key n
  | Memory tbl -> (
      match Hashtbl.find_opt tbl key with
      | None -> ()
      | Some f -> if f.len > n then f.len <- n)
  | Directory root ->
      let path = host_path root key in
      if Sys.file_exists path then Unix.truncate path n

let rec list t =
  match t with
  | Logged (_, inner) -> list inner
  | Memory tbl -> Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort String.compare
  | Directory root -> Array.to_list (Sys.readdir root) |> List.sort String.compare
