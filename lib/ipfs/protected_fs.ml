open Twine_crypto
open Twine_sgx

type variant = Stock | Optimized

let node_size = 4096
let iv_len = 12
let tag_len = 16
let magic = "PFS1"

(* Per-node sealing material kept in the encrypted header. *)
type entry = { mutable iv : string; mutable tag : string; mutable present : bool }

type node = { plaintext : Bytes.t; mutable dirty : bool; slot : int }

type t = {
  enclave : Enclave.t;
  backing : Backing.t;
  variant : variant;
  cache_nodes : int;
  mutable hits : int;
  mutable misses : int;
}

type file = {
  fs : t;
  path : string;
  gcm_key : Gcm.key;  (* stock cipher *)
  aes_key : Aes.key;  (* optimised (CCM) cipher *)
  header_key : Gcm.key;
  mutable size : int;
  mutable pos : int;
  mutable entries : entry array;
  cache : (int, node) Twine_sim.Lru.t;
  cache_base : int;  (* enclave address of the node cache region *)
  mutable closed : bool;
}

exception Integrity_violation of string

let create enclave backing ?(variant = Stock) ?(cache_nodes = 48) () =
  if cache_nodes < 1 then invalid_arg "Protected_fs.create: cache_nodes < 1";
  { enclave; backing; variant; cache_nodes; hits = 0; misses = 0 }

let variant t = t.variant
let enclave t = t.enclave

let meta_path path = path ^ ".pfsmeta"

let machine t = Enclave.machine t.enclave
let obs t = (machine t).Machine.obs

(* Run [f] inside the enclave, entering via an ECALL when the caller is
   still outside (standalone library use). *)
let in_enclave t f =
  if Enclave.inside t.enclave then f () else Enclave.ecall t.enclave (fun _ -> f ())

let charge_untrusted_io t label n =
  let m = machine t in
  Machine.charge m ~account:"ipfs.io" label
    (m.costs.untrusted_io_base_ns + Costs.bytes_ns m.costs.untrusted_io_ns_per_byte n)

let charge_crypto t n =
  let m = machine t in
  Twine_obs.Obs.add m.Machine.obs "ipfs.crypto.bytes" n;
  Twine_obs.Obs.emit m.Machine.obs ~cat:"ipfs" ~args:[ ("bytes", n) ] "ipfs.crypto";
  Machine.charge m "ipfs.crypto" (Costs.bytes_ns m.costs.aes_ns_per_byte n)

let node_aad idx = "node:" ^ string_of_int idx

(* --- Header (de)serialisation --- *)

let put_u32 b v =
  for i = 0 to 3 do Buffer.add_char b (Char.chr ((v lsr (8 * i)) land 0xff)) done

let put_u64 b v =
  for i = 0 to 7 do Buffer.add_char b (Char.chr ((v lsr (8 * i)) land 0xff)) done

let get_u32 s off =
  let v = ref 0 in
  for i = 3 downto 0 do v := (!v lsl 8) lor Char.code s.[off + i] done;
  !v

let get_u64 s off =
  let v = ref 0 in
  for i = 7 downto 0 do v := (!v lsl 8) lor Char.code s.[off + i] done;
  !v

let serialize_header file =
  let b = Buffer.create (16 + (Array.length file.entries * (iv_len + tag_len + 1))) in
  put_u64 b file.size;
  put_u32 b (Array.length file.entries);
  Array.iter
    (fun e ->
      Buffer.add_char b (if e.present then '\001' else '\000');
      Buffer.add_string b (if e.present then e.iv else String.make iv_len '\000');
      Buffer.add_string b (if e.present then e.tag else String.make tag_len '\000'))
    file.entries;
  Buffer.contents b

let deserialize_header s =
  if String.length s < 12 then raise (Integrity_violation "header too short");
  let size = get_u64 s 0 in
  let count = get_u32 s 8 in
  let stride = 1 + iv_len + tag_len in
  if String.length s < 12 + (count * stride) then
    raise (Integrity_violation "header truncated");
  let entries =
    Array.init count (fun i ->
        let off = 12 + (i * stride) in
        {
          present = s.[off] = '\001';
          iv = String.sub s (off + 1) iv_len;
          tag = String.sub s (off + 1 + iv_len) tag_len;
        })
  in
  (size, entries)

(* --- Node encryption --- *)

let encrypt_node file idx plaintext =
  let iv = Enclave.random file.fs.enclave iv_len in
  let aad = node_aad idx in
  let ct, tag =
    match file.fs.variant with
    | Stock -> Gcm.encrypt file.gcm_key ~iv ~aad plaintext
    | Optimized -> Ccm.encrypt file.aes_key ~nonce:iv ~aad plaintext
  in
  (iv, ct, tag)

let decrypt_node file idx ~iv ~tag ciphertext =
  let aad = node_aad idx in
  let res =
    match file.fs.variant with
    | Stock -> Gcm.decrypt file.gcm_key ~iv ~aad ~tag ciphertext
    | Optimized -> Ccm.decrypt file.aes_key ~nonce:iv ~aad ~tag ciphertext
  in
  match res with
  | Some pt -> pt
  | None ->
      raise (Integrity_violation (Printf.sprintf "%s: node %d" file.path idx))

(* --- Entries growth --- *)

let ensure_entry file idx =
  let n = Array.length file.entries in
  if idx >= n then begin
    let grown =
      Array.init (max (idx + 1) (max 4 (2 * n))) (fun i ->
          if i < n then file.entries.(i)
          else { iv = ""; tag = ""; present = false })
    in
    file.entries <- grown
  end;
  file.entries.(idx)

(* --- Cache management with cost accounting --- *)

let slot_addr file slot = file.cache_base + (slot * 2 * node_size)

let write_back file idx (node : node) =
  let fs = file.fs in
  let pt = Bytes.to_string node.plaintext in
  charge_crypto fs node_size;
  let iv, ct, tag = encrypt_node file idx pt in
  let e = ensure_entry file idx in
  e.iv <- iv;
  e.tag <- tag;
  e.present <- true;
  Enclave.copy_out fs.enclave ~label:"ipfs.write" node_size;
  Enclave.ocall fs.enclave ~name:"ipfs.ocall" (fun () ->
      charge_untrusted_io fs "ipfs.write" node_size;
      Backing.write fs.backing file.path ~pos:(idx * node_size) ct);
  node.dirty <- false

let evict file (idx, node) =
  if node.dirty then write_back file idx node;
  (* Stock IPFS clears the plaintext buffer of dropped nodes. *)
  if file.fs.variant = Stock then
    Enclave.memset file.fs.enclave ~label:"ipfs.memset" node_size

(* Load node [idx] into the cache, returning it. *)
let load_node file idx =
  let fs = file.fs in
  match Twine_sim.Lru.find file.cache idx with
  | Some node ->
      fs.hits <- fs.hits + 1;
      Twine_obs.Obs.inc (obs fs) "ipfs.cache.hit";
      Twine_obs.Obs.emit (obs fs) ~cat:"ipfs" ~args:[ ("node", idx) ] "ipfs.cache.hit";
      Enclave.touch fs.enclave ~addr:(slot_addr file node.slot) ~len:node_size;
      node
  | None ->
      fs.misses <- fs.misses + 1;
      Twine_obs.Obs.inc (obs fs) "ipfs.cache.miss";
      Twine_obs.Obs.emit (obs fs) ~cat:"ipfs" ~args:[ ("node", idx) ] "ipfs.cache.miss";
      let slot = idx mod fs.cache_nodes in
      (* Stock IPFS zeroes the whole node structure (two 4 KiB buffers
         plus metadata) before filling it (§V-F). *)
      if fs.variant = Stock then
        Enclave.memset fs.enclave ~label:"ipfs.memset" ((2 * node_size) + 64);
      let e = if idx < Array.length file.entries then file.entries.(idx) else
          { iv = ""; tag = ""; present = false } in
      let plaintext =
        if e.present then begin
          let ct =
            Enclave.ocall fs.enclave ~name:"ipfs.ocall" (fun () ->
                charge_untrusted_io fs "ipfs.read" node_size;
                Backing.read fs.backing file.path ~pos:(idx * node_size) ~len:node_size)
          in
          if String.length ct <> node_size then
            raise (Integrity_violation (Printf.sprintf "%s: node %d missing" file.path idx));
          (* Stock: the edge routine copies the ciphertext into enclave
             memory before GCM decryption; optimised CCM decrypts straight
             from the untrusted buffer. *)
          if fs.variant = Stock then
            Enclave.copy_in fs.enclave ~label:"ipfs.read" node_size;
          charge_crypto fs node_size;
          Bytes.of_string (decrypt_node file idx ~iv:e.iv ~tag:e.tag ct)
        end
        else Bytes.make node_size '\000'
      in
      let node = { plaintext; dirty = false; slot } in
      Enclave.touch fs.enclave ~addr:(slot_addr file slot) ~len:node_size;
      (match Twine_sim.Lru.put file.cache idx node with
      | Some evicted -> evict file evicted
      | None -> ());
      node

(* --- Header I/O --- *)

let write_header file =
  let fs = file.fs in
  let pt = serialize_header file in
  charge_crypto fs (String.length pt);
  let iv = Enclave.random fs.enclave iv_len in
  let ct, tag = Gcm.encrypt file.header_key ~iv ~aad:"header" pt in
  let b = Buffer.create (String.length ct + 40) in
  Buffer.add_string b magic;
  Buffer.add_string b iv;
  put_u32 b (String.length ct);
  Buffer.add_string b ct;
  Buffer.add_string b tag;
  let blob = Buffer.contents b in
  Enclave.copy_out fs.enclave ~label:"ipfs.write" (String.length blob);
  Enclave.ocall fs.enclave ~name:"ipfs.ocall" (fun () ->
      charge_untrusted_io fs "ipfs.write" (String.length blob);
      Backing.truncate fs.backing (meta_path file.path) 0;
      Backing.write fs.backing (meta_path file.path) ~pos:0 blob)

let read_header fs ~path ~header_key =
  let mp = meta_path path in
  match Backing.size fs.backing mp with
  | None -> None
  | Some n ->
      let blob =
        Enclave.ocall fs.enclave ~name:"ipfs.ocall" (fun () ->
            charge_untrusted_io fs "ipfs.read" n;
            Backing.read fs.backing mp ~pos:0 ~len:n)
      in
      if String.length blob < 36 || String.sub blob 0 4 <> magic then
        raise (Integrity_violation (path ^ ": bad header"));
      let iv = String.sub blob 4 iv_len in
      let ct_len = get_u32 blob (4 + iv_len) in
      if String.length blob < 4 + iv_len + 4 + ct_len + tag_len then
        raise (Integrity_violation (path ^ ": truncated header"));
      let ct = String.sub blob (4 + iv_len + 4) ct_len in
      let tag = String.sub blob (4 + iv_len + 4 + ct_len) tag_len in
      Enclave.copy_in fs.enclave ~label:"ipfs.read" (String.length blob);
      charge_crypto fs ct_len;
      (match Gcm.decrypt header_key ~iv ~aad:"header" ~tag ct with
      | Some pt -> Some (deserialize_header pt)
      | None -> raise (Integrity_violation (path ^ ": header authentication failed")))

(* --- Public API --- *)

let derive_keys fs ?key ~path () =
  let master =
    match key with
    | Some k ->
        if String.length k <> 16 then invalid_arg "Protected_fs: key must be 16 bytes";
        k
    | None ->
        (* Automatic key: derived from the enclave sealing identity and the
           path, hence unrecoverable on another CPU or enclave (§IV-E). *)
        Hmac.derive ~key:(Seal.key fs.enclave ~label:"pfs" ())
          ~info:("pfs-file:" ^ path) ~length:16
  in
  let header_raw = Hmac.derive ~key:master ~info:"pfs-header" ~length:16 in
  (Gcm.of_raw master, Aes.expand master, Gcm.of_raw header_raw)

let open_file t ?key ~mode path =
  in_enclave t (fun () ->
      let gcm_key, aes_key, header_key = derive_keys t ?key ~path () in
      let file =
        {
          fs = t;
          path;
          gcm_key;
          aes_key;
          header_key;
          size = 0;
          pos = 0;
          entries = [||];
          cache = Twine_sim.Lru.create ~capacity:t.cache_nodes ();
          cache_base = Enclave.alloc t.enclave (t.cache_nodes * 2 * node_size);
          closed = false;
        }
      in
      (match mode with
      | `Trunc ->
          ignore (Backing.delete t.backing path);
          ignore (Backing.delete t.backing (meta_path path))
      | `Rdonly | `Rdwr -> (
          match read_header t ~path ~header_key with
          | Some (size, entries) ->
              file.size <- size;
              file.entries <- entries
          | None ->
              if mode = `Rdonly then
                raise (Sys_error (path ^ ": no such protected file"))));
      file)

let check_open file = if file.closed then invalid_arg "Protected_fs: file is closed"

let read file buf ~off ~len =
  check_open file;
  if off < 0 || len < 0 || off + len > Bytes.length buf then
    invalid_arg "Protected_fs.read";
  in_enclave file.fs (fun () ->
      let remaining = min len (file.size - file.pos) in
      if remaining <= 0 then 0
      else begin
        let copied = ref 0 in
        while !copied < remaining do
          let pos = file.pos + !copied in
          let idx = pos / node_size and in_node = pos mod node_size in
          let chunk = min (node_size - in_node) (remaining - !copied) in
          let node = load_node file idx in
          Bytes.blit node.plaintext in_node buf (off + !copied) chunk;
          copied := !copied + chunk
        done;
        file.pos <- file.pos + remaining;
        remaining
      end)

let write file data =
  check_open file;
  in_enclave file.fs (fun () ->
      let len = String.length data in
      let written = ref 0 in
      while !written < len do
        let pos = file.pos + !written in
        let idx = pos / node_size and in_node = pos mod node_size in
        let chunk = min (node_size - in_node) (len - !written) in
        let node = load_node file idx in
        Bytes.blit_string data !written node.plaintext in_node chunk;
        node.dirty <- true;
        ignore (ensure_entry file idx);
        written := !written + chunk
      done;
      file.pos <- file.pos + len;
      if file.pos > file.size then file.size <- file.pos;
      len)

let seek file ~offset ~whence =
  check_open file;
  let target =
    match whence with
    | `Set -> offset
    | `Cur -> file.pos + offset
    | `End -> file.size + offset
  in
  if target < 0 then Error "negative offset"
  else if target > file.size then Error "beyond end of file"
  else begin
    file.pos <- target;
    Ok target
  end

let tell file = file.pos
let file_size file = file.size

let flush file =
  check_open file;
  in_enclave file.fs (fun () ->
      Twine_sim.Lru.iter
        (fun idx node -> if node.dirty then write_back file idx node)
        file.cache;
      write_header file)

let close file =
  if not file.closed then begin
    flush file;
    in_enclave file.fs (fun () ->
        List.iter (fun entry -> evict file entry) (Twine_sim.Lru.to_list file.cache);
        Twine_sim.Lru.clear file.cache);
    file.closed <- true
  end

let delete t path =
  let a = Backing.delete t.backing path in
  let b = Backing.delete t.backing (meta_path path) in
  a || b

let exists t path = Backing.exists t.backing (meta_path path)

let cache_stats t = (t.hits, t.misses)
