open Twine_crypto
open Twine_sgx

type variant = Stock | Optimized

let node_size = 4096
let iv_len = 12
let tag_len = 16
let magic = "PFS1"
let journal_magic = "PFSJ"
let tombstone = "DEAD"

(* Per-node sealing material kept in the encrypted header. [present] is
   the in-memory view (mutated as writes land); [c_present] is whether
   the node exists under the last *committed* header — the pre-image
   journal only needs to preserve nodes the committed state can see. *)
type entry = {
  mutable iv : string;
  mutable tag : string;
  mutable present : bool;
  mutable c_present : bool;
}

type node = { plaintext : Bytes.t; mutable dirty : bool; slot : int }

type t = {
  enclave : Enclave.t;
  backing : Backing.t;
  variant : variant;
  cache_nodes : int;
  mutable hits : int;
  mutable misses : int;
}

type file = {
  fs : t;
  path : string;
  gcm_key : Gcm.key;  (* stock cipher *)
  aes_key : Aes.key;  (* optimised (CCM) cipher *)
  header_key : Gcm.key;
  mutable size : int;
  mutable pos : int;
  mutable entries : entry array;
  cache : (int, node) Twine_sim.Lru.t;
  cache_base : int;  (* enclave address of the node cache region *)
  mutable gen : int;  (* committed header generation (0 = none yet) *)
  mutable live_slot : int;  (* slot holding generation [gen]; -1 = none *)
  mutable jrnl_started : bool;  (* journal header written this txn *)
  mutable jrnl_count : int;
  journaled : (int, unit) Hashtbl.t;  (* node idx -> pre-image saved *)
  mutable closed : bool;
}

exception Integrity_violation of string

let create enclave backing ?(variant = Stock) ?(cache_nodes = 48) () =
  if cache_nodes < 1 then invalid_arg "Protected_fs.create: cache_nodes < 1";
  { enclave; backing; variant; cache_nodes; hits = 0; misses = 0 }

let variant t = t.variant
let enclave t = t.enclave

(* Two header slots: a commit writes the inactive slot, so a torn header
   write leaves the previous generation intact (old-or-new). *)
let meta_path path = path ^ ".pfsmeta"
let meta2_path path = path ^ ".pfsmeta2"
let slot_path path slot = if slot = 0 then meta_path path else meta2_path path
let journal_path path = path ^ ".pfsjrnl"

let machine t = Enclave.machine t.enclave
let obs t = (machine t).Machine.obs

(* Run [f] inside the enclave, entering via an ECALL when the caller is
   still outside (standalone library use). *)
let in_enclave t f =
  if Enclave.inside t.enclave then f () else Enclave.ecall t.enclave (fun _ -> f ())

let charge_untrusted_io t ?(account = "ipfs.io") label n =
  let m = machine t in
  Machine.charge m ~account label
    (m.costs.untrusted_io_base_ns + Costs.bytes_ns m.costs.untrusted_io_ns_per_byte n)

let charge_crypto t n =
  let m = machine t in
  Twine_obs.Obs.add m.Machine.obs "ipfs.crypto.bytes" n;
  Twine_obs.Obs.emit m.Machine.obs ~cat:"ipfs" ~args:[ ("bytes", n) ] "ipfs.crypto";
  Machine.charge m "ipfs.crypto" (Costs.bytes_ns m.costs.aes_ns_per_byte n)

let node_aad idx = "node:" ^ string_of_int idx

(* --- Header (de)serialisation --- *)

let put_u32 b v =
  for i = 0 to 3 do Buffer.add_char b (Char.chr ((v lsr (8 * i)) land 0xff)) done

let put_u64 b v =
  for i = 0 to 7 do Buffer.add_char b (Char.chr ((v lsr (8 * i)) land 0xff)) done

let get_u32 s off =
  let v = ref 0 in
  for i = 3 downto 0 do v := (!v lsl 8) lor Char.code s.[off + i] done;
  !v

let get_u64 s off =
  let v = ref 0 in
  for i = 7 downto 0 do v := (!v lsl 8) lor Char.code s.[off + i] done;
  !v

(* Header plaintext: [gen u64][size u64][count u32][entries...] — the
   generation is under the header's authentication tag, so an attacker
   cannot graft one generation's entry table onto another's. *)
let serialize_header ~gen ~size entries =
  let b = Buffer.create (20 + (Array.length entries * (iv_len + tag_len + 1))) in
  put_u64 b gen;
  put_u64 b size;
  put_u32 b (Array.length entries);
  Array.iter
    (fun e ->
      Buffer.add_char b (if e.present then '\001' else '\000');
      Buffer.add_string b (if e.present then e.iv else String.make iv_len '\000');
      Buffer.add_string b (if e.present then e.tag else String.make tag_len '\000'))
    entries;
  Buffer.contents b

let deserialize_header s =
  if String.length s < 20 then raise (Integrity_violation "header too short");
  let gen = get_u64 s 0 in
  let size = get_u64 s 8 in
  let count = get_u32 s 16 in
  let stride = 1 + iv_len + tag_len in
  if String.length s < 20 + (count * stride) then
    raise (Integrity_violation "header truncated");
  let entries =
    Array.init count (fun i ->
        let off = 20 + (i * stride) in
        let present = s.[off] = '\001' in
        {
          present;
          c_present = present;
          iv = String.sub s (off + 1) iv_len;
          tag = String.sub s (off + 1 + iv_len) tag_len;
        })
  in
  (gen, size, entries)

(* --- Node encryption --- *)

let encrypt_node file idx plaintext =
  let iv = Enclave.random file.fs.enclave iv_len in
  let aad = node_aad idx in
  let ct, tag =
    match file.fs.variant with
    | Stock -> Gcm.encrypt file.gcm_key ~iv ~aad plaintext
    | Optimized -> Ccm.encrypt file.aes_key ~nonce:iv ~aad plaintext
  in
  (iv, ct, tag)

let decrypt_node file idx ~iv ~tag ciphertext =
  let aad = node_aad idx in
  let res =
    match file.fs.variant with
    | Stock -> Gcm.decrypt file.gcm_key ~iv ~aad ~tag ciphertext
    | Optimized -> Ccm.decrypt file.aes_key ~nonce:iv ~aad ~tag ciphertext
  in
  match res with
  | Some pt -> pt
  | None ->
      raise (Integrity_violation (Printf.sprintf "%s: node %d" file.path idx))

(* --- Entries growth --- *)

let ensure_entry file idx =
  let n = Array.length file.entries in
  if idx >= n then begin
    let grown =
      Array.init (max (idx + 1) (max 4 (2 * n))) (fun i ->
          if i < n then file.entries.(i)
          else { iv = ""; tag = ""; present = false; c_present = false })
    in
    file.entries <- grown
  end;
  file.entries.(idx)

(* --- Node pre-image journal ---

   In-place node writes are what make a torn commit unrecoverable: once
   node k holds new ciphertext, the old header's (iv, tag) for k no
   longer authenticates. Before the first overwrite of a committed node
   in a commit interval, its on-disk ciphertext is appended to a journal
   keyed by the committed generation; recovery at open rolls the
   pre-images back iff the journal generation matches the live header
   (i.e. the crash happened before the next header landed). The journal
   shuffles ciphertext between untrusted files, so it costs OCALL + I/O
   but no enclave copies or crypto. *)

let jrnl_stride = 4 + 1 + node_size

let journal_begin file =
  if not file.jrnl_started then begin
    let fs = file.fs in
    let jp = journal_path file.path in
    let b = Buffer.create 16 in
    Buffer.add_string b journal_magic;
    put_u64 b file.gen;
    put_u32 b 0;
    let hdr = Buffer.contents b in
    Enclave.ocall fs.enclave ~name:"ipfs.ocall" (fun () ->
        charge_untrusted_io fs ~account:"ipfs.journal" "ipfs.journal"
          (String.length hdr);
        Backing.write fs.backing jp ~pos:0 hdr);
    file.jrnl_started <- true;
    file.jrnl_count <- 0
  end

let journal_node file idx =
  if
    idx < Array.length file.entries
    && file.entries.(idx).c_present
    && not (Hashtbl.mem file.journaled idx)
  then begin
    journal_begin file;
    let fs = file.fs in
    let jp = journal_path file.path in
    let entry_pos = 16 + (file.jrnl_count * jrnl_stride) in
    Enclave.ocall fs.enclave ~name:"ipfs.ocall" (fun () ->
        (* ciphertext-to-ciphertext, entirely in untrusted memory *)
        charge_untrusted_io fs ~account:"ipfs.journal" "ipfs.journal"
          (2 * node_size) ;
        let old_ct =
          Backing.read fs.backing file.path ~pos:(idx * node_size) ~len:node_size
        in
        let old_ct =
          if String.length old_ct >= node_size then String.sub old_ct 0 node_size
          else old_ct ^ String.make (node_size - String.length old_ct) '\000'
        in
        let b = Buffer.create jrnl_stride in
        put_u32 b idx;
        Buffer.add_char b '\001';
        Buffer.add_string b old_ct;
        Backing.write fs.backing jp ~pos:entry_pos (Buffer.contents b);
        (* entry durable first, then the count that makes it visible *)
        let c = Buffer.create 4 in
        put_u32 c (file.jrnl_count + 1);
        Backing.write fs.backing jp ~pos:12 (Buffer.contents c));
    file.jrnl_count <- file.jrnl_count + 1;
    Hashtbl.replace file.journaled idx ()
  end

let journal_end file =
  if file.jrnl_started then begin
    let fs = file.fs in
    Enclave.ocall fs.enclave ~name:"ipfs.ocall" (fun () ->
        charge_untrusted_io fs ~account:"ipfs.journal" "ipfs.journal" 16;
        ignore (Backing.delete fs.backing (journal_path file.path)));
    file.jrnl_started <- false;
    file.jrnl_count <- 0
  end;
  Hashtbl.reset file.journaled

(* --- Cache management with cost accounting --- *)

let slot_addr file slot = file.cache_base + (slot * 2 * node_size)

let write_back file idx (node : node) =
  let fs = file.fs in
  journal_node file idx;
  let pt = Bytes.to_string node.plaintext in
  charge_crypto fs node_size;
  let iv, ct, tag = encrypt_node file idx pt in
  let e = ensure_entry file idx in
  e.iv <- iv;
  e.tag <- tag;
  e.present <- true;
  Enclave.copy_out fs.enclave ~label:"ipfs.write" node_size;
  Enclave.ocall fs.enclave ~name:"ipfs.ocall" (fun () ->
      charge_untrusted_io fs "ipfs.write" node_size;
      Backing.write fs.backing file.path ~pos:(idx * node_size) ct);
  node.dirty <- false

let evict file (idx, node) =
  if node.dirty then write_back file idx node;
  (* Stock IPFS clears the plaintext buffer of dropped nodes. *)
  if file.fs.variant = Stock then
    Enclave.memset file.fs.enclave ~label:"ipfs.memset" node_size

(* Load node [idx] into the cache, returning it. *)
let load_node file idx =
  let fs = file.fs in
  match Twine_sim.Lru.find file.cache idx with
  | Some node ->
      fs.hits <- fs.hits + 1;
      Twine_obs.Obs.inc (obs fs) "ipfs.cache.hit";
      Twine_obs.Obs.emit (obs fs) ~cat:"ipfs" ~args:[ ("node", idx) ] "ipfs.cache.hit";
      Enclave.touch fs.enclave ~addr:(slot_addr file node.slot) ~len:node_size;
      node
  | None ->
      fs.misses <- fs.misses + 1;
      Twine_obs.Obs.inc (obs fs) "ipfs.cache.miss";
      Twine_obs.Obs.emit (obs fs) ~cat:"ipfs" ~args:[ ("node", idx) ] "ipfs.cache.miss";
      let slot = idx mod fs.cache_nodes in
      (* Stock IPFS zeroes the whole node structure (two 4 KiB buffers
         plus metadata) before filling it (§V-F). *)
      if fs.variant = Stock then
        Enclave.memset fs.enclave ~label:"ipfs.memset" ((2 * node_size) + 64);
      let e = if idx < Array.length file.entries then file.entries.(idx) else
          { iv = ""; tag = ""; present = false; c_present = false } in
      let plaintext =
        if e.present then begin
          let ct =
            Enclave.ocall fs.enclave ~name:"ipfs.ocall" (fun () ->
                charge_untrusted_io fs "ipfs.read" node_size;
                Backing.read fs.backing file.path ~pos:(idx * node_size) ~len:node_size)
          in
          if String.length ct <> node_size then
            raise (Integrity_violation (Printf.sprintf "%s: node %d missing" file.path idx));
          (* Stock: the edge routine copies the ciphertext into enclave
             memory before GCM decryption; optimised CCM decrypts straight
             from the untrusted buffer. *)
          if fs.variant = Stock then
            Enclave.copy_in fs.enclave ~label:"ipfs.read" node_size;
          charge_crypto fs node_size;
          Bytes.of_string (decrypt_node file idx ~iv:e.iv ~tag:e.tag ct)
        end
        else Bytes.make node_size '\000'
      in
      let node = { plaintext; dirty = false; slot } in
      Enclave.touch fs.enclave ~addr:(slot_addr file slot) ~len:node_size;
      (match Twine_sim.Lru.put file.cache idx node with
      | Some evicted -> evict file evicted
      | None -> ());
      node

(* --- Header I/O --- *)

(* Commit point: serialize under the new generation and write the slot
   NOT holding the live header. A torn write damages only the inactive
   slot; the moment the blob is complete, the new generation wins slot
   selection at open. *)
let write_header file =
  let fs = file.fs in
  let gen = file.gen + 1 in
  let pt = serialize_header ~gen ~size:file.size file.entries in
  charge_crypto fs (String.length pt);
  let iv = Enclave.random fs.enclave iv_len in
  let ct, tag = Gcm.encrypt file.header_key ~iv ~aad:"header" pt in
  let b = Buffer.create (String.length ct + 40) in
  Buffer.add_string b magic;
  Buffer.add_string b iv;
  put_u32 b (String.length ct);
  Buffer.add_string b ct;
  Buffer.add_string b tag;
  let blob = Buffer.contents b in
  let target = if file.live_slot = 0 then 1 else 0 in
  Enclave.copy_out fs.enclave ~label:"ipfs.write" (String.length blob);
  Enclave.ocall fs.enclave ~name:"ipfs.ocall" (fun () ->
      charge_untrusted_io fs "ipfs.write" (String.length blob);
      Backing.write fs.backing (slot_path file.path target) ~pos:0 blob);
  file.gen <- gen;
  file.live_slot <- target;
  (* the journal belonged to the previous generation; retire it and
     refresh the committed-present view *)
  journal_end file;
  Array.iter (fun e -> e.c_present <- e.present) file.entries

(* One slot's state at open: a blob that parses and authenticates, an
   explicit deletion tombstone, damage (torn write or tampering), or
   nothing at all. *)
type slot_state =
  | Slot_valid of int * int * entry array  (* gen, size, entries *)
  | Slot_dead
  | Slot_invalid
  | Slot_absent

let read_slot fs ~path ~slot ~header_key =
  let sp = slot_path path slot in
  match Backing.size fs.backing sp with
  | None -> Slot_absent
  | Some n -> (
      let blob =
        Enclave.ocall fs.enclave ~name:"ipfs.ocall" (fun () ->
            charge_untrusted_io fs "ipfs.read" n;
            Backing.read fs.backing sp ~pos:0 ~len:n)
      in
      if String.length blob >= 4 && String.sub blob 0 4 = tombstone then Slot_dead
      else if String.length blob < 36 || String.sub blob 0 4 <> magic then
        Slot_invalid
      else begin
        let iv = String.sub blob 4 iv_len in
        let ct_len = get_u32 blob (4 + iv_len) in
        if String.length blob < 4 + iv_len + 4 + ct_len + tag_len then Slot_invalid
        else begin
          let ct = String.sub blob (4 + iv_len + 4) ct_len in
          let tag = String.sub blob (4 + iv_len + 4 + ct_len) tag_len in
          Enclave.copy_in fs.enclave ~label:"ipfs.read" (String.length blob);
          charge_crypto fs ct_len;
          match Gcm.decrypt header_key ~iv ~aad:"header" ~tag ct with
          | Some pt ->
              let gen, size, entries = deserialize_header pt in
              Slot_valid (gen, size, entries)
          | None -> Slot_invalid
        end
      end)

(* The journal's generation, when a structurally sound journal exists. *)
let read_journal_gen fs ~path =
  let jp = journal_path path in
  match Backing.size fs.backing jp with
  | None -> None
  | Some n when n < 16 -> None
  | Some _ ->
      let hdr =
        Enclave.ocall fs.enclave ~name:"ipfs.ocall" (fun () ->
            charge_untrusted_io fs ~account:"ipfs.recovery" "ipfs.recovery" 16;
            Backing.read fs.backing jp ~pos:0 ~len:16)
      in
      if String.length hdr = 16 && String.sub hdr 0 4 = journal_magic then
        Some (get_u64 hdr 4)
      else None

(* Roll committed-generation pre-images back over the data file. The
   count field is only advanced after its entry is complete, so every
   entry below it replays whole; replaying twice is replaying once. *)
let rollback_journal fs ~path =
  let jp = journal_path path in
  let hdr =
    Enclave.ocall fs.enclave ~name:"ipfs.ocall" (fun () ->
        charge_untrusted_io fs ~account:"ipfs.recovery" "ipfs.recovery" 16;
        Backing.read fs.backing jp ~pos:0 ~len:16)
  in
  let count = get_u32 hdr 12 in
  for k = 0 to count - 1 do
    Enclave.ocall fs.enclave ~name:"ipfs.ocall" (fun () ->
        charge_untrusted_io fs ~account:"ipfs.recovery" "ipfs.recovery"
          (2 * node_size);
        let entry =
          Backing.read fs.backing jp ~pos:(16 + (k * jrnl_stride)) ~len:jrnl_stride
        in
        if String.length entry = jrnl_stride && entry.[4] = '\001' then begin
          let idx = get_u32 entry 0 in
          Backing.write fs.backing path ~pos:(idx * node_size)
            (String.sub entry 5 node_size)
        end)
  done

let delete_journal fs ~path =
  Enclave.ocall fs.enclave ~name:"ipfs.ocall" (fun () ->
      charge_untrusted_io fs ~account:"ipfs.recovery" "ipfs.recovery" 16;
      ignore (Backing.delete fs.backing (journal_path path)))

(* Crash recovery at open: pick the newest authenticated header slot,
   roll the pre-image journal back when it belongs to that generation
   (the crash hit before the next header landed), and distinguish a
   torn commit (forgiven: a journal proves a commit was in flight) from
   tampering (both slots damaged with no journal: Integrity_violation).

   Returns [None] when the file does not exist — including the window
   where a crash interrupted its very first commit or its deletion. *)
let read_header fs ~path ~header_key =
  let s0 = read_slot fs ~path ~slot:0 ~header_key in
  let s1 = read_slot fs ~path ~slot:1 ~header_key in
  let jgen = read_journal_gen fs ~path in
  let dead = s0 = Slot_dead || s1 = Slot_dead in
  if dead then begin
    (* deletion in flight: finish it *)
    Enclave.ocall fs.enclave ~name:"ipfs.ocall" (fun () ->
        charge_untrusted_io fs ~account:"ipfs.recovery" "ipfs.recovery" 16;
        ignore (Backing.delete fs.backing (meta_path path));
        ignore (Backing.delete fs.backing (meta2_path path));
        ignore (Backing.delete fs.backing (journal_path path)));
    None
  end
  else begin
    let best =
      match (s0, s1) with
      | Slot_valid (g0, sz0, e0), Slot_valid (g1, _, _) when g0 >= g1 ->
          Some (g0, sz0, e0)
      | _, Slot_valid (g1, sz1, e1) -> Some (g1, sz1, e1)
      | Slot_valid (g0, sz0, e0), _ -> Some (g0, sz0, e0)
      | _ -> None
    in
    match best with
    | Some (gen, size, entries) ->
        (match jgen with
        | Some jg when jg = gen ->
            (* crash after some in-place node writes, before the next
               header: restore the generation's pre-images *)
            rollback_journal fs ~path;
            delete_journal fs ~path
        | Some _ -> delete_journal fs ~path  (* committed; journal is stale *)
        | None -> ());
        let live_slot =
          match (s0, s1) with
          | Slot_valid (g0, _, _), _ when g0 = gen -> 0
          | _ -> 1
        in
        Some (gen, size, entries, live_slot)
    | None ->
        if s0 = Slot_absent && s1 = Slot_absent then begin
          (match jgen with Some _ -> delete_journal fs ~path | None -> ());
          None
        end
        else if jgen = Some 0 then begin
          (* torn very first commit: the file never existed durably *)
          Enclave.ocall fs.enclave ~name:"ipfs.ocall" (fun () ->
              charge_untrusted_io fs ~account:"ipfs.recovery" "ipfs.recovery" 16;
              ignore (Backing.delete fs.backing (meta_path path));
              ignore (Backing.delete fs.backing (meta2_path path));
              ignore (Backing.delete fs.backing (journal_path path)));
          None
        end
        else
          (* a damaged slot with no evidence of an in-flight commit *)
          raise (Integrity_violation (path ^ ": header authentication failed"))
  end

(* --- Public API --- *)

let derive_keys fs ?key ~path () =
  let master =
    match key with
    | Some k ->
        if String.length k <> 16 then invalid_arg "Protected_fs: key must be 16 bytes";
        k
    | None ->
        (* Automatic key: derived from the enclave sealing identity and the
           path, hence unrecoverable on another CPU or enclave (§IV-E). *)
        Hmac.derive ~key:(Seal.key fs.enclave ~label:"pfs" ())
          ~info:("pfs-file:" ^ path) ~length:16
  in
  let header_raw = Hmac.derive ~key:master ~info:"pfs-header" ~length:16 in
  (Gcm.of_raw master, Aes.expand master, Gcm.of_raw header_raw)

(* Tombstone both slots, then remove everything. The tombstones make a
   half-finished deletion unambiguous at open: without them, removing
   one slot would resurrect the other's older generation, whose nodes
   may already be overwritten. *)
let delete_keys fs path =
  let existed =
    Backing.exists fs.backing (meta_path path)
    || Backing.exists fs.backing (meta2_path path)
    || Backing.exists fs.backing path
  in
  List.iter
    (fun sp ->
      if Backing.exists fs.backing sp then Backing.write fs.backing sp ~pos:0 tombstone)
    [ meta_path path; meta2_path path ];
  ignore (Backing.delete fs.backing path);
  ignore (Backing.delete fs.backing (meta_path path));
  ignore (Backing.delete fs.backing (meta2_path path));
  ignore (Backing.delete fs.backing (journal_path path));
  existed

let open_file t ?key ~mode path =
  in_enclave t (fun () ->
      let gcm_key, aes_key, header_key = derive_keys t ?key ~path () in
      (* Read (and recover) the header before touching any state on [t]
         or the enclave: a failed open leaves both exactly as they were. *)
      let header =
        match mode with
        | `Trunc ->
            ignore (delete_keys t path);
            None
        | `Rdonly | `Rdwr -> (
            match read_header t ~path ~header_key with
            | Some h -> Some h
            | None ->
                if mode = `Rdonly then
                  raise (Sys_error (path ^ ": no such protected file"))
                else None)
      in
      let size, entries, gen, live_slot =
        match header with
        | Some (gen, size, entries, live_slot) -> (size, entries, gen, live_slot)
        | None -> (0, [||], 0, -1)
      in
      {
        fs = t;
        path;
        gcm_key;
        aes_key;
        header_key;
        size;
        pos = 0;
        entries;
        cache = Twine_sim.Lru.create ~capacity:t.cache_nodes ();
        cache_base = Enclave.alloc t.enclave (t.cache_nodes * 2 * node_size);
        gen;
        live_slot;
        jrnl_started = false;
        jrnl_count = 0;
        journaled = Hashtbl.create 8;
        closed = false;
      })

let check_open file = if file.closed then invalid_arg "Protected_fs: file is closed"

let read file buf ~off ~len =
  check_open file;
  if off < 0 || len < 0 || off + len > Bytes.length buf then
    invalid_arg "Protected_fs.read";
  in_enclave file.fs (fun () ->
      let remaining = min len (file.size - file.pos) in
      if remaining <= 0 then 0
      else begin
        let copied = ref 0 in
        while !copied < remaining do
          let pos = file.pos + !copied in
          let idx = pos / node_size and in_node = pos mod node_size in
          let chunk = min (node_size - in_node) (remaining - !copied) in
          let node = load_node file idx in
          Bytes.blit node.plaintext in_node buf (off + !copied) chunk;
          copied := !copied + chunk
        done;
        file.pos <- file.pos + remaining;
        remaining
      end)

let write file data =
  check_open file;
  in_enclave file.fs (fun () ->
      let len = String.length data in
      let written = ref 0 in
      while !written < len do
        let pos = file.pos + !written in
        let idx = pos / node_size and in_node = pos mod node_size in
        let chunk = min (node_size - in_node) (len - !written) in
        let node = load_node file idx in
        Bytes.blit_string data !written node.plaintext in_node chunk;
        node.dirty <- true;
        ignore (ensure_entry file idx);
        written := !written + chunk
      done;
      file.pos <- file.pos + len;
      if file.pos > file.size then file.size <- file.pos;
      len)

let seek file ~offset ~whence =
  check_open file;
  let target =
    match whence with
    | `Set -> offset
    | `Cur -> file.pos + offset
    | `End -> file.size + offset
  in
  if target < 0 then Error "negative offset"
  else if target > file.size then Error "beyond end of file"
  else begin
    file.pos <- target;
    Ok target
  end

let tell file = file.pos
let file_size file = file.size

let flush file =
  check_open file;
  in_enclave file.fs (fun () ->
      (* the journal header precedes any commit work, so a crash during
         even the very first commit is recognisable as such at open *)
      journal_begin file;
      Twine_sim.Lru.iter
        (fun idx node -> if node.dirty then write_back file idx node)
        file.cache;
      write_header file)

let close file =
  if not file.closed then begin
    flush file;
    in_enclave file.fs (fun () ->
        List.iter (fun entry -> evict file entry) (Twine_sim.Lru.to_list file.cache);
        Twine_sim.Lru.clear file.cache);
    file.closed <- true
  end

let delete t path = delete_keys t path

let exists t path =
  let alive sp =
    match Backing.size t.backing sp with
    | None -> false
    | Some n ->
        n < 4
        || Backing.read t.backing sp ~pos:0 ~len:4 <> tombstone
  in
  alive (meta_path path) || alive (meta2_path path)

let cache_stats t = (t.hits, t.misses)
