(* Render a per-run cost breakdown out of an Obs registry, as an aligned
   text table (human) and as JSON (machine; hand-rolled, no deps). *)

let ms ns = float_of_int ns /. 1e6

(* Derived cache effectiveness lines: any counter pair "<p>.hit" with
   "<p>.miss" (cache lookups) or "<p>.fault" (EPC touches) yields a rate.
   A lone half of a pair still yields a line (0% or 100%): an all-miss
   run is a finding, not a formatting accident. *)
let rates counters =
  let prefixes =
    List.filter_map
      (fun (name, _) ->
        List.find_map
          (fun suffix -> Filename.chop_suffix_opt ~suffix name)
          [ ".hit"; ".miss"; ".fault" ])
      counters
  in
  let prefixes = List.sort_uniq compare prefixes in
  List.filter_map
    (fun prefix ->
      let count suffix =
        Option.value ~default:0 (List.assoc_opt (prefix ^ suffix) counters)
      in
      let hits = count ".hit" in
      let total = hits + count ".miss" + count ".fault" in
      if total > 0 then Some (prefix, 100. *. float_of_int hits /. float_of_int total)
      else None)
    prefixes

(* Top-N flat view of a guest profile, hottest self-instruction first.
   Shared by [render] and the CLI's --profile-wasm summary. *)
let profile_table ?(top = 10) prof =
  let b = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  let fns = Profile.functions prof in
  let total = Profile.total_fuel prof in
  line "-- hot wasm functions --";
  line "%-24s %8s %12s %12s %10s %10s %6s" "function" "calls" "self-instr"
    "total-instr" "self(ms)" "total(ms)" "self%";
  let shown = List.filteri (fun i _ -> i < top) fns in
  List.iter
    (fun (f : Profile.fn) ->
      line "%-24s %8d %12d %12d %10.4f %10.4f %5.1f%%" f.Profile.fn_name
        f.Profile.calls f.Profile.self_fuel f.Profile.total_fuel
        (ms f.Profile.self_cycles) (ms f.Profile.total_cycles)
        (if total = 0 then 0.
         else 100. *. float_of_int f.Profile.self_fuel /. float_of_int total))
    shown;
  let rest = List.length fns - List.length shown in
  if rest > 0 then line "  ... and %d more function(s)" rest;
  Buffer.contents b

let render ?(title = "per-run cost report") ?profile ?ledger obs =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  line "== %s ==" title;
  let counters = Obs.counters obs in
  if counters <> [] then begin
    line "-- counters --";
    List.iter (fun (name, v) -> line "%-28s %12d" name v) counters;
    List.iter (fun (p, r) -> line "%-28s %11.1f%%" (p ^ ".hit_rate") r) (rates counters)
  end;
  let hists = Obs.histograms obs in
  if hists <> [] then begin
    line "-- costs --";
    line "%-28s %10s %12s %10s %10s %10s %10s" "component" "events" "total(ms)"
      "min(ns)" "p50(ns)" "p99(ns)" "max(ns)";
    List.iter
      (fun (name, (h : Obs.hstat)) ->
        let q v = Option.value ~default:0 (Obs.quantile obs name v) in
        line "%-28s %10d %12.4f %10d %10d %10d %10d" name h.count (ms h.sum)
          h.min (q 0.5) (q 0.99) h.max)
      hists
  end;
  let spans = Obs.spans obs in
  if spans <> [] then begin
    line "-- spans --";
    line "%-28s %10s %12s %12s" "span" "calls" "total(ms)" "self(ms)";
    List.iter
      (fun (name, (s : Obs.sstat)) ->
        line "%-28s %10d %12.4f %12.4f" name s.calls (ms s.total_ns) (ms s.self_ns))
      spans
  end;
  (match Obs.tracer obs with
  | Some tr ->
      line "-- trace ring --";
      line "%-28s %12d" "trace.capacity" (Trace.capacity tr);
      line "%-28s %12d" "trace.recorded" (Trace.total tr);
      line "%-28s %12d" "trace.held" (Trace.length tr);
      line "%-28s %12d" "trace.high_water" (Trace.high_water tr);
      line "%-28s %12d" "trace.dropped" (Trace.dropped tr);
      if Trace.dropped tr > 0 then
        line "WARNING: ring wrapped — the %d oldest event(s) were overwritten"
          (Trace.dropped tr)
  | None -> ());
  (match profile with
  | Some prof -> Buffer.add_string b (profile_table prof)
  | None -> ());
  (match ledger with
  | Some l ->
      Buffer.add_string b (Ledger.render l);
      Buffer.add_string b (Ledger.render_matrix (Ledger.snapshot l))
  | None -> ());
  Buffer.contents b

(* --- JSON --- *)

let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_obj b fields =
  Buffer.add_char b '{';
  List.iteri
    (fun i (k, emit) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_char b '"';
      Buffer.add_string b (escape k);
      Buffer.add_string b "\":";
      emit b)
    fields;
  Buffer.add_char b '}'

let to_json ?profile ?ledger obs =
  let b = Buffer.create 1024 in
  let int n buf = Buffer.add_string buf (string_of_int n) in
  let trace_fields =
    match Obs.tracer obs with
    | None -> []
    | Some tr ->
        [ ( "trace",
            fun buf ->
              json_obj buf
                [ ("capacity", int (Trace.capacity tr));
                  ("recorded", int (Trace.total tr));
                  ("held", int (Trace.length tr));
                  ("high_water", int (Trace.high_water tr));
                  ("dropped", int (Trace.dropped tr));
                  ("lost", int (Trace.lost tr)) ] ) ]
  in
  let ledger_fields =
    match ledger with
    | None -> []
    | Some l ->
        [ ( "ledger",
            fun buf ->
              Buffer.add_string buf (Json.to_string (Ledger.to_json (Ledger.snapshot l)))
          ) ]
  in
  let profile_fields =
    match profile with
    | None -> []
    | Some prof ->
        [ ( "wasm_profile",
            fun buf ->
              json_obj buf
                (List.map
                   (fun (f : Profile.fn) ->
                     ( f.Profile.fn_name,
                       fun buf ->
                         json_obj buf
                           [ ("calls", int f.Profile.calls);
                             ("self_instr", int f.Profile.self_fuel);
                             ("total_instr", int f.Profile.total_fuel);
                             ("self_ns", int f.Profile.self_cycles);
                             ("total_ns", int f.Profile.total_cycles) ] ))
                   (Profile.functions prof)) ) ]
  in
  json_obj b
    ([
      ( "counters",
        fun buf ->
          json_obj buf (List.map (fun (k, v) -> (k, int v)) (Obs.counters obs)) );
      ( "histograms",
        fun buf ->
          json_obj buf
            (List.map
               (fun (k, (h : Obs.hstat)) ->
                 ( k,
                   fun buf ->
                     json_obj buf
                       [ ("count", int h.count); ("sum_ns", int h.sum);
                         ("min_ns", int h.min); ("max_ns", int h.max) ] ))
               (Obs.histograms obs)) );
      ( "spans",
        fun buf ->
          json_obj buf
            (List.map
               (fun (k, (s : Obs.sstat)) ->
                 ( k,
                   fun buf ->
                     json_obj buf
                       [ ("calls", int s.calls); ("total_ns", int s.total_ns);
                         ("self_ns", int s.self_ns) ] ))
               (Obs.spans obs)) );
    ]
    @ trace_fields @ profile_fields @ ledger_fields);
  Buffer.contents b
