(* Minimal JSON: a value type, a compact printer and a recursive-descent
   parser. No dependencies — the container only ships the OCaml
   toolchain, and the telemetry layer must stay self-contained. Used by
   the trace exporter, the benchmark baselines and the tests that
   validate both. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* --- printing --- *)

let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let add_num b f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string b (Printf.sprintf "%.0f" f)
  else Buffer.add_string b (Printf.sprintf "%.17g" f)

let rec add b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Num f -> add_num b f
  | Str s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape s);
      Buffer.add_char b '"'
  | Arr l ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char b ',';
          add b v)
        l;
      Buffer.add_char b ']'
  | Obj l ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          Buffer.add_string b (escape k);
          Buffer.add_string b "\":";
          add b v)
        l;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 1024 in
  add b v;
  Buffer.contents b

(* --- parsing --- *)

exception Parse_error of string

let parse_exn s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    if peek () = Some c then advance ()
    else fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail "bad literal"
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (if !pos >= n then fail "bad escape"
           else
             match s.[!pos] with
             | '"' -> Buffer.add_char b '"'
             | '\\' -> Buffer.add_char b '\\'
             | '/' -> Buffer.add_char b '/'
             | 'n' -> Buffer.add_char b '\n'
             | 't' -> Buffer.add_char b '\t'
             | 'r' -> Buffer.add_char b '\r'
             | 'b' -> Buffer.add_char b '\b'
             | 'f' -> Buffer.add_char b '\012'
             | 'u' ->
                 if !pos + 4 >= n then fail "bad \\u escape";
                 let hex = String.sub s (!pos + 1) 4 in
                 let code =
                   try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape"
                 in
                 (* keep it simple: BMP code points as UTF-8 *)
                 if code < 0x80 then Buffer.add_char b (Char.chr code)
                 else if code < 0x800 then begin
                   Buffer.add_char b (Char.chr (0xc0 lor (code lsr 6)));
                   Buffer.add_char b (Char.chr (0x80 lor (code land 0x3f)))
                 end
                 else begin
                   Buffer.add_char b (Char.chr (0xe0 lor (code lsr 12)));
                   Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
                   Buffer.add_char b (Char.chr (0x80 lor (code land 0x3f)))
                 end;
                 pos := !pos + 4
             | c -> fail (Printf.sprintf "bad escape %C" c));
          advance ();
          go ()
      | c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && num_char s.[!pos] do advance () done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (members [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          Arr (elements [])
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let parse s =
  match parse_exn s with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

(* --- accessors --- *)

let member key = function Obj l -> List.assoc_opt key l | _ -> None
let to_list = function Arr l -> Some l | _ -> None
let to_float = function Num f -> Some f | _ -> None
let to_str = function Str s -> Some s | _ -> None
