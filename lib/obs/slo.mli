(** SLO specs and error-budget burn-rate evaluation over windowed
    series.

    A spec declares a latency objective — "the [q]-quantile stays at
    or below [threshold_ns], evaluated over tumbling windows of
    [window_ns], with an error budget of [budget_ppm] requests over
    threshold" — in the textual form

    {[ p99<2ms@50ms,budget=0.1%[,fast=14.4x1][,slow=6x5] ]}

    [fast]/[slow] are Google-SRE-style burn-rate alert rules:
    [FACTORxWINDOWS] fires when the observed over-threshold fraction,
    measured over the trailing WINDOWS windows, reaches FACTOR times
    the budget. The fast rule (high factor, short range) catches
    cliffs; the slow rule (low factor, long range) catches sustained
    erosion — its first firing localises the EPC cliff onset in
    virtual time. All evaluation is integer arithmetic on the virtual
    clock: burn rates are reported in thousandths ([x1000]), so
    verdicts replay bit-identically. *)

type spec = {
  q_ppm : int;  (** objective quantile in ppm: p99 = 990000 *)
  threshold_ns : int;
  window_ns : int;
  budget_ppm : int;  (** over-threshold budget: 0.1% = 1000 ppm *)
  fast_x1000 : int;  (** fast burn factor, thousandths (14400 = 14.4x) *)
  fast_windows : int;
  slow_x1000 : int;
  slow_windows : int;
}

val parse : string -> (spec, string) result
(** Accepts quantiles [pN[.N]], durations with [ns]/[us]/[ms]/[s]
    units (decimals allowed while they stay integral in ns), and
    percent budgets down to 0.0001%. *)

val render : spec -> string
(** Canonical form; [parse (render s) = Ok s]. *)

type violation = {
  vi_window : int;
  vi_start_ns : int;
  vi_end_ns : int;  (** bounds of the violating window *)
  vi_count : int;
  vi_overs : int;
  vi_max_ns : int;
  vi_blame : string;  (** dominant breakdown component, [""] if none *)
}
(** A window whose windowed objective is breached: its nearest-rank
    [q]-quantile exceeds the threshold, decided exactly in integers
    ([overs > count - ceil(q * count)]). *)

type alert = {
  al_kind : [ `Fast | `Slow ];
  al_window : int;  (** index of the window whose close fired it *)
  al_start_ns : int;  (** start of the trailing evaluation range *)
  al_end_ns : int;
  al_burn_x1000 : int;
  al_blame : string;  (** dominant component over the range *)
}

type eval = {
  ev_windows : int;
  ev_total : int;  (** requests across all windows *)
  ev_overs : int;
  ev_burn_x1000 : int;  (** whole-run burn: overs/total over budget *)
  ev_violated : bool;  (** whole-run budget exhausted *)
  ev_violations : violation list;
  ev_alerts : alert list;
  ev_first_fast_ns : int option;  (** range-end instant of first firing *)
  ev_first_slow_ns : int option;
}

val evaluate : spec -> Timeseries.window list -> eval
(** Folds a closed, contiguous window series (ascending, as returned
    by {!Timeseries.windows}); the windows' [w_overs] must have been
    counted against this spec's [threshold_ns]. *)

val spec_to_json : spec -> Json.t
val eval_to_json : eval -> Json.t
