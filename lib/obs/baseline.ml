(* Machine-readable benchmark baselines with per-metric tolerance
   bands: the repo's perf-trajectory artifact.

   A baseline is a flat map from metric path (e.g.
   ["micro.rand_read_ns.1500"]) to an expected value plus a relative
   tolerance. [check] compares a fresh collection against the
   committed file and fails loudly when any guarded metric leaves its
   band — the CI regression gate. Metrics measured in wall-clock time
   carry no tolerance ([tol = None]): they are recorded for trend
   inspection but never gate, since CI hardware varies. *)

type metric = { value : float; tol : float option }

type t = {
  meta : (string * string) list;  (* provenance: generator, schema notes *)
  metrics : (string * metric) list;  (* insertion-ordered *)
}

let schema = "twine-bench-baseline/v1"

let metric ?tol value = { value; tol }

let v ?tol name value = (name, { value = float_of_int value; tol })
let vf ?tol name value = (name, { value; tol })

let create ?(meta = []) metrics = { meta; metrics }

(* --- JSON round-trip --- *)

let to_json t =
  Json.Obj
    [ ("schema", Json.Str schema);
      ("meta", Json.Obj (List.map (fun (k, s) -> (k, Json.Str s)) t.meta));
      ( "metrics",
        Json.Obj
          (List.map
             (fun (path, m) ->
               ( path,
                 Json.Obj
                   [ ("value", Json.Num m.value);
                     ( "tol",
                       match m.tol with
                       | Some f -> Json.Num f
                       | None -> Json.Null ) ] ))
             t.metrics) ) ]

let to_string t = Json.to_string (to_json t)

let of_json j =
  match Json.member "schema" j with
  | Some (Json.Str s) when s = schema -> (
      let meta =
        match Json.member "meta" j with
        | Some (Json.Obj l) ->
            List.filter_map
              (fun (k, v) -> Option.map (fun s -> (k, s)) (Json.to_str v))
              l
        | _ -> []
      in
      match Json.member "metrics" j with
      | Some (Json.Obj l) ->
          let parse_metric (path, mv) =
            match Option.bind (Json.member "value" mv) Json.to_float with
            | None -> Error (Printf.sprintf "metric %S: missing value" path)
            | Some value ->
                let tol =
                  Option.bind (Json.member "tol" mv) Json.to_float
                in
                Ok (path, { value; tol })
          in
          let rec go acc = function
            | [] -> Ok { meta; metrics = List.rev acc }
            | m :: rest -> (
                match parse_metric m with
                | Ok m -> go (m :: acc) rest
                | Error _ as e -> e)
          in
          go [] l
      | _ -> Error "missing metrics object")
  | Some (Json.Str s) -> Error (Printf.sprintf "unknown schema %S" s)
  | _ -> Error "missing schema field"

let of_string s = Result.bind (Json.parse s) of_json

(* --- comparison --- *)

type verdict = {
  path : string;
  expected : float;
  got : float option;  (* None: metric missing from the current run *)
  tol : float option;
  ok : bool;
}

(* Relative deviation against the larger magnitude floor-ed at 1.0, so
   tiny counters near zero do not produce infinite relative errors. *)
let deviation ~expected ~got =
  Float.abs (got -. expected) /. Float.max (Float.abs expected) 1.0

let check ~baseline ~current =
  List.map
    (fun (path, (m : metric)) ->
      match List.assoc_opt path current.metrics with
      | None -> { path; expected = m.value; got = None; tol = m.tol; ok = false }
      | Some cur ->
          let ok =
            match m.tol with
            | None -> true  (* informational: recorded, never gates *)
            | Some tol -> deviation ~expected:m.value ~got:cur.value <= tol
          in
          { path; expected = m.value; got = Some cur.value; tol = m.tol; ok })
    baseline.metrics

let all_ok verdicts = List.for_all (fun v -> v.ok) verdicts

let render verdicts =
  let b = Buffer.create 1024 in
  let line fmt =
    Printf.ksprintf
      (fun s ->
        Buffer.add_string b s;
        Buffer.add_char b '\n')
      fmt
  in
  line "%-34s %14s %14s %8s %7s  %s" "metric" "baseline" "current" "drift"
    "band" "verdict";
  line "%s" (String.make 96 '-');
  List.iter
    (fun v ->
      let got_s, drift_s =
        match v.got with
        | None -> ("missing", "-")
        | Some g ->
            ( Printf.sprintf "%14.1f" g,
              Printf.sprintf "%+6.1f%%"
                (100. *. (g -. v.expected)
                /. Float.max (Float.abs v.expected) 1.0) )
      in
      let band =
        match v.tol with
        | Some tol -> Printf.sprintf "%.0f%%" (100. *. tol)
        | None -> "info"
      in
      (* informational metrics (no band) never gate but their drift is
         still worth a look — mark them "info", not a reassuring "ok" *)
      let verdict =
        match (v.ok, v.tol, v.got) with
        | false, _, _ -> "FAIL"
        | true, None, Some _ -> "info"
        | true, _, _ -> "ok"
      in
      line "%-34s %14.1f %14s %8s %7s  %s" v.path v.expected got_s drift_s band
        verdict)
    verdicts;
  Buffer.contents b
