(** Telemetry registry: counters, histograms and span tracing on the
    simulator's virtual clock.

    One registry rides on each simulated machine; every layer (SGX
    transitions, EPC paging, protected-FS node cache, WASI dispatch, the
    database pager, the Wasm engine) records into it so a single run can
    answer "what did this cost and why". See {!Report} for rendering. *)

type t

val create : ?now:(unit -> int) -> unit -> t
(** [now] supplies the virtual time used by spans (defaults to a frozen
    clock, making spans count-only). *)

val reset : t -> unit
(** Clears counters, histograms, spans and the span stack. The attached
    flight recorder (if any) is left alone. *)

(** {2 Flight recorder}

    A registry optionally carries a {!Trace} ring. When one is attached,
    {!in_span} emits begin/end timeline events, and the instrumented
    layers emit instants/counters through {!emit}/{!emit_counter}. With
    no recorder attached every emission is a single [match] — tracing
    costs nothing when off. *)

val set_tracer : t -> Trace.t option -> unit
val tracer : t -> Trace.t option

val emit : t -> cat:string -> ?args:(string * int) list -> string -> unit
(** Record an instant event in the attached recorder, if any. *)

val emit_counter : t -> cat:string -> string -> (string * int) list -> unit
(** Record a counter-track sample in the attached recorder, if any. *)

(** {2 Counters} *)

val inc : t -> string -> unit
val add : t -> string -> int -> unit
val value : t -> string -> int
(** 0 when the counter was never touched. *)

(** {2 Histograms} *)

val observe : ?exemplar:int -> t -> string -> int -> unit
(** Record one sample (e.g. the nanosecond cost of one charge). An
    optional [exemplar] id (e.g. a request id) is kept with the sample's
    bucket — newest first, bounded per bucket — so a tail quantile can
    name the concrete samples that landed there
    ({!quantile_exemplars}). *)

type hstat = { count : int; sum : int; min : int; max : int }

val hstat : t -> string -> hstat option

val quantile : t -> string -> float -> int option
(** [quantile t name q] estimates the [q]-quantile of a histogram from
    its power-of-two buckets: the nearest-rank sample's position is
    interpolated within the covering bucket assuming its samples are
    evenly spread, then clamped to the observed min/max — so [q = 0.]
    and [q = 1.] are exact.

    Error bound: the estimate always lies inside the covering bucket
    [[2{^i-1}, 2{^i})], whose width equals its lower bound, so the
    estimate is within a factor of 2 of the true order statistic in
    the worst case and exact when the in-bucket distribution is
    uniform (e.g. a dense integer range). For a guaranteed tight
    relative-error bound use {!Sketch} (alpha = 1/128).

    Deterministic; [None] when nothing was observed.
    @raise Invalid_argument when [q] is outside [0, 1]. *)

val quantile_exemplars : t -> string -> float -> (int * int list) option
(** The {!quantile} estimate together with the exemplar ids recorded in
    the covering bucket (newest first, bounded — an empty list when no
    sample there carried an exemplar). [None] when nothing was
    observed. @raise Invalid_argument when [q] is outside [0, 1]. *)

(** {2 Spans} *)

val in_span : t -> string -> (unit -> 'a) -> 'a
(** Run the thunk inside a named span. Spans nest: a parent's [self_ns]
    excludes time spent in child spans, so a report can attribute cost to
    the layer that actually incurred it. Exception-safe; an exit that
    somehow skips nested exits closes the skipped spans too, so child
    time is never lost from ancestors' self-time attribution. *)

val open_span : t -> string -> unit
(** Open a span without bracketing a thunk (for spans crossing function
    boundaries). Prefer {!in_span} where the extent is lexical. *)

val close_span : t -> string -> unit
(** Close the most recently opened span with this name, first closing
    any spans still open above it (an out-of-order exit cannot corrupt
    parent self-time attribution). No-op if no such span is open. *)

type sstat = { calls : int; total_ns : int; self_ns : int }

val sstat : t -> string -> sstat option

val depth : t -> int
(** Number of currently open spans (0 outside any span). *)

(** {2 Snapshots} — sorted by name for stable reports. *)

val counters : t -> (string * int) list
val histograms : t -> (string * hstat) list
val spans : t -> (string * sstat) list
