(** Machine-readable benchmark baselines with per-metric tolerance
    bands (the [BENCH_twine.json] artifact and the [bench check]
    regression gate).

    A baseline maps metric paths to expected values; [check] compares
    a fresh collection against a committed baseline and flags every
    guarded metric that leaves its band. Metrics with [tol = None] are
    informational (wall-clock numbers that vary with CI hardware):
    recorded for trend inspection, never gating. *)

type metric = { value : float; tol : float option }

type t = {
  meta : (string * string) list;
  metrics : (string * metric) list;
}

val schema : string

val metric : ?tol:float -> float -> metric

val v : ?tol:float -> string -> int -> string * metric
(** Integer metric as a [(path, metric)] pair. *)

val vf : ?tol:float -> string -> float -> string * metric

val create : ?meta:(string * string) list -> (string * metric) list -> t

val to_json : t -> Json.t
val to_string : t -> string
val of_json : Json.t -> (t, string) result
val of_string : string -> (t, string) result

type verdict = {
  path : string;
  expected : float;
  got : float option;  (** [None]: metric missing from the current run *)
  tol : float option;
  ok : bool;
}

val deviation : expected:float -> got:float -> float
(** Relative deviation, denominator floored at 1.0 so near-zero
    counters do not explode. *)

val check : baseline:t -> current:t -> verdict list
(** One verdict per baseline metric, in baseline order. A metric
    missing from [current] is a failure. Extra metrics in [current]
    are ignored (they join the baseline when it is regenerated). *)

val all_ok : verdict list -> bool

val render : verdict list -> string
(** Aligned table with drift percentages and per-metric verdicts.
    Informational metrics ([tol = None]) that were collected show their
    drift with verdict [info] (they never gate); a metric missing from
    the current run renders [FAIL] whatever its band. *)
