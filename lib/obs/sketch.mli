(** Deterministic, mergeable, bounded-memory quantile sketch.

    Log-linear buckets in the DDSketch family, specialised to
    non-negative integers (virtual nanoseconds): each power-of-two
    binade is subdivided into [2{^sb_bits}] equal-width linear
    subbuckets, so every bucket's relative width — and therefore the
    worst-case relative error of a midpoint estimate — is bounded by
    {!alpha} = 1 / 2{^sb_bits+1}. Values below [2{^sb_bits}] get a
    bucket each and are exact. Exact count/sum/min/max ride alongside,
    so [q = 0.] and [q = 1.] report the true extremes.

    Everything is integer arithmetic on a fixed bucket universe:
    inserting the same multiset in any order, or merging any
    partition of it in any grouping, yields bit-identical state — the
    property the streaming serve plane leans on when per-window
    sketches from different enclaves are merged into fleet tails. *)

type t

val alpha : float
(** Guaranteed relative-error bound of {!quantile} estimates
    (1/128 with the current [sb_bits = 6]). *)

val create : unit -> t

val insert : t -> int -> unit
(** O(1). @raise Invalid_argument on a negative value. *)

val merge : t -> t -> t
(** Pure: neither input is mutated. Associative and commutative, and
    [merge] after partitioned inserts equals bulk insert, bit for
    bit. *)

val count : t -> int
val sum : t -> int

val vmin : t -> int
(** Exact minimum inserted value; 0 when the sketch is empty. *)

val vmax : t -> int
(** Exact maximum inserted value; 0 when the sketch is empty. *)

val quantile : t -> float -> int option
(** Nearest-rank quantile estimate: midpoint of the covering bucket,
    clamped to the exact [vmin]/[vmax]. Within [alpha] relative error
    of the true order statistic; [None] when empty.
    @raise Invalid_argument when [q] is outside [0, 1]. *)

val to_json : t -> Json.t
(** Canonical [twine-sketch/v1]: sorted sparse [[index, count]] pairs
    plus the exact scalars. Byte-stable across runs and across
    {!of_json} round-trips. *)

val of_json : Json.t -> (t, string) result
(** Rejects wrong schema, mismatched [sb_bits], malformed buckets, or
    a [count] that disagrees with the bucket population. *)
