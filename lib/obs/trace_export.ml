(* Export a flight-recorder ring as Chrome trace-event JSON (the JSON
   Array Format with a [traceEvents] wrapper), directly loadable in
   ui.perfetto.dev or chrome://tracing.

   The simulator is single-threaded on one virtual clock, so by default
   every event lands on pid 1 / tid 1; virtual nanoseconds map onto the
   format's microsecond [ts] field as a fraction. An event arg named
   "tid" is treated as a track assignment rather than data: the serving
   fleet uses it to put each enclave's request spans on its own named
   track. *)

let phase_string = function
  | Trace.Begin -> "B"
  | Trace.End -> "E"
  | Trace.Instant -> "i"
  | Trace.Counter -> "C"

let ts_us ns = Json.Num (float_of_int ns /. 1000.)

let event_json (e : Trace.event) =
  (* the reserved "tid" arg is a track assignment, not event data *)
  let tid, args =
    match List.assoc_opt "tid" e.args with
    | Some n -> (float_of_int n, List.remove_assoc "tid" e.args)
    | None -> (1., e.args)
  in
  let base =
    [ ("name", Json.Str e.name);
      ("cat", Json.Str (if e.cat = "" then "misc" else e.cat));
      ("ph", Json.Str (phase_string e.phase));
      ("ts", ts_us e.ts);
      ("pid", Json.Num 1.);
      ("tid", Json.Num tid) ]
  in
  let scope =
    match e.phase with Trace.Instant -> [ ("s", Json.Str "t") ] | _ -> []
  in
  let args =
    match args with
    | [] -> []
    | l ->
        [ ("args", Json.Obj (List.map (fun (k, v) -> (k, Json.Num (float_of_int v))) l)) ]
  in
  Json.Obj (base @ scope @ args)

let metadata ?(tid = 1) ~name value =
  Json.Obj
    [ ("name", Json.Str name); ("ph", Json.Str "M"); ("pid", Json.Num 1.);
      ("tid", Json.Num (float_of_int tid));
      ("args", Json.Obj [ ("name", Json.Str value) ]) ]

let to_json ?(process_name = "twine (simulated SGX)") ?(threads = []) t =
  let events = List.map event_json (Trace.events t) in
  let meta =
    metadata ~name:"process_name" process_name
    :: metadata ~name:"thread_name" "virtual clock"
    :: List.map (fun (tid, name) -> metadata ~tid ~name:"thread_name" name) threads
  in
  Json.Obj
    [ ("displayTimeUnit", Json.Str "ns");
      ("traceEvents", Json.Arr (meta @ events));
      ( "otherData",
        Json.Obj
          [ ("recorded", Json.Num (float_of_int (Trace.total t)));
            ("dropped", Json.Num (float_of_int (Trace.dropped t)));
            ("lost", Json.Num (float_of_int (Trace.lost t)));
            ("high_water", Json.Num (float_of_int (Trace.high_water t)));
            ("capacity", Json.Num (float_of_int (Trace.capacity t))) ] ) ]

let to_string ?process_name ?threads t =
  Json.to_string (to_json ?process_name ?threads t)

let to_file ?process_name ?threads t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (to_string ?process_name ?threads t);
      output_char oc '\n')

(* --- folded stacks (flamegraph text format) --- *)

(* One line per distinct call path: "outer;mid;leaf <self-weight>".
   This is the input format of flamegraph.pl / inferno / speedscope.
   Lines are sorted so the output is a canonical, diffable artifact. *)
let folded ?(metric = `Fuel) prof =
  let lines = ref [] in
  Profile.iter prof (fun ~stack ~calls:_ ~self_fuel ~self_cycles ->
      let v = match metric with `Fuel -> self_fuel | `Cycles -> self_cycles in
      if v > 0 then
        lines :=
          (String.concat ";" (List.map (Profile.name prof) stack), v) :: !lines);
  let b = Buffer.create 256 in
  List.iter
    (fun (path, v) -> Buffer.add_string b (Printf.sprintf "%s %d\n" path v))
    (List.sort compare !lines);
  Buffer.contents b

let folded_to_file ?metric prof path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (folded ?metric prof))
