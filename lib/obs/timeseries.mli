(** Virtual-time tumbling-window aggregation.

    A timeseries carves the virtual clock into fixed windows
    [[t0 + k*w, t0 + (k+1)*w)] and folds observations — a latency
    sample plus optional named breakdown components — into the window
    covering each sample's timestamp, independently per named track
    (the serving fleet uses one fleet track plus one per enclave).

    Windows close deterministically on the first observation (or
    {!finish}) at or past their upper boundary; skipped windows are
    zero-filled so every track's closed series is contiguous. A
    closing window snapshots the caller's gauges via the [probe]
    callback and reports through [on_close], then its latency sketch
    is merged into the track's cumulative {!sketch} and dropped — so
    a run holds O(windows) closed rows plus O(tracks) sketches, never
    O(requests), which is what lets [--stream] replay 10–100x request
    counts in flat memory. *)

type window = {
  w_index : int;  (** 0-based window number *)
  w_start_ns : int;
  w_end_ns : int;  (** window covers [w_start_ns, w_end_ns) *)
  w_count : int;  (** observations folded into the window *)
  w_sum_ns : int;
  w_max_ns : int;
  w_p50_ns : int;  (** sketch estimate; 0 when the window is empty *)
  w_p99_ns : int;
  w_overs : int;  (** samples strictly above [threshold_ns], else 0 *)
  w_comps : (string * int) list;  (** component sums, sorted by name *)
  w_gauges : (string * int) list;  (** probe snapshot at close *)
}

type t

val create :
  ?threshold_ns:int ->
  ?probe:(track:string -> (string * int) list) ->
  ?on_close:(track:string -> window -> unit) ->
  t0:int ->
  window_ns:int ->
  unit ->
  t
(** [threshold_ns] makes each window count samples strictly above it
    (the SLO "overs" feeding burn rates). [probe] is called once per
    closing window, in close order. @raise Invalid_argument when
    [window_ns <= 0]. *)

val record :
  t ->
  now:int ->
  track:string ->
  latency_ns:int ->
  ?comps:(string * int) list ->
  unit ->
  unit
(** Fold one observation into [track]'s window covering [now],
    closing (and zero-filling) any earlier windows first. Timestamps
    must be monotone per track and never before [t0].
    @raise Invalid_argument on a timestamp before the open window. *)

val finish : t -> now:int -> unit
(** Close every track's windows through the one covering [now - 1],
    zero-filling gaps, so all tracks end aligned on the same final
    window. No-op when [now <= t0]. *)

val windows : t -> track:string -> window list
(** Closed windows, ascending and contiguous from window 0. *)

val tracks : t -> string list
(** Sorted; a track exists once recorded on. *)

val sketch : t -> track:string -> Sketch.t option
(** Cumulative merge of the track's closed per-window sketches. *)
