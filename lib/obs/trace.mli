(** Flight recorder: a bounded ring buffer of timestamped structured
    events on the simulator's virtual clock.

    The {!Obs} registry aggregates; the recorder keeps the event-level
    timeline (span begin/end, ECALL/OCALL transitions, EPC faults,
    cache misses, WASI hostcalls, pager I/O) so a run can be replayed
    as a trace. Export with {!Trace_export} and open the result in
    [ui.perfetto.dev]. Bounded: once the ring wraps, the oldest events
    are overwritten (and counted in {!dropped}); the newest always
    survive. Disabled recorders cost one branch per would-be event. *)

type phase = Begin | End | Instant | Counter

type event = {
  ts : int;  (** virtual ns *)
  name : string;
  cat : string;  (** category: ["sgx"], ["epc"], ["ipfs"], ["wasi"], ... *)
  phase : phase;
  args : (string * int) list;
}

type t

val create : ?capacity:int -> ?enabled:bool -> now:(unit -> int) -> unit -> t
(** [now] supplies virtual-clock timestamps. Default capacity is 65536
    events; default enabled. *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit
val capacity : t -> int

val record :
  t -> cat:string -> phase:phase -> ?args:(string * int) list -> string -> unit
(** Append one event stamped [now ()]. No-op when disabled. *)

val instant : t -> cat:string -> ?args:(string * int) list -> string -> unit
val begin_span : t -> cat:string -> ?args:(string * int) list -> string -> unit
val end_span : t -> cat:string -> ?args:(string * int) list -> string -> unit

val counter : t -> cat:string -> string -> (string * int) list -> unit
(** A sampled value series (rendered as a counter track in Perfetto),
    e.g. EPC resident pages. *)

val total : t -> int
(** Events ever recorded, including overwritten ones. *)

val length : t -> int
(** Events currently held (at most the capacity). *)

val dropped : t -> int
(** Events lost to ring wrap-around since the last {!clear}:
    [total - length]. A non-zero value means the exported timeline is
    truncated at its start — {!Trace_export} stamps it into the trace
    metadata and {!Report} surfaces it, so a wrapped trace can never
    pass for a complete one. *)

val lost : t -> int
(** Events ever overwritten by wrap-around, accumulated across
    {!clear}s (which themselves discard intentionally and do not
    count). *)

val high_water : t -> int
(** Most events the ring ever held at once (survives {!clear}). Below
    the capacity, the ring never filled and nothing can have wrapped;
    at capacity, the ring filled — check {!dropped}/{!lost} for how
    much history was overwritten. *)

val clear : t -> unit

val events : t -> event list
(** Surviving events, oldest first. Timestamps are non-decreasing (the
    virtual clock never goes backwards). *)

val iter : t -> (event -> unit) -> unit
