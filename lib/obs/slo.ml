(* SLO specs and burn-rate evaluation.

   Everything here is exact integer arithmetic so a verdict replays
   bit-identically: quantiles are carried in ppm, budgets in ppm,
   burn factors in thousandths, and the windowed-objective test uses
   the nearest-rank identity (q-quantile > threshold iff
   overs > count - ceil(q * count)) instead of estimating the
   quantile itself. *)

type spec = {
  q_ppm : int;
  threshold_ns : int;
  window_ns : int;
  budget_ppm : int;
  fast_x1000 : int;
  fast_windows : int;
  slow_x1000 : int;
  slow_windows : int;
}

let ( let* ) = Result.bind

(* --- fixed-point decimal text, scale 10^k --- *)

let all_digits s =
  s <> "" && String.for_all (fun c -> c >= '0' && c <= '9') s

(* "14.4" at scale 1000 -> 14400; rejects precision finer than the
   scale so every accepted spec is exactly representable. *)
let parse_fixed ~what ~scale s =
  let fail () = Error (Printf.sprintf "slo: bad %s %S" what s) in
  match String.index_opt s '.' with
  | None -> if all_digits s then Ok (int_of_string s * scale) else fail ()
  | Some i ->
      let whole = String.sub s 0 i in
      let frac = String.sub s (i + 1) (String.length s - i - 1) in
      if not (all_digits whole && all_digits frac) then fail ()
      else
        let pow = int_of_float (10. ** float_of_int (String.length frac)) in
        if pow > scale || scale mod pow <> 0 then
          Error (Printf.sprintf "slo: %s %S finer than 1/%d" what s scale)
        else Ok ((int_of_string whole * scale) + (int_of_string frac * (scale / pow)))

(* v/scale as minimal decimal text: 14400/1000 -> "14.4". *)
let render_fixed ~scale v =
  let whole = v / scale and frac = v mod scale in
  if frac = 0 then string_of_int whole
  else begin
    let digits = String.length (string_of_int (scale - 1)) in
    let s = Printf.sprintf "%0*d" digits frac in
    let last = ref (String.length s) in
    while s.[!last - 1] = '0' do
      decr last
    done;
    Printf.sprintf "%d.%s" whole (String.sub s 0 !last)
  end

let units = [ ("ns", 1); ("us", 1_000); ("ms", 1_000_000); ("s", 1_000_000_000) ]

let parse_duration ~what s =
  let pick (u, m) =
    let lu = String.length u and ls = String.length s in
    if ls > lu && String.sub s (ls - lu) lu = u then
      Some (String.sub s 0 (ls - lu), m)
    else None
  in
  (* two-letter units listed first, so "2ms" never matches bare "s" *)
  match List.find_map pick units with
  | None -> Error (Printf.sprintf "slo: %s %S needs a ns/us/ms/s unit" what s)
  | Some (num, mult) ->
      let* v = parse_fixed ~what ~scale:mult num in
      if v <= 0 then Error (Printf.sprintf "slo: %s must be positive" what)
      else Ok v

let render_duration v =
  let u, m =
    if v mod 1_000_000_000 = 0 then ("s", 1_000_000_000)
    else if v mod 1_000_000 = 0 then ("ms", 1_000_000)
    else if v mod 1_000 = 0 then ("us", 1_000)
    else ("ns", 1)
  in
  Printf.sprintf "%d%s" (v / m) u

let parse_burn ~what s =
  match String.index_opt s 'x' with
  | None -> Error (Printf.sprintf "slo: %s %S wants FACTORxWINDOWS" what s)
  | Some i ->
      let* factor =
        parse_fixed ~what ~scale:1000 (String.sub s 0 i)
      in
      let wins = String.sub s (i + 1) (String.length s - i - 1) in
      if not (all_digits wins) || int_of_string wins = 0 then
        Error (Printf.sprintf "slo: %s %S wants a positive window count" what s)
      else if factor = 0 then
        Error (Printf.sprintf "slo: %s factor must be positive" what)
      else Ok (factor, int_of_string wins)

let parse s =
  match String.split_on_char ',' s with
  | [] | [ "" ] -> Error "slo: empty spec"
  | objective :: opts ->
      let* q_ppm, threshold_ns, window_ns =
        match String.index_opt objective '<' with
        | Some lt
          when String.length objective > 1 && objective.[0] = 'p' -> (
            let qs = String.sub objective 1 (lt - 1) in
            let rest =
              String.sub objective (lt + 1) (String.length objective - lt - 1)
            in
            match String.index_opt rest '@' with
            | None -> Error (Printf.sprintf "slo: %S wants THRESHOLD@WINDOW" rest)
            | Some at ->
                let* q = parse_fixed ~what:"quantile" ~scale:10_000 qs in
                if q <= 0 || q > 1_000_000 then
                  Error (Printf.sprintf "slo: quantile p%s outside (0, 100]" qs)
                else
                  let* thr =
                    parse_duration ~what:"threshold" (String.sub rest 0 at)
                  in
                  let* win =
                    parse_duration ~what:"window"
                      (String.sub rest (at + 1) (String.length rest - at - 1))
                  in
                  Ok (q, thr, win))
        | _ ->
            Error
              (Printf.sprintf "slo: %S wants the form p99<2ms@50ms" objective)
      in
      let rec fold budget fast slow = function
        | [] -> (
            match budget with
            | None -> Error "slo: missing budget=PCT%"
            | Some budget_ppm ->
                let fast_x1000, fast_windows =
                  Option.value fast ~default:(14_400, 1)
                in
                let slow_x1000, slow_windows =
                  Option.value slow ~default:(6_000, 5)
                in
                Ok
                  {
                    q_ppm;
                    threshold_ns;
                    window_ns;
                    budget_ppm;
                    fast_x1000;
                    fast_windows;
                    slow_x1000;
                    slow_windows;
                  })
        | opt :: rest -> (
            match String.index_opt opt '=' with
            | None -> Error (Printf.sprintf "slo: bad option %S" opt)
            | Some eq -> (
                let key = String.sub opt 0 eq in
                let v = String.sub opt (eq + 1) (String.length opt - eq - 1) in
                match key with
                | "budget" ->
                    let lv = String.length v in
                    if lv < 2 || v.[lv - 1] <> '%' then
                      Error (Printf.sprintf "slo: budget %S wants a %% suffix" v)
                    else
                      let* ppm =
                        parse_fixed ~what:"budget" ~scale:10_000
                          (String.sub v 0 (lv - 1))
                      in
                      if ppm <= 0 || ppm >= 1_000_000 then
                        Error "slo: budget outside (0%, 100%)"
                      else fold (Some ppm) fast slow rest
                | "fast" ->
                    let* b = parse_burn ~what:"fast" v in
                    fold budget (Some b) slow rest
                | "slow" ->
                    let* b = parse_burn ~what:"slow" v in
                    fold budget fast (Some b) rest
                | _ -> Error (Printf.sprintf "slo: unknown option %S" key)))
      in
      fold None None None opts

let render s =
  Printf.sprintf "p%s<%s@%s,budget=%s%%,fast=%sx%d,slow=%sx%d"
    (render_fixed ~scale:10_000 s.q_ppm)
    (render_duration s.threshold_ns)
    (render_duration s.window_ns)
    (render_fixed ~scale:10_000 s.budget_ppm)
    (render_fixed ~scale:1000 s.fast_x1000)
    s.fast_windows
    (render_fixed ~scale:1000 s.slow_x1000)
    s.slow_windows

(* --- evaluation --- *)

type violation = {
  vi_window : int;
  vi_start_ns : int;
  vi_end_ns : int;
  vi_count : int;
  vi_overs : int;
  vi_max_ns : int;
  vi_blame : string;
}

type alert = {
  al_kind : [ `Fast | `Slow ];
  al_window : int;
  al_start_ns : int;
  al_end_ns : int;
  al_burn_x1000 : int;
  al_blame : string;
}

type eval = {
  ev_windows : int;
  ev_total : int;
  ev_overs : int;
  ev_burn_x1000 : int;
  ev_violated : bool;
  ev_violations : violation list;
  ev_alerts : alert list;
  ev_first_fast_ns : int option;
  ev_first_slow_ns : int option;
}

let ceil_div a b = (a + b - 1) / b

(* Largest component by sum; ties break on name so the verdict is
   deterministic. "" when the range carries no components. *)
let dominant comps =
  List.fold_left
    (fun acc (k, v) ->
      match acc with
      | Some (_, bv) when bv > v -> acc
      | Some (bk, bv) when bv = v && String.compare bk k <= 0 -> acc
      | _ -> Some (k, v))
    None comps
  |> function
  | Some (k, _) -> k
  | None -> ""

let merge_comps lists =
  let tbl = Hashtbl.create 8 in
  List.iter
    (List.iter (fun (k, v) ->
         match Hashtbl.find_opt tbl k with
         | Some r -> r := !r + v
         | None -> Hashtbl.add tbl k (ref v)))
    lists;
  Hashtbl.fold (fun k v acc -> (k, !v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let burn_x1000 ~budget_ppm ~overs ~total =
  if total = 0 then 0 else overs * 1_000_000_000 / (total * budget_ppm)

let evaluate spec wins =
  let wins = Array.of_list wins in
  let n = Array.length wins in
  let violations = ref [] and alerts = ref [] in
  let first_fast = ref None and first_slow = ref None in
  let range_burn i k =
    let lo = i - k + 1 in
    let overs = ref 0 and total = ref 0 in
    for j = lo to i do
      overs := !overs + wins.(j).Timeseries.w_overs;
      total := !total + wins.(j).Timeseries.w_count
    done;
    ( burn_x1000 ~budget_ppm:spec.budget_ppm ~overs:!overs ~total:!total,
      !total )
  in
  let range_blame i k =
    let lo = i - k + 1 in
    let comps = ref [] in
    for j = lo to i do
      comps := wins.(j).Timeseries.w_comps :: !comps
    done;
    dominant (merge_comps !comps)
  in
  for i = 0 to n - 1 do
    let w = wins.(i) in
    (* windowed objective: nearest-rank q-quantile above threshold *)
    (if
       w.Timeseries.w_count > 0
       && w.w_overs
          > w.w_count - ceil_div (spec.q_ppm * w.w_count) 1_000_000
     then
       violations :=
         {
           vi_window = w.w_index;
           vi_start_ns = w.w_start_ns;
           vi_end_ns = w.w_end_ns;
           vi_count = w.w_count;
           vi_overs = w.w_overs;
           vi_max_ns = w.w_max_ns;
           vi_blame = dominant w.w_comps;
         }
         :: !violations);
    let rule kind k factor first =
      if i + 1 >= k then begin
        let burn, total = range_burn i k in
        if total > 0 && burn >= factor then begin
          let a =
            {
              al_kind = kind;
              al_window = wins.(i).w_index;
              al_start_ns = wins.(i - k + 1).w_start_ns;
              al_end_ns = wins.(i).w_end_ns;
              al_burn_x1000 = burn;
              al_blame = range_blame i k;
            }
          in
          alerts := a :: !alerts;
          if !first = None then first := Some a.al_end_ns
        end
      end
    in
    rule `Fast spec.fast_windows spec.fast_x1000 first_fast;
    rule `Slow spec.slow_windows spec.slow_x1000 first_slow
  done;
  let total = Array.fold_left (fun a w -> a + w.Timeseries.w_count) 0 wins in
  let overs = Array.fold_left (fun a w -> a + w.Timeseries.w_overs) 0 wins in
  {
    ev_windows = n;
    ev_total = total;
    ev_overs = overs;
    ev_burn_x1000 = burn_x1000 ~budget_ppm:spec.budget_ppm ~overs ~total;
    ev_violated = overs * 1_000_000 > spec.budget_ppm * total;
    ev_violations = List.rev !violations;
    ev_alerts = List.rev !alerts;
    ev_first_fast_ns = !first_fast;
    ev_first_slow_ns = !first_slow;
  }

(* --- JSON --- *)

let num i = Json.Num (float_of_int i)

let spec_to_json s =
  Json.Obj
    [
      ("text", Str (render s));
      ("q_ppm", num s.q_ppm);
      ("threshold_ns", num s.threshold_ns);
      ("window_ns", num s.window_ns);
      ("budget_ppm", num s.budget_ppm);
      ("fast_x1000", num s.fast_x1000);
      ("fast_windows", num s.fast_windows);
      ("slow_x1000", num s.slow_x1000);
      ("slow_windows", num s.slow_windows);
    ]

let opt_num = function None -> Json.Null | Some v -> num v

let eval_to_json e =
  let violation v =
    Json.Obj
      [
        ("window", num v.vi_window);
        ("start_ns", num v.vi_start_ns);
        ("end_ns", num v.vi_end_ns);
        ("count", num v.vi_count);
        ("overs", num v.vi_overs);
        ("max_ns", num v.vi_max_ns);
        ("blame", Str v.vi_blame);
      ]
  in
  let alert a =
    Json.Obj
      [
        ("kind", Str (match a.al_kind with `Fast -> "fast" | `Slow -> "slow"));
        ("window", num a.al_window);
        ("start_ns", num a.al_start_ns);
        ("end_ns", num a.al_end_ns);
        ("burn_x1000", num a.al_burn_x1000);
        ("blame", Str a.al_blame);
      ]
  in
  Json.Obj
    [
      ("windows", num e.ev_windows);
      ("total", num e.ev_total);
      ("overs", num e.ev_overs);
      ("burn_x1000", num e.ev_burn_x1000);
      ("violated", Bool e.ev_violated);
      ("violations", Arr (List.map violation e.ev_violations));
      ("alerts", Arr (List.map alert e.ev_alerts));
      ("first_fast_ns", opt_num e.ev_first_fast_ns);
      ("first_slow_ns", opt_num e.ev_first_slow_ns);
    ]
