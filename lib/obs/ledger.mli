(** Cycle ledger: hierarchical cost accounts with a conservation audit.

    Every charge site of the simulator books its nanoseconds into a
    dotted account path (["sgx.transition.ecall"], ["epc.fault"],
    ["mee.copy"], ["wasi.fd_read"], ...). Because the machine's clock
    only advances through {!Twine_sgx.Machine.charge}, the ledger can
    prove the books balance: {!audit} compares the booked total against
    elapsed virtual time and reports any unattributed residue. A zero
    residue means every virtual nanosecond of the run is attributed to
    exactly one account — the invariant the tests and the bench harness
    assert, and the property that turns a regression report into a
    diagnosis ({!diff} ranks which accounts absorbed a delta).

    A ledger also carries an optional {e context}: the guest function
    currently on top of the profiler's shadow stack ({!Profile} sets it
    when connected). Charges booked under a context additionally land in
    a function × account matrix, so a report can say "lu spends 61 % of
    its TWINE overhead in [epc.fault]". *)

type t

val create : ?now:(unit -> int) -> unit -> t
(** [now] supplies virtual time; {!audit} measures elapsed time from
    creation (or the last {!reset}) with it. *)

val book : t -> string -> int -> unit
(** Book [ns] nanoseconds (and one event) to the account. [ns = 0] still
    counts an event. @raise Invalid_argument on negative [ns]. *)

val set_context : t -> string option -> unit
(** Set the guest frame charges are attributed to in the function ×
    account matrix ([None]: no frame — matrix untouched). *)

val context : t -> string option

val set_tap : t -> (string -> int -> unit) option -> unit
(** Install (or clear) a booking tap: a callback invoked on {e every}
    {!book} with the account name and nanoseconds, after the account and
    running total are updated. This is the per-request slicing primitive
    of the serving fleet ({!Twine_serve}): while a request is live, its
    tap routes each booking into that request's cycle breakdown, so the
    per-request slices sum to the ledger total by construction — O(1)
    per charge, no per-request snapshots. Cleared by {!reset}. *)

val tap : t -> (string -> int -> unit) option

type entry = { ns : int; events : int }

val ns : t -> string -> int
(** 0 for an account never booked. *)

val events : t -> string -> int
val total : t -> int
(** Sum of all booked nanoseconds. *)

val accounts : t -> (string * entry) list
(** Sorted by account name, for stable reports and tests. *)

type audit = { elapsed_ns : int; booked_ns : int; residue_ns : int }

val audit : t -> audit
(** [residue_ns = elapsed_ns - booked_ns]: virtual time that passed
    without being booked anywhere (a charge site that bypassed the
    ledger), or — when negative — double-booked time. *)

val balanced : t -> bool
(** [residue_ns = 0]. *)

val reset : t -> unit
(** Drop all accounts, the matrix and the context; elapsed time
    restarts at [now ()]. *)

(** {2 Snapshots} — the serialisable view ([twine_cli diff] operates on
    these; schema {!schema}). *)

type snapshot = {
  elapsed_ns : int;
  booked_ns : int;
  accounts : (string * entry) list;  (** sorted by name *)
  matrix : (string * (string * int) list) list;
      (** function -> (account -> ns), both sorted by name *)
}

val snapshot : t -> snapshot

val schema : string

val to_json : snapshot -> Json.t
val of_json : Json.t -> (snapshot, string) result
val to_string : snapshot -> string
val of_string : string -> (snapshot, string) result

(** {2 Rendering} *)

val render : ?title:string -> t -> string
(** Hierarchical account tree (children sorted by cost, pass-through
    levels collapsed) with per-account share of the booked total, plus
    the audit line. *)

val render_snapshot : ?title:string -> snapshot -> string

val render_matrix : ?top:int -> snapshot -> string
(** The function × account matrix: top-N functions (default 6) by
    booked time, each with its account breakdown. Empty string when no
    context was ever set. *)

(** {2 Differential attribution} *)

type delta = { account : string; base_ns : int; cur_ns : int; delta_ns : int }

val diff : snapshot -> snapshot -> delta list
(** Per-account deltas [current - base] over the union of accounts,
    ranked by absolute delta (ties by name); accounts at zero in both
    runs are dropped. *)

val render_diff : ?top:int -> base:snapshot -> current:snapshot -> unit -> string
(** Ranked attribution of the total delta: the elapsed-time change, the
    top-N account deltas (default 24) with their share of the elapsed
    delta, then — for the biggest account movements that carry matrix
    data — the per-function breakdown of the change. *)
