(* Flight recorder: a bounded ring buffer of timestamped structured
   events on the simulator's virtual clock.

   Where the registry in {!Obs} answers "what did this run cost in
   aggregate", the recorder answers "when, and in what order": every
   span begin/end, enclave transition, EPC fault, cache miss or
   hostcall is appended as one event, and {!Trace_export} turns the
   buffer into a Chrome trace-event / Perfetto timeline. The buffer is
   a fixed-capacity ring so a tracing run has bounded memory: once it
   wraps, the oldest events are overwritten and only counted. When the
   recorder is disabled (or no recorder is attached to the registry at
   all) the hot paths reduce to a single branch. *)

type phase = Begin | End | Instant | Counter

type event = {
  ts : int;  (* virtual ns *)
  name : string;
  cat : string;
  phase : phase;
  args : (string * int) list;
}

let dummy_event = { ts = 0; name = ""; cat = ""; phase = Instant; args = [] }

type t = {
  now : unit -> int;
  capacity : int;
  buf : event array;
  mutable head : int;  (* next write slot *)
  mutable total : int;  (* events ever recorded *)
  mutable lost : int;  (* events overwritten by wrap, across clears *)
  mutable hwm : int;  (* most events ever held at once (survives clear) *)
  mutable enabled : bool;
}

let default_capacity = 65536

let create ?(capacity = default_capacity) ?(enabled = true) ~now () =
  if capacity < 1 then invalid_arg "Trace.create: capacity below 1";
  { now; capacity; buf = Array.make capacity dummy_event; head = 0; total = 0;
    lost = 0; hwm = 0; enabled }

let enabled t = t.enabled
let set_enabled t on = t.enabled <- on
let capacity t = t.capacity

let record t ~cat ~phase ?(args = []) name =
  if t.enabled then begin
    if t.total >= t.capacity then t.lost <- t.lost + 1;
    t.buf.(t.head) <- { ts = t.now (); name; cat; phase; args };
    t.head <- (t.head + 1) mod t.capacity;
    t.total <- t.total + 1;
    let held = min t.total t.capacity in
    if held > t.hwm then t.hwm <- held
  end

let instant t ~cat ?args name = record t ~cat ~phase:Instant ?args name
let begin_span t ~cat ?args name = record t ~cat ~phase:Begin ?args name
let end_span t ~cat ?args name = record t ~cat ~phase:End ?args name
let counter t ~cat name args = record t ~cat ~phase:Counter ~args name

let total t = t.total
let length t = min t.total t.capacity
let dropped t = max 0 (t.total - t.capacity)
let lost t = t.lost
let high_water t = t.hwm

let clear t =
  t.head <- 0;
  t.total <- 0

(* Oldest-to-newest. After a wrap the oldest surviving event sits at
   [head] (the slot about to be overwritten next). *)
let events t =
  let n = length t in
  let first = if t.total <= t.capacity then 0 else t.head in
  List.init n (fun i -> t.buf.((first + i) mod t.capacity))

let iter t f = List.iter f (events t)
