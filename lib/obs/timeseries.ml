(* Tumbling windows on the virtual clock.

   Per track, exactly one window is open at a time; observations land
   in the open window and the first timestamp at or past its boundary
   closes it (plus any skipped windows, zero-filled) before opening
   the covering one. Because the virtual clock is deterministic, every
   run closes the same windows at the same instants with the same
   contents — the retained and streaming serve modes produce the same
   series byte for byte.

   A closing window keeps only its reduced row (counts, sums, sketch
   quantiles, component sums, probed gauges); its latency sketch is
   merged into the track's cumulative sketch and dropped. Memory is
   O(closed windows + tracks), independent of observation count. *)

type window = {
  w_index : int;
  w_start_ns : int;
  w_end_ns : int;
  w_count : int;
  w_sum_ns : int;
  w_max_ns : int;
  w_p50_ns : int;
  w_p99_ns : int;
  w_overs : int;
  w_comps : (string * int) list;
  w_gauges : (string * int) list;
}

type cell = {
  c_index : int;
  mutable c_count : int;
  mutable c_sum : int;
  mutable c_max : int;
  mutable c_overs : int;
  c_sketch : Sketch.t;
  c_comps : (string, int ref) Hashtbl.t;
}

type track_state = {
  mutable tr_cur : cell;
  mutable tr_closed : window list;  (* newest first *)
  mutable tr_cum : Sketch.t;
}

type t = {
  t0 : int;
  window_ns : int;
  threshold_ns : int option;
  probe : (track:string -> (string * int) list) option;
  on_close : (track:string -> window -> unit) option;
  by_track : (string, track_state) Hashtbl.t;
}

let create ?threshold_ns ?probe ?on_close ~t0 ~window_ns () =
  if window_ns <= 0 then invalid_arg "Timeseries.create: window_ns <= 0";
  { t0; window_ns; threshold_ns; probe; on_close; by_track = Hashtbl.create 8 }

let fresh_cell index =
  {
    c_index = index;
    c_count = 0;
    c_sum = 0;
    c_max = 0;
    c_overs = 0;
    c_sketch = Sketch.create ();
    c_comps = Hashtbl.create 8;
  }

let track_state t name =
  match Hashtbl.find_opt t.by_track name with
  | Some st -> st
  | None ->
      let st =
        { tr_cur = fresh_cell 0; tr_closed = []; tr_cum = Sketch.create () }
      in
      Hashtbl.add t.by_track name st;
      st

let close_cell t name st =
  let c = st.tr_cur in
  let comps =
    Hashtbl.fold (fun k v acc -> (k, !v) :: acc) c.c_comps []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let gauges =
    match t.probe with Some p -> p ~track:name | None -> []
  in
  let q p = Option.value (Sketch.quantile c.c_sketch p) ~default:0 in
  let w =
    {
      w_index = c.c_index;
      w_start_ns = t.t0 + (c.c_index * t.window_ns);
      w_end_ns = t.t0 + ((c.c_index + 1) * t.window_ns);
      w_count = c.c_count;
      w_sum_ns = c.c_sum;
      w_max_ns = c.c_max;
      w_p50_ns = q 0.5;
      w_p99_ns = q 0.99;
      w_overs = c.c_overs;
      w_comps = comps;
      w_gauges = gauges;
    }
  in
  st.tr_closed <- w :: st.tr_closed;
  st.tr_cum <- Sketch.merge st.tr_cum c.c_sketch;
  st.tr_cur <- fresh_cell (c.c_index + 1);
  match t.on_close with Some f -> f ~track:name w | None -> ()

(* Close every window with index < upto, zero-filling skipped ones. *)
let advance_track t name st ~upto =
  while st.tr_cur.c_index < upto do
    close_cell t name st
  done

let record t ~now ~track ~latency_ns ?(comps = []) () =
  let idx = (now - t.t0) / t.window_ns in
  let st = track_state t track in
  if idx < st.tr_cur.c_index then
    invalid_arg "Timeseries.record: timestamp before the open window";
  advance_track t track st ~upto:idx;
  let c = st.tr_cur in
  c.c_count <- c.c_count + 1;
  c.c_sum <- c.c_sum + latency_ns;
  if latency_ns > c.c_max then c.c_max <- latency_ns;
  (match t.threshold_ns with
  | Some thr when latency_ns > thr -> c.c_overs <- c.c_overs + 1
  | _ -> ());
  Sketch.insert c.c_sketch latency_ns;
  List.iter
    (fun (k, v) ->
      match Hashtbl.find_opt c.c_comps k with
      | Some r -> r := !r + v
      | None -> Hashtbl.add c.c_comps k (ref v))
    comps

let sorted_tracks t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.by_track []
  |> List.sort String.compare

let finish t ~now =
  if now > t.t0 then begin
    let last = (now - 1 - t.t0) / t.window_ns in
    List.iter
      (fun name ->
        let st = Hashtbl.find t.by_track name in
        advance_track t name st ~upto:(last + 1))
      (sorted_tracks t)
  end

let windows t ~track =
  match Hashtbl.find_opt t.by_track track with
  | Some st -> List.rev st.tr_closed
  | None -> []

let tracks t = sorted_tracks t

let sketch t ~track =
  match Hashtbl.find_opt t.by_track track with
  | Some st -> Some st.tr_cum
  | None -> None
