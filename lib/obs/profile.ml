(* Calling-context profiler over a shadow call stack (see the .mli for
   the attribution rule). Self figures use segment accounting: the
   running totals [seg_fuel]/[seg_cycles] mark where the current frame's
   open segment began; every enter/exit closes the segment into the
   frame on top and starts a new one. This costs O(1) per call event and
   never double-counts, whatever the interleaving of calls, returns and
   unwinding traps. *)

type node = {
  id : int;  (* function index; -1 for the root *)
  mutable calls : int;
  mutable self_fuel : int;
  mutable self_cycles : int;
  mutable children : node list;  (* most recently created first *)
}

type t = {
  root : node;
  mutable stack : node list;  (* current path, innermost first *)
  mutable seg_fuel : int;
  mutable seg_cycles : int;
  mutable namer : int -> string;
  now : unit -> int;
  tracer : Trace.t option;
  mutable ledger : Ledger.t option;
}

let fresh_node id = { id; calls = 0; self_fuel = 0; self_cycles = 0; children = [] }

let default_namer id = Printf.sprintf "func[%d]" id

let create ?tracer ?(now = fun () -> 0) () =
  {
    root = fresh_node (-1);
    stack = [];
    seg_fuel = 0;
    seg_cycles = 0;
    namer = default_namer;
    now;
    tracer;
    ledger = None;
  }

let set_namer t namer = t.namer <- namer
let name t id = t.namer id
let depth t = List.length t.stack
let current t = match t.stack with cur :: _ -> Some cur.id | [] -> None

let connect_ledger t ledger = t.ledger <- Some ledger

(* Mirror the shadow-stack top into the ledger's context, so every
   charge the machine books while a guest frame is live lands in that
   frame's row of the function x account matrix. *)
let sync_context t =
  match t.ledger with
  | None -> ()
  | Some l ->
      Ledger.set_context l
        (match t.stack with cur :: _ -> Some (t.namer cur.id) | [] -> None)

let reset t =
  t.root.calls <- 0;
  t.root.self_fuel <- 0;
  t.root.self_cycles <- 0;
  t.root.children <- [];
  t.stack <- [];
  t.seg_fuel <- 0;
  t.seg_cycles <- 0;
  match t.ledger with Some l -> Ledger.set_context l None | None -> ()

(* Close the open self segment into the frame on top (dropped at top
   level: fuel only accrues inside some function body anyway) and mark
   the start of the next one. *)
let close_segment t ~fuel ~cycles =
  (match t.stack with
  | cur :: _ ->
      cur.self_fuel <- cur.self_fuel + (fuel - t.seg_fuel);
      cur.self_cycles <- cur.self_cycles + (cycles - t.seg_cycles)
  | [] -> ());
  t.seg_fuel <- fuel;
  t.seg_cycles <- cycles

let find_or_add parent id =
  match List.find_opt (fun n -> n.id = id) parent.children with
  | Some n -> n
  | None ->
      let n = fresh_node id in
      parent.children <- n :: parent.children;
      n

let enter t ~fuel id =
  close_segment t ~fuel ~cycles:(t.now ());
  let parent = match t.stack with cur :: _ -> cur | [] -> t.root in
  let node = find_or_add parent id in
  node.calls <- node.calls + 1;
  t.stack <- node :: t.stack;
  sync_context t;
  match t.tracer with
  | Some tr -> Trace.begin_span tr ~cat:"wasm" (t.namer id)
  | None -> ()

let exit t ~fuel id =
  match t.stack with
  | cur :: rest when cur.id = id ->
      close_segment t ~fuel ~cycles:(t.now ());
      t.stack <- rest;
      sync_context t;
      (match t.tracer with
      | Some tr -> Trace.end_span tr ~cat:"wasm" (t.namer id)
      | None -> ())
  | _ -> ()  (* unbalanced exit: ignore rather than corrupt the tree *)

(* --- aggregation --- *)

type fn = {
  fn_id : int;
  fn_name : string;
  calls : int;
  self_fuel : int;
  total_fuel : int;
  self_cycles : int;
  total_cycles : int;
}

module Iset = Set.Make (Int)

type acc = {
  mutable a_calls : int;
  mutable a_self_fuel : int;
  mutable a_total_fuel : int;
  mutable a_self_cycles : int;
  mutable a_total_cycles : int;
}

let functions t =
  let tbl = Hashtbl.create 16 in
  let get id =
    match Hashtbl.find_opt tbl id with
    | Some a -> a
    | None ->
        let a =
          { a_calls = 0; a_self_fuel = 0; a_total_fuel = 0;
            a_self_cycles = 0; a_total_cycles = 0 }
        in
        Hashtbl.add tbl id a;
        a
  in
  (* Returns the subtree's (fuel, cycles); a node adds its subtree to
     the per-function total only when no ancestor has the same id, so
     recursion is counted once per outermost activation. *)
  let rec walk ancestors (node : node) =
    let f = ref node.self_fuel and c = ref node.self_cycles in
    let ancestors' = Iset.add node.id ancestors in
    List.iter
      (fun child ->
        let cf, cc = walk ancestors' child in
        f := !f + cf;
        c := !c + cc)
      node.children;
    let a = get node.id in
    a.a_calls <- a.a_calls + node.calls;
    a.a_self_fuel <- a.a_self_fuel + node.self_fuel;
    a.a_self_cycles <- a.a_self_cycles + node.self_cycles;
    if not (Iset.mem node.id ancestors) then begin
      a.a_total_fuel <- a.a_total_fuel + !f;
      a.a_total_cycles <- a.a_total_cycles + !c
    end;
    (!f, !c)
  in
  List.iter (fun child -> ignore (walk Iset.empty child)) t.root.children;
  let fns =
    Hashtbl.fold
      (fun id a acc ->
        {
          fn_id = id;
          fn_name = t.namer id;
          calls = a.a_calls;
          self_fuel = a.a_self_fuel;
          total_fuel = a.a_total_fuel;
          self_cycles = a.a_self_cycles;
          total_cycles = a.a_total_cycles;
        }
        :: acc)
      tbl []
  in
  List.sort
    (fun x y ->
      match compare y.self_fuel x.self_fuel with
      | 0 -> compare x.fn_id y.fn_id
      | c -> c)
    fns

let iter t f =
  let rec go path (node : node) =
    let path = path @ [ node.id ] in
    f ~stack:path ~calls:node.calls ~self_fuel:node.self_fuel
      ~self_cycles:node.self_cycles;
    List.iter (go path) (List.rev node.children)
  in
  List.iter (go []) (List.rev t.root.children)

let total_fuel t =
  let sum = ref 0 in
  iter t (fun ~stack:_ ~calls:_ ~self_fuel ~self_cycles:_ -> sum := !sum + self_fuel);
  !sum

let edges t =
  let tbl = Hashtbl.create 16 in
  let rec go parent (node : node) =
    let key = (parent, node.id) in
    Hashtbl.replace tbl key
      (node.calls + Option.value ~default:0 (Hashtbl.find_opt tbl key));
    List.iter (go node.id) node.children
  in
  List.iter (go (-1)) t.root.children;
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
