(** Chrome trace-event / Perfetto export of a {!Trace} ring.

    The output is the JSON Object Format ([{"traceEvents": [...]}])
    understood by [ui.perfetto.dev] and [chrome://tracing]: span
    begin/end pairs become nested slices, instants become markers,
    counter events become counter tracks. Timestamps are the
    simulator's virtual nanoseconds expressed in the format's
    microsecond unit.

    Events land on pid 1 / tid 1 unless they carry a reserved ["tid"]
    arg, which assigns the event to that track instead (and is stripped
    from the exported args) — the serving fleet puts each enclave's
    request spans on its own track this way. [threads] names those extra
    tracks via [thread_name] metadata. [otherData] carries the ring's
    health ([recorded]/[dropped]/[lost]/[high_water]/[capacity]) so a
    truncated timeline is detectable from the artifact alone. *)

val to_json : ?process_name:string -> ?threads:(int * string) list -> Trace.t -> Json.t
val to_string : ?process_name:string -> ?threads:(int * string) list -> Trace.t -> string

val to_file :
  ?process_name:string -> ?threads:(int * string) list -> Trace.t -> string -> unit
(** Write [to_string] plus a trailing newline to a path. *)

val folded : ?metric:[ `Fuel | `Cycles ] -> Profile.t -> string
(** Folded-stack (flamegraph) text of a guest profile: one
    ["outer;mid;leaf weight"] line per distinct call path, sorted,
    weighted by self instructions ([`Fuel], default) or self
    virtual-clock ns ([`Cycles]). Zero-weight paths are omitted; the
    result feeds flamegraph.pl, inferno or speedscope directly. *)

val folded_to_file : ?metric:[ `Fuel | `Cycles ] -> Profile.t -> string -> unit
