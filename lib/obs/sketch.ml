(* Mergeable quantile sketch over non-negative integers.

   Log-linear bucketing: values below [subbuckets] are exact (one
   bucket per value); above that, the binade [2^e, 2^(e+1)) is split
   into [subbuckets] equal-width linear buckets of width 2^(e -
   sb_bits). A bucket's width over its lower bound is therefore at
   most 1/subbuckets, so the midpoint estimate is within alpha = 1 /
   (2 * subbuckets) relative error of any member — the bound
   advertised in the interface and asserted by `bench serve` against
   the exact retained-mode percentiles.

   All state is integers on a fixed bucket universe, so insertion
   order and merge grouping cannot perturb the result: the serving
   fleet merges per-window, per-enclave sketches into fleet tails and
   still replays byte-identically. *)

let sb_bits = 6
let subbuckets = 1 lsl sb_bits
let alpha = 1. /. float_of_int (2 * subbuckets)

(* Largest index: a 62-bit value has bit length 62, hence shift
   61 - sb_bits, hence index (62 - sb_bits) * subbuckets + (subbuckets
   - 1). One past that: *)
let nbuckets = (63 - sb_bits) * subbuckets

type t = {
  mutable s_count : int;
  mutable s_sum : int;
  mutable s_min : int;  (* max_int sentinel when empty *)
  mutable s_max : int;
  buckets : int array;
}

let create () =
  { s_count = 0; s_sum = 0; s_min = max_int; s_max = 0;
    buckets = Array.make nbuckets 0 }

let bitlen v =
  let b = ref 0 and v = ref v in
  while !v > 0 do
    incr b;
    v := !v lsr 1
  done;
  !b

let index_of v =
  if v < subbuckets then v
  else
    let shift = bitlen v - 1 - sb_bits in
    ((shift + 1) * subbuckets) + ((v lsr shift) - subbuckets)

(* Inclusive [lo, hi] range of bucket [i] — inverse of [index_of]. *)
let bounds_of i =
  if i < subbuckets then (i, i)
  else
    let shift = (i / subbuckets) - 1 in
    let lo = (subbuckets + (i mod subbuckets)) lsl shift in
    (lo, lo + (1 lsl shift) - 1)

let insert t v =
  if v < 0 then invalid_arg "Sketch.insert: negative value";
  t.s_count <- t.s_count + 1;
  t.s_sum <- t.s_sum + v;
  if v < t.s_min then t.s_min <- v;
  if v > t.s_max then t.s_max <- v;
  let i = index_of v in
  t.buckets.(i) <- t.buckets.(i) + 1

let merge a b =
  let t = create () in
  t.s_count <- a.s_count + b.s_count;
  t.s_sum <- a.s_sum + b.s_sum;
  t.s_min <- min a.s_min b.s_min;
  t.s_max <- max a.s_max b.s_max;
  for i = 0 to nbuckets - 1 do
    t.buckets.(i) <- a.buckets.(i) + b.buckets.(i)
  done;
  t

let count t = t.s_count
let sum t = t.s_sum
let vmin t = if t.s_count = 0 then 0 else t.s_min
let vmax t = t.s_max

let quantile t q =
  if q < 0. || q > 1. then invalid_arg "Sketch.quantile: q outside [0,1]";
  if t.s_count = 0 then None
  else begin
    (* nearest rank, with the same epsilon guard as Obs.quantile: an
       exact product like 0.99 *. 100. can land just above the integer
       and ceil to one whole rank too high *)
    let rank =
      let r = int_of_float (ceil ((q *. float_of_int t.s_count) -. 1e-9)) in
      if r < 1 then 1 else if r > t.s_count then t.s_count else r
    in
    (* ranks 1 and count are the tracked extremes — exact, no bucket *)
    if rank = 1 then Some t.s_min
    else if rank = t.s_count then Some t.s_max
    else begin
    let i = ref 0 and acc = ref 0 in
    while !acc < rank do
      acc := !acc + t.buckets.(!i);
      if !acc < rank then incr i
    done;
    let lo, hi = bounds_of !i in
    let mid = lo + ((hi - lo) / 2) in
    Some (min t.s_max (max t.s_min mid))
    end
  end

(* --- canonical JSON (twine-sketch/v1) --- *)

let schema = "twine-sketch/v1"

let to_json t =
  let pairs = ref [] in
  for i = nbuckets - 1 downto 0 do
    if t.buckets.(i) <> 0 then
      pairs :=
        Json.Arr [ Num (float_of_int i); Num (float_of_int t.buckets.(i)) ]
        :: !pairs
  done;
  Json.Obj
    [
      ("schema", Str schema);
      ("sb_bits", Num (float_of_int sb_bits));
      ("count", Num (float_of_int t.s_count));
      ("sum", Num (float_of_int t.s_sum));
      ("min", Num (float_of_int (vmin t)));
      ("max", Num (float_of_int t.s_max));
      ("buckets", Arr !pairs);
    ]

let of_json j =
  let ( let* ) = Result.bind in
  let field name conv =
    match Option.bind (Json.member name j) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "sketch: missing or bad %S" name)
  in
  let int_field name =
    let* f = field name Json.to_float in
    if Float.is_integer f then Ok (int_of_float f)
    else Error (Printf.sprintf "sketch: %S not an integer" name)
  in
  let* s = field "schema" Json.to_str in
  if s <> schema then Error (Printf.sprintf "sketch: schema %S" s)
  else
    let* sb = int_field "sb_bits" in
    if sb <> sb_bits then
      Error (Printf.sprintf "sketch: sb_bits %d (want %d)" sb sb_bits)
    else
      let* cnt = int_field "count" in
      let* sum = int_field "sum" in
      let* mn = int_field "min" in
      let* mx = int_field "max" in
      let* pairs = field "buckets" Json.to_list in
      let t = create () in
      let rec fill pop = function
        | [] ->
            if pop <> cnt then
              Error
                (Printf.sprintf "sketch: count %d but buckets hold %d" cnt pop)
            else begin
              t.s_count <- cnt;
              t.s_sum <- sum;
              t.s_min <- (if cnt = 0 then max_int else mn);
              t.s_max <- mx;
              Ok t
            end
        | Json.Arr [ Num i; Num c ] :: rest
          when Float.is_integer i && Float.is_integer c ->
            let i = int_of_float i and c = int_of_float c in
            if i < 0 || i >= nbuckets || c <= 0 then
              Error "sketch: bucket out of range"
            else begin
              t.buckets.(i) <- t.buckets.(i) + c;
              fill (pop + c) rest
            end
        | _ -> Error "sketch: malformed bucket pair"
      in
      fill 0 pairs
