(** Guest-level calling-context profiler.

    A shadow call stack is maintained by enter/exit events at every
    Wasm-function activation (both engines funnel through the same call
    path, so one pair of hooks covers the interpreter and AoT closures).
    Nodes of the resulting calling-context tree (CCT) accumulate, per
    call path: call counts, self instruction counts (from the engine's
    fuel meter) and self virtual-clock cycles.

    Attribution rule: time and fuel are charged to the frame on top of
    the shadow stack when they elapse. Host functions (WASI hostcalls,
    SQLite/IPFS crossings) push no frame, so their cost accrues to the
    calling Wasm frame's self figures — enclave-boundary cost shows up
    where it is incurred.

    The profiler is engine-agnostic: functions are integer indices, and
    a pluggable namer (typically {!Twine_wasm.Ast.func_name} over the
    module's name section) makes output symbolic. *)

type t

val create : ?tracer:Trace.t -> ?now:(unit -> int) -> unit -> t
(** [now] supplies virtual-clock timestamps (default: a constant clock,
    yielding pure instruction-count profiles). When [tracer] is given,
    every enter/exit also emits a ["wasm"]-category span into the
    flight-recorder ring, interleaving guest frames with the host's
    ECALL/EPC tracks in Perfetto. *)

val set_namer : t -> (int -> string) -> unit
(** Install the function-index → symbol mapping. The module is usually
    only known at run time, after the profiler is created. *)

val name : t -> int -> string
(** Symbol for a function index via the installed namer (default
    ["func[%d]"]). *)

(** {2 Event stream (the shadow stack)} *)

val enter : t -> fuel:int -> int -> unit
(** A function activation began. [fuel] is the engine's cumulative
    instruction counter; the delta since the last event is credited to
    the caller's self figures. *)

val exit : t -> fuel:int -> int -> unit
(** The matching activation ended (normally or by unwinding). The second
    argument is the function index; mismatched or excess exits are
    ignored, so a trap that unwinds several frames leaves the profile
    consistent. *)

val depth : t -> int
(** Current shadow-stack depth (0 at top level). *)

val current : t -> int option
(** Function index on top of the shadow stack, if any. *)

val connect_ledger : t -> Ledger.t -> unit
(** Mirror the shadow-stack top into the ledger's context: while a
    guest frame is live, every nanosecond the machine books lands in
    that frame's row of the ledger's function x account matrix. The
    context is cleared when the stack empties (and on {!reset}). *)

val reset : t -> unit
(** Drop all recorded data and any open frames. *)

(** {2 Aggregation} *)

type fn = {
  fn_id : int;
  fn_name : string;
  calls : int;
  self_fuel : int;  (** instructions retired in the function itself *)
  total_fuel : int;  (** self + callees (recursion counted once) *)
  self_cycles : int;  (** virtual-clock ns, incl. hostcalls it makes *)
  total_cycles : int;
}

val functions : t -> fn list
(** Per-function flat profile, aggregated over all call paths, sorted by
    [self_fuel] descending (ties by index). Recursive calls contribute
    to [total_*] only once per outermost activation. *)

val total_fuel : t -> int
(** Instructions attributed across the whole tree (= the engine's fuel
    delta over the profiled region when every frame is balanced). *)

val iter : t -> (stack:int list -> calls:int -> self_fuel:int -> self_cycles:int -> unit) -> unit
(** Depth-first walk of the CCT. [stack] is the call path, outermost
    first; one callback per distinct path (a call edge [a -> b] is any
    adjacent pair in a path, its count the target node's [calls]). *)

val edges : t -> ((int * int) * int) list
(** Call-edge counts [(caller, callee), n] summed over the CCT; the
    caller of a root frame is [-1]. *)
