(** Minimal dependency-free JSON: value type, compact printer,
    recursive-descent parser. Shared by the trace exporter, the
    benchmark baselines ({!Baseline}) and the tests validating both. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering. Integral [Num]s print without a
    fractional part so counters survive a round-trip textually. *)

val escape : string -> string
(** JSON string-body escaping (no surrounding quotes). *)

exception Parse_error of string

val parse_exn : string -> t
val parse : string -> (t, string) result

(** {2 Accessors} — [None] on type mismatch. *)

val member : string -> t -> t option
val to_list : t -> t list option
val to_float : t -> float option
val to_str : t -> string option
