(** Render a per-run cost breakdown from an {!Obs} registry. *)

val render : ?title:string -> ?profile:Profile.t -> ?ledger:Ledger.t -> Obs.t -> string
(** Aligned text table: counters (with derived cache hit rates for any
    [<p>.hit]/[<p>.miss] or [<p>.hit]/[<p>.fault] counter pair), cost
    histograms and span timings. When a flight recorder is attached to
    the registry, a trace-ring health section follows
    (capacity/recorded/held/high-water/dropped) with an explicit
    warning when the ring wrapped — a truncated trace never passes
    silently. With [profile], appends the guest
    hot-function table ({!profile_table}); with [ledger], the account
    tree with its conservation audit line and (when a profiler drove
    the context) the function x account matrix. *)

val profile_table : ?top:int -> Profile.t -> string
(** Top-N (default 10) guest functions by self instruction count:
    calls, self/total instructions, self/total virtual-clock ms, and
    self share of all attributed instructions. *)

val to_json : ?profile:Profile.t -> ?ledger:Ledger.t -> Obs.t -> string
(** The same data as a single machine-readable JSON object with
    [counters], [histograms] and [spans] members — plus [trace] (ring
    health) when a recorder is attached, [wasm_profile]
    (per-function calls/instructions/ns) when [profile] is given, and
    [ledger] (a {!Ledger.snapshot}: accounts, audit totals, matrix)
    when [ledger] is given. *)
