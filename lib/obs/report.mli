(** Render a per-run cost breakdown from an {!Obs} registry. *)

val render : ?title:string -> Obs.t -> string
(** Aligned text table: counters (with derived cache hit rates for any
    [<p>.hit]/[<p>.miss] or [<p>.hit]/[<p>.fault] counter pair), cost
    histograms and span timings. *)

val to_json : Obs.t -> string
(** The same data as a single machine-readable JSON object with
    [counters], [histograms] and [spans] members. *)
