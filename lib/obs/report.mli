(** Render a per-run cost breakdown from an {!Obs} registry. *)

val render : ?title:string -> ?profile:Profile.t -> Obs.t -> string
(** Aligned text table: counters (with derived cache hit rates for any
    [<p>.hit]/[<p>.miss] or [<p>.hit]/[<p>.fault] counter pair), cost
    histograms and span timings. With [profile], appends the guest
    hot-function table ({!profile_table}). *)

val profile_table : ?top:int -> Profile.t -> string
(** Top-N (default 10) guest functions by self instruction count:
    calls, self/total instructions, self/total virtual-clock ms, and
    self share of all attributed instructions. *)

val to_json : ?profile:Profile.t -> Obs.t -> string
(** The same data as a single machine-readable JSON object with
    [counters], [histograms] and [spans] members — plus [wasm_profile]
    (per-function calls/instructions/ns) when [profile] is given. *)
