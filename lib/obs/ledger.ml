(* Cycle ledger (see the .mli for the conservation argument). Accounts
   are a flat hashtable keyed by the dotted path; the hierarchy only
   materialises at render time, so booking stays O(1) per charge. *)

type account = { mutable a_ns : int; mutable a_events : int }

type t = {
  now : unit -> int;
  tbl : (string, account) Hashtbl.t;
  mutable booked : int;
  mutable start_ns : int;
  mutable ctx : string option;
  mutable tap : (string -> int -> unit) option;
  matrix_tbl : (string, (string, int) Hashtbl.t) Hashtbl.t;
}

let create ?(now = fun () -> 0) () =
  {
    now;
    tbl = Hashtbl.create 32;
    booked = 0;
    start_ns = now ();
    ctx = None;
    tap = None;
    matrix_tbl = Hashtbl.create 8;
  }

let cell t name =
  match Hashtbl.find_opt t.tbl name with
  | Some a -> a
  | None ->
      let a = { a_ns = 0; a_events = 0 } in
      Hashtbl.add t.tbl name a;
      a

let book t name ns =
  if ns < 0 then invalid_arg "Ledger.book: negative nanoseconds";
  let a = cell t name in
  a.a_ns <- a.a_ns + ns;
  a.a_events <- a.a_events + 1;
  t.booked <- t.booked + ns;
  (match t.tap with None -> () | Some f -> f name ns);
  match t.ctx with
  | None -> ()
  | Some ctx ->
      let row =
        match Hashtbl.find_opt t.matrix_tbl ctx with
        | Some r -> r
        | None ->
            let r = Hashtbl.create 8 in
            Hashtbl.add t.matrix_tbl ctx r;
            r
      in
      Hashtbl.replace row name
        (ns + Option.value ~default:0 (Hashtbl.find_opt row name))

let set_context t c = t.ctx <- c
let context t = t.ctx
let set_tap t f = t.tap <- f
let tap t = t.tap

type entry = { ns : int; events : int }

let ns t name =
  match Hashtbl.find_opt t.tbl name with Some a -> a.a_ns | None -> 0

let events t name =
  match Hashtbl.find_opt t.tbl name with Some a -> a.a_events | None -> 0

let total t = t.booked

let accounts t =
  Hashtbl.fold (fun k a acc -> (k, { ns = a.a_ns; events = a.a_events }) :: acc) t.tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

type audit = { elapsed_ns : int; booked_ns : int; residue_ns : int }

let audit t =
  let elapsed = t.now () - t.start_ns in
  { elapsed_ns = elapsed; booked_ns = t.booked; residue_ns = elapsed - t.booked }

let balanced t = (audit t).residue_ns = 0

let reset t =
  Hashtbl.reset t.tbl;
  Hashtbl.reset t.matrix_tbl;
  t.booked <- 0;
  t.ctx <- None;
  t.tap <- None;
  t.start_ns <- t.now ()

(* --- snapshots --- *)

type snapshot = {
  elapsed_ns : int;
  booked_ns : int;
  accounts : (string * entry) list;
  matrix : (string * (string * int) list) list;
}

let snapshot t =
  let a = audit t in
  let matrix =
    Hashtbl.fold
      (fun fn row acc ->
        let cells =
          Hashtbl.fold (fun k v l -> (k, v) :: l) row []
          |> List.sort (fun (a, _) (b, _) -> String.compare a b)
        in
        (fn, cells) :: acc)
      t.matrix_tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  {
    elapsed_ns = a.elapsed_ns;
    booked_ns = a.booked_ns;
    accounts = accounts t;
    matrix;
  }

let schema = "twine-ledger/v1"

let to_json (s : snapshot) =
  Json.Obj
    [ ("schema", Json.Str schema);
      ("elapsed_ns", Json.Num (float_of_int s.elapsed_ns));
      ("booked_ns", Json.Num (float_of_int s.booked_ns));
      ( "accounts",
        Json.Obj
          (List.map
             (fun (name, e) ->
               ( name,
                 Json.Obj
                   [ ("ns", Json.Num (float_of_int e.ns));
                     ("events", Json.Num (float_of_int e.events)) ] ))
             s.accounts) );
      ( "matrix",
        Json.Obj
          (List.map
             (fun (fn, cells) ->
               ( fn,
                 Json.Obj
                   (List.map
                      (fun (name, ns) -> (name, Json.Num (float_of_int ns)))
                      cells) ))
             s.matrix) ) ]

let to_string s = Json.to_string (to_json s)

let int_member name j =
  match Option.bind (Json.member name j) Json.to_float with
  | Some f -> Ok (int_of_float f)
  | None -> Error (Printf.sprintf "missing number %S" name)

let of_json j =
  match Json.member "schema" j with
  | Some (Json.Str s) when s = schema -> (
      match (int_member "elapsed_ns" j, int_member "booked_ns" j) with
      | Error e, _ | _, Error e -> Error e
      | Ok elapsed_ns, Ok booked_ns -> (
          let accounts =
            match Json.member "accounts" j with
            | Some (Json.Obj l) ->
                Some
                  (List.filter_map
                     (fun (name, v) ->
                       match
                         ( Option.bind (Json.member "ns" v) Json.to_float,
                           Option.bind (Json.member "events" v) Json.to_float )
                       with
                       | Some ns, Some ev ->
                           Some
                             (name, { ns = int_of_float ns; events = int_of_float ev })
                       | _ -> None)
                     l)
            | _ -> None
          in
          match accounts with
          | None -> Error "missing accounts object"
          | Some accounts ->
              let matrix =
                match Json.member "matrix" j with
                | Some (Json.Obj l) ->
                    List.map
                      (fun (fn, row) ->
                        let cells =
                          match row with
                          | Json.Obj cells ->
                              List.filter_map
                                (fun (name, v) ->
                                  Option.map
                                    (fun f -> (name, int_of_float f))
                                    (Json.to_float v))
                                cells
                          | _ -> []
                        in
                        (fn, cells))
                      l
                | _ -> []
              in
              Ok { elapsed_ns; booked_ns; accounts; matrix }))
  | Some (Json.Str s) -> Error (Printf.sprintf "unknown schema %S" s)
  | _ -> Error "missing schema field"

let of_string s = Result.bind (Json.parse s) of_json

(* --- rendering --- *)

let ms ns = float_of_int ns /. 1e6

(* The account hierarchy, materialised from the dotted paths: children
   sorted by subtree cost; levels with a single child and no booking of
   their own are collapsed into the child. *)
type rnode = {
  rpath : string;
  mutable rns : int;
  mutable revents : int;
  mutable rleaf : bool;
  mutable rkids : rnode list;
}

let build_tree accounts =
  let root = { rpath = ""; rns = 0; revents = 0; rleaf = false; rkids = [] } in
  let kid node path =
    match List.find_opt (fun k -> k.rpath = path) node.rkids with
    | Some k -> k
    | None ->
        let k = { rpath = path; rns = 0; revents = 0; rleaf = false; rkids = [] } in
        node.rkids <- k :: node.rkids;
        k
  in
  List.iter
    (fun (name, (e : entry)) ->
      let rec go node prefix = function
        | [] ->
            node.rleaf <- true;
            node.rns <- node.rns + e.ns;
            node.revents <- node.revents + e.events
        | seg :: rest ->
            let path = if prefix = "" then seg else prefix ^ "." ^ seg in
            go (kid node path) path rest
      in
      go root "" (String.split_on_char '.' name))
    accounts;
  let rec sum node =
    List.iter sum node.rkids;
    node.rns <- node.rns + List.fold_left (fun a k -> a + k.rns) 0 node.rkids;
    node.revents <- node.revents + List.fold_left (fun a k -> a + k.revents) 0 node.rkids;
    node.rkids <-
      List.sort
        (fun a b ->
          match compare b.rns a.rns with
          | 0 -> String.compare a.rpath b.rpath
          | c -> c)
        node.rkids
  in
  sum root;
  root

let render_accounts b accounts ~booked =
  let line fmt =
    Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt
  in
  line "%-42s %12s %7s %8s" "account" "total(ms)" "share" "events";
  let pct ns = 100. *. float_of_int ns /. float_of_int (max 1 booked) in
  let root = build_tree accounts in
  let rec pr depth node =
    match (node.rkids, node.rleaf) with
    | [ only ], false -> pr depth only
    | kids, _ ->
        line "%-42s %12.4f %6.1f%% %8s"
          (String.make (2 * depth) ' ' ^ node.rpath)
          (ms node.rns) (pct node.rns)
          (if node.rleaf then string_of_int node.revents else "");
        List.iter (pr (depth + 1)) kids
  in
  List.iter (pr 0) root.rkids

let audit_line (a : audit) =
  Printf.sprintf "audit: elapsed %d ns = booked %d ns + residue %d ns%s" a.elapsed_ns
    a.booked_ns a.residue_ns
    (if a.residue_ns = 0 then " (books balance)" else " (UNATTRIBUTED TIME)")

let render ?(title = "cycle ledger") t =
  let b = Buffer.create 1024 in
  Buffer.add_string b ("-- " ^ title ^ " --\n");
  render_accounts b (accounts t) ~booked:t.booked;
  Buffer.add_string b (audit_line (audit t));
  Buffer.add_char b '\n';
  Buffer.contents b

let render_snapshot ?(title = "cycle ledger") (s : snapshot) =
  let b = Buffer.create 1024 in
  Buffer.add_string b ("-- " ^ title ^ " --\n");
  render_accounts b s.accounts ~booked:s.booked_ns;
  Buffer.add_string b
    (audit_line
       {
         elapsed_ns = s.elapsed_ns;
         booked_ns = s.booked_ns;
         residue_ns = s.elapsed_ns - s.booked_ns;
       });
  Buffer.add_char b '\n';
  Buffer.contents b

let render_matrix ?(top = 6) (s : snapshot) =
  if s.matrix = [] then ""
  else begin
    let b = Buffer.create 1024 in
    let line fmt =
      Printf.ksprintf (fun str -> Buffer.add_string b str; Buffer.add_char b '\n') fmt
    in
    line "-- guest-frame x account breakdown --";
    line "%-24s %-30s %12s %7s" "function" "account" "total(ms)" "share";
    let rows =
      List.map
        (fun (fn, cells) ->
          (fn, cells, List.fold_left (fun a (_, ns) -> a + ns) 0 cells))
        s.matrix
      |> List.sort (fun (_, _, a) (_, _, b) -> compare b a)
    in
    let shown = List.filteri (fun i _ -> i < top) rows in
    List.iter
      (fun (fn, cells, row_total) ->
        let cells = List.sort (fun (_, a) (_, b) -> compare b a) cells in
        List.iteri
          (fun i (name, ns) ->
            line "%-24s %-30s %12.4f %6.1f%%"
              (if i = 0 then fn else "")
              name (ms ns)
              (100. *. float_of_int ns /. float_of_int (max 1 row_total)))
          cells)
      shown;
    let rest = List.length rows - List.length shown in
    if rest > 0 then line "  ... and %d more function(s)" rest;
    Buffer.contents b
  end

(* --- differential attribution --- *)

type delta = { account : string; base_ns : int; cur_ns : int; delta_ns : int }

let diff (a : snapshot) (b : snapshot) =
  let find (s : snapshot) name =
    match List.assoc_opt name s.accounts with Some e -> e.ns | None -> 0
  in
  let names =
    List.sort_uniq String.compare
      (List.map fst a.accounts @ List.map fst b.accounts)
  in
  List.filter_map
    (fun name ->
      let base_ns = find a name and cur_ns = find b name in
      if base_ns = 0 && cur_ns = 0 then None
      else Some { account = name; base_ns; cur_ns; delta_ns = cur_ns - base_ns })
    names
  |> List.sort (fun x y ->
         match compare (abs y.delta_ns) (abs x.delta_ns) with
         | 0 -> String.compare x.account y.account
         | c -> c)

let render_diff ?(top = 24) ~(base : snapshot) ~(current : snapshot) () =
  let b = Buffer.create 1024 in
  let line fmt =
    Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt
  in
  let deltas = diff base current in
  let elapsed_delta = current.elapsed_ns - base.elapsed_ns in
  line "== ledger diff: ranked attribution of the run delta ==";
  line "elapsed: %.4f -> %.4f ms (%+.4f ms, %+.1f%%)" (ms base.elapsed_ns)
    (ms current.elapsed_ns) (ms elapsed_delta)
    (100. *. float_of_int elapsed_delta
    /. Float.max 1.0 (Float.abs (float_of_int base.elapsed_ns)));
  (* share denominator: the elapsed change when there is one, else the
     total account movement (a pure reshuffle at equal run time) *)
  let denom =
    if elapsed_delta <> 0 then abs elapsed_delta
    else max 1 (List.fold_left (fun a d -> a + abs d.delta_ns) 0 deltas)
  in
  line "%-34s %13s %13s %14s %7s" "account" "base(ms)" "current(ms)" "delta(ms)"
    "share";
  let shown = List.filteri (fun i _ -> i < top) deltas in
  List.iter
    (fun d ->
      line "%-34s %13.4f %13.4f %+14.4f %6.1f%%" d.account (ms d.base_ns)
        (ms d.cur_ns) (ms d.delta_ns)
        (100. *. float_of_int (abs d.delta_ns) /. float_of_int denom))
    shown;
  let rest = List.length deltas - List.length shown in
  if rest > 0 then line "  ... and %d more account(s)" rest;
  (* per-function attribution of the top account movements *)
  let cell (s : snapshot) fn name =
    match List.assoc_opt fn s.matrix with
    | Some row -> Option.value ~default:0 (List.assoc_opt name row)
    | None -> 0
  in
  let fns =
    List.sort_uniq String.compare
      (List.map fst base.matrix @ List.map fst current.matrix)
  in
  if fns <> [] then begin
    let hot = List.filteri (fun i _ -> i < 3) deltas in
    List.iter
      (fun d ->
        let per_fn =
          List.filter_map
            (fun fn ->
              let bns = cell base fn d.account and cns = cell current fn d.account in
              if bns = 0 && cns = 0 then None else Some (fn, cns - bns, bns, cns))
            fns
          |> List.sort (fun (_, a, _, _) (_, b, _, _) -> compare (abs b) (abs a))
        in
        if per_fn <> [] then begin
          line "hot functions in %s:" d.account;
          List.iteri
            (fun i (fn, dns, bns, cns) ->
              if i < 5 then
                line "  %-24s %+12.4f ms  (%.4f -> %.4f)" fn (ms dns) (ms bns)
                  (ms cns))
            per_fn
        end)
      hot
  end;
  Buffer.contents b
