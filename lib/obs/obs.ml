(* Telemetry registry: counters, histograms and span tracing.

   One registry instance rides on each simulated machine; every layer of
   the stack (SGX transitions, EPC paging, protected-FS cache, WASI
   dispatch, the database pager, the Wasm engine) records into it so a
   single run can answer "what did this cost and why". Spans are timed
   on the simulator's *virtual* clock, injected as a [now] closure, so
   nesting attribution is exact and deterministic. *)

type counter = { mutable c_value : int }

type histogram = {
  mutable h_count : int;
  mutable h_sum : int;
  mutable h_min : int;
  mutable h_max : int;
  h_buckets : int array;
      (* power-of-two buckets: index = bit length of the sample, so
         bucket i holds samples in [2^(i-1), 2^i). Deterministic and
         O(1) per observation; quantiles read off the cumulative
         counts. 63 buckets cover every non-negative OCaml int. *)
  h_exemplars : int list array;
      (* per-bucket exemplar ids (newest first, capped): the caller can
         tag a sample with an id (e.g. a request id) and later ask which
         ids landed in the bucket covering a quantile. *)
}

let exemplar_cap = 8

let bucket_count = 63

let bucket_of v =
  if v <= 0 then 0
  else begin
    let b = ref 0 and v = ref v in
    while !v > 0 do
      incr b;
      v := !v lsr 1
    done;
    min !b (bucket_count - 1)
  end

(* Inclusive upper bound of a bucket: the largest value it can hold. *)
let bucket_upper i = if i = 0 then 0 else (1 lsl i) - 1

type span = {
  mutable sp_count : int;
  mutable sp_total_ns : int;  (* virtual time inside the span *)
  mutable sp_self_ns : int;  (* total minus time inside child spans *)
}

type frame = {
  fr_span : span;
  fr_name : string;
  fr_start : int;
  mutable fr_child_ns : int;
}

type t = {
  now : unit -> int;
  counters : (string, counter) Hashtbl.t;
  histograms : (string, histogram) Hashtbl.t;
  spans : (string, span) Hashtbl.t;
  mutable stack : frame list;
  mutable tracer : Trace.t option;
}

let create ?(now = fun () -> 0) () =
  {
    now;
    counters = Hashtbl.create 32;
    histograms = Hashtbl.create 32;
    spans = Hashtbl.create 16;
    stack = [];
    tracer = None;
  }

let reset t =
  Hashtbl.reset t.counters;
  Hashtbl.reset t.histograms;
  Hashtbl.reset t.spans;
  t.stack <- []

(* --- flight recorder attachment --- *)

let set_tracer t tr = t.tracer <- tr
let tracer t = t.tracer

let emit t ~cat ?args name =
  match t.tracer with Some tr -> Trace.instant tr ~cat ?args name | None -> ()

let emit_counter t ~cat name args =
  match t.tracer with Some tr -> Trace.counter tr ~cat name args | None -> ()

(* --- counters --- *)

let counter_cell t name =
  match Hashtbl.find_opt t.counters name with
  | Some c -> c
  | None ->
      let c = { c_value = 0 } in
      Hashtbl.add t.counters name c;
      c

let add t name n = (counter_cell t name).c_value <- (counter_cell t name).c_value + n
let inc t name = add t name 1

let value t name =
  match Hashtbl.find_opt t.counters name with Some c -> c.c_value | None -> 0

(* --- histograms --- *)

let note_exemplar h bucket id =
  let kept =
    let xs = h.h_exemplars.(bucket) in
    if List.length xs >= exemplar_cap then
      List.filteri (fun i _ -> i < exemplar_cap - 1) xs
    else xs
  in
  h.h_exemplars.(bucket) <- id :: kept

let observe ?exemplar t name v =
  let h =
    match Hashtbl.find_opt t.histograms name with
    | Some h ->
        h.h_count <- h.h_count + 1;
        h.h_sum <- h.h_sum + v;
        if v < h.h_min then h.h_min <- v;
        if v > h.h_max then h.h_max <- v;
        let b = h.h_buckets in
        b.(bucket_of v) <- b.(bucket_of v) + 1;
        h
    | None ->
        let b = Array.make bucket_count 0 in
        b.(bucket_of v) <- 1;
        let h =
          { h_count = 1; h_sum = v; h_min = v; h_max = v; h_buckets = b;
            h_exemplars = Array.make bucket_count [] }
        in
        Hashtbl.add t.histograms name h;
        h
  in
  match exemplar with
  | Some id -> note_exemplar h (bucket_of v) id
  | None -> ()

type hstat = { count : int; sum : int; min : int; max : int }

let hstat t name =
  match Hashtbl.find_opt t.histograms name with
  | Some h -> Some { count = h.h_count; sum = h.h_sum; min = h.h_min; max = h.h_max }
  | None -> None

(* Smallest bucket whose cumulative count covers rank(q). Nearest-rank:
   rank = ceil(q * count), clamped to [1, count]. The epsilon guards
   against float representation pushing an exact product just above the
   integer (0.99 *. 100. = 99.000…01, whose ceil would wrongly be 100 —
   one whole rank, i.e. a whole sample, too high). *)
let covering_bucket h q =
  let rank =
    let r = int_of_float (ceil ((q *. float_of_int h.h_count) -. 1e-9)) in
    if r < 1 then 1 else if r > h.h_count then h.h_count else r
  in
  let rec go i acc =
    if i >= bucket_count - 1 then (i, rank, acc)
    else
      let acc' = acc + h.h_buckets.(i) in
      if acc' >= rank then (i, rank, acc) else go (i + 1) acc'
  in
  go 0 0

(* Nearest-rank estimate interpolated within the covering bucket: the
   in-bucket samples are assumed evenly spread over [lower, upper], so
   the r-th of n sits at the midpoint of its 1/n slice. Clamping into
   the observed range keeps q=0/q=1 exact. Returning the bucket's
   upper bound here (the old behaviour) biased every estimate high by
   up to the full bucket width — almost 2x the true value when the
   covered sample sat at the bucket's lower bound. *)
let bucket_estimate h (bucket, rank, below) =
  (* ranks 1 and count are the smallest and largest samples themselves,
     which the histogram tracks exactly — so q=0 and q=1 never pay the
     bucket-resolution error *)
  if rank <= 1 then h.h_min
  else if rank >= h.h_count then h.h_max
  else begin
    let lower = if bucket = 0 then 0 else (bucket_upper (bucket - 1)) + 1 in
    let upper = bucket_upper bucket in
    let n = h.h_buckets.(bucket) in
    let est =
      if n = 0 then upper
      else lower + ((upper - lower) * ((2 * (rank - below)) - 1) / (2 * n))
    in
    min h.h_max (max h.h_min est)
  end

let quantile t name q =
  if q < 0. || q > 1. then invalid_arg "Obs.quantile: q outside [0,1]";
  match Hashtbl.find_opt t.histograms name with
  | None -> None
  | Some h -> Some (bucket_estimate h (covering_bucket h q))

let quantile_exemplars t name q =
  if q < 0. || q > 1. then invalid_arg "Obs.quantile_exemplars: q outside [0,1]";
  match Hashtbl.find_opt t.histograms name with
  | None -> None
  | Some h ->
      let ((b, _, _) as cov) = covering_bucket h q in
      Some (bucket_estimate h cov, h.h_exemplars.(b))

(* --- spans --- *)

let span_cell t name =
  match Hashtbl.find_opt t.spans name with
  | Some s -> s
  | None ->
      let s = { sp_count = 0; sp_total_ns = 0; sp_self_ns = 0 } in
      Hashtbl.add t.spans name s;
      s

let push_frame t name =
  let sp = span_cell t name in
  let fr = { fr_span = sp; fr_name = name; fr_start = t.now (); fr_child_ns = 0 } in
  t.stack <- fr :: t.stack;
  (match t.tracer with
  | Some tr -> Trace.begin_span tr ~cat:"span" name
  | None -> ());
  fr

(* Close the topmost frame: account its elapsed time to the span and to
   the parent's child time, and emit the matching trace End event. *)
let close_top t ~now =
  match t.stack with
  | [] -> ()
  | fr :: rest ->
      t.stack <- rest;
      let elapsed = now - fr.fr_start in
      let sp = fr.fr_span in
      sp.sp_count <- sp.sp_count + 1;
      sp.sp_total_ns <- sp.sp_total_ns + elapsed;
      sp.sp_self_ns <- sp.sp_self_ns + (elapsed - fr.fr_child_ns);
      (match rest with
      | parent :: _ -> parent.fr_child_ns <- parent.fr_child_ns + elapsed
      | [] -> ());
      (match t.tracer with
      | Some tr -> Trace.end_span tr ~cat:"span" fr.fr_name
      | None -> ())

(* Close [fr] and, first, every frame still open above it. An exit that
   skips nested exits (a continuation unwinding past inner spans) must
   close the skipped frames too — popping [fr] alone would silently drop
   their elapsed time from every ancestor's child accounting and corrupt
   self-time attribution. If [fr] is not on the stack at all (already
   closed by an outer out-of-order exit), do nothing. *)
let close_frame t fr =
  if List.memq fr t.stack then begin
    let now = t.now () in
    let rec pop () =
      match t.stack with
      | [] -> ()
      | top :: _ ->
          close_top t ~now;
          if top != fr then pop ()
    in
    pop ()
  end

let in_span t name f =
  let fr = push_frame t name in
  Fun.protect ~finally:(fun () -> close_frame t fr) f

let open_span t name = ignore (push_frame t name)

let close_span t name =
  match List.find_opt (fun fr -> fr.fr_name = name) t.stack with
  | Some fr -> close_frame t fr
  | None -> ()

type sstat = { calls : int; total_ns : int; self_ns : int }

let sstat t name =
  match Hashtbl.find_opt t.spans name with
  | Some s -> Some { calls = s.sp_count; total_ns = s.sp_total_ns; self_ns = s.sp_self_ns }
  | None -> None

let depth t = List.length t.stack

(* --- snapshots (sorted by name, for stable reports and tests) --- *)

let sorted_fold tbl f =
  Hashtbl.fold (fun k v acc -> (k, f v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let counters t = sorted_fold t.counters (fun c -> c.c_value)

let histograms t =
  sorted_fold t.histograms (fun h ->
      { count = h.h_count; sum = h.h_sum; min = h.h_min; max = h.h_max })

let spans t =
  sorted_fold t.spans (fun s ->
      { calls = s.sp_count; total_ns = s.sp_total_ns; self_ns = s.sp_self_ns })
