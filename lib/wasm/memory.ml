open Values

type t = {
  mutable data : Bytes.t;
  mutable pages : int;
  max_pages : int;
  hook : (addr:int -> len:int -> unit) option ref;
}

let max_addressable_pages = 65536

let create (l : Types.limits) =
  let max_pages = Option.value l.max ~default:max_addressable_pages in
  if l.min > max_pages then invalid_arg "Memory.create: min > max";
  {
    data = Bytes.make (l.min * Types.page_size) '\000';
    pages = l.min;
    max_pages;
    hook = ref None;
  }

let size_pages t = t.pages
let size_bytes t = t.pages * Types.page_size
let max_pages t = t.max_pages
let on_access t = t.hook

let grow t delta =
  if delta < 0 then trap "memory.grow: negative delta";
  let new_pages = t.pages + delta in
  if new_pages > t.max_pages || new_pages > max_addressable_pages then -1l
  else begin
    let old = t.pages in
    let grown = Bytes.make (new_pages * Types.page_size) '\000' in
    Bytes.blit t.data 0 grown 0 (Bytes.length t.data);
    t.data <- grown;
    t.pages <- new_pages;
    Int32.of_int old
  end

let check t addr len =
  if addr < 0 || len < 0 || addr + len > size_bytes t then
    trap "out of bounds memory access";
  match !(t.hook) with Some f -> f ~addr ~len | None -> ()

let load8_u t a =
  check t a 1;
  Int32.of_int (Char.code (Bytes.unsafe_get t.data a))

let load8_s t a =
  check t a 1;
  let v = Char.code (Bytes.unsafe_get t.data a) in
  Int32.of_int (if v >= 128 then v - 256 else v)

let load16_u t a =
  check t a 2;
  Int32.of_int (Bytes.get_uint16_le t.data a)

let load16_s t a =
  check t a 2;
  Int32.of_int (Bytes.get_int16_le t.data a)

let load32 t a =
  check t a 4;
  Bytes.get_int32_le t.data a

let load64 t a =
  check t a 8;
  Bytes.get_int64_le t.data a

let store8 t a v =
  check t a 1;
  Bytes.unsafe_set t.data a (Char.unsafe_chr (Int32.to_int v land 0xff))

let store16 t a v =
  check t a 2;
  Bytes.set_uint16_le t.data a (Int32.to_int v land 0xffff)

let store32 t a v =
  check t a 4;
  Bytes.set_int32_le t.data a v

let store64 t a v =
  check t a 8;
  Bytes.set_int64_le t.data a v

let load_bytes t a n =
  check t a n;
  Bytes.sub_string t.data a n

let store_bytes t a s =
  check t a (String.length s);
  Bytes.blit_string s 0 t.data a (String.length s)

let load_cstring t a =
  let rec find_end i =
    if i >= size_bytes t then trap "unterminated string"
    else if Bytes.get t.data i = '\000' then i
    else find_end (i + 1)
  in
  if a < 0 || a >= size_bytes t then trap "out of bounds memory access";
  let e = find_end a in
  (* bounds-check the scanned range (including the NUL) through [check]
     so the access hook sees the read and EPC pressure is accounted *)
  check t a (e - a + 1);
  Bytes.sub_string t.data a (e - a)
