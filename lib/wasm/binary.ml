open Types
open Ast

exception Decode_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Decode_error s)) fmt

(* --- LEB128 --- *)

let emit_u32 b v =
  let v = ref v in
  let continue_ = ref true in
  while !continue_ do
    let byte = !v land 0x7f in
    v := !v lsr 7;
    if !v = 0 then begin
      Buffer.add_char b (Char.chr byte);
      continue_ := false
    end
    else Buffer.add_char b (Char.chr (byte lor 0x80))
  done

let emit_s64 b v =
  let v = ref v in
  let continue_ = ref true in
  while !continue_ do
    let byte = Int64.to_int (Int64.logand !v 0x7fL) in
    v := Int64.shift_right !v 7;
    let done_ =
      (!v = 0L && byte land 0x40 = 0) || (!v = -1L && byte land 0x40 <> 0)
    in
    if done_ then begin
      Buffer.add_char b (Char.chr byte);
      continue_ := false
    end
    else Buffer.add_char b (Char.chr (byte lor 0x80))
  done

let emit_s32 b (v : int32) = emit_s64 b (Int64.of_int32 v)

let emit_f32 b v =
  let bits = Int32.bits_of_float v in
  for i = 0 to 3 do
    Buffer.add_char b
      (Char.chr (Int32.to_int (Int32.shift_right_logical bits (8 * i)) land 0xff))
  done

let emit_f64 b v =
  let bits = Int64.bits_of_float v in
  for i = 0 to 7 do
    Buffer.add_char b
      (Char.chr (Int64.to_int (Int64.shift_right_logical bits (8 * i)) land 0xff))
  done

let emit_name b s =
  emit_u32 b (String.length s);
  Buffer.add_string b s

(* --- value types --- *)

let byte_of_valtype = function I32 -> 0x7f | I64 -> 0x7e | F32 -> 0x7d | F64 -> 0x7c

let valtype_of_byte = function
  | 0x7f -> I32
  | 0x7e -> I64
  | 0x7d -> F32
  | 0x7c -> F64
  | b -> fail "bad value type 0x%02x" b

(* --- opcode tables for no-immediate instructions --- *)

let simple_opcodes =
  [ (Unreachable, 0x00); (Nop, 0x01); (Return, 0x0f); (Drop, 0x1a); (Select, 0x1b);
    (Memory_size, 0x3f); (Memory_grow, 0x40);
    (I32_eqz, 0x45);
    (I32_relop Eq, 0x46); (I32_relop Ne, 0x47); (I32_relop Lt_s, 0x48);
    (I32_relop Lt_u, 0x49); (I32_relop Gt_s, 0x4a); (I32_relop Gt_u, 0x4b);
    (I32_relop Le_s, 0x4c); (I32_relop Le_u, 0x4d); (I32_relop Ge_s, 0x4e);
    (I32_relop Ge_u, 0x4f);
    (I64_eqz, 0x50);
    (I64_relop Eq, 0x51); (I64_relop Ne, 0x52); (I64_relop Lt_s, 0x53);
    (I64_relop Lt_u, 0x54); (I64_relop Gt_s, 0x55); (I64_relop Gt_u, 0x56);
    (I64_relop Le_s, 0x57); (I64_relop Le_u, 0x58); (I64_relop Ge_s, 0x59);
    (I64_relop Ge_u, 0x5a);
    (F32_relop Feq, 0x5b); (F32_relop Fne, 0x5c); (F32_relop Flt, 0x5d);
    (F32_relop Fgt, 0x5e); (F32_relop Fle, 0x5f); (F32_relop Fge, 0x60);
    (F64_relop Feq, 0x61); (F64_relop Fne, 0x62); (F64_relop Flt, 0x63);
    (F64_relop Fgt, 0x64); (F64_relop Fle, 0x65); (F64_relop Fge, 0x66);
    (I32_unop Clz, 0x67); (I32_unop Ctz, 0x68); (I32_unop Popcnt, 0x69);
    (I32_binop Add, 0x6a); (I32_binop Sub, 0x6b); (I32_binop Mul, 0x6c);
    (I32_binop Div_s, 0x6d); (I32_binop Div_u, 0x6e); (I32_binop Rem_s, 0x6f);
    (I32_binop Rem_u, 0x70); (I32_binop And, 0x71); (I32_binop Or, 0x72);
    (I32_binop Xor, 0x73); (I32_binop Shl, 0x74); (I32_binop Shr_s, 0x75);
    (I32_binop Shr_u, 0x76); (I32_binop Rotl, 0x77); (I32_binop Rotr, 0x78);
    (I64_unop Clz, 0x79); (I64_unop Ctz, 0x7a); (I64_unop Popcnt, 0x7b);
    (I64_binop Add, 0x7c); (I64_binop Sub, 0x7d); (I64_binop Mul, 0x7e);
    (I64_binop Div_s, 0x7f); (I64_binop Div_u, 0x80); (I64_binop Rem_s, 0x81);
    (I64_binop Rem_u, 0x82); (I64_binop And, 0x83); (I64_binop Or, 0x84);
    (I64_binop Xor, 0x85); (I64_binop Shl, 0x86); (I64_binop Shr_s, 0x87);
    (I64_binop Shr_u, 0x88); (I64_binop Rotl, 0x89); (I64_binop Rotr, 0x8a);
    (F32_unop Abs, 0x8b); (F32_unop Neg, 0x8c); (F32_unop Ceil, 0x8d);
    (F32_unop Floor, 0x8e); (F32_unop Trunc, 0x8f); (F32_unop Nearest, 0x90);
    (F32_unop Sqrt, 0x91);
    (F32_binop Fadd, 0x92); (F32_binop Fsub, 0x93); (F32_binop Fmul, 0x94);
    (F32_binop Fdiv, 0x95); (F32_binop Fmin, 0x96); (F32_binop Fmax, 0x97);
    (F32_binop Copysign, 0x98);
    (F64_unop Abs, 0x99); (F64_unop Neg, 0x9a); (F64_unop Ceil, 0x9b);
    (F64_unop Floor, 0x9c); (F64_unop Trunc, 0x9d); (F64_unop Nearest, 0x9e);
    (F64_unop Sqrt, 0x9f);
    (F64_binop Fadd, 0xa0); (F64_binop Fsub, 0xa1); (F64_binop Fmul, 0xa2);
    (F64_binop Fdiv, 0xa3); (F64_binop Fmin, 0xa4); (F64_binop Fmax, 0xa5);
    (F64_binop Copysign, 0xa6);
    (Cvt I32_wrap_i64, 0xa7);
    (Cvt I32_trunc_f32_s, 0xa8); (Cvt I32_trunc_f32_u, 0xa9);
    (Cvt I32_trunc_f64_s, 0xaa); (Cvt I32_trunc_f64_u, 0xab);
    (Cvt I64_extend_i32_s, 0xac); (Cvt I64_extend_i32_u, 0xad);
    (Cvt I64_trunc_f32_s, 0xae); (Cvt I64_trunc_f32_u, 0xaf);
    (Cvt I64_trunc_f64_s, 0xb0); (Cvt I64_trunc_f64_u, 0xb1);
    (Cvt F32_convert_i32_s, 0xb2); (Cvt F32_convert_i32_u, 0xb3);
    (Cvt F32_convert_i64_s, 0xb4); (Cvt F32_convert_i64_u, 0xb5);
    (Cvt F32_demote_f64, 0xb6);
    (Cvt F64_convert_i32_s, 0xb7); (Cvt F64_convert_i32_u, 0xb8);
    (Cvt F64_convert_i64_s, 0xb9); (Cvt F64_convert_i64_u, 0xba);
    (Cvt F64_promote_f32, 0xbb);
    (Cvt I32_reinterpret_f32, 0xbc); (Cvt I64_reinterpret_f64, 0xbd);
    (Cvt F32_reinterpret_i32, 0xbe); (Cvt F64_reinterpret_i64, 0xbf);
    (Cvt I32_extend8_s, 0xc0); (Cvt I32_extend16_s, 0xc1);
    (Cvt I64_extend8_s, 0xc2); (Cvt I64_extend16_s, 0xc3);
    (Cvt I64_extend32_s, 0xc4);
  ]

let opcode_of_simple = simple_opcodes
let simple_of_opcode = List.map (fun (i, o) -> (o, i)) simple_opcodes

let mem_opcodes =
  [ ((fun m -> I32_load m), 0x28); ((fun m -> I64_load m), 0x29);
    ((fun m -> F32_load m), 0x2a); ((fun m -> F64_load m), 0x2b);
    ((fun m -> I32_load8_s m), 0x2c); ((fun m -> I32_load8_u m), 0x2d);
    ((fun m -> I32_load16_s m), 0x2e); ((fun m -> I32_load16_u m), 0x2f);
    ((fun m -> I64_load8_s m), 0x30); ((fun m -> I64_load8_u m), 0x31);
    ((fun m -> I64_load16_s m), 0x32); ((fun m -> I64_load16_u m), 0x33);
    ((fun m -> I64_load32_s m), 0x34); ((fun m -> I64_load32_u m), 0x35);
    ((fun m -> I32_store m), 0x36); ((fun m -> I64_store m), 0x37);
    ((fun m -> F32_store m), 0x38); ((fun m -> F64_store m), 0x39);
    ((fun m -> I32_store8 m), 0x3a); ((fun m -> I32_store16 m), 0x3b);
    ((fun m -> I64_store8 m), 0x3c); ((fun m -> I64_store16 m), 0x3d);
    ((fun m -> I64_store32 m), 0x3e);
  ]

let mem_opcode_of_instr = function
  | I32_load m -> Some (0x28, m) | I64_load m -> Some (0x29, m)
  | F32_load m -> Some (0x2a, m) | F64_load m -> Some (0x2b, m)
  | I32_load8_s m -> Some (0x2c, m) | I32_load8_u m -> Some (0x2d, m)
  | I32_load16_s m -> Some (0x2e, m) | I32_load16_u m -> Some (0x2f, m)
  | I64_load8_s m -> Some (0x30, m) | I64_load8_u m -> Some (0x31, m)
  | I64_load16_s m -> Some (0x32, m) | I64_load16_u m -> Some (0x33, m)
  | I64_load32_s m -> Some (0x34, m) | I64_load32_u m -> Some (0x35, m)
  | I32_store m -> Some (0x36, m) | I64_store m -> Some (0x37, m)
  | F32_store m -> Some (0x38, m) | F64_store m -> Some (0x39, m)
  | I32_store8 m -> Some (0x3a, m) | I32_store16 m -> Some (0x3b, m)
  | I64_store8 m -> Some (0x3c, m) | I64_store16 m -> Some (0x3d, m)
  | I64_store32 m -> Some (0x3e, m)
  | _ -> None

(* --- instruction encoding --- *)

let emit_blocktype b = function
  | None -> Buffer.add_char b '\x40'
  | Some vt -> Buffer.add_char b (Char.chr (byte_of_valtype vt))

let rec emit_instr b = function
  | Block (bt, body) ->
      Buffer.add_char b '\x02';
      emit_blocktype b bt;
      List.iter (emit_instr b) body;
      Buffer.add_char b '\x0b'
  | Loop (bt, body) ->
      Buffer.add_char b '\x03';
      emit_blocktype b bt;
      List.iter (emit_instr b) body;
      Buffer.add_char b '\x0b'
  | If (bt, t, e) ->
      Buffer.add_char b '\x04';
      emit_blocktype b bt;
      List.iter (emit_instr b) t;
      if e <> [] then begin
        Buffer.add_char b '\x05';
        List.iter (emit_instr b) e
      end;
      Buffer.add_char b '\x0b'
  | Br k ->
      Buffer.add_char b '\x0c';
      emit_u32 b k
  | Br_if k ->
      Buffer.add_char b '\x0d';
      emit_u32 b k
  | Br_table (ks, d) ->
      Buffer.add_char b '\x0e';
      emit_u32 b (List.length ks);
      List.iter (emit_u32 b) ks;
      emit_u32 b d
  | Call f ->
      Buffer.add_char b '\x10';
      emit_u32 b f
  | Call_indirect ti ->
      Buffer.add_char b '\x11';
      emit_u32 b ti;
      Buffer.add_char b '\x00'
  | Local_get n -> Buffer.add_char b '\x20'; emit_u32 b n
  | Local_set n -> Buffer.add_char b '\x21'; emit_u32 b n
  | Local_tee n -> Buffer.add_char b '\x22'; emit_u32 b n
  | Global_get n -> Buffer.add_char b '\x23'; emit_u32 b n
  | Global_set n -> Buffer.add_char b '\x24'; emit_u32 b n
  | I32_const v -> Buffer.add_char b '\x41'; emit_s32 b v
  | I64_const v -> Buffer.add_char b '\x42'; emit_s64 b v
  | F32_const v -> Buffer.add_char b '\x43'; emit_f32 b v
  | F64_const v -> Buffer.add_char b '\x44'; emit_f64 b v
  | i -> (
      match mem_opcode_of_instr i with
      | Some (op, m) ->
          Buffer.add_char b (Char.chr op);
          emit_u32 b m.align;
          emit_u32 b m.offset
      | None -> (
          match List.assoc_opt i opcode_of_simple with
          | Some op -> Buffer.add_char b (Char.chr op)
          | None -> invalid_arg "Binary.encode: unsupported instruction"))

let emit_expr b instrs =
  List.iter (emit_instr b) instrs;
  Buffer.add_char b '\x0b'

let emit_limits b (l : limits) =
  match l.max with
  | None ->
      Buffer.add_char b '\x00';
      emit_u32 b l.min
  | Some mx ->
      Buffer.add_char b '\x01';
      emit_u32 b l.min;
      emit_u32 b mx

let section b id content =
  if Buffer.length content > 0 then begin
    Buffer.add_char b (Char.chr id);
    emit_u32 b (Buffer.length content);
    Buffer.add_buffer b content
  end

let encode (m : module_) =
  let out = Buffer.create 1024 in
  Buffer.add_string out "\x00asm\x01\x00\x00\x00";
  (* type section *)
  let b = Buffer.create 64 in
  if Array.length m.types > 0 then begin
    emit_u32 b (Array.length m.types);
    Array.iter
      (fun ft ->
        Buffer.add_char b '\x60';
        emit_u32 b (List.length ft.params);
        List.iter (fun vt -> Buffer.add_char b (Char.chr (byte_of_valtype vt))) ft.params;
        emit_u32 b (List.length ft.results);
        List.iter (fun vt -> Buffer.add_char b (Char.chr (byte_of_valtype vt))) ft.results)
      m.types
  end;
  section out 1 b;
  (* import section *)
  let b = Buffer.create 64 in
  if m.imports <> [] then begin
    emit_u32 b (List.length m.imports);
    List.iter
      (fun im ->
        emit_name b im.imp_module;
        emit_name b im.imp_name;
        match im.imp_desc with
        | Import_func ti ->
            Buffer.add_char b '\x00';
            emit_u32 b ti
        | Import_table l ->
            Buffer.add_char b '\x01';
            Buffer.add_char b '\x70';
            emit_limits b l
        | Import_memory l ->
            Buffer.add_char b '\x02';
            emit_limits b l
        | Import_global gt ->
            Buffer.add_char b '\x03';
            Buffer.add_char b (Char.chr (byte_of_valtype gt.gt_val));
            Buffer.add_char b (if gt.gt_mut = Var then '\x01' else '\x00'))
      m.imports
  end;
  section out 2 b;
  (* function section *)
  let b = Buffer.create 64 in
  if Array.length m.funcs > 0 then begin
    emit_u32 b (Array.length m.funcs);
    Array.iter (fun f -> emit_u32 b f.ftype) m.funcs
  end;
  section out 3 b;
  (* table section *)
  let b = Buffer.create 16 in
  (match m.tables with
  | Some l ->
      emit_u32 b 1;
      Buffer.add_char b '\x70';
      emit_limits b l
  | None -> ());
  section out 4 b;
  (* memory section *)
  let b = Buffer.create 16 in
  (match m.memories with
  | Some l ->
      emit_u32 b 1;
      emit_limits b l
  | None -> ());
  section out 5 b;
  (* global section *)
  let b = Buffer.create 64 in
  if Array.length m.globals > 0 then begin
    emit_u32 b (Array.length m.globals);
    Array.iter
      (fun g ->
        Buffer.add_char b (Char.chr (byte_of_valtype g.g_type.gt_val));
        Buffer.add_char b (if g.g_type.gt_mut = Var then '\x01' else '\x00');
        emit_expr b g.g_init)
      m.globals
  end;
  section out 6 b;
  (* export section *)
  let b = Buffer.create 64 in
  if m.exports <> [] then begin
    emit_u32 b (List.length m.exports);
    List.iter
      (fun e ->
        emit_name b e.exp_name;
        match e.exp_desc with
        | Export_func i -> Buffer.add_char b '\x00'; emit_u32 b i
        | Export_table i -> Buffer.add_char b '\x01'; emit_u32 b i
        | Export_memory i -> Buffer.add_char b '\x02'; emit_u32 b i
        | Export_global i -> Buffer.add_char b '\x03'; emit_u32 b i)
      m.exports
  end;
  section out 7 b;
  (* start section *)
  let b = Buffer.create 8 in
  (match m.start with Some i -> emit_u32 b i | None -> ());
  section out 8 b;
  (* element section *)
  let b = Buffer.create 64 in
  if m.elems <> [] then begin
    emit_u32 b (List.length m.elems);
    List.iter
      (fun e ->
        emit_u32 b 0;
        emit_expr b e.e_offset;
        emit_u32 b (List.length e.e_init);
        List.iter (emit_u32 b) e.e_init)
      m.elems
  end;
  section out 9 b;
  (* code section *)
  let b = Buffer.create 256 in
  if Array.length m.funcs > 0 then begin
    emit_u32 b (Array.length m.funcs);
    Array.iter
      (fun f ->
        let body = Buffer.create 64 in
        (* compress locals into (count, type) runs *)
        let runs =
          List.fold_left
            (fun acc vt ->
              match acc with
              | (n, t) :: rest when t = vt -> (n + 1, t) :: rest
              | _ -> (1, vt) :: acc)
            [] f.locals
          |> List.rev
        in
        emit_u32 body (List.length runs);
        List.iter
          (fun (n, t) ->
            emit_u32 body n;
            Buffer.add_char body (Char.chr (byte_of_valtype t)))
          runs;
        emit_expr body f.body;
        emit_u32 b (Buffer.length body);
        Buffer.add_buffer b body)
      m.funcs
  end;
  section out 10 b;
  (* data section *)
  let b = Buffer.create 64 in
  if m.datas <> [] then begin
    emit_u32 b (List.length m.datas);
    List.iter
      (fun d ->
        emit_u32 b 0;
        emit_expr b d.d_offset;
        emit_u32 b (String.length d.d_init);
        Buffer.add_string b d.d_init)
      m.datas
  end;
  section out 11 b;
  (* name custom section (function-name subsection only) *)
  let b = Buffer.create 64 in
  if m.names <> [] then begin
    emit_name b "name";
    let sub = Buffer.create 64 in
    let names = List.sort compare m.names in
    emit_u32 sub (List.length names);
    List.iter
      (fun (idx, n) ->
        emit_u32 sub idx;
        emit_name sub n)
      names;
    Buffer.add_char b '\x01';
    emit_u32 b (Buffer.length sub);
    Buffer.add_buffer b sub
  end;
  section out 0 b;
  Buffer.contents out

(* --- decoding --- *)

type reader = { src : string; mutable pos : int }

let byte r =
  if r.pos >= String.length r.src then fail "unexpected end of input";
  let c = Char.code r.src.[r.pos] in
  r.pos <- r.pos + 1;
  c

let read_u32 r =
  let rec go shift acc =
    let b = byte r in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 <> 0 then go (shift + 7) acc else acc
  in
  go 0 0

let read_s64 r =
  let rec go shift acc =
    let b = byte r in
    let acc = Int64.logor acc (Int64.shift_left (Int64.of_int (b land 0x7f)) shift) in
    if b land 0x80 <> 0 then go (shift + 7) acc
    else if shift + 7 < 64 && b land 0x40 <> 0 then
      Int64.logor acc (Int64.shift_left (-1L) (shift + 7))
    else acc
  in
  go 0 0L

let read_s32 r = Int64.to_int32 (read_s64 r)

let read_f32 r =
  let bits = ref 0l in
  for i = 0 to 3 do
    bits := Int32.logor !bits (Int32.shift_left (Int32.of_int (byte r)) (8 * i))
  done;
  Int32.float_of_bits !bits

let read_f64 r =
  let bits = ref 0L in
  for i = 0 to 7 do
    bits := Int64.logor !bits (Int64.shift_left (Int64.of_int (byte r)) (8 * i))
  done;
  Int64.float_of_bits !bits

let read_name r =
  let n = read_u32 r in
  if r.pos + n > String.length r.src then fail "name too long";
  let s = String.sub r.src r.pos n in
  r.pos <- r.pos + n;
  s

let read_limits r =
  match byte r with
  | 0 -> { min = read_u32 r; max = None }
  | 1 ->
      let mn = read_u32 r in
      let mx = read_u32 r in
      { min = mn; max = Some mx }
  | b -> fail "bad limits flag %d" b

let read_blocktype r =
  match byte r with
  | 0x40 -> None
  | b -> Some (valtype_of_byte b)

let read_memarg r =
  let align = read_u32 r in
  let offset = read_u32 r in
  { align; offset }

(* Returns (instrs, terminator) where terminator is `End or `Else. *)
let rec read_instrs r =
  let rec go acc =
    let op = byte r in
    match op with
    | 0x0b -> (List.rev acc, `End)
    | 0x05 -> (List.rev acc, `Else)
    | 0x02 ->
        let bt = read_blocktype r in
        let body, t = read_instrs r in
        if t <> `End then fail "block: expected end";
        go (Block (bt, body) :: acc)
    | 0x03 ->
        let bt = read_blocktype r in
        let body, t = read_instrs r in
        if t <> `End then fail "loop: expected end";
        go (Loop (bt, body) :: acc)
    | 0x04 ->
        let bt = read_blocktype r in
        let then_, t = read_instrs r in
        let else_ =
          match t with
          | `Else ->
              let e, t2 = read_instrs r in
              if t2 <> `End then fail "if: expected end";
              e
          | `End -> []
        in
        go (If (bt, then_, else_) :: acc)
    | 0x0c -> go (Br (read_u32 r) :: acc)
    | 0x0d -> go (Br_if (read_u32 r) :: acc)
    | 0x0e ->
        let n = read_u32 r in
        let targets = List.init n (fun _ -> read_u32 r) in
        let d = read_u32 r in
        go (Br_table (targets, d) :: acc)
    | 0x10 -> go (Call (read_u32 r) :: acc)
    | 0x11 ->
        let ti = read_u32 r in
        let tbl = byte r in
        if tbl <> 0 then fail "call_indirect: bad table index";
        go (Call_indirect ti :: acc)
    | 0x20 -> go (Local_get (read_u32 r) :: acc)
    | 0x21 -> go (Local_set (read_u32 r) :: acc)
    | 0x22 -> go (Local_tee (read_u32 r) :: acc)
    | 0x23 -> go (Global_get (read_u32 r) :: acc)
    | 0x24 -> go (Global_set (read_u32 r) :: acc)
    | 0x41 -> go (I32_const (read_s32 r) :: acc)
    | 0x42 -> go (I64_const (read_s64 r) :: acc)
    | 0x43 -> go (F32_const (read_f32 r) :: acc)
    | 0x44 -> go (F64_const (read_f64 r) :: acc)
    | op when op >= 0x28 && op <= 0x3e ->
        let mk = fst (List.nth mem_opcodes (op - 0x28)) in
        go (mk (read_memarg r) :: acc)
    | op -> (
        match List.assoc_opt op simple_of_opcode with
        | Some i -> go (i :: acc)
        | None -> fail "unknown opcode 0x%02x" op)
  in
  go []

let read_expr r =
  let instrs, t = read_instrs r in
  if t <> `End then fail "expression: expected end";
  instrs

let decode src =
  if String.length src < 8 || String.sub src 0 8 <> "\x00asm\x01\x00\x00\x00" then
    fail "bad magic/version";
  let r = { src; pos = 8 } in
  let m = ref empty_module in
  let func_types = ref [||] in
  while r.pos < String.length src do
    let id = byte r in
    let size = read_u32 r in
    let section_end = r.pos + size in
    (* Section framing must fit the input even for custom sections: the
       name-section leniency below applies to its contents, not to a
       truncated module. *)
    if section_end > String.length src then fail "section %d overruns input" id;
    (match id with
    | 1 ->
        let n = read_u32 r in
        let types =
          Array.init n (fun _ ->
              if byte r <> 0x60 then fail "bad functype tag";
              let np = read_u32 r in
              let params = List.init np (fun _ -> valtype_of_byte (byte r)) in
              let nr = read_u32 r in
              let results = List.init nr (fun _ -> valtype_of_byte (byte r)) in
              { params; results })
        in
        m := { !m with types }
    | 2 ->
        let n = read_u32 r in
        let imports =
          List.init n (fun _ ->
              let imp_module = read_name r in
              let imp_name = read_name r in
              let imp_desc =
                match byte r with
                | 0 -> Import_func (read_u32 r)
                | 1 ->
                    if byte r <> 0x70 then fail "bad table elemtype";
                    Import_table (read_limits r)
                | 2 -> Import_memory (read_limits r)
                | 3 ->
                    let vt = valtype_of_byte (byte r) in
                    let mut = if byte r = 1 then Var else Const in
                    Import_global { gt_mut = mut; gt_val = vt }
                | b -> fail "bad import kind %d" b
              in
              { imp_module; imp_name; imp_desc })
        in
        m := { !m with imports }
    | 3 ->
        let n = read_u32 r in
        func_types := Array.init n (fun _ -> read_u32 r)
    | 4 ->
        let n = read_u32 r in
        if n > 1 then fail "multiple tables";
        if n = 1 then begin
          if byte r <> 0x70 then fail "bad table elemtype";
          m := { !m with tables = Some (read_limits r) }
        end
    | 5 ->
        let n = read_u32 r in
        if n > 1 then fail "multiple memories";
        if n = 1 then m := { !m with memories = Some (read_limits r) }
    | 6 ->
        let n = read_u32 r in
        let globals =
          Array.init n (fun _ ->
              let vt = valtype_of_byte (byte r) in
              let mut = if byte r = 1 then Var else Const in
              let init = read_expr r in
              { g_type = { gt_mut = mut; gt_val = vt }; g_init = init })
        in
        m := { !m with globals }
    | 7 ->
        let n = read_u32 r in
        let exports =
          List.init n (fun _ ->
              let exp_name = read_name r in
              let exp_desc =
                match byte r with
                | 0 -> Export_func (read_u32 r)
                | 1 -> Export_table (read_u32 r)
                | 2 -> Export_memory (read_u32 r)
                | 3 -> Export_global (read_u32 r)
                | b -> fail "bad export kind %d" b
              in
              { exp_name; exp_desc })
        in
        m := { !m with exports }
    | 8 -> m := { !m with start = Some (read_u32 r) }
    | 9 ->
        let n = read_u32 r in
        let elems =
          List.init n (fun _ ->
              let flag = read_u32 r in
              if flag <> 0 then fail "unsupported elem flags";
              let e_offset = read_expr r in
              let cnt = read_u32 r in
              { e_offset; e_init = List.init cnt (fun _ -> read_u32 r) })
        in
        m := { !m with elems }
    | 10 ->
        let n = read_u32 r in
        if n <> Array.length !func_types then fail "code/function count mismatch";
        let funcs =
          Array.init n (fun i ->
              let _size = read_u32 r in
              let nruns = read_u32 r in
              let locals =
                List.concat
                  (List.init nruns (fun _ ->
                       let cnt = read_u32 r in
                       let vt = valtype_of_byte (byte r) in
                       List.init cnt (fun _ -> vt)))
              in
              let body = read_expr r in
              { ftype = !func_types.(i); locals; body })
        in
        m := { !m with funcs }
    | 11 ->
        let n = read_u32 r in
        let datas =
          List.init n (fun _ ->
              let flag = read_u32 r in
              if flag <> 0 then fail "unsupported data flags";
              let d_offset = read_expr r in
              let len = read_u32 r in
              if r.pos + len > String.length src then fail "data overruns input";
              let d_init = String.sub src r.pos len in
              r.pos <- r.pos + len;
              { d_offset; d_init })
        in
        m := { !m with datas }
    | 0 ->
        (* Custom sections carry no semantics; only "name" (function
           namemap) is understood. Per the spec, a malformed name
           section must not fail the module, so decode errors inside it
           just abandon the section. *)
        (try
           if read_name r = "name" then
             while r.pos < section_end do
               let sub_id = byte r in
               let sub_size = read_u32 r in
               let sub_end = r.pos + sub_size in
               if sub_end > section_end then fail "name subsection overruns section";
               if sub_id = 1 then begin
                 let n = read_u32 r in
                 let names = ref (!m).names in
                 for _ = 1 to n do
                   let idx = read_u32 r in
                   let nm = read_name r in
                   if r.pos > sub_end then fail "name entry overruns subsection";
                   names := (idx, nm) :: List.remove_assoc idx !names
                 done;
                 m := { !m with names = List.sort compare !names }
               end;
               r.pos <- sub_end
             done
         with Decode_error _ -> ());
        r.pos <- section_end
    | id -> fail "unknown section id %d" id);
    if r.pos <> section_end then fail "section %d: size mismatch" id
  done;
  !m

let func_name = Ast.func_name
