open Types
open Ast

type t = {
  mutable types : functype list;  (* reversed *)
  mutable n_types : int;
  mutable imports : import list;  (* reversed *)
  mutable n_import_funcs : int;
  mutable funcs : func list;  (* reversed *)
  mutable n_funcs : int;
  mutable tables : limits option;
  mutable memories : limits option;
  mutable globals : global list;  (* reversed *)
  mutable n_globals : int;
  mutable exports : export list;  (* reversed *)
  mutable start : int option;
  mutable elems : elem list;
  mutable datas : data list;
  mutable names : (int * string) list;  (* reversed; debug names by func index *)
  mutable sealed_imports : bool;
}

let create () =
  {
    types = [];
    n_types = 0;
    imports = [];
    n_import_funcs = 0;
    funcs = [];
    n_funcs = 0;
    tables = None;
    memories = None;
    globals = [];
    n_globals = 0;
    exports = [];
    start = None;
    elems = [];
    datas = [];
    names = [];
    sealed_imports = false;
  }

let add_type t ~params ~results =
  let ft = { params; results } in
  let rec find i = function
    | [] -> None
    | x :: rest -> if x = ft then Some (t.n_types - 1 - i) else find (i + 1) rest
  in
  match find 0 t.types with
  | Some i -> i
  | None ->
      t.types <- ft :: t.types;
      t.n_types <- t.n_types + 1;
      t.n_types - 1

let import_func t ~module_ ~name ~params ~results =
  if t.sealed_imports then
    invalid_arg "Builder.import_func: imports must precede local functions";
  let ti = add_type t ~params ~results in
  t.imports <-
    { imp_module = module_; imp_name = name; imp_desc = Import_func ti } :: t.imports;
  t.n_import_funcs <- t.n_import_funcs + 1;
  t.n_import_funcs - 1

let export_func t name idx =
  t.exports <- { exp_name = name; exp_desc = Export_func idx } :: t.exports

let set_func_name t idx name =
  t.names <- (idx, name) :: List.remove_assoc idx t.names

let add_func t ?name ~params ~results ~locals body =
  t.sealed_imports <- true;
  let ti = add_type t ~params ~results in
  t.funcs <- { ftype = ti; locals; body } :: t.funcs;
  t.n_funcs <- t.n_funcs + 1;
  let idx = t.n_import_funcs + t.n_funcs - 1 in
  (match name with
  | Some n ->
      export_func t n idx;
      set_func_name t idx n
  | None -> ());
  idx

let add_memory t ?export ?max min =
  t.memories <- Some { min; max };
  match export with
  | Some name -> t.exports <- { exp_name = name; exp_desc = Export_memory 0 } :: t.exports
  | None -> ()

let add_table t ?max min = t.tables <- Some { min; max }

let add_elem t ~offset init =
  t.elems <- t.elems @ [ { e_offset = [ I32_const (Int32.of_int offset) ]; e_init = init } ]

let add_global t ?export ~mut vt init =
  t.globals <- { g_type = { gt_mut = mut; gt_val = vt }; g_init = init } :: t.globals;
  t.n_globals <- t.n_globals + 1;
  let idx = t.n_globals - 1 in
  (match export with
  | Some name -> t.exports <- { exp_name = name; exp_desc = Export_global idx } :: t.exports
  | None -> ());
  idx

let add_data t ~offset init =
  t.datas <- t.datas @ [ { d_offset = [ I32_const (Int32.of_int offset) ]; d_init = init } ]

let set_start t idx = t.start <- Some idx

let build t =
  {
    types = Array.of_list (List.rev t.types);
    imports = List.rev t.imports;
    funcs = Array.of_list (List.rev t.funcs);
    tables = t.tables;
    memories = t.memories;
    globals = Array.of_list (List.rev t.globals);
    exports = List.rev t.exports;
    start = t.start;
    elems = t.elems;
    datas = t.datas;
    names = List.sort compare t.names;
  }

let i32 n = I32_const (Int32.of_int n)
let f64 x = F64_const x

let for_ ~local ~start ~bound body =
  start
  @ [ Local_set local;
      Block
        ( None,
          [ Loop
              ( None,
                [ Local_get local ] @ bound
                @ [ I32_relop Ge_s; Br_if 1 ]
                @ body
                @ [ Local_get local; i32 1; I32_binop Add; Local_set local; Br 0 ] );
          ] );
    ]
