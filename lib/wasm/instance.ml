(* Module instances: runtime structures, import resolution, and the
   constant-expression evaluation used for global/data/element offsets.
   Function invocation lives in [Interp] (and [Aot] for compiled code). *)

open Types
open Values
open Ast

exception Link_error of string

type t = {
  module_ : module_;
  mutable funcs : func_inst array;  (* imports first, then local functions *)
  table : int option array option;  (* entries are function indices *)
  memory : Memory.t option;
  globals : global_inst array;
  exports : (string, export_desc) Hashtbl.t;
  mutable fuel_used : int;  (* executed instruction counter (metering) *)
  mutable fuel_limit : int;
      (* trap deterministically once [fuel_used] exceeds this; [max_int]
         means unmetered. Both engines check at the same point, so the
         trapping fuel value is engine-independent. *)
  mutable hooks : hooks option;
      (* call-boundary observer (shadow call stack); [None] costs one
         branch per call *)
}

and func_inst =
  | Wasm of wasm_func
  | Host of functype * string * (value list -> value list)

and wasm_func = {
  w_type : functype;
  w_locals : valtype list;
  w_body : instr list;
  w_owner : t;
  w_index : int;  (* function index in the owner (for names/profiling) *)
  mutable w_compiled : (value array -> value list) option;
}

(* Invoked by [Interp.call_func] around every Wasm-function activation,
   in both engines (compiled bodies are entered through the same path).
   [on_exit] also runs when the function unwinds with an exception, so
   the observer's shadow stack stays balanced across traps. Host
   functions get no events: their cost accrues to the calling frame. *)
and hooks = { on_enter : int -> unit; on_exit : int -> unit }

and global_inst = { g_mut : mut; mutable g_value : value }

type extern =
  | Extern_func of func_inst
  | Extern_memory of Memory.t
  | Extern_global of global_inst
  | Extern_table of int option array

type imports = (string * string * extern) list

let func_type = function Wasm w -> w.w_type | Host (ft, _, _) -> ft

let host_func ~name ftype f = Host (ftype, name, f)

(* Constant expressions: a single [t.const] or [global.get] of an import. *)
let eval_const globals = function
  | [ I32_const v ] -> I32 v
  | [ I64_const v ] -> I64 v
  | [ F32_const v ] -> F32 v
  | [ F64_const v ] -> F64 v
  | [ Global_get i ] ->
      if i >= Array.length globals then raise (Link_error "const global index");
      globals.(i).g_value
  | _ -> raise (Link_error "unsupported constant expression")

let lookup_import imports im =
  let found =
    List.find_opt (fun (m, n, _) -> m = im.imp_module && n = im.imp_name) imports
  in
  match found with
  | Some (_, _, e) -> e
  | None ->
      raise
        (Link_error (Printf.sprintf "unresolved import %s.%s" im.imp_module im.imp_name))

let build ?(imports : imports = []) (m : module_) =
  (* Resolve imports in declaration order. *)
  let imp_funcs = ref [] and imp_mem = ref None and imp_globals = ref [] in
  let imp_table = ref None in
  List.iter
    (fun im ->
      match (im.imp_desc, lookup_import imports im) with
      | Import_func ti, Extern_func f ->
          let expected = m.types.(ti) in
          if func_type f <> expected then
            raise
              (Link_error
                 (Printf.sprintf "import %s.%s: type mismatch (%s vs %s)" im.imp_module
                    im.imp_name
                    (string_of_functype (func_type f))
                    (string_of_functype expected)));
          imp_funcs := f :: !imp_funcs
      | Import_memory _, Extern_memory mem -> imp_mem := Some mem
      | Import_global gt, Extern_global g ->
          if gt.gt_mut <> g.g_mut then raise (Link_error "global mutability mismatch");
          imp_globals := g :: !imp_globals
      | Import_table _, Extern_table tbl -> imp_table := Some tbl
      | _ -> raise (Link_error "import kind mismatch"))
    m.imports;
  let imported_funcs = Array.of_list (List.rev !imp_funcs) in
  let imported_globals = Array.of_list (List.rev !imp_globals) in
  let memory =
    match (!imp_mem, m.memories) with
    | Some mem, _ -> Some mem
    | None, Some lim -> Some (Memory.create lim)
    | None, None -> None
  in
  let table =
    match (!imp_table, m.tables) with
    | Some tbl, _ -> Some tbl
    | None, Some lim -> Some (Array.make lim.min None)
    | None, None -> None
  in
  let globals =
    Array.append imported_globals
      (Array.map
         (fun (g : Ast.global) ->
           {
             g_mut = g.g_type.gt_mut;
             g_value = eval_const imported_globals g.g_init;
           })
         m.globals)
  in
  let exports = Hashtbl.create 8 in
  List.iter (fun e -> Hashtbl.replace exports e.exp_name e.exp_desc) m.exports;
  let inst =
    {
      module_ = m;
      funcs = [||];
      table;
      memory;
      globals;
      exports;
      fuel_used = 0;
      fuel_limit = max_int;
      hooks = None;
    }
  in
  let n_imported = Array.length imported_funcs in
  inst.funcs <-
    Array.append imported_funcs
      (Array.mapi
         (fun i (f : Ast.func) ->
           Wasm
             {
               w_type = m.types.(f.ftype);
               w_locals = f.locals;
               w_body = f.body;
               w_owner = inst;
               w_index = n_imported + i;
               w_compiled = None;
             })
         m.funcs);
  (* Data segments. *)
  List.iter
    (fun (d : Ast.data) ->
      match inst.memory with
      | None -> raise (Link_error "data segment without memory")
      | Some mem -> (
          match eval_const imported_globals d.d_offset with
          | I32 off ->
              let off = Int32.to_int off in
              if off < 0 || off + String.length d.d_init > Memory.size_bytes mem then
                raise (Link_error "data segment out of bounds");
              Memory.store_bytes mem off d.d_init
          | _ -> raise (Link_error "data offset must be i32")))
    m.datas;
  (* Element segments. *)
  List.iter
    (fun (e : Ast.elem) ->
      match inst.table with
      | None -> raise (Link_error "element segment without table")
      | Some tbl -> (
          match eval_const imported_globals e.e_offset with
          | I32 off ->
              let off = Int32.to_int off in
              if off < 0 || off + List.length e.e_init > Array.length tbl then
                raise (Link_error "element segment out of bounds");
              List.iteri (fun i fidx -> tbl.(off + i) <- Some fidx) e.e_init
          | _ -> raise (Link_error "element offset must be i32")))
    m.elems;
  inst

let export_func inst name =
  match Hashtbl.find_opt inst.exports name with
  | Some (Export_func i) -> Some inst.funcs.(i)
  | _ -> None

let export_memory inst name =
  match Hashtbl.find_opt inst.exports name with
  | Some (Export_memory _) -> inst.memory
  | _ -> None

let export_global inst name =
  match Hashtbl.find_opt inst.exports name with
  | Some (Export_global i) -> Some inst.globals.(i)
  | _ -> None

let memory_exn inst =
  match inst.memory with
  | Some m -> m
  | None -> trap "module has no memory"
