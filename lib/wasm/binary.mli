(** WebAssembly binary format (.wasm) encoder and decoder.

    [encode] produces a spec-conformant binary module; [decode] parses one
    back (MVP + sign-extension operators), including the "name" custom
    section's function namemap. Round-tripping an AST through
    encode/decode is the identity up to type-index normalisation. *)

exception Decode_error of string

val encode : Ast.module_ -> string
val decode : string -> Ast.module_
(** @raise Decode_error on malformed input. A malformed name custom
    section is ignored rather than rejected, as the spec requires. *)

val func_name : Ast.module_ -> int -> string option
(** Symbolic name for a function index: the decoded name section, then
    an export name, then ["module.name"] for imports ({!Ast.func_name}). *)
