(** Programmatic construction of WebAssembly modules.

    This is the repo's analogue of a compiler back-end targeting Wasm: the
    PolyBench kernels and many tests build their modules through it. All
    indices are returned by the [add_*] functions, so callers never count
    by hand. *)

open Types
open Ast

type t

val create : unit -> t

val add_type : t -> params:valtype list -> results:valtype list -> int
(** Deduplicating: structurally equal types share an index. *)

val import_func : t -> module_:string -> name:string -> params:valtype list ->
  results:valtype list -> int
(** Declare a function import; returns its function index. All imports
    must be declared before any local function is added. *)

val add_func :
  t -> ?name:string -> params:valtype list -> results:valtype list ->
  locals:valtype list -> instr list -> int
(** Add a local function (optionally exported as [name], which is also
    recorded as its debug name); returns its function index. In the
    body, locals are indexed params-first. *)

val set_func_name : t -> int -> string -> unit
(** Record a debug name for a function index (the "name" custom
    section; see {!Ast.func_name}). Replaces any previous name. *)

val add_memory : t -> ?export:string -> ?max:int -> int -> unit
(** [add_memory t n] declares a memory of [n] (minimum) pages. *)

val add_table : t -> ?max:int -> int -> unit
val add_elem : t -> offset:int -> int list -> unit
val add_global : t -> ?export:string -> mut:mut -> valtype -> instr list -> int
val add_data : t -> offset:int -> string -> unit
val set_start : t -> int -> unit
val export_func : t -> string -> int -> unit

val build : t -> module_

(** {2 Instruction helpers} *)

val i32 : int -> instr
(** [i32 n] = [I32_const (Int32.of_int n)]. *)

val f64 : float -> instr

val for_ : local:int -> start:instr list -> bound:instr list -> instr list -> instr list
(** [for_ ~local ~start ~bound body]: a counted loop
    [for local = start; local < bound; local++ { body }]. [body] must be
    stack-neutral and may use [Br]-free structured control only (nested
    [for_] is fine). *)
