(* WAT parser: lexer -> s-expressions -> AST translation. *)

open Types
open Ast

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* --- S-expressions --- *)

type sexp = Atom of string | Str of string | List of sexp list

let lex src =
  let n = String.length src in
  let tokens = ref [] in
  let emit t = tokens := t :: !tokens in
  let i = ref 0 in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  while !i < n do
    let c = src.[!i] in
    if c = ';' && peek 1 = Some ';' then begin
      while !i < n && src.[!i] <> '\n' do incr i done
    end
    else if c = '(' && peek 1 = Some ';' then begin
      (* nested block comments *)
      let depth = ref 1 in
      i := !i + 2;
      while !i < n && !depth > 0 do
        if src.[!i] = '(' && peek 1 = Some ';' then begin
          incr depth;
          i := !i + 2
        end
        else if src.[!i] = ';' && peek 1 = Some ')' then begin
          decr depth;
          i := !i + 2
        end
        else incr i
      done
    end
    else if c = '(' then begin
      emit `LP;
      incr i
    end
    else if c = ')' then begin
      emit `RP;
      incr i
    end
    else if c = '"' then begin
      let b = Buffer.create 16 in
      incr i;
      let rec go () =
        if !i >= n then fail "unterminated string";
        match src.[!i] with
        | '"' -> incr i
        | '\\' -> (
            incr i;
            if !i >= n then fail "bad escape";
            (match src.[!i] with
            | 'n' -> Buffer.add_char b '\n'
            | 't' -> Buffer.add_char b '\t'
            | 'r' -> Buffer.add_char b '\r'
            | '\\' -> Buffer.add_char b '\\'
            | '"' -> Buffer.add_char b '"'
            | '\'' -> Buffer.add_char b '\''
            | 'u' -> fail "unicode escapes unsupported"
            | c1 ->
                (* two-digit hex escape *)
                let hexval c =
                  match c with
                  | '0' .. '9' -> Char.code c - 48
                  | 'a' .. 'f' -> Char.code c - 87
                  | 'A' .. 'F' -> Char.code c - 55
                  | _ -> fail "bad hex escape"
                in
                incr i;
                if !i >= n then fail "bad hex escape";
                Buffer.add_char b (Char.chr ((hexval c1 * 16) + hexval src.[!i])));
            incr i;
            go ())
        | c ->
            Buffer.add_char b c;
            incr i;
            go ()
      in
      go ();
      emit (`STR (Buffer.contents b))
    end
    else if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else begin
      let start = !i in
      while
        !i < n
        &&
        match src.[!i] with
        | ' ' | '\t' | '\n' | '\r' | '(' | ')' | '"' | ';' -> false
        | _ -> true
      do
        incr i
      done;
      emit (`ATOM (String.sub src start (!i - start)))
    end
  done;
  List.rev !tokens

let parse_sexps tokens =
  let rec parse_list acc = function
    | [] -> (List.rev acc, [])
    | `RP :: rest -> (List.rev acc, rest)
    | toks ->
        let s, rest = parse_one toks in
        parse_list (s :: acc) rest
  and parse_one = function
    | `LP :: rest ->
        let items, rest = parse_exprs rest in
        (List items, rest)
    | `ATOM a :: rest -> (Atom a, rest)
    | `STR s :: rest -> (Str s, rest)
    | `RP :: _ -> fail "unexpected )"
    | [] -> fail "unexpected end of input"
  and parse_exprs toks =
    let rec go acc = function
      | `RP :: rest -> (List.rev acc, rest)
      | [] -> fail "missing )"
      | toks ->
          let s, rest = parse_one toks in
          go (s :: acc) rest
    in
    go [] toks
  in
  let items, rest = parse_list [] tokens in
  if rest <> [] then fail "trailing tokens";
  items

(* --- numbers --- *)

let parse_i32 s =
  let s = String.concat "" (String.split_on_char '_' s) in
  (* OCaml's of_string accepts hex in [0, 2^32) and wraps, matching the
     WAT convention; unsigned decimal beyond max_int32 wraps via Int64 *)
  match Int32.of_string_opt s with
  | Some v -> v
  | None -> (
      match Int64.of_string_opt s with
      | Some v -> Int64.to_int32 v
      | None -> fail "bad i32 literal %S" s)

let parse_i64 s =
  let s = String.concat "" (String.split_on_char '_' s) in
  match Int64.of_string_opt s with
  | Some v -> v
  | None -> fail "bad i64 literal %S" s

let parse_float s =
  let s = String.concat "" (String.split_on_char '_' s) in
  match s with
  | "inf" -> Float.infinity
  | "-inf" -> Float.neg_infinity
  | "nan" | "+nan" -> Float.nan
  | "-nan" -> -.Float.nan
  | _ -> ( try float_of_string s with _ -> fail "bad float literal %S" s)

(* --- name environments --- *)

type env = {
  mutable func_names : (string * int) list;
  mutable global_names : (string * int) list;
  mutable type_names : (string * int) list;
}

let resolve_idx names s =
  if String.length s > 0 && s.[0] = '$' then
    match List.assoc_opt s names with
    | Some i -> i
    | None -> fail "unknown name %s" s
  else
    match int_of_string_opt s with Some i -> i | None -> fail "bad index %S" s

let valtype_of_atom = function
  | "i32" -> I32
  | "i64" -> I64
  | "f32" -> F32
  | "f64" -> F64
  | s -> fail "unknown value type %s" s

(* Parse (param ...) / (result ...) lists; returns types and names. *)
let parse_params items =
  List.concat_map
    (function
      | List (Atom "param" :: Atom n :: [ Atom ty ]) when n.[0] = '$' ->
          [ (Some n, valtype_of_atom ty) ]
      | List (Atom "param" :: tys) ->
          List.map (function Atom ty -> (None, valtype_of_atom ty) | _ -> fail "bad param") tys
      | _ -> fail "expected (param ...)")
    items

let parse_results items =
  List.concat_map
    (function
      | List (Atom "result" :: tys) ->
          List.map (function Atom ty -> valtype_of_atom ty | _ -> fail "bad result") tys
      | _ -> fail "expected (result ...)")
    items

let split_while p l =
  let rec go acc = function
    | x :: rest when p x -> go (x :: acc) rest
    | rest -> (List.rev acc, rest)
  in
  go [] l

let is_clause name = function List (Atom a :: _) -> a = name | _ -> false

(* --- instruction translation --- *)

(* Memarg: offset=N align=N tokens. *)
let parse_memarg atoms default_align =
  let offset = ref 0 and align = ref default_align in
  let rest =
    List.filter
      (fun s ->
        match s with
        | Atom a when String.length a > 7 && String.sub a 0 7 = "offset=" ->
            offset := int_of_string (String.sub a 7 (String.length a - 7));
            false
        | Atom a when String.length a > 6 && String.sub a 0 6 = "align=" ->
            align := int_of_string (String.sub a 6 (String.length a - 6));
            false
        | _ -> true)
      atoms
  in
  ({ offset = !offset; align = !align }, rest)

let simple_instrs =
  [ ("unreachable", Unreachable); ("nop", Nop); ("return", Return); ("drop", Drop);
    ("select", Select); ("memory.size", Memory_size); ("memory.grow", Memory_grow);
    ("i32.add", I32_binop Add); ("i32.sub", I32_binop Sub); ("i32.mul", I32_binop Mul);
    ("i32.div_s", I32_binop Div_s); ("i32.div_u", I32_binop Div_u);
    ("i32.rem_s", I32_binop Rem_s); ("i32.rem_u", I32_binop Rem_u);
    ("i32.and", I32_binop And); ("i32.or", I32_binop Or); ("i32.xor", I32_binop Xor);
    ("i32.shl", I32_binop Shl); ("i32.shr_s", I32_binop Shr_s);
    ("i32.shr_u", I32_binop Shr_u); ("i32.rotl", I32_binop Rotl);
    ("i32.rotr", I32_binop Rotr); ("i32.clz", I32_unop Clz); ("i32.ctz", I32_unop Ctz);
    ("i32.popcnt", I32_unop Popcnt); ("i32.eqz", I32_eqz);
    ("i32.eq", I32_relop Eq); ("i32.ne", I32_relop Ne); ("i32.lt_s", I32_relop Lt_s);
    ("i32.lt_u", I32_relop Lt_u); ("i32.gt_s", I32_relop Gt_s);
    ("i32.gt_u", I32_relop Gt_u); ("i32.le_s", I32_relop Le_s);
    ("i32.le_u", I32_relop Le_u); ("i32.ge_s", I32_relop Ge_s);
    ("i32.ge_u", I32_relop Ge_u);
    ("i64.add", I64_binop Add); ("i64.sub", I64_binop Sub); ("i64.mul", I64_binop Mul);
    ("i64.div_s", I64_binop Div_s); ("i64.div_u", I64_binop Div_u);
    ("i64.rem_s", I64_binop Rem_s); ("i64.rem_u", I64_binop Rem_u);
    ("i64.and", I64_binop And); ("i64.or", I64_binop Or); ("i64.xor", I64_binop Xor);
    ("i64.shl", I64_binop Shl); ("i64.shr_s", I64_binop Shr_s);
    ("i64.shr_u", I64_binop Shr_u); ("i64.rotl", I64_binop Rotl);
    ("i64.rotr", I64_binop Rotr); ("i64.clz", I64_unop Clz); ("i64.ctz", I64_unop Ctz);
    ("i64.popcnt", I64_unop Popcnt); ("i64.eqz", I64_eqz);
    ("i64.eq", I64_relop Eq); ("i64.ne", I64_relop Ne); ("i64.lt_s", I64_relop Lt_s);
    ("i64.lt_u", I64_relop Lt_u); ("i64.gt_s", I64_relop Gt_s);
    ("i64.gt_u", I64_relop Gt_u); ("i64.le_s", I64_relop Le_s);
    ("i64.le_u", I64_relop Le_u); ("i64.ge_s", I64_relop Ge_s);
    ("i64.ge_u", I64_relop Ge_u);
    ("f32.add", F32_binop Fadd); ("f32.sub", F32_binop Fsub);
    ("f32.mul", F32_binop Fmul); ("f32.div", F32_binop Fdiv);
    ("f32.min", F32_binop Fmin); ("f32.max", F32_binop Fmax);
    ("f32.copysign", F32_binop Copysign);
    ("f32.abs", F32_unop Abs); ("f32.neg", F32_unop Neg); ("f32.sqrt", F32_unop Sqrt);
    ("f32.ceil", F32_unop Ceil); ("f32.floor", F32_unop Floor);
    ("f32.trunc", F32_unop Trunc); ("f32.nearest", F32_unop Nearest);
    ("f32.eq", F32_relop Feq); ("f32.ne", F32_relop Fne); ("f32.lt", F32_relop Flt);
    ("f32.gt", F32_relop Fgt); ("f32.le", F32_relop Fle); ("f32.ge", F32_relop Fge);
    ("f64.add", F64_binop Fadd); ("f64.sub", F64_binop Fsub);
    ("f64.mul", F64_binop Fmul); ("f64.div", F64_binop Fdiv);
    ("f64.min", F64_binop Fmin); ("f64.max", F64_binop Fmax);
    ("f64.copysign", F64_binop Copysign);
    ("f64.abs", F64_unop Abs); ("f64.neg", F64_unop Neg); ("f64.sqrt", F64_unop Sqrt);
    ("f64.ceil", F64_unop Ceil); ("f64.floor", F64_unop Floor);
    ("f64.trunc", F64_unop Trunc); ("f64.nearest", F64_unop Nearest);
    ("f64.eq", F64_relop Feq); ("f64.ne", F64_relop Fne); ("f64.lt", F64_relop Flt);
    ("f64.gt", F64_relop Fgt); ("f64.le", F64_relop Fle); ("f64.ge", F64_relop Fge);
    ("i32.wrap_i64", Cvt I32_wrap_i64);
    ("i64.extend_i32_s", Cvt I64_extend_i32_s);
    ("i64.extend_i32_u", Cvt I64_extend_i32_u);
    ("i32.trunc_f32_s", Cvt I32_trunc_f32_s); ("i32.trunc_f32_u", Cvt I32_trunc_f32_u);
    ("i32.trunc_f64_s", Cvt I32_trunc_f64_s); ("i32.trunc_f64_u", Cvt I32_trunc_f64_u);
    ("i64.trunc_f32_s", Cvt I64_trunc_f32_s); ("i64.trunc_f32_u", Cvt I64_trunc_f32_u);
    ("i64.trunc_f64_s", Cvt I64_trunc_f64_s); ("i64.trunc_f64_u", Cvt I64_trunc_f64_u);
    ("f32.convert_i32_s", Cvt F32_convert_i32_s);
    ("f32.convert_i32_u", Cvt F32_convert_i32_u);
    ("f32.convert_i64_s", Cvt F32_convert_i64_s);
    ("f32.convert_i64_u", Cvt F32_convert_i64_u);
    ("f64.convert_i32_s", Cvt F64_convert_i32_s);
    ("f64.convert_i32_u", Cvt F64_convert_i32_u);
    ("f64.convert_i64_s", Cvt F64_convert_i64_s);
    ("f64.convert_i64_u", Cvt F64_convert_i64_u);
    ("f32.demote_f64", Cvt F32_demote_f64); ("f64.promote_f32", Cvt F64_promote_f32);
    ("i32.reinterpret_f32", Cvt I32_reinterpret_f32);
    ("i64.reinterpret_f64", Cvt I64_reinterpret_f64);
    ("f32.reinterpret_i32", Cvt F32_reinterpret_i32);
    ("f64.reinterpret_i64", Cvt F64_reinterpret_i64);
    ("i32.extend8_s", Cvt I32_extend8_s); ("i32.extend16_s", Cvt I32_extend16_s);
    ("i64.extend8_s", Cvt I64_extend8_s); ("i64.extend16_s", Cvt I64_extend16_s);
    ("i64.extend32_s", Cvt I64_extend32_s);
  ]

let mem_instrs =
  [ ("i32.load", (fun m -> I32_load m), 2); ("i64.load", (fun m -> I64_load m), 3);
    ("f32.load", (fun m -> F32_load m), 2); ("f64.load", (fun m -> F64_load m), 3);
    ("i32.load8_s", (fun m -> I32_load8_s m), 0); ("i32.load8_u", (fun m -> I32_load8_u m), 0);
    ("i32.load16_s", (fun m -> I32_load16_s m), 1);
    ("i32.load16_u", (fun m -> I32_load16_u m), 1);
    ("i64.load8_s", (fun m -> I64_load8_s m), 0); ("i64.load8_u", (fun m -> I64_load8_u m), 0);
    ("i64.load16_s", (fun m -> I64_load16_s m), 1);
    ("i64.load16_u", (fun m -> I64_load16_u m), 1);
    ("i64.load32_s", (fun m -> I64_load32_s m), 2);
    ("i64.load32_u", (fun m -> I64_load32_u m), 2);
    ("i32.store", (fun m -> I32_store m), 2); ("i64.store", (fun m -> I64_store m), 3);
    ("f32.store", (fun m -> F32_store m), 2); ("f64.store", (fun m -> F64_store m), 3);
    ("i32.store8", (fun m -> I32_store8 m), 0); ("i32.store16", (fun m -> I32_store16 m), 1);
    ("i64.store8", (fun m -> I64_store8 m), 0); ("i64.store16", (fun m -> I64_store16 m), 1);
    ("i64.store32", (fun m -> I64_store32 m), 2);
  ]

type fenv = {
  env : env;
  locals : (string * int) list;
  mutable labels : string option list;  (* innermost first *)
}

let label_index fenv s =
  if String.length s > 0 && s.[0] = '$' then begin
    let rec go i = function
      | [] -> fail "unknown label %s" s
      | Some l :: _ when l = s -> i
      | _ :: rest -> go (i + 1) rest
    in
    go 0 fenv.labels
  end
  else
    match int_of_string_opt s with Some i -> i | None -> fail "bad label %S" s

(* Parse the optional label and result type of a block header; returns
   (label, blocktype, remaining). *)
let parse_block_header fenv items =
  let label, items =
    match items with
    | Atom a :: rest when String.length a > 0 && a.[0] = '$' -> (Some a, rest)
    | _ -> (None, items)
  in
  let bt, items =
    match items with
    | List [ Atom "result"; Atom ty ] :: rest -> (Some (valtype_of_atom ty), rest)
    | _ -> (None, items)
  in
  ignore fenv;
  (label, bt, items)

let rec translate_instrs fenv (items : sexp list) : instr list =
  match items with
  | [] -> []
  | Atom a :: rest -> translate_plain fenv a rest
  | List (Atom a :: inner) :: rest ->
      (* folded form *)
      translate_folded fenv a inner @ translate_instrs fenv rest
  | s :: _ -> fail "unexpected token %s" (match s with Str s -> s | _ -> "?")

and translate_plain fenv a rest =
  (* a flat instruction possibly consuming following atoms as immediates *)
  match a with
  | "block" | "loop" ->
      let label, bt, body_items = parse_block_header fenv rest in
      (* flat blocks run to 'end' *)
      let body, rest = split_until_end body_items in
      fenv.labels <- label :: fenv.labels;
      let body_i = translate_instrs fenv body in
      fenv.labels <- List.tl fenv.labels;
      (if a = "block" then Block (bt, body_i) else Loop (bt, body_i))
      :: translate_instrs fenv rest
  | "if" ->
      let label, bt, body_items = parse_block_header fenv rest in
      let body, rest = split_until_end body_items in
      let then_items, else_items = split_at_else body in
      fenv.labels <- label :: fenv.labels;
      let t = translate_instrs fenv then_items in
      let e = translate_instrs fenv else_items in
      fenv.labels <- List.tl fenv.labels;
      If (bt, t, e) :: translate_instrs fenv rest
  | _ ->
      let instr, rest = translate_one fenv a rest in
      instr :: translate_instrs fenv rest

and translate_one fenv a rest : instr * sexp list =
  match List.assoc_opt a simple_instrs with
  | Some i -> (i, rest)
  | None -> (
      match List.find_opt (fun (n, _, _) -> n = a) mem_instrs with
      | Some (_, mk, def_align) ->
          let memarg, rest = parse_memarg rest def_align in
          (mk memarg, rest)
      | None -> (
          match (a, rest) with
          | "i32.const", Atom v :: rest -> (I32_const (parse_i32 v), rest)
          | "i64.const", Atom v :: rest -> (I64_const (parse_i64 v), rest)
          | "f32.const", Atom v :: rest ->
              (F32_const (Values.f32_round (parse_float v)), rest)
          | "f64.const", Atom v :: rest -> (F64_const (parse_float v), rest)
          | "local.get", Atom v :: rest -> (Local_get (resolve_idx fenv.locals v), rest)
          | "local.set", Atom v :: rest -> (Local_set (resolve_idx fenv.locals v), rest)
          | "local.tee", Atom v :: rest -> (Local_tee (resolve_idx fenv.locals v), rest)
          | "global.get", Atom v :: rest ->
              (Global_get (resolve_idx fenv.env.global_names v), rest)
          | "global.set", Atom v :: rest ->
              (Global_set (resolve_idx fenv.env.global_names v), rest)
          | "call", Atom v :: rest -> (Call (resolve_idx fenv.env.func_names v), rest)
          | "br", Atom v :: rest -> (Br (label_index fenv v), rest)
          | "br_if", Atom v :: rest -> (Br_if (label_index fenv v), rest)
          | "br_table", _ ->
              let rec take acc = function
                | Atom v :: more
                  when (v.[0] = '$' || int_of_string_opt v <> None) ->
                    take (label_index fenv v :: acc) more
                | more -> (List.rev acc, more)
              in
              let targets, rest = take [] rest in
              (match List.rev targets with
              | dflt :: others -> (Br_table (List.rev others, dflt), rest)
              | [] -> fail "br_table needs targets")
          | _ -> fail "unknown instruction %s" a))

and split_until_end items =
  let rec go depth acc = function
    | [] -> fail "missing end"
    | Atom "end" :: rest when depth = 0 -> (List.rev acc, rest)
    | (Atom ("block" | "loop" | "if") as x) :: rest -> go (depth + 1) (x :: acc) rest
    | Atom "end" :: rest -> go (depth - 1) (Atom "end" :: acc) rest
    | x :: rest -> go depth (x :: acc) rest
  in
  go 0 [] items

and split_at_else items =
  let rec go depth acc = function
    | [] -> (List.rev acc, [])
    | Atom "else" :: rest when depth = 0 -> (List.rev acc, rest)
    | (Atom ("block" | "loop" | "if") as x) :: rest -> go (depth + 1) (x :: acc) rest
    | Atom "end" :: rest -> go (depth - 1) (Atom "end" :: acc) rest
    | x :: rest -> go depth (x :: acc) rest
  in
  go 0 [] items

and translate_folded fenv a inner : instr list =
  match a with
  | "block" | "loop" ->
      let label, bt, body = parse_block_header fenv inner in
      fenv.labels <- label :: fenv.labels;
      let body_i = translate_instrs fenv body in
      fenv.labels <- List.tl fenv.labels;
      [ (if a = "block" then Block (bt, body_i) else Loop (bt, body_i)) ]
  | "if" ->
      let label, bt, body = parse_block_header fenv inner in
      (* condition instrs (folded), then (then ...) (else ...) *)
      let conds, clauses =
        split_while
          (fun s -> not (is_clause "then" s || is_clause "else" s))
          body
      in
      let cond_i = translate_instrs fenv conds in
      let then_body =
        match List.find_opt (is_clause "then") clauses with
        | Some (List (_ :: b)) -> b
        | _ -> fail "if requires (then ...)"
      in
      let else_body =
        match List.find_opt (is_clause "else") clauses with
        | Some (List (_ :: b)) -> b
        | _ -> []
      in
      fenv.labels <- label :: fenv.labels;
      let t = translate_instrs fenv then_body in
      let e = translate_instrs fenv else_body in
      fenv.labels <- List.tl fenv.labels;
      cond_i @ [ If (bt, t, e) ]
  | _ ->
      (* folded operator: immediates first, then operand expressions,
         which evaluate before the operator itself. translate_one consumes
         exactly the operator's immediates and leaves the operands. *)
      let instr, operands = translate_one fenv a inner in
      translate_instrs fenv operands @ [ instr ]

(* --- module fields --- *)

(* "$id" -> "id": WAT identifiers become debug names without the sigil,
   matching what wat2wasm emits into the name section. *)
let strip_dollar n = String.sub n 1 (String.length n - 1)

let translate ~(sexps : sexp list) =
  let fields =
    match sexps with
    | [ List (Atom "module" :: fields) ] -> fields
    | fields -> fields
  in
  let env = { func_names = []; global_names = []; type_names = [] } in
  ignore env.type_names;
  let b = Builder.create () in
  (* pass 1: assign indices to imports first, then funcs; also globals *)
  let func_count = ref 0 and global_count = ref 0 in
  let register_func name =
    (match name with
    | Some n -> env.func_names <- (n, !func_count) :: env.func_names
    | None -> ());
    incr func_count
  in
  let register_global name =
    (match name with
    | Some n -> env.global_names <- (n, !global_count) :: env.global_names
    | None -> ());
    incr global_count
  in
  List.iter
    (function
      | List (Atom "import" :: _ :: _ :: [ List (Atom "func" :: r) ]) ->
          let name = match r with Atom n :: _ when n.[0] = '$' -> Some n | _ -> None in
          register_func name
      | _ -> ())
    fields;
  List.iter
    (function
      | List (Atom "func" :: r) ->
          let name = match r with Atom n :: _ when n.[0] = '$' -> Some n | _ -> None in
          register_func name
      | List (Atom "global" :: r) ->
          let name = match r with Atom n :: _ when n.[0] = '$' -> Some n | _ -> None in
          register_global name
      | _ -> ())
    fields;
  (* pass 2: translate fields in order *)
  let deferred_exports = ref [] in
  let handle_field = function
    | List (Atom "import" :: Str im :: Str iname :: [ List (Atom "func" :: r) ]) ->
        let fname, r =
          match r with
          | Atom n :: rest when n.[0] = '$' -> (Some n, rest)
          | _ -> (None, r)
        in
        let sig_items, _ = split_while (fun s -> is_clause "param" s || is_clause "result" s) r in
        let params_c, results_c =
          split_while (fun s -> is_clause "param" s) sig_items
        in
        let params = List.map snd (parse_params params_c) in
        let results = parse_results results_c in
        let idx = Builder.import_func b ~module_:im ~name:iname ~params ~results in
        (match fname with
        | Some n -> Builder.set_func_name b idx (strip_dollar n)
        | None -> ())
    | List (Atom "func" :: r) ->
        let fname, r = match r with
          | Atom n :: rest when n.[0] = '$' -> (Some n, rest)
          | _ -> (None, r)
        in
        (* inline (export "name") *)
        let exports, r =
          split_while (fun s -> is_clause "export" s) r
        in
        let param_clauses, r = split_while (fun s -> is_clause "param" s) r in
        let result_clauses, r = split_while (fun s -> is_clause "result" s) r in
        let local_clauses, body = split_while (fun s -> is_clause "local" s) r in
        let params = parse_params param_clauses in
        let results = parse_results result_clauses in
        let locals =
          List.concat_map
            (function
              | List (Atom "local" :: Atom n :: [ Atom ty ]) when n.[0] = '$' ->
                  [ (Some n, valtype_of_atom ty) ]
              | List (Atom "local" :: tys) ->
                  List.map
                    (function Atom ty -> (None, valtype_of_atom ty) | _ -> fail "bad local")
                    tys
              | _ -> fail "bad local clause")
            local_clauses
        in
        let local_names =
          List.concat
            (List.mapi
               (fun i (n, _) -> match n with Some n -> [ (n, i) ] | None -> [])
               (params @ locals))
        in
        let fenv = { env; locals = local_names; labels = [] } in
        let body_i = translate_instrs fenv body in
        let idx =
          Builder.add_func b ~params:(List.map snd params) ~results
            ~locals:(List.map snd locals) body_i
        in
        (match fname with
        | Some n -> Builder.set_func_name b idx (strip_dollar n)
        | None -> ());
        List.iter
          (function
            | List [ Atom "export"; Str en ] -> Builder.export_func b en idx
            | _ -> fail "bad export clause")
          exports
    | List (Atom "memory" :: r) ->
        let export, r =
          match r with
          | List [ Atom "export"; Str en ] :: rest -> (Some en, rest)
          | _ -> (None, r)
        in
        (match r with
        | [ Atom mn ] -> Builder.add_memory b ?export (int_of_string mn)
        | [ Atom mn; Atom mx ] ->
            Builder.add_memory b ?export ~max:(int_of_string mx) (int_of_string mn)
        | _ -> fail "bad memory")
    | List (Atom "data" :: List off :: strs) ->
        let fenv = { env; locals = []; labels = [] } in
        let off_i = translate_instrs fenv [ List off ] in
        let data =
          String.concat ""
            (List.map (function Str s -> s | _ -> fail "bad data") strs)
        in
        (match off_i with
        | [ I32_const o ] -> Builder.add_data b ~offset:(Int32.to_int o) data
        | _ -> fail "data offset must be i32.const")
    | List (Atom "global" :: r) ->
        let _gname, r = match r with
          | Atom n :: rest when n.[0] = '$' -> (Some n, rest)
          | _ -> (None, r)
        in
        let export, r =
          match r with
          | List [ Atom "export"; Str en ] :: rest -> (Some en, rest)
          | _ -> (None, r)
        in
        (match r with
        | [ ty; List init ] ->
            let mut, vt =
              match ty with
              | Atom t -> (Const, valtype_of_atom t)
              | List [ Atom "mut"; Atom t ] -> (Var, valtype_of_atom t)
              | _ -> fail "bad global type"
            in
            let fenv = { env; locals = []; labels = [] } in
            let init_i = translate_instrs fenv [ List init ] in
            ignore (Builder.add_global b ?export ~mut vt init_i)
        | _ -> fail "bad global")
    | List (Atom "table" :: r) -> (
        match r with
        | [ Atom mn; Atom "funcref" ] -> Builder.add_table b (int_of_string mn)
        | [ Atom mn; Atom mx; Atom "funcref" ] ->
            Builder.add_table b ~max:(int_of_string mx) (int_of_string mn)
        | _ -> fail "bad table")
    | List (Atom "elem" :: List off :: names) ->
        let fenv = { env; locals = []; labels = [] } in
        let off_i = translate_instrs fenv [ List off ] in
        let idxs =
          List.map
            (function Atom v -> resolve_idx env.func_names v | _ -> fail "bad elem")
            names
        in
        (match off_i with
        | [ I32_const o ] -> Builder.add_elem b ~offset:(Int32.to_int o) idxs
        | _ -> fail "elem offset must be i32.const")
    | List [ Atom "start"; Atom v ] -> Builder.set_start b (resolve_idx env.func_names v)
    | List [ Atom "export"; Str en; List [ Atom "func"; Atom v ] ] ->
        deferred_exports := (en, v) :: !deferred_exports
    | List (Atom f :: _) -> fail "unsupported module field %s" f
    | _ -> fail "bad module field"
  in
  List.iter handle_field fields;
  List.iter
    (fun (en, v) -> Builder.export_func b en (resolve_idx env.func_names v))
    !deferred_exports;
  Builder.build b

let parse src = translate ~sexps:(parse_sexps (lex src))
