(* Direct AST interpreter. Control flow uses exceptions: [Branch (k, vs)]
   unwinds k nested blocks carrying the branch operands, [Return_values]
   unwinds to the function frame. This mirrors the spec's label semantics
   for the MVP's single-result blocks. *)

open Values
open Ast
open Instance

exception Branch of int * value list
exception Return_values of value list

type frame = { locals : value array; inst : Instance.t }

(* Guest context of the most recent trap, accumulated as the [Trap]
   exception unwinds through [call_func] frames (innermost first). The
   exception itself is left untouched — its message is part of the
   engine's observable behaviour — so the backtrace rides out-of-band,
   keyed by physical identity of the exception value: a fresh trap
   replaces the recorded context, a re-raise extends it. *)
let trap_state : (exn * string list) option ref = ref None
let max_trap_frames = 32

let frame_name (w : wasm_func) =
  match Ast.func_name w.w_owner.module_ w.w_index with
  | Some n -> n
  | None -> Printf.sprintf "func[%d]" w.w_index

let note_trap_frame (w : wasm_func) e =
  match !trap_state with
  | Some (e', frames) when e' == e ->
      if List.length frames < max_trap_frames then
        trap_state := Some (e, frames @ [ frame_name w ])
  | _ -> trap_state := Some (e, [ frame_name w ])

let trap_backtrace e =
  match !trap_state with Some (e', frames) when e' == e -> frames | _ -> []

(* "message (in f)\n  called from g\n  ..." — or just the message when
   the trap carries no guest frames (e.g. a host-side trap). *)
let trap_message e =
  match e with
  | Values.Trap msg -> (
      match trap_backtrace e with
      | [] -> msg
      | f :: callers ->
          String.concat "\n"
            ((msg ^ " (in " ^ f ^ ")")
            :: List.map (fun g -> "  called from " ^ g) callers))
  | _ -> Printexc.to_string e

let pop = function v :: rest -> (v, rest) | [] -> trap "value stack underflow"

let pop_i32 stack =
  match pop stack with
  | I32 v, rest -> (v, rest)
  | v, _ -> trap "expected i32, got %s" (to_string v)

let effective_addr base (m : memarg) =
  (* Treat the i32 address as unsigned, as the spec requires. *)
  Int32.to_int (Int32.logand base 0xffffffffl) land 0xffffffff
  |> fun a -> a + m.offset

let rec exec_seq frame (instrs : instr list) stack =
  match instrs with
  | [] -> stack
  | i :: rest -> exec_seq frame rest (exec_instr frame i stack)

and exec_block frame body stack ~is_loop ~(bt : blocktype) =
  (* MVP labels: a block's label has the block's result arity (0 or 1); a
     loop's label has arity 0, and branching to it restarts the body with
     the block-entry stack. The branch carries the whole inner stack and
     the catcher keeps what its label needs. *)
  try exec_seq frame body stack with
  | Branch (0, vs) ->
      if is_loop then exec_block frame body stack ~is_loop ~bt
      else begin
        match bt with
        | None -> stack
        | Some _ -> (
            match vs with
            | v :: _ -> v :: stack
            | [] -> trap "branch carried no value for block result")
      end
  | Branch (k, vs) -> raise (Branch (k - 1, vs))

and exec_instr frame (i : instr) stack =
  let inst = frame.inst in
  inst.fuel_used <- inst.fuel_used + 1;
  if inst.fuel_used > inst.fuel_limit then trap "fuel exhausted";
  match i with
  | Unreachable -> trap "unreachable executed"
  | Nop -> stack
  | Block (bt, body) ->
      let inner = exec_block frame body stack ~is_loop:false ~bt in
      inner
  | Loop (bt, body) -> exec_block frame body stack ~is_loop:true ~bt
  | If (bt, then_, else_) ->
      let c, stack = pop_i32 stack in
      let body = if c <> 0l then then_ else else_ in
      exec_block frame body stack ~is_loop:false ~bt
  | Br k ->
      (* carry at most one value (MVP blocks have <=1 result) *)
      raise (Branch (k, branch_values stack))
  | Br_if k ->
      let c, stack = pop_i32 stack in
      if c <> 0l then raise (Branch (k, branch_values stack)) else stack
  | Br_table (targets, default) ->
      let c, stack = pop_i32 stack in
      let idx = Int32.to_int c in
      let k =
        if idx >= 0 && idx < List.length targets then List.nth targets idx else default
      in
      raise (Branch (k, branch_values stack))
  | Return -> raise (Return_values stack)
  | Call fidx -> do_call frame inst.funcs.(fidx) stack
  | Call_indirect type_idx -> (
      let i, stack = pop_i32 stack in
      match inst.table with
      | None -> trap "call_indirect without table"
      | Some tbl ->
          let i = Int32.to_int i in
          if i < 0 || i >= Array.length tbl then trap "undefined element";
          (match tbl.(i) with
          | None -> trap "uninitialized element"
          | Some fidx ->
              let f = inst.funcs.(fidx) in
              let expected = inst.module_.types.(type_idx) in
              if func_type f <> expected then trap "indirect call type mismatch";
              do_call frame f stack))
  | Drop ->
      let _, stack = pop stack in
      stack
  | Select -> (
      let c, stack = pop_i32 stack in
      match stack with
      | b :: a :: rest -> (if c <> 0l then a else b) :: rest
      | _ -> trap "stack underflow in select")
  | Local_get n -> frame.locals.(n) :: stack
  | Local_set n ->
      let v, stack = pop stack in
      frame.locals.(n) <- v;
      stack
  | Local_tee n -> (
      match stack with
      | v :: _ ->
          frame.locals.(n) <- v;
          stack
      | [] -> trap "stack underflow in local.tee")
  | Global_get n -> inst.globals.(n).g_value :: stack
  | Global_set n ->
      let v, stack = pop stack in
      let g = inst.globals.(n) in
      if g.g_mut = Types.Const then trap "assignment to immutable global";
      g.g_value <- v;
      stack
  | I32_load m ->
      let a, stack = pop_i32 stack in
      I32 (Memory.load32 (memory_exn inst) (effective_addr a m)) :: stack
  | I64_load m ->
      let a, stack = pop_i32 stack in
      I64 (Memory.load64 (memory_exn inst) (effective_addr a m)) :: stack
  | F32_load m ->
      let a, stack = pop_i32 stack in
      F32 (Int32.float_of_bits (Memory.load32 (memory_exn inst) (effective_addr a m)))
      :: stack
  | F64_load m ->
      let a, stack = pop_i32 stack in
      F64 (Int64.float_of_bits (Memory.load64 (memory_exn inst) (effective_addr a m)))
      :: stack
  | I32_load8_s m ->
      let a, stack = pop_i32 stack in
      I32 (Memory.load8_s (memory_exn inst) (effective_addr a m)) :: stack
  | I32_load8_u m ->
      let a, stack = pop_i32 stack in
      I32 (Memory.load8_u (memory_exn inst) (effective_addr a m)) :: stack
  | I32_load16_s m ->
      let a, stack = pop_i32 stack in
      I32 (Memory.load16_s (memory_exn inst) (effective_addr a m)) :: stack
  | I32_load16_u m ->
      let a, stack = pop_i32 stack in
      I32 (Memory.load16_u (memory_exn inst) (effective_addr a m)) :: stack
  | I64_load8_s m ->
      let a, stack = pop_i32 stack in
      I64 (Int64.of_int32 (Memory.load8_s (memory_exn inst) (effective_addr a m))) :: stack
  | I64_load8_u m ->
      let a, stack = pop_i32 stack in
      I64 (Int64.of_int32 (Memory.load8_u (memory_exn inst) (effective_addr a m))) :: stack
  | I64_load16_s m ->
      let a, stack = pop_i32 stack in
      I64 (Int64.of_int32 (Memory.load16_s (memory_exn inst) (effective_addr a m))) :: stack
  | I64_load16_u m ->
      let a, stack = pop_i32 stack in
      I64 (Int64.of_int32 (Memory.load16_u (memory_exn inst) (effective_addr a m))) :: stack
  | I64_load32_s m ->
      let a, stack = pop_i32 stack in
      I64 (Int64.of_int32 (Memory.load32 (memory_exn inst) (effective_addr a m))) :: stack
  | I64_load32_u m ->
      let a, stack = pop_i32 stack in
      I64
        (Int64.logand (Int64.of_int32 (Memory.load32 (memory_exn inst) (effective_addr a m)))
           0xffffffffL)
      :: stack
  | I32_store m -> (
      match stack with
      | I32 v :: I32 a :: rest ->
          Memory.store32 (memory_exn inst) (effective_addr a m) v;
          rest
      | _ -> trap "i32.store: bad operands")
  | I64_store m -> (
      match stack with
      | I64 v :: I32 a :: rest ->
          Memory.store64 (memory_exn inst) (effective_addr a m) v;
          rest
      | _ -> trap "i64.store: bad operands")
  | F32_store m -> (
      match stack with
      | F32 v :: I32 a :: rest ->
          Memory.store32 (memory_exn inst) (effective_addr a m) (Int32.bits_of_float v);
          rest
      | _ -> trap "f32.store: bad operands")
  | F64_store m -> (
      match stack with
      | F64 v :: I32 a :: rest ->
          Memory.store64 (memory_exn inst) (effective_addr a m) (Int64.bits_of_float v);
          rest
      | _ -> trap "f64.store: bad operands")
  | I32_store8 m -> (
      match stack with
      | I32 v :: I32 a :: rest ->
          Memory.store8 (memory_exn inst) (effective_addr a m) v;
          rest
      | _ -> trap "i32.store8: bad operands")
  | I32_store16 m -> (
      match stack with
      | I32 v :: I32 a :: rest ->
          Memory.store16 (memory_exn inst) (effective_addr a m) v;
          rest
      | _ -> trap "i32.store16: bad operands")
  | I64_store8 m -> (
      match stack with
      | I64 v :: I32 a :: rest ->
          Memory.store8 (memory_exn inst) (effective_addr a m) (Int64.to_int32 v);
          rest
      | _ -> trap "i64.store8: bad operands")
  | I64_store16 m -> (
      match stack with
      | I64 v :: I32 a :: rest ->
          Memory.store16 (memory_exn inst) (effective_addr a m) (Int64.to_int32 v);
          rest
      | _ -> trap "i64.store16: bad operands")
  | I64_store32 m -> (
      match stack with
      | I64 v :: I32 a :: rest ->
          Memory.store32 (memory_exn inst) (effective_addr a m) (Int64.to_int32 v);
          rest
      | _ -> trap "i64.store32: bad operands")
  | Memory_size -> I32 (Int32.of_int (Memory.size_pages (memory_exn inst))) :: stack
  | Memory_grow ->
      let delta, stack = pop_i32 stack in
      I32 (Memory.grow (memory_exn inst) (Int32.to_int delta)) :: stack
  | I32_const v -> I32 v :: stack
  | I64_const v -> I64 v :: stack
  | F32_const v -> F32 v :: stack
  | F64_const v -> F64 v :: stack
  | I32_unop op -> (
      match stack with
      | I32 v :: rest -> I32 (eval_i32_unop op v) :: rest
      | _ -> trap "i32 unop: bad operand")
  | I64_unop op -> (
      match stack with
      | I64 v :: rest -> I64 (eval_i64_unop op v) :: rest
      | _ -> trap "i64 unop: bad operand")
  | I32_binop op -> (
      match stack with
      | I32 b :: I32 a :: rest -> I32 (eval_i32_binop op a b) :: rest
      | _ -> trap "i32 binop: bad operands")
  | I64_binop op -> (
      match stack with
      | I64 b :: I64 a :: rest -> I64 (eval_i64_binop op a b) :: rest
      | _ -> trap "i64 binop: bad operands")
  | I32_eqz -> (
      match stack with
      | I32 v :: rest -> I32 (i32_of_bool (v = 0l)) :: rest
      | _ -> trap "i32.eqz: bad operand")
  | I64_eqz -> (
      match stack with
      | I64 v :: rest -> I32 (i32_of_bool (v = 0L)) :: rest
      | _ -> trap "i64.eqz: bad operand")
  | I32_relop op -> (
      match stack with
      | I32 b :: I32 a :: rest -> I32 (eval_i32_relop op a b) :: rest
      | _ -> trap "i32 relop: bad operands")
  | I64_relop op -> (
      match stack with
      | I64 b :: I64 a :: rest -> I32 (eval_i64_relop op a b) :: rest
      | _ -> trap "i64 relop: bad operands")
  | F32_unop op -> (
      match stack with
      | F32 v :: rest -> F32 (f32_round (eval_f_unop op v)) :: rest
      | _ -> trap "f32 unop: bad operand")
  | F64_unop op -> (
      match stack with
      | F64 v :: rest -> F64 (eval_f_unop op v) :: rest
      | _ -> trap "f64 unop: bad operand")
  | F32_binop op -> (
      match stack with
      | F32 b :: F32 a :: rest -> F32 (f32_round (eval_f_binop op a b)) :: rest
      | _ -> trap "f32 binop: bad operands")
  | F64_binop op -> (
      match stack with
      | F64 b :: F64 a :: rest -> F64 (eval_f_binop op a b) :: rest
      | _ -> trap "f64 binop: bad operands")
  | F32_relop op -> (
      match stack with
      | F32 b :: F32 a :: rest -> I32 (eval_f_relop op a b) :: rest
      | _ -> trap "f32 relop: bad operands")
  | F64_relop op -> (
      match stack with
      | F64 b :: F64 a :: rest -> I32 (eval_f_relop op a b) :: rest
      | _ -> trap "f64 relop: bad operands")
  | Cvt op ->
      let v, stack = pop stack in
      eval_cvt op v :: stack

(* The branch carries the full current stack; the catching label extracts
   the values its arity requires. *)
and branch_values stack = stack

and do_call _frame f stack =
  let ft = func_type f in
  let n_args = List.length ft.params in
  let rec split n acc rest =
    if n = 0 then (acc, rest)
    else
      match rest with
      | v :: tl -> split (n - 1) (v :: acc) tl
      | [] -> trap "stack underflow at call"
  in
  let args, stack = split n_args [] stack in
  let results = call_func f args in
  List.rev_append (List.rev results) stack

and call_func f args =
  match f with
  | Host (_, _, h) -> h args
  | Wasm w -> (
      match w.w_owner.hooks with
      | None -> (
          try exec_wasm w args
          with Values.Trap _ as e ->
            note_trap_frame w e;
            raise e)
      | Some h -> (
          h.on_enter w.w_index;
          match exec_wasm w args with
          | results ->
              h.on_exit w.w_index;
              results
          | exception e ->
              h.on_exit w.w_index;
              (match e with Values.Trap _ -> note_trap_frame w e | _ -> ());
              raise e))

(* The single activation path for Wasm functions: compiled body when the
   AoT engine installed one, AST walk otherwise. Every call in either
   engine funnels through [call_func] above, which is why one hook site
   covers both. *)
and exec_wasm w args =
  match w.w_compiled with
  | Some compiled ->
      let locals = make_locals w args in
      compiled locals
  | None ->
      let locals = make_locals w args in
      let frame = { locals; inst = w.w_owner } in
      let stack =
        try exec_seq frame w.w_body []
        with
        | Return_values s -> s
        | Branch (_, vs) -> vs
      in
      take_results w.w_type.results stack

and make_locals w args =
  let n_params = List.length w.w_type.params in
  let locals =
    Array.make (n_params + List.length w.w_locals) (I32 0l)
  in
  List.iteri (fun i v -> locals.(i) <- v) args;
  List.iteri (fun i vt -> locals.(n_params + i) <- default_value vt) w.w_locals;
  locals

and take_results results stack =
  let n = List.length results in
  let rec take k acc s =
    if k = 0 then acc
    else
      match s with
      | v :: rest -> take (k - 1) (v :: acc) rest
      | [] -> trap "missing results"
  in
  take n [] stack

let call inst fidx args = call_func inst.funcs.(fidx) args

let invoke inst name args =
  match export_func inst name with
  | Some f -> call_func f args
  | None -> trap "unknown export %s" name

let instantiate ?imports m =
  let inst = build ?imports m in
  (match m.start with Some fidx -> ignore (call inst fidx []) | None -> ());
  inst

let fuel_used inst = inst.fuel_used
