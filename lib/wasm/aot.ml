(* Ahead-of-time compilation of function bodies into OCaml closures.

   This mirrors the role of wamrc in the paper's pipeline: immediates,
   function references and branch structure are resolved once at compile
   time, so execution avoids per-instruction AST dispatch. Each
   instruction compiles to a closure [value array -> value list ->
   value list] (locals, operand stack in, operand stack out): threading
   the stack functionally keeps it in registers and avoids the write
   barrier that a mutable-stack representation would pay on every push.
   The compiled form is installed into [w_compiled]; [Interp.call_func]
   then uses it transparently (including for calls from interpreted
   code). *)

open Values
open Ast
open Instance

type step = value array -> value list -> value list

exception Br_exn of int * value list

let underflow () = trap "aot: stack underflow"

let eff base (m : memarg) =
  (Int32.to_int (Int32.logand base 0xffffffffl) land 0xffffffff) + m.offset

(* Mirror the interpreter's metering exactly: one fuel unit charged as
   each instruction begins executing (so a trapping run charges the same
   prefix in both engines). Loops re-enter their body without recharging
   the loop instruction itself, as in [Interp.exec_block]. *)
let metered inst (s : step) : step =
 fun l stack ->
  inst.fuel_used <- inst.fuel_used + 1;
  if inst.fuel_used > inst.fuel_limit then trap "fuel exhausted";
  s l stack

(* Compile a sequence into a single step. *)
let rec compile_seq inst instrs : step =
  match List.map (fun i -> metered inst (compile_instr inst i)) instrs with
  | [] -> fun _ stack -> stack
  | [ s ] -> s
  | [ s1; s2 ] -> fun l stack -> s2 l (s1 l stack)
  | [ s1; s2; s3 ] -> fun l stack -> s3 l (s2 l (s1 l stack))
  | steps ->
      let arr = Array.of_list steps in
      let n = Array.length arr in
      fun l stack ->
        let acc = ref stack in
        for i = 0 to n - 1 do
          acc := (Array.unsafe_get arr i) l !acc
        done;
        !acc

and compile_block inst bt body ~is_loop : step =
  let compiled = compile_seq inst body in
  if is_loop then
    fun l stack ->
      let rec run () =
        try compiled l stack with
        | Br_exn (0, _) -> run ()
        | Br_exn (k, vs) -> raise (Br_exn (k - 1, vs))
      in
      run ()
  else
    fun l stack ->
      try compiled l stack with
      | Br_exn (0, vs) -> (
          match bt with
          | None -> stack
          | Some _ -> (
              match vs with
              | v :: _ -> v :: stack
              | [] -> trap "aot: branch carried no value"))
      | Br_exn (k, vs) -> raise (Br_exn (k - 1, vs))

and compile_call f : step =
  let ft = func_type f in
  let n_args = List.length ft.params in
  fun _ stack ->
    let rec split n acc stack =
      if n = 0 then (acc, stack)
      else
        match stack with
        | v :: rest -> split (n - 1) (v :: acc) rest
        | [] -> underflow ()
    in
    let args, stack = split n_args [] stack in
    List.rev_append (List.rev (Interp.call_func f args)) stack

and compile_instr inst (i : instr) : step =
  match i with
  | Unreachable -> fun _ _ -> trap "unreachable executed"
  | Nop -> fun _ stack -> stack
  | Block (bt, body) -> compile_block inst bt body ~is_loop:false
  | Loop (bt, body) -> compile_block inst bt body ~is_loop:true
  | If (bt, then_, else_) ->
      let ct = compile_block inst bt then_ ~is_loop:false in
      let ce = compile_block inst bt else_ ~is_loop:false in
      fun l stack -> (
        match stack with
        | I32 c :: rest -> if c <> 0l then ct l rest else ce l rest
        | _ -> underflow ())
  | Br k -> fun _ stack -> raise (Br_exn (k, stack))
  | Br_if k ->
      fun _ stack -> (
        match stack with
        | I32 c :: rest -> if c <> 0l then raise (Br_exn (k, rest)) else rest
        | _ -> underflow ())
  | Br_table (targets, default) ->
      let tbl = Array.of_list targets in
      fun _ stack -> (
        match stack with
        | I32 c :: rest ->
            let idx = Int32.to_int c in
            let k = if idx >= 0 && idx < Array.length tbl then tbl.(idx) else default in
            raise (Br_exn (k, rest))
        | _ -> underflow ())
  | Return -> fun _ stack -> raise (Interp.Return_values stack)
  | Call fidx -> compile_call inst.funcs.(fidx)
  | Call_indirect type_idx ->
      let expected = inst.module_.types.(type_idx) in
      fun l stack -> (
        match stack with
        | I32 i :: rest -> (
            match inst.table with
            | None -> trap "call_indirect without table"
            | Some tbl ->
                let i = Int32.to_int i in
                if i < 0 || i >= Array.length tbl then trap "undefined element";
                (match tbl.(i) with
                | None -> trap "uninitialized element"
                | Some fidx ->
                    let f = inst.funcs.(fidx) in
                    if func_type f <> expected then trap "indirect call type mismatch";
                    (compile_call f) l rest))
        | _ -> underflow ())
  | Drop ->
      fun _ stack -> (
        match stack with _ :: rest -> rest | [] -> underflow ())
  | Select ->
      fun _ stack -> (
        match stack with
        | I32 c :: b :: a :: rest -> (if c <> 0l then a else b) :: rest
        | _ -> underflow ())
  | Local_get n -> fun l stack -> Array.unsafe_get l n :: stack
  | Local_set n ->
      fun l stack -> (
        match stack with
        | v :: rest ->
            l.(n) <- v;
            rest
        | [] -> underflow ())
  | Local_tee n ->
      fun l stack -> (
        match stack with
        | v :: _ ->
            l.(n) <- v;
            stack
        | [] -> underflow ())
  | Global_get n ->
      let g = inst.globals.(n) in
      fun _ stack -> g.g_value :: stack
  | Global_set n ->
      let g = inst.globals.(n) in
      if g.g_mut = Types.Const then fun _ _ -> trap "assignment to immutable global"
      else
        fun _ stack -> (
          match stack with
          | v :: rest ->
              g.g_value <- v;
              rest
          | [] -> underflow ())
  | I32_load m ->
      let mem = memory_exn inst in
      fun _ stack -> (
        match stack with
        | I32 a :: rest -> I32 (Memory.load32 mem (eff a m)) :: rest
        | _ -> underflow ())
  | I64_load m ->
      let mem = memory_exn inst in
      fun _ stack -> (
        match stack with
        | I32 a :: rest -> I64 (Memory.load64 mem (eff a m)) :: rest
        | _ -> underflow ())
  | F32_load m ->
      let mem = memory_exn inst in
      fun _ stack -> (
        match stack with
        | I32 a :: rest -> F32 (Int32.float_of_bits (Memory.load32 mem (eff a m))) :: rest
        | _ -> underflow ())
  | F64_load m ->
      let mem = memory_exn inst in
      fun _ stack -> (
        match stack with
        | I32 a :: rest -> F64 (Int64.float_of_bits (Memory.load64 mem (eff a m))) :: rest
        | _ -> underflow ())
  | I32_load8_s m ->
      let mem = memory_exn inst in
      fun _ stack -> (
        match stack with
        | I32 a :: rest -> I32 (Memory.load8_s mem (eff a m)) :: rest
        | _ -> underflow ())
  | I32_load8_u m ->
      let mem = memory_exn inst in
      fun _ stack -> (
        match stack with
        | I32 a :: rest -> I32 (Memory.load8_u mem (eff a m)) :: rest
        | _ -> underflow ())
  | I32_load16_s m ->
      let mem = memory_exn inst in
      fun _ stack -> (
        match stack with
        | I32 a :: rest -> I32 (Memory.load16_s mem (eff a m)) :: rest
        | _ -> underflow ())
  | I32_load16_u m ->
      let mem = memory_exn inst in
      fun _ stack -> (
        match stack with
        | I32 a :: rest -> I32 (Memory.load16_u mem (eff a m)) :: rest
        | _ -> underflow ())
  | I64_load8_s m ->
      let mem = memory_exn inst in
      fun _ stack -> (
        match stack with
        | I32 a :: rest -> I64 (Int64.of_int32 (Memory.load8_s mem (eff a m))) :: rest
        | _ -> underflow ())
  | I64_load8_u m ->
      let mem = memory_exn inst in
      fun _ stack -> (
        match stack with
        | I32 a :: rest -> I64 (Int64.of_int32 (Memory.load8_u mem (eff a m))) :: rest
        | _ -> underflow ())
  | I64_load16_s m ->
      let mem = memory_exn inst in
      fun _ stack -> (
        match stack with
        | I32 a :: rest -> I64 (Int64.of_int32 (Memory.load16_s mem (eff a m))) :: rest
        | _ -> underflow ())
  | I64_load16_u m ->
      let mem = memory_exn inst in
      fun _ stack -> (
        match stack with
        | I32 a :: rest -> I64 (Int64.of_int32 (Memory.load16_u mem (eff a m))) :: rest
        | _ -> underflow ())
  | I64_load32_s m ->
      let mem = memory_exn inst in
      fun _ stack -> (
        match stack with
        | I32 a :: rest -> I64 (Int64.of_int32 (Memory.load32 mem (eff a m))) :: rest
        | _ -> underflow ())
  | I64_load32_u m ->
      let mem = memory_exn inst in
      fun _ stack -> (
        match stack with
        | I32 a :: rest ->
            I64 (Int64.logand (Int64.of_int32 (Memory.load32 mem (eff a m))) 0xffffffffL)
            :: rest
        | _ -> underflow ())
  | I32_store m ->
      let mem = memory_exn inst in
      fun _ stack -> (
        match stack with
        | I32 v :: I32 a :: rest ->
            Memory.store32 mem (eff a m) v;
            rest
        | _ -> underflow ())
  | I64_store m ->
      let mem = memory_exn inst in
      fun _ stack -> (
        match stack with
        | I64 v :: I32 a :: rest ->
            Memory.store64 mem (eff a m) v;
            rest
        | _ -> underflow ())
  | F32_store m ->
      let mem = memory_exn inst in
      fun _ stack -> (
        match stack with
        | F32 v :: I32 a :: rest ->
            Memory.store32 mem (eff a m) (Int32.bits_of_float v);
            rest
        | _ -> underflow ())
  | F64_store m ->
      let mem = memory_exn inst in
      fun _ stack -> (
        match stack with
        | F64 v :: I32 a :: rest ->
            Memory.store64 mem (eff a m) (Int64.bits_of_float v);
            rest
        | _ -> underflow ())
  | I32_store8 m ->
      let mem = memory_exn inst in
      fun _ stack -> (
        match stack with
        | I32 v :: I32 a :: rest ->
            Memory.store8 mem (eff a m) v;
            rest
        | _ -> underflow ())
  | I32_store16 m ->
      let mem = memory_exn inst in
      fun _ stack -> (
        match stack with
        | I32 v :: I32 a :: rest ->
            Memory.store16 mem (eff a m) v;
            rest
        | _ -> underflow ())
  | I64_store8 m ->
      let mem = memory_exn inst in
      fun _ stack -> (
        match stack with
        | I64 v :: I32 a :: rest ->
            Memory.store8 mem (eff a m) (Int64.to_int32 v);
            rest
        | _ -> underflow ())
  | I64_store16 m ->
      let mem = memory_exn inst in
      fun _ stack -> (
        match stack with
        | I64 v :: I32 a :: rest ->
            Memory.store16 mem (eff a m) (Int64.to_int32 v);
            rest
        | _ -> underflow ())
  | I64_store32 m ->
      let mem = memory_exn inst in
      fun _ stack -> (
        match stack with
        | I64 v :: I32 a :: rest ->
            Memory.store32 mem (eff a m) (Int64.to_int32 v);
            rest
        | _ -> underflow ())
  | Memory_size ->
      let mem = memory_exn inst in
      fun _ stack -> I32 (Int32.of_int (Memory.size_pages mem)) :: stack
  | Memory_grow ->
      let mem = memory_exn inst in
      fun _ stack -> (
        match stack with
        | I32 d :: rest -> I32 (Memory.grow mem (Int32.to_int d)) :: rest
        | _ -> underflow ())
  | I32_const v ->
      let boxed = I32 v in
      fun _ stack -> boxed :: stack
  | I64_const v ->
      let boxed = I64 v in
      fun _ stack -> boxed :: stack
  | F32_const v ->
      let boxed = F32 v in
      fun _ stack -> boxed :: stack
  | F64_const v ->
      let boxed = F64 v in
      fun _ stack -> boxed :: stack
  | I32_unop op ->
      fun _ stack -> (
        match stack with
        | I32 v :: rest -> I32 (eval_i32_unop op v) :: rest
        | _ -> underflow ())
  | I64_unop op ->
      fun _ stack -> (
        match stack with
        | I64 v :: rest -> I64 (eval_i64_unop op v) :: rest
        | _ -> underflow ())
  | I32_binop Add ->
      fun _ stack -> (
        match stack with
        | I32 b :: I32 a :: rest -> I32 (Int32.add a b) :: rest
        | _ -> underflow ())
  | I32_binop Sub ->
      fun _ stack -> (
        match stack with
        | I32 b :: I32 a :: rest -> I32 (Int32.sub a b) :: rest
        | _ -> underflow ())
  | I32_binop Mul ->
      fun _ stack -> (
        match stack with
        | I32 b :: I32 a :: rest -> I32 (Int32.mul a b) :: rest
        | _ -> underflow ())
  | I32_binop op ->
      fun _ stack -> (
        match stack with
        | I32 b :: I32 a :: rest -> I32 (eval_i32_binop op a b) :: rest
        | _ -> underflow ())
  | I64_binop op ->
      fun _ stack -> (
        match stack with
        | I64 b :: I64 a :: rest -> I64 (eval_i64_binop op a b) :: rest
        | _ -> underflow ())
  | I32_eqz ->
      fun _ stack -> (
        match stack with
        | I32 v :: rest -> I32 (i32_of_bool (v = 0l)) :: rest
        | _ -> underflow ())
  | I64_eqz ->
      fun _ stack -> (
        match stack with
        | I64 v :: rest -> I32 (i32_of_bool (v = 0L)) :: rest
        | _ -> underflow ())
  | I32_relop op ->
      fun _ stack -> (
        match stack with
        | I32 b :: I32 a :: rest -> I32 (eval_i32_relop op a b) :: rest
        | _ -> underflow ())
  | I64_relop op ->
      fun _ stack -> (
        match stack with
        | I64 b :: I64 a :: rest -> I32 (eval_i64_relop op a b) :: rest
        | _ -> underflow ())
  | F32_unop op ->
      fun _ stack -> (
        match stack with
        | F32 v :: rest -> F32 (f32_round (eval_f_unop op v)) :: rest
        | _ -> underflow ())
  | F64_unop op ->
      fun _ stack -> (
        match stack with
        | F64 v :: rest -> F64 (eval_f_unop op v) :: rest
        | _ -> underflow ())
  | F32_binop op ->
      fun _ stack -> (
        match stack with
        | F32 b :: F32 a :: rest -> F32 (f32_round (eval_f_binop op a b)) :: rest
        | _ -> underflow ())
  | F64_binop Fadd ->
      fun _ stack -> (
        match stack with
        | F64 b :: F64 a :: rest -> F64 (a +. b) :: rest
        | _ -> underflow ())
  | F64_binop Fmul ->
      fun _ stack -> (
        match stack with
        | F64 b :: F64 a :: rest -> F64 (a *. b) :: rest
        | _ -> underflow ())
  | F64_binop op ->
      fun _ stack -> (
        match stack with
        | F64 b :: F64 a :: rest -> F64 (eval_f_binop op a b) :: rest
        | _ -> underflow ())
  | F32_relop op ->
      fun _ stack -> (
        match stack with
        | F32 b :: F32 a :: rest -> I32 (eval_f_relop op a b) :: rest
        | _ -> underflow ())
  | F64_relop op ->
      fun _ stack -> (
        match stack with
        | F64 b :: F64 a :: rest -> I32 (eval_f_relop op a b) :: rest
        | _ -> underflow ())
  | Cvt op ->
      fun _ stack -> (
        match stack with
        | v :: rest -> eval_cvt op v :: rest
        | [] -> underflow ())

let compile_func inst (w : wasm_func) =
  let compiled_body = compile_seq inst w.w_body in
  let results = w.w_type.results in
  let run locals =
    let final_stack =
      try compiled_body locals []
      with
      | Interp.Return_values s -> s
      | Br_exn (_, vs) -> vs
    in
    Interp.take_results results final_stack
  in
  w.w_compiled <- Some run

(* Compile every local function of an instance. Returns the number of
   functions compiled (the cost model uses it for Table III). *)
let compile_instance inst =
  let count = ref 0 in
  Array.iter
    (function
      | Wasm w when w.w_owner == inst ->
          compile_func inst w;
          incr count
      | Wasm _ | Host _ -> ())
    inst.funcs;
  !count
