(* Abstract syntax of WebAssembly modules (MVP + sign-extension ops).
   Instructions are structured (nested blocks), as in the spec's abstract
   syntax; the binary codec flattens/rebuilds them. *)

open Types

type memarg = { offset : int; align : int }

type iunop = Clz | Ctz | Popcnt
type ibinop =
  | Add | Sub | Mul | Div_s | Div_u | Rem_s | Rem_u
  | And | Or | Xor | Shl | Shr_s | Shr_u | Rotl | Rotr
type irelop = Eq | Ne | Lt_s | Lt_u | Gt_s | Gt_u | Le_s | Le_u | Ge_s | Ge_u
type funop = Abs | Neg | Sqrt | Ceil | Floor | Trunc | Nearest
type fbinop = Fadd | Fsub | Fmul | Fdiv | Fmin | Fmax | Copysign
type frelop = Feq | Fne | Flt | Fgt | Fle | Fge

(* Conversions; the first type is the destination. *)
type cvtop =
  | I32_wrap_i64
  | I64_extend_i32_s | I64_extend_i32_u
  | I32_trunc_f32_s | I32_trunc_f32_u | I32_trunc_f64_s | I32_trunc_f64_u
  | I64_trunc_f32_s | I64_trunc_f32_u | I64_trunc_f64_s | I64_trunc_f64_u
  | F32_convert_i32_s | F32_convert_i32_u | F32_convert_i64_s | F32_convert_i64_u
  | F64_convert_i32_s | F64_convert_i32_u | F64_convert_i64_s | F64_convert_i64_u
  | F32_demote_f64 | F64_promote_f32
  | I32_reinterpret_f32 | I64_reinterpret_f64
  | F32_reinterpret_i32 | F64_reinterpret_i64
  | I32_extend8_s | I32_extend16_s | I64_extend8_s | I64_extend16_s | I64_extend32_s

type blocktype = valtype option
(* MVP block types: at most one result. *)

type instr =
  | Unreachable
  | Nop
  | Block of blocktype * instr list
  | Loop of blocktype * instr list
  | If of blocktype * instr list * instr list
  | Br of int
  | Br_if of int
  | Br_table of int list * int
  | Return
  | Call of int
  | Call_indirect of int  (* type index *)
  | Drop
  | Select
  | Local_get of int
  | Local_set of int
  | Local_tee of int
  | Global_get of int
  | Global_set of int
  | I32_load of memarg | I64_load of memarg | F32_load of memarg | F64_load of memarg
  | I32_load8_s of memarg | I32_load8_u of memarg
  | I32_load16_s of memarg | I32_load16_u of memarg
  | I64_load8_s of memarg | I64_load8_u of memarg
  | I64_load16_s of memarg | I64_load16_u of memarg
  | I64_load32_s of memarg | I64_load32_u of memarg
  | I32_store of memarg | I64_store of memarg | F32_store of memarg | F64_store of memarg
  | I32_store8 of memarg | I32_store16 of memarg
  | I64_store8 of memarg | I64_store16 of memarg | I64_store32 of memarg
  | Memory_size
  | Memory_grow
  | I32_const of int32
  | I64_const of int64
  | F32_const of float
  | F64_const of float
  | I32_unop of iunop | I64_unop of iunop
  | I32_binop of ibinop | I64_binop of ibinop
  | I32_eqz | I64_eqz
  | I32_relop of irelop | I64_relop of irelop
  | F32_unop of funop | F64_unop of funop
  | F32_binop of fbinop | F64_binop of fbinop
  | F32_relop of frelop | F64_relop of frelop
  | Cvt of cvtop

type func = { ftype : int; locals : valtype list; body : instr list }

type import_desc =
  | Import_func of int  (* type index *)
  | Import_table of limits
  | Import_memory of limits
  | Import_global of globaltype

type import = { imp_module : string; imp_name : string; imp_desc : import_desc }

type export_desc = Export_func of int | Export_table of int | Export_memory of int | Export_global of int

type export = { exp_name : string; exp_desc : export_desc }

type global = { g_type : globaltype; g_init : instr list }

type elem = { e_offset : instr list; e_init : int list }

type data = { d_offset : instr list; d_init : string }

type module_ = {
  types : functype array;
  imports : import list;
  funcs : func array;  (* locally defined; indices follow imported funcs *)
  tables : limits option;
  memories : limits option;
  globals : global array;
  exports : export list;
  start : int option;
  elems : elem list;
  datas : data list;
  names : (int * string) list;
      (* debug names by function index (the "name" custom section),
         sorted by index; kept out of the semantic sections so codecs
         may drop it without changing behaviour *)
}

let empty_module =
  {
    types = [||];
    imports = [];
    funcs = [||];
    tables = None;
    memories = None;
    globals = [||];
    exports = [];
    start = None;
    elems = [];
    datas = [];
    names = [];
  }

(* Number of imported items of each kind, giving index bases. *)
let imported_funcs m =
  List.length
    (List.filter (fun i -> match i.imp_desc with Import_func _ -> true | _ -> false) m.imports)

let imported_globals m =
  List.length
    (List.filter (fun i -> match i.imp_desc with Import_global _ -> true | _ -> false) m.imports)

(* Symbolic name of a function by its (global) function index: the name
   custom section first, then an export name, then "module.name" for
   imports. Profilers and trap messages use this so output is readable
   whenever any symbol source survives in the module. *)
let func_name m idx =
  match List.assoc_opt idx m.names with
  | Some n -> Some n
  | None -> (
      match
        List.find_map
          (fun e ->
            match e.exp_desc with
            | Export_func i when i = idx -> Some e.exp_name
            | _ -> None)
          m.exports
      with
      | Some n -> Some n
      | None ->
          let rec nth_func_import k = function
            | [] -> None
            | ({ imp_desc = Import_func _; _ } as im) :: rest ->
                if k = 0 then Some (im.imp_module ^ "." ^ im.imp_name)
                else nth_func_import (k - 1) rest
            | _ :: rest -> nth_func_import k rest
          in
          if idx < imported_funcs m then nth_func_import idx m.imports else None)

(* Type index of a function by its (global) function index. *)
let func_type_idx m idx =
  let n_imp = imported_funcs m in
  if idx < n_imp then begin
    let rec nth_func_import k = function
      | [] -> invalid_arg "func_type_idx"
      | { imp_desc = Import_func ti; _ } :: rest ->
          if k = 0 then ti else nth_func_import (k - 1) rest
      | _ :: rest -> nth_func_import k rest
    in
    nth_func_import idx m.imports
  end
  else m.funcs.(idx - n_imp).ftype
