(** WebAssembly linear memory: a vector of 64 KiB pages with little-endian
    loads/stores and bounds checking that traps on out-of-range access. *)

type t

val create : Types.limits -> t
val size_pages : t -> int
val size_bytes : t -> int

val max_pages : t -> int
(** Upper growth limit in 64 KiB pages (the declared maximum, or the
    addressable 65536 when none was declared). *)

val grow : t -> int -> int32
(** [grow t delta] returns the old size in pages, or [-1l] if growth would
    exceed the limit (as the [memory.grow] instruction does). *)

val load8_u : t -> int -> int32
val load8_s : t -> int -> int32
val load16_u : t -> int -> int32
val load16_s : t -> int -> int32
val load32 : t -> int -> int32
val load64 : t -> int -> int64
val store8 : t -> int -> int32 -> unit
val store16 : t -> int -> int32 -> unit
val store32 : t -> int -> int32 -> unit
val store64 : t -> int -> int64 -> unit

val load_bytes : t -> int -> int -> string
val store_bytes : t -> int -> string -> unit

val load_cstring : t -> int -> string
(** NUL-terminated string at the given address. The scanned range
    (including the terminator) is bounds-checked and reported to the
    access hook, so C-string reads count toward EPC pressure. *)

val on_access : t -> (addr:int -> len:int -> unit) option ref
(** Hook invoked before each access — the TWINE runtime uses it to charge
    EPC page touches for in-enclave Wasm memory. *)
