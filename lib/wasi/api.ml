(* WASI snapshot-preview1: the complete 45-function system interface.

   Each function has its wire signature (pointers into guest linear
   memory, errno return) and is exposed as a host-function import under
   the module name "wasi_snapshot_preview1". The host behaviour is
   pluggable through [providers] (clocks, randomness, output sinks, a
   per-call hook used by TWINE to charge enclave-boundary costs) and
   through the preopened {!Vfs.dir}s (capability sandbox). *)

open Twine_wasm
open Twine_wasm.Values

exception Proc_exit of int

type providers = {
  clock_realtime : unit -> int64;  (* ns since epoch *)
  clock_monotonic : unit -> int64;  (* ns, guaranteed non-decreasing *)
  random : int -> string;
  stdout : string -> unit;
  stderr : string -> unit;
  on_call : string -> unit;
}

let default_providers =
  {
    clock_realtime = (fun () -> Int64.of_float (Unix.gettimeofday () *. 1e9));
    clock_monotonic =
      (let last = ref 0L in
       fun () ->
         let now = Int64.of_float (Unix.gettimeofday () *. 1e9) in
         (* monotonic guard, as TWINE's trusted time layer enforces *)
         if Int64.compare now !last > 0 then last := now;
         !last);
    random =
      (fun n -> String.init n (fun _ -> Char.chr (Random.int 256)));
    stdout = print_string;
    stderr = prerr_string;
    on_call = (fun _ -> ());
  }

type file_entry = { file : Vfs.file; mutable rights : int64; mutable flags : int }
type dir_entry = { dir : Vfs.dir; preopen_name : string }

type fd_entry =
  | Fd_stdin
  | Fd_stdout
  | Fd_stderr
  | Fd_dir of dir_entry
  | Fd_file of file_entry

type t = {
  args : string list;
  env : (string * string) list;
  providers : providers;
  strict : bool;  (* disallow operations outside trusted implementations *)
  obs : Twine_obs.Obs.t option;  (* hostcall telemetry, when attached *)
  fds : (int, fd_entry) Hashtbl.t;
  mutable next_fd : int;
  mutable memory : Memory.t option;
  mutable exit_code : int option;
}

(* Rights bits (subset of the preview1 set that we enforce). *)
let right_fd_read = 0x2L
let right_fd_seek = 0x4L
let right_fd_write = 0x40L
let all_rights = 0x1fffffffL

let create ?(args = [ "wasm-app" ]) ?(env = []) ?(preopens = []) ?(strict = false)
    ?(providers = default_providers) ?obs () =
  let t =
    {
      args;
      env;
      providers;
      strict;
      obs;
      fds = Hashtbl.create 16;
      next_fd = 3;
      memory = None;
      exit_code = None;
    }
  in
  Hashtbl.replace t.fds 0 Fd_stdin;
  Hashtbl.replace t.fds 1 Fd_stdout;
  Hashtbl.replace t.fds 2 Fd_stderr;
  List.iter
    (fun (name, dir) ->
      Hashtbl.replace t.fds t.next_fd (Fd_dir { dir; preopen_name = name });
      t.next_fd <- t.next_fd + 1)
    preopens;
  t

let bind_memory t inst =
  match Instance.export_memory inst "memory" with
  | Some m -> t.memory <- Some m
  | None -> (
      (* fall back to the instance's sole memory if unexported *)
      match inst.Instance.memory with
      | Some m -> t.memory <- Some m
      | None -> invalid_arg "Wasi: module has no linear memory")

let memory t =
  match t.memory with
  | Some m -> m
  | None -> invalid_arg "Wasi: memory not bound (call bind_memory after instantiate)"

let exit_code t = t.exit_code

(* --- guest memory helpers --- *)

let store_u32 m addr v = Memory.store32 m addr (Int32.of_int v)
let store_u64 m addr (v : int64) = Memory.store64 m addr v
let load_u32 m addr = Int32.to_int (Memory.load32 m addr) land 0xffffffff

(* --- argument plumbing --- *)

let i32 v = I32 (Int32.of_int v)
let errno e = [ i32 e ]
let ok = errno Errno.success

let arg_i32 = function I32 v -> Int32.to_int v | _ -> trap "wasi: expected i32"
let arg_i64 = function I64 v -> v | _ -> trap "wasi: expected i64"

let find_fd t fd = Hashtbl.find_opt t.fds fd

let with_file t fd need f =
  match find_fd t fd with
  | Some (Fd_file ff) ->
      if Int64.logand ff.rights need <> need then errno Errno.enotcapable else f ff
  | Some _ -> errno Errno.ebadf
  | None -> errno Errno.ebadf

let with_dir t fd f =
  match find_fd t fd with
  | Some (Fd_dir d) -> f d
  | Some _ -> errno Errno.enotdir
  | None -> errno Errno.ebadf

(* --- iovec handling --- *)

let read_iovs m iovs_ptr iovs_len =
  List.init iovs_len (fun i ->
      let base = iovs_ptr + (8 * i) in
      (load_u32 m base, load_u32 m (base + 4)))

(* --- the functions --- *)

let args_like_sizes m list ~count_ptr ~size_ptr =
  store_u32 m count_ptr (List.length list);
  store_u32 m size_ptr (List.fold_left (fun a s -> a + String.length s + 1) 0 list);
  ok

let args_like_get m list ~ptrs_ptr ~buf_ptr =
  let p = ref ptrs_ptr and b = ref buf_ptr in
  List.iter
    (fun s ->
      store_u32 m !p !b;
      Memory.store_bytes m !b (s ^ "\000");
      p := !p + 4;
      b := !b + String.length s + 1)
    list;
  ok

let filetype_byte = function
  | Vfs.Regular -> 4
  | Vfs.Directory -> 3
  | Vfs.Char_device -> 2
  | Vfs.Unknown -> 0

let write_filestat m buf (st : Vfs.filestat) =
  store_u64 m buf 0L;  (* dev *)
  store_u64 m (buf + 8) 0L;  (* ino *)
  Memory.store8 m (buf + 16) (Int32.of_int (filetype_byte st.st_filetype));
  store_u64 m (buf + 24) 1L;  (* nlink *)
  store_u64 m (buf + 32) (Int64.of_int st.st_size);
  store_u64 m (buf + 40) 0L;  (* atim *)
  store_u64 m (buf + 48) 0L;  (* mtim *)
  store_u64 m (buf + 56) 0L  (* ctim *)

let clock_time t id =
  match id with
  | 0 -> Some (t.providers.clock_realtime ())
  | 1 | 2 | 3 -> Some (t.providers.clock_monotonic ())
  | _ -> None

let do_read ff m iovs_ptr iovs_len nread_ptr ~pread ~offset =
  let iovs = read_iovs m iovs_ptr iovs_len in
  let total = ref 0 in
  let err = ref None in
  let pos = ref offset in
  (* WASI reads are vectored; IPFS-style backends are not, so we iterate
     (paper §IV-E does exactly this for fd_read) *)
  List.iter
    (fun (buf, len) ->
      if !err = None && len > 0 then begin
        let tmp = Bytes.create len in
        let r =
          if pread then ff.Vfs.f_pread tmp ~off:0 ~len ~pos:!pos
          else ff.Vfs.f_read tmp ~off:0 ~len
        in
        match r with
        | Ok 0 -> ()
        | Ok n ->
            Memory.store_bytes m buf (Bytes.sub_string tmp 0 n);
            total := !total + n;
            pos := !pos + n
        | Error e -> err := Some e
      end)
    iovs;
  match !err with
  | Some e when !total = 0 -> errno e
  | _ ->
      store_u32 m nread_ptr !total;
      ok

let do_write ff m iovs_ptr iovs_len nwritten_ptr ~pwrite ~offset =
  let iovs = read_iovs m iovs_ptr iovs_len in
  let total = ref 0 in
  let err = ref None in
  let pos = ref offset in
  List.iter
    (fun (buf, len) ->
      if !err = None && len > 0 then begin
        let data = Memory.load_bytes m buf len in
        let r =
          if pwrite then ff.Vfs.f_pwrite data ~pos:!pos else ff.Vfs.f_write data
        in
        match r with
        | Ok n ->
            total := !total + n;
            pos := !pos + n
        | Error e -> err := Some e
      end)
    iovs;
  match !err with
  | Some e when !total = 0 -> errno e
  | _ ->
      store_u32 m nwritten_ptr !total;
      ok

let sink_write sink m iovs_ptr iovs_len nwritten_ptr =
  let iovs = read_iovs m iovs_ptr iovs_len in
  let total = ref 0 in
  List.iter
    (fun (buf, len) ->
      if len > 0 then begin
        sink (Memory.load_bytes m buf len);
        total := !total + len
      end)
    iovs;
  store_u32 m nwritten_ptr !total;
  ok

let path_of m path_ptr path_len = Memory.load_bytes m path_ptr path_len

let open_flags oflags fdflags =
  let creat = oflags land 1 <> 0 in
  let directory = oflags land 2 <> 0 in
  let excl = oflags land 4 <> 0 in
  let trunc = oflags land 8 <> 0 in
  let append = fdflags land 1 <> 0 in
  (creat, directory, excl, trunc, append)

(* Build all 45 host functions for a context. *)
let functions t =
  let m () = memory t in
  (* Hostcall hardening: no exception from a provider or the hostcall
     body may unwind into (and tear down) the guest. Calls that return
     an errno turn an injected transient fault (site ["wasi.<name>"])
     into EAGAIN and any unexpected host exception into EIO, both
     recorded in the telemetry registry. [Proc_exit], guest traps and
     injected power loss ([Fault.Crashed]) pass through: they ARE the
     control flow. Calls with no result (proc_exit) cannot absorb
     errors and keep their raising behaviour. *)
  let contain name f args =
    let note kind =
      match t.obs with
      | Some o ->
          Twine_obs.Obs.inc o ("wasi.fault." ^ kind);
          Twine_obs.Obs.emit o ~cat:"wasi" ("wasi.fault." ^ name)
      | None -> ()
    in
    match Twine_sim.Fault.consult ("wasi." ^ name) with
    | Some Twine_sim.Fault.Fail ->
        note "injected";
        errno Errno.eagain
    | Some Twine_sim.Fault.Crash ->
        raise (Twine_sim.Fault.Crashed ("wasi." ^ name))
    | _ -> (
        try f args
        with
        | ( Proc_exit _ | Values.Trap _ | Twine_sim.Fault.Crashed _
          | Invalid_argument _ (* host policy (e.g. strict mode), not I/O *)
          | Out_of_memory | Stack_overflow ) as e ->
            raise e
        | _ ->
            note "contained";
            errno Errno.eio)
  in
  let fn name params results f =
    let f = if results = [] then f else contain name f in
    ( name,
      Instance.host_func ~name
        { Types.params; results = (match results with [] -> [] | r -> r) }
        (fun args ->
          (match t.obs with
          | Some o ->
              Twine_obs.Obs.inc o "wasi.hostcall";
              Twine_obs.Obs.inc o ("wasi." ^ name);
              Twine_obs.Obs.emit o ~cat:"wasi"
                ~args:[ ("calls", Twine_obs.Obs.value o ("wasi." ^ name)) ]
                ("wasi." ^ name)
          | None -> ());
          t.providers.on_call name;
          f args) )
  in
  let i = Types.I32 and l = Types.I64 in
  [
    fn "args_sizes_get" [ i; i ] [ i ] (function
      | [ a; b ] -> args_like_sizes (m ()) t.args ~count_ptr:(arg_i32 a) ~size_ptr:(arg_i32 b)
      | _ -> trap "args_sizes_get");
    fn "args_get" [ i; i ] [ i ] (function
      | [ a; b ] -> args_like_get (m ()) t.args ~ptrs_ptr:(arg_i32 a) ~buf_ptr:(arg_i32 b)
      | _ -> trap "args_get");
    fn "environ_sizes_get" [ i; i ] [ i ] (function
      | [ a; b ] ->
          let env = List.map (fun (k, v) -> k ^ "=" ^ v) t.env in
          args_like_sizes (m ()) env ~count_ptr:(arg_i32 a) ~size_ptr:(arg_i32 b)
      | _ -> trap "environ_sizes_get");
    fn "environ_get" [ i; i ] [ i ] (function
      | [ a; b ] ->
          let env = List.map (fun (k, v) -> k ^ "=" ^ v) t.env in
          args_like_get (m ()) env ~ptrs_ptr:(arg_i32 a) ~buf_ptr:(arg_i32 b)
      | _ -> trap "environ_get");
    fn "clock_res_get" [ i; i ] [ i ] (function
      | [ id; ptr ] -> (
          match clock_time t (arg_i32 id) with
          | Some _ ->
              store_u64 (m ()) (arg_i32 ptr) 1L;
              ok
          | None -> errno Errno.einval)
      | _ -> trap "clock_res_get");
    fn "clock_time_get" [ i; l; i ] [ i ] (function
      | [ id; _precision; ptr ] -> (
          match clock_time t (arg_i32 id) with
          | Some ns ->
              store_u64 (m ()) (arg_i32 ptr) ns;
              ok
          | None -> errno Errno.einval)
      | _ -> trap "clock_time_get");
    fn "fd_advise" [ i; l; l; i ] [ i ] (fun _ -> ok);
    fn "fd_allocate" [ i; l; l ] [ i ] (function
      | [ fd; off; len ] ->
          with_file t (arg_i32 fd) right_fd_write (fun ff ->
              let target = Int64.to_int (arg_i64 off) + Int64.to_int (arg_i64 len) in
              if ff.file.f_size () >= target then ok
              else (
                match ff.file.f_set_size target with
                | Ok () -> ok
                | Error e -> errno e))
      | _ -> trap "fd_allocate");
    fn "fd_close" [ i ] [ i ] (function
      | [ fd ] -> (
          let fd = arg_i32 fd in
          match find_fd t fd with
          | Some (Fd_file ff) ->
              ff.file.f_close ();
              Hashtbl.remove t.fds fd;
              ok
          | Some (Fd_dir _) ->
              Hashtbl.remove t.fds fd;
              ok
          | Some _ -> ok
          | None -> errno Errno.ebadf)
      | _ -> trap "fd_close");
    fn "fd_datasync" [ i ] [ i ] (function
      | [ fd ] ->
          with_file t (arg_i32 fd) 0L (fun ff ->
              ff.file.f_sync ();
              ok)
      | _ -> trap "fd_datasync");
    fn "fd_fdstat_get" [ i; i ] [ i ] (function
      | [ fd; buf ] -> (
          let mem = m () and buf = arg_i32 buf in
          let write_fdstat ft flags rights =
            Memory.store8 mem buf (Int32.of_int ft);
            Memory.store16 mem (buf + 2) (Int32.of_int flags);
            store_u64 mem (buf + 8) rights;
            store_u64 mem (buf + 16) rights;
            ok
          in
          match find_fd t (arg_i32 fd) with
          | Some Fd_stdin -> write_fdstat 2 0 right_fd_read
          | Some (Fd_stdout | Fd_stderr) -> write_fdstat 2 1 right_fd_write
          | Some (Fd_dir _) -> write_fdstat 3 0 all_rights
          | Some (Fd_file ff) -> write_fdstat 4 ff.flags ff.rights
          | None -> errno Errno.ebadf)
      | _ -> trap "fd_fdstat_get");
    fn "fd_fdstat_set_flags" [ i; i ] [ i ] (function
      | [ fd; flags ] ->
          with_file t (arg_i32 fd) 0L (fun ff ->
              ff.flags <- arg_i32 flags;
              ok)
      | _ -> trap "fd_fdstat_set_flags");
    fn "fd_fdstat_set_rights" [ i; l; l ] [ i ] (function
      | [ fd; base; _inh ] ->
          with_file t (arg_i32 fd) 0L (fun ff ->
              let requested = arg_i64 base in
              (* rights may only shrink *)
              if Int64.logand requested (Int64.lognot ff.rights) <> 0L then
                errno Errno.enotcapable
              else begin
                ff.rights <- requested;
                ok
              end)
      | _ -> trap "fd_fdstat_set_rights");
    fn "fd_filestat_get" [ i; i ] [ i ] (function
      | [ fd; buf ] -> (
          let mem = m () and buf = arg_i32 buf in
          match find_fd t (arg_i32 fd) with
          | Some (Fd_file ff) ->
              write_filestat mem buf
                { Vfs.st_size = ff.file.f_size (); st_filetype = Vfs.Regular };
              ok
          | Some (Fd_dir _) ->
              write_filestat mem buf { Vfs.st_size = 0; st_filetype = Vfs.Directory };
              ok
          | Some _ ->
              write_filestat mem buf { Vfs.st_size = 0; st_filetype = Vfs.Char_device };
              ok
          | None -> errno Errno.ebadf)
      | _ -> trap "fd_filestat_get");
    fn "fd_filestat_set_size" [ i; l ] [ i ] (function
      | [ fd; size ] ->
          with_file t (arg_i32 fd) right_fd_write (fun ff ->
              match ff.file.f_set_size (Int64.to_int (arg_i64 size)) with
              | Ok () -> ok
              | Error e -> errno e)
      | _ -> trap "fd_filestat_set_size");
    fn "fd_filestat_set_times" [ i; l; l; i ] [ i ] (fun _ -> ok);
    fn "fd_pread" [ i; i; i; l; i ] [ i ] (function
      | [ fd; iovs; iovs_len; off; nread ] ->
          with_file t (arg_i32 fd) right_fd_read (fun ff ->
              do_read ff.file (m ()) (arg_i32 iovs) (arg_i32 iovs_len) (arg_i32 nread)
                ~pread:true ~offset:(Int64.to_int (arg_i64 off)))
      | _ -> trap "fd_pread");
    fn "fd_prestat_get" [ i; i ] [ i ] (function
      | [ fd; buf ] -> (
          match find_fd t (arg_i32 fd) with
          | Some (Fd_dir d) ->
              let mem = m () and buf = arg_i32 buf in
              Memory.store8 mem buf 0l;
              store_u32 mem (buf + 4) (String.length d.preopen_name);
              ok
          | Some _ | None -> errno Errno.ebadf)
      | _ -> trap "fd_prestat_get");
    fn "fd_prestat_dir_name" [ i; i; i ] [ i ] (function
      | [ fd; path; path_len ] -> (
          match find_fd t (arg_i32 fd) with
          | Some (Fd_dir d) ->
              if String.length d.preopen_name > arg_i32 path_len then
                errno Errno.erange
              else begin
                Memory.store_bytes (m ()) (arg_i32 path) d.preopen_name;
                ok
              end
          | Some _ | None -> errno Errno.ebadf)
      | _ -> trap "fd_prestat_dir_name");
    fn "fd_pwrite" [ i; i; i; l; i ] [ i ] (function
      | [ fd; iovs; iovs_len; off; nw ] ->
          with_file t (arg_i32 fd) right_fd_write (fun ff ->
              do_write ff.file (m ()) (arg_i32 iovs) (arg_i32 iovs_len) (arg_i32 nw)
                ~pwrite:true ~offset:(Int64.to_int (arg_i64 off)))
      | _ -> trap "fd_pwrite");
    fn "fd_read" [ i; i; i; i ] [ i ] (function
      | [ fd; iovs; iovs_len; nread ] -> (
          match find_fd t (arg_i32 fd) with
          | Some Fd_stdin ->
              store_u32 (m ()) (arg_i32 nread) 0;
              ok
          | _ ->
              with_file t (arg_i32 fd) right_fd_read (fun ff ->
                  do_read ff.file (m ()) (arg_i32 iovs) (arg_i32 iovs_len)
                    (arg_i32 nread) ~pread:false ~offset:0))
      | _ -> trap "fd_read");
    fn "fd_readdir" [ i; i; i; l; i ] [ i ] (function
      | [ fd; buf; buf_len; cookie; bufused ] ->
          with_dir t (arg_i32 fd) (fun d ->
              match d.dir.d_list "" with
              | Error e -> errno e
              | Ok entries ->
                  let mem = m () in
                  let buf = arg_i32 buf and buf_len = arg_i32 buf_len in
                  let cookie = Int64.to_int (arg_i64 cookie) in
                  let pos = ref 0 in
                  let idx = ref 0 in
                  List.iter
                    (fun (name, ft) ->
                      incr idx;
                      if !idx > cookie && !pos + 24 + String.length name <= buf_len
                      then begin
                        store_u64 mem (buf + !pos) (Int64.of_int !idx);
                        store_u64 mem (buf + !pos + 8) (Int64.of_int !idx);
                        store_u32 mem (buf + !pos + 16) (String.length name);
                        Memory.store8 mem (buf + !pos + 20)
                          (Int32.of_int (filetype_byte ft));
                        Memory.store_bytes mem (buf + !pos + 24) name;
                        pos := !pos + 24 + String.length name
                      end)
                    entries;
                  store_u32 mem (arg_i32 bufused) !pos;
                  ok)
      | _ -> trap "fd_readdir");
    fn "fd_renumber" [ i; i ] [ i ] (function
      | [ from; to_ ] -> (
          let from = arg_i32 from and to_ = arg_i32 to_ in
          match find_fd t from with
          | None -> errno Errno.ebadf
          | Some entry ->
              (match find_fd t to_ with
              | Some (Fd_file old) -> old.file.f_close ()
              | _ -> ());
              Hashtbl.replace t.fds to_ entry;
              Hashtbl.remove t.fds from;
              ok)
      | _ -> trap "fd_renumber");
    fn "fd_seek" [ i; l; i; i ] [ i ] (function
      | [ fd; offset; whence; newpos ] ->
          with_file t (arg_i32 fd) right_fd_seek (fun ff ->
              let whence =
                match arg_i32 whence with
                | 0 -> `Set
                | 1 -> `Cur
                | 2 -> `End
                | _ -> `Set
              in
              match ff.file.f_seek ~offset:(Int64.to_int (arg_i64 offset)) ~whence with
              | Ok p ->
                  store_u64 (m ()) (arg_i32 newpos) (Int64.of_int p);
                  ok
              | Error e -> errno e)
      | _ -> trap "fd_seek");
    fn "fd_sync" [ i ] [ i ] (function
      | [ fd ] ->
          with_file t (arg_i32 fd) 0L (fun ff ->
              ff.file.f_sync ();
              ok)
      | _ -> trap "fd_sync");
    fn "fd_tell" [ i; i ] [ i ] (function
      | [ fd; ptr ] ->
          with_file t (arg_i32 fd) 0L (fun ff ->
              store_u64 (m ()) (arg_i32 ptr) (Int64.of_int (ff.file.f_tell ()));
              ok)
      | _ -> trap "fd_tell");
    fn "fd_write" [ i; i; i; i ] [ i ] (function
      | [ fd; iovs; iovs_len; nw ] -> (
          match find_fd t (arg_i32 fd) with
          | Some Fd_stdout ->
              sink_write t.providers.stdout (m ()) (arg_i32 iovs) (arg_i32 iovs_len)
                (arg_i32 nw)
          | Some Fd_stderr ->
              sink_write t.providers.stderr (m ()) (arg_i32 iovs) (arg_i32 iovs_len)
                (arg_i32 nw)
          | _ ->
              with_file t (arg_i32 fd) right_fd_write (fun ff ->
                  do_write ff.file (m ()) (arg_i32 iovs) (arg_i32 iovs_len)
                    (arg_i32 nw) ~pwrite:false ~offset:0))
      | _ -> trap "fd_write");
    fn "path_create_directory" [ i; i; i ] [ i ] (function
      | [ fd; path; len ] ->
          with_dir t (arg_i32 fd) (fun d ->
              match d.dir.d_create_dir (path_of (m ()) (arg_i32 path) (arg_i32 len)) with
              | Ok () -> ok
              | Error e -> errno e)
      | _ -> trap "path_create_directory");
    fn "path_filestat_get" [ i; i; i; i; i ] [ i ] (function
      | [ fd; _flags; path; len; buf ] ->
          with_dir t (arg_i32 fd) (fun d ->
              match d.dir.d_stat (path_of (m ()) (arg_i32 path) (arg_i32 len)) with
              | Ok st ->
                  write_filestat (m ()) (arg_i32 buf) st;
                  ok
              | Error e -> errno e)
      | _ -> trap "path_filestat_get");
    fn "path_filestat_set_times" [ i; i; i; i; l; l; i ] [ i ] (fun _ -> ok);
    fn "path_link" [ i; i; i; i; i; i; i ] [ i ] (fun _ -> errno Errno.enosys);
    fn "path_open" [ i; i; i; i; i; l; l; i; i ] [ i ] (function
      | [ dirfd; _dirflags; path; path_len; oflags; rights_base; _rights_inh;
          fdflags; opened ] ->
          with_dir t (arg_i32 dirfd) (fun d ->
              let path = path_of (m ()) (arg_i32 path) (arg_i32 path_len) in
              let creat, directory, excl, trunc, append =
                open_flags (arg_i32 oflags) (arg_i32 fdflags)
              in
              if directory then (
                match d.dir.d_stat path with
                | Ok { Vfs.st_filetype = Vfs.Directory; _ } ->
                    (* open the subtree as a new capability *)
                    errno Errno.enotsup
                | Ok _ -> errno Errno.enotdir
                | Error e -> errno e)
              else
                match d.dir.d_open path ~create:creat ~trunc ~excl ~append with
                | Error e -> errno e
                | Ok file ->
                    let fd = t.next_fd in
                    t.next_fd <- t.next_fd + 1;
                    Hashtbl.replace t.fds fd
                      (Fd_file
                         {
                           file;
                           rights = Int64.logand (arg_i64 rights_base) all_rights;
                           flags = arg_i32 fdflags;
                         });
                    store_u32 (m ()) (arg_i32 opened) fd;
                    ok)
      | _ -> trap "path_open");
    fn "path_readlink" [ i; i; i; i; i; i ] [ i ] (fun _ -> errno Errno.enosys);
    fn "path_remove_directory" [ i; i; i ] [ i ] (function
      | [ fd; path; len ] ->
          with_dir t (arg_i32 fd) (fun d ->
              match d.dir.d_remove_dir (path_of (m ()) (arg_i32 path) (arg_i32 len)) with
              | Ok () -> ok
              | Error e -> errno e)
      | _ -> trap "path_remove_directory");
    fn "path_rename" [ i; i; i; i; i; i ] [ i ] (function
      | [ fd; old_p; old_len; new_fd; new_p; new_len ] ->
          if arg_i32 fd <> arg_i32 new_fd then errno Errno.enotsup
          else
            with_dir t (arg_i32 fd) (fun d ->
                match
                  d.dir.d_rename
                    (path_of (m ()) (arg_i32 old_p) (arg_i32 old_len))
                    (path_of (m ()) (arg_i32 new_p) (arg_i32 new_len))
                with
                | Ok () -> ok
                | Error e -> errno e)
      | _ -> trap "path_rename");
    fn "path_symlink" [ i; i; i; i; i ] [ i ] (fun _ -> errno Errno.enosys);
    fn "path_unlink_file" [ i; i; i ] [ i ] (function
      | [ fd; path; len ] ->
          with_dir t (arg_i32 fd) (fun d ->
              match d.dir.d_unlink (path_of (m ()) (arg_i32 path) (arg_i32 len)) with
              | Ok () -> ok
              | Error e -> errno e)
      | _ -> trap "path_unlink_file");
    fn "poll_oneoff" [ i; i; i; i ] [ i ] (function
      | [ in_ptr; out_ptr; nsubs; nevents ] ->
          (* only clock subscriptions complete (immediately) *)
          let mem = m () in
          let in_ptr = arg_i32 in_ptr and out_ptr = arg_i32 out_ptr in
          let nsubs = arg_i32 nsubs in
          let written = ref 0 in
          for s = 0 to nsubs - 1 do
            let sub = in_ptr + (s * 48) in
            let userdata = Memory.load64 mem sub in
            let tag = Int32.to_int (Memory.load8_u mem (sub + 8)) in
            if tag = 0 then begin
              (* clock: report completion *)
              let ev = out_ptr + (!written * 32) in
              store_u64 mem ev userdata;
              Memory.store16 mem (ev + 8) 0l;  (* errno success *)
              Memory.store8 mem (ev + 10) 0l;  (* type clock *)
              incr written
            end
          done;
          if !written = 0 && nsubs > 0 then errno Errno.enotsup
          else begin
            store_u32 mem (arg_i32 nevents) !written;
            ok
          end
      | _ -> trap "poll_oneoff");
    fn "proc_exit" [ i ] [] (function
      | [ code ] ->
          t.exit_code <- Some (arg_i32 code);
          raise (Proc_exit (arg_i32 code))
      | _ -> trap "proc_exit");
    fn "proc_raise" [ i ] [ i ] (fun _ -> errno Errno.enosys);
    fn "random_get" [ i; i ] [ i ] (function
      | [ buf; len ] ->
          Memory.store_bytes (m ()) (arg_i32 buf) (t.providers.random (arg_i32 len));
          ok
      | _ -> trap "random_get");
    fn "sched_yield" [] [ i ] (fun _ -> ok);
    fn "sock_recv" [ i; i; i; i; i; i ] [ i ] (fun _ -> errno Errno.enotsup);
    fn "sock_send" [ i; i; i; i; i ] [ i ] (fun _ -> errno Errno.enotsup);
    fn "sock_shutdown" [ i; i ] [ i ] (fun _ -> errno Errno.enotsup);
  ]

let import_module_name = "wasi_snapshot_preview1"

let imports t : Instance.imports =
  List.map (fun (name, f) -> (import_module_name, name, Instance.Extern_func f))
    (functions t)

let function_count t = List.length (functions t)

(* Instantiate a WASI command module and run its _start, returning the
   exit code (0 when _start returns normally). *)
let run_command t module_ =
  let inst = Interp.instantiate ~imports:(imports t) module_ in
  bind_memory t inst;
  match Instance.export_func inst "_start" with
  | None -> invalid_arg "Wasi.run_command: module has no _start"
  | Some _ -> (
      try
        ignore (Interp.invoke inst "_start" []);
        0
      with Proc_exit code -> code)
