(** Seeded open-loop workload generator for the serving simulator.

    A [shape] plus a seed names a reproducible client population: the
    same pair always yields the same arrival array, so two runs of the
    fleet over it produce byte-identical ledgers. *)

type req =
  | Kv_get of int  (** key-value point lookup *)
  | Sql_point of int  (** rowid point query *)
  | Sql_range of int * int  (** Speedtest1-style slice: [lo, lo+span) aggregate *)

type mix = { kv_get : int; sql_point : int; sql_range : int }
(** Relative weights of the request kinds. *)

val default_mix : mix
(** 6 : 3 : 1 — read-heavy, like the paper's macro workloads. *)

val req_name : req -> string

type arrival = { rid : int; at : int; enclave : int; req : req }
(** [rid] is the request id: the arrival's index in the generated
    array, stable across replays of the same [(seed, shape)] — the span
    context every per-request trace, exemplar and ledger slice keys
    on. *)

type shape = {
  enclaves : int;
  requests : int;
  mean_gap_ns : int;  (** mean inter-arrival; 0 = all at time zero *)
  rows : int;  (** per-enclave dataset rows; keys draw from [0, rows) *)
  span : int;  (** range-slice width *)
  mix : mix;
}

val stream : seed:string -> shape -> unit -> arrival option
(** Lazy arrival generator: each call yields the next arrival in rid
    order, [None] once [shape.requests] have been produced. O(1)
    memory — the streaming serve mode pulls from this instead of
    materialising the array. Draws the same single DRBG stream in the
    same order as {!generate}, so both name the identical workload.
    @raise Invalid_argument on a non-positive fleet, negative request
    count, non-positive [rows] or an all-zero mix. *)

val generate : seed:string -> shape -> arrival array
(** The fully materialised {!stream}: arrival times are nondecreasing
    (uniform gaps on [0, 2*mean]); the enclave assignment is uniform.
    Deterministic in [(seed, shape)].
    @raise Invalid_argument as {!stream}. *)
