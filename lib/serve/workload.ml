(* Seeded open-loop workload: the synthetic client population of the
   serving simulator. Arrival times, target enclaves and request bodies
   all derive from one HMAC_DRBG stream, so a (seed, shape) pair names a
   workload reproducibly — replaying it yields byte-identical ledgers. *)

type req =
  | Kv_get of int  (** key-value point lookup *)
  | Sql_point of int  (** rowid point query *)
  | Sql_range of int * int  (** Speedtest1-style slice: [lo, lo+span) aggregate *)

type mix = { kv_get : int; sql_point : int; sql_range : int }

let default_mix = { kv_get = 6; sql_point = 3; sql_range = 1 }

let req_name = function
  | Kv_get _ -> "kv_get"
  | Sql_point _ -> "sql_point"
  | Sql_range _ -> "sql_range"

type arrival = { rid : int; at : int; enclave : int; req : req }

type shape = {
  enclaves : int;
  requests : int;
  mean_gap_ns : int;
  rows : int;  (** per-enclave dataset rows; keys draw from [0, rows) *)
  span : int;  (** range-slice width *)
  mix : mix;
}

(* Open loop: clients fire on their own schedule regardless of server
   progress (queueing delay shows up as latency, not as back-pressure).
   Inter-arrival gaps are uniform on [0, 2*mean] so the mean rate is
   exactly [1 / mean_gap_ns] without floating point in the stream.

   The per-arrival draw order (gap, then request body, then enclave)
   is load-bearing: it pins the single DRBG stream's consumption so
   [stream] and [generate] name the same workload, and so every gated
   serve.* baseline metric stays byte-identical across refactors. *)
let stream ~seed shape =
  if shape.enclaves <= 0 then invalid_arg "Workload.stream: enclaves <= 0";
  if shape.requests < 0 then invalid_arg "Workload.stream: requests < 0";
  if shape.rows <= 0 then invalid_arg "Workload.stream: rows <= 0";
  let m = shape.mix in
  let weight_total = m.kv_get + m.sql_point + m.sql_range in
  if weight_total <= 0 then invalid_arg "Workload.stream: empty mix";
  let g = Twine_crypto.Drbg.create ~personalization:"twine.serve.workload" ~seed () in
  let now = ref 0 in
  let rid = ref 0 in
  let pick_req () =
    let w = Twine_crypto.Drbg.int_below g weight_total in
    if w < m.kv_get then Kv_get (Twine_crypto.Drbg.int_below g shape.rows)
    else if w < m.kv_get + m.sql_point then
      Sql_point (Twine_crypto.Drbg.int_below g shape.rows)
    else
      let lo = Twine_crypto.Drbg.int_below g shape.rows in
      Sql_range (lo, max 1 shape.span)
  in
  fun () ->
    if !rid >= shape.requests then None
    else begin
      let gap =
        if shape.mean_gap_ns <= 0 then 0
        else Twine_crypto.Drbg.int_below g ((2 * shape.mean_gap_ns) + 1)
      in
      now := !now + gap;
      let req = pick_req () in
      let enclave = Twine_crypto.Drbg.int_below g shape.enclaves in
      let a = { rid = !rid; at = !now; enclave; req } in
      incr rid;
      Some a
    end

let generate ~seed shape =
  let next = stream ~seed shape in
  Array.init shape.requests (fun _ ->
      match next () with Some a -> a | None -> assert false)
