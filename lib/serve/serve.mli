(** Deterministic multi-enclave serving simulator.

    A fleet of TWINE runtimes shares one simulated machine — one virtual
    clock, one EPC, one ledger — and a run-to-completion scheduler
    replays a seeded open-loop workload ({!Workload}) against it,
    coalescing up to [batch] queued requests behind a single ECALL
    ({!Twine.Runtime.serve}) so a batch pays one enclave round-trip.
    Everything is booked through [Machine.charge], so the serving phase
    passes the ledger's conservation audit and a (seed, config) pair
    replays to byte-identical books and tail latencies. *)

type config = {
  enclaves : int;
  requests : int;
  batch : int;  (** max requests coalesced behind one ECALL; 1 = unbatched *)
  seed : string;
  mean_gap_ns : int;  (** mean client inter-arrival (open loop) *)
  rows : int;  (** per-enclave dataset rows *)
  span : int;  (** range-slice width *)
  payload_bytes : int;
  cache_pages : int;  (** per-enclave page-cache capacity *)
  epc_bytes : int;  (** the machine-wide EPC the fleet contends for *)
  mix : Workload.mix;
  wasm_factor : float;
      (** pinned Wasm slowdown (never wall-clock calibrated here) *)
  ns_per_work : float;
  trace_requests : bool;
      (** emit a trace instant per request when a recorder is attached *)
}

val default_config : config
(** 100k requests, 8 enclaves, batch 16, 288-page EPC, factor 2.5. *)

val shape_of : config -> Workload.shape

type stats = {
  requests : int;
  enclaves : int;
  batch : int;
  elapsed_ns : int;  (** serving-phase virtual time (setup books dropped) *)
  idle_ns : int;
  throughput_rps : float;
  mean_ns : int;
  p50_ns : int;  (** exact nearest-rank percentiles over all latencies *)
  p99_ns : int;
  max_ns : int;
  batches : int;
  ecalls : int;
  ocalls : int;
  transitions_per_request : float;  (** one-way crossings per request *)
  ecall_ns : int;  (** ledger [sgx.transition.ecall], serving phase *)
  epc_faults : int;
  epc_evictions : int;
  epc_limit_pages : int;
  epc_resident_pages : int;
  evictions_by_enclave : (int * int) list;
      (** [(enclave id, times one of its pages was the eviction victim)] —
          the cross-enclave interference measure of the shared EPC *)
  ledger : Twine_obs.Ledger.snapshot;
  machine : Twine_sgx.Machine.t;
}

val run : ?prepare:(Twine_sgx.Machine.t -> unit) -> config -> stats
(** Build the fleet on one fresh machine, populate each enclave's
    database, reset the books (the serving phase audits on its own;
    workers keep their warm EPC pages), call [prepare] (attach a flight
    recorder here), then replay the workload to completion.
    @raise Invalid_argument on a non-positive fleet or batch size. *)

val render : stats -> string
(** Human-readable summary block. *)
