(** Deterministic multi-enclave serving simulator.

    A fleet of TWINE runtimes shares one simulated machine — one virtual
    clock, one EPC, one ledger — and a run-to-completion scheduler
    replays a seeded open-loop workload ({!Workload}) against it,
    coalescing up to [batch] queued requests behind a single ECALL
    ({!Twine.Runtime.serve}) so a batch pays one enclave round-trip.
    Everything is booked through [Machine.charge], so the serving phase
    passes the ledger's conservation audit and a (seed, config) pair
    replays to byte-identical books and tail latencies.

    {2 Per-request attribution}

    Every request carries its workload id ({!Workload.arrival.rid}) as a
    span context from the event queue through queue wait, batch
    assembly, the serving ECALL and everything it nests (SQL execution,
    pager work, EPC paging, protected-FS crypto). While a request is
    live, a {!Twine_obs.Ledger} tap routes {e every} booking into that
    request's {!breakdown}; a batch's entry/exit crossings are split
    evenly across its requests (integer shares, remainder to the first);
    scheduler idle lands in a phase-level bucket. The slices obey a
    structural conservation law with zero residue:

    {v sum of attributed_ns over requests + unattributed_ns (idle)
   = serving-phase booked total = serving-phase elapsed time v}

    and per request [latency = queue wait + service time], with the
    service time exactly equal to the request's direct attribution
    (before overhead shares). {!blame} ranks the tail by dominant
    component; cross-enclave EPC eviction provenance
    ({!Twine_sgx.Epc.set_refault_hook}) names the enclave whose fault
    evicted the pages a tail request had to fault back in. *)

type config = {
  enclaves : int;
  requests : int;
  batch : int;  (** max requests coalesced behind one ECALL; 1 = unbatched *)
  seed : string;
  mean_gap_ns : int;  (** mean client inter-arrival (open loop) *)
  rows : int;  (** per-enclave dataset rows *)
  span : int;  (** range-slice width *)
  payload_bytes : int;
  cache_pages : int;  (** per-enclave page-cache capacity *)
  epc_bytes : int;  (** the machine-wide EPC the fleet contends for *)
  mix : Workload.mix;
  wasm_factor : float;
      (** pinned Wasm slowdown (never wall-clock calibrated here) *)
  ns_per_work : float;
  trace_requests : bool;
      (** emit request spans/instants when a recorder is attached *)
  sample_every_ns : int;
      (** virtual-time metrics sampling period (queue depth, per-enclave
          EPC residency, completed requests as Perfetto counter tracks);
          0 disables the sampler *)
  retain_requests : bool;
      (** keep the per-request log ({!stats.requests_log}, exact
          percentiles, {!blame}). [false] is the [--stream] mode: the
          run folds everything into the windowed series and sketch and
          holds O(windows + sketch) memory, so 10–100x request counts
          replay without O(n) retention — at the cost of the
          per-request views, which then raise [Invalid_argument] *)
  window_ns : int;
      (** tumbling-window period of the SLO plane's series; when [slo]
          is set its [window_ns] takes precedence *)
  slo : Twine_obs.Slo.spec option;
      (** latency objective to evaluate over the windowed series; also
          supplies the over-threshold counting the burn rates need *)
  chaos : Twine_sim.Chaos.spec option;
      (** seeded fault schedule armed for the serving phase only
          (setup/population run clean); spec activation windows are
          relative to the phase start *)
  deadline_ns : int;
      (** client deadline: a request still unserved this long after its
          arrival completes as [Timed_out]; 0 disables deadlines *)
  retries : int;
      (** requeues allowed per request after enclave faults before it
          completes as [Failed] *)
  backoff_ns : int;
      (** retry backoff base: requeue k waits [base * 2^(k-1)] (plus
          deterministic DRBG jitter up to +25%); 0 retries immediately *)
  backoff_cap_ns : int;  (** exponential backoff cap (before jitter) *)
  hedge : bool;
      (** hedged retries: a requeued request goes to the least-loaded
          enclave instead of back to its home queue (every enclave holds
          an identical dataset, so any slot can serve it) *)
  shed_depth : int;
      (** admission control: an arrival finding its enclave's live queue
          this deep completes as [Shed] without being enqueued; 0
          disables depth shedding *)
  shed_refaults : int;
      (** EPC-pressure shedding: arrivals are shed while cross-enclave
          refaults within the current tumbling window have reached this
          count; 0 disables *)
}

val default_config : config
(** 100k requests, 8 enclaves, batch 16, 768-page EPC, factor 2.5,
    1 ms virtual sampling, retention on, 50 ms windows, no SLO, no
    chaos, no deadlines/shedding, 2 retries with 100 us base backoff
    capped at 5 ms. *)

val shape_of : config -> Workload.shape

(** {2 Per-request records} *)

type breakdown = {
  mutable transition_ns : int;  (** [sgx.transition.*] *)
  mutable exec_ns : int;  (** [serve.exec] *)
  mutable pager_ns : int;  (** [serve.pager] *)
  mutable epc_fault_ns : int;
  mutable epc_evict_ns : int;
  mutable crypto_ns : int;  (** [ipfs.crypto] + [mee.*] *)
  mutable other_ns : int;  (** everything else (alloc, ipfs.io, ...) *)
}
(** One request's exact cycle slice of the serving-phase ledger, grouped
    by account family. Mutable only while the run is in flight. *)

val breakdown_total : breakdown -> int

(** How a request left the system. Every admitted rid completes with
    exactly one outcome and appears once in the request log; only
    [Served] counts toward goodput. *)
type outcome =
  | Served
  | Shed  (** fast-failed at admission (queue depth / EPC pressure) *)
  | Timed_out  (** client deadline passed while queued or backing off *)
  | Failed  (** retry budget exhausted after enclave faults *)

val outcome_name : outcome -> string
(** ["served"], ["shed"], ["timeout"], ["failed"]. *)

type request = {
  rid : int;
  enclave : int;
  kind : string;  (** {!Workload.req_name} *)
  arrival_ns : int;
  start_ns : int;  (** when its batch reached the front and service began *)
  mutable finish_ns : int;
  mutable outcome : outcome;
  mutable attempts : int;
      (** dispatches into a batch (0 for requests shed or expired
          unserved) *)
  mutable retry_wait_ns : int;
      (** total backoff delay scheduled before retries of this request *)
  breakdown : breakdown;
  mutable interference : (int * int) list;
      (** (evictor enclave, cross-enclave refaults this request paid
          for), sorted by enclave id *)
}

val latency_ns : request -> int
(** [finish - arrival]. *)

val queue_ns : request -> int
(** [start - arrival]. *)

val service_ns : request -> int
(** [finish - start]. *)

val attributed_ns : request -> int
(** {!breakdown_total} of the slice. *)

type stats = {
  requests : int;
  enclaves : int;
  batch : int;
  elapsed_ns : int;  (** serving-phase virtual time (setup books dropped) *)
  idle_ns : int;
  throughput_rps : float;
  mean_ns : int;
  p50_ns : int;  (** exact nearest-rank percentiles over served latencies *)
  p99_ns : int;
  max_ns : int;
  batches : int;
  ecalls : int;
  ocalls : int;
  transitions_per_request : float;  (** one-way crossings per request *)
  ecall_ns : int;  (** ledger [sgx.transition.ecall], serving phase *)
  epc_faults : int;
  epc_evictions : int;
  epc_limit_pages : int;
  epc_resident_pages : int;
  evictions_by_enclave : (int * int) list;
      (** [(enclave id, times one of its pages was the eviction victim)] —
          the cross-enclave interference measure of the shared EPC *)
  requests_log : request array;
      (** indexed by rid; every admitted request, any outcome *)
  attributed_ns : int;  (** sum of all requests' cycle slices *)
  unattributed_ns : int;  (** booked outside any batch: scheduler idle *)
  failover_ns : int;
      (** booked to the failure domain: the wasted work of crashed
          batches plus the detect/teardown/relaunch/recover path *)
  attribution_residue_ns : int;
      (** booked − attributed − unattributed − failover; 0 is the
          conservation invariant the bench gate pins *)
  served : int;
  shed : int;
  timed_out : int;
  failed : int;
  retries : int;  (** requeues scheduled after failed batches *)
  failovers : int;  (** enclaves lost, destroyed and relaunched *)
  recovery_p99_ns : int;
      (** p99 failover duration — detect through recovered replacement
          (0 when no failover happened) *)
  goodput_rps : float;  (** served requests / elapsed *)
  availability_ppm : int;  (** served per million admitted *)
  cross_refaults : int;
  interference_by_evictor : (int * int) list;
      (** (enclave, refaults its faults inflicted on others) *)
  p99_exemplar_rids : int list;
      (** request ids recorded in the latency histogram's p99 bucket *)
  sampler_samples : int;
  queue_depth_hwm : int;  (** deepest any enclave's queue ever got *)
  queue_depth_hwm_by_enclave : (int * int) list;
  epc_resident_by_enclave : (int * int) list;  (** at end of run *)
  retained : bool;
      (** [requests_log] populated? [false] under [--stream]: the log
          is empty, [p50_ns]/[p99_ns] carry the sketch estimates, and
          the per-request views raise *)
  t0_ns : int;  (** serving-phase start; window 0 opens here *)
  window_ns : int;  (** effective tumbling-window period *)
  series : Twine_obs.Timeseries.t;
      (** the windowed series: track ["fleet"] plus ["e<id>"] per
          enclave, each with per-window counts, sketch p50/p99,
          breakdown component sums and probed gauges *)
  windows : Twine_obs.Timeseries.window list;
      (** the fleet track's closed windows, ascending *)
  sketch : Twine_obs.Sketch.t;
      (** merge of the per-window fleet sketches — all [requests]
          latencies, mergeable and bounded-memory *)
  sketch_p50_ns : int;
      (** sketch estimate; within {!Twine_obs.Sketch.alpha} relative
          error of the exact [p50_ns] (asserted by [bench serve]) *)
  sketch_p99_ns : int;
  slo : (Twine_obs.Slo.spec * Twine_obs.Slo.eval) option;
      (** the evaluated objective when the config carried one *)
  sqlstats_by_enclave : (int * Twine_sqldb.Sqlstat.t) list;
      (** per-enclave query-stats registries, enclave-id ascending;
          accumulated on the shared serving path, so identical in
          retained and [--stream] runs *)
  sqlstats_fleet : Twine_sqldb.Sqlstat.t;
      (** merge of every enclave's registry *)
  ledger : Twine_obs.Ledger.snapshot;
  machine : Twine_sgx.Machine.t;
}

val run : ?prepare:(Twine_sgx.Machine.t -> unit) -> config -> stats
(** Build the fleet on one fresh machine, populate each enclave's
    database, reset the books (the serving phase audits on its own;
    workers keep their warm EPC pages), call [prepare] (attach a flight
    recorder here; it must not advance the clock), then replay the
    workload to completion.
    @raise Invalid_argument on a non-positive fleet or batch size. *)

val render : stats -> string
(** Human-readable summary block. *)

(** {2 Tail-latency blame} *)

type blame = {
  b_request : request;
  b_dominant : string;
      (** ["queue"], ["retry"], ["transition"], ["exec"], ["pager"],
          ["epc.fault"], ["epc.evict"], ["crypto"] or ["other"] — the
          largest component of this request's latency (ties break toward
          that order); ["retry"] is backoff wait carved out of the queue
          component *)
  b_dominant_ns : int;
}

val blame : ?top:int -> stats -> blame list
(** The [top] (default 10) slowest requests, slowest first (ties by
    rid), each with its dominant latency component.
    @raise Invalid_argument when the run streamed ([retained = false]):
    there is no request log to rank. *)

val blame_summary : stats -> (string * int) list
(** Dominant-component census over the p99 tail (the slowest 1%, at
    least one request), most common first (ties by name) — the
    aggregate answer to "why is p99 what it is".
    @raise Invalid_argument when [retained = false]. *)

val render_blame : ?top:int -> stats -> string
(** The blame table plus the tail census, p99 exemplar rids, the
    attribution conservation line and cross-enclave refault blame.
    @raise Invalid_argument when [retained = false]. *)

(** {2 Request trace} *)

val request_trace_schema : string

val render_requests : stats -> string
(** Canonical per-request trace: one line per rid with outcome, attempt
    count, timestamps, queue/retry wait and the full cycle slice.
    Byte-identical across replays of the same [(seed, config)] — the
    serialisable artifact of the attribution layer.
    @raise Invalid_argument when [retained = false]. *)

(** {2 Windowed SLO artifact} *)

val slo_schema : string
(** ["twine-slo/v1"]. *)

val render_slo : stats -> string
(** Canonical JSON of the streaming SLO plane: the spec and verdict
    (when an objective was set), the fleet latency sketch
    ([twine-sketch/v1]), and every track's closed windows with
    per-window p50/p99, over-threshold counts, breakdown component
    sums and probed gauges. Mode-independent by construction: the
    retained and [--stream] runs of one [(seed, config)] produce the
    same bytes, and replays are byte-identical — both are CI-gated. *)

val threads : stats -> (int * string) list
(** Thread-name metadata for {!Twine_obs.Trace_export.to_file}: the
    per-enclave request tracks used by the serving-phase spans. *)

(** {2 Query-stats artifact} *)

val sqlstats_schema : string
(** ["twine-sqlstats/v1"]. *)

val render_sqlstats : stats -> string
(** Canonical JSON of the query-stats registry: the fleet-merged view
    followed by each enclave's registry in enclave-id order. Entries
    are keyed by normalized fingerprint and carry execution counts,
    row/work totals, pager I/O, cycle totals and a mergeable latency
    sketch. Accumulated on the shared serving path, so the retained and
    [--stream] runs of one [(seed, config)] produce the same bytes. *)
