(* Deterministic multi-enclave serving simulator.

   A fleet of TWINE runtimes shares ONE simulated machine — one virtual
   clock, one EPC, one ledger — so the fleet contends for the Enclave
   Page Cache exactly as co-located enclaves do on real hardware
   (paper §III-A/V-D). The scheduler is run-to-completion on the single
   simulated core: it round-robins over per-enclave FIFO queues, lifts
   up to [batch] queued requests behind a single ECALL
   ({!Twine.Runtime.serve}), and advances the clock only through
   [Machine.charge] — so the conservation audit covers the serving phase
   and a (seed, config) pair replays to a byte-identical ledger.

   Batching is the measurement the paper's §V transition costs motivate:
   an enclave crossing costs ~13,100 cycles each way, so N coalesced
   requests pay 2 crossings instead of 2N. Protected-FS work triggered
   inside the batch nests for free (nested ECALLs charge nothing), which
   is what makes the amortisation visible in [sgx.transition.ecall].

   -- per-request attribution --

   Every arrival carries a request id (its index in the workload). While
   a request is being served, a {!Twine_obs.Ledger} tap routes EVERY
   booking into that request's cycle breakdown; bookings raised inside a
   batch but outside any single request (the batch's entry/exit ECALL
   crossings) accumulate per account and are split across the batch's
   requests (equal integer shares, remainder to the first request);
   bookings outside any batch (scheduler idle) land in a phase-level
   bucket. Because the clock only advances through [Machine.charge] and
   every charge hits the tap exactly once, the slices satisfy a
   structural conservation law with NO residue:

     sum over requests of attributed_ns  +  unattributed_ns (idle)
       =  serving-phase booked total  =  serving-phase elapsed time

   and per request: latency = queue wait + own service time, where the
   service time equals the request's direct (pre-overhead-share)
   attribution exactly. *)

open Twine_sgx
open Twine_sqldb

type config = {
  enclaves : int;
  requests : int;
  batch : int;  (* max requests coalesced behind one ECALL; 1 = unbatched *)
  seed : string;
  mean_gap_ns : int;
  rows : int;
  span : int;
  payload_bytes : int;
  cache_pages : int;
  epc_bytes : int;
  mix : Workload.mix;
  wasm_factor : float;
      (* pinned, never wall-clock calibrated: reproducibility first *)
  ns_per_work : float;
  trace_requests : bool;
  sample_every_ns : int;  (* virtual-time metrics sampling period; 0 = off *)
  retain_requests : bool;
      (* keep the per-request log (blame, exact percentiles); --stream
         turns it off and the run holds O(windows + sketch) memory *)
  window_ns : int;  (* tumbling-window period when no SLO supplies one *)
  slo : Twine_obs.Slo.spec option;
  (* -- failure-domain layer -- *)
  chaos : Twine_sim.Chaos.spec option;
      (* seeded fault schedule armed for the serving phase only; windows
         in the spec are relative to the phase start *)
  deadline_ns : int;  (* client gives up this long after arrival; 0 = off *)
  retries : int;  (* requeues allowed per request after a failed batch *)
  backoff_ns : int;  (* retry backoff base; attempt k waits base * 2^(k-1) *)
  backoff_cap_ns : int;  (* exponential backoff cap (before jitter) *)
  hedge : bool;  (* retries go to the least-loaded enclave, not home *)
  shed_depth : int;  (* admission control: shed when a queue is this deep *)
  shed_refaults : int;
      (* shed when cross-enclave refaults within the current window reach
         this count — the EPC-pressure trigger; 0 = off *)
}

let default_config =
  {
    enclaves = 8;
    requests = 100_000;
    batch = 16;
    seed = "twine-serve";
    mean_gap_ns = 5_000;
    rows = 512;
    span = 16;
    payload_bytes = 96;
    cache_pages = 256;
    epc_bytes = 768 * 4096;
    mix = Workload.default_mix;
    wasm_factor = 2.5;
    ns_per_work = 60.;
    trace_requests = true;
    sample_every_ns = 1_000_000;
    retain_requests = true;
    window_ns = 50_000_000;
    slo = None;
    chaos = None;
    deadline_ns = 0;
    retries = 2;
    backoff_ns = 100_000;
    backoff_cap_ns = 5_000_000;
    hedge = false;
    shed_depth = 0;
    shed_refaults = 0;
  }

(* Failover orchestration costs (virtual ns, pinned): the host-side work
   of detecting an aborted enclave, EREMOVE-ing its pages, relaunching a
   replacement and re-opening its durable state. The big costs — enclave
   launch (EADD/EEXTEND) and protected-file crash recovery — are charged
   by the layers that do the work; these are the scheduler's own steps. *)
let failover_detect_ns = 5_000
let failover_teardown_base_ns = 20_000
let failover_teardown_page_ns = 150
let failover_relaunch_ns = 50_000
let failover_recover_ns = 20_000

let shape_of (c : config) : Workload.shape =
  {
    Workload.enclaves = c.enclaves;
    requests = c.requests;
    mean_gap_ns = c.mean_gap_ns;
    rows = c.rows;
    span = c.span;
    mix = c.mix;
  }

(* --- per-request records --- *)

type breakdown = {
  mutable transition_ns : int;  (* sgx.transition.* *)
  mutable exec_ns : int;  (* serve.exec *)
  mutable pager_ns : int;  (* serve.pager *)
  mutable epc_fault_ns : int;
  mutable epc_evict_ns : int;
  mutable crypto_ns : int;  (* ipfs.crypto + mee.* *)
  mutable other_ns : int;  (* everything else (alloc, ipfs.io, ...) *)
}

let zero_breakdown () =
  { transition_ns = 0; exec_ns = 0; pager_ns = 0; epc_fault_ns = 0;
    epc_evict_ns = 0; crypto_ns = 0; other_ns = 0 }

let credit b account ns =
  if account = "serve.exec" then b.exec_ns <- b.exec_ns + ns
  else if account = "serve.pager" then b.pager_ns <- b.pager_ns + ns
  else if account = "epc.fault" then b.epc_fault_ns <- b.epc_fault_ns + ns
  else if account = "epc.evict" then b.epc_evict_ns <- b.epc_evict_ns + ns
  else if String.length account >= 14 && String.sub account 0 14 = "sgx.transition"
  then b.transition_ns <- b.transition_ns + ns
  else if
    account = "ipfs.crypto"
    || (String.length account >= 4 && String.sub account 0 4 = "mee.")
  then b.crypto_ns <- b.crypto_ns + ns
  else b.other_ns <- b.other_ns + ns

let breakdown_total b =
  b.transition_ns + b.exec_ns + b.pager_ns + b.epc_fault_ns + b.epc_evict_ns
  + b.crypto_ns + b.other_ns

(* How a request left the system. [Served] is the only outcome that
   counts toward goodput; the others are first-class records too, so
   every admitted rid appears exactly once in the request log and the
   loop's completion counter is total over outcomes. *)
type outcome =
  | Served
  | Shed  (* fast-failed at admission (queue depth / EPC pressure) *)
  | Timed_out  (* client deadline passed while queued or backing off *)
  | Failed  (* retry budget exhausted after enclave faults *)

let outcome_name = function
  | Served -> "served"
  | Shed -> "shed"
  | Timed_out -> "timeout"
  | Failed -> "failed"

type request = {
  rid : int;
  enclave : int;
  kind : string;
  arrival_ns : int;
  start_ns : int;
  mutable finish_ns : int;
  mutable outcome : outcome;
  mutable attempts : int;
      (* dispatches into a batch (0 for requests shed/expired unserved) *)
  mutable retry_wait_ns : int;  (* backoff delay scheduled before retries *)
  breakdown : breakdown;
  mutable interference : (int * int) list;
      (* evictor enclave -> cross-enclave refaults this request paid for,
         sorted by enclave id once the request completes *)
}

let latency_ns r = r.finish_ns - r.arrival_ns
let queue_ns r = r.start_ns - r.arrival_ns
let service_ns r = r.finish_ns - r.start_ns
let attributed_ns r = breakdown_total r.breakdown

type stats = {
  requests : int;
  enclaves : int;
  batch : int;
  elapsed_ns : int;  (* serving-phase virtual time (setup books dropped) *)
  idle_ns : int;
  throughput_rps : float;
  mean_ns : int;
  p50_ns : int;
  p99_ns : int;
  max_ns : int;
  batches : int;
  ecalls : int;
  ocalls : int;
  transitions_per_request : float;
  ecall_ns : int;  (* ledger [sgx.transition.ecall], serving phase *)
  epc_faults : int;
  epc_evictions : int;
  epc_limit_pages : int;
  epc_resident_pages : int;
  evictions_by_enclave : (int * int) list;
      (* (enclave id, times one of its pages was the victim) *)
  (* per-request attribution *)
  requests_log : request array;  (* indexed by rid *)
  attributed_ns : int;  (* sum over requests of their cycle slices *)
  unattributed_ns : int;  (* booked outside any batch: scheduler idle *)
  failover_ns : int;
      (* booked to the failure domain: wasted work of crashed batches
         plus the detect/teardown/relaunch/recover path *)
  attribution_residue_ns : int;
      (* booked - attributed - unattributed - failover: 0 *)
  (* failure-domain outcomes *)
  served : int;
  shed : int;
  timed_out : int;
  failed : int;
  retries : int;  (* requeues scheduled after failed batches *)
  failovers : int;  (* enclaves lost, destroyed, and relaunched *)
  recovery_p99_ns : int;  (* p99 failover duration (0 when no failover) *)
  goodput_rps : float;  (* served / elapsed *)
  availability_ppm : int;  (* served per million admitted *)
  cross_refaults : int;
  interference_by_evictor : (int * int) list;
  p99_exemplar_rids : int list;
  (* virtual-time sampler *)
  sampler_samples : int;
  queue_depth_hwm : int;
  queue_depth_hwm_by_enclave : (int * int) list;
  epc_resident_by_enclave : (int * int) list;
  (* streaming SLO plane *)
  retained : bool;  (* requests_log populated? false under --stream *)
  t0_ns : int;  (* serving-phase start: window 0 opens here *)
  window_ns : int;  (* effective tumbling-window period *)
  series : Twine_obs.Timeseries.t;
  windows : Twine_obs.Timeseries.window list;  (* fleet track, ascending *)
  sketch : Twine_obs.Sketch.t;  (* merge of per-window fleet sketches *)
  sketch_p50_ns : int;
  sketch_p99_ns : int;
  slo : (Twine_obs.Slo.spec * Twine_obs.Slo.eval) option;
  (* query-stats registry: per-enclave and fleet-merged; populated on
     the shared serving path, so identical in retained and --stream *)
  sqlstats_by_enclave : (int * Sqlstat.t) list;  (* eid ascending *)
  sqlstats_fleet : Sqlstat.t;
  ledger : Twine_obs.Ledger.snapshot;
  machine : Machine.t;
}

type worker = {
  rt : Twine.Runtime.t;
  db : Db.t;
  queue : (int * int * Workload.req) Queue.t;  (* (rid, arrival ns, request) *)
  pager_work : int ref;
  mutable depth_hwm : int;
  mutable live : int;
      (* live queued requests (the queue may also hold tombstoned
         entries for requests that timed out while waiting) *)
  eid : int;
  sqlstats : Sqlstat.t;  (* per-enclave query-stats registry *)
}

let sql_of_req = function
  | Workload.Kv_get k -> Printf.sprintf "SELECT v FROM kv WHERE k = %d" k
  | Workload.Sql_point k -> Printf.sprintf "SELECT b, c FROM t WHERE a = %d" k
  | Workload.Sql_range (lo, span) ->
      Printf.sprintf "SELECT count(*), sum(b) FROM t WHERE a >= %d AND a < %d"
        lo (lo + span)

let value_bytes = function
  | Value.Null -> 4
  | Value.Int _ | Value.Real _ -> 8
  | Value.Text s | Value.Blob s -> String.length s

let response_bytes (r : Db.result) =
  List.fold_left
    (fun acc row -> List.fold_left (fun a v -> a + value_bytes v) acc row)
    0 r.Db.rows

(* Exact percentile (nearest-rank) over the sorted latency array. *)
let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0
  else
    let rank = int_of_float (Float.ceil (q *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))

(* Request spans render on one Perfetto track per enclave. *)
let request_track eid = 100 + eid

(* [backing] is the slot's untrusted persistent store: it survives the
   enclave, so a replacement worker created with the same backing
   recovers the slot's durable database through the protected-file
   crash-recovery path (seal keys derive from the runtime measurement,
   not the enclave id, so the replacement unseals its predecessor's
   files). [sqlstats] lets a replacement continue its slot's registry. *)
let make_worker (cfg : config) machine ~backing ?sqlstats () =
  let config =
    {
      Twine.Runtime.default_config with
      Twine.Runtime.heap_bytes = 1024 * 1024;
      cache_nodes = 48;
    }
  in
  let rt = Twine.Runtime.create ~config ~backing machine in
  let e = Twine.Runtime.enclave rt in
  let vfs = Twine.Bench_db.pfs_svfs (Twine.Runtime.fs rt) in
  let hooks = Pager.default_hooks () in
  let pager_work = ref 0 in
  hooks.Pager.on_work <- (fun n -> pager_work := !pager_work + n);
  (* The page cache is enclave memory: every page buffer access is an
     EPC touch, so the fleet's aggregate hot set presses on the shared
     EPC — the contention this simulator exists to measure. *)
  let base = Enclave.reserve e (1 lsl 33) in
  hooks.Pager.on_access <-
    (fun page_no ->
      Enclave.touch e ~addr:(base + (page_no * Pager.page_size)) ~len:Pager.page_size);
  let db =
    Db.open_db ~vfs ~cache_pages:cfg.cache_pages ~hooks
      ~obs:machine.Machine.obs "serve.db"
  in
  { rt; db; queue = Queue.create (); pager_work; depth_hwm = 0; live = 0;
    eid = Enclave.id e;
    sqlstats = (match sqlstats with Some s -> s | None -> Sqlstat.create ()) }

let populate (cfg : config) w =
  ignore (Db.exec w.db "CREATE TABLE kv (k INTEGER PRIMARY KEY, v TEXT)");
  ignore (Db.exec w.db "CREATE TABLE t (a INTEGER PRIMARY KEY, b INTEGER, c TEXT)");
  let payload j = Printf.sprintf "%0*d" cfg.payload_bytes j in
  let chunk = 64 in
  let buf = Buffer.create 8192 in
  let insert table render =
    let i = ref 0 in
    while !i < cfg.rows do
      let hi = min cfg.rows (!i + chunk) in
      Buffer.clear buf;
      Buffer.add_string buf "INSERT INTO ";
      Buffer.add_string buf table;
      Buffer.add_string buf " VALUES ";
      for j = !i to hi - 1 do
        if j > !i then Buffer.add_char buf ',';
        Buffer.add_string buf (render j)
      done;
      ignore (Db.exec w.db (Buffer.contents buf));
      i := hi
    done
  in
  ignore (Db.exec w.db "BEGIN");
  insert "kv" (fun j -> Printf.sprintf "(%d,'%s')" j (payload j));
  insert "t" (fun j -> Printf.sprintf "(%d,%d,'%s')" j (j * 7) (payload j));
  ignore (Db.exec w.db "COMMIT")

(* Components of a request's latency: queue wait vs the cycle slices.
   The fixed order is load-bearing — {!dominant} breaks ties toward the
   earlier entry, so blame verdicts are deterministic — and the same
   names key the per-window breakdown sums in the SLO plane. *)
let components r =
  let retry = min r.retry_wait_ns (queue_ns r) in
  [ ("queue", queue_ns r - retry);
    ("retry", retry);
    ("transition", r.breakdown.transition_ns);
    ("exec", r.breakdown.exec_ns);
    ("pager", r.breakdown.pager_ns);
    ("epc.fault", r.breakdown.epc_fault_ns);
    ("epc.evict", r.breakdown.epc_evict_ns);
    ("crypto", r.breakdown.crypto_ns);
    ("other", r.breakdown.other_ns) ]

(* Scheduler-side state for an admitted, not-yet-completed request.
   Exists from admission to completion (any outcome), so the table is
   bounded by the backlog, not by n. *)
type rstate = {
  s_home : int;  (* home fleet slot (workload's enclave choice) *)
  mutable s_slot : int;  (* slot whose queue currently holds it *)
  mutable s_requeues : int;  (* retries consumed *)
  mutable s_retry_wait : int;  (* backoff delay scheduled so far *)
  mutable s_deadline : Twine_sim.Eventq.id option;
  mutable s_queued : bool;
      (* physically in a worker queue; false while dispatched in a batch
         or waiting out a backoff *)
  s_arrival : int;  (* arrival ns (for deadline-expiry records) *)
  s_req : Workload.req;
}

let bump_assoc l key d =
  let rec go = function
    | [] -> [ (key, d) ]
    | (k, v) :: rest when k = key -> (k, v + d) :: rest
    | kv :: rest -> kv :: go rest
  in
  go l

let run ?(prepare = fun (_ : Machine.t) -> ()) (cfg : config) =
  if cfg.enclaves <= 0 then invalid_arg "Serve.run: enclaves <= 0";
  if cfg.batch <= 0 then invalid_arg "Serve.run: batch <= 0";
  let window_ns =
    match cfg.slo with
    | Some s -> s.Twine_obs.Slo.window_ns
    | None -> cfg.window_ns
  in
  if window_ns <= 0 then invalid_arg "Serve.run: window_ns <= 0";
  let retain = cfg.retain_requests in
  let machine = Machine.create ~epc_bytes:cfg.epc_bytes ~seed:cfg.seed () in
  Twine.Bench_db.set_wasm_factor cfg.wasm_factor;
  (* One persistent backing per fleet slot: the untrusted store outlives
     any enclave serving the slot, so failover can relaunch into the
     same durable state. *)
  let backings =
    Array.init cfg.enclaves (fun _ -> Twine_ipfs.Backing.memory ())
  in
  let workers =
    Array.init cfg.enclaves (fun i ->
        make_worker cfg machine ~backing:backings.(i) ())
  in
  Array.iter (populate cfg) workers;
  (* Arrivals are pulled lazily from the workload stream in both modes
     (the generator never touches the machine, so laziness cannot move
     the virtual timeline): retained and streaming runs schedule the
     exact same events and replay byte-identical books. *)
  let next_arrival = Workload.stream ~seed:cfg.seed (shape_of cfg) in
  (* Setup (launch, population) is not the measurement: restart the
     books so the serving phase audits clean on its own. The EPC keeps
     its resident set — workers start warm, as a real fleet would. *)
  let ledger = Machine.ledger machine in
  let obs = Machine.obs machine in
  Twine_obs.Ledger.reset ledger;
  Twine_obs.Obs.reset obs;
  let epc = machine.Machine.epc in
  let evict0 =
    Array.map (fun w -> Epc.evictions_of epc w.eid) workers
  in
  let n = cfg.requests in
  (* -- per-request ledger slicing: the tap routes every booking -- *)
  let req_log : request option array =
    if retain then Array.make (max 1 n) None else [||]
  in
  let cur : request option ref = ref None in
  let in_batch = ref false in
  let in_failover = ref false in
  let overhead : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let outside = ref 0 in
  let failover_ns = ref 0 in
  (* attributed time accumulates as it is credited (tap + overhead
     shares): the streaming mode has no request log to fold at the end,
     and the retained mode gets the identical number this way *)
  let attributed = ref 0 in
  Twine_obs.Ledger.set_tap ledger
    (Some
       (fun account ns ->
         match !cur with
         | Some r ->
             credit r.breakdown account ns;
             attributed := !attributed + ns
         | None ->
             if !in_failover then failover_ns := !failover_ns + ns
             else if !in_batch then
               Hashtbl.replace overhead account
                 (ns + Option.value ~default:0 (Hashtbl.find_opt overhead account))
             else outside := !outside + ns));
  (* -- cross-enclave eviction provenance lands on the live request -- *)
  let interference_acc = ref [] in
  Epc.set_refault_hook epc
    (Some
       (fun ~owner:_ ~evictor ->
         match !cur with
         | Some r ->
             r.interference <- bump_assoc r.interference evictor 1;
             interference_acc := bump_assoc !interference_acc evictor 1
         | None -> ()));
  prepare machine;
  let t0 = Machine.now_ns machine in
  (* Arm the chaos schedule only now: setup (launch, population) is not
     under test, and spec windows are relative to the serving phase. *)
  (match cfg.chaos with
  | Some spec -> Machine.arm_faults machine (Twine_sim.Chaos.to_plan ~t0 spec)
  | None -> ());
  let q = Twine_sim.Eventq.create () in
  (* workload times are relative to the start of serving: rebase onto
     the machine clock (setup already consumed virtual time). The queue
     is fed lazily — [lookahead] holds the next not-yet-due arrival, and
     [refill] pushes everything due by [now] in rid order, so FIFO
     tie-breaks match the old materialise-everything-upfront schedule
     while the queue itself stays O(backlog). *)
  let lookahead = ref (next_arrival ()) in
  let refill now =
    let rec go () =
      match !lookahead with
      | Some a when t0 + a.Workload.at <= now ->
          Twine_sim.Eventq.add q ~at:(t0 + a.Workload.at)
            (a.Workload.rid, a.Workload.enclave, a.Workload.req);
          lookahead := next_arrival ();
          go ()
      | _ -> ()
    in
    go ()
  in
  let latencies = if retain then Array.make (max 1 n) 0 else [||] in
  let lat_sum = ref 0 in
  let lat_max = ref 0 in
  let completed = ref 0 in
  let pending = ref 0 in
  let batches = ref 0 in
  let rr = ref 0 in
  (* -- failure-domain state --
     [timers] carries client deadlines and retry requeues on the same
     virtual clock as arrivals; [rstate] tracks every admitted,
     not-yet-completed request (bounded by the backlog, so --stream
     memory stays flat). *)
  let timers :
      [ `Deadline of int | `Requeue of int * int * Workload.req ]
      Twine_sim.Eventq.t =
    Twine_sim.Eventq.create ()
  in
  let rstate : (int, rstate) Hashtbl.t = Hashtbl.create 64 in
  let jitter =
    Twine_crypto.Drbg.create ~personalization:"serve-backoff" ~seed:cfg.seed ()
  in
  let served_count = ref 0 in
  let shed_count = ref 0 in
  let timeout_count = ref 0 in
  let failed_count = ref 0 in
  let retry_count = ref 0 in
  let failover_count = ref 0 in
  let recovery_durations = ref [] in
  (* -- streaming SLO plane: tumbling windows on the virtual clock.
     One fleet track plus one per enclave; gauges are probed as each
     window closes (fleet: EPC activity deltas + total backlog;
     enclave: own backlog + residency). Closed windows keep reduced
     rows only, so the series is O(windows) regardless of n. -- *)
  let fleet_track = "fleet" in
  let track_of_eid = Printf.sprintf "e%d" in
  let worker_of_track =
    let tbl = Hashtbl.create cfg.enclaves in
    Array.iter (fun w -> Hashtbl.replace tbl (track_of_eid w.eid) w) workers;
    tbl
  in
  let probe =
    let last = Hashtbl.create 8 in
    fun ~track ->
      if track = fleet_track then begin
        let delta key =
          let v = Twine_obs.Obs.value obs key in
          let prev = Option.value ~default:0 (Hashtbl.find_opt last key) in
          Hashtbl.replace last key v;
          v - prev
        in
        [ ("completed", !completed);
          ("epc.fault", delta "epc.fault");
          ("epc.evict", delta "epc.evict");
          ("epc.refault.cross", delta "epc.refault.cross");
          ("queue_depth", Array.fold_left (fun a w -> a + w.live) 0 workers) ]
      end
      else
        match Hashtbl.find_opt worker_of_track track with
        | Some w ->
            [ ("queue_depth", w.live);
              ("epc.resident", Epc.resident_of epc w.eid) ]
        | None -> []
  in
  let on_close ~track (w : Twine_obs.Timeseries.window) =
    (* Perfetto counter tracks, one per series track, emitted live as
       each window closes (no-op without an attached recorder) *)
    Twine_obs.Obs.emit_counter obs ~cat:"slo" ("slo." ^ track)
      [ ("requests", w.Twine_obs.Timeseries.w_count);
        ("p50_ns", w.w_p50_ns);
        ("p99_ns", w.w_p99_ns);
        ("overs", w.w_overs) ]
  in
  let series =
    Twine_obs.Timeseries.create
      ?threshold_ns:(Option.map (fun s -> s.Twine_obs.Slo.threshold_ns) cfg.slo)
      ~probe ~on_close ~t0 ~window_ns ()
  in
  let work_ns work =
    int_of_float
      (Float.round (float_of_int work *. cfg.ns_per_work *. cfg.wasm_factor))
  in
  let charge_ns account ns = Machine.charge machine ~account "serve.sql" ns in
  let tracer = Twine_obs.Obs.tracer obs in
  (* Common completion path for every outcome: each admitted rid
     completes exactly once — cancel its deadline, drop its scheduler
     state, log the record, bump the loop counter. *)
  let finalize st r =
    (match st.s_deadline with
    | Some id -> Twine_sim.Eventq.cancel timers id
    | None -> ());
    Hashtbl.remove rstate r.rid;
    if retain then req_log.(r.rid) <- Some r;
    incr completed
  in
  let serve_one w e (rid, at, req) =
    let start = Machine.now_ns machine in
    let st = Hashtbl.find rstate rid in
    let r =
      {
        rid;
        enclave = w.eid;
        kind = Workload.req_name req;
        arrival_ns = at;
        start_ns = start;
        finish_ns = start;
        outcome = Served;
        attempts = st.s_requeues + 1;
        retry_wait_ns = st.s_retry_wait;
        breakdown = zero_breakdown ();
        interference = [];
      }
    in
    (match tracer with
    | Some tr when cfg.trace_requests ->
        Twine_obs.Trace.begin_span tr ~cat:"serve"
          ~args:[ ("tid", request_track w.eid); ("rid", rid) ]
          r.kind
    | _ -> ());
    cur := Some r;
    let sql = sql_of_req req in
    Enclave.copy_in e ~label:"serve.req" (String.length sql);
    Db.reset_work w.db;
    let pr0, pw0, _ = Pager.stats (Db.pager w.db) in
    let res = Db.exec w.db sql in
    let pr1, pw1, _ = Pager.stats (Db.pager w.db) in
    let work = Db.work w.db in
    let exec_ns = work_ns work in
    (* Per-operator attribution: the statement's exec booking is sliced
       across its operator tree (plus profiling overhead) in proportion
       to self-work. Slices sum exactly to [exec_ns] and land on the
       same account, so the ledger books are byte-identical to the
       single charge they replace. *)
    let shares =
      List.concat_map
        (fun (p : Db.profile) ->
          List.map (fun (o : Db.opstat) -> (o.Db.os_name, o.Db.os_work)) p.Db.pr_ops
          @ [ ("overhead", p.Db.pr_overhead_work) ])
        (Db.profiles w.db)
    in
    (match shares with
    | [] -> charge_ns "serve.exec" exec_ns
    | _ ->
        let slices = Db.slice_ns ~total_ns:exec_ns (List.map snd shares) in
        List.iter2
          (fun (name, _) ns ->
            if ns > 0 then begin
              (match tracer with
              | Some tr when cfg.trace_requests ->
                  Twine_obs.Trace.begin_span tr ~cat:"sqldb"
                    ~args:[ ("tid", request_track w.eid); ("rid", rid) ]
                    ("sql." ^ name)
              | _ -> ());
              charge_ns "serve.exec" ns;
              match tracer with
              | Some tr when cfg.trace_requests ->
                  Twine_obs.Trace.end_span tr ~cat:"sqldb"
                    ~args:[ ("tid", request_track w.eid) ]
                    ("sql." ^ name)
              | _ -> ()
            end)
          shares slices);
    let pager_units = !(w.pager_work) in
    let pager_ns = work_ns pager_units in
    if pager_units > 0 then begin
      charge_ns "serve.pager" pager_ns;
      w.pager_work := 0
    end;
    Enclave.copy_out e ~label:"serve.resp" (response_bytes res);
    cur := None;
    r.finish_ns <- Machine.now_ns machine;
    r.interference <- List.sort compare r.interference;
    (match tracer with
    | Some tr when cfg.trace_requests ->
        Twine_obs.Trace.end_span tr ~cat:"serve"
          ~args:[ ("tid", request_track w.eid) ]
          r.kind
    | _ -> ());
    let lat = latency_ns r in
    (* Query-stats registry: recorded on the shared serving path, so
       retained and --stream runs accumulate identical registries. *)
    Sqlstat.record w.sqlstats ~label:r.kind
      ~fingerprint:(Sqlstat.fingerprint sql)
      ~rows:(List.length res.Db.rows) ~work ~reads:(pr1 - pr0)
      ~writes:(pw1 - pw0) ~exec_ns ~pager_ns ~latency_ns:lat ();
    if retain then latencies.(!served_count) <- lat;
    lat_sum := !lat_sum + lat;
    if lat > !lat_max then lat_max := lat;
    incr served_count;
    finalize st r;
    Twine_obs.Obs.observe ~exemplar:rid obs "serve.latency_ns" lat;
    if cfg.trace_requests then
      Twine_obs.Obs.emit obs ~cat:"serve"
        ~args:[ ("rid", rid); ("enclave", w.eid); ("lat_ns", lat) ]
        "serve.req";
    r
  in
  (* Fast-fail completion (no service): shed at admission, client
     deadline expiry, or retry-budget exhaustion. The record is real —
     it lands in the log and the counters — but books nothing: any
     wasted work was already moved to the failover bucket. *)
  let fail_fast outcome ~eid ~attempts ~retry_wait st_opt rid at req =
    let now = Machine.now_ns machine in
    let r =
      {
        rid;
        enclave = eid;
        kind = Workload.req_name req;
        arrival_ns = at;
        start_ns = now;
        finish_ns = now;
        outcome;
        attempts;
        retry_wait_ns = retry_wait;
        breakdown = zero_breakdown ();
        interference = [];
      }
    in
    (match st_opt with
    | Some st -> finalize st r
    | None ->
        if retain then req_log.(rid) <- Some r;
        incr completed);
    (match outcome with
    | Shed ->
        incr shed_count;
        Twine_obs.Obs.inc obs "serve.shed"
    | Timed_out ->
        incr timeout_count;
        Twine_obs.Obs.inc obs "serve.timeout"
    | Failed ->
        incr failed_count;
        Twine_obs.Obs.inc obs "serve.failed"
    | Served -> ());
    if cfg.trace_requests then
      Twine_obs.Obs.emit obs ~cat:"serve"
        ~args:[ ("rid", rid); ("enclave", eid); ("lat_ns", latency_ns r) ]
        ("serve." ^ outcome_name outcome)
  in
  let enqueue slot item st =
    let w = workers.(slot) in
    Queue.add item w.queue;
    st.s_queued <- true;
    st.s_slot <- slot;
    w.live <- w.live + 1;
    if w.live > w.depth_hwm then w.depth_hwm <- w.live;
    incr pending
  in
  let least_loaded () =
    let best = ref 0 in
    Array.iteri
      (fun i w -> if w.live < workers.(!best).live then best := i)
      workers;
    !best
  in
  (* EPC-pressure shedding: cross-enclave refaults accumulated within
     the current tumbling window, so the trigger resets as the window
     turns — a rate, not a lifetime total. *)
  let refault_win = ref (-1) in
  let refault_base = ref 0 in
  let epc_pressure now =
    cfg.shed_refaults > 0
    && begin
         let wi = (now - t0) / window_ns in
         if wi <> !refault_win then begin
           refault_win := wi;
           refault_base := Epc.cross_refaults epc
         end;
         Epc.cross_refaults epc - !refault_base >= cfg.shed_refaults
       end
  in
  (* -- batch-failure handling: salvage, blame, requeue, relaunch -- *)
  let salvage_to_failover () =
    (* The partial slices of the request that was in flight when the
       fault hit, plus the batch's accumulated overhead, are wasted
       work: move them to the failover bucket so the conservation law
       stays exact and the failure domain owns its own cost. *)
    (match !cur with
    | Some r ->
        let t = breakdown_total r.breakdown in
        attributed := !attributed - t;
        failover_ns := !failover_ns + t;
        cur := None
    | None -> ());
    let oh = Hashtbl.fold (fun _ ns acc -> acc + ns) overhead 0 in
    failover_ns := !failover_ns + oh;
    Hashtbl.reset overhead
  in
  let requeue_unfinished ~eid batch served =
    let done_rids = List.map (fun r -> r.rid) served in
    List.iter
      (fun (rid, at, req) ->
        if not (List.mem rid done_rids) then
          match Hashtbl.find_opt rstate rid with
          | None -> ()
          | Some st ->
              if st.s_requeues >= cfg.retries then
                fail_fast Failed ~eid ~attempts:(st.s_requeues + 1)
                  ~retry_wait:st.s_retry_wait (Some st) rid at req
              else begin
                st.s_requeues <- st.s_requeues + 1;
                incr retry_count;
                Twine_obs.Obs.inc obs "serve.retry";
                let backoff =
                  if cfg.backoff_ns <= 0 then 0
                  else begin
                    (* capped exponential with deterministic DRBG jitter
                       (up to +25%), identical across replays and modes *)
                    let exp = min 20 (st.s_requeues - 1) in
                    let b =
                      min cfg.backoff_cap_ns (cfg.backoff_ns * (1 lsl exp))
                    in
                    let j =
                      if b >= 4 then Twine_crypto.Drbg.int_below jitter (b / 4)
                      else 0
                    in
                    b + j
                  end
                in
                st.s_retry_wait <- st.s_retry_wait + backoff;
                ignore
                  (Twine_sim.Eventq.schedule timers
                     ~at:(Machine.now_ns machine + backoff)
                     (`Requeue (rid, at, req)))
              end)
      batch
  in
  let handle_batch_failure slot w batch served err =
    salvage_to_failover ();
    in_failover := true;
    (match err with
    | `Transient _ ->
        (* recoverable entry failure: the enclave is healthy, only the
           batch is lost — detect and requeue *)
        Machine.charge machine ~account:"serve.failover.detect"
          "serve.failover" failover_detect_ns
    | `Lost _ ->
        incr failover_count;
        Twine_obs.Obs.inc obs "serve.failover";
        let fo_start = Machine.now_ns machine in
        Machine.charge machine ~account:"serve.failover.detect"
          "serve.failover" failover_detect_ns;
        let resident = Epc.resident_of epc w.eid in
        Machine.charge machine ~account:"serve.failover.teardown"
          "serve.failover"
          (failover_teardown_base_ns + (resident * failover_teardown_page_ns));
        (* EREMOVE the poisoned enclave: releases its EPC pages and
           purges its eviction provenance. Its Db handle dies with it —
           the durable truth lives in the slot's backing. *)
        Twine.Runtime.destroy w.rt;
        Machine.charge machine ~account:"serve.failover.relaunch"
          "serve.failover" failover_relaunch_ns;
        let neww =
          make_worker cfg machine ~backing:backings.(slot)
            ~sqlstats:w.sqlstats ()
        in
        Machine.charge machine ~account:"serve.failover.recover"
          "serve.failover" failover_recover_ns;
        (* arrivals queued behind the crash migrate to the replacement;
           the depth high-water mark is a slot-level statistic *)
        Queue.transfer w.queue neww.queue;
        neww.live <- w.live;
        neww.depth_hwm <- w.depth_hwm;
        workers.(slot) <- neww;
        evict0.(slot) <- Epc.evictions_of epc neww.eid;
        Hashtbl.remove worker_of_track (track_of_eid w.eid);
        Hashtbl.replace worker_of_track (track_of_eid neww.eid) neww;
        let dur = Machine.now_ns machine - fo_start in
        recovery_durations := dur :: !recovery_durations;
        Twine_obs.Obs.observe obs "serve.failover_ns" dur);
    in_failover := false;
    requeue_unfinished ~eid:w.eid batch served
  in
  let drain () =
    let now = Machine.now_ns machine in
    refill now;
    Twine_sim.Eventq.drain_until q ~now
      (fun ~at (rid, enc, req) ->
        (* admission control: shed before spending anything on it *)
        if
          (cfg.shed_depth > 0 && workers.(enc).live >= cfg.shed_depth)
          || epc_pressure now
        then
          fail_fast Shed ~eid:workers.(enc).eid ~attempts:0 ~retry_wait:0
            None rid at req
        else begin
          let st =
            {
              s_home = enc;
              s_slot = enc;
              s_requeues = 0;
              s_retry_wait = 0;
              s_deadline = None;
              s_queued = false;
              s_arrival = at;
              s_req = req;
            }
          in
          Hashtbl.replace rstate rid st;
          if cfg.deadline_ns > 0 then
            st.s_deadline <-
              Some
                (Twine_sim.Eventq.schedule timers ~at:(at + cfg.deadline_ns)
                   (`Deadline rid));
          enqueue enc (rid, at, req) st
        end);
    Twine_sim.Eventq.drain_until timers ~now (fun ~at:_ ev ->
        match ev with
        | `Deadline rid -> (
            match Hashtbl.find_opt rstate rid with
            | None -> ()  (* completed; cancellation is belt-and-braces *)
            | Some st ->
                (* the client gave up: while queued (tombstone the
                   entry) or while waiting out a retry backoff *)
                if st.s_queued then begin
                  let w = workers.(st.s_slot) in
                  w.live <- w.live - 1;
                  decr pending;
                  st.s_queued <- false
                end;
                fail_fast Timed_out ~eid:workers.(st.s_slot).eid
                  ~attempts:st.s_requeues ~retry_wait:st.s_retry_wait
                  (Some st) rid st.s_arrival st.s_req)
        | `Requeue (rid, at, req) -> (
            match Hashtbl.find_opt rstate rid with
            | None -> ()  (* timed out while backing off *)
            | Some st ->
                let slot = if cfg.hedge then least_loaded () else st.s_home in
                enqueue slot (rid, at, req) st))
  in
  (* -- virtual-time metrics sampler: per-enclave counter time-series
     (sample-and-hold: one sample per crossed boundary batch) -- *)
  let samples = ref 0 in
  let next_sample = ref (t0 + cfg.sample_every_ns) in
  let maybe_sample () =
    if cfg.sample_every_ns > 0 then begin
      let now = Machine.now_ns machine in
      if now >= !next_sample then begin
        incr samples;
        (match tracer with
        | Some _ ->
            let per f = Array.to_list (Array.map f workers) in
            Twine_obs.Obs.emit_counter obs ~cat:"serve" "serve.queue_depth"
              (per (fun w -> (Printf.sprintf "e%d" w.eid, w.live)));
            Twine_obs.Obs.emit_counter obs ~cat:"serve" "serve.epc_resident"
              (per (fun w ->
                   (Printf.sprintf "e%d" w.eid, Epc.resident_of epc w.eid)));
            Twine_obs.Obs.emit_counter obs ~cat:"serve" "serve.completed"
              [ ("requests", !completed) ]
        | None -> ());
        let period = cfg.sample_every_ns in
        next_sample := now - ((now - t0) mod period) + period
      end
    end
  in
  (* fold completed requests into the windowed series only once their
     breakdowns are final (after any overhead shares landed) *)
  let fold_served served =
    List.iter
      (fun r ->
        let comps = components r in
        let lat = latency_ns r in
        Twine_obs.Timeseries.record series ~now:r.finish_ns ~track:fleet_track
          ~latency_ns:lat ~comps ();
        Twine_obs.Timeseries.record series ~now:r.finish_ns
          ~track:(track_of_eid r.enclave) ~latency_ns:lat ~comps ())
      served
  in
  (* pop up to [nleft] LIVE entries, skipping tombstones of requests
     that timed out while queued *)
  let rec take_batch w nleft acc =
    if nleft = 0 || w.live = 0 then List.rev acc
    else
      let ((rid, _, _) as item) = Queue.pop w.queue in
      match Hashtbl.find_opt rstate rid with
      | Some st when st.s_queued ->
          st.s_queued <- false;
          w.live <- w.live - 1;
          take_batch w (nleft - 1) (item :: acc)
      | _ -> take_batch w nleft acc
  in
  while !completed < n do
    drain ();
    maybe_sample ();
    if !pending = 0 then begin
      (* nothing runnable: the simulated core sleeps until the next
         event — booked, so the audit still balances to elapsed time.
         The next event is an arrival (queued or the stream's
         lookahead), a client deadline, or a retry requeue. *)
      let earliest a b =
        match (a, b) with
        | None, x | x, None -> x
        | Some x, Some y -> Some (min x y)
      in
      let next_at =
        earliest
          (Twine_sim.Eventq.peek_time q)
          (earliest
             (Option.map (fun a -> t0 + a.Workload.at) !lookahead)
             (Twine_sim.Eventq.peek_time timers))
      in
      match next_at with
      | Some t ->
          let dt = t - Machine.now_ns machine in
          Machine.charge machine ~account:"serve.idle" "serve.idle" dt
      | None -> assert false (* completed < n implies events remain *)
    end
    else begin
      let k = cfg.enclaves in
      let rec find i tries =
        if tries = 0 then None
        else if workers.(i mod k).live = 0 then find (i + 1) (tries - 1)
        else Some (i mod k)
      in
      match find !rr k with
      | None -> assert false (* pending > 0 implies a live queue *)
      | Some i ->
          rr := (i + 1) mod k;
          let w = workers.(i) in
          let batch = take_batch w cfg.batch [] in
          pending := !pending - List.length batch;
          incr batches;
          Twine_obs.Obs.observe obs "serve.batch_fill" (List.length batch);
          let batch_ctx =
            if cfg.trace_requests then
              match (batch, List.rev batch) with
              | (first, _, _) :: _, (last, _, _) :: _ ->
                  Some
                    [ ("enclave", w.eid); ("size", List.length batch);
                      ("rid_first", first); ("rid_last", last) ]
              | _ -> None
            else None
          in
          in_batch := true;
          let done_rev = ref [] in
          let result =
            Twine.Runtime.serve_safe w.rt ?batch:batch_ctx (fun e ->
                List.iter
                  (fun item -> done_rev := serve_one w e item :: !done_rev)
                  batch)
          in
          in_batch := false;
          let served = List.rev !done_rev in
          (match result with
          | Ok () ->
              (* The batch's entry/exit crossings (and any other booking
                 not inside a single request) are shared overhead: split
                 each account evenly over the batch, remainder to the
                 first request, so the split is exact in integers. *)
              let k_served = List.length served in
              if k_served > 0 then
                Hashtbl.iter
                  (fun account ns ->
                    let per = ns / k_served and rem = ns mod k_served in
                    List.iteri
                      (fun j r ->
                        let share = per + if j = 0 then rem else 0 in
                        credit r.breakdown account share;
                        attributed := !attributed + share)
                      served)
                  overhead;
              Hashtbl.reset overhead
          | Error err ->
              (* requests that completed before the fault keep their
                 slices (no overhead share: the batch overhead is
                 failure-domain cost now); the rest retry or fail *)
              handle_batch_failure i w batch served err);
          fold_served served
    end
  done;
  Twine_obs.Ledger.set_tap ledger None;
  Epc.set_refault_hook epc None;
  Machine.disarm_faults ();
  let final_now = Machine.now_ns machine in
  let elapsed_ns = final_now - t0 in
  (* close the series through the window holding the last completion
     (now + 1 so a completion landing exactly on a boundary closes) *)
  Twine_obs.Timeseries.finish series ~now:(final_now + 1);
  let windows = Twine_obs.Timeseries.windows series ~track:fleet_track in
  let sketch =
    match Twine_obs.Timeseries.sketch series ~track:fleet_track with
    | Some s -> s
    | None -> Twine_obs.Sketch.create ()
  in
  let sq p = Option.value (Twine_obs.Sketch.quantile sketch p) ~default:0 in
  let sketch_p50_ns = sq 0.5 in
  let sketch_p99_ns = sq 0.99 in
  let slo_eval =
    Option.map (fun spec -> (spec, Twine_obs.Slo.evaluate spec windows)) cfg.slo
  in
  let sorted = Array.sub latencies 0 (if retain then !served_count else 0) in
  Array.sort compare sorted;
  let recovery_sorted =
    let a = Array.of_list !recovery_durations in
    Array.sort compare a;
    a
  in
  let ecalls = Twine_obs.Obs.value obs "sgx.ecall" in
  let ocalls = Twine_obs.Obs.value obs "sgx.ocall" in
  let requests_log =
    if retain then
      Array.map
        (function
          | Some r -> r
          | None -> invalid_arg "Serve.run: request never served")
        (if n = 0 then [||] else req_log)
    else [||]
  in
  let booked = (Twine_obs.Ledger.audit ledger).Twine_obs.Ledger.booked_ns in
  let interference_by_evictor = List.sort compare !interference_acc in
  let p99_exemplar_rids =
    match Twine_obs.Obs.quantile_exemplars obs "serve.latency_ns" 0.99 with
    | Some (_, rids) -> rids
    | None -> []
  in
  let stats =
    {
      requests = n;
      enclaves = cfg.enclaves;
      batch = cfg.batch;
      elapsed_ns;
      idle_ns = Twine_obs.Ledger.ns ledger "serve.idle";
      throughput_rps =
        (if elapsed_ns = 0 then 0.
         else float_of_int n /. (float_of_int elapsed_ns /. 1e9));
      mean_ns = (if !served_count = 0 then 0 else !lat_sum / !served_count);
      (* retained mode: exact nearest-rank percentiles; streaming mode:
         the sketch estimates (within Sketch.alpha), since no latency
         array exists to sort *)
      p50_ns = (if retain then percentile sorted 0.50 else sketch_p50_ns);
      p99_ns = (if retain then percentile sorted 0.99 else sketch_p99_ns);
      max_ns = !lat_max;
      batches = !batches;
      ecalls;
      ocalls;
      transitions_per_request =
        (if n = 0 then 0. else float_of_int (2 * (ecalls + ocalls)) /. float_of_int n);
      ecall_ns = Twine_obs.Ledger.ns ledger "sgx.transition.ecall";
      epc_faults = Twine_obs.Obs.value obs "epc.fault";
      epc_evictions = Twine_obs.Obs.value obs "epc.evict";
      epc_limit_pages = Epc.limit_pages epc;
      epc_resident_pages = Epc.resident_pages epc;
      evictions_by_enclave =
        Array.to_list
          (Array.mapi
             (fun i w -> (w.eid, Epc.evictions_of epc w.eid - evict0.(i)))
             workers);
      requests_log;
      attributed_ns = !attributed;
      unattributed_ns = !outside;
      failover_ns = !failover_ns;
      attribution_residue_ns = booked - !attributed - !outside - !failover_ns;
      served = !served_count;
      shed = !shed_count;
      timed_out = !timeout_count;
      failed = !failed_count;
      retries = !retry_count;
      failovers = !failover_count;
      recovery_p99_ns = percentile recovery_sorted 0.99;
      goodput_rps =
        (if elapsed_ns = 0 then 0.
         else float_of_int !served_count /. (float_of_int elapsed_ns /. 1e9));
      availability_ppm =
        (if n = 0 then 1_000_000 else !served_count * 1_000_000 / n);
      cross_refaults = Twine_obs.Obs.value obs "epc.refault.cross";
      interference_by_evictor;
      p99_exemplar_rids;
      sampler_samples = !samples;
      queue_depth_hwm =
        Array.fold_left (fun a w -> max a w.depth_hwm) 0 workers;
      queue_depth_hwm_by_enclave =
        Array.to_list (Array.map (fun w -> (w.eid, w.depth_hwm)) workers);
      epc_resident_by_enclave =
        Array.to_list (Array.map (fun w -> (w.eid, Epc.resident_of epc w.eid)) workers);
      retained = retain;
      t0_ns = t0;
      window_ns;
      series;
      windows;
      sketch;
      sketch_p50_ns;
      sketch_p99_ns;
      slo = slo_eval;
      sqlstats_by_enclave =
        List.sort
          (fun (a, _) (b, _) -> compare a b)
          (Array.to_list (Array.map (fun w -> (w.eid, w.sqlstats)) workers));
      sqlstats_fleet =
        Array.fold_left
          (fun acc w -> Sqlstat.merge acc w.sqlstats)
          (Sqlstat.create ()) workers;
      ledger = Twine_obs.Ledger.snapshot ledger;
      machine;
    }
  in
  Array.iter (fun w -> Db.close w.db) workers;
  stats

(* Thread-name metadata for {!Twine_obs.Trace_export}: one request
   track per enclave, in enclave-id order. *)
let threads (s : stats) =
  List.map
    (fun (eid, _) -> (request_track eid, Printf.sprintf "enclave %d requests" eid))
    s.evictions_by_enclave

(* --- tail-latency blame --- *)

let dominant r =
  List.fold_left
    (fun (bn, bv) (n, v) -> if v > bv then (n, v) else (bn, bv))
    ("queue", min_int) (components r)

type blame = { b_request : request; b_dominant : string; b_dominant_ns : int }

let by_latency_desc a b =
  match compare (latency_ns b) (latency_ns a) with
  | 0 -> compare a.rid b.rid
  | c -> c

(* Per-request views need the request log; a streaming run dropped it
   by design. Raise a clear error the CLI maps to exit 2. *)
let require_retained what (s : stats) =
  if not s.retained then
    invalid_arg
      (Printf.sprintf
         "Serve.%s: per-request retention is off (--stream); re-run without \
          --stream for per-request views"
         what)

let blame ?(top = 10) (s : stats) =
  require_retained "blame" s;
  let reqs = Array.copy s.requests_log in
  Array.sort by_latency_desc reqs;
  Array.to_list (Array.sub reqs 0 (min top (Array.length reqs)))
  |> List.map (fun r ->
         let d, v = dominant r in
         { b_request = r; b_dominant = d; b_dominant_ns = v })

(* Dominant-account census over the p99 tail (the slowest 1%, at least
   one request): the aggregate answer to "why is p99 what it is". *)
let blame_summary (s : stats) =
  require_retained "blame_summary" s;
  let n = Array.length s.requests_log in
  if n = 0 then []
  else begin
    let reqs = Array.copy s.requests_log in
    Array.sort by_latency_desc reqs;
    let k = max 1 (n / 100) in
    let counts = ref [] in
    for i = 0 to k - 1 do
      let d, _ = dominant reqs.(i) in
      counts := bump_assoc !counts d 1
    done;
    List.sort
      (fun (an, av) (bn, bv) ->
        match compare bv av with 0 -> compare an bn | c -> c)
      !counts
  end

let render_interference l =
  if l = [] then "-"
  else String.concat "," (List.map (fun (e, c) -> Printf.sprintf "e%d:%d" e c) l)

let render_blame ?(top = 10) (s : stats) =
  require_retained "render_blame" s;
  let b = Buffer.create 1024 in
  let f fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  f "-- serve blame: top %d of %d requests by latency --\n"
    (min top (Array.length s.requests_log))
    (Array.length s.requests_log);
  f "%5s %8s %4s %-9s %12s %12s %12s %-10s %s\n" "rank" "rid" "enc" "kind"
    "lat(ns)" "queue(ns)" "service(ns)" "dominant" "interference";
  List.iteri
    (fun i { b_request = r; b_dominant = d; b_dominant_ns = v } ->
      f "%5d %8d %4d %-9s %12d %12d %12d %-10s %s\n" (i + 1) r.rid r.enclave
        r.kind (latency_ns r) (queue_ns r) (service_ns r)
        (Printf.sprintf "%s:%d" d v)
        (render_interference r.interference))
    (blame ~top s);
  f "p99 tail dominants:";
  List.iter (fun (name, c) -> f " %s=%d" name c) (blame_summary s);
  f "\n";
  f "p99 exemplar rids:";
  List.iter (fun rid -> f " %d" rid) s.p99_exemplar_rids;
  f "\n";
  f
    "attribution: booked %d ns = requests %d ns + idle %d ns + failover %d ns \
     + residue %d ns%s\n"
    (s.attributed_ns + s.unattributed_ns + s.failover_ns
   + s.attribution_residue_ns)
    s.attributed_ns s.unattributed_ns s.failover_ns s.attribution_residue_ns
    (if s.attribution_residue_ns = 0 then " (slices conserve)"
     else " (UNATTRIBUTED TIME)");
  f "cross-enclave refaults: %d" s.cross_refaults;
  List.iter
    (fun (e, c) -> f " by-e%d=%d" e c)
    s.interference_by_evictor;
  f "\n";
  Buffer.contents b

(* --- canonical request-trace text (byte-identical across replays) --- *)

let request_trace_schema = "twine-request-trace/v2"

let render_requests (s : stats) =
  require_retained "render_requests" s;
  let b = Buffer.create 4096 in
  let f fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  f "# %s\n" request_trace_schema;
  f "# rid enclave kind outcome attempts arrival start finish queue retry \
     transition exec pager epc_fault epc_evict crypto other interference\n";
  Array.iter
    (fun r ->
      f "%d %d %s %s %d %d %d %d %d %d %d %d %d %d %d %d %d %s\n" r.rid
        r.enclave r.kind (outcome_name r.outcome) r.attempts r.arrival_ns
        r.start_ns r.finish_ns (queue_ns r) r.retry_wait_ns
        r.breakdown.transition_ns r.breakdown.exec_ns r.breakdown.pager_ns
        r.breakdown.epc_fault_ns r.breakdown.epc_evict_ns
        r.breakdown.crypto_ns r.breakdown.other_ns
        (render_interference r.interference))
    s.requests_log;
  Buffer.contents b

let render (s : stats) =
  let b = Buffer.create 512 in
  let f fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  f "serve: %d requests over %d enclaves (batch <= %d)\n" s.requests s.enclaves
    s.batch;
  f "  elapsed          %d ns (idle %d ns)\n" s.elapsed_ns s.idle_ns;
  f "  throughput       %.0f req/s\n" s.throughput_rps;
  f "  latency          p50 %d ns  p99 %d ns  mean %d ns  max %d ns\n" s.p50_ns
    s.p99_ns s.mean_ns s.max_ns;
  f "  batches          %d (%.2f req/batch)\n" s.batches
    (if s.batches = 0 then 0. else float_of_int s.requests /. float_of_int s.batches);
  f "  transitions      %d ecalls, %d ocalls (%.3f one-way/req)\n" s.ecalls
    s.ocalls s.transitions_per_request;
  f "  ecall cycles     %d ns booked to sgx.transition.ecall\n" s.ecall_ns;
  f "  epc              %d/%d pages resident, %d faults, %d evictions\n"
    s.epc_resident_pages s.epc_limit_pages s.epc_faults s.epc_evictions;
  f "  evictions by enclave:";
  List.iter (fun (id, v) -> f " e%d=%d" id v) s.evictions_by_enclave;
  f "\n";
  f
    "  attribution      %d requests: %d ns sliced + %d ns idle + %d ns \
     failover, residue %d ns\n"
    s.requests s.attributed_ns s.unattributed_ns s.failover_ns
    s.attribution_residue_ns;
  f "  outcomes         %d served, %d shed, %d timed out, %d failed\n" s.served
    s.shed s.timed_out s.failed;
  f "  resilience       %d retries, %d failovers (recovery p99 %d ns)\n"
    s.retries s.failovers s.recovery_p99_ns;
  f "  goodput          %.0f req/s (availability %d.%04d%%)\n" s.goodput_rps
    (s.availability_ppm / 10_000)
    (s.availability_ppm mod 10_000);
  f "  interference     %d cross-enclave refaults\n" s.cross_refaults;
  f "  sampler          %d samples, queue depth high-water %d\n"
    s.sampler_samples s.queue_depth_hwm;
  f "  windows          %d x %d ns, sketch p50 %d ns p99 %d ns%s\n"
    (List.length s.windows) s.window_ns s.sketch_p50_ns s.sketch_p99_ns
    (if s.retained then "" else " (streaming: no per-request log)");
  (match s.slo with
  | None -> ()
  | Some (spec, ev) ->
      f "  slo              %s: %s (burn %d.%03dx, %d/%d over, %d violating \
         windows, %d fast / %d slow alerts)\n"
        (Twine_obs.Slo.render spec)
        (if ev.Twine_obs.Slo.ev_violated then "VIOLATED" else "met")
        (ev.Twine_obs.Slo.ev_burn_x1000 / 1000)
        (ev.Twine_obs.Slo.ev_burn_x1000 mod 1000)
        ev.Twine_obs.Slo.ev_overs ev.Twine_obs.Slo.ev_total
        (List.length ev.Twine_obs.Slo.ev_violations)
        (List.length
           (List.filter
              (fun a -> a.Twine_obs.Slo.al_kind = `Fast)
              ev.Twine_obs.Slo.ev_alerts))
        (List.length
           (List.filter
              (fun a -> a.Twine_obs.Slo.al_kind = `Slow)
              ev.Twine_obs.Slo.ev_alerts));
      match ev.Twine_obs.Slo.ev_first_slow_ns with
      | Some t -> f "  slow-burn onset  %d ns into the run\n" (t - s.t0_ns)
      | None -> ());
  Buffer.contents b

(* --- canonical windowed-series artifact (byte-identical across modes) --- *)

let slo_schema = "twine-slo/v1"

(* Everything in the artifact is mode-independent — windows, sketch,
   spec and verdict are identical whether the run retained its request
   log or streamed — so retained-vs-stream byte equality is a CI-
   checkable invariant, and same (seed, config) replays are too. *)
let render_slo (s : stats) =
  let num i = Twine_obs.Json.Num (float_of_int i) in
  let assoc kvs = Twine_obs.Json.Obj (List.map (fun (k, v) -> (k, num v)) kvs) in
  let window (w : Twine_obs.Timeseries.window) =
    Twine_obs.Json.Obj
      [
        ("index", num w.Twine_obs.Timeseries.w_index);
        ("start_ns", num w.w_start_ns);
        ("end_ns", num w.w_end_ns);
        ("count", num w.w_count);
        ("sum_ns", num w.w_sum_ns);
        ("max_ns", num w.w_max_ns);
        ("p50_ns", num w.w_p50_ns);
        ("p99_ns", num w.w_p99_ns);
        ("overs", num w.w_overs);
        ("comps", assoc w.w_comps);
        ("gauges", assoc w.w_gauges);
      ]
  in
  (* fleet first, then the enclave tracks in enclave-id order *)
  let track_names =
    "fleet"
    :: List.map
         (fun (eid, _) -> Printf.sprintf "e%d" eid)
         s.epc_resident_by_enclave
  in
  let track name =
    Twine_obs.Json.Obj
      [
        ("track", Str name);
        ( "windows",
          Arr (List.map window (Twine_obs.Timeseries.windows s.series ~track:name))
        );
      ]
  in
  Twine_obs.Json.to_string
    (Twine_obs.Json.Obj
       [
         ("schema", Str slo_schema);
         ("t0_ns", num s.t0_ns);
         ("window_ns", num s.window_ns);
         ("requests", num s.requests);
         ( "spec",
           match s.slo with
           | Some (spec, _) -> Twine_obs.Slo.spec_to_json spec
           | None -> Null );
         ( "eval",
           match s.slo with
           | Some (_, ev) -> Twine_obs.Slo.eval_to_json ev
           | None -> Null );
         ("sketch", Twine_obs.Sketch.to_json s.sketch);
         ("tracks", Arr (List.map track track_names));
       ])

let sqlstats_schema = "twine-sqlstats/v1"

(* The query-stats artifact is accumulated on the shared serving path
   (both retained and --stream runs execute the same serve_one), so for
   a fixed (seed, config) the rendered JSON is byte-identical across
   modes — checked with [cmp] in CI. Fleet first, then per-enclave
   registries in enclave-id order. *)
let render_sqlstats (s : stats) =
  let num i = Twine_obs.Json.Num (float_of_int i) in
  Twine_obs.Json.to_string
    (Twine_obs.Json.Obj
       [
         ("schema", Str sqlstats_schema);
         ("requests", num s.requests);
         ("enclaves", num s.enclaves);
         ("fleet", Sqlstat.to_json s.sqlstats_fleet);
         ( "by_enclave",
           Arr
             (List.map
                (fun (eid, reg) ->
                  Twine_obs.Json.Obj
                    [ ("enclave", num eid); ("stats", Sqlstat.to_json reg) ])
                s.sqlstats_by_enclave) );
       ])
