(* Deterministic multi-enclave serving simulator.

   A fleet of TWINE runtimes shares ONE simulated machine — one virtual
   clock, one EPC, one ledger — so the fleet contends for the Enclave
   Page Cache exactly as co-located enclaves do on real hardware
   (paper §III-A/V-D). The scheduler is run-to-completion on the single
   simulated core: it round-robins over per-enclave FIFO queues, lifts
   up to [batch] queued requests behind a single ECALL
   ({!Twine.Runtime.serve}), and advances the clock only through
   [Machine.charge] — so the conservation audit covers the serving phase
   and a (seed, config) pair replays to a byte-identical ledger.

   Batching is the measurement the paper's §V transition costs motivate:
   an enclave crossing costs ~13,100 cycles each way, so N coalesced
   requests pay 2 crossings instead of 2N. Protected-FS work triggered
   inside the batch nests for free (nested ECALLs charge nothing), which
   is what makes the amortisation visible in [sgx.transition.ecall]. *)

open Twine_sgx
open Twine_sqldb

type config = {
  enclaves : int;
  requests : int;
  batch : int;  (* max requests coalesced behind one ECALL; 1 = unbatched *)
  seed : string;
  mean_gap_ns : int;
  rows : int;
  span : int;
  payload_bytes : int;
  cache_pages : int;
  epc_bytes : int;
  mix : Workload.mix;
  wasm_factor : float;
      (* pinned, never wall-clock calibrated: reproducibility first *)
  ns_per_work : float;
  trace_requests : bool;
}

let default_config =
  {
    enclaves = 8;
    requests = 100_000;
    batch = 16;
    seed = "twine-serve";
    mean_gap_ns = 5_000;
    rows = 512;
    span = 16;
    payload_bytes = 96;
    cache_pages = 256;
    epc_bytes = 768 * 4096;
    mix = Workload.default_mix;
    wasm_factor = 2.5;
    ns_per_work = 60.;
    trace_requests = true;
  }

let shape_of (c : config) : Workload.shape =
  {
    Workload.enclaves = c.enclaves;
    requests = c.requests;
    mean_gap_ns = c.mean_gap_ns;
    rows = c.rows;
    span = c.span;
    mix = c.mix;
  }

type stats = {
  requests : int;
  enclaves : int;
  batch : int;
  elapsed_ns : int;  (* serving-phase virtual time (setup books dropped) *)
  idle_ns : int;
  throughput_rps : float;
  mean_ns : int;
  p50_ns : int;
  p99_ns : int;
  max_ns : int;
  batches : int;
  ecalls : int;
  ocalls : int;
  transitions_per_request : float;
  ecall_ns : int;  (* ledger [sgx.transition.ecall], serving phase *)
  epc_faults : int;
  epc_evictions : int;
  epc_limit_pages : int;
  epc_resident_pages : int;
  evictions_by_enclave : (int * int) list;
      (* (enclave id, times one of its pages was the victim) *)
  ledger : Twine_obs.Ledger.snapshot;
  machine : Machine.t;
}

type worker = {
  rt : Twine.Runtime.t;
  db : Db.t;
  queue : (int * Workload.req) Queue.t;  (* (arrival ns, request) *)
  pager_work : int ref;
  eid : int;
}

let sql_of_req = function
  | Workload.Kv_get k -> Printf.sprintf "SELECT v FROM kv WHERE k = %d" k
  | Workload.Sql_point k -> Printf.sprintf "SELECT b, c FROM t WHERE a = %d" k
  | Workload.Sql_range (lo, span) ->
      Printf.sprintf "SELECT count(*), sum(b) FROM t WHERE a >= %d AND a < %d"
        lo (lo + span)

let value_bytes = function
  | Value.Null -> 4
  | Value.Int _ | Value.Real _ -> 8
  | Value.Text s | Value.Blob s -> String.length s

let response_bytes (r : Db.result) =
  List.fold_left
    (fun acc row -> List.fold_left (fun a v -> a + value_bytes v) acc row)
    0 r.Db.rows

(* Exact percentile (nearest-rank) over the sorted latency array. *)
let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0
  else
    let rank = int_of_float (Float.ceil (q *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))

let make_worker (cfg : config) machine =
  let config =
    {
      Twine.Runtime.default_config with
      Twine.Runtime.heap_bytes = 1024 * 1024;
      cache_nodes = 48;
    }
  in
  let rt =
    Twine.Runtime.create ~config ~backing:(Twine_ipfs.Backing.memory ()) machine
  in
  let e = Twine.Runtime.enclave rt in
  let vfs = Twine.Bench_db.pfs_svfs (Twine.Runtime.fs rt) in
  let hooks = Pager.default_hooks () in
  let pager_work = ref 0 in
  hooks.Pager.on_work <- (fun n -> pager_work := !pager_work + n);
  (* The page cache is enclave memory: every page buffer access is an
     EPC touch, so the fleet's aggregate hot set presses on the shared
     EPC — the contention this simulator exists to measure. *)
  let base = Enclave.reserve e (1 lsl 33) in
  hooks.Pager.on_access <-
    (fun page_no ->
      Enclave.touch e ~addr:(base + (page_no * Pager.page_size)) ~len:Pager.page_size);
  let db =
    Db.open_db ~vfs ~cache_pages:cfg.cache_pages ~hooks
      ~obs:machine.Machine.obs "serve.db"
  in
  { rt; db; queue = Queue.create (); pager_work; eid = Enclave.id e }

let populate (cfg : config) w =
  ignore (Db.exec w.db "CREATE TABLE kv (k INTEGER PRIMARY KEY, v TEXT)");
  ignore (Db.exec w.db "CREATE TABLE t (a INTEGER PRIMARY KEY, b INTEGER, c TEXT)");
  let payload j = Printf.sprintf "%0*d" cfg.payload_bytes j in
  let chunk = 64 in
  let buf = Buffer.create 8192 in
  let insert table render =
    let i = ref 0 in
    while !i < cfg.rows do
      let hi = min cfg.rows (!i + chunk) in
      Buffer.clear buf;
      Buffer.add_string buf "INSERT INTO ";
      Buffer.add_string buf table;
      Buffer.add_string buf " VALUES ";
      for j = !i to hi - 1 do
        if j > !i then Buffer.add_char buf ',';
        Buffer.add_string buf (render j)
      done;
      ignore (Db.exec w.db (Buffer.contents buf));
      i := hi
    done
  in
  ignore (Db.exec w.db "BEGIN");
  insert "kv" (fun j -> Printf.sprintf "(%d,'%s')" j (payload j));
  insert "t" (fun j -> Printf.sprintf "(%d,%d,'%s')" j (j * 7) (payload j));
  ignore (Db.exec w.db "COMMIT")

let rec take_batch q n acc =
  if n = 0 || Queue.is_empty q then List.rev acc
  else take_batch q (n - 1) (Queue.pop q :: acc)

let run ?(prepare = fun (_ : Machine.t) -> ()) (cfg : config) =
  if cfg.enclaves <= 0 then invalid_arg "Serve.run: enclaves <= 0";
  if cfg.batch <= 0 then invalid_arg "Serve.run: batch <= 0";
  let machine = Machine.create ~epc_bytes:cfg.epc_bytes ~seed:cfg.seed () in
  Twine.Bench_db.set_wasm_factor cfg.wasm_factor;
  let workers = Array.init cfg.enclaves (fun _ -> make_worker cfg machine) in
  Array.iter (populate cfg) workers;
  let arrivals = Workload.generate ~seed:cfg.seed (shape_of cfg) in
  (* Setup (launch, population) is not the measurement: restart the
     books so the serving phase audits clean on its own. The EPC keeps
     its resident set — workers start warm, as a real fleet would. *)
  let ledger = Machine.ledger machine in
  let obs = Machine.obs machine in
  Twine_obs.Ledger.reset ledger;
  Twine_obs.Obs.reset obs;
  let epc = machine.Machine.epc in
  let evict0 =
    Array.map (fun w -> Epc.evictions_of epc w.eid) workers
  in
  prepare machine;
  let t0 = Machine.now_ns machine in
  let n = cfg.requests in
  let q = Twine_sim.Eventq.create () in
  (* workload times are relative to the start of serving: rebase onto
     the machine clock (setup already consumed virtual time) *)
  Array.iter
    (fun a ->
      Twine_sim.Eventq.add q ~at:(t0 + a.Workload.at)
        (a.Workload.enclave, a.Workload.req))
    arrivals;
  let latencies = Array.make (max 1 n) 0 in
  let completed = ref 0 in
  let pending = ref 0 in
  let batches = ref 0 in
  let rr = ref 0 in
  let charge account work =
    Machine.charge machine ~account "serve.sql"
      (int_of_float
         (Float.round (float_of_int work *. cfg.ns_per_work *. cfg.wasm_factor)))
  in
  let serve_one w e (at, req) =
    let sql = sql_of_req req in
    Enclave.copy_in e ~label:"serve.req" (String.length sql);
    Db.reset_work w.db;
    let res = Db.exec w.db sql in
    charge "serve.exec" (Db.work w.db);
    if !(w.pager_work) > 0 then begin
      charge "serve.pager" !(w.pager_work);
      w.pager_work := 0
    end;
    Enclave.copy_out e ~label:"serve.resp" (response_bytes res);
    let lat = Machine.now_ns machine - at in
    latencies.(!completed) <- lat;
    incr completed;
    Twine_obs.Obs.observe obs "serve.latency_ns" lat;
    if cfg.trace_requests then
      Twine_obs.Obs.emit obs ~cat:"serve"
        ~args:[ ("enclave", w.eid); ("lat_ns", lat) ]
        "serve.req"
  in
  let drain () =
    Twine_sim.Eventq.drain_until q ~now:(Machine.now_ns machine) (fun ~at (enc, req) ->
        Queue.add (at, req) workers.(enc).queue;
        incr pending)
  in
  while !completed < n do
    drain ();
    if !pending = 0 then
      (* nothing runnable: the simulated core sleeps until the next
         arrival — booked, so the audit still balances to elapsed time *)
      match Twine_sim.Eventq.peek_time q with
      | Some t ->
          let dt = t - Machine.now_ns machine in
          Machine.charge machine ~account:"serve.idle" "serve.idle" dt
      | None -> assert false (* completed < n implies arrivals remain *)
    else begin
      let k = cfg.enclaves in
      let rec find i tries =
        if tries = 0 then None
        else if Queue.is_empty workers.(i mod k).queue then
          find (i + 1) (tries - 1)
        else Some (i mod k)
      in
      match find !rr k with
      | None -> assert false (* pending > 0 implies a non-empty queue *)
      | Some i ->
          rr := (i + 1) mod k;
          let w = workers.(i) in
          let batch = take_batch w.queue cfg.batch [] in
          pending := !pending - List.length batch;
          incr batches;
          Twine_obs.Obs.observe obs "serve.batch_fill" (List.length batch);
          Twine.Runtime.serve w.rt (fun e -> List.iter (serve_one w e) batch)
    end
  done;
  let elapsed_ns = Machine.now_ns machine - t0 in
  let sorted = Array.sub latencies 0 n in
  Array.sort compare sorted;
  let sum = Array.fold_left ( + ) 0 sorted in
  let ecalls = Twine_obs.Obs.value obs "sgx.ecall" in
  let ocalls = Twine_obs.Obs.value obs "sgx.ocall" in
  let stats =
    {
      requests = n;
      enclaves = cfg.enclaves;
      batch = cfg.batch;
      elapsed_ns;
      idle_ns = Twine_obs.Ledger.ns ledger "serve.idle";
      throughput_rps =
        (if elapsed_ns = 0 then 0.
         else float_of_int n /. (float_of_int elapsed_ns /. 1e9));
      mean_ns = (if n = 0 then 0 else sum / n);
      p50_ns = percentile sorted 0.50;
      p99_ns = percentile sorted 0.99;
      max_ns = (if n = 0 then 0 else sorted.(n - 1));
      batches = !batches;
      ecalls;
      ocalls;
      transitions_per_request =
        (if n = 0 then 0. else float_of_int (2 * (ecalls + ocalls)) /. float_of_int n);
      ecall_ns = Twine_obs.Ledger.ns ledger "sgx.transition.ecall";
      epc_faults = Twine_obs.Obs.value obs "epc.fault";
      epc_evictions = Twine_obs.Obs.value obs "epc.evict";
      epc_limit_pages = Epc.limit_pages epc;
      epc_resident_pages = Epc.resident_pages epc;
      evictions_by_enclave =
        Array.to_list
          (Array.mapi
             (fun i w -> (w.eid, Epc.evictions_of epc w.eid - evict0.(i)))
             workers);
      ledger = Twine_obs.Ledger.snapshot ledger;
      machine;
    }
  in
  Array.iter (fun w -> Db.close w.db) workers;
  stats

let render (s : stats) =
  let b = Buffer.create 512 in
  let f fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  f "serve: %d requests over %d enclaves (batch <= %d)\n" s.requests s.enclaves
    s.batch;
  f "  elapsed          %d ns (idle %d ns)\n" s.elapsed_ns s.idle_ns;
  f "  throughput       %.0f req/s\n" s.throughput_rps;
  f "  latency          p50 %d ns  p99 %d ns  mean %d ns  max %d ns\n" s.p50_ns
    s.p99_ns s.mean_ns s.max_ns;
  f "  batches          %d (%.2f req/batch)\n" s.batches
    (if s.batches = 0 then 0. else float_of_int s.requests /. float_of_int s.batches);
  f "  transitions      %d ecalls, %d ocalls (%.3f one-way/req)\n" s.ecalls
    s.ocalls s.transitions_per_request;
  f "  ecall cycles     %d ns booked to sgx.transition.ecall\n" s.ecall_ns;
  f "  epc              %d/%d pages resident, %d faults, %d evictions\n"
    s.epc_resident_pages s.epc_limit_pages s.epc_faults s.epc_evictions;
  f "  evictions by enclave:";
  List.iter (fun (id, v) -> f " e%d=%d" id v) s.evictions_by_enclave;
  f "\n";
  Buffer.contents b
