(* Public facade over the split engine: Catalog (handle + schema +
   stats), Planner (access paths + estimates), Executor (instrumented
   operator tree). Kept thin so the per-layer modules stay the single
   source of truth. *)

exception Sql_error = Catalog.Sql_error

type t = Catalog.db

type result = Executor.result = {
  columns : string list;
  rows : Value.t list list;
  affected : int;
}

type opstat = Catalog.opstat = {
  os_depth : int;
  os_name : string;
  os_detail : string;
  os_est_rows : int option;
  os_rows_in : int;
  os_rows_out : int;
  os_loops : int;
  os_reads : int;
  os_writes : int;
  os_work : int;
}

type profile = Catalog.profile = {
  pr_stmt : string;
  pr_ops : opstat list;
  pr_overhead_work : int;
  pr_total_work : int;
}

let open_db = Catalog.open_db
let close = Catalog.close

let exec t sql =
  let stmts = Parser.parse sql in
  List.fold_left (fun _ stmt -> Executor.exec_stmt t stmt) Executor.empty_result stmts

let query t sql = (exec t sql).rows

let query_one t sql =
  match query t sql with
  | [ v :: _ ] -> v
  | [] -> Catalog.fail "query returned no rows"
  | _ -> Catalog.fail "query returned more than one value"

let last_insert_rowid (t : t) = t.Catalog.last_rowid

let work (t : t) = t.Catalog.work

let reset_work (t : t) =
  t.Catalog.work <- 0;
  t.Catalog.profiles <- []

let pager (t : t) = t.Catalog.pager

let profiles = Catalog.profiles
let last_profile = Catalog.last_profile
let slice_ns = Catalog.slice_ns

let set_ns_per_work (t : t) ns = t.Catalog.ns_hint <- ns
