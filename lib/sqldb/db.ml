(* The embeddable database engine: catalog, expression evaluation,
   planning (rowid ranges and single-column index equality/range), and
   execution of the statement forms the Speedtest1-style workloads need.

   This is the repo's stand-in for SQLite (paper §V-C): same page/journal
   architecture, same VFS seam, same cache-size pragma, executed either
   natively or — in the TWINE runtime — accounted at the calibrated Wasm
   slowdown via the [work] meter. *)

open Sql_ast

exception Sql_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Sql_error s)) fmt

type table_info = {
  tbl_name : string;
  mutable tbl_root : int;
  tbl_columns : column_def list;
  tbl_rowid_col : string option;  (* INTEGER PRIMARY KEY alias *)
}

type index_info = {
  idx_name : string;
  idx_table : string;
  idx_columns : string list;
  idx_unique : bool;
  mutable idx_root : int;
}

type t = {
  pager : Pager.t;
  tables : (string, table_info) Hashtbl.t;
  indexes : (string, index_info) Hashtbl.t;
  mutable explicit_txn : bool;
  prng : Twine_crypto.Drbg.t;
  mutable work : int;
  mutable last_rowid : int64;
}

type result = { columns : string list; rows : Value.t list list; affected : int }

let empty_result = { columns = []; rows = []; affected = 0 }

let catalog_root = 1

(* --- catalog (de)serialisation --- *)

let encode_column c =
  String.concat ":"
    [ c.col_name; c.col_type; (if c.col_pk then "1" else "0");
      (if c.col_not_null then "1" else "0") ]

let decode_column s =
  match String.split_on_char ':' s with
  | [ name; ty; pk; nn ] ->
      { col_name = name; col_type = ty; col_pk = pk = "1"; col_not_null = nn = "1";
        col_default = None }
  | _ -> raise (Pager.Corrupt "bad catalog column")

let rowid_col_of columns =
  List.find_map
    (fun c -> if c.col_pk && c.col_type = "INTEGER" then Some c.col_name else None)
    columns

let save_catalog t =
  (* rebuild the catalog tree in place *)
  Btree.write_node t.pager catalog_root (Btree.Table_leaf []);
  let seq = ref 0L in
  let add values =
    seq := Int64.add !seq 1L;
    Btree.insert_table t.pager ~root:catalog_root ~rowid:!seq (Record.encode values)
  in
  Hashtbl.iter
    (fun _ (ti : table_info) ->
      add
        [ Value.Text "table"; Value.Text ti.tbl_name;
          Value.Int (Int64.of_int ti.tbl_root);
          Value.Text (String.concat ";" (List.map encode_column ti.tbl_columns)) ])
    t.tables;
  Hashtbl.iter
    (fun _ (ii : index_info) ->
      add
        [ Value.Text "index"; Value.Text ii.idx_name;
          Value.Int (Int64.of_int ii.idx_root); Value.Text ii.idx_table;
          Value.Text (String.concat ";" ii.idx_columns);
          Value.Int (if ii.idx_unique then 1L else 0L) ])
    t.indexes

let load_catalog t =
  Btree.iter_table t.pager ~root:catalog_root (fun _ payload ->
      (match Record.decode payload with
      | [ Value.Text "table"; Value.Text name; Value.Int root; Value.Text cols ] ->
          let tbl_columns =
            if cols = "" then []
            else List.map decode_column (String.split_on_char ';' cols)
          in
          Hashtbl.replace t.tables name
            {
              tbl_name = name;
              tbl_root = Int64.to_int root;
              tbl_columns;
              tbl_rowid_col = rowid_col_of tbl_columns;
            }
      | [ Value.Text "index"; Value.Text name; Value.Int root; Value.Text table;
          Value.Text cols; Value.Int unique ] ->
          Hashtbl.replace t.indexes name
            {
              idx_name = name;
              idx_table = table;
              idx_columns = String.split_on_char ';' cols;
              idx_unique = unique = 1L;
              idx_root = Int64.to_int root;
            }
      | _ -> raise (Pager.Corrupt "bad catalog entry"));
      true)

(* --- open/close --- *)

let open_db ?vfs ?(cache_pages = 2048) ?hooks ?obs path =
  let vfs =
    match vfs with
    | Some v -> v
    | None -> if path = ":memory:" then Svfs.memory () else Svfs.os "."
  in
  let fresh = not (vfs.Svfs.v_exists path) in
  let pager = Pager.create_or_open vfs ~cache_pages ?hooks ?obs path in
  let t =
    {
      pager;
      tables = Hashtbl.create 8;
      indexes = Hashtbl.create 8;
      explicit_txn = false;
      prng = Twine_crypto.Drbg.create ~seed:"sqldb-prng" ();
      work = 0;
      last_rowid = 0L;
    }
  in
  if fresh || Pager.n_pages pager <= 1 then begin
    Pager.begin_txn pager;
    let root = Btree.create pager Btree.Table in
    assert (root = catalog_root);
    Pager.commit pager
  end
  else load_catalog t;
  t

let close t = Pager.close t.pager

let work t = t.work
let reset_work t = t.work <- 0
let pager t = t.pager

(* --- row environments for expression evaluation --- *)

type binding = {
  b_name : string;  (* alias or table name *)
  b_cols : string array;
  mutable b_values : Value.t array;
  mutable b_rowid : int64;
}

type env = { bindings : binding list; aggregates : (string, Value.t) Hashtbl.t option }

let lookup_column env q name =
  let name = String.lowercase_ascii name in
  let matches b =
    let rec find i =
      if i >= Array.length b.b_cols then None
      else if String.lowercase_ascii b.b_cols.(i) = name then Some b.b_values.(i)
      else find (i + 1)
    in
    find 0
  in
  match q with
  | Some q -> (
      match List.find_opt (fun b -> String.lowercase_ascii b.b_name = String.lowercase_ascii q) env.bindings with
      | None -> fail "no such table %s" q
      | Some b -> (
          if name = "rowid" then Some (Value.Int b.b_rowid)
          else
            match matches b with
            | Some v -> Some v
            | None -> fail "no such column %s.%s" q name))
  | None -> (
      if name = "rowid" then
        match env.bindings with b :: _ -> Some (Value.Int b.b_rowid) | [] -> None
      else
        match List.find_map matches env.bindings with
        | Some v -> Some v
        | None -> None)

(* --- scalar functions --- *)

let scalar_function t name args =
  match (name, args) with
  | "length", [ Value.Text s ] -> Value.Int (Int64.of_int (String.length s))
  | "length", [ Value.Blob s ] -> Value.Int (Int64.of_int (String.length s))
  | "length", [ Value.Null ] -> Value.Null
  | "length", [ v ] -> Value.Int (Int64.of_int (String.length (Value.to_string v)))
  | "abs", [ Value.Int v ] -> Value.Int (Int64.abs v)
  | "abs", [ Value.Real v ] -> Value.Real (Float.abs v)
  | "abs", [ Value.Null ] -> Value.Null
  | "lower", [ v ] -> Value.Text (String.lowercase_ascii (Value.to_string v))
  | "upper", [ v ] -> Value.Text (String.uppercase_ascii (Value.to_string v))
  | "hex", [ Value.Blob s ] -> Value.Text (Twine_crypto.Hexcodec.encode s)
  | "typeof", [ v ] ->
      Value.Text
        (match v with
        | Value.Null -> "null"
        | Value.Int _ -> "integer"
        | Value.Real _ -> "real"
        | Value.Text _ -> "text"
        | Value.Blob _ -> "blob")
  | "random", [] ->
      Value.Int (Twine_crypto.Drbg.uint64 t.prng)
  | "randomblob", [ n ] ->
      let n = Int64.to_int (Value.to_int64 n) in
      Value.Blob (Twine_crypto.Drbg.generate t.prng (max 0 n))
  | "coalesce", args -> (
      match List.find_opt (fun v -> not (Value.is_null v)) args with
      | Some v -> v
      | None -> Value.Null)
  | "substr", [ s; start ] ->
      let str = Value.to_string s in
      let st = Int64.to_int (Value.to_int64 start) in
      let st = if st > 0 then st - 1 else max 0 (String.length str + st) in
      if st >= String.length str then Value.Text ""
      else Value.Text (String.sub str st (String.length str - st))
  | "substr", [ s; start; len ] ->
      let str = Value.to_string s in
      let st = Int64.to_int (Value.to_int64 start) in
      let st = if st > 0 then st - 1 else max 0 (String.length str + st) in
      let l = Int64.to_int (Value.to_int64 len) in
      if st >= String.length str || l <= 0 then Value.Text ""
      else Value.Text (String.sub str st (min l (String.length str - st)))
  | "min", (_ :: _ :: _ as vs) ->
      List.fold_left (fun a b -> if Value.compare a b <= 0 then a else b)
        (List.hd vs) (List.tl vs)
  | "max", (_ :: _ :: _ as vs) ->
      List.fold_left (fun a b -> if Value.compare a b >= 0 then a else b)
        (List.hd vs) (List.tl vs)
  | name, args -> fail "no such function %s/%d" name (List.length args)

let is_aggregate_name = function
  | "count" | "sum" | "avg" | "total" -> true
  | _ -> false

(* min/max with one argument are aggregates; with 2+ they are scalar *)
let expr_is_aggregate = function
  | Call (n, args) ->
      is_aggregate_name n || ((n = "min" || n = "max") && List.length args = 1)
  | _ -> false

let rec contains_aggregate e =
  expr_is_aggregate e
  ||
  match e with
  | Binop (_, a, b) -> contains_aggregate a || contains_aggregate b
  | Not a | Neg a | Is_null (a, _) | Cast (a, _) -> contains_aggregate a
  | Between (a, b, c) ->
      contains_aggregate a || contains_aggregate b || contains_aggregate c
  | In_list (a, es) -> contains_aggregate a || List.exists contains_aggregate es
  | Like (a, b) -> contains_aggregate a || contains_aggregate b
  | Call (_, es) -> List.exists contains_aggregate es
  | Case (arms, else_) ->
      List.exists (fun (c, v) -> contains_aggregate c || contains_aggregate v) arms
      || Option.fold ~none:false ~some:contains_aggregate else_
  | Lit _ | Column _ | Star -> false

let agg_key e = Format.asprintf "%d" (Hashtbl.hash e)

let rec eval t env (e : expr) : Value.t =
  t.work <- t.work + 1;
  match e with
  | Lit v -> v
  | Star -> fail "misplaced *"
  | Column (q, name) -> (
      match lookup_column env q name with
      | Some v -> v
      | None -> fail "no such column %s" name)
  | Binop (op, a, b) -> eval_binop t env op a b
  | Not a -> (
      match eval t env a with
      | Value.Null -> Value.Null
      | v -> Value.of_bool (not (Value.to_bool v)))
  | Neg a -> Value.sub (Value.Int 0L) (eval t env a)
  | Is_null (a, positive) ->
      let isn = Value.is_null (eval t env a) in
      Value.of_bool (if positive then isn else not isn)
  | Between (a, lo, hi) ->
      let v = eval t env a in
      let lo = eval t env lo and hi = eval t env hi in
      if Value.is_null v || Value.is_null lo || Value.is_null hi then Value.Null
      else Value.of_bool (Value.compare v lo >= 0 && Value.compare v hi <= 0)
  | In_list (a, es) ->
      let v = eval t env a in
      if Value.is_null v then Value.Null
      else Value.of_bool (List.exists (fun e -> Value.equal v (eval t env e)) es)
  | Like (a, p) -> (
      match (eval t env a, eval t env p) with
      | Value.Null, _ | _, Value.Null -> Value.Null
      | v, p -> Value.of_bool (Value.like ~pattern:(Value.to_string p) (Value.to_string v)))
  | Call (name, args) -> (
      if expr_is_aggregate e then
        match env.aggregates with
        | Some aggs -> (
            match Hashtbl.find_opt aggs (agg_key e) with
            | Some v -> v
            | None -> fail "aggregate %s used outside aggregation" name)
        | None -> fail "aggregate %s not allowed here" name
      else
        let args = List.map (eval t env) args in
        scalar_function t name args)
  | Case (arms, else_) -> (
      let rec go = function
        | [] -> ( match else_ with Some e -> eval t env e | None -> Value.Null)
        | (c, v) :: rest -> if Value.to_bool (eval t env c) then eval t env v else go rest
      in
      go arms)
  | Cast (a, ty) -> (
      let v = eval t env a in
      match String.uppercase_ascii ty with
      | "INTEGER" | "INT" -> Value.Int (Value.to_int64 v)
      | "REAL" -> (
          match Value.to_num v with
          | `Int i -> Value.Real (Int64.to_float i)
          | `Real f -> Value.Real f
          | `Null -> Value.Null)
      | "TEXT" -> ( match v with Value.Null -> Value.Null | _ -> Value.Text (Value.to_string v))
      | "BLOB" -> (
          match v with
          | Value.Null -> Value.Null
          | Value.Blob _ -> v
          | _ -> Value.Blob (Value.to_string v))
      | ty -> fail "cannot cast to %s" ty)

and eval_binop t env op a b =
  match op with
  | And ->
      let va = eval t env a in
      if (not (Value.is_null va)) && not (Value.to_bool va) then Value.of_bool false
      else begin
        let vb = eval t env b in
        if (not (Value.is_null vb)) && not (Value.to_bool vb) then Value.of_bool false
        else if Value.is_null va || Value.is_null vb then Value.Null
        else Value.of_bool true
      end
  | Or ->
      let va = eval t env a in
      if (not (Value.is_null va)) && Value.to_bool va then Value.of_bool true
      else begin
        let vb = eval t env b in
        if (not (Value.is_null vb)) && Value.to_bool vb then Value.of_bool true
        else if Value.is_null va || Value.is_null vb then Value.Null
        else Value.of_bool false
      end
  | _ ->
      let va = eval t env a and vb = eval t env b in
      (match op with
      | Add -> Value.add va vb
      | Sub -> Value.sub va vb
      | Mul -> Value.mul va vb
      | Div -> Value.div va vb
      | Mod -> Value.rem va vb
      | Concat -> Value.concat va vb
      | Eq | Ne | Lt | Le | Gt | Ge ->
          if Value.is_null va || Value.is_null vb then Value.Null
          else begin
            let c = Value.compare va vb in
            Value.of_bool
              (match op with
              | Eq -> c = 0
              | Ne -> c <> 0
              | Lt -> c < 0
              | Le -> c <= 0
              | Gt -> c > 0
              | Ge -> c >= 0
              | _ -> assert false)
          end
      | And | Or -> assert false)

(* --- table access helpers --- *)

let table t name =
  match Hashtbl.find_opt t.tables (String.lowercase_ascii name) with
  | Some ti -> ti
  | None -> fail "no such table: %s" name

let columns_array ti = Array.of_list (List.map (fun c -> c.col_name) ti.tbl_columns)

let col_index ti name =
  let name = String.lowercase_ascii name in
  let rec go i = function
    | [] -> None
    | c :: rest ->
        if String.lowercase_ascii c.col_name = name then Some i else go (i + 1) rest
  in
  go 0 ti.tbl_columns

(* Decode a stored record into the full column array (rowid column
   materialised from the key). *)
let decode_row t ti rowid payload =
  t.work <- t.work + 2;
  let stored = Array.of_list (Record.decode payload) in
  match ti.tbl_rowid_col with
  | None -> stored
  | Some pk ->
      let full = Array.make (List.length ti.tbl_columns) Value.Null in
      let si = ref 0 in
      List.iteri
        (fun i c ->
          if c.col_name = pk then full.(i) <- Value.Int rowid
          else begin
            full.(i) <- (if !si < Array.length stored then stored.(!si) else Value.Null);
            incr si
          end)
        ti.tbl_columns;
      full

let encode_row ti (values : Value.t array) =
  (* the rowid column is not stored in the payload *)
  let stored = ref [] in
  List.iteri
    (fun i c ->
      match ti.tbl_rowid_col with
      | Some pk when c.col_name = pk -> ()
      | _ -> stored := values.(i) :: !stored)
    ti.tbl_columns;
  Record.encode (List.rev !stored)

(* --- transactions --- *)

let in_auto_txn t f =
  if t.explicit_txn || Pager.in_txn t.pager then f ()
  else begin
    Pager.begin_txn t.pager;
    match f () with
    | r ->
        Pager.commit t.pager;
        r
    | exception e ->
        (try Pager.rollback t.pager with _ -> ());
        raise e
  end

(* --- WHERE analysis --- *)

let is_rowid_column ti name =
  let name = String.lowercase_ascii name in
  name = "rowid"
  || match ti.tbl_rowid_col with
     | Some pk -> String.lowercase_ascii pk = name
     | None -> false

let const_value t e =
  (* expressions with no column references can be evaluated up front *)
  let rec pure = function
    | Lit _ -> true
    | Column _ | Star -> false
    | Binop (_, a, b) | Like (a, b) -> pure a && pure b
    | Not a | Neg a | Is_null (a, _) | Cast (a, _) -> pure a
    | Between (a, b, c) -> pure a && pure b && pure c
    | In_list (a, es) -> pure a && List.for_all pure es
    | Call (("random" | "randomblob"), _) -> false
    | Call (_, es) -> List.for_all pure es
    | Case (arms, e) ->
        List.for_all (fun (c, v) -> pure c && pure v) arms
        && Option.fold ~none:true ~some:pure e
  in
  if pure e then Some (eval t { bindings = []; aggregates = None } e) else None

type plan =
  | Full_scan
  | Rowid_range of int64 option * int64 option  (* inclusive bounds *)
  | Index_range of index_info * Value.t list * Value.t option * Value.t option
      (* equality prefix, then optional lo/hi bound on the next column *)

let find_index t table_name col =
  let col = String.lowercase_ascii col in
  Hashtbl.fold
    (fun _ ii acc ->
      if acc = None
         && String.lowercase_ascii ii.idx_table = String.lowercase_ascii table_name
         && List.length ii.idx_columns >= 1
         && String.lowercase_ascii (List.hd ii.idx_columns) = col
      then Some ii
      else acc)
    t.indexes None

(* Analyse a WHERE clause into a plan for one table. Only top-level AND
   conjuncts are considered. *)
let plan_for t ti where =
  let rec conjuncts = function
    | Some (Binop (And, a, b)) -> conjuncts (Some a) @ conjuncts (Some b)
    | Some e -> [ e ]
    | None -> []
  in
  let cs = conjuncts where in
  (* rowid constraints *)
  let lo = ref None and hi = ref None in
  let tighten_lo v = match !lo with Some x when Int64.compare x v >= 0 -> () | _ -> lo := Some v in
  let tighten_hi v = match !hi with Some x when Int64.compare x v <= 0 -> () | _ -> hi := Some v in
  let rowid_of e = match const_value t e with Some v -> Some (Value.to_int64 v) | None -> None in
  List.iter
    (fun c ->
      match c with
      | Binop (Eq, Column (_, n), e) when is_rowid_column ti n -> (
          match rowid_of e with
          | Some v -> tighten_lo v; tighten_hi v
          | None -> ())
      | Binop (Eq, e, Column (_, n)) when is_rowid_column ti n -> (
          match rowid_of e with
          | Some v -> tighten_lo v; tighten_hi v
          | None -> ())
      | Binop (Ge, Column (_, n), e) when is_rowid_column ti n -> (
          match rowid_of e with Some v -> tighten_lo v | None -> ())
      | Binop (Gt, Column (_, n), e) when is_rowid_column ti n -> (
          match rowid_of e with Some v -> tighten_lo (Int64.add v 1L) | None -> ())
      | Binop (Le, Column (_, n), e) when is_rowid_column ti n -> (
          match rowid_of e with Some v -> tighten_hi v | None -> ())
      | Binop (Lt, Column (_, n), e) when is_rowid_column ti n -> (
          match rowid_of e with Some v -> tighten_hi (Int64.sub v 1L) | None -> ())
      | Between (Column (_, n), a, b) when is_rowid_column ti n -> (
          match (rowid_of a, rowid_of b) with
          | Some a, Some b -> tighten_lo a; tighten_hi b
          | _ -> ())
      | _ -> ())
    cs;
  if !lo <> None || !hi <> None then Rowid_range (!lo, !hi)
  else begin
    (* single-column index equality or range *)
    let pick =
      List.find_map
        (fun c ->
          match c with
          | Binop (Eq, Column (_, n), e) | Binop (Eq, e, Column (_, n)) -> (
              match (find_index t ti.tbl_name n, const_value t e) with
              | Some ii, Some v -> Some (Index_range (ii, [ v ], None, None))
              | _ -> None)
          | Between (Column (_, n), a, b) -> (
              match (find_index t ti.tbl_name n, const_value t a, const_value t b) with
              | Some ii, Some lo, Some hi -> Some (Index_range (ii, [], Some lo, Some hi))
              | _ -> None)
          | Binop (Ge, Column (_, n), e) -> (
              match (find_index t ti.tbl_name n, const_value t e) with
              | Some ii, Some v -> Some (Index_range (ii, [], Some v, None))
              | _ -> None)
          | _ -> None)
        cs
    in
    match pick with Some p -> p | None -> Full_scan
  end

(* --- index maintenance --- *)

let index_key ii ti values rowid =
  let parts =
    List.map
      (fun col ->
        match col_index ti col with
        | Some i -> values.(i)
        | None -> fail "index %s references missing column %s" ii.idx_name col)
      ii.idx_columns
  in
  Record.encode (parts @ [ Value.Int rowid ])

let index_prefix_key prefix = Record.encode prefix

let indexes_of t table_name =
  Hashtbl.fold
    (fun _ ii acc ->
      if String.lowercase_ascii ii.idx_table = String.lowercase_ascii table_name then
        ii :: acc
      else acc)
    t.indexes []

let index_insert_row t ti values rowid =
  List.iter
    (fun ii ->
      let key = index_key ii ti values rowid in
      (if ii.idx_unique then begin
         (* a row with the same column prefix must not already exist *)
         let prefix =
           List.map
             (fun col ->
               match col_index ti col with Some i -> values.(i) | None -> Value.Null)
             ii.idx_columns
         in
         let prefix_key = index_prefix_key prefix in
         let dup = ref false in
         Btree.iter_index t.pager ~root:ii.idx_root ~start:prefix_key (fun k ->
             (match Record.decode k with
             | decoded when List.length decoded = List.length prefix + 1 ->
                 let kp = List.filteri (fun i _ -> i < List.length prefix) decoded in
                 if List.for_all2 Value.equal kp prefix then dup := true
             | _ -> ());
             false);
         if !dup && not (List.exists Value.is_null prefix) then
           fail "UNIQUE constraint failed: %s" ii.idx_name
       end);
      Btree.insert_index t.pager ~root:ii.idx_root key)
    (indexes_of t ti.tbl_name)

let index_delete_row t ti values rowid =
  List.iter
    (fun ii ->
      ignore (Btree.delete_index t.pager ~root:ii.idx_root (index_key ii ti values rowid)))
    (indexes_of t ti.tbl_name)

(* --- scanning --- *)

(* Iterate (rowid, values) of a table under a plan, applying no filter. *)
let scan t ti plan f =
  match plan with
  | Full_scan ->
      Btree.iter_table t.pager ~root:ti.tbl_root (fun rowid payload ->
          f rowid (decode_row t ti rowid payload))
  | Rowid_range (lo, hi) ->
      Btree.iter_table t.pager ~root:ti.tbl_root
        ?min:lo ?max:hi
        (fun rowid payload -> f rowid (decode_row t ti rowid payload))
  | Index_range (ii, prefix, lo, hi) ->
      let start_vals = prefix @ (match lo with Some v -> [ v ] | None -> []) in
      let start = if start_vals = [] then None else Some (index_prefix_key start_vals) in
      Btree.iter_index t.pager ~root:ii.idx_root ?start (fun key ->
          let decoded = Record.decode key in
          let n = List.length decoded in
          let rowid =
            match List.nth decoded (n - 1) with
            | Value.Int r -> r
            | _ -> raise (Pager.Corrupt "index key without rowid")
          in
          (* check the prefix still matches / range not exceeded *)
          let cols = List.filteri (fun i _ -> i < n - 1) decoded in
          let keep, continue =
            let rec check_prefix p c =
              match (p, c) with
              | [], rest -> (Some rest, true)
              | pv :: p', cv :: c' ->
                  if Value.equal pv cv then check_prefix p' c' else (None, false)
              | _, [] -> (None, false)
            in
            match check_prefix prefix cols with
            | None, _ -> (false, false)
            | Some rest, _ -> (
                match (rest, lo, hi) with
                | v :: _, _, Some hi_v ->
                    if Value.compare v hi_v > 0 then (false, false) else (true, true)
                | v :: _, Some lo_v, None ->
                    if Value.compare v lo_v < 0 then (false, true) else (true, true)
                | _ -> (true, true))
          in
          if not continue then false
          else begin
            if keep then begin
              match Btree.lookup_table t.pager ~root:ti.tbl_root rowid with
              | Some payload -> (if not (f rowid (decode_row t ti rowid payload)) then raise Btree.Stop); true
              | None -> true
            end
            else true
          end)

let scan_filtered t ti plan where f =
  let binding =
    { b_name = ti.tbl_name; b_cols = columns_array ti; b_values = [||]; b_rowid = 0L }
  in
  let env = { bindings = [ binding ]; aggregates = None } in
  scan t ti plan (fun rowid values ->
      binding.b_values <- values;
      binding.b_rowid <- rowid;
      let keep =
        match where with
        | None -> true
        | Some w -> Value.to_bool (eval t env w)
      in
      if keep then f rowid values else true)

(* --- INSERT --- *)

let next_rowid t ti =
  match Btree.max_rowid t.pager ~root:ti.tbl_root with
  | Some r -> Int64.add r 1L
  | None -> 1L

let do_insert t ~ins_table ~ins_columns ~ins_rows =
  let ti = table t ins_table in
  let ncols = List.length ti.tbl_columns in
  let target_idx =
    if ins_columns = [] then List.init ncols (fun i -> i)
    else
      List.map
        (fun c ->
          match col_index ti c with
          | Some i -> i
          | None -> fail "table %s has no column %s" ins_table c)
        ins_columns
  in
  let affected = ref 0 in
  let env = { bindings = []; aggregates = None } in
  List.iter
    (fun row_exprs ->
      if List.length row_exprs <> List.length target_idx then
        fail "%d values for %d columns" (List.length row_exprs) (List.length target_idx);
      let values = Array.make ncols Value.Null in
      List.iter2 (fun i e -> values.(i) <- eval t env e) target_idx row_exprs;
      (* defaults *)
      List.iteri
        (fun i c ->
          if (not (List.mem i target_idx)) && c.col_default <> None then
            values.(i) <- eval t env (Option.get c.col_default))
        ti.tbl_columns;
      (* rowid assignment *)
      let rowid =
        match ti.tbl_rowid_col with
        | Some pk -> (
            let i = Option.get (col_index ti pk) in
            match values.(i) with
            | Value.Null ->
                let r = next_rowid t ti in
                values.(i) <- Value.Int r;
                r
            | v -> Value.to_int64 v)
        | None -> next_rowid t ti
      in
      (* NOT NULL checks *)
      List.iteri
        (fun i c ->
          if c.col_not_null && Value.is_null values.(i) then
            fail "NOT NULL constraint failed: %s.%s" ins_table c.col_name)
        ti.tbl_columns;
      (* primary key uniqueness *)
      (match ti.tbl_rowid_col with
      | Some _ ->
          if Btree.lookup_table t.pager ~root:ti.tbl_root rowid <> None then
            fail "UNIQUE constraint failed: %s rowid %Ld" ins_table rowid
      | None -> ());
      index_insert_row t ti values rowid;
      Btree.insert_table t.pager ~root:ti.tbl_root ~rowid (encode_row ti values);
      t.last_rowid <- rowid;
      incr affected)
    ins_rows;
  { empty_result with affected = !affected }

(* --- SELECT --- *)

type agg_state = {
  mutable cnt : int;
  mutable sum_i : int64;
  mutable sum_f : float;
  mutable saw_real : bool;
  mutable mn : Value.t;
  mutable mx : Value.t;
  mutable non_null : int;
}

let new_agg () =
  { cnt = 0; sum_i = 0L; sum_f = 0.; saw_real = false; mn = Value.Null;
    mx = Value.Null; non_null = 0 }

let rec collect_aggs acc e =
  if expr_is_aggregate e then if List.memq e acc then acc else e :: acc
  else
    match e with
    | Binop (_, a, b) | Like (a, b) -> collect_aggs (collect_aggs acc a) b
    | Not a | Neg a | Is_null (a, _) | Cast (a, _) -> collect_aggs acc a
    | Between (a, b, c) -> collect_aggs (collect_aggs (collect_aggs acc a) b) c
    | In_list (a, es) -> List.fold_left collect_aggs (collect_aggs acc a) es
    | Call (_, es) -> List.fold_left collect_aggs acc es
    | Case (arms, else_) ->
        let acc = List.fold_left (fun a (c, v) -> collect_aggs (collect_aggs a c) v) acc arms in
        Option.fold ~none:acc ~some:(collect_aggs acc) else_
    | Lit _ | Column _ | Star -> acc

let agg_update t env state e =
  match e with
  | Call ("count", [ Star ]) | Call ("count", []) -> state.cnt <- state.cnt + 1
  | Call (name, [ arg ]) -> (
      let v = eval t env arg in
      if not (Value.is_null v) then begin
        state.non_null <- state.non_null + 1;
        (match name with
        | "count" -> ()
        | "sum" | "avg" | "total" -> (
            match Value.to_num v with
            | `Int i ->
                state.sum_i <- Int64.add state.sum_i i;
                state.sum_f <- state.sum_f +. Int64.to_float i
            | `Real f ->
                state.saw_real <- true;
                state.sum_f <- state.sum_f +. f
            | `Null -> ())
        | "min" -> if Value.is_null state.mn || Value.compare v state.mn < 0 then state.mn <- v
        | "max" -> if Value.is_null state.mx || Value.compare v state.mx > 0 then state.mx <- v
        | _ -> ())
      end)
  | _ -> ()

let agg_final e state =
  match e with
  | Call ("count", [ Star ]) | Call ("count", []) -> Value.Int (Int64.of_int state.cnt)
  | Call ("count", [ _ ]) -> Value.Int (Int64.of_int state.non_null)
  | Call ("sum", [ _ ]) ->
      if state.non_null = 0 then Value.Null
      else if state.saw_real then Value.Real state.sum_f
      else Value.Int state.sum_i
  | Call ("total", [ _ ]) -> Value.Real state.sum_f
  | Call ("avg", [ _ ]) ->
      if state.non_null = 0 then Value.Null
      else Value.Real (state.sum_f /. float_of_int state.non_null)
  | Call ("min", [ _ ]) -> state.mn
  | Call ("max", [ _ ]) -> state.mx
  | _ -> Value.Null

let column_label i (e, alias) =
  match alias with
  | Some a -> a
  | None -> (
      match e with
      | Column (_, n) -> n
      | Star -> "*"
      | _ -> Printf.sprintf "column%d" (i + 1))

(* Expand SELECT * over the bindings. *)
let expand_star bindings sel_exprs =
  List.concat_map
    (fun (e, alias) ->
      match e with
      | Star ->
          List.concat_map
            (fun b ->
              Array.to_list
                (Array.map (fun c -> (Column (Some b.b_name, c), Some c)) b.b_cols))
            bindings
      | _ -> [ (e, alias) ])
    sel_exprs

let do_select t (s : select) =
  (* set up bindings *)
  let sources =
    match s.sel_from with
    | None -> []
    | Some (tbl, alias) ->
        (table t tbl, Option.value alias ~default:tbl)
        :: List.map
             (fun j -> (table t j.jt_table, Option.value j.jt_alias ~default:j.jt_table))
             s.sel_joins
  in
  let bindings =
    List.map
      (fun (ti, name) ->
        { b_name = name; b_cols = columns_array ti; b_values = [||]; b_rowid = 0L })
      sources
  in
  let sel_exprs = expand_star bindings s.sel_exprs in
  let labels = List.mapi column_label sel_exprs in
  let has_aggregates =
    s.sel_group <> []
    || List.exists (fun (e, _) -> contains_aggregate e) sel_exprs
    || Option.fold ~none:false ~some:contains_aggregate s.sel_having
  in
  (* produce joined rows: nested loops over sources *)
  let rows = ref [] in
  let join_conds = List.filter_map (fun j -> j.jt_on) s.sel_joins in
  let env = { bindings; aggregates = None } in
  let emit_row () =
    let keep =
      List.for_all (fun c -> Value.to_bool (eval t env c)) join_conds
      && match s.sel_where with None -> true | Some w -> Value.to_bool (eval t env w)
    in
    if keep then
      rows :=
        (List.map (fun b -> (Array.copy b.b_values, b.b_rowid)) bindings) :: !rows
  in
  let rec loop srcs bnds =
    match (srcs, bnds) with
    | [], [] -> emit_row ()
    | (ti, _) :: srest, b :: brest ->
        (* plan only the first table from the WHERE clause *)
        let plan =
          if srest = [] && brest = [] && List.length sources = 1 then
            plan_for t ti s.sel_where
          else Full_scan
        in
        scan t ti plan (fun rowid values ->
            b.b_values <- values;
            b.b_rowid <- rowid;
            loop srest brest;
            true)
    | _ -> assert false
  in
  if sources = [] then begin
    (* SELECT without FROM *)
    let vals = List.map (fun (e, _) -> eval t env e) sel_exprs in
    { columns = labels; rows = [ vals ]; affected = 0 }
  end
  else begin
    loop sources bindings;
    let materialized = List.rev !rows in
    let restore row =
      List.iter2
        (fun b (values, rowid) ->
          b.b_values <- values;
          b.b_rowid <- rowid)
        bindings row
    in
    let result_rows =
      if has_aggregates then begin
        (* group rows *)
        let agg_exprs =
          List.fold_left
            (fun acc (e, _) -> collect_aggs acc e)
            (Option.fold ~none:[] ~some:(collect_aggs []) s.sel_having)
            sel_exprs
        in
        let groups : (string, (Value.t list * (expr * agg_state) list)) Hashtbl.t =
          Hashtbl.create 16
        in
        let order = ref [] in
        List.iter
          (fun row ->
            restore row;
            let key_vals = List.map (fun g -> eval t env g) s.sel_group in
            let key = Record.encode key_vals in
            let _, states =
              match Hashtbl.find_opt groups key with
              | Some g -> g
              | None ->
                  let g = (key_vals, List.map (fun e -> (e, new_agg ())) agg_exprs) in
                  Hashtbl.add groups key g;
                  order := key :: !order;
                  g
            in
            List.iter (fun (e, st) -> agg_update t env st e) states)
          materialized;
        let keys =
          if Hashtbl.length groups = 0 && s.sel_group = [] then begin
            (* aggregate over empty input still yields one row *)
            let g = ([], List.map (fun e -> (e, new_agg ())) agg_exprs) in
            Hashtbl.add groups "" g;
            [ "" ]
          end
          else List.rev !order
        in
        List.filter_map
          (fun key ->
            let key_vals, states = Hashtbl.find groups key in
            let aggs = Hashtbl.create 8 in
            List.iter (fun (e, st) -> Hashtbl.replace aggs (agg_key e) (agg_final e st)) states;
            (* bind group-by columns through a pseudo binding: evaluate
               select exprs in an env whose bindings hold the first row of
               the group — sufficient for exprs over grouped columns *)
            let genv = { bindings; aggregates = Some aggs } in
            (* restore a representative row for non-aggregate refs *)
            (match
               List.find_opt
                 (fun row ->
                   restore row;
                   List.map (fun g -> eval t env g) s.sel_group = key_vals)
                 materialized
             with
            | Some row -> restore row
            | None -> ());
            let having_ok =
              match s.sel_having with
              | None -> true
              | Some h -> Value.to_bool (eval t genv h)
            in
            if having_ok then Some (List.map (fun (e, _) -> eval t genv e) sel_exprs)
            else None)
          keys
      end
      else
        List.map
          (fun row ->
            restore row;
            List.map (fun (e, _) -> eval t env e) sel_exprs)
          materialized
    in
    (* ORDER BY: when ordering refers to select aliases or expressions over
       the base row we re-evaluate against materialized rows; for aggregate
       queries we order by position in result if expr is an alias *)
    let result_rows =
      if s.sel_order = [] then result_rows
      else begin
        let keyed =
          if has_aggregates then
            List.map
              (fun vals ->
                let key =
                  List.map
                    (fun o ->
                      match o.ord_expr with
                      | Column (None, name) -> (
                          match
                            List.find_map
                              (fun (l, v) -> if String.lowercase_ascii l = String.lowercase_ascii name then Some v else None)
                              (List.combine labels vals)
                          with
                          | Some v -> (v, o.ord_desc)
                          | None -> (Value.Null, o.ord_desc))
                      | Lit (Value.Int n) ->
                          ((try List.nth vals (Int64.to_int n - 1) with _ -> Value.Null), o.ord_desc)
                      | _ -> (Value.Null, o.ord_desc))
                    s.sel_order
                in
                (key, vals))
              result_rows
          else
            List.map2
              (fun row vals ->
                restore row;
                let key =
                  List.map
                    (fun o ->
                      match o.ord_expr with
                      | Lit (Value.Int n) ->
                          ((try List.nth vals (Int64.to_int n - 1) with _ -> Value.Null), o.ord_desc)
                      | Column (None, name)
                        when List.exists
                               (fun l -> String.lowercase_ascii l = String.lowercase_ascii name)
                               labels
                             && not
                                  (List.exists
                                     (fun b ->
                                       Array.exists
                                         (fun c -> String.lowercase_ascii c = String.lowercase_ascii name)
                                         b.b_cols)
                                     bindings) ->
                          (List.assoc name (List.combine labels vals), o.ord_desc)
                      | e -> (eval t env e, o.ord_desc))
                    s.sel_order
                in
                (key, vals))
              materialized result_rows
        in
        let cmp (ka, _) (kb, _) =
          let rec go a b =
            match (a, b) with
            | [], [] -> 0
            | (va, desc) :: ra, (vb, _) :: rb ->
                let c = Value.compare va vb in
                let c = if desc then -c else c in
                if c <> 0 then c else go ra rb
            | _ -> 0
          in
          go ka kb
        in
        List.map snd (List.stable_sort cmp keyed)
      end
    in
    let result_rows =
      if s.sel_distinct then begin
        let seen = Hashtbl.create 16 in
        List.filter
          (fun vals ->
            let k = Record.encode vals in
            if Hashtbl.mem seen k then false
            else begin
              Hashtbl.add seen k ();
              true
            end)
          result_rows
      end
      else result_rows
    in
    let result_rows =
      let off =
        match s.sel_offset with
        | Some e -> Int64.to_int (Value.to_int64 (eval t env e))
        | None -> 0
      in
      let lim =
        match s.sel_limit with
        | Some e -> Int64.to_int (Value.to_int64 (eval t env e))
        | None -> max_int
      in
      List.filteri (fun i _ -> i >= off && i < off + lim) result_rows
    in
    { columns = labels; rows = result_rows; affected = 0 }
  end

(* --- UPDATE / DELETE --- *)

let do_update t ~upd_table ~upd_sets ~upd_where =
  let ti = table t upd_table in
  let plan = plan_for t ti upd_where in
  let victims = ref [] in
  scan_filtered t ti plan upd_where (fun rowid values ->
      victims := (rowid, values) :: !victims;
      true);
  let binding =
    { b_name = ti.tbl_name; b_cols = columns_array ti; b_values = [||]; b_rowid = 0L }
  in
  let env = { bindings = [ binding ]; aggregates = None } in
  let set_idx =
    List.map
      (fun (c, e) ->
        match col_index ti c with
        | Some i -> (i, e)
        | None -> fail "no such column %s" c)
      upd_sets
  in
  List.iter
    (fun (rowid, values) ->
      binding.b_values <- values;
      binding.b_rowid <- rowid;
      let updated = Array.copy values in
      List.iter (fun (i, e) -> updated.(i) <- eval t env e) set_idx;
      (* rowid change unsupported (as in our Speedtest1 workloads) *)
      index_delete_row t ti values rowid;
      index_insert_row t ti updated rowid;
      Btree.insert_table t.pager ~root:ti.tbl_root ~rowid (encode_row ti updated))
    (List.rev !victims);
  { empty_result with affected = List.length !victims }

let do_delete t ~del_table ~del_where =
  let ti = table t del_table in
  let plan = plan_for t ti del_where in
  let victims = ref [] in
  scan_filtered t ti plan del_where (fun rowid values ->
      victims := (rowid, values) :: !victims;
      true);
  List.iter
    (fun (rowid, values) ->
      index_delete_row t ti values rowid;
      ignore (Btree.delete_table t.pager ~root:ti.tbl_root rowid))
    !victims;
  { empty_result with affected = List.length !victims }

(* --- DDL --- *)

let do_create_table t ~ct_name ~ct_if_not_exists ~ct_columns =
  let name = String.lowercase_ascii ct_name in
  if Hashtbl.mem t.tables name then begin
    if ct_if_not_exists then empty_result else fail "table %s already exists" ct_name
  end
  else begin
    let root = Btree.create t.pager Btree.Table in
    Hashtbl.replace t.tables name
      {
        tbl_name = name;
        tbl_root = root;
        tbl_columns = ct_columns;
        tbl_rowid_col = rowid_col_of ct_columns;
      };
    save_catalog t;
    empty_result
  end

let do_create_index t ~ci_name ~ci_table ~ci_columns ~ci_unique ~ci_if_not_exists =
  let name = String.lowercase_ascii ci_name in
  if Hashtbl.mem t.indexes name then begin
    if ci_if_not_exists then empty_result else fail "index %s already exists" ci_name
  end
  else begin
    let ti = table t ci_table in
    List.iter
      (fun c ->
        if col_index ti c = None then fail "table %s has no column %s" ci_table c)
      ci_columns;
    let root = Btree.create t.pager Btree.Index in
    let ii =
      {
        idx_name = name;
        idx_table = String.lowercase_ascii ci_table;
        idx_columns = ci_columns;
        idx_unique = ci_unique;
        idx_root = root;
      }
    in
    Hashtbl.replace t.indexes name ii;
    (* populate from existing rows *)
    Btree.iter_table t.pager ~root:ti.tbl_root (fun rowid payload ->
        let values = decode_row t ti rowid payload in
        Btree.insert_index t.pager ~root (index_key ii ti values rowid);
        true);
    save_catalog t;
    empty_result
  end

let do_drop_table t ~dt_name ~dt_if_exists =
  let name = String.lowercase_ascii dt_name in
  match Hashtbl.find_opt t.tables name with
  | None -> if dt_if_exists then empty_result else fail "no such table: %s" dt_name
  | Some ti ->
      List.iter (fun p -> Pager.free t.pager p) (Btree.pages t.pager ~root:ti.tbl_root);
      List.iter
        (fun ii ->
          List.iter (fun p -> Pager.free t.pager p) (Btree.pages t.pager ~root:ii.idx_root);
          Hashtbl.remove t.indexes ii.idx_name)
        (indexes_of t name);
      Hashtbl.remove t.tables name;
      save_catalog t;
      empty_result

let do_drop_index t ~di_name ~di_if_exists =
  let name = String.lowercase_ascii di_name in
  match Hashtbl.find_opt t.indexes name with
  | None -> if di_if_exists then empty_result else fail "no such index: %s" di_name
  | Some ii ->
      List.iter (fun p -> Pager.free t.pager p) (Btree.pages t.pager ~root:ii.idx_root);
      Hashtbl.remove t.indexes name;
      save_catalog t;
      empty_result

(* ANALYZE: gather row counts into the stat1 table (paper's test 990). *)
let do_analyze t =
  if not (Hashtbl.mem t.tables "stat1") then
    ignore
      (do_create_table t ~ct_name:"stat1" ~ct_if_not_exists:true
         ~ct_columns:
           [ { col_name = "tbl"; col_type = "TEXT"; col_pk = false;
               col_not_null = false; col_default = None };
             { col_name = "idx"; col_type = "TEXT"; col_pk = false;
               col_not_null = false; col_default = None };
             { col_name = "stat"; col_type = "INTEGER"; col_pk = false;
               col_not_null = false; col_default = None } ]);
  let stat = table t "stat1" in
  (* clear previous stats *)
  let old = ref [] in
  Btree.iter_table t.pager ~root:stat.tbl_root (fun rowid _ ->
      old := rowid :: !old;
      true);
  List.iter (fun r -> ignore (Btree.delete_table t.pager ~root:stat.tbl_root r)) !old;
  let seq = ref 0L in
  let add tbl idx count =
    seq := Int64.add !seq 1L;
    Btree.insert_table t.pager ~root:stat.tbl_root ~rowid:!seq
      (Record.encode [ Value.Text tbl; idx; Value.Int (Int64.of_int count) ])
  in
  Hashtbl.iter
    (fun name ti ->
      if name <> "stat1" then begin
        let count = Btree.count_table t.pager ~root:ti.tbl_root in
        add name Value.Null count;
        List.iter
          (fun ii ->
            let n = ref 0 in
            Btree.iter_index t.pager ~root:ii.idx_root (fun _ ->
                incr n;
                true);
            add name (Value.Text ii.idx_name) !n)
          (indexes_of t name)
      end)
    t.tables;
  empty_result

(* VACUUM: rebuild every tree compactly. *)
let do_vacuum t =
  Hashtbl.iter
    (fun _ ti ->
      let entries = ref [] in
      Btree.iter_table t.pager ~root:ti.tbl_root (fun r p ->
          entries := (r, p) :: !entries;
          true);
      let old_pages = Btree.pages t.pager ~root:ti.tbl_root in
      let fresh = Btree.create t.pager Btree.Table in
      List.iter
        (fun (r, p) -> Btree.insert_table t.pager ~root:fresh ~rowid:r p)
        (List.rev !entries);
      List.iter (fun p -> Pager.free t.pager p) old_pages;
      ti.tbl_root <- fresh)
    t.tables;
  Hashtbl.iter
    (fun _ ii ->
      let keys = ref [] in
      Btree.iter_index t.pager ~root:ii.idx_root (fun k ->
          keys := k :: !keys;
          true);
      let old_pages = Btree.pages t.pager ~root:ii.idx_root in
      let fresh = Btree.create t.pager Btree.Index in
      List.iter (fun k -> Btree.insert_index t.pager ~root:fresh k) (List.rev !keys);
      List.iter (fun p -> Pager.free t.pager p) old_pages;
      ii.idx_root <- fresh)
    t.indexes;
  save_catalog t;
  empty_result

(* --- PRAGMA --- *)

let do_pragma t name value =
  match (name, value) with
  | "cache_size", Some v ->
      Pager.set_cache_pages t.pager (Int64.to_int (Value.to_int64 v));
      empty_result
  | "cache_size", None ->
      { columns = [ "cache_size" ]; rows = [ [ Value.Int 0L ] ]; affected = 0 }
  | "page_count", None ->
      { columns = [ "page_count" ];
        rows = [ [ Value.Int (Int64.of_int (Pager.n_pages t.pager)) ] ];
        affected = 0 }
  | "page_size", None ->
      { columns = [ "page_size" ];
        rows = [ [ Value.Int (Int64.of_int Pager.page_size) ] ];
        affected = 0 }
  | _ -> empty_result  (* unknown pragmas are silently ignored, as SQLite *)

(* --- statement dispatch --- *)

let exec_stmt t stmt =
  match stmt with
  | Select s -> do_select t s
  | Insert { ins_table; ins_columns; ins_rows } ->
      in_auto_txn t (fun () -> do_insert t ~ins_table ~ins_columns ~ins_rows)
  | Update { upd_table; upd_sets; upd_where } ->
      in_auto_txn t (fun () -> do_update t ~upd_table ~upd_sets ~upd_where)
  | Delete { del_table; del_where } ->
      in_auto_txn t (fun () -> do_delete t ~del_table ~del_where)
  | Create_table { ct_name; ct_if_not_exists; ct_columns } ->
      in_auto_txn t (fun () -> do_create_table t ~ct_name ~ct_if_not_exists ~ct_columns)
  | Create_index { ci_name; ci_table; ci_columns; ci_unique; ci_if_not_exists } ->
      in_auto_txn t (fun () ->
          do_create_index t ~ci_name ~ci_table ~ci_columns ~ci_unique ~ci_if_not_exists)
  | Drop_table { dt_name; dt_if_exists } ->
      in_auto_txn t (fun () -> do_drop_table t ~dt_name ~dt_if_exists)
  | Drop_index { di_name; di_if_exists } ->
      in_auto_txn t (fun () -> do_drop_index t ~di_name ~di_if_exists)
  | Begin ->
      if t.explicit_txn then fail "already in a transaction";
      Pager.begin_txn t.pager;
      t.explicit_txn <- true;
      empty_result
  | Commit ->
      if not t.explicit_txn then fail "no transaction is active";
      Pager.commit t.pager;
      t.explicit_txn <- false;
      empty_result
  | Rollback ->
      if not t.explicit_txn then fail "no transaction is active";
      Pager.rollback t.pager;
      t.explicit_txn <- false;
      (* in-memory catalog may be stale after rollback *)
      Hashtbl.reset t.tables;
      Hashtbl.reset t.indexes;
      load_catalog t;
      empty_result
  | Pragma (name, v) -> do_pragma t name v
  | Analyze -> in_auto_txn t (fun () -> do_analyze t)
  | Vacuum -> in_auto_txn t (fun () -> do_vacuum t)

let exec t sql =
  let stmts = Parser.parse sql in
  List.fold_left (fun _ stmt -> exec_stmt t stmt) empty_result stmts

let query t sql = (exec t sql).rows

let query_one t sql =
  match query t sql with
  | [ v :: _ ] -> v
  | [] -> fail "query returned no rows"
  | _ -> fail "query returned more than one value"

let last_insert_rowid t = t.last_rowid
