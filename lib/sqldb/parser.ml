(* Recursive-descent SQL parser over Token.t. *)

open Sql_ast

exception Error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

type state = { mutable toks : Token.t list }

let peek st = match st.toks with t :: _ -> t | [] -> Token.Eof

let advance st =
  match st.toks with _ :: rest -> st.toks <- rest | [] -> ()

let next st =
  let t = peek st in
  advance st;
  t

let describe = function
  | Token.Ident s -> Printf.sprintf "identifier %S" s
  | Token.Keyword k -> k
  | Token.Int_lit v -> Int64.to_string v
  | Token.Float_lit f -> string_of_float f
  | Token.String_lit s -> Printf.sprintf "%S" s
  | Token.Blob_lit _ -> "blob literal"
  | Token.Punct p -> Printf.sprintf "%S" p
  | Token.Eof -> "end of input"

let expect_kw st kw =
  match next st with
  | Token.Keyword k when k = kw -> ()
  | t -> fail "expected %s, got %s" kw (describe t)

let expect_punct st p =
  match next st with
  | Token.Punct q when q = p -> ()
  | t -> fail "expected %S, got %s" p (describe t)

let accept_kw st kw =
  match peek st with
  | Token.Keyword k when k = kw ->
      advance st;
      true
  | _ -> false

let accept_punct st p =
  match peek st with
  | Token.Punct q when q = p ->
      advance st;
      true
  | _ -> false

let ident st =
  match next st with
  | Token.Ident s -> s
  (* allow non-reserved keywords used as identifiers where unambiguous *)
  | Token.Keyword k -> String.lowercase_ascii k
  | t -> fail "expected identifier, got %s" (describe t)

(* --- expressions (precedence climbing) --- *)

let rec parse_expr st = parse_or st

and parse_or st =
  let lhs = ref (parse_and st) in
  while accept_kw st "OR" do
    lhs := Binop (Or, !lhs, parse_and st)
  done;
  !lhs

and parse_and st =
  let lhs = ref (parse_not st) in
  while accept_kw st "AND" do
    lhs := Binop (And, !lhs, parse_not st)
  done;
  !lhs

and parse_not st =
  if accept_kw st "NOT" then Not (parse_not st) else parse_predicate st

and parse_predicate st =
  let lhs = parse_cmp st in
  match peek st with
  | Token.Keyword "IS" ->
      advance st;
      let negated = accept_kw st "NOT" in
      expect_kw st "NULL";
      Is_null (lhs, not negated)
  | Token.Keyword "BETWEEN" ->
      advance st;
      let lo = parse_cmp st in
      expect_kw st "AND";
      let hi = parse_cmp st in
      Between (lhs, lo, hi)
  | Token.Keyword "NOT" ->
      advance st;
      if accept_kw st "IN" then Not (parse_in st lhs)
      else if accept_kw st "BETWEEN" then begin
        let lo = parse_cmp st in
        expect_kw st "AND";
        let hi = parse_cmp st in
        Not (Between (lhs, lo, hi))
      end
      else if accept_kw st "LIKE" then Not (Like (lhs, parse_cmp st))
      else fail "expected IN/BETWEEN/LIKE after NOT"
  | Token.Keyword "IN" ->
      advance st;
      parse_in st lhs
  | Token.Keyword "LIKE" ->
      advance st;
      Like (lhs, parse_cmp st)
  | _ -> lhs

and parse_in st lhs =
  expect_punct st "(";
  let items = ref [] in
  if not (accept_punct st ")") then begin
    items := [ parse_expr st ];
    while accept_punct st "," do
      items := parse_expr st :: !items
    done;
    expect_punct st ")"
  end;
  In_list (lhs, List.rev !items)

and parse_cmp st =
  let lhs = ref (parse_additive st) in
  let rec go () =
    match peek st with
    | Token.Punct "=" -> advance st; lhs := Binop (Eq, !lhs, parse_additive st); go ()
    | Token.Punct ("!=" | "<>") -> advance st; lhs := Binop (Ne, !lhs, parse_additive st); go ()
    | Token.Punct "<" -> advance st; lhs := Binop (Lt, !lhs, parse_additive st); go ()
    | Token.Punct "<=" -> advance st; lhs := Binop (Le, !lhs, parse_additive st); go ()
    | Token.Punct ">" -> advance st; lhs := Binop (Gt, !lhs, parse_additive st); go ()
    | Token.Punct ">=" -> advance st; lhs := Binop (Ge, !lhs, parse_additive st); go ()
    | _ -> ()
  in
  go ();
  !lhs

and parse_additive st =
  let lhs = ref (parse_multiplicative st) in
  let rec go () =
    match peek st with
    | Token.Punct "+" -> advance st; lhs := Binop (Add, !lhs, parse_multiplicative st); go ()
    | Token.Punct "-" -> advance st; lhs := Binop (Sub, !lhs, parse_multiplicative st); go ()
    | Token.Punct "||" -> advance st; lhs := Binop (Concat, !lhs, parse_multiplicative st); go ()
    | _ -> ()
  in
  go ();
  !lhs

and parse_multiplicative st =
  let lhs = ref (parse_unary st) in
  let rec go () =
    match peek st with
    | Token.Punct "*" -> advance st; lhs := Binop (Mul, !lhs, parse_unary st); go ()
    | Token.Punct "/" -> advance st; lhs := Binop (Div, !lhs, parse_unary st); go ()
    | Token.Punct "%" -> advance st; lhs := Binop (Mod, !lhs, parse_unary st); go ()
    | _ -> ()
  in
  go ();
  !lhs

and parse_unary st =
  if accept_punct st "-" then Neg (parse_unary st)
  else if accept_punct st "+" then parse_unary st
  else parse_atom st

and parse_atom st =
  match next st with
  | Token.Int_lit v -> Lit (Value.Int v)
  | Token.Float_lit f -> Lit (Value.Real f)
  | Token.String_lit s -> Lit (Value.Text s)
  | Token.Blob_lit s -> Lit (Value.Blob s)
  | Token.Keyword "NULL" -> Lit Value.Null
  | Token.Keyword "CASE" -> parse_case st
  | Token.Keyword "CAST" ->
      expect_punct st "(";
      let e = parse_expr st in
      expect_kw st "AS";
      let ty =
        match next st with
        | Token.Keyword k -> k
        | Token.Ident s -> String.uppercase_ascii s
        | t -> fail "expected type name, got %s" (describe t)
      in
      expect_punct st ")";
      Cast (e, ty)
  | Token.Punct "(" ->
      let e = parse_expr st in
      expect_punct st ")";
      e
  | Token.Punct "*" -> Star
  | Token.Ident name -> parse_postfix_ident st name
  | Token.Keyword ("LIKE" | "KEY" as k) -> parse_postfix_ident st (String.lowercase_ascii k)
  | t -> fail "unexpected %s in expression" (describe t)

and parse_postfix_ident st name =
  if accept_punct st "(" then begin
    (* function call; the count-star form is allowed *)
    let args = ref [] in
    let distinct = accept_kw st "DISTINCT" in
    ignore distinct;
    if not (accept_punct st ")") then begin
      args := [ parse_expr st ];
      while accept_punct st "," do
        args := parse_expr st :: !args
      done;
      expect_punct st ")"
    end;
    Call (String.lowercase_ascii name, List.rev !args)
  end
  else if accept_punct st "." then begin
    let col = ident st in
    Column (Some name, col)
  end
  else Column (None, name)

and parse_case st =
  let arms = ref [] in
  let rec arms_loop () =
    if accept_kw st "WHEN" then begin
      let c = parse_expr st in
      expect_kw st "THEN";
      let v = parse_expr st in
      arms := (c, v) :: !arms;
      arms_loop ()
    end
  in
  arms_loop ();
  let else_ = if accept_kw st "ELSE" then Some (parse_expr st) else None in
  expect_kw st "END";
  Case (List.rev !arms, else_)

(* --- statements --- *)

let parse_order_items st =
  let item () =
    let e = parse_expr st in
    let desc = if accept_kw st "DESC" then true else (ignore (accept_kw st "ASC"); false) in
    { ord_expr = e; ord_desc = desc }
  in
  let items = ref [ item () ] in
  while accept_punct st "," do
    items := item () :: !items
  done;
  List.rev !items

let parse_select st =
  let distinct = accept_kw st "DISTINCT" in
  let sel_expr () =
    let e = parse_expr st in
    let alias =
      if accept_kw st "AS" then Some (ident st)
      else
        match peek st with
        | Token.Ident a ->
            advance st;
            Some a
        | _ -> None
    in
    (e, alias)
  in
  let exprs = ref [ sel_expr () ] in
  while accept_punct st "," do
    exprs := sel_expr () :: !exprs
  done;
  let from, joins =
    if accept_kw st "FROM" then begin
      let tbl = ident st in
      let alias =
        match peek st with
        | Token.Ident a ->
            advance st;
            Some a
        | _ -> None
      in
      let joins = ref [] in
      let rec join_loop () =
        let is_join =
          if accept_kw st "JOIN" then true
          else if accept_kw st "INNER" then begin
            expect_kw st "JOIN";
            true
          end
          else false
        in
        if is_join then begin
          let jt = ident st in
          let jalias =
            match peek st with
            | Token.Ident a ->
                advance st;
                Some a
            | _ -> None
          in
          let on = if accept_kw st "ON" then Some (parse_expr st) else None in
          joins := { jt_table = jt; jt_alias = jalias; jt_on = on } :: !joins;
          join_loop ()
        end
      in
      join_loop ();
      (Some (tbl, alias), List.rev !joins)
    end
    else (None, [])
  in
  let where = if accept_kw st "WHERE" then Some (parse_expr st) else None in
  let group =
    if accept_kw st "GROUP" then begin
      expect_kw st "BY";
      let es = ref [ parse_expr st ] in
      while accept_punct st "," do
        es := parse_expr st :: !es
      done;
      List.rev !es
    end
    else []
  in
  let having = if accept_kw st "HAVING" then Some (parse_expr st) else None in
  let order =
    if accept_kw st "ORDER" then begin
      expect_kw st "BY";
      parse_order_items st
    end
    else []
  in
  let limit = if accept_kw st "LIMIT" then Some (parse_expr st) else None in
  let offset = if accept_kw st "OFFSET" then Some (parse_expr st) else None in
  {
    sel_exprs = List.rev !exprs;
    sel_distinct = distinct;
    sel_from = from;
    sel_joins = joins;
    sel_where = where;
    sel_group = group;
    sel_having = having;
    sel_order = order;
    sel_limit = limit;
    sel_offset = offset;
  }

let parse_column_def st =
  let col_name = ident st in
  let col_type =
    match peek st with
    | Token.Keyword ("INTEGER" | "INT") ->
        advance st;
        "INTEGER"
    | Token.Keyword (("TEXT" | "REAL" | "BLOB") as k) ->
        advance st;
        k
    | Token.Ident ty ->
        advance st;
        String.uppercase_ascii ty
    | _ -> ""
  in
  let pk = ref false and not_null = ref false and default = ref None in
  let rec constraints () =
    if accept_kw st "PRIMARY" then begin
      expect_kw st "KEY";
      ignore (accept_kw st "AUTOINCREMENT");
      pk := true;
      constraints ()
    end
    else if accept_kw st "NOT" then begin
      expect_kw st "NULL";
      not_null := true;
      constraints ()
    end
    else if accept_kw st "DEFAULT" then begin
      default := Some (parse_unary st);
      constraints ()
    end
    else if accept_kw st "UNIQUE" then constraints ()
  in
  constraints ();
  {
    col_name;
    col_type;
    col_pk = !pk;
    col_not_null = !not_null;
    col_default = !default;
  }

let rec parse_stmt st =
  match next st with
  | Token.Keyword "EXPLAIN" ->
      (* EXPLAIN [ANALYZE] <stmt>: the prefix applies to exactly one
         statement; nesting is rejected at execution, not here. A bare
         "EXPLAIN ANALYZE" (nothing after the flag) explains the ANALYZE
         statement itself. *)
      let analyze = accept_kw st "ANALYZE" in
      if analyze && (peek st = Token.Eof || peek st = Token.Punct ";") then
        Explain { ex_analyze = false; ex_stmt = Analyze }
      else Explain { ex_analyze = analyze; ex_stmt = parse_stmt st }
  | Token.Keyword "SELECT" -> Select (parse_select st)
  | Token.Keyword "INSERT" ->
      expect_kw st "INTO";
      let tbl = ident st in
      let cols =
        if accept_punct st "(" then begin
          let cs = ref [ ident st ] in
          while accept_punct st "," do
            cs := ident st :: !cs
          done;
          expect_punct st ")";
          List.rev !cs
        end
        else []
      in
      expect_kw st "VALUES";
      let row () =
        expect_punct st "(";
        let es = ref [ parse_expr st ] in
        while accept_punct st "," do
          es := parse_expr st :: !es
        done;
        expect_punct st ")";
        List.rev !es
      in
      let rows = ref [ row () ] in
      while accept_punct st "," do
        rows := row () :: !rows
      done;
      Insert { ins_table = tbl; ins_columns = cols; ins_rows = List.rev !rows }
  | Token.Keyword "UPDATE" ->
      let tbl = ident st in
      expect_kw st "SET";
      let set () =
        let c = ident st in
        expect_punct st "=";
        (c, parse_expr st)
      in
      let sets = ref [ set () ] in
      while accept_punct st "," do
        sets := set () :: !sets
      done;
      let where = if accept_kw st "WHERE" then Some (parse_expr st) else None in
      Update { upd_table = tbl; upd_sets = List.rev !sets; upd_where = where }
  | Token.Keyword "DELETE" ->
      expect_kw st "FROM";
      let tbl = ident st in
      let where = if accept_kw st "WHERE" then Some (parse_expr st) else None in
      Delete { del_table = tbl; del_where = where }
  | Token.Keyword "CREATE" ->
      let unique = accept_kw st "UNIQUE" in
      if accept_kw st "TABLE" then begin
        let ine = accept_kw st "IF" in
        if ine then begin
          expect_kw st "NOT";
          expect_kw st "EXISTS"
        end;
        let name = ident st in
        expect_punct st "(";
        let cols = ref [ parse_column_def st ] in
        while accept_punct st "," do
          (* table-level PRIMARY KEY(...) clause *)
          if accept_kw st "PRIMARY" then begin
            expect_kw st "KEY";
            expect_punct st "(";
            let pk_col = ident st in
            expect_punct st ")";
            cols :=
              List.map
                (fun c -> if c.col_name = pk_col then { c with col_pk = true } else c)
                !cols
          end
          else cols := parse_column_def st :: !cols
        done;
        expect_punct st ")";
        Create_table { ct_name = name; ct_if_not_exists = ine; ct_columns = List.rev !cols }
      end
      else begin
        expect_kw st "INDEX";
        let ine = accept_kw st "IF" in
        if ine then begin
          expect_kw st "NOT";
          expect_kw st "EXISTS"
        end;
        let name = ident st in
        expect_kw st "ON";
        let tbl = ident st in
        expect_punct st "(";
        let cs = ref [ ident st ] in
        while accept_punct st "," do
          cs := ident st :: !cs
        done;
        expect_punct st ")";
        Create_index
          {
            ci_name = name;
            ci_table = tbl;
            ci_columns = List.rev !cs;
            ci_unique = unique;
            ci_if_not_exists = ine;
          }
      end
  | Token.Keyword "DROP" ->
      if accept_kw st "TABLE" then begin
        let ie = accept_kw st "IF" in
        if ie then expect_kw st "EXISTS";
        Drop_table { dt_name = ident st; dt_if_exists = ie }
      end
      else begin
        expect_kw st "INDEX";
        let ie = accept_kw st "IF" in
        if ie then expect_kw st "EXISTS";
        Drop_index { di_name = ident st; di_if_exists = ie }
      end
  | Token.Keyword "BEGIN" ->
      ignore (accept_kw st "TRANSACTION");
      Begin
  | Token.Keyword "COMMIT" -> Commit
  | Token.Keyword "ROLLBACK" -> Rollback
  | Token.Keyword "PRAGMA" ->
      let name = ident st in
      let v =
        if accept_punct st "=" then
          match next st with
          | Token.Int_lit v -> Some (Value.Int v)
          | Token.Float_lit f -> Some (Value.Real f)
          | Token.String_lit s | Token.Ident s -> Some (Value.Text s)
          | t -> fail "bad pragma value %s" (describe t)
        else None
      in
      Pragma (String.lowercase_ascii name, v)
  | Token.Keyword "ANALYZE" -> Analyze
  | Token.Keyword "VACUUM" -> Vacuum
  | t -> fail "expected statement, got %s" (describe t)

let parse sql =
  let st = { toks = Token.tokenize sql } in
  let stmts = ref [] in
  let rec go () =
    match peek st with
    | Token.Eof -> ()
    | Token.Punct ";" ->
        advance st;
        go ()
    | _ ->
        stmts := parse_stmt st :: !stmts;
        (match peek st with
        | Token.Punct ";" | Token.Eof -> ()
        | t -> fail "unexpected %s after statement" (describe t));
        go ()
  in
  go ();
  List.rev !stmts

let parse_one sql =
  match parse sql with
  | [ s ] -> s
  | [] -> fail "empty statement"
  | _ -> fail "expected a single statement"
