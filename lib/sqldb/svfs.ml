(* Storage VFS: the seam between the database and its storage medium,
   mirroring SQLite's VFS layer (§V-C uses test_demovfs over WASI). The
   pager is the only client. Implementations provided elsewhere: host
   files, WASI files, and IPFS protected files (in the twine library). *)

type file = {
  v_read : pos:int -> len:int -> string;
      (** short read at EOF; absent bytes read as "" *)
  v_write : pos:int -> string -> unit;
  v_truncate : int -> unit;
  v_size : unit -> int;
  v_sync : unit -> unit;
  v_close : unit -> unit;
}

type t = {
  v_open : string -> file;
  v_delete : string -> unit;
  v_exists : string -> bool;
}

(* In-memory implementation (also the ":memory:" database backend). *)
let memory () =
  let tbl : (string, Bytes.t ref * int ref) Hashtbl.t = Hashtbl.create 4 in
  let get path =
    match Hashtbl.find_opt tbl path with
    | Some f -> f
    | None ->
        let f = (ref (Bytes.create 4096), ref 0) in
        Hashtbl.replace tbl path f;
        f
  in
  {
    v_open =
      (fun path ->
        let data, len = get path in
        let ensure n =
          if n > Bytes.length !data then begin
            let grown = Bytes.make (max n (2 * Bytes.length !data)) '\000' in
            Bytes.blit !data 0 grown 0 !len;
            data := grown
          end;
          if n > !len then Bytes.fill !data !len (n - !len) '\000'
        in
        {
          v_read =
            (fun ~pos ~len:l ->
              if pos >= !len then ""
              else Bytes.sub_string !data pos (min l (!len - pos)));
          v_write =
            (fun ~pos s ->
              ensure (pos + String.length s);
              Bytes.blit_string s 0 !data pos (String.length s);
              if pos + String.length s > !len then len := pos + String.length s);
          v_truncate = (fun n -> if n < !len then len := n);
          v_size = (fun () -> !len);
          v_sync = (fun () -> ());
          v_close = (fun () -> ());
        });
    v_delete = (fun path -> Hashtbl.remove tbl path);
    v_exists = (fun path -> Hashtbl.mem tbl path);
  }

(* Host file system implementation (plain, unprotected files). *)
let os root =
  if not (Sys.file_exists root) then Sys.mkdir root 0o755;
  let path_of name = Filename.concat root name in
  {
    v_open =
      (fun name ->
        let path = path_of name in
        let fd =
          Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644
        in
        {
          v_read =
            (fun ~pos ~len ->
              ignore (Unix.lseek fd pos Unix.SEEK_SET);
              let buf = Bytes.create len in
              let rec go off =
                if off >= len then len
                else
                  let n = Unix.read fd buf off (len - off) in
                  if n = 0 then off else go (off + n)
              in
              let got = go 0 in
              Bytes.sub_string buf 0 got);
          v_write =
            (fun ~pos s ->
              ignore (Unix.lseek fd pos Unix.SEEK_SET);
              let b = Bytes.unsafe_of_string s in
              let rec go off =
                if off < Bytes.length b then
                  go (off + Unix.write fd b off (Bytes.length b - off))
              in
              go 0);
          v_truncate = (fun n -> Unix.ftruncate fd n);
          v_size = (fun () -> (Unix.fstat fd).Unix.st_size);
          v_sync = (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ());
          v_close = (fun () -> try Unix.close fd with Unix.Unix_error _ -> ());
        });
    v_delete = (fun name -> try Sys.remove (path_of name) with Sys_error _ -> ());
    v_exists = (fun name -> Sys.file_exists (path_of name));
  }

(* Crash-exploration wrapper: records every mutation into a crash-point
   op log (reads are not logged) and exposes the VFS-level fault sites
   ["svfs.write"] and ["svfs.sync"]. A [Crash] injection at either site
   models power loss at that operation; [Fail] a transient I/O error. *)
let recording log inner =
  let open Twine_sim in
  let consult site what =
    match Fault.consult site with
    | None | Some (Fault.Delay _) -> ()
    | Some Fault.Fail -> raise (Fault.Transient (site ^ " " ^ what))
    | Some (Fault.Crash | Fault.Torn _ | Fault.Corrupt | Fault.Drop) ->
        raise (Fault.Crashed (site ^ " " ^ what))
  in
  {
    v_open =
      (fun path ->
        let f = inner.v_open path in
        {
          v_read = f.v_read;
          v_write =
            (fun ~pos data ->
              consult "svfs.write" path;
              Crashpoint.record log (Crashpoint.Write { file = path; pos; data });
              f.v_write ~pos data);
          v_truncate =
            (fun n ->
              consult "svfs.write" path;
              Crashpoint.record log (Crashpoint.Truncate { file = path; size = n });
              f.v_truncate n);
          v_size = f.v_size;
          v_sync =
            (fun () ->
              consult "svfs.sync" path;
              Crashpoint.record log (Crashpoint.Sync { file = path });
              f.v_sync ());
          v_close = f.v_close;
        });
    v_delete =
      (fun path ->
        consult "svfs.write" path;
        Crashpoint.record log (Crashpoint.Delete { file = path });
        inner.v_delete path);
    v_exists = inner.v_exists;
  }
