(* Planner layer: WHERE-clause analysis into an access path (rowid
   range, single-column index equality/range, or full scan), the
   plan-choice trace event, and row estimates from the ANALYZE
   statistics cache ([Catalog.stats]).

   Constant folding is delegated to the executor through the [const]
   callback so this layer stays free of expression evaluation. *)

open Sql_ast

type plan =
  | Full_scan
  | Rowid_range of int64 option * int64 option  (* inclusive bounds *)
  | Index_range of Catalog.index_info * Value.t list * Value.t option * Value.t option
      (* equality prefix, then optional lo/hi bound on the next column *)

(* Why the access path was (or was not) chosen — carried into the
   [sqldb.plan] trace event so silent plan flips show up in Perfetto
   and in counter diffs. *)
type reason =
  | No_where  (* nothing to constrain the scan with *)
  | Rowid_bounds  (* rowid / INTEGER PRIMARY KEY constraints found *)
  | Index_eq  (* single-column index equality *)
  | Index_bounds  (* index range (BETWEEN / >=) *)
  | No_usable_path  (* WHERE present but nothing indexable: fallback *)
  | Join_inner  (* non-driving table of a join: always scanned *)

let reason_label = function
  | No_where -> "no_where"
  | Rowid_bounds -> "rowid_bounds"
  | Index_eq -> "index_eq"
  | Index_bounds -> "index_bounds"
  | No_usable_path -> "no_usable_path"
  | Join_inner -> "join_inner"

let reason_code = function
  | No_where -> 0
  | Rowid_bounds -> 1
  | Index_eq -> 2
  | Index_bounds -> 3
  | No_usable_path -> 4
  | Join_inner -> 5

let path_label = function
  | Full_scan -> "full_scan"
  | Rowid_range _ -> "rowid_range"
  | Index_range _ -> "index_range"

let path_code = function
  | Full_scan -> 0
  | Rowid_range _ -> 1
  | Index_range _ -> 2

(* Emit the plan decision: a counter per (path) plus an instant event
   carrying the coded path/reason, so a query whose access path degrades
   (e.g. an index pick falling back to a full scan) is visible in the
   flight recorder and in counter-level diffs. *)
let record_plan t (ti : Catalog.table_info) plan reason =
  match t.Catalog.obs with
  | None -> ()
  | Some o ->
      Twine_obs.Obs.inc o (Printf.sprintf "sqldb.plan.%s" (path_label plan));
      (if reason = No_usable_path then
         Twine_obs.Obs.inc o "sqldb.plan.fallback");
      Twine_obs.Obs.emit o ~cat:"sqldb"
        ~args:
          [ ("path", path_code plan); ("reason", reason_code reason);
            ("table_root", ti.Catalog.tbl_root) ]
        "sqldb.plan"

let find_index t table_name col =
  let col = String.lowercase_ascii col in
  Hashtbl.fold
    (fun _ (ii : Catalog.index_info) acc ->
      if acc = None
         && String.lowercase_ascii ii.idx_table = String.lowercase_ascii table_name
         && List.length ii.idx_columns >= 1
         && String.lowercase_ascii (List.hd ii.idx_columns) = col
      then Some ii
      else acc)
    t.Catalog.indexes None

(* Analyse a WHERE clause into a plan for one table. Only top-level AND
   conjuncts are considered. [const] evaluates column-free expressions
   (None when impure or column-dependent). *)
let plan_for t (ti : Catalog.table_info) ~const where =
  let rec conjuncts = function
    | Some (Binop (And, a, b)) -> conjuncts (Some a) @ conjuncts (Some b)
    | Some e -> [ e ]
    | None -> []
  in
  let cs = conjuncts where in
  (* rowid constraints *)
  let lo = ref None and hi = ref None in
  let tighten_lo v = match !lo with Some x when Int64.compare x v >= 0 -> () | _ -> lo := Some v in
  let tighten_hi v = match !hi with Some x when Int64.compare x v <= 0 -> () | _ -> hi := Some v in
  let rowid_of e = match const e with Some v -> Some (Value.to_int64 v) | None -> None in
  List.iter
    (fun c ->
      match c with
      | Binop (Eq, Column (_, n), e) when Catalog.is_rowid_column ti n -> (
          match rowid_of e with
          | Some v -> tighten_lo v; tighten_hi v
          | None -> ())
      | Binop (Eq, e, Column (_, n)) when Catalog.is_rowid_column ti n -> (
          match rowid_of e with
          | Some v -> tighten_lo v; tighten_hi v
          | None -> ())
      | Binop (Ge, Column (_, n), e) when Catalog.is_rowid_column ti n -> (
          match rowid_of e with Some v -> tighten_lo v | None -> ())
      | Binop (Gt, Column (_, n), e) when Catalog.is_rowid_column ti n -> (
          match rowid_of e with Some v -> tighten_lo (Int64.add v 1L) | None -> ())
      | Binop (Le, Column (_, n), e) when Catalog.is_rowid_column ti n -> (
          match rowid_of e with Some v -> tighten_hi v | None -> ())
      | Binop (Lt, Column (_, n), e) when Catalog.is_rowid_column ti n -> (
          match rowid_of e with Some v -> tighten_hi (Int64.sub v 1L) | None -> ())
      | Between (Column (_, n), a, b) when Catalog.is_rowid_column ti n -> (
          match (rowid_of a, rowid_of b) with
          | Some a, Some b -> tighten_lo a; tighten_hi b
          | _ -> ())
      | _ -> ())
    cs;
  if !lo <> None || !hi <> None then (Rowid_range (!lo, !hi), Rowid_bounds)
  else begin
    (* single-column index equality or range *)
    let pick =
      List.find_map
        (fun c ->
          match c with
          | Binop (Eq, Column (_, n), e) | Binop (Eq, e, Column (_, n)) -> (
              match (find_index t ti.Catalog.tbl_name n, const e) with
              | Some ii, Some v -> Some (Index_range (ii, [ v ], None, None), Index_eq)
              | _ -> None)
          | Between (Column (_, n), a, b) -> (
              match (find_index t ti.Catalog.tbl_name n, const a, const b) with
              | Some ii, Some lo, Some hi ->
                  Some (Index_range (ii, [], Some lo, Some hi), Index_bounds)
              | _ -> None)
          | Binop (Ge, Column (_, n), e) -> (
              match (find_index t ti.Catalog.tbl_name n, const e) with
              | Some ii, Some v -> Some (Index_range (ii, [], Some v, None), Index_bounds)
              | _ -> None)
          | _ -> None)
        cs
    in
    match pick with
    | Some (p, r) -> (p, r)
    | None -> (Full_scan, if cs = [] then No_where else No_usable_path)
  end

(* --- row estimates from the statistics cache --- *)

(* Buckets intersecting [lo, hi] contribute their full count: a small,
   deterministic overestimate at the range edges (at most one bucket's
   depth per side), which is all EXPLAIN needs. *)
let hist_range_count (cs : Catalog.col_stats) lo hi =
  Array.fold_left
    (fun acc (blo, bhi, cnt) ->
      let below = match hi with Some h -> Value.compare blo h > 0 | None -> false in
      let above = match lo with Some l -> Value.compare bhi l < 0 | None -> false in
      if below || above then acc else acc + cnt)
    0 cs.Catalog.cs_hist

let eq_estimate (ts : Catalog.tbl_stats) (cs : Catalog.col_stats) =
  let non_null = max 0 (ts.Catalog.ts_rows - cs.Catalog.cs_nulls) in
  if cs.Catalog.cs_distinct <= 0 then non_null
  else (non_null + cs.Catalog.cs_distinct - 1) / cs.Catalog.cs_distinct

(* Estimated rows produced by an access path, [None] when the table has
   never been ANALYZEd. *)
let estimate t (ti : Catalog.table_info) plan =
  match Catalog.stats_for t ti.Catalog.tbl_name with
  | None -> None
  | Some ts -> (
      match plan with
      | Full_scan -> Some ts.Catalog.ts_rows
      | Rowid_range (lo, hi) -> (
          match (lo, hi) with
          | Some l, Some h when Int64.compare l h = 0 -> Some (min 1 ts.Catalog.ts_rows)
          | _ -> (
              let by_hist =
                match ti.Catalog.tbl_rowid_col with
                | None -> None
                | Some pk -> (
                    match Catalog.col_stats_for t ti.Catalog.tbl_name pk with
                    | Some cs when Array.length cs.Catalog.cs_hist > 0 ->
                        Some
                          (hist_range_count cs
                             (Option.map (fun v -> Value.Int v) lo)
                             (Option.map (fun v -> Value.Int v) hi))
                    | _ -> None)
              in
              match by_hist with
              | Some n -> Some n
              | None -> Some ts.Catalog.ts_rows))
      | Index_range (ii, prefix, lo, hi) -> (
          let col = List.hd ii.Catalog.idx_columns in
          match Catalog.col_stats_for t ti.Catalog.tbl_name col with
          | None -> Some ts.Catalog.ts_rows
          | Some cs ->
              if prefix <> [] then Some (eq_estimate ts cs)
              else if Array.length cs.Catalog.cs_hist > 0 then
                Some (hist_range_count cs lo hi)
              else Some ts.Catalog.ts_rows))

(* Human-readable access-path description for EXPLAIN output. *)
let describe plan =
  let bound = function Some v -> Value.to_string v | None -> "" in
  match plan with
  | Full_scan -> "full scan"
  | Rowid_range (lo, hi) ->
      Printf.sprintf "rowid [%s..%s]"
        (match lo with Some v -> Int64.to_string v | None -> "")
        (match hi with Some v -> Int64.to_string v | None -> "")
  | Index_range (ii, prefix, lo, hi) ->
      if prefix <> [] then
        Printf.sprintf "index %s (%s=%s)" ii.Catalog.idx_name
          (List.hd ii.Catalog.idx_columns)
          (String.concat "," (List.map Value.to_string prefix))
      else
        Printf.sprintf "index %s (%s in [%s..%s])" ii.Catalog.idx_name
          (List.hd ii.Catalog.idx_columns) (bound lo) (bound hi)
