(** Planner layer: WHERE-clause analysis into an access path, the
    [sqldb.plan] trace event, and row estimates from the ANALYZE
    statistics cache. *)

type plan =
  | Full_scan
  | Rowid_range of int64 option * int64 option  (** inclusive bounds *)
  | Index_range of
      Catalog.index_info * Value.t list * Value.t option * Value.t option
      (** equality prefix, then optional lo/hi bound on the next column *)

(** Why the access path was (or was not) chosen — carried into the
    [sqldb.plan] trace event so silent plan flips are visible. *)
type reason =
  | No_where
  | Rowid_bounds
  | Index_eq
  | Index_bounds
  | No_usable_path
  | Join_inner

val reason_label : reason -> string
val reason_code : reason -> int
val path_label : plan -> string
val path_code : plan -> int

val record_plan : Catalog.db -> Catalog.table_info -> plan -> reason -> unit
(** Emits a [sqldb.plan.<path>] counter (plus [sqldb.plan.fallback] for
    {!No_usable_path}) and an instant [sqldb.plan] trace event carrying
    the coded path/reason — no-op without an observability registry. *)

val find_index : Catalog.db -> string -> string -> Catalog.index_info option
(** First index on the table whose leading column matches. *)

val plan_for :
  Catalog.db -> Catalog.table_info ->
  const:(Sql_ast.expr -> Value.t option) ->
  Sql_ast.expr option -> plan * reason
(** Analyse a WHERE clause into an access path for one table. Only
    top-level AND conjuncts are considered; [const] evaluates
    column-free expressions (None when impure or column-dependent). *)

val estimate : Catalog.db -> Catalog.table_info -> plan -> int option
(** Estimated rows produced by an access path; [None] when the table has
    never been ANALYZEd. *)

val describe : plan -> string
(** Human-readable access-path description for EXPLAIN output. *)
