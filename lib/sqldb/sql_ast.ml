(* SQL abstract syntax. *)

type binop =
  | Add | Sub | Mul | Div | Mod | Concat
  | Eq | Ne | Lt | Le | Gt | Ge
  | And | Or

type expr =
  | Lit of Value.t
  | Column of string option * string  (* table qualifier, name *)
  | Star  (* the star argument of count, and select lists *)
  | Binop of binop * expr * expr
  | Not of expr
  | Neg of expr
  | Is_null of expr * bool  (* IS NULL / IS NOT NULL *)
  | Between of expr * expr * expr
  | In_list of expr * expr list
  | Like of expr * expr
  | Call of string * expr list  (* functions and aggregates *)
  | Case of (expr * expr) list * expr option  (* WHEN cond THEN v ..., ELSE *)
  | Cast of expr * string

type order_item = { ord_expr : expr; ord_desc : bool }

type column_def = {
  col_name : string;
  col_type : string;  (* INTEGER | TEXT | REAL | BLOB | "" *)
  col_pk : bool;
  col_not_null : bool;
  col_default : expr option;
}

type join = { jt_table : string; jt_alias : string option; jt_on : expr option }

type select = {
  sel_exprs : (expr * string option) list;  (* expr, alias *)
  sel_distinct : bool;
  sel_from : (string * string option) option;  (* table, alias *)
  sel_joins : join list;
  sel_where : expr option;
  sel_group : expr list;
  sel_having : expr option;
  sel_order : order_item list;
  sel_limit : expr option;
  sel_offset : expr option;
}

type stmt =
  | Select of select
  | Insert of {
      ins_table : string;
      ins_columns : string list;  (* empty = all *)
      ins_rows : expr list list;
    }
  | Update of {
      upd_table : string;
      upd_sets : (string * expr) list;
      upd_where : expr option;
    }
  | Delete of { del_table : string; del_where : expr option }
  | Create_table of {
      ct_name : string;
      ct_if_not_exists : bool;
      ct_columns : column_def list;
    }
  | Create_index of {
      ci_name : string;
      ci_table : string;
      ci_columns : string list;
      ci_unique : bool;
      ci_if_not_exists : bool;
    }
  | Drop_table of { dt_name : string; dt_if_exists : bool }
  | Drop_index of { di_name : string; di_if_exists : bool }
  | Begin
  | Commit
  | Rollback
  | Pragma of string * Value.t option
  | Analyze
  | Vacuum
  | Explain of { ex_analyze : bool; ex_stmt : stmt }
