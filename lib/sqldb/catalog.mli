(** Catalog layer: the shared database handle, schema objects and their
    (de)serialisation into the page-1 B-tree, the ANALYZE statistics
    cache, and the per-operator work-attribution substrate. *)

exception Sql_error of string

val fail : ('a, unit, string, 'b) format4 -> 'a
(** [fail fmt ...] raises {!Sql_error} with the formatted message. *)

type table_info = {
  tbl_name : string;
  mutable tbl_root : int;
  tbl_columns : Sql_ast.column_def list;
  tbl_rowid_col : string option;  (** INTEGER PRIMARY KEY alias *)
}

type index_info = {
  idx_name : string;
  idx_table : string;
  idx_columns : string list;
  idx_unique : bool;
  mutable idx_root : int;
}

(** {2 ANALYZE statistics} *)

type col_stats = {
  cs_distinct : int;  (** distinct non-NULL values *)
  cs_nulls : int;
  cs_hist : (Value.t * Value.t * int) array;
      (** equi-depth buckets (lo, hi, count) over the sorted non-NULL
          values; bounds ascending, counts summing to the non-NULL row
          count *)
}

type tbl_stats = {
  ts_rows : int;
  ts_cols : (string * col_stats) list;  (** keyed by lowercased name *)
}

val stat_table_names : string list
val is_stat_table : string -> bool

(** {2 Per-operator work attribution} *)

type attr = { mutable a_work : int }
(** The work cell of one operator: while installed as the handle's
    [sink], every {!bump} lands both in the statement total and here. *)

val new_attr : unit -> attr

type opstat = {
  os_depth : int;
  os_name : string;
  os_detail : string;
  os_est_rows : int option;
  os_rows_in : int;
  os_rows_out : int;
  os_loops : int;
  os_reads : int;
  os_writes : int;
  os_work : int;
}

type profile = {
  pr_stmt : string;
  pr_ops : opstat list;
  pr_overhead_work : int;
  pr_total_work : int;
}

type db = {
  pager : Pager.t;
  tables : (string, table_info) Hashtbl.t;
  indexes : (string, index_info) Hashtbl.t;
  mutable explicit_txn : bool;
  prng : Twine_crypto.Drbg.t;
  mutable work : int;
  mutable last_rowid : int64;
  obs : Twine_obs.Obs.t option;
  mutable sink : attr option;
  mutable stats : (string * tbl_stats) list;
  mutable profiles : profile list;
  mutable ns_hint : float;
}

val bump : db -> int -> unit
(** The single work-meter bump site: statement total plus the current
    sink's cell. *)

val record_profile : db -> profile -> unit

val profiles : db -> profile list
(** Recorded profiles, oldest first. *)

val last_profile : db -> profile option

val slice_ns : total_ns:int -> int list -> int list
(** Residue-free proportional split of [total_ns] across work shares by
    cumulative rounding: each slice non-negative, slices summing to
    [total_ns] exactly. An empty list yields an empty list; a zero work
    total puts the whole booking on the last share. *)

(** {2 Catalog persistence and schema lookups} *)

val catalog_root : int
val save_catalog : db -> unit
val load_catalog : db -> unit
val rowid_col_of : Sql_ast.column_def list -> string option

val table : db -> string -> table_info
(** @raise Sql_error when the table does not exist. *)

val columns_array : table_info -> string array
val col_index : table_info -> string -> int option
val is_rowid_column : table_info -> string -> bool
val indexes_of : db -> string -> index_info list

(** {2 Statistics cache} *)

val stats_for : db -> string -> tbl_stats option
val col_stats_for : db -> string -> string -> col_stats option
val set_stats : db -> (string * tbl_stats) list -> unit

val load_stats : db -> unit
(** Rebuild the in-memory cache from the persisted stat tables (no-op
    when the database was never ANALYZEd). *)

(** {2 Open/close} *)

val open_db :
  ?vfs:Svfs.t -> ?cache_pages:int -> ?hooks:Pager.hooks ->
  ?obs:Twine_obs.Obs.t -> string -> db

val close : db -> unit
