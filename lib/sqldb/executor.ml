(* Executor layer: expression evaluation and the instrumented operator
   tree. Every statement runs under a [profiled] wrapper that installs a
   statement-overhead work sink; each operator node switches the sink to
   its own cell while it is active, so

     statement work = sum(operator self-work) + overhead work

   holds by construction — the zero-residue conservation law the bench
   gates at tolerance 0. Operator nodes additionally carry rows-in/out,
   loop counts and pager page read/write deltas for EXPLAIN ANALYZE. *)

open Sql_ast
open Catalog

type result = { columns : string list; rows : Value.t list list; affected : int }

let empty_result = { columns = []; rows = []; affected = 0 }

(* --- row environments for expression evaluation --- *)

type binding = {
  b_name : string;  (* alias or table name *)
  b_cols : string array;
  mutable b_values : Value.t array;
  mutable b_rowid : int64;
}

type env = { bindings : binding list; aggregates : (string, Value.t) Hashtbl.t option }

let lookup_column env q name =
  let name = String.lowercase_ascii name in
  let matches b =
    let rec find i =
      if i >= Array.length b.b_cols then None
      else if String.lowercase_ascii b.b_cols.(i) = name then Some b.b_values.(i)
      else find (i + 1)
    in
    find 0
  in
  match q with
  | Some q -> (
      match List.find_opt (fun b -> String.lowercase_ascii b.b_name = String.lowercase_ascii q) env.bindings with
      | None -> fail "no such table %s" q
      | Some b -> (
          if name = "rowid" then Some (Value.Int b.b_rowid)
          else
            match matches b with
            | Some v -> Some v
            | None -> fail "no such column %s.%s" q name))
  | None -> (
      if name = "rowid" then
        match env.bindings with b :: _ -> Some (Value.Int b.b_rowid) | [] -> None
      else
        match List.find_map matches env.bindings with
        | Some v -> Some v
        | None -> None)

(* --- scalar functions --- *)

let scalar_function t name args =
  match (name, args) with
  | "length", [ Value.Text s ] -> Value.Int (Int64.of_int (String.length s))
  | "length", [ Value.Blob s ] -> Value.Int (Int64.of_int (String.length s))
  | "length", [ Value.Null ] -> Value.Null
  | "length", [ v ] -> Value.Int (Int64.of_int (String.length (Value.to_string v)))
  | "abs", [ Value.Int v ] -> Value.Int (Int64.abs v)
  | "abs", [ Value.Real v ] -> Value.Real (Float.abs v)
  | "abs", [ Value.Null ] -> Value.Null
  | "lower", [ v ] -> Value.Text (String.lowercase_ascii (Value.to_string v))
  | "upper", [ v ] -> Value.Text (String.uppercase_ascii (Value.to_string v))
  | "hex", [ Value.Blob s ] -> Value.Text (Twine_crypto.Hexcodec.encode s)
  | "typeof", [ v ] ->
      Value.Text
        (match v with
        | Value.Null -> "null"
        | Value.Int _ -> "integer"
        | Value.Real _ -> "real"
        | Value.Text _ -> "text"
        | Value.Blob _ -> "blob")
  | "random", [] ->
      Value.Int (Twine_crypto.Drbg.uint64 t.prng)
  | "randomblob", [ n ] ->
      let n = Int64.to_int (Value.to_int64 n) in
      Value.Blob (Twine_crypto.Drbg.generate t.prng (max 0 n))
  | "coalesce", args -> (
      match List.find_opt (fun v -> not (Value.is_null v)) args with
      | Some v -> v
      | None -> Value.Null)
  | "substr", [ s; start ] ->
      let str = Value.to_string s in
      let st = Int64.to_int (Value.to_int64 start) in
      let st = if st > 0 then st - 1 else max 0 (String.length str + st) in
      if st >= String.length str then Value.Text ""
      else Value.Text (String.sub str st (String.length str - st))
  | "substr", [ s; start; len ] ->
      let str = Value.to_string s in
      let st = Int64.to_int (Value.to_int64 start) in
      let st = if st > 0 then st - 1 else max 0 (String.length str + st) in
      let l = Int64.to_int (Value.to_int64 len) in
      if st >= String.length str || l <= 0 then Value.Text ""
      else Value.Text (String.sub str st (min l (String.length str - st)))
  | "min", (_ :: _ :: _ as vs) ->
      List.fold_left (fun a b -> if Value.compare a b <= 0 then a else b)
        (List.hd vs) (List.tl vs)
  | "max", (_ :: _ :: _ as vs) ->
      List.fold_left (fun a b -> if Value.compare a b >= 0 then a else b)
        (List.hd vs) (List.tl vs)
  | name, args -> fail "no such function %s/%d" name (List.length args)

let is_aggregate_name = function
  | "count" | "sum" | "avg" | "total" -> true
  | _ -> false

(* min/max with one argument are aggregates; with 2+ they are scalar *)
let expr_is_aggregate = function
  | Call (n, args) ->
      is_aggregate_name n || ((n = "min" || n = "max") && List.length args = 1)
  | _ -> false

let rec contains_aggregate e =
  expr_is_aggregate e
  ||
  match e with
  | Binop (_, a, b) -> contains_aggregate a || contains_aggregate b
  | Not a | Neg a | Is_null (a, _) | Cast (a, _) -> contains_aggregate a
  | Between (a, b, c) ->
      contains_aggregate a || contains_aggregate b || contains_aggregate c
  | In_list (a, es) -> contains_aggregate a || List.exists contains_aggregate es
  | Like (a, b) -> contains_aggregate a || contains_aggregate b
  | Call (_, es) -> List.exists contains_aggregate es
  | Case (arms, else_) ->
      List.exists (fun (c, v) -> contains_aggregate c || contains_aggregate v) arms
      || Option.fold ~none:false ~some:contains_aggregate else_
  | Lit _ | Column _ | Star -> false

let agg_key e = Format.asprintf "%d" (Hashtbl.hash e)

let rec eval t env (e : expr) : Value.t =
  bump t 1;
  match e with
  | Lit v -> v
  | Star -> fail "misplaced *"
  | Column (q, name) -> (
      match lookup_column env q name with
      | Some v -> v
      | None -> fail "no such column %s" name)
  | Binop (op, a, b) -> eval_binop t env op a b
  | Not a -> (
      match eval t env a with
      | Value.Null -> Value.Null
      | v -> Value.of_bool (not (Value.to_bool v)))
  | Neg a -> Value.sub (Value.Int 0L) (eval t env a)
  | Is_null (a, positive) ->
      let isn = Value.is_null (eval t env a) in
      Value.of_bool (if positive then isn else not isn)
  | Between (a, lo, hi) ->
      let v = eval t env a in
      let lo = eval t env lo and hi = eval t env hi in
      if Value.is_null v || Value.is_null lo || Value.is_null hi then Value.Null
      else Value.of_bool (Value.compare v lo >= 0 && Value.compare v hi <= 0)
  | In_list (a, es) ->
      let v = eval t env a in
      if Value.is_null v then Value.Null
      else Value.of_bool (List.exists (fun e -> Value.equal v (eval t env e)) es)
  | Like (a, p) -> (
      match (eval t env a, eval t env p) with
      | Value.Null, _ | _, Value.Null -> Value.Null
      | v, p -> Value.of_bool (Value.like ~pattern:(Value.to_string p) (Value.to_string v)))
  | Call (name, args) -> (
      if expr_is_aggregate e then
        match env.aggregates with
        | Some aggs -> (
            match Hashtbl.find_opt aggs (agg_key e) with
            | Some v -> v
            | None -> fail "aggregate %s used outside aggregation" name)
        | None -> fail "aggregate %s not allowed here" name
      else
        let args = List.map (eval t env) args in
        scalar_function t name args)
  | Case (arms, else_) -> (
      let rec go = function
        | [] -> ( match else_ with Some e -> eval t env e | None -> Value.Null)
        | (c, v) :: rest -> if Value.to_bool (eval t env c) then eval t env v else go rest
      in
      go arms)
  | Cast (a, ty) -> (
      let v = eval t env a in
      match String.uppercase_ascii ty with
      | "INTEGER" | "INT" -> Value.Int (Value.to_int64 v)
      | "REAL" -> (
          match Value.to_num v with
          | `Int i -> Value.Real (Int64.to_float i)
          | `Real f -> Value.Real f
          | `Null -> Value.Null)
      | "TEXT" -> ( match v with Value.Null -> Value.Null | _ -> Value.Text (Value.to_string v))
      | "BLOB" -> (
          match v with
          | Value.Null -> Value.Null
          | Value.Blob _ -> v
          | _ -> Value.Blob (Value.to_string v))
      | ty -> fail "cannot cast to %s" ty)

and eval_binop t env op a b =
  match op with
  | And ->
      let va = eval t env a in
      if (not (Value.is_null va)) && not (Value.to_bool va) then Value.of_bool false
      else begin
        let vb = eval t env b in
        if (not (Value.is_null vb)) && not (Value.to_bool vb) then Value.of_bool false
        else if Value.is_null va || Value.is_null vb then Value.Null
        else Value.of_bool true
      end
  | Or ->
      let va = eval t env a in
      if (not (Value.is_null va)) && Value.to_bool va then Value.of_bool true
      else begin
        let vb = eval t env b in
        if (not (Value.is_null vb)) && Value.to_bool vb then Value.of_bool true
        else if Value.is_null va || Value.is_null vb then Value.Null
        else Value.of_bool false
      end
  | _ ->
      let va = eval t env a and vb = eval t env b in
      (match op with
      | Add -> Value.add va vb
      | Sub -> Value.sub va vb
      | Mul -> Value.mul va vb
      | Div -> Value.div va vb
      | Mod -> Value.rem va vb
      | Concat -> Value.concat va vb
      | Eq | Ne | Lt | Le | Gt | Ge ->
          if Value.is_null va || Value.is_null vb then Value.Null
          else begin
            let c = Value.compare va vb in
            Value.of_bool
              (match op with
              | Eq -> c = 0
              | Ne -> c <> 0
              | Lt -> c < 0
              | Le -> c <= 0
              | Gt -> c > 0
              | Ge -> c >= 0
              | _ -> assert false)
          end
      | And | Or -> assert false)

let const_value t e =
  (* expressions with no column references can be evaluated up front *)
  let rec pure = function
    | Lit _ -> true
    | Column _ | Star -> false
    | Binop (_, a, b) | Like (a, b) -> pure a && pure b
    | Not a | Neg a | Is_null (a, _) | Cast (a, _) -> pure a
    | Between (a, b, c) -> pure a && pure b && pure c
    | In_list (a, es) -> pure a && List.for_all pure es
    | Call (("random" | "randomblob"), _) -> false
    | Call (_, es) -> List.for_all pure es
    | Case (arms, e) ->
        List.for_all (fun (c, v) -> pure c && pure v) arms
        && Option.fold ~none:true ~some:pure e
  in
  if pure e then Some (eval t { bindings = []; aggregates = None } e) else None

(* --- row (de)coding --- *)

(* Decode a stored record into the full column array (rowid column
   materialised from the key). *)
let decode_row t ti rowid payload =
  bump t 2;
  let stored = Array.of_list (Record.decode payload) in
  match ti.tbl_rowid_col with
  | None -> stored
  | Some pk ->
      let full = Array.make (List.length ti.tbl_columns) Value.Null in
      let si = ref 0 in
      List.iteri
        (fun i c ->
          if c.col_name = pk then full.(i) <- Value.Int rowid
          else begin
            full.(i) <- (if !si < Array.length stored then stored.(!si) else Value.Null);
            incr si
          end)
        ti.tbl_columns;
      full

let encode_row ti (values : Value.t array) =
  (* the rowid column is not stored in the payload *)
  let stored = ref [] in
  List.iteri
    (fun i c ->
      match ti.tbl_rowid_col with
      | Some pk when c.col_name = pk -> ()
      | _ -> stored := values.(i) :: !stored)
    ti.tbl_columns;
  Record.encode (List.rev !stored)

(* --- transactions --- *)

let in_auto_txn t f =
  if t.explicit_txn || Pager.in_txn t.pager then f ()
  else begin
    Pager.begin_txn t.pager;
    match f () with
    | r ->
        Pager.commit t.pager;
        r
    | exception e ->
        (try Pager.rollback t.pager with _ -> ());
        raise e
  end

(* --- operator nodes --- *)

type op = {
  o_name : string;
  o_detail : string;
  o_est : int option;
  o_attr : Catalog.attr;
  mutable o_rows_in : int;
  mutable o_rows_out : int;
  mutable o_loops : int;
  mutable o_reads : int;
  mutable o_writes : int;
  mutable o_children : op list;
}

let mk_op ?(children = []) ?est name detail =
  { o_name = name; o_detail = detail; o_est = est; o_attr = Catalog.new_attr ();
    o_rows_in = 0; o_rows_out = 0; o_loops = 0; o_reads = 0; o_writes = 0;
    o_children = children }

(* Run [f] with [op]'s cell as the work sink and account the pager page
   traffic of the window to it. Nested activations (a join's inner scan
   under the outer's window) overlap in page counts but never in work:
   the sink switch is exact, the page window is a per-operator envelope. *)
let in_op t op f =
  let prev = t.sink in
  let r0, w0, _ = Pager.stats t.pager in
  t.sink <- Some op.o_attr;
  Fun.protect
    ~finally:(fun () ->
      t.sink <- prev;
      let r1, w1, _ = Pager.stats t.pager in
      op.o_reads <- op.o_reads + (r1 - r0);
      op.o_writes <- op.o_writes + (w1 - w0))
    f

let flatten_ops root =
  let acc = ref [] in
  let rec go depth op =
    acc :=
      {
        os_depth = depth;
        os_name = op.o_name;
        os_detail = op.o_detail;
        os_est_rows = op.o_est;
        os_rows_in = op.o_rows_in;
        os_rows_out = op.o_rows_out;
        os_loops = op.o_loops;
        os_reads = op.o_reads;
        os_writes = op.o_writes;
        os_work = op.o_attr.a_work;
      }
      :: !acc;
    List.iter (go (depth + 1)) op.o_children
  in
  go 0 root;
  List.rev !acc

(* Statement wrapper: every work bump between entry and exit lands either
   in an operator cell (while one is active) or in the overhead cell, so
   the recorded profile conserves the statement's work meter delta. *)
let profiled t label f =
  let w0 = t.work in
  let overhead = Catalog.new_attr () in
  let prev = t.sink in
  t.sink <- Some overhead;
  Fun.protect
    ~finally:(fun () -> t.sink <- prev)
    (fun () ->
      let result, roots = f () in
      Catalog.record_profile t
        {
          pr_stmt = label;
          pr_ops = List.concat_map flatten_ops roots;
          pr_overhead_work = overhead.a_work;
          pr_total_work = t.work - w0;
        };
      result)

(* --- index maintenance --- *)

let index_key ii ti values rowid =
  let parts =
    List.map
      (fun col ->
        match col_index ti col with
        | Some i -> values.(i)
        | None -> fail "index %s references missing column %s" ii.idx_name col)
      ii.idx_columns
  in
  Record.encode (parts @ [ Value.Int rowid ])

let index_prefix_key prefix = Record.encode prefix

let index_insert_row t ti values rowid =
  List.iter
    (fun ii ->
      let key = index_key ii ti values rowid in
      (if ii.idx_unique then begin
         (* a row with the same column prefix must not already exist *)
         let prefix =
           List.map
             (fun col ->
               match col_index ti col with Some i -> values.(i) | None -> Value.Null)
             ii.idx_columns
         in
         let prefix_key = index_prefix_key prefix in
         let dup = ref false in
         Btree.iter_index t.pager ~root:ii.idx_root ~start:prefix_key (fun k ->
             (match Record.decode k with
             | decoded when List.length decoded = List.length prefix + 1 ->
                 let kp = List.filteri (fun i _ -> i < List.length prefix) decoded in
                 if List.for_all2 Value.equal kp prefix then dup := true
             | _ -> ());
             false);
         if !dup && not (List.exists Value.is_null prefix) then
           fail "UNIQUE constraint failed: %s" ii.idx_name
       end);
      Btree.insert_index t.pager ~root:ii.idx_root key)
    (indexes_of t ti.tbl_name)

let index_delete_row t ti values rowid =
  List.iter
    (fun ii ->
      ignore (Btree.delete_index t.pager ~root:ii.idx_root (index_key ii ti values rowid)))
    (indexes_of t ti.tbl_name)

(* --- scanning --- *)

(* Iterate (rowid, values) of a table under a plan, applying no filter. *)
let scan t ti (plan : Planner.plan) f =
  match plan with
  | Planner.Full_scan ->
      Btree.iter_table t.pager ~root:ti.tbl_root (fun rowid payload ->
          f rowid (decode_row t ti rowid payload))
  | Planner.Rowid_range (lo, hi) ->
      Btree.iter_table t.pager ~root:ti.tbl_root
        ?min:lo ?max:hi
        (fun rowid payload -> f rowid (decode_row t ti rowid payload))
  | Planner.Index_range (ii, prefix, lo, hi) ->
      let start_vals = prefix @ (match lo with Some v -> [ v ] | None -> []) in
      let start = if start_vals = [] then None else Some (index_prefix_key start_vals) in
      Btree.iter_index t.pager ~root:ii.idx_root ?start (fun key ->
          let decoded = Record.decode key in
          let n = List.length decoded in
          let rowid =
            match List.nth decoded (n - 1) with
            | Value.Int r -> r
            | _ -> raise (Pager.Corrupt "index key without rowid")
          in
          (* check the prefix still matches / range not exceeded *)
          let cols = List.filteri (fun i _ -> i < n - 1) decoded in
          let keep, continue =
            let rec check_prefix p c =
              match (p, c) with
              | [], rest -> (Some rest, true)
              | pv :: p', cv :: c' ->
                  if Value.equal pv cv then check_prefix p' c' else (None, false)
              | _, [] -> (None, false)
            in
            match check_prefix prefix cols with
            | None, _ -> (false, false)
            | Some rest, _ -> (
                match (rest, lo, hi) with
                | v :: _, _, Some hi_v ->
                    if Value.compare v hi_v > 0 then (false, false) else (true, true)
                | v :: _, Some lo_v, None ->
                    if Value.compare v lo_v < 0 then (false, true) else (true, true)
                | _ -> (true, true))
          in
          if not continue then false
          else begin
            if keep then begin
              match Btree.lookup_table t.pager ~root:ti.tbl_root rowid with
              | Some payload -> (if not (f rowid (decode_row t ti rowid payload)) then raise Btree.Stop); true
              | None -> true
            end
            else true
          end)

(* Instrumented scan + optional filter used by UPDATE/DELETE: the scan
   operator owns decode work and page traffic, the filter operator owns
   the WHERE evaluation. *)
let scan_instr t ti plan ~scan_op ?filter_op where f =
  let binding =
    { b_name = ti.tbl_name; b_cols = columns_array ti; b_values = [||]; b_rowid = 0L }
  in
  let env = { bindings = [ binding ]; aggregates = None } in
  in_op t scan_op (fun () ->
      scan_op.o_loops <- scan_op.o_loops + 1;
      scan t ti plan (fun rowid values ->
          scan_op.o_rows_out <- scan_op.o_rows_out + 1;
          binding.b_values <- values;
          binding.b_rowid <- rowid;
          let keep =
            match filter_op with
            | None -> true
            | Some fo ->
                in_op t fo (fun () ->
                    fo.o_rows_in <- fo.o_rows_in + 1;
                    let k =
                      match where with
                      | None -> true
                      | Some w -> Value.to_bool (eval t env w)
                    in
                    if k then fo.o_rows_out <- fo.o_rows_out + 1;
                    k)
          in
          if keep then f rowid values else true))

(* --- INSERT --- *)

let next_rowid t ti =
  match Btree.max_rowid t.pager ~root:ti.tbl_root with
  | Some r -> Int64.add r 1L
  | None -> 1L

let do_insert t ~ins_table ~ins_columns ~ins_rows =
  let ti = table t ins_table in
  let op =
    mk_op "insert" ti.tbl_name ~est:(List.length ins_rows)
  in
  let r =
    in_op t op (fun () ->
        op.o_loops <- 1;
        op.o_rows_in <- List.length ins_rows;
        let ncols = List.length ti.tbl_columns in
        let target_idx =
          if ins_columns = [] then List.init ncols (fun i -> i)
          else
            List.map
              (fun c ->
                match col_index ti c with
                | Some i -> i
                | None -> fail "table %s has no column %s" ins_table c)
              ins_columns
        in
        let affected = ref 0 in
        let env = { bindings = []; aggregates = None } in
        List.iter
          (fun row_exprs ->
            if List.length row_exprs <> List.length target_idx then
              fail "%d values for %d columns" (List.length row_exprs) (List.length target_idx);
            let values = Array.make ncols Value.Null in
            List.iter2 (fun i e -> values.(i) <- eval t env e) target_idx row_exprs;
            (* defaults *)
            List.iteri
              (fun i c ->
                if (not (List.mem i target_idx)) && c.col_default <> None then
                  values.(i) <- eval t env (Option.get c.col_default))
              ti.tbl_columns;
            (* rowid assignment *)
            let rowid =
              match ti.tbl_rowid_col with
              | Some pk -> (
                  let i = Option.get (col_index ti pk) in
                  match values.(i) with
                  | Value.Null ->
                      let r = next_rowid t ti in
                      values.(i) <- Value.Int r;
                      r
                  | v -> Value.to_int64 v)
              | None -> next_rowid t ti
            in
            (* NOT NULL checks *)
            List.iteri
              (fun i c ->
                if c.col_not_null && Value.is_null values.(i) then
                  fail "NOT NULL constraint failed: %s.%s" ins_table c.col_name)
              ti.tbl_columns;
            (* primary key uniqueness *)
            (match ti.tbl_rowid_col with
            | Some _ ->
                if Btree.lookup_table t.pager ~root:ti.tbl_root rowid <> None then
                  fail "UNIQUE constraint failed: %s rowid %Ld" ins_table rowid
            | None -> ());
            index_insert_row t ti values rowid;
            Btree.insert_table t.pager ~root:ti.tbl_root ~rowid (encode_row ti values);
            t.last_rowid <- rowid;
            incr affected)
          ins_rows;
        op.o_rows_out <- !affected;
        { empty_result with affected = !affected })
  in
  (r, [ op ])

(* --- SELECT --- *)

type agg_state = {
  mutable cnt : int;
  mutable sum_i : int64;
  mutable sum_f : float;
  mutable saw_real : bool;
  mutable mn : Value.t;
  mutable mx : Value.t;
  mutable non_null : int;
}

let new_agg () =
  { cnt = 0; sum_i = 0L; sum_f = 0.; saw_real = false; mn = Value.Null;
    mx = Value.Null; non_null = 0 }

let rec collect_aggs acc e =
  if expr_is_aggregate e then if List.memq e acc then acc else e :: acc
  else
    match e with
    | Binop (_, a, b) | Like (a, b) -> collect_aggs (collect_aggs acc a) b
    | Not a | Neg a | Is_null (a, _) | Cast (a, _) -> collect_aggs acc a
    | Between (a, b, c) -> collect_aggs (collect_aggs (collect_aggs acc a) b) c
    | In_list (a, es) -> List.fold_left collect_aggs (collect_aggs acc a) es
    | Call (_, es) -> List.fold_left collect_aggs acc es
    | Case (arms, else_) ->
        let acc = List.fold_left (fun a (c, v) -> collect_aggs (collect_aggs a c) v) acc arms in
        Option.fold ~none:acc ~some:(collect_aggs acc) else_
    | Lit _ | Column _ | Star -> acc

let agg_update t env state e =
  match e with
  | Call ("count", [ Star ]) | Call ("count", []) -> state.cnt <- state.cnt + 1
  | Call (name, [ arg ]) -> (
      let v = eval t env arg in
      if not (Value.is_null v) then begin
        state.non_null <- state.non_null + 1;
        (match name with
        | "count" -> ()
        | "sum" | "avg" | "total" -> (
            match Value.to_num v with
            | `Int i ->
                state.sum_i <- Int64.add state.sum_i i;
                state.sum_f <- state.sum_f +. Int64.to_float i
            | `Real f ->
                state.saw_real <- true;
                state.sum_f <- state.sum_f +. f
            | `Null -> ())
        | "min" -> if Value.is_null state.mn || Value.compare v state.mn < 0 then state.mn <- v
        | "max" -> if Value.is_null state.mx || Value.compare v state.mx > 0 then state.mx <- v
        | _ -> ())
      end)
  | _ -> ()

let agg_final e state =
  match e with
  | Call ("count", [ Star ]) | Call ("count", []) -> Value.Int (Int64.of_int state.cnt)
  | Call ("count", [ _ ]) -> Value.Int (Int64.of_int state.non_null)
  | Call ("sum", [ _ ]) ->
      if state.non_null = 0 then Value.Null
      else if state.saw_real then Value.Real state.sum_f
      else Value.Int state.sum_i
  | Call ("total", [ _ ]) -> Value.Real state.sum_f
  | Call ("avg", [ _ ]) ->
      if state.non_null = 0 then Value.Null
      else Value.Real (state.sum_f /. float_of_int state.non_null)
  | Call ("min", [ _ ]) -> state.mn
  | Call ("max", [ _ ]) -> state.mx
  | _ -> Value.Null

let column_label i (e, alias) =
  match alias with
  | Some a -> a
  | None -> (
      match e with
      | Column (_, n) -> n
      | Star -> "*"
      | _ -> Printf.sprintf "column%d" (i + 1))

(* Expand SELECT * over the bindings. *)
let expand_star bindings sel_exprs =
  List.concat_map
    (fun (e, alias) ->
      match e with
      | Star ->
          List.concat_map
            (fun b ->
              Array.to_list
                (Array.map (fun c -> (Column (Some b.b_name, c), Some c)) b.b_cols))
            bindings
      | _ -> [ (e, alias) ])
    sel_exprs

(* Compact expression rendering for operator details. *)
let binop_str = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
  | Concat -> "||" | Eq -> "=" | Ne -> "<>" | Lt -> "<" | Le -> "<="
  | Gt -> ">" | Ge -> ">=" | And -> "AND" | Or -> "OR"

let rec render_expr = function
  | Lit (Value.Text s) -> "'" ^ s ^ "'"
  | Lit v -> Value.to_string v
  | Column (None, n) -> n
  | Column (Some q, n) -> q ^ "." ^ n
  | Star -> "*"
  | Binop (op, a, b) ->
      Printf.sprintf "(%s %s %s)" (render_expr a) (binop_str op) (render_expr b)
  | Not a -> Printf.sprintf "(NOT %s)" (render_expr a)
  | Neg a -> Printf.sprintf "(-%s)" (render_expr a)
  | Is_null (a, pos) ->
      Printf.sprintf "(%s IS %sNULL)" (render_expr a) (if pos then "" else "NOT ")
  | Between (a, lo, hi) ->
      Printf.sprintf "(%s BETWEEN %s AND %s)" (render_expr a) (render_expr lo)
        (render_expr hi)
  | In_list (a, es) ->
      Printf.sprintf "(%s IN (%s))" (render_expr a)
        (String.concat ", " (List.map render_expr es))
  | Like (a, p) -> Printf.sprintf "(%s LIKE %s)" (render_expr a) (render_expr p)
  | Call (n, args) ->
      Printf.sprintf "%s(%s)" n (String.concat ", " (List.map render_expr args))
  | Case _ -> "CASE"
  | Cast (a, ty) -> Printf.sprintf "CAST(%s AS %s)" (render_expr a) ty

(* The per-SELECT context: bindings, expanded projection, and the
   operator chain built before execution so plain EXPLAIN can render the
   same tree the executor runs. *)
type sel_ctx = {
  sc_sources : (table_info * string * Planner.plan) list;
  sc_bindings : binding list;
  sc_exprs : (expr * string option) list;
  sc_labels : string list;
  sc_has_aggregates : bool;
  sc_join_conds : expr list;
  sc_scan_ops : op list;
  sc_filter_op : op option;
  sc_agg_op : op option;
  sc_project_op : op;
  sc_sort_op : op option;
  sc_distinct_op : op option;
  sc_limit_op : op option;
  sc_root : op;
}

let select_ctx t (s : select) =
  let sources =
    match s.sel_from with
    | None -> []
    | Some (tbl, alias) ->
        (table t tbl, Option.value alias ~default:tbl)
        :: List.map
             (fun j -> (table t j.jt_table, Option.value j.jt_alias ~default:j.jt_table))
             s.sel_joins
  in
  let single = List.length sources = 1 in
  let sources =
    List.map
      (fun (ti, name) ->
        let plan, reason =
          if single then Planner.plan_for t ti ~const:(const_value t) s.sel_where
          else (Planner.Full_scan, Planner.Join_inner)
        in
        Planner.record_plan t ti plan reason;
        (ti, name, plan))
      sources
  in
  let bindings =
    List.map
      (fun (ti, name, _) ->
        { b_name = name; b_cols = columns_array ti; b_values = [||]; b_rowid = 0L })
      sources
  in
  let sel_exprs = expand_star bindings s.sel_exprs in
  let labels = List.mapi column_label sel_exprs in
  let has_aggregates =
    s.sel_group <> []
    || List.exists (fun (e, _) -> contains_aggregate e) sel_exprs
    || Option.fold ~none:false ~some:contains_aggregate s.sel_having
  in
  let join_conds = List.filter_map (fun j -> j.jt_on) s.sel_joins in
  let scan_ops =
    List.map
      (fun (ti, name, plan) ->
        mk_op "scan" (Printf.sprintf "%s: %s" name (Planner.describe plan))
          ?est:(Planner.estimate t ti plan))
      sources
  in
  let chain = ref scan_ops in
  let push name detail =
    let op = mk_op ~children:!chain name detail in
    chain := [ op ];
    op
  in
  let filter_op =
    if s.sel_where <> None || join_conds <> [] then
      let conds =
        join_conds @ (match s.sel_where with Some w -> [ w ] | None -> [])
      in
      Some (push "filter" (String.concat " AND " (List.map render_expr conds)))
    else None
  in
  let agg_op =
    if has_aggregates then
      Some
        (push "aggregate"
           (if s.sel_group = [] then "scalar"
            else
              "group by " ^ String.concat ", " (List.map render_expr s.sel_group)))
    else None
  in
  let project_op = push "project" (String.concat ", " labels) in
  let sort_op =
    if s.sel_order = [] then None
    else
      Some
        (push "sort"
           (String.concat ", "
              (List.map
                 (fun o ->
                   render_expr o.ord_expr ^ if o.ord_desc then " DESC" else "")
                 s.sel_order)))
  in
  let distinct_op = if s.sel_distinct then Some (push "distinct" "") else None in
  let limit_op =
    if s.sel_limit <> None || s.sel_offset <> None then
      Some
        (push "limit"
           (String.concat " "
              ((match s.sel_limit with
               | Some e -> [ "limit " ^ render_expr e ]
               | None -> [])
              @
              match s.sel_offset with
              | Some e -> [ "offset " ^ render_expr e ]
              | None -> [])))
    else None
  in
  {
    sc_sources = sources;
    sc_bindings = bindings;
    sc_exprs = sel_exprs;
    sc_labels = labels;
    sc_has_aggregates = has_aggregates;
    sc_join_conds = join_conds;
    sc_scan_ops = scan_ops;
    sc_filter_op = filter_op;
    sc_agg_op = agg_op;
    sc_project_op = project_op;
    sc_sort_op = sort_op;
    sc_distinct_op = distinct_op;
    sc_limit_op = limit_op;
    sc_root = List.hd !chain;
  }

let do_select t (s : select) =
  let c = select_ctx t s in
  let bindings = c.sc_bindings in
  let sel_exprs = c.sc_exprs in
  let labels = c.sc_labels in
  let env = { bindings; aggregates = None } in
  let project_row env' =
    in_op t c.sc_project_op (fun () ->
        c.sc_project_op.o_rows_in <- c.sc_project_op.o_rows_in + 1;
        c.sc_project_op.o_loops <- c.sc_project_op.o_loops + 1;
        let vals = List.map (fun (e, _) -> eval t env' e) sel_exprs in
        c.sc_project_op.o_rows_out <- c.sc_project_op.o_rows_out + 1;
        vals)
  in
  if c.sc_sources = [] then begin
    (* SELECT without FROM *)
    let vals = project_row env in
    ({ columns = labels; rows = [ vals ]; affected = 0 }, [ c.sc_root ])
  end
  else begin
    (* produce joined rows: nested loops over sources *)
    let rows = ref [] in
    let emit_row () =
      let keep =
        match c.sc_filter_op with
        | None -> true
        | Some fo ->
            in_op t fo (fun () ->
                fo.o_rows_in <- fo.o_rows_in + 1;
                let k =
                  List.for_all (fun cond -> Value.to_bool (eval t env cond)) c.sc_join_conds
                  && match s.sel_where with
                     | None -> true
                     | Some w -> Value.to_bool (eval t env w)
                in
                if k then fo.o_rows_out <- fo.o_rows_out + 1;
                k)
      in
      if keep then
        rows :=
          (List.map (fun b -> (Array.copy b.b_values, b.b_rowid)) bindings) :: !rows
    in
    let rec loop srcs bnds ops =
      match (srcs, bnds, ops) with
      | [], [], [] -> emit_row ()
      | (ti, _, plan) :: srest, b :: brest, op :: orest ->
          in_op t op (fun () ->
              op.o_loops <- op.o_loops + 1;
              scan t ti plan (fun rowid values ->
                  op.o_rows_out <- op.o_rows_out + 1;
                  b.b_values <- values;
                  b.b_rowid <- rowid;
                  loop srest brest orest;
                  true))
      | _ -> assert false
    in
    loop c.sc_sources bindings c.sc_scan_ops;
    let materialized = List.rev !rows in
    let n_mat = List.length materialized in
    let restore row =
      List.iter2
        (fun b (values, rowid) ->
          b.b_values <- values;
          b.b_rowid <- rowid)
        bindings row
    in
    let result_rows =
      if c.sc_has_aggregates then begin
        let agg_op = Option.get c.sc_agg_op in
        in_op t agg_op (fun () ->
            agg_op.o_loops <- 1;
            agg_op.o_rows_in <- n_mat;
            (* group rows *)
            let agg_exprs =
              List.fold_left
                (fun acc (e, _) -> collect_aggs acc e)
                (Option.fold ~none:[] ~some:(collect_aggs []) s.sel_having)
                sel_exprs
            in
            let groups : (string, (Value.t list * (expr * agg_state) list)) Hashtbl.t =
              Hashtbl.create 16
            in
            let order = ref [] in
            List.iter
              (fun row ->
                restore row;
                let key_vals = List.map (fun g -> eval t env g) s.sel_group in
                let key = Record.encode key_vals in
                let _, states =
                  match Hashtbl.find_opt groups key with
                  | Some g -> g
                  | None ->
                      let g = (key_vals, List.map (fun e -> (e, new_agg ())) agg_exprs) in
                      Hashtbl.add groups key g;
                      order := key :: !order;
                      g
                in
                List.iter (fun (e, st) -> agg_update t env st e) states)
              materialized;
            let keys =
              if Hashtbl.length groups = 0 && s.sel_group = [] then begin
                (* aggregate over empty input still yields one row *)
                let g = ([], List.map (fun e -> (e, new_agg ())) agg_exprs) in
                Hashtbl.add groups "" g;
                [ "" ]
              end
              else List.rev !order
            in
            let out =
              List.filter_map
                (fun key ->
                  let key_vals, states = Hashtbl.find groups key in
                  let aggs = Hashtbl.create 8 in
                  List.iter
                    (fun (e, st) -> Hashtbl.replace aggs (agg_key e) (agg_final e st))
                    states;
                  (* bind group-by columns through a pseudo binding: evaluate
                     select exprs in an env whose bindings hold the first row of
                     the group — sufficient for exprs over grouped columns *)
                  let genv = { bindings; aggregates = Some aggs } in
                  (* restore a representative row for non-aggregate refs *)
                  (match
                     List.find_opt
                       (fun row ->
                         restore row;
                         List.map (fun g -> eval t env g) s.sel_group = key_vals)
                       materialized
                   with
                  | Some row -> restore row
                  | None -> ());
                  let having_ok =
                    match s.sel_having with
                    | None -> true
                    | Some h -> Value.to_bool (eval t genv h)
                  in
                  if having_ok then Some (project_row genv) else None)
                keys
            in
            agg_op.o_rows_out <- List.length out;
            out)
      end
      else
        List.map
          (fun row ->
            restore row;
            project_row env)
          materialized
    in
    (* ORDER BY: when ordering refers to select aliases or expressions over
       the base row we re-evaluate against materialized rows; for aggregate
       queries we order by position in result if expr is an alias *)
    let result_rows =
      match c.sc_sort_op with
      | None -> result_rows
      | Some sort_op ->
          in_op t sort_op (fun () ->
              sort_op.o_loops <- 1;
              sort_op.o_rows_in <- List.length result_rows;
              let keyed =
                if c.sc_has_aggregates then
                  List.map
                    (fun vals ->
                      let key =
                        List.map
                          (fun o ->
                            match o.ord_expr with
                            | Column (None, name) -> (
                                match
                                  List.find_map
                                    (fun (l, v) -> if String.lowercase_ascii l = String.lowercase_ascii name then Some v else None)
                                    (List.combine labels vals)
                                with
                                | Some v -> (v, o.ord_desc)
                                | None -> (Value.Null, o.ord_desc))
                            | Lit (Value.Int n) ->
                                ((try List.nth vals (Int64.to_int n - 1) with _ -> Value.Null), o.ord_desc)
                            | _ -> (Value.Null, o.ord_desc))
                          s.sel_order
                      in
                      (key, vals))
                    result_rows
                else
                  List.map2
                    (fun row vals ->
                      restore row;
                      let key =
                        List.map
                          (fun o ->
                            match o.ord_expr with
                            | Lit (Value.Int n) ->
                                ((try List.nth vals (Int64.to_int n - 1) with _ -> Value.Null), o.ord_desc)
                            | Column (None, name)
                              when List.exists
                                     (fun l -> String.lowercase_ascii l = String.lowercase_ascii name)
                                     labels
                                   && not
                                        (List.exists
                                           (fun b ->
                                             Array.exists
                                               (fun col -> String.lowercase_ascii col = String.lowercase_ascii name)
                                               b.b_cols)
                                           bindings) ->
                                (List.assoc name (List.combine labels vals), o.ord_desc)
                            | e -> (eval t env e, o.ord_desc))
                          s.sel_order
                      in
                      (key, vals))
                    materialized result_rows
              in
              let cmp (ka, _) (kb, _) =
                let rec go a b =
                  match (a, b) with
                  | [], [] -> 0
                  | (va, desc) :: ra, (vb, _) :: rb ->
                      let cv = Value.compare va vb in
                      let cv = if desc then -cv else cv in
                      if cv <> 0 then cv else go ra rb
                  | _ -> 0
                in
                go ka kb
              in
              let out = List.map snd (List.stable_sort cmp keyed) in
              sort_op.o_rows_out <- List.length out;
              out)
    in
    let result_rows =
      match c.sc_distinct_op with
      | None -> result_rows
      | Some dop ->
          in_op t dop (fun () ->
              dop.o_loops <- 1;
              dop.o_rows_in <- List.length result_rows;
              let seen = Hashtbl.create 16 in
              let out =
                List.filter
                  (fun vals ->
                    let k = Record.encode vals in
                    if Hashtbl.mem seen k then false
                    else begin
                      Hashtbl.add seen k ();
                      true
                    end)
                  result_rows
              in
              dop.o_rows_out <- List.length out;
              out)
    in
    let result_rows =
      match c.sc_limit_op with
      | None -> result_rows
      | Some lop ->
          in_op t lop (fun () ->
              lop.o_loops <- 1;
              lop.o_rows_in <- List.length result_rows;
              let off =
                match s.sel_offset with
                | Some e -> Int64.to_int (Value.to_int64 (eval t env e))
                | None -> 0
              in
              let lim =
                match s.sel_limit with
                | Some e -> Int64.to_int (Value.to_int64 (eval t env e))
                | None -> max_int
              in
              let out = List.filteri (fun i _ -> i >= off && i < off + lim) result_rows in
              lop.o_rows_out <- List.length out;
              out)
    in
    ({ columns = labels; rows = result_rows; affected = 0 }, [ c.sc_root ])
  end

(* --- UPDATE / DELETE --- *)

(* scan (+ filter) feeding a mutation operator; the mutation op owns the
   SET evaluation and the B-tree/index write work. *)
let mutation_tree t ti name ~const where =
  let plan, reason = Planner.plan_for t ti ~const where in
  Planner.record_plan t ti plan reason;
  let scan_op =
    mk_op "scan" (Printf.sprintf "%s: %s" ti.tbl_name (Planner.describe plan))
      ?est:(Planner.estimate t ti plan)
  in
  let filter_op =
    match where with
    | None -> None
    | Some w -> Some (mk_op ~children:[ scan_op ] "filter" (render_expr w))
  in
  let feed = match filter_op with Some fo -> fo | None -> scan_op in
  let top = mk_op ~children:[ feed ] name ti.tbl_name in
  (plan, scan_op, filter_op, top)

let do_update t ~upd_table ~upd_sets ~upd_where =
  let ti = table t upd_table in
  let plan, scan_op, filter_op, upd_op =
    mutation_tree t ti "update" ~const:(const_value t) upd_where
  in
  let victims = ref [] in
  scan_instr t ti plan ~scan_op ?filter_op upd_where (fun rowid values ->
      victims := (rowid, values) :: !victims;
      true);
  let r =
    in_op t upd_op (fun () ->
        upd_op.o_loops <- 1;
        upd_op.o_rows_in <- List.length !victims;
        let binding =
          { b_name = ti.tbl_name; b_cols = columns_array ti; b_values = [||]; b_rowid = 0L }
        in
        let env = { bindings = [ binding ]; aggregates = None } in
        let set_idx =
          List.map
            (fun (col, e) ->
              match col_index ti col with
              | Some i -> (i, e)
              | None -> fail "no such column %s" col)
            upd_sets
        in
        List.iter
          (fun (rowid, values) ->
            binding.b_values <- values;
            binding.b_rowid <- rowid;
            let updated = Array.copy values in
            List.iter (fun (i, e) -> updated.(i) <- eval t env e) set_idx;
            (* rowid change unsupported (as in our Speedtest1 workloads) *)
            index_delete_row t ti values rowid;
            index_insert_row t ti updated rowid;
            Btree.insert_table t.pager ~root:ti.tbl_root ~rowid (encode_row ti updated))
          (List.rev !victims);
        upd_op.o_rows_out <- List.length !victims;
        { empty_result with affected = List.length !victims })
  in
  (r, [ upd_op ])

let do_delete t ~del_table ~del_where =
  let ti = table t del_table in
  let plan, scan_op, filter_op, del_op =
    mutation_tree t ti "delete" ~const:(const_value t) del_where
  in
  let victims = ref [] in
  scan_instr t ti plan ~scan_op ?filter_op del_where (fun rowid values ->
      victims := (rowid, values) :: !victims;
      true);
  let r =
    in_op t del_op (fun () ->
        del_op.o_loops <- 1;
        del_op.o_rows_in <- List.length !victims;
        List.iter
          (fun (rowid, values) ->
            index_delete_row t ti values rowid;
            ignore (Btree.delete_table t.pager ~root:ti.tbl_root rowid))
          !victims;
        del_op.o_rows_out <- List.length !victims;
        { empty_result with affected = List.length !victims })
  in
  (r, [ del_op ])

(* --- DDL --- *)

(* A leaf operator wrapping a whole simple statement body. *)
let simple_op t name detail f =
  let op = mk_op name detail in
  let r =
    in_op t op (fun () ->
        op.o_loops <- 1;
        f ())
  in
  (r, [ op ])

let do_create_table t ~ct_name ~ct_if_not_exists ~ct_columns =
  let name = String.lowercase_ascii ct_name in
  if Hashtbl.mem t.tables name then begin
    if ct_if_not_exists then empty_result else fail "table %s already exists" ct_name
  end
  else begin
    let root = Btree.create t.pager Btree.Table in
    Hashtbl.replace t.tables name
      {
        tbl_name = name;
        tbl_root = root;
        tbl_columns = ct_columns;
        tbl_rowid_col = rowid_col_of ct_columns;
      };
    save_catalog t;
    empty_result
  end

let do_create_index t ~ci_name ~ci_table ~ci_columns ~ci_unique ~ci_if_not_exists =
  let name = String.lowercase_ascii ci_name in
  if Hashtbl.mem t.indexes name then begin
    if ci_if_not_exists then empty_result else fail "index %s already exists" ci_name
  end
  else begin
    let ti = table t ci_table in
    List.iter
      (fun col ->
        if col_index ti col = None then fail "table %s has no column %s" ci_table col)
      ci_columns;
    let root = Btree.create t.pager Btree.Index in
    let ii =
      {
        idx_name = name;
        idx_table = String.lowercase_ascii ci_table;
        idx_columns = ci_columns;
        idx_unique = ci_unique;
        idx_root = root;
      }
    in
    Hashtbl.replace t.indexes name ii;
    (* populate from existing rows *)
    Btree.iter_table t.pager ~root:ti.tbl_root (fun rowid payload ->
        let values = decode_row t ti rowid payload in
        Btree.insert_index t.pager ~root (index_key ii ti values rowid);
        true);
    save_catalog t;
    empty_result
  end

let do_drop_table t ~dt_name ~dt_if_exists =
  let name = String.lowercase_ascii dt_name in
  match Hashtbl.find_opt t.tables name with
  | None -> if dt_if_exists then empty_result else fail "no such table: %s" dt_name
  | Some ti ->
      List.iter (fun p -> Pager.free t.pager p) (Btree.pages t.pager ~root:ti.tbl_root);
      List.iter
        (fun ii ->
          List.iter (fun p -> Pager.free t.pager p) (Btree.pages t.pager ~root:ii.idx_root);
          Hashtbl.remove t.indexes ii.idx_name)
        (indexes_of t name);
      Hashtbl.remove t.tables name;
      save_catalog t;
      empty_result

let do_drop_index t ~di_name ~di_if_exists =
  let name = String.lowercase_ascii di_name in
  match Hashtbl.find_opt t.indexes name with
  | None -> if di_if_exists then empty_result else fail "no such index: %s" di_name
  | Some ii ->
      List.iter (fun p -> Pager.free t.pager p) (Btree.pages t.pager ~root:ii.idx_root);
      Hashtbl.remove t.indexes name;
      save_catalog t;
      empty_result

(* --- ANALYZE --- *)

let hist_buckets = 10

let stat_text_col cname =
  { col_name = cname; col_type = "TEXT"; col_pk = false; col_not_null = false;
    col_default = None }

let stat_int_col cname =
  { col_name = cname; col_type = "INTEGER"; col_pk = false; col_not_null = false;
    col_default = None }

let stat_any_col cname =
  { col_name = cname; col_type = ""; col_pk = false; col_not_null = false;
    col_default = None }

let ensure_stat_table t name cols =
  if not (Hashtbl.mem t.tables name) then
    ignore (do_create_table t ~ct_name:name ~ct_if_not_exists:true ~ct_columns:cols)

let clear_table t (ti : table_info) =
  let old = ref [] in
  Btree.iter_table t.pager ~root:ti.tbl_root (fun rowid _ ->
      old := rowid :: !old;
      true);
  List.iter (fun r -> ignore (Btree.delete_table t.pager ~root:ti.tbl_root r)) !old

(* Equi-depth histogram over the sorted non-NULL values: ceil(n/B)-deep
   buckets of (lo, hi, count); bounds are non-decreasing across buckets
   and the counts sum to n exactly. *)
let equi_depth_hist sorted =
  let n = Array.length sorted in
  if n = 0 then [||]
  else begin
    let b = min hist_buckets n in
    let depth = (n + b - 1) / b in
    let buckets = ref [] in
    let i = ref 0 in
    while !i < n do
      let j = min (n - 1) (!i + depth - 1) in
      buckets := (sorted.(!i), sorted.(j), j - !i + 1) :: !buckets;
      i := j + 1
    done;
    Array.of_list (List.rev !buckets)
  end

(* ANALYZE: row counts into stat1 (paper's test 990, schema and contents
   unchanged), plus per-column distinct/null counts into stat_col and
   equi-depth histograms into stat_hist — the planner's selectivity
   substrate. The in-memory stats cache is refreshed in the same pass. *)
let do_analyze t =
  ensure_stat_table t "stat1"
    [ stat_text_col "tbl"; stat_text_col "idx"; stat_int_col "stat" ];
  ensure_stat_table t "stat_col"
    [ stat_text_col "tbl"; stat_text_col "col"; stat_int_col "ndistinct";
      stat_int_col "nnull" ];
  ensure_stat_table t "stat_hist"
    [ stat_text_col "tbl"; stat_text_col "col"; stat_int_col "bucket";
      stat_any_col "lo"; stat_any_col "hi"; stat_int_col "cnt" ];
  let stat1 = table t "stat1" in
  let stat_col = table t "stat_col" in
  let stat_hist = table t "stat_hist" in
  clear_table t stat1;
  clear_table t stat_col;
  clear_table t stat_hist;
  let seq1 = ref 0L and seqc = ref 0L and seqh = ref 0L in
  let put (ti : table_info) seq values =
    seq := Int64.add !seq 1L;
    Btree.insert_table t.pager ~root:ti.tbl_root ~rowid:!seq (Record.encode values)
  in
  let targets =
    List.sort compare
      (Hashtbl.fold
         (fun name _ acc -> if is_stat_table name then acc else name :: acc)
         t.tables [])
  in
  let root_op = mk_op "analyze" "" in
  let stats = ref [] in
  let run_table name =
    let ti = table t name in
    let op = mk_op "analyze" name in
    root_op.o_children <- root_op.o_children @ [ op ];
    in_op t op (fun () ->
        op.o_loops <- 1;
        (* decode every row once: row count + per-column values *)
        let rows = ref [] in
        Btree.iter_table t.pager ~root:ti.tbl_root (fun rowid payload ->
            rows := decode_row t ti rowid payload :: !rows;
            true);
        let rows = List.rev !rows in
        let count = List.length rows in
        op.o_rows_in <- count;
        put stat1 seq1 [ Value.Text name; Value.Null; Value.Int (Int64.of_int count) ];
        List.iter
          (fun ii ->
            let n = ref 0 in
            Btree.iter_index t.pager ~root:ii.idx_root (fun _ ->
                incr n;
                true);
            put stat1 seq1
              [ Value.Text name; Value.Text ii.idx_name; Value.Int (Int64.of_int !n) ])
          (indexes_of t name);
        (* per-column statistics *)
        let ts_cols =
          List.mapi
            (fun i c ->
              let non_null =
                List.filter_map
                  (fun values ->
                    if Value.is_null values.(i) then None else Some values.(i))
                  rows
              in
              let sorted = Array.of_list non_null in
              Array.sort Value.compare sorted;
              let nn = count - Array.length sorted in
              let nd =
                let d = ref 0 in
                Array.iteri
                  (fun j v ->
                    if j = 0 || Value.compare sorted.(j - 1) v <> 0 then incr d)
                  sorted;
                !d
              in
              let hist = equi_depth_hist sorted in
              put stat_col seqc
                [ Value.Text name; Value.Text c.col_name;
                  Value.Int (Int64.of_int nd); Value.Int (Int64.of_int nn) ];
              Array.iteri
                (fun b (lo, hi, cnt) ->
                  put stat_hist seqh
                    [ Value.Text name; Value.Text c.col_name;
                      Value.Int (Int64.of_int b); lo; hi;
                      Value.Int (Int64.of_int cnt) ])
                hist;
              ( String.lowercase_ascii c.col_name,
                { cs_distinct = nd; cs_nulls = nn; cs_hist = hist } ))
            ti.tbl_columns
        in
        op.o_rows_out <- count;
        stats := (String.lowercase_ascii name, { ts_rows = count; ts_cols }) :: !stats)
  in
  List.iter run_table targets;
  set_stats t (List.rev !stats);
  (empty_result, [ root_op ])

(* VACUUM: rebuild every tree compactly. *)
let do_vacuum t =
  Hashtbl.iter
    (fun _ (ti : table_info) ->
      let entries = ref [] in
      Btree.iter_table t.pager ~root:ti.tbl_root (fun r p ->
          entries := (r, p) :: !entries;
          true);
      let old_pages = Btree.pages t.pager ~root:ti.tbl_root in
      let fresh = Btree.create t.pager Btree.Table in
      List.iter
        (fun (r, p) -> Btree.insert_table t.pager ~root:fresh ~rowid:r p)
        (List.rev !entries);
      List.iter (fun p -> Pager.free t.pager p) old_pages;
      ti.tbl_root <- fresh)
    t.tables;
  Hashtbl.iter
    (fun _ (ii : index_info) ->
      let keys = ref [] in
      Btree.iter_index t.pager ~root:ii.idx_root (fun k ->
          keys := k :: !keys;
          true);
      let old_pages = Btree.pages t.pager ~root:ii.idx_root in
      let fresh = Btree.create t.pager Btree.Index in
      List.iter (fun k -> Btree.insert_index t.pager ~root:fresh k) (List.rev !keys);
      List.iter (fun p -> Pager.free t.pager p) old_pages;
      ii.idx_root <- fresh)
    t.indexes;
  save_catalog t;
  empty_result

(* --- PRAGMA --- *)

let do_pragma t name value =
  match (name, value) with
  | "cache_size", Some v ->
      Pager.set_cache_pages t.pager (Int64.to_int (Value.to_int64 v));
      empty_result
  | "cache_size", None ->
      { columns = [ "cache_size" ]; rows = [ [ Value.Int 0L ] ]; affected = 0 }
  | "page_count", None ->
      { columns = [ "page_count" ];
        rows = [ [ Value.Int (Int64.of_int (Pager.n_pages t.pager)) ] ];
        affected = 0 }
  | "page_size", None ->
      { columns = [ "page_size" ];
        rows = [ [ Value.Int (Int64.of_int Pager.page_size) ] ];
        affected = 0 }
  | _ -> empty_result  (* unknown pragmas are silently ignored, as SQLite *)

(* --- EXPLAIN --- *)

let rec stmt_label = function
  | Select s -> (
      match s.sel_from with
      | Some (tbl, _) -> Printf.sprintf "select(%s)" (String.lowercase_ascii tbl)
      | None -> "select")
  | Insert { ins_table; _ } -> Printf.sprintf "insert(%s)" (String.lowercase_ascii ins_table)
  | Update { upd_table; _ } -> Printf.sprintf "update(%s)" (String.lowercase_ascii upd_table)
  | Delete { del_table; _ } -> Printf.sprintf "delete(%s)" (String.lowercase_ascii del_table)
  | Create_table { ct_name; _ } -> Printf.sprintf "create_table(%s)" (String.lowercase_ascii ct_name)
  | Create_index { ci_name; _ } -> Printf.sprintf "create_index(%s)" (String.lowercase_ascii ci_name)
  | Drop_table { dt_name; _ } -> Printf.sprintf "drop_table(%s)" (String.lowercase_ascii dt_name)
  | Drop_index { di_name; _ } -> Printf.sprintf "drop_index(%s)" (String.lowercase_ascii di_name)
  | Begin -> "begin"
  | Commit -> "commit"
  | Rollback -> "rollback"
  | Pragma (n, _) -> Printf.sprintf "pragma(%s)" n
  | Analyze -> "analyze"
  | Vacuum -> "vacuum"
  | Explain { ex_stmt; _ } -> Printf.sprintf "explain(%s)" (stmt_label ex_stmt)

(* The operator tree a statement would run, without executing it —
   shares [select_ctx]/[mutation_tree] with the executor so EXPLAIN
   renders exactly the tree EXPLAIN ANALYZE measures. *)
let plan_tree t stmt =
  match stmt with
  | Select s -> [ (select_ctx t s).sc_root ]
  | Insert { ins_table; ins_rows; _ } ->
      let ti = table t ins_table in
      [ mk_op "insert" ti.tbl_name ~est:(List.length ins_rows) ]
  | Update { upd_table; upd_where; _ } ->
      let ti = table t upd_table in
      let _, _, _, top = mutation_tree t ti "update" ~const:(const_value t) upd_where in
      [ top ]
  | Delete { del_table; del_where } ->
      let ti = table t del_table in
      let _, _, _, top = mutation_tree t ti "delete" ~const:(const_value t) del_where in
      [ top ]
  | Create_table { ct_name; _ } -> [ mk_op "create_table" (String.lowercase_ascii ct_name) ]
  | Create_index { ci_name; _ } -> [ mk_op "create_index" (String.lowercase_ascii ci_name) ]
  | Drop_table { dt_name; _ } -> [ mk_op "drop_table" (String.lowercase_ascii dt_name) ]
  | Drop_index { di_name; _ } -> [ mk_op "drop_index" (String.lowercase_ascii di_name) ]
  | Begin -> [ mk_op "txn" "begin" ]
  | Commit -> [ mk_op "txn" "commit" ]
  | Rollback -> [ mk_op "txn" "rollback" ]
  | Pragma (n, _) -> [ mk_op "pragma" n ]
  | Analyze -> [ mk_op "analyze" "" ]
  | Vacuum -> [ mk_op "vacuum" "" ]
  | Explain _ -> fail "cannot EXPLAIN an EXPLAIN"

let est_str = function Some n -> string_of_int n | None -> "-"

let render_est_lines ops =
  List.map
    (fun os ->
      Printf.sprintf "%s%s(%s) est=%s"
        (String.make (2 * os.os_depth) ' ')
        os.os_name os.os_detail (est_str os.os_est_rows))
    ops

(* EXPLAIN ANALYZE rendering: one line per operator with estimates next
   to actuals, plus a statement summary line. With a calibration hint
   installed (Db.set_ns_per_work) a cycles column is appended. *)
let render_profile t (p : Catalog.profile) =
  let ns w = int_of_float (Float.round (float_of_int w *. t.ns_hint)) in
  let lines =
    List.map
      (fun os ->
        let base =
          Printf.sprintf "%s%s(%s) est=%s in=%d out=%d loops=%d pages=%dr/%dw work=%d"
            (String.make (2 * os.os_depth) ' ')
            os.os_name os.os_detail (est_str os.os_est_rows) os.os_rows_in
            os.os_rows_out os.os_loops os.os_reads os.os_writes os.os_work
        in
        if t.ns_hint > 0. then base ^ Printf.sprintf " cycles=%dns" (ns os.os_work)
        else base)
      p.pr_ops
  in
  let summary =
    let base =
      Printf.sprintf "total work=%d overhead=%d" p.pr_total_work p.pr_overhead_work
    in
    if t.ns_hint > 0. then
      base ^ Printf.sprintf " cycles=%dns" (ns p.pr_total_work)
    else base
  in
  lines @ [ summary ]

let plan_result lines =
  { columns = [ "plan" ]; rows = List.map (fun l -> [ Value.Text l ]) lines;
    affected = 0 }

(* --- statement dispatch --- *)

let rec exec_stmt t stmt =
  match stmt with
  | Select s -> profiled t (stmt_label stmt) (fun () -> do_select t s)
  | Insert { ins_table; ins_columns; ins_rows } ->
      profiled t (stmt_label stmt) (fun () ->
          in_auto_txn t (fun () -> do_insert t ~ins_table ~ins_columns ~ins_rows))
  | Update { upd_table; upd_sets; upd_where } ->
      profiled t (stmt_label stmt) (fun () ->
          in_auto_txn t (fun () -> do_update t ~upd_table ~upd_sets ~upd_where))
  | Delete { del_table; del_where } ->
      profiled t (stmt_label stmt) (fun () ->
          in_auto_txn t (fun () -> do_delete t ~del_table ~del_where))
  | Create_table { ct_name; ct_if_not_exists; ct_columns } ->
      profiled t (stmt_label stmt) (fun () ->
          simple_op t "create_table" (String.lowercase_ascii ct_name) (fun () ->
              in_auto_txn t (fun () ->
                  do_create_table t ~ct_name ~ct_if_not_exists ~ct_columns)))
  | Create_index { ci_name; ci_table; ci_columns; ci_unique; ci_if_not_exists } ->
      profiled t (stmt_label stmt) (fun () ->
          simple_op t "create_index" (String.lowercase_ascii ci_name) (fun () ->
              in_auto_txn t (fun () ->
                  do_create_index t ~ci_name ~ci_table ~ci_columns ~ci_unique
                    ~ci_if_not_exists)))
  | Drop_table { dt_name; dt_if_exists } ->
      profiled t (stmt_label stmt) (fun () ->
          simple_op t "drop_table" (String.lowercase_ascii dt_name) (fun () ->
              in_auto_txn t (fun () -> do_drop_table t ~dt_name ~dt_if_exists)))
  | Drop_index { di_name; di_if_exists } ->
      profiled t (stmt_label stmt) (fun () ->
          simple_op t "drop_index" (String.lowercase_ascii di_name) (fun () ->
              in_auto_txn t (fun () -> do_drop_index t ~di_name ~di_if_exists)))
  | Begin ->
      profiled t "begin" (fun () ->
          simple_op t "txn" "begin" (fun () ->
              if t.explicit_txn then fail "already in a transaction";
              Pager.begin_txn t.pager;
              t.explicit_txn <- true;
              empty_result))
  | Commit ->
      profiled t "commit" (fun () ->
          simple_op t "txn" "commit" (fun () ->
              if not t.explicit_txn then fail "no transaction is active";
              Pager.commit t.pager;
              t.explicit_txn <- false;
              empty_result))
  | Rollback ->
      profiled t "rollback" (fun () ->
          simple_op t "txn" "rollback" (fun () ->
              if not t.explicit_txn then fail "no transaction is active";
              Pager.rollback t.pager;
              t.explicit_txn <- false;
              (* in-memory catalog may be stale after rollback *)
              Hashtbl.reset t.tables;
              Hashtbl.reset t.indexes;
              load_catalog t;
              load_stats t;
              empty_result))
  | Pragma (name, v) ->
      profiled t (stmt_label stmt) (fun () ->
          simple_op t "pragma" name (fun () -> do_pragma t name v))
  | Analyze ->
      profiled t "analyze" (fun () -> in_auto_txn t (fun () -> do_analyze t))
  | Vacuum ->
      profiled t "vacuum" (fun () ->
          simple_op t "vacuum" "" (fun () -> in_auto_txn t (fun () -> do_vacuum t)))
  | Explain { ex_analyze; ex_stmt } -> (
      match ex_stmt with
      | Explain _ -> fail "cannot EXPLAIN an EXPLAIN"
      | _ ->
          if ex_analyze then begin
            ignore (exec_stmt t ex_stmt);
            match Catalog.last_profile t with
            | Some p -> plan_result (render_profile t p)
            | None -> empty_result
          end
          else
            profiled t (Printf.sprintf "explain(%s)" (stmt_label ex_stmt)) (fun () ->
                let roots = plan_tree t ex_stmt in
                let lines = render_est_lines (List.concat_map flatten_ops roots) in
                (plan_result lines, roots)))
