(** The embeddable SQL database — public API.

    This is the repository's SQLite stand-in (paper §V-C): an embedded
    engine with dynamic typing, rowid tables, secondary indexes, ACID
    transactions via a rollback journal, and a VFS seam ({!Svfs}) that
    lets the same engine run over host files, memory, WASI files, or
    encrypted protected files.

    {2 Supported SQL}

    [CREATE TABLE] (column types INTEGER/TEXT/REAL/BLOB, INTEGER PRIMARY
    KEY as rowid alias, NOT NULL, DEFAULT), [CREATE [UNIQUE] INDEX],
    [DROP TABLE/INDEX], [INSERT] (multi-row, column lists), [SELECT]
    (WHERE, inner JOIN, GROUP BY + HAVING, aggregates
    count/sum/avg/total/min/max, ORDER BY, DISTINCT, LIMIT/OFFSET),
    [UPDATE], [DELETE], [BEGIN/COMMIT/ROLLBACK], [PRAGMA cache_size],
    [ANALYZE] (row counts into [stat1], per-column distinct/null counts
    into [stat_col], equi-depth histograms into [stat_hist]), [VACUUM],
    and [EXPLAIN [ANALYZE] <stmt>] (the operator tree with planner
    estimates, and — under ANALYZE — per-operator actuals).

    Point and range queries on the rowid / INTEGER PRIMARY KEY and
    equality/range lookups on a single-column index prefix use the
    B-trees; everything else scans. *)

exception Sql_error of string

type t = Catalog.db

type result = Executor.result = {
  columns : string list;
  rows : Value.t list list;
  affected : int;
}

val open_db :
  ?vfs:Svfs.t -> ?cache_pages:int -> ?hooks:Pager.hooks ->
  ?obs:Twine_obs.Obs.t -> string -> t
(** [open_db path] opens (creating if needed) a database. [":memory:"]
    uses a private in-memory VFS. [cache_pages] is the page-cache
    capacity in 4 KiB pages (default 2048, i.e. SQLite's 8 MiB).
    [hooks] observe page reads/writes/accesses for cost accounting;
    [obs] additionally records pager I/O and cache counters
    ([sqldb.page_read] / [sqldb.page_write] / [sqldb.cache.*] /
    [sqldb.journal_write]) into a telemetry registry. *)

val close : t -> unit
(** Rolls back any open transaction and releases the file. *)

val exec : t -> string -> result
(** Execute one or more ;-separated statements; returns the last
    statement's result. Modifications outside an explicit transaction
    are wrapped in an automatic one.
    @raise Sql_error on semantic errors (missing table, constraint
    violation, ...); @raise Parser.Error on syntax errors. *)

val query : t -> string -> Value.t list list
(** [query t sql] = [(exec t sql).rows]. *)

val query_one : t -> string -> Value.t
(** First column of the single result row.
    @raise Sql_error if the query does not yield exactly one row. *)

val last_insert_rowid : t -> int64

val work : t -> int
(** Abstract CPU work units accumulated since the last {!reset_work} —
    the quantity TWINE's benchmark variants charge at the calibrated
    Wasm slowdown factor. *)

val reset_work : t -> unit
(** Zeroes the work meter and drops the accumulated statement
    {!profiles}. *)

val pager : t -> Pager.t
(** The underlying pager (statistics, cache-size control). *)

(** {2 Per-operator observability}

    Every executed statement records a {!profile}: the flattened
    operator tree (preorder) with per-operator rows-in/out, loop counts,
    pager page deltas and self work, plus the statement's total work and
    the overhead work that landed outside any operator. By construction
    [pr_total_work = sum os_work + pr_overhead_work] — the zero-residue
    conservation law the bench gates at tolerance 0. *)

type opstat = Catalog.opstat = {
  os_depth : int;
  os_name : string;
  os_detail : string;
  os_est_rows : int option;
  os_rows_in : int;
  os_rows_out : int;
  os_loops : int;
  os_reads : int;
  os_writes : int;
  os_work : int;
}

type profile = Catalog.profile = {
  pr_stmt : string;
  pr_ops : opstat list;
  pr_overhead_work : int;
  pr_total_work : int;
}

val profiles : t -> profile list
(** Statement profiles recorded since the last {!reset_work}, in
    execution order. The work totals partition {!work} exactly. *)

val last_profile : t -> profile option

val slice_ns : total_ns:int -> int list -> int list
(** [slice_ns ~total_ns works] splits a nanosecond booking across work
    shares by cumulative rounding: non-negative slices that sum to
    [total_ns] exactly (the residue-free attribution used for the
    [sqldb.op.*] charges). *)

val set_ns_per_work : t -> float -> unit
(** Installs a ns-per-work-unit calibration hint; when positive,
    [EXPLAIN ANALYZE] output gains a [cycles=..ns] column. *)
