(** The embeddable SQL database — public API.

    This is the repository's SQLite stand-in (paper §V-C): an embedded
    engine with dynamic typing, rowid tables, secondary indexes, ACID
    transactions via a rollback journal, and a VFS seam ({!Svfs}) that
    lets the same engine run over host files, memory, WASI files, or
    encrypted protected files.

    {2 Supported SQL}

    [CREATE TABLE] (column types INTEGER/TEXT/REAL/BLOB, INTEGER PRIMARY
    KEY as rowid alias, NOT NULL, DEFAULT), [CREATE [UNIQUE] INDEX],
    [DROP TABLE/INDEX], [INSERT] (multi-row, column lists), [SELECT]
    (WHERE, inner JOIN, GROUP BY + HAVING, aggregates
    count/sum/avg/total/min/max, ORDER BY, DISTINCT, LIMIT/OFFSET),
    [UPDATE], [DELETE], [BEGIN/COMMIT/ROLLBACK], [PRAGMA cache_size],
    [ANALYZE] (stats into the [stat1] table), [VACUUM].

    Point and range queries on the rowid / INTEGER PRIMARY KEY and
    equality/range lookups on a single-column index prefix use the
    B-trees; everything else scans. *)

exception Sql_error of string

type t

type result = { columns : string list; rows : Value.t list list; affected : int }

val open_db :
  ?vfs:Svfs.t -> ?cache_pages:int -> ?hooks:Pager.hooks ->
  ?obs:Twine_obs.Obs.t -> string -> t
(** [open_db path] opens (creating if needed) a database. [":memory:"]
    uses a private in-memory VFS. [cache_pages] is the page-cache
    capacity in 4 KiB pages (default 2048, i.e. SQLite's 8 MiB).
    [hooks] observe page reads/writes/accesses for cost accounting;
    [obs] additionally records pager I/O and cache counters
    ([sqldb.page_read] / [sqldb.page_write] / [sqldb.cache.*] /
    [sqldb.journal_write]) into a telemetry registry. *)

val close : t -> unit
(** Rolls back any open transaction and releases the file. *)

val exec : t -> string -> result
(** Execute one or more ;-separated statements; returns the last
    statement's result. Modifications outside an explicit transaction
    are wrapped in an automatic one.
    @raise Sql_error on semantic errors (missing table, constraint
    violation, ...); @raise Parser.Error on syntax errors. *)

val query : t -> string -> Value.t list list
(** [query t sql] = [(exec t sql).rows]. *)

val query_one : t -> string -> Value.t
(** First column of the single result row.
    @raise Sql_error if the query does not yield exactly one row. *)

val last_insert_rowid : t -> int64

val work : t -> int
(** Abstract CPU work units accumulated since the last {!reset_work} —
    the quantity TWINE's benchmark variants charge at the calibrated
    Wasm slowdown factor. *)

val reset_work : t -> unit

val pager : t -> Pager.t
(** The underlying pager (statistics, cache-size control). *)
