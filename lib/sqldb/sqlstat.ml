(* pg_stat_statements for the embedded engine: a registry keyed by
   normalized query fingerprint, accumulating execution counts, row and
   work totals, pager I/O, cycle totals and a mergeable latency sketch.
   Registries are per-enclave in the serving fleet and merge into a
   fleet view; the canonical JSON export (twine-sqlstats/v1) is sorted
   and mode-independent, so retained and streaming serve runs produce
   byte-identical artifacts. *)

(* Fingerprint normalization: literals collapse to "?", keywords render
   uppercase (the tokenizer already uppercases them), identifiers
   lowercase, tokens joined by single spaces. Two statements differing
   only in constants share a fingerprint. *)
let fingerprint sql =
  let toks = Token.tokenize sql in
  let parts =
    List.filter_map
      (function
        | Token.Ident s -> Some (String.lowercase_ascii s)
        | Token.Keyword k -> Some k
        | Token.Int_lit _ | Token.Float_lit _ | Token.String_lit _
        | Token.Blob_lit _ ->
            Some "?"
        | Token.Punct p -> Some p
        | Token.Eof -> None)
      toks
  in
  String.concat " " parts

type entry = {
  sq_fingerprint : string;
  sq_label : string;  (* first-seen label, e.g. the workload kind *)
  mutable sq_count : int;
  mutable sq_rows : int;
  mutable sq_work : int;
  mutable sq_reads : int;
  mutable sq_writes : int;
  mutable sq_exec_ns : int;
  mutable sq_pager_ns : int;
  mutable sq_latency : Twine_obs.Sketch.t;
}

type t = { entries : (string, entry) Hashtbl.t }

let create () = { entries = Hashtbl.create 16 }

let find_or_add t ~fingerprint ~label =
  match Hashtbl.find_opt t.entries fingerprint with
  | Some e -> e
  | None ->
      let e =
        { sq_fingerprint = fingerprint; sq_label = label; sq_count = 0;
          sq_rows = 0; sq_work = 0; sq_reads = 0; sq_writes = 0;
          sq_exec_ns = 0; sq_pager_ns = 0;
          sq_latency = Twine_obs.Sketch.create () }
      in
      Hashtbl.replace t.entries fingerprint e;
      e

let record t ?(label = "") ~fingerprint ~rows ~work ~reads ~writes ~exec_ns
    ~pager_ns ~latency_ns () =
  let e = find_or_add t ~fingerprint ~label in
  e.sq_count <- e.sq_count + 1;
  e.sq_rows <- e.sq_rows + rows;
  e.sq_work <- e.sq_work + work;
  e.sq_reads <- e.sq_reads + reads;
  e.sq_writes <- e.sq_writes + writes;
  e.sq_exec_ns <- e.sq_exec_ns + exec_ns;
  e.sq_pager_ns <- e.sq_pager_ns + pager_ns;
  Twine_obs.Sketch.insert e.sq_latency (max 0 latency_ns)

let entries t =
  List.sort
    (fun a b -> compare a.sq_fingerprint b.sq_fingerprint)
    (Hashtbl.fold (fun _ e acc -> e :: acc) t.entries [])

(* Pure merge: the label of the first (sorted) occurrence wins, sketches
   merge bit-identically (Sketch.merge is associative/commutative). *)
let merge a b =
  let out = create () in
  let fold src =
    List.iter
      (fun e ->
        match Hashtbl.find_opt out.entries e.sq_fingerprint with
        | None ->
            Hashtbl.replace out.entries e.sq_fingerprint
              { e with sq_latency = Twine_obs.Sketch.merge e.sq_latency (Twine_obs.Sketch.create ()) }
        | Some acc ->
            acc.sq_count <- acc.sq_count + e.sq_count;
            acc.sq_rows <- acc.sq_rows + e.sq_rows;
            acc.sq_work <- acc.sq_work + e.sq_work;
            acc.sq_reads <- acc.sq_reads + e.sq_reads;
            acc.sq_writes <- acc.sq_writes + e.sq_writes;
            acc.sq_exec_ns <- acc.sq_exec_ns + e.sq_exec_ns;
            acc.sq_pager_ns <- acc.sq_pager_ns + e.sq_pager_ns;
            acc.sq_latency <- Twine_obs.Sketch.merge acc.sq_latency e.sq_latency)
      (entries src)
  in
  fold a;
  fold b;
  out

let quantile_ns e q =
  Option.value (Twine_obs.Sketch.quantile e.sq_latency q) ~default:0

let entry_to_json e =
  let num i = Twine_obs.Json.Num (float_of_int i) in
  Twine_obs.Json.Obj
    [
      ("fingerprint", Twine_obs.Json.Str e.sq_fingerprint);
      ("label", Twine_obs.Json.Str e.sq_label);
      ("count", num e.sq_count);
      ("rows", num e.sq_rows);
      ("work", num e.sq_work);
      ("page_reads", num e.sq_reads);
      ("page_writes", num e.sq_writes);
      ("exec_ns", num e.sq_exec_ns);
      ("pager_ns", num e.sq_pager_ns);
      ("p50_ns", num (quantile_ns e 0.5));
      ("p99_ns", num (quantile_ns e 0.99));
      ("latency", Twine_obs.Sketch.to_json e.sq_latency);
    ]

let to_json t = Twine_obs.Json.Arr (List.map entry_to_json (entries t))
