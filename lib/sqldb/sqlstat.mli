(** pg_stat_statements-style query statistics registry.

    Entries are keyed by normalized query {!fingerprint}; each carries
    execution count, row/work totals, pager I/O, cycle totals and a
    mergeable latency sketch ({!Twine_obs.Sketch}). Registries merge
    into fleet views and export as canonical, sorted JSON — the
    [twine-sqlstats/v1] artifact is byte-identical for a fixed seed
    regardless of serve mode. *)

val fingerprint : string -> string
(** Normalize a statement: literals become ["?"], keywords uppercase,
    identifiers lowercase, single-space separated.
    @raise Token.Error on unlexable input. *)

type entry = {
  sq_fingerprint : string;
  sq_label : string;  (** first-seen label, e.g. the workload kind *)
  mutable sq_count : int;
  mutable sq_rows : int;
  mutable sq_work : int;
  mutable sq_reads : int;
  mutable sq_writes : int;
  mutable sq_exec_ns : int;
  mutable sq_pager_ns : int;
  mutable sq_latency : Twine_obs.Sketch.t;
}

type t

val create : unit -> t

val record :
  t -> ?label:string -> fingerprint:string -> rows:int -> work:int ->
  reads:int -> writes:int -> exec_ns:int -> pager_ns:int ->
  latency_ns:int -> unit -> unit

val entries : t -> entry list
(** Sorted by fingerprint. *)

val merge : t -> t -> t
(** Pure; sketches merge bit-identically, counters add. *)

val quantile_ns : entry -> float -> int
(** Latency quantile estimate from the sketch (0 when empty). *)

val to_json : t -> Twine_obs.Json.t
(** Canonical sorted array of entries. *)
