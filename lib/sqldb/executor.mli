(** Executor layer: expression evaluation and the instrumented operator
    tree. Each statement runs under a profiling wrapper so that
    statement work = sum(operator self-work) + overhead work holds by
    construction (the zero-residue conservation law); the recorded
    profiles are read back through {!Db.profiles}. *)

type result = { columns : string list; rows : Value.t list list; affected : int }

val empty_result : result

val exec_stmt : Catalog.db -> Sql_ast.stmt -> result
(** Execute one statement, recording its per-operator profile.
    [EXPLAIN <stmt>] renders the operator tree with planner estimates
    without executing; [EXPLAIN ANALYZE <stmt>] executes and renders
    estimates next to actuals (plus a [cycles] column when a
    ns-per-work hint is installed). *)

val stmt_label : Sql_ast.stmt -> string
(** Statement kind + target, e.g. ["select(t)"] — the [pr_stmt] naming
    used in profiles. *)
