(* Catalog layer of the database engine: the shared handle (pager,
   schema objects, transaction flag, work meter), catalog
   (de)serialisation into the page-1 B-tree, and the ANALYZE statistics
   cache the planner estimates from.

   The engine is split per the ROADMAP refactor note:
     catalog.ml   — this file: handle + schema + stats
     planner.ml   — WHERE analysis into access paths + row estimates
     executor.ml  — expression evaluation and the instrumented operator
                    tree that executes statements
     db.ml        — the public facade *)

open Sql_ast

exception Sql_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Sql_error s)) fmt

type table_info = {
  tbl_name : string;
  mutable tbl_root : int;
  tbl_columns : column_def list;
  tbl_rowid_col : string option;  (* INTEGER PRIMARY KEY alias *)
}

type index_info = {
  idx_name : string;
  idx_table : string;
  idx_columns : string list;
  idx_unique : bool;
  mutable idx_root : int;
}

(* --- ANALYZE statistics (selectivity substrate for the planner) --- *)

type col_stats = {
  cs_distinct : int;  (* distinct non-NULL values *)
  cs_nulls : int;
  cs_hist : (Value.t * Value.t * int) array;
      (* equi-depth buckets over the sorted non-NULL values:
         (lo, hi, count), bounds ascending and non-overlapping *)
}

type tbl_stats = {
  ts_rows : int;
  ts_cols : (string * col_stats) list;  (* keyed by lowercased name *)
}

(* Names of the persisted stat tables. [stat1] keeps its original
   (tbl, idx, stat) schema — its contents are pinned by tests and by
   the paper's test 990; the per-column stats live alongside. *)
let stat_table_names = [ "stat1"; "stat_col"; "stat_hist" ]
let is_stat_table name = List.mem (String.lowercase_ascii name) stat_table_names

(* --- per-operator work attribution --- *)

(* A mutable cell operators hand to the work meter: while an operator is
   the current sink, every work unit lands both in the statement total
   and in its cell, so per-operator self-work sums to the statement's
   work by construction (the zero-residue conservation law). *)
type attr = { mutable a_work : int }

let new_attr () = { a_work = 0 }

(* Flattened per-operator actuals of one executed (or planned)
   statement, preorder. Plain data so every layer above can consume it
   without depending on the executor's live tree. *)
type opstat = {
  os_depth : int;
  os_name : string;  (* "scan", "filter", "project", "sort", ... *)
  os_detail : string;  (* access path / rendered expression *)
  os_est_rows : int option;  (* planner estimate, when stats exist *)
  os_rows_in : int;
  os_rows_out : int;
  os_loops : int;
  os_reads : int;  (* pager page reads while this operator ran *)
  os_writes : int;
  os_work : int;  (* self work units *)
}

type profile = {
  pr_stmt : string;  (* statement kind + target, e.g. "select(t)" *)
  pr_ops : opstat list;  (* preorder *)
  pr_overhead_work : int;  (* statement work outside any operator *)
  pr_total_work : int;  (* work-meter delta of the whole statement *)
}

type db = {
  pager : Pager.t;
  tables : (string, table_info) Hashtbl.t;
  indexes : (string, index_info) Hashtbl.t;
  mutable explicit_txn : bool;
  prng : Twine_crypto.Drbg.t;
  mutable work : int;
  mutable last_rowid : int64;
  obs : Twine_obs.Obs.t option;
  mutable sink : attr option;  (* current operator's self-work cell *)
  mutable stats : (string * tbl_stats) list;  (* ANALYZE cache *)
  mutable profiles : profile list;  (* newest first; cleared by reset_work *)
  mutable ns_hint : float;  (* ns per work unit, for EXPLAIN ANALYZE cycles *)
}

(* The single work-meter bump site: statement total plus the current
   operator's self-work cell. *)
let bump t n =
  t.work <- t.work + n;
  match t.sink with Some a -> a.a_work <- a.a_work + n | None -> ()

let record_profile t p = t.profiles <- p :: t.profiles

let profiles t = List.rev t.profiles

let last_profile t = match t.profiles with p :: _ -> Some p | [] -> None

(* Slice [total_ns] across work shares by cumulative rounding:
   slice_i = round(cum_i/total_work * total_ns) - round(cum_{i-1}/...).
   Cumulative sums are monotone so every slice is non-negative, and the
   last cumulative equals [total_ns] exactly, so the slices sum to the
   booking with zero residue — the conservation law the bench gates. *)
let slice_ns ~total_ns works =
  let tw = List.fold_left ( + ) 0 works in
  if tw <= 0 then
    match List.rev works with
    | [] -> []
    | _ :: rest -> List.rev (total_ns :: List.map (fun _ -> 0) rest)
  else begin
    let cum = ref 0 and prev = ref 0 in
    List.map
      (fun w ->
        cum := !cum + w;
        let upto =
          int_of_float
            (Float.round (float_of_int !cum /. float_of_int tw *. float_of_int total_ns))
        in
        let s = upto - !prev in
        prev := upto;
        s)
      works
  end

let catalog_root = 1

(* --- catalog (de)serialisation --- *)

let encode_column c =
  String.concat ":"
    [ c.col_name; c.col_type; (if c.col_pk then "1" else "0");
      (if c.col_not_null then "1" else "0") ]

let decode_column s =
  match String.split_on_char ':' s with
  | [ name; ty; pk; nn ] ->
      { col_name = name; col_type = ty; col_pk = pk = "1"; col_not_null = nn = "1";
        col_default = None }
  | _ -> raise (Pager.Corrupt "bad catalog column")

let rowid_col_of columns =
  List.find_map
    (fun c -> if c.col_pk && c.col_type = "INTEGER" then Some c.col_name else None)
    columns

let save_catalog t =
  (* rebuild the catalog tree in place *)
  Btree.write_node t.pager catalog_root (Btree.Table_leaf []);
  let seq = ref 0L in
  let add values =
    seq := Int64.add !seq 1L;
    Btree.insert_table t.pager ~root:catalog_root ~rowid:!seq (Record.encode values)
  in
  Hashtbl.iter
    (fun _ (ti : table_info) ->
      add
        [ Value.Text "table"; Value.Text ti.tbl_name;
          Value.Int (Int64.of_int ti.tbl_root);
          Value.Text (String.concat ";" (List.map encode_column ti.tbl_columns)) ])
    t.tables;
  Hashtbl.iter
    (fun _ (ii : index_info) ->
      add
        [ Value.Text "index"; Value.Text ii.idx_name;
          Value.Int (Int64.of_int ii.idx_root); Value.Text ii.idx_table;
          Value.Text (String.concat ";" ii.idx_columns);
          Value.Int (if ii.idx_unique then 1L else 0L) ])
    t.indexes

let load_catalog t =
  Btree.iter_table t.pager ~root:catalog_root (fun _ payload ->
      (match Record.decode payload with
      | [ Value.Text "table"; Value.Text name; Value.Int root; Value.Text cols ] ->
          let tbl_columns =
            if cols = "" then []
            else List.map decode_column (String.split_on_char ';' cols)
          in
          Hashtbl.replace t.tables name
            {
              tbl_name = name;
              tbl_root = Int64.to_int root;
              tbl_columns;
              tbl_rowid_col = rowid_col_of tbl_columns;
            }
      | [ Value.Text "index"; Value.Text name; Value.Int root; Value.Text table;
          Value.Text cols; Value.Int unique ] ->
          Hashtbl.replace t.indexes name
            {
              idx_name = name;
              idx_table = table;
              idx_columns = String.split_on_char ';' cols;
              idx_unique = unique = 1L;
              idx_root = Int64.to_int root;
            }
      | _ -> raise (Pager.Corrupt "bad catalog entry"));
      true)

(* --- schema lookups --- *)

let table t name =
  match Hashtbl.find_opt t.tables (String.lowercase_ascii name) with
  | Some ti -> ti
  | None -> fail "no such table: %s" name

let columns_array ti = Array.of_list (List.map (fun c -> c.col_name) ti.tbl_columns)

let col_index ti name =
  let name = String.lowercase_ascii name in
  let rec go i = function
    | [] -> None
    | c :: rest ->
        if String.lowercase_ascii c.col_name = name then Some i else go (i + 1) rest
  in
  go 0 ti.tbl_columns

let is_rowid_column ti name =
  let name = String.lowercase_ascii name in
  name = "rowid"
  || match ti.tbl_rowid_col with
     | Some pk -> String.lowercase_ascii pk = name
     | None -> false

let indexes_of t table_name =
  Hashtbl.fold
    (fun _ ii acc ->
      if String.lowercase_ascii ii.idx_table = String.lowercase_ascii table_name then
        ii :: acc
      else acc)
    t.indexes []

(* --- statistics cache --- *)

let stats_for t name = List.assoc_opt (String.lowercase_ascii name) t.stats

let col_stats_for t tbl col =
  match stats_for t tbl with
  | None -> None
  | Some ts -> List.assoc_opt (String.lowercase_ascii col) ts.ts_cols

let set_stats t stats = t.stats <- stats

(* Rebuild the in-memory cache from the persisted stat tables (present
   when the database was ANALYZEd before being reopened). Reads the
   stored records positionally — the stat tables have no rowid alias, so
   every column is in the payload. *)
let load_stats t =
  let rows_of name =
    match Hashtbl.find_opt t.tables name with
    | None -> []
    | Some ti ->
        let acc = ref [] in
        Btree.iter_table t.pager ~root:ti.tbl_root (fun _ payload ->
            acc := Record.decode payload :: !acc;
            true);
        List.rev !acc
  in
  let rowcounts =
    List.filter_map
      (function
        | [ Value.Text tbl; Value.Null; Value.Int n ] -> Some (tbl, Int64.to_int n)
        | _ -> None)
      (rows_of "stat1")
  in
  let cols =
    List.filter_map
      (function
        | [ Value.Text tbl; Value.Text col; Value.Int nd; Value.Int nn ] ->
            Some ((tbl, col), (Int64.to_int nd, Int64.to_int nn))
        | _ -> None)
      (rows_of "stat_col")
  in
  let hists = Hashtbl.create 8 in
  List.iter
    (function
      | [ Value.Text tbl; Value.Text col; Value.Int b; lo; hi; Value.Int cnt ] ->
          let key = (tbl, col) in
          let old = Option.value (Hashtbl.find_opt hists key) ~default:[] in
          Hashtbl.replace hists key
            ((Int64.to_int b, (lo, hi, Int64.to_int cnt)) :: old)
      | _ -> ())
    (rows_of "stat_hist");
  let stats =
    List.map
      (fun (tbl, rows) ->
        let ts_cols =
          List.filter_map
            (fun ((t', col), (nd, nn)) ->
              if t' <> tbl then None
              else
                let hist =
                  match Hashtbl.find_opt hists (tbl, col) with
                  | None -> [||]
                  | Some buckets ->
                      Array.of_list
                        (List.map snd
                           (List.sort (fun (a, _) (b, _) -> compare a b) buckets))
                in
                Some
                  ( String.lowercase_ascii col,
                    { cs_distinct = nd; cs_nulls = nn; cs_hist = hist } ))
            cols
        in
        (String.lowercase_ascii tbl, { ts_rows = rows; ts_cols }))
      rowcounts
  in
  t.stats <- stats

(* --- open/close --- *)

let open_db ?vfs ?(cache_pages = 2048) ?hooks ?obs path =
  let vfs =
    match vfs with
    | Some v -> v
    | None -> if path = ":memory:" then Svfs.memory () else Svfs.os "."
  in
  let fresh = not (vfs.Svfs.v_exists path) in
  let pager = Pager.create_or_open vfs ~cache_pages ?hooks ?obs path in
  let t =
    {
      pager;
      tables = Hashtbl.create 8;
      indexes = Hashtbl.create 8;
      explicit_txn = false;
      prng = Twine_crypto.Drbg.create ~seed:"sqldb-prng" ();
      work = 0;
      last_rowid = 0L;
      obs;
      sink = None;
      stats = [];
      profiles = [];
      ns_hint = 0.;
    }
  in
  if fresh || Pager.n_pages pager <= 1 then begin
    Pager.begin_txn pager;
    let root = Btree.create pager Btree.Table in
    assert (root = catalog_root);
    Pager.commit pager
  end
  else begin
    load_catalog t;
    load_stats t
  end;
  t

let close t = Pager.close t.pager
