(* Pager: fixed-size pages over a Svfs file, with an LRU page cache and a
   delete-mode rollback journal (the SQLite default the paper benchmarks
   with). All B-tree structures live on pages dispensed here.

   Page 0 is the database header. A transaction journals the pre-image of
   every page before its first modification; commit writes dirty pages,
   syncs, and deletes the journal; rollback (or crash recovery at open)
   copies the pre-images back. *)

let page_size = 4096
let magic = "TWDB0001"
let journal_magic = "TWJR0001"

(* Journal entry: [page u32][pre-image page_size][cksum u32]. The
   checksum lets recovery reject entries that were never made durable: a
   power loss can drop an un-synced entry write while keeping the count
   update, leaving a hole that reads back as zeros (or, torn, as a
   prefix). Replaying such a hole would write garbage over live pages. *)
let entry_size = 4 + page_size + 4

(* FNV-1a over the page number and payload. A zeroed hole stores
   checksum 0 but hashes to a non-zero value, so it never validates. *)
let entry_cksum page_no payload =
  let h = ref 0x811c9dc5 in
  let mix b = h := (!h lxor b) * 0x01000193 land 0xffffffff in
  mix (page_no land 0xff);
  mix ((page_no lsr 8) land 0xff);
  mix ((page_no lsr 16) land 0xff);
  mix ((page_no lsr 24) land 0xff);
  String.iter (fun c -> mix (Char.code c)) payload;
  !h

exception Corrupt of string

type hooks = {
  mutable on_read : int -> unit;  (* page number fetched from storage *)
  mutable on_write : int -> unit;  (* page number written to storage *)
  mutable on_access : int -> unit;  (* page buffer touched in memory *)
  mutable on_work : int -> unit;  (* abstract CPU work units *)
}

type t = {
  vfs : Svfs.t;
  path : string;
  file : Svfs.file;
  mutable cache_pages : int;
  cache : (int, Bytes.t) Twine_sim.Lru.t;
  dirty : (int, unit) Hashtbl.t;
  mutable n_pages : int;
  mutable freelist : int;
  mutable in_txn : bool;
  mutable journal : Svfs.file option;
  journaled : (int, unit) Hashtbl.t;
  mutable journal_count : int;
  mutable txn_orig_pages : int;
  hooks : hooks;
  obs : Twine_obs.Obs.t option;
  mutable stats_reads : int;
  mutable stats_writes : int;
  mutable stats_hits : int;
}

let journal_path path = path ^ "-journal"

let default_hooks () =
  { on_read = (fun _ -> ()); on_write = (fun _ -> ()); on_access = (fun _ -> ());
    on_work = (fun _ -> ()) }

let record ?page t name =
  match t.obs with
  | Some o ->
      Twine_obs.Obs.inc o name;
      let args = match page with Some p -> [ ("page", p) ] | None -> [] in
      Twine_obs.Obs.emit o ~cat:"sqldb" ~args name
  | None -> ()

let write_header t =
  let b = Bytes.make page_size '\000' in
  Bytes.blit_string magic 0 b 0 8;
  Bytes.set_int32_le b 8 (Int32.of_int t.n_pages);
  Bytes.set_int32_le b 12 (Int32.of_int t.freelist);
  t.file.Svfs.v_write ~pos:0 (Bytes.to_string b);
  t.stats_writes <- t.stats_writes + 1;
  record ~page:0 t "sqldb.page_write";
  t.hooks.on_write 0

let read_header t =
  let raw = t.file.Svfs.v_read ~pos:0 ~len:page_size in
  if String.length raw < 16 || String.sub raw 0 8 <> magic then
    raise (Corrupt (t.path ^ ": bad database header"));
  t.n_pages <- Int32.to_int (String.get_int32_le raw 8);
  t.freelist <- Int32.to_int (String.get_int32_le raw 12)

(* --- journal-based crash recovery --- *)

let recover vfs path =
  let jp = journal_path path in
  if vfs.Svfs.v_exists jp then begin
    let j = vfs.Svfs.v_open jp in
    let hdr = j.Svfs.v_read ~pos:0 ~len:16 in
    if String.length hdr >= 16 && String.sub hdr 0 8 = journal_magic then begin
      let count = Int32.to_int (String.get_int32_le hdr 8) in
      let orig_pages = Int32.to_int (String.get_int32_le hdr 12) in
      let db = vfs.Svfs.v_open path in
      for k = 0 to count - 1 do
        let pos = 16 + (k * entry_size) in
        let entry = j.Svfs.v_read ~pos ~len:entry_size in
        if String.length entry = entry_size then begin
          let page_no = Int32.to_int (String.get_int32_le entry 0) in
          let payload = String.sub entry 4 page_size in
          let cksum =
            Int32.to_int (String.get_int32_le entry (4 + page_size))
            land 0xffffffff
          in
          if
            page_no >= 0 && page_no < orig_pages
            && cksum = entry_cksum page_no payload
          then db.Svfs.v_write ~pos:(page_no * page_size) payload
        end
      done;
      db.Svfs.v_truncate (orig_pages * page_size);
      db.Svfs.v_sync ();
      db.Svfs.v_close ()
    end;
    j.Svfs.v_close ();
    vfs.Svfs.v_delete jp
  end

let create_or_open vfs ?(cache_pages = 2048) ?(hooks = default_hooks ()) ?obs path =
  recover vfs path;
  let existed = vfs.Svfs.v_exists path in
  let file = vfs.Svfs.v_open path in
  let t =
    {
      vfs;
      path;
      file;
      cache_pages = max 8 cache_pages;
      cache = Twine_sim.Lru.create ~capacity:max_int ();
      dirty = Hashtbl.create 64;
      n_pages = 1;
      freelist = 0;
      in_txn = false;
      journal = None;
      journaled = Hashtbl.create 64;
      journal_count = 0;
      txn_orig_pages = 1;
      hooks;
      obs;
      stats_reads = 0;
      stats_writes = 0;
      stats_hits = 0;
    }
  in
  if existed && file.Svfs.v_size () >= 16 then read_header t else write_header t;
  t

let n_pages t = t.n_pages

let write_page_out t i (b : Bytes.t) =
  t.file.Svfs.v_write ~pos:(i * page_size) (Bytes.to_string b);
  t.stats_writes <- t.stats_writes + 1;
  record ~page:i t "sqldb.page_write";
  t.hooks.on_write i

(* Evict clean pages (LRU first) until within capacity. Dirty pages are
   pinned: they spill to storage only at commit, so a buffer handed to the
   B-tree for modification is never replaced underneath it. *)
let evict_if_needed t =
  if Twine_sim.Lru.length t.cache > t.cache_pages then begin
    let victims =
      List.filter
        (fun (i, _) -> not (Hashtbl.mem t.dirty i))
        (List.rev (Twine_sim.Lru.to_list t.cache))
    in
    let excess = Twine_sim.Lru.length t.cache - t.cache_pages in
    List.iteri
      (fun k (i, _) ->
        if k < excess then ignore (Twine_sim.Lru.remove t.cache i))
      victims
  end

(* Fetch a page buffer (shared mutable bytes). Callers must not mutate
   without going through [modify]. *)
let read_page t i =
  if i < 0 || i >= t.n_pages then
    raise (Corrupt (Printf.sprintf "%s: page %d out of range (%d)" t.path i t.n_pages));
  t.hooks.on_access i;
  match Twine_sim.Lru.find t.cache i with
  | Some b ->
      t.stats_hits <- t.stats_hits + 1;
      record ~page:i t "sqldb.cache.hit";
      b
  | None ->
      let raw = t.file.Svfs.v_read ~pos:(i * page_size) ~len:page_size in
      let b = Bytes.make page_size '\000' in
      Bytes.blit_string raw 0 b 0 (String.length raw);
      ignore (Twine_sim.Lru.put t.cache i b);
      t.stats_reads <- t.stats_reads + 1;
      record ~page:i t "sqldb.cache.miss";
      record ~page:i t "sqldb.page_read";
      t.hooks.on_read i;
      evict_if_needed t;
      b

(* --- transactions --- *)

let begin_txn t =
  if t.in_txn then invalid_arg "Pager.begin_txn: already in a transaction";
  t.in_txn <- true;
  t.txn_orig_pages <- t.n_pages;
  Hashtbl.reset t.journaled;
  t.journal_count <- 0;
  t.journal <- None

let append_entry t j page_no payload =
  let entry = Bytes.create entry_size in
  Bytes.set_int32_le entry 0 (Int32.of_int page_no);
  Bytes.blit_string payload 0 entry 4 page_size;
  Bytes.set_int32_le entry (4 + page_size)
    (Int32.of_int (entry_cksum page_no payload));
  j.Svfs.v_write ~pos:(16 + (t.journal_count * entry_size)) (Bytes.to_string entry);
  record ~page:page_no t "sqldb.journal_write";
  t.journal_count <- t.journal_count + 1;
  let cnt = Bytes.create 4 in
  Bytes.set_int32_le cnt 0 (Int32.of_int t.journal_count);
  j.Svfs.v_write ~pos:8 (Bytes.to_string cnt);
  Hashtbl.replace t.journaled page_no ()

let ensure_journal t =
  match t.journal with
  | Some j -> j
  | None ->
      let j = t.vfs.Svfs.v_open (journal_path t.path) in
      let hdr = Bytes.make 16 '\000' in
      Bytes.blit_string journal_magic 0 hdr 0 8;
      Bytes.set_int32_le hdr 8 0l;
      Bytes.set_int32_le hdr 12 (Int32.of_int t.txn_orig_pages);
      j.Svfs.v_write ~pos:0 (Bytes.to_string hdr);
      t.journal <- Some j;
      (* entry 0: pre-image of the header page, so rollback restores
         n_pages and the freelist head along with the data pages *)
      let raw = t.file.Svfs.v_read ~pos:0 ~len:page_size in
      append_entry t j 0 (raw ^ String.make (page_size - String.length raw) '\000');
      j

let journal_page t i =
  if not (Hashtbl.mem t.journaled i) && i < t.txn_orig_pages then begin
    let j = ensure_journal t in
    let current =
      match Twine_sim.Lru.peek t.cache i with
      | Some b -> Bytes.to_string b
      | None ->
          let raw = t.file.Svfs.v_read ~pos:(i * page_size) ~len:page_size in
          raw ^ String.make (page_size - String.length raw) '\000'
    in
    append_entry t j i current
  end

(* Get a page for modification: journals the pre-image and marks dirty. *)
let modify t i =
  if not t.in_txn then invalid_arg "Pager.modify: not in a transaction";
  let b = read_page t i in
  journal_page t i;
  Hashtbl.replace t.dirty i ();
  b

let alloc t =
  if not t.in_txn then invalid_arg "Pager.alloc: not in a transaction";
  if t.freelist <> 0 then begin
    let i = t.freelist in
    let b = read_page t i in
    journal_page t i;
    t.freelist <- Int32.to_int (Bytes.get_int32_le b 1);
    Bytes.fill b 0 page_size '\000';
    Hashtbl.replace t.dirty i ();
    i
  end
  else begin
    let i = t.n_pages in
    t.n_pages <- t.n_pages + 1;
    let b = Bytes.make page_size '\000' in
    ignore (Twine_sim.Lru.put t.cache i b);
    Hashtbl.replace t.dirty i ();
    evict_if_needed t;
    i
  end

let free t i =
  let b = modify t i in
  Bytes.fill b 0 page_size '\000';
  Bytes.set b 0 '\000';
  Bytes.set_int32_le b 1 (Int32.of_int t.freelist);
  t.freelist <- i

let commit t =
  if not t.in_txn then invalid_arg "Pager.commit: not in a transaction";
  (* Any transaction that touches storage gets a journal — even one that
     only appended fresh pages (no pre-images to take) needs the header
     pre-image, or a crash mid-commit could leave a header referencing
     pages whose writes never became durable. *)
  if Hashtbl.length t.dirty > 0 then ignore (ensure_journal t);
  (* The journal must be durable before any dirty page lands on the
     database: under power loss, un-synced writes may vanish, and an
     incomplete journal next to a half-updated database is
     unrecoverable. SQLite syncs the journal at the same point. *)
  (match t.journal with Some j -> j.Svfs.v_sync () | None -> ());
  (* write all dirty pages, then header, sync, then drop the journal *)
  let dirty_pages =
    Hashtbl.fold (fun i () acc -> i :: acc) t.dirty [] |> List.sort compare
  in
  List.iter
    (fun i ->
      match Twine_sim.Lru.peek t.cache i with
      | Some b -> write_page_out t i b
      | None -> ())
    dirty_pages;
  Hashtbl.reset t.dirty;
  (* dirty pages were pinned during the transaction; shrink back *)
  evict_if_needed t;
  write_header t;
  t.file.Svfs.v_sync ();
  (match t.journal with
  | Some j ->
      (* Invalidate the header before deleting: a crash between the two
         steps then leaves a journal recovery ignores (bad magic), and a
         journal held in a storage layer with its own commit granularity
         (e.g. a protected file) never exposes a valid magic once the
         transaction is committed. *)
      j.Svfs.v_write ~pos:0 (String.make 16 '\000');
      (* also shrink it where the layer supports truncation, so a later
         journal for the same path can never expose this one's stale
         entries through write holes *)
      j.Svfs.v_truncate 0;
      j.Svfs.v_sync ();
      j.Svfs.v_close ();
      t.vfs.Svfs.v_delete (journal_path t.path)
  | None -> ());
  t.journal <- None;
  t.in_txn <- false

let rollback t =
  if not t.in_txn then invalid_arg "Pager.rollback: not in a transaction";
  (* discard dirty cached pages and restore journaled pre-images *)
  Hashtbl.iter (fun i () -> ignore (Twine_sim.Lru.remove t.cache i)) t.dirty;
  Hashtbl.reset t.dirty;
  (match t.journal with
  | Some j ->
      j.Svfs.v_close ();
      t.journal <- None
  | None -> ());
  t.in_txn <- false;
  recover t.vfs t.path;
  (* reload header and drop any cached page that may be stale *)
  Twine_sim.Lru.clear t.cache;
  if t.file.Svfs.v_size () >= 16 then read_header t
  else begin
    t.n_pages <- 1;
    t.freelist <- 0;
    write_header t
  end

let in_txn t = t.in_txn

let set_cache_pages t n =
  t.cache_pages <- max 8 n;
  evict_if_needed t

let stats t = (t.stats_reads, t.stats_writes, t.stats_hits)

let close t =
  if t.in_txn then rollback t;
  Twine_sim.Lru.clear t.cache;
  t.file.Svfs.v_close ()

let work t n = t.hooks.on_work n
