(** The TWINE runtime (paper §IV): a Wasm engine hosted inside an SGX
    enclave behind a single ECALL, with the SGX-tailored WASI host,
    protected-file persistence, and code confidentiality via attested
    deployment into enclave reserved memory. *)

type engine = Interpreter | Aot

type config = {
  engine : engine;
  strict_wasi : bool;
      (** disable the untrusted POSIX layer entirely (paper §IV-C) *)
  cache_nodes : int;  (** protected-FS node-cache capacity *)
  ipfs_variant : Twine_ipfs.Protected_fs.variant;
  heap_bytes : int;
}

val default_config : config
(** AoT engine, permissive WASI, stock IPFS, 48-node cache, 16 MiB heap. *)

val runtime_code : string
(** The runtime's code identity; its hash is the enclave measurement a
    provider pins during attestation. *)

type t

val create : ?config:config -> ?backing:Twine_ipfs.Backing.t -> Twine_sgx.Machine.t -> t
(** Launch a TWINE enclave on the machine. [backing] is the untrusted
    store behind the protected file system (default: in-memory). *)

val enclave : t -> Twine_sgx.Enclave.t
val machine : t -> Twine_sgx.Machine.t
val fs : t -> Twine_ipfs.Protected_fs.t

val quote : t -> data:string -> Twine_sgx.Attestation.quote

exception Deploy_error of string

(** An application provider (Figure 1): releases its confidential Wasm
    module only to an enclave whose quote proves it runs the genuine
    TWINE runtime on a registered CPU. *)
module Provider : sig
  type provider

  val create : wasm:string -> service:Twine_sgx.Attestation.service -> provider
  (** [wasm] is the binary module; the expected measurement is pinned to
      {!runtime_code}. *)

  val deliver :
    provider ->
    quote:Twine_sgx.Attestation.quote ->
    runtime_pub:string ->
    (string * string * string * string, string) result
  (** Provider-side protocol step: verify the quote and channel binding,
      then return [(provider_secret, iv, ciphertext, tag)] of the module
      under the derived channel key. Exposed for testing impostor
      scenarios; normal use goes through {!deploy_from}. *)
end

val deploy_from : t -> Provider.provider -> unit
(** Full attested deployment: quote, verification, encrypted delivery,
    in-enclave decryption, validation, loading into reserved memory.
    @raise Deploy_error if attestation or authentication fails. *)

val deploy : t -> Twine_wasm.Ast.module_ -> unit
(** Local deployment (no provider); still validated and loaded into
    reserved memory.
    @raise Twine_wasm.Validate.Invalid on an ill-typed module. *)

val install_memory_hook :
  Twine_sgx.Enclave.t -> base:int -> ?committed:int ref -> Twine_wasm.Memory.t -> unit
(** Account guest linear-memory accesses as EPC page touches (with a
    same-page filter so instrumentation cost stays negligible).
    [committed] is the number of bytes at [base] already committed in the
    enclave (default: the memory's current size); pages added by
    [memory.grow] beyond it are EAUG-committed and charged before the
    triggering access. The hook is installed on the memory's access ref
    and replaces any previous hook; {!run} removes it when the call
    returns. *)

type run_outcome = {
  exit_code : int;
  stdout : string;
  fuel : int;
      (** guest instructions executed; both engines meter identically,
          so this is engine-independent on deterministic workloads *)
}

val run :
  ?args:string list ->
  ?env:(string * string) list ->
  ?profile:Twine_obs.Profile.t ->
  ?fuel_limit:int ->
  t ->
  run_outcome
(** Execute the deployed module's WASI start routine inside one ECALL.
    With [profile], a shadow call stack is maintained at every guest
    function entry/exit and per-function instruction/cycle attribution
    is recorded into the profiler (symbols from the module's name
    section; hostcall time charged to the calling Wasm frame). The
    hooks are detached when the call returns.
    With [fuel_limit], the guest traps deterministically ("fuel
    exhausted") once it has executed that many instructions; both
    engines trap at the identical fuel value.
    @raise Deploy_error if nothing is deployed or [_start] is missing. *)

val serve :
  t ->
  ?name:string ->
  ?batch:(string * int) list ->
  (Twine_sgx.Enclave.t -> 'a) ->
  'a
(** The request-service entry point: run the thunk inside one ECALL
    (default span/account name ["twine.serve"]). The serving fleet
    ({!Twine_serve}) batches N queued requests behind a single call, so
    the whole batch pays one enclave round-trip — the transition
    amortisation the paper's §V costs motivate. Charges raised inside
    (SQL work, EPC paging, boundary copies) book normally. With
    [batch], an instant event carrying the given span-context args
    (enclave id, batch size, first/last request id) is emitted to the
    attached flight recorder just before the ECALL, anchoring the batch
    on the timeline. *)

val serve_safe :
  t ->
  ?name:string ->
  ?batch:(string * int) list ->
  (Twine_sgx.Enclave.t -> 'a) ->
  ('a, [ `Transient of string | `Lost of string ]) result
(** Like {!serve} but containing injected enclave faults as a typed
    error: [`Transient] is a recoverable entry failure (the enclave is
    healthy — requeue the batch and retry); [`Lost] is an asynchronous
    enclave abort or an entry into an already-poisoned enclave — call
    {!destroy} and relaunch a replacement. Guest traps and other
    exceptions still propagate: the serving path runs no guest code. *)

val destroy : t -> unit
(** Tear the runtime down after an enclave loss: drops the deployed
    module and guest-memory region, destroys the enclave (idempotent),
    releases every EPC page it still held and purges its
    eviction-provenance entries
    ({!Twine_sgx.Epc.release_enclave}). A replacement created with the
    same backing recovers its durable protected-file state through the
    crash-recovery path at next open. *)

type run_error =
  | Guest_trap of string
      (** the guest trapped (including fuel exhaustion); the enclave
          unwound cleanly and stays reusable *)
  | Enclave_lost of string
      (** an injected enclave abort; the enclave is poisoned — destroy
          and relaunch. Subsequent calls keep returning this error. *)

val run_safe :
  ?args:string list ->
  ?env:(string * string) list ->
  ?profile:Twine_obs.Profile.t ->
  ?fuel_limit:int ->
  t ->
  (run_outcome, run_error) result
(** Like {!run} but containing guest traps and injected enclave faults
    as a typed error instead of an exception. A transient injected
    entry failure ([Twine_sim.Fault.Transient]) still propagates: it is
    the caller's retry decision. *)
