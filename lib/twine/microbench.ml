(* The custom micro-benchmark suite of §V-D: sequential insertion,
   sequential reading and random reading of blob records, swept over
   database sizes, for each technology variant and storage mode. These
   generate Fig 5a/5b/5c, Table II, Fig 6 and (with the IPFS variant
   switch) Fig 7. *)


type point = {
  records : int;
  insert_ns : int;  (* time to insert this step's delta *)
  seq_read_ns : int;  (* time to read all records in order *)
  rand_read_ns : int;  (* time to read [rand_reads] random records *)
}

type sweep_result = {
  variant : Bench_db.variant;
  storage : Bench_db.storage;
  blob_bytes : int;
  points : point list;
}

let schema = "CREATE TABLE kv(id INTEGER PRIMARY KEY, data BLOB)"

let insert_batch ctx ~from_id ~count ~blob_bytes =
  ignore (Bench_db.exec ctx "BEGIN");
  for id = from_id to from_id + count - 1 do
    ignore
      (Bench_db.exec ctx
         (Printf.sprintf "INSERT INTO kv VALUES (%d, randomblob(%d))" id blob_bytes))
  done;
  ignore (Bench_db.exec ctx "COMMIT")

let seq_read ctx ~records =
  (* WHERE-ordered full traversal, as in the paper's sequential test *)
  let rows =
    Bench_db.query ctx
      (Printf.sprintf "SELECT id, length(data) FROM kv WHERE id <= %d" records)
  in
  assert (List.length rows = records)

let rand_read ctx ~records ~samples ~seed =
  let drbg = Twine_crypto.Drbg.create ~seed () in
  for _ = 1 to samples do
    let id = 1 + Twine_crypto.Drbg.int_below drbg records in
    match Bench_db.query ctx (Printf.sprintf "SELECT length(data) FROM kv WHERE id = %d" id) with
    | [ [ _ ] ] -> ()
    | _ -> failwith "record missing"
  done

let sweep ?machine ?(blob_bytes = 256) ?(rand_reads = 400) ?cache_pages
    ?ipfs_variant ?wasm_factor variant storage ~sizes () =
  let ctx =
    Bench_db.create ?machine ?cache_pages ?ipfs_variant ?wasm_factor variant storage
  in
  ignore (Bench_db.exec ctx schema);
  let points = ref [] in
  let have = ref 0 in
  List.iter
    (fun size ->
      let t0 = Bench_db.now_ns ctx in
      if size > !have then
        insert_batch ctx ~from_id:(!have + 1) ~count:(size - !have) ~blob_bytes;
      have := max !have size;
      let t1 = Bench_db.now_ns ctx in
      seq_read ctx ~records:size;
      let t2 = Bench_db.now_ns ctx in
      (* the paper reads one random record at a time, in proportion to the
         database size; [rand_reads] caps the sample count *)
      rand_read ctx ~records:size ~samples:(min size rand_reads)
        ~seed:(string_of_int size);
      let t3 = Bench_db.now_ns ctx in
      points :=
        { records = size; insert_ns = t1 - t0; seq_read_ns = t2 - t1;
          rand_read_ns = t3 - t2 }
        :: !points)
    sizes;
  Bench_db.close ctx;
  { variant; storage; blob_bytes; points = List.rev !points }

(* Table II: normalised run time against native, split below/above the
   EPC boundary. [epc_records] is the database size (in records) at which
   the working set crosses the EPC. *)
let normalise ~(native : sweep_result) ~(other : sweep_result) ~epc_records field =
  let value p =
    match field with
    | `Insert -> p.insert_ns
    | `Seq -> p.seq_read_ns
    | `Rand -> p.rand_read_ns
  in
  let ratio_set pred =
    let pairs =
      List.filter_map
        (fun (n, o) ->
          if pred n.records && value n > 0 then
            Some (float_of_int (value o) /. float_of_int (value n))
          else None)
        (List.combine native.points other.points)
    in
    if pairs = [] then Float.nan
    else begin
      let sorted = List.sort compare pairs in
      List.nth sorted (List.length sorted / 2)
    end
  in
  (ratio_set (fun r -> r <= epc_records), ratio_set (fun r -> r > epc_records))

(* Fig 7: component breakdown of random reads over the protected file
   system, stock vs optimised. *)
type breakdown = {
  ipfs_variant : Twine_ipfs.Protected_fs.variant;
  total_ns : int;
  memset_ns : int;
  ocall_ns : int;
  read_ns : int;  (* boundary copies + untrusted I/O + decryption *)
  sqlite_ns : int;
  accounts : (string * int) list;  (* ledger delta of the phase, desc *)
}

let ipfs_breakdown ?(records = 2000) ?(blob_bytes = 512) ?(samples = 1500)
    ?(cache_pages = 64) ?wasm_factor ipfs_variant =
  let machine = Twine_sgx.Machine.create ~seed:"fig7" () in
  (* point reads of a warmed schema: model prepared statements (as
     Speedtest1 uses), so the SQLite share reflects execution, not SQL
     compilation *)
  let ctx =
    Bench_db.create ~machine ~cache_pages ~ipfs_variant ?wasm_factor
      ~ns_per_work:12. Bench_db.Twine_rt Bench_db.File
  in
  ignore (Bench_db.exec ctx schema);
  insert_batch ctx ~from_id:1 ~count:records ~blob_bytes;
  (* measure only the random-read phase: snapshot the cost histograms
     before it and report the deltas *)
  let obs = machine.Twine_sgx.Machine.obs in
  let sum k =
    match Twine_obs.Obs.hstat obs k with
    | Some h -> h.Twine_obs.Obs.sum
    | None -> 0
  in
  let keys = [ "ipfs.memset"; "ipfs.ocall"; "wasi.ocall"; "ipfs.read"; "ipfs.crypto"; "sqlite" ] in
  let before = List.map (fun k -> (k, sum k)) keys in
  let ledger = Twine_sgx.Machine.ledger machine in
  let l0 = Twine_obs.Ledger.snapshot ledger in
  let t0 = Bench_db.now_ns ctx in
  rand_read ctx ~records ~samples ~seed:"breakdown";
  let total_ns = Bench_db.now_ns ctx - t0 in
  let l1 = Twine_obs.Ledger.snapshot ledger in
  let accounts =
    Twine_obs.Ledger.diff l0 l1
    |> List.filter_map (fun d ->
           if d.Twine_obs.Ledger.delta_ns > 0 then
             Some (d.Twine_obs.Ledger.account, d.Twine_obs.Ledger.delta_ns)
           else None)
  in
  let ns k = sum k - List.assoc k before in
  let r =
    {
      ipfs_variant;
      total_ns;
      memset_ns = ns "ipfs.memset";
      ocall_ns = ns "ipfs.ocall" + ns "wasi.ocall";
      read_ns = ns "ipfs.read" + ns "ipfs.crypto";
      sqlite_ns = ns "sqlite";
      accounts;
    }
  in
  Bench_db.close ctx;
  r
