(* The four technology variants of the paper's SQLite evaluation (§V-C/D):

   - Native:   SQLite compiled natively, outside any enclave
   - Wamr:     the same engine built to Wasm and run by WAMR, outside SGX
   - Sgx_lkl:  the native build inside an enclave under a library OS; all
               POSIX I/O forwarded by OCALL, the disk image encrypted
   - Twine:    the Wasm build inside the enclave; file system calls go to
               the Intel Protected File System through the WASI layer

   CPU time is charged per unit of database work, at the calibrated Wasm
   slowdown for the Wasm-based variants (the factor is measured on this
   machine from the PolyBench suite: AoT-engine time / native time).
   Memory behaviour (page-cache and heap residency vs the EPC) and I/O
   behaviour (OCALLs, cross-boundary copies, encryption) are simulated
   on the machine's virtual clock, so a workload's "time" is
   [Machine.now_ns] progress. *)

open Twine_sgx
open Twine_ipfs
open Twine_sqldb

type variant = Native | Wamr | Sgx_lkl | Twine_rt
type storage = Mem | File

let variant_name = function
  | Native -> "native"
  | Wamr -> "wamr"
  | Sgx_lkl -> "sgx-lkl"
  | Twine_rt -> "twine"

let storage_name = function Mem -> "mem" | File -> "file"

(* --- Wasm slowdown calibration from PolyBench --- *)

let calibrated_factor = ref None

let calibrate_wasm_factor () =
  match !calibrated_factor with
  | Some f -> f
  | None ->
      let kernels =
        List.filter
          (fun k ->
            List.mem k.Twine_polybench.Kernel_dsl.name
              [ "gemm"; "atax"; "jacobi-2d"; "trisolv"; "mvt" ])
          (Twine_polybench.Kernels.all ~scale:0.6 ())
      in
      let ratios =
        List.map
          (fun k ->
            let n = Twine_polybench.Suite.run_native k in
            let w = Twine_polybench.Suite.run_wasm ~engine:`Aot k in
            float_of_int (max 1 w.Twine_polybench.Suite.wall_ns)
            /. float_of_int (max 1 n.Twine_polybench.Suite.wall_ns))
          kernels
      in
      let sorted = List.sort compare ratios in
      let f = max 1.5 (List.nth sorted (List.length sorted / 2)) in
      calibrated_factor := Some f;
      f

let set_wasm_factor f = calibrated_factor := Some f

(* --- storage stacks --- *)

(* Charge plain host-file I/O (the un-enclaved file variants). *)
let host_io_svfs (machine : Machine.t) (inner : Svfs.t) : Svfs.t =
  let wrap_file (f : Svfs.file) : Svfs.file =
    let charge label n =
      Machine.charge machine ~account:"host.io" label
        (machine.costs.untrusted_io_base_ns
        + Costs.bytes_ns machine.costs.untrusted_io_ns_per_byte n)
    in
    {
      f with
      Svfs.v_read =
        (fun ~pos ~len ->
          charge "host.read" len;
          f.Svfs.v_read ~pos ~len);
      v_write =
        (fun ~pos s ->
          charge "host.write" (String.length s);
          f.Svfs.v_write ~pos s);
    }
  in
  { inner with Svfs.v_open = (fun path -> wrap_file (inner.Svfs.v_open path)) }

(* SGX-LKL file I/O: every read/write leaves the enclave (OCALL), copies
   across the boundary, and the disk image is encrypted/decrypted. *)
let lkl_io_svfs (enclave : Enclave.t) (inner : Svfs.t) : Svfs.t =
  let machine = Enclave.machine enclave in
  let wrap_file (f : Svfs.file) : Svfs.file =
    let io label n g =
      let run () =
        Machine.charge machine ~account:"lkl.io" label
          (machine.costs.untrusted_io_base_ns
          + Costs.bytes_ns machine.costs.untrusted_io_ns_per_byte n);
        g ()
      in
      if Enclave.inside enclave then Enclave.ocall enclave ~name:"lkl.ocall" run
      else Enclave.ecall enclave (fun _ -> Enclave.ocall enclave ~name:"lkl.ocall" run)
    in
    {
      f with
      Svfs.v_read =
        (fun ~pos ~len ->
          let data = io "lkl.read" len (fun () -> f.Svfs.v_read ~pos ~len) in
          Enclave.copy_in enclave ~label:"lkl.read" (String.length data);
          Machine.charge machine "lkl.crypto"
            (Costs.bytes_ns machine.costs.aes_ns_per_byte (String.length data));
          data);
      v_write =
        (fun ~pos s ->
          Machine.charge machine "lkl.crypto"
            (Costs.bytes_ns machine.costs.aes_ns_per_byte (String.length s));
          Enclave.copy_out enclave ~label:"lkl.write" (String.length s);
          io "lkl.write" (String.length s) (fun () -> f.Svfs.v_write ~pos s));
    }
  in
  { inner with Svfs.v_open = (fun path -> wrap_file (inner.Svfs.v_open path)) }

(* Svfs over a protected file system (the TWINE file stack). *)
let pfs_svfs (fs : Protected_fs.t) : Svfs.t =
  let open_file path =
    let f = Protected_fs.open_file fs ~mode:`Rdwr path in
    let pad_to target =
      let size = Protected_fs.file_size f in
      if target > size then begin
        ignore (Protected_fs.seek f ~offset:0 ~whence:`End);
        ignore (Protected_fs.write f (String.make (target - size) '\000'))
      end
    in
    {
      Svfs.v_read =
        (fun ~pos ~len ->
          match Protected_fs.seek f ~offset:pos ~whence:`Set with
          | Error _ -> ""
          | Ok _ ->
              let buf = Bytes.create len in
              let n = Protected_fs.read f buf ~off:0 ~len in
              Bytes.sub_string buf 0 n);
      v_write =
        (fun ~pos s ->
          pad_to pos;
          ignore (Protected_fs.seek f ~offset:pos ~whence:`Set);
          ignore (Protected_fs.write f s));
      v_truncate = (fun _ -> ());  (* IPFS cannot shrink files (§IV-E) *)
      v_size = (fun () -> Protected_fs.file_size f);
      v_sync = (fun () -> Protected_fs.flush f);
      v_close = (fun () -> Protected_fs.close f);
    }
  in
  {
    Svfs.v_open = open_file;
    v_delete = (fun path -> ignore (Protected_fs.delete fs path));
    v_exists = (fun path -> Protected_fs.exists fs path);
  }

(* --- the benchmark context --- *)

type t = {
  variant : variant;
  storage : storage;
  machine : Machine.t;
  enclave : Enclave.t option;
  db : Db.t;
  wasm_factor : float;
  ns_per_work : float;
  pager_work : int ref;  (* B-tree work units surfaced via Pager.hooks *)
  mutable pfs : Protected_fs.t option;
}

let in_enclave_cpu = function Sgx_lkl | Twine_rt -> true | Native | Wamr -> false
let is_wasm = function Wamr | Twine_rt -> true | Native | Sgx_lkl -> false

let create ?machine ?(cache_pages = 2048) ?(ipfs_variant = Protected_fs.Optimized)
    ?wasm_factor ?(ns_per_work = 60.) variant storage =
  let machine = match machine with Some m -> m | None -> Machine.create () in
  let wasm_factor =
    match wasm_factor with
    | Some f -> f
    | None -> if is_wasm variant then calibrate_wasm_factor () else 1.0
  in
  let enclave =
    if in_enclave_cpu variant then
      Some
        (Enclave.create machine
           ~signer:(variant_name variant)
           ~heap_bytes:(4 * 1024 * 1024)
           ~code:
             (match variant with
             | Sgx_lkl -> "sgx-lkl: libOS + native sqlite"
             | _ -> Runtime.runtime_code)
           ())
    else None
  in
  let pfs = ref None in
  let vfs =
    match (variant, storage) with
    | (Native | Wamr), Mem -> Svfs.memory ()
    | (Native | Wamr), File -> host_io_svfs machine (Svfs.memory ())
    | (Sgx_lkl | Twine_rt), Mem -> Svfs.memory ()
    | Sgx_lkl, File -> lkl_io_svfs (Option.get enclave) (Svfs.memory ())
    | Twine_rt, File ->
        let fs =
          Protected_fs.create (Option.get enclave) (Backing.memory ())
            ~variant:ipfs_variant ()
        in
        pfs := Some fs;
        pfs_svfs fs
  in
  (* For an in-memory database the page cache is effectively unbounded
     (the whole database lives in the process heap). *)
  let cache_pages = match storage with Mem -> 1_000_000 | File -> cache_pages in
  let hooks = Pager.default_hooks () in
  let pager_work = ref 0 in
  hooks.Pager.on_work <- (fun n -> pager_work := !pager_work + n);
  (match enclave with
  | Some e ->
      (* the page cache (and for Mem the whole database) is enclave
         memory: map page numbers to stable enclave addresses *)
      let base = Enclave.reserve e (1 lsl 33) in
      hooks.Pager.on_access <-
        (fun page_no ->
          Enclave.touch e ~addr:(base + (page_no * Pager.page_size)) ~len:Pager.page_size)
  | None -> ());
  let db = Db.open_db ~vfs ~cache_pages ~hooks ~obs:machine.Machine.obs "bench.db" in
  {
    variant;
    storage;
    machine;
    enclave;
    db;
    wasm_factor;
    ns_per_work;
    pager_work;
    pfs = !pfs;
  }

(* Execute SQL, charging CPU work at the variant's rate. *)
let exec t sql =
  Db.reset_work t.db;
  let result =
    match t.enclave with
    | Some e -> Enclave.ecall e (fun _ -> Db.exec t.db sql)
    | None -> Db.exec t.db sql
  in
  let factor = if is_wasm t.variant then t.wasm_factor else 1.0 in
  let work_ns work_units =
    int_of_float
      (Float.round (float_of_int work_units *. t.ns_per_work *. factor))
  in
  let charge_ns account ns = Machine.charge t.machine ~account "sqlite" ns in
  let charge account work_units = charge_ns account (work_ns work_units) in
  (* The statement's exec booking is sliced across its operator tree
     (plus profiling overhead) in proportion to self-work; the slices
     sum exactly to the single charge they replace, so the books stay
     byte-identical while each operator gains a cycle attribution. *)
  let exec_ns = work_ns (Db.work t.db) in
  let shares =
    List.concat_map
      (fun (p : Db.profile) ->
        List.map (fun (o : Db.opstat) -> o.Db.os_work) p.Db.pr_ops
        @ [ p.Db.pr_overhead_work ])
      (Db.profiles t.db)
  in
  (match shares with
  | [] -> charge_ns "sqldb.exec" exec_ns
  | _ ->
      List.iter
        (fun ns -> if ns > 0 then charge_ns "sqldb.exec" ns)
        (Db.slice_ns ~total_ns:exec_ns shares));
  (* B-tree work units arrive via Pager.hooks between execs (open-time
     work lands in the first exec); book them as pager time *)
  if !(t.pager_work) > 0 then begin
    charge "sqldb.pager" !(t.pager_work);
    t.pager_work := 0
  end;
  result

let query t sql = (exec t sql).Db.rows

let now_ns t = Machine.now_ns t.machine
let obs t = t.machine.Machine.obs

let close t =
  Db.close t.db;
  match t.enclave with Some e -> Enclave.destroy e | None -> ()
