(* The SGX-tailored WASI host (paper §IV-C/§IV-D).

   Instead of plainly forwarding every WASI call to the OS through an
   OCALL (what stock WAMR does), calls are split into:

   - trusted implementations: file-system calls go to the Intel Protected
     File System (transparent encryption, in-enclave node cache),
     randomness comes from the enclave DRBG, monotonic time is fetched
     outside but guarded to never go backwards;
   - generic calls: charged as an OCALL round-trip to an untrusted
     POSIX-like library, disabled entirely in [strict] mode. *)

open Twine_sgx
open Twine_ipfs
open Twine_wasi

(* WASI Vfs.dir over a protected file system instance. Metadata files are
   hidden from listings; fd positions map to protected-file positions;
   seeking past EOF pads with zeros, working around sgx_fseek (§IV-E). *)
let protected_dir (fs : Protected_fs.t) : Vfs.dir =
  let wrap_file (f : Protected_fs.file) : Vfs.file =
    let pad_to target =
      let size = Protected_fs.file_size f in
      if target > size then begin
        ignore (Protected_fs.seek f ~offset:0 ~whence:`End);
        ignore (Protected_fs.write f (String.make (target - size) '\000'))
      end
    in
    {
      Vfs.f_read =
        (fun dst ~off ~len ->
          let tmp = Bytes.create len in
          let n = Protected_fs.read f tmp ~off:0 ~len in
          Bytes.blit tmp 0 dst off n;
          Ok n);
      f_pread =
        (fun dst ~off ~len ~pos ->
          let saved = Protected_fs.tell f in
          let result =
            match Protected_fs.seek f ~offset:pos ~whence:`Set with
            | Error _ -> Ok 0  (* reading past EOF yields nothing *)
            | Ok _ ->
                let tmp = Bytes.create len in
                let n = Protected_fs.read f tmp ~off:0 ~len in
                Bytes.blit tmp 0 dst off n;
                Ok n
          in
          ignore (Protected_fs.seek f ~offset:saved ~whence:`Set);
          result);
      f_write = (fun data -> Ok (Protected_fs.write f data));
      f_pwrite =
        (fun data ~pos ->
          let saved = Protected_fs.tell f in
          pad_to pos;
          ignore (Protected_fs.seek f ~offset:pos ~whence:`Set);
          let n = Protected_fs.write f data in
          ignore
            (Protected_fs.seek f
               ~offset:(min saved (Protected_fs.file_size f))
               ~whence:`Set);
          Ok n);
      f_seek =
        (fun ~offset ~whence ->
          match Protected_fs.seek f ~offset ~whence with
          | Ok p -> Ok p
          | Error _ -> (
              (* WASI permits seeking beyond EOF: extend with null bytes *)
              let target =
                match whence with
                | `Set -> offset
                | `Cur -> Protected_fs.tell f + offset
                | `End -> Protected_fs.file_size f + offset
              in
              if target < 0 then Error Errno.einval
              else begin
                pad_to target;
                match Protected_fs.seek f ~offset:target ~whence:`Set with
                | Ok p -> Ok p
                | Error _ -> Error Errno.einval
              end));
      f_tell = (fun () -> Protected_fs.tell f);
      f_size = (fun () -> Protected_fs.file_size f);
      f_set_size =
        (fun n ->
          let size = Protected_fs.file_size f in
          if n > size then pad_to n;
          (* shrinking is not supported by IPFS; accepted as no-op *)
          Ok ());
      f_sync = (fun () -> Protected_fs.flush f);
      f_close = (fun () -> Protected_fs.close f);
    }
  in
  let open_tbl : (string, Protected_fs.file) Hashtbl.t = Hashtbl.create 8 in
  ignore open_tbl;
  {
    Vfs.d_open =
      (fun path ~create ~trunc ~excl ~append ->
        match Vfs.sanitize path with
        | Error e -> Error e
        | Ok path -> (
            let exists = Protected_fs.exists fs path in
            if excl && exists then Error Errno.eexist
            else if (not create) && not exists then Error Errno.enoent
            else
              try
                let mode = if trunc then `Trunc else `Rdwr in
                let f = Protected_fs.open_file fs ~mode path in
                if append then ignore (Protected_fs.seek f ~offset:0 ~whence:`End);
                Ok (wrap_file f)
              with Protected_fs.Integrity_violation _ -> Error Errno.eio));
    d_unlink =
      (fun path ->
        match Vfs.sanitize path with
        | Error e -> Error e
        | Ok path -> if Protected_fs.delete fs path then Ok () else Error Errno.enoent);
    d_create_dir = (fun _ -> Ok ());  (* flat namespace *)
    d_remove_dir = (fun _ -> Ok ());
    d_rename = (fun _ _ -> Error Errno.enotsup);
    d_stat =
      (fun path ->
        match Vfs.sanitize path with
        | Error e -> Error e
        | Ok path ->
            if not (Protected_fs.exists fs path) then Error Errno.enoent
            else begin
              let f = Protected_fs.open_file fs ~mode:`Rdonly path in
              let size = Protected_fs.file_size f in
              Protected_fs.close f;
              Ok { Vfs.st_size = size; st_filetype = Vfs.Regular }
            end);
    d_list = (fun _ -> Ok []);
  }

(* WASI providers for an enclave-hosted runtime. *)
let providers ?(strict = false) (enclave : Enclave.t) : Api.providers =
  let machine = Enclave.machine enclave in
  let last_mono = ref 0L in
  let generic_ocall name f =
    (* generic POSIX layer: leave the enclave, call, come back.
       Transient untrusted-host failures (fault site ["host.ocall"], or
       a [Fault.Transient] surfacing from the host body) are retried a
       bounded number of times; each retry charges virtual backoff time
       under the [fault.retry] ledger account, so retries are visible
       in reports and the conservation audit still balances. *)
    if strict then invalid_arg ("strict mode: untrusted call " ^ name)
    else begin
      let attempt () =
        (match Twine_sim.Fault.consult "host.ocall" with
        | Some Twine_sim.Fault.Fail ->
            raise (Twine_sim.Fault.Transient ("host.ocall " ^ name))
        | Some Twine_sim.Fault.Crash ->
            raise (Twine_sim.Fault.Crashed ("host.ocall " ^ name))
        | _ -> ());
        f ()
      in
      let call () =
        if Enclave.inside enclave then
          Enclave.ocall enclave ~name:"wasi.ocall" attempt
        else attempt ()
      in
      let rec go tries =
        try call ()
        with Twine_sim.Fault.Transient _ when tries < 3 ->
          Machine.charge machine ~account:"fault.retry" "host.retry"
            (1000 * (tries + 1));
          go (tries + 1)
      in
      go 0
    end
  in
  {
    Api.clock_realtime =
      (fun () ->
        generic_ocall "clock_realtime" (fun () ->
            Int64.of_int (Machine.now_ns machine)));
    clock_monotonic =
      (fun () ->
        (* fetched outside, then guarded in-enclave (§IV-C) *)
        let raw =
          generic_ocall "clock_monotonic" (fun () ->
              Int64.of_int (Machine.now_ns machine))
        in
        if Int64.compare raw !last_mono > 0 then last_mono := raw;
        !last_mono);
    random = (fun n -> Enclave.random enclave n);  (* trusted: in-enclave DRBG *)
    stdout = (fun s -> Enclave.copy_out enclave (String.length s));
    stderr = (fun s -> Enclave.copy_out enclave (String.length s));
    on_call =
      (fun name ->
        Machine.charge machine ~account:("wasi." ^ name) "wasi.dispatch" 40);
  }
