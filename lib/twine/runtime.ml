(* The TWINE runtime (paper §IV): a Wasm engine hosted inside an SGX
   enclave behind a single ECALL, with the SGX-tailored WASI host and
   code confidentiality via deployment into reserved memory.

   Workflow (Figure 1): the application provider attests the enclave,
   then ships the (AoT-compiled) Wasm module over a protected channel;
   the module never exists in plaintext outside enclave memory. *)

open Twine_sgx
open Twine_ipfs
open Twine_wasm
open Twine_wasi

type engine = Interpreter | Aot

type config = {
  engine : engine;
  strict_wasi : bool;  (* disable the untrusted POSIX layer (§IV-C) *)
  cache_nodes : int;  (* IPFS node cache *)
  ipfs_variant : Protected_fs.variant;
  heap_bytes : int;
}

let default_config =
  {
    engine = Aot;
    strict_wasi = false;
    cache_nodes = 48;
    ipfs_variant = Protected_fs.Stock;
    heap_bytes = 16 * 1024 * 1024;
  }

(* The enclave's measured code identity: runtime, not application (the
   application arrives later over the secure channel). *)
let runtime_code = "twine-runtime: wamr-aot + wasi-sgx + ipfs, v1"

(* The guest linear-memory region inside the enclave. Reserved once per
   runtime (sized for the module's maximum memory) and reused across
   runs, so repeated [run]s do not leak enclave heap; [committed] tracks
   how much of it has been EAUG-committed so far, including pages added
   by [memory.grow] during a run. *)
type mem_region = { base : int; cap : int; committed : int ref }

type t = {
  config : config;
  machine : Machine.t;
  enclave : Enclave.t;
  fs : Protected_fs.t;
  mutable deployed : (Ast.module_ * int) option;  (* module, reserved addr *)
  mutable guest_mem : mem_region option;
}

let create ?(config = default_config) ?backing machine =
  let enclave =
    Enclave.create machine ~signer:"twine" ~heap_bytes:config.heap_bytes
      ~code:runtime_code ()
  in
  let backing = match backing with Some b -> b | None -> Backing.memory () in
  let fs =
    Protected_fs.create enclave backing ~variant:config.ipfs_variant
      ~cache_nodes:config.cache_nodes ()
  in
  { config; machine; enclave; fs; deployed = None; guest_mem = None }

let enclave t = t.enclave
let machine t = t.machine
let fs t = t.fs

let quote t ~data = Attestation.quote t.enclave ~data

(* --- secure deployment (Figure 1) --- *)

exception Deploy_error of string

(* An application provider: holds the Wasm module, verifies the enclave's
   quote against the attestation service and the expected measurement,
   and releases the module encrypted under a fresh channel key. *)
module Provider = struct
  type provider = {
    wasm : string;  (* binary module, confidential *)
    service : Attestation.service;
    expected_measurement : string;
  }

  let create ~wasm ~service =
    {
      wasm;
      service;
      expected_measurement = Twine_crypto.Sha256.digest ("mrenclave:" ^ runtime_code);
    }

  (* The runtime's half of the channel key is bound into the quote's
     report data; the provider returns its half plus the ciphertext. *)
  let deliver p ~(quote : Attestation.quote) ~runtime_pub =
    if not (Attestation.verify_quote p.service ~expected_measurement:p.expected_measurement quote)
    then Error "attestation failed: enclave not trusted"
    else if String.sub quote.body.report_data 0 32 <> Twine_crypto.Sha256.digest runtime_pub
    then Error "channel binding mismatch"
    else begin
      let provider_secret = Twine_crypto.Sha256.digest ("provider-ephemeral:" ^ p.wasm) in
      let shared =
        Twine_crypto.Hmac.derive ~key:(runtime_pub ^ provider_secret)
          ~info:"twine-channel" ~length:16
      in
      let key = Twine_crypto.Gcm.of_raw shared in
      let iv = String.sub (Twine_crypto.Sha256.digest provider_secret) 0 12 in
      let ct, tag = Twine_crypto.Gcm.encrypt key ~iv p.wasm in
      Ok (provider_secret, iv, ct, tag)
    end
end

(* Deploy a module through the attested channel. In the simulation the
   "Diffie-Hellman" is a hash-combined shared secret; what matters for
   the model is the flow: quote -> verify -> encrypted delivery ->
   decrypt inside the enclave -> reserved memory. *)
let deploy_from t (p : Provider.provider) =
  Enclave.ecall t.enclave ~name:"twine.deploy" (fun _ ->
      let runtime_pub = Enclave.random t.enclave 32 in
      let q = quote t ~data:(Twine_crypto.Sha256.digest runtime_pub) in
      match Provider.deliver p ~quote:q ~runtime_pub with
      | Error e -> raise (Deploy_error e)
      | Ok (provider_secret, iv, ct, tag) ->
          let shared =
            Twine_crypto.Hmac.derive ~key:(runtime_pub ^ provider_secret)
              ~info:"twine-channel" ~length:16
          in
          let key = Twine_crypto.Gcm.of_raw shared in
          (match Twine_crypto.Gcm.decrypt key ~iv ~tag ct with
          | None -> raise (Deploy_error "module ciphertext failed authentication")
          | Some wasm_binary ->
              (* into reserved memory: never in untrusted memory in clear *)
              let addr = Enclave.load_reserved t.enclave wasm_binary in
              let module_ =
                try Binary.decode wasm_binary
                with Binary.Decode_error m -> raise (Deploy_error ("bad module: " ^ m))
              in
              Validate.check_module module_;
              t.deployed <- Some (module_, addr)))

(* Deploy a module directly (no provider); still validated and loaded
   into reserved memory. *)
let deploy t (module_ : Ast.module_) =
  Validate.check_module module_;
  Enclave.ecall t.enclave ~name:"twine.deploy" (fun _ ->
      let addr = Enclave.load_reserved t.enclave (Binary.encode module_) in
      t.deployed <- Some (module_, addr))

(* --- execution --- *)

(* Track Wasm linear-memory accesses in the EPC. Consecutive accesses to
   the same 4 KiB page are filtered out before reaching the simulator:
   they would be EPC hits anyway, and the filter keeps the instrumentation
   overhead negligible for loop-local access patterns.

   [committed] is the number of bytes at [base] already committed in the
   enclave; when the guest executes [memory.grow], the next access sees a
   larger memory and the fresh pages are EAUG-committed before the access
   is accounted, so grown memory is not silently free. *)
let install_memory_hook enclave ~base ?committed mem =
  let last_page = ref (-1) in
  let committed =
    match committed with Some c -> c | None -> ref (Memory.size_bytes mem)
  in
  (Memory.on_access mem) :=
    Some
      (fun ~addr ~len ->
        let size = Memory.size_bytes mem in
        if size > !committed then begin
          Enclave.commit enclave ~addr:(base + !committed) ~len:(size - !committed);
          committed := size
        end;
        let page = (base + addr) lsr 12 in
        if page <> !last_page || len > 4096 then begin
          last_page := page;
          Enclave.touch enclave ~addr:(base + addr) ~len
        end)

type run_outcome = {
  exit_code : int;
  stdout : string;
  fuel : int;  (* instructions executed (metered identically by both engines) *)
}

(* Shadow-call-stack hooks for the guest profiler: enter/exit at every
   Wasm activation, feeding the engine's cumulative fuel counter so the
   profiler can attribute instruction deltas. Host functions push no
   frame — their virtual-clock cost lands in the calling Wasm frame. *)
let attach_profile prof machine (module_ : Ast.module_) (inst : Instance.t) =
  Twine_obs.Profile.set_namer prof (fun i ->
      match Ast.func_name module_ i with
      | Some n -> n
      | None -> Printf.sprintf "func[%d]" i);
  (* Route the machine ledger's attribution context through the shadow
     stack: charges landing while a guest frame is live book into that
     frame's row of the function x account matrix. *)
  Twine_obs.Profile.connect_ledger prof (Machine.ledger machine);
  inst.Instance.hooks <-
    Some
      {
        Instance.on_enter =
          (fun i -> Twine_obs.Profile.enter prof ~fuel:inst.Instance.fuel_used i);
        Instance.on_exit =
          (fun i -> Twine_obs.Profile.exit prof ~fuel:inst.Instance.fuel_used i);
      }

let run ?(args = [ "app" ]) ?env ?profile ?fuel_limit t =
  match t.deployed with
  | None -> raise (Deploy_error "no module deployed")
  | Some (module_, _addr) ->
      (* The single ECALL of §IV-C: enter the enclave, start the runtime,
         execute the WASI start routine. *)
      Twine_obs.Obs.in_span t.machine.Machine.obs "twine.main" @@ fun () ->
      Enclave.ecall t.enclave ~name:"twine.main" (fun _ ->
          let out = Buffer.create 64 in
          let base = Sgx_host.providers ~strict:t.config.strict_wasi t.enclave in
          let providers =
            {
              base with
              Api.stdout =
                (fun s ->
                  base.Api.stdout s;
                  Buffer.add_string out s);
            }
          in
          let preopens = [ (".", Sgx_host.protected_dir t.fs) ] in
          let obs = t.machine.Machine.obs in
          let ctx = Api.create ~args ?env ~preopens ~providers ~obs () in
          let inst = Interp.instantiate ~imports:(Api.imports ctx) module_ in
          (match fuel_limit with
          | Some l ->
              if l < 0 then invalid_arg "Runtime.run: negative fuel limit";
              inst.Instance.fuel_limit <- l
          | None -> ());
          (* charge AoT code generation or set up interpretation *)
          (match t.config.engine with
          | Aot ->
              let n = Aot.compile_instance inst in
              Twine_obs.Obs.add obs "twine.aot.funcs" n;
              Twine_obs.Obs.emit obs ~cat:"twine" ~args:[ ("funcs", n) ] "twine.aot";
              Machine.charge t.machine "twine.aot" (n * 1500)
          | Interpreter -> ());
          Api.bind_memory ctx inst;
          (* In-enclave Wasm linear memory participates in EPC pressure.
             The region is reserved once (sized for the module's declared
             maximum so grown pages never collide with later allocations)
             and reused by subsequent runs: only the delta between what is
             already committed and what this run's initial memory needs is
             committed — repeated runs do not leak enclave heap. *)
          let mem = Api.memory ctx in
          let need = Memory.size_bytes mem in
          let region =
            match t.guest_mem with
            | Some r when r.cap >= need -> r
            | _ ->
                let cap = max need (Memory.max_pages mem * Types.page_size) in
                let base = Enclave.reserve t.enclave cap in
                let r = { base; cap; committed = ref 0 } in
                t.guest_mem <- Some r;
                r
          in
          if need > !(region.committed) then begin
            Enclave.commit t.enclave
              ~addr:(region.base + !(region.committed))
              ~len:(need - !(region.committed));
            region.committed := need
          end;
          install_memory_hook t.enclave ~base:region.base
            ~committed:region.committed mem;
          (match profile with
          | Some prof -> attach_profile prof t.machine module_ inst
          | None -> ());
          let finally () =
            (Memory.on_access mem) := None;
            inst.Instance.hooks <- None;
            Twine_obs.Ledger.set_context (Machine.ledger t.machine) None
          in
          let exit_code =
            Fun.protect ~finally (fun () ->
                match Instance.export_func inst "_start" with
                | None -> raise (Deploy_error "module has no _start")
                | Some _ -> (
                    try
                      ignore (Interp.invoke inst "_start" []);
                      0
                    with Api.Proc_exit code -> code))
          in
          let fuel = Interp.fuel_used inst in
          Twine_obs.Obs.add obs "twine.fuel" fuel;
          if fuel > 0 then
            Twine_obs.Obs.emit obs ~cat:"twine" ~args:[ ("fuel", fuel) ] "twine.fuel";
          { exit_code; stdout = Buffer.contents out; fuel })

(* --- request serving --- *)

(* The reusable request-service entry point: one ECALL brackets an
   entire batch of client requests, so N queued requests pay a single
   ≈13,100-cycle enclave round-trip instead of N (the paper's #1 cost,
   amortised Occlum-style by multiplexing work inside the enclave). The
   thunk runs with the enclave entered; nested ecalls (e.g. per-request
   helpers that defensively enter) are free, and the serving layer
   charges per-request work while inside. *)
let serve t ?(name = "twine.serve") ?batch f =
  (match batch with
  | Some args -> Twine_obs.Obs.emit (Machine.obs t.machine) ~cat:"serve" ~args name
  | None -> ());
  Enclave.ecall t.enclave ~name f

(* [run_safe]-style containment for the serving entry point, with the
   transient/lost distinction the fleet scheduler needs: a [`Transient]
   entry failure leaves the enclave healthy (requeue and retry against
   the same enclave); [`Lost] means the enclave is poisoned — tear it
   down with {!destroy} and relaunch a replacement. *)
let serve_safe t ?name ?batch f =
  try Ok (serve t ?name ?batch f) with
  | Twine_sim.Fault.Transient msg -> Error (`Transient msg)
  | Twine_sim.Fault.Crashed msg -> Error (`Lost msg)
  | Enclave.Poisoned -> Error (`Lost "enclave poisoned by earlier abort")

(* Tear the runtime down after an enclave loss: drop the deployed module
   and the guest-memory region (their enclave addresses die with the
   enclave; keeping them would let a later [run] touch pages of a dead
   address space), then destroy the enclave — which releases every EPC
   page it still holds and purges its eviction-provenance entries, so a
   relaunched replacement starts from clean machine-level accounting. *)
let destroy t =
  t.deployed <- None;
  t.guest_mem <- None;
  Enclave.destroy t.enclave

(* --- fault containment --- *)

type run_error =
  | Guest_trap of string  (* the guest trapped; the enclave survives *)
  | Enclave_lost of string  (* injected abort: destroy and relaunch *)

(* Typed-result execution: a guest trap (including deterministic fuel
   exhaustion) is contained — the ECALL unwinds cleanly, hooks and
   ledger context are detached by [run]'s protections, and the enclave
   stays reusable for the next [run]. An injected enclave abort instead
   poisons the enclave; it is reported once as [Enclave_lost] and every
   later attempt short-circuits to the same error. *)
let run_safe ?args ?env ?profile ?fuel_limit t =
  try Ok (run ?args ?env ?profile ?fuel_limit t) with
  | Values.Trap _ as e -> Error (Guest_trap (Interp.trap_message e))
  | Twine_sim.Fault.Crashed msg -> Error (Enclave_lost msg)
  | Enclave.Poisoned -> Error (Enclave_lost "enclave poisoned by earlier abort")
