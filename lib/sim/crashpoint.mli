(** Crash-point exploration: record the durable-store operation log of a
    workload, then replay truncated prefixes of it into a fresh store to
    reconstruct every state a power loss could have left behind.

    The log is store-agnostic: both the SQLite VFS layer (file-level
    writes and syncs) and the IPFS backing store (key-level ciphertext
    writes) record into it, and replay is parameterised by an [apply]
    closure so the harness decides what a fresh store looks like.

    The replay model is in-order durability: a crash after k operations
    leaves exactly the first k applied, optionally with a torn version
    of operation k+1 (a write cut mid-payload). {!replay_unsynced}
    additionally drops a seed-chosen subset of the writes issued after
    the last sync barrier in the prefix, modelling a device that only
    guarantees ordering across sync. *)

type op =
  | Write of { file : string; pos : int; data : string }
  | Truncate of { file : string; size : int }
  | Delete of { file : string }
  | Sync of { file : string }

type log

val create : unit -> log
val record : log -> op -> unit
val length : log -> int
val ops : log -> op list
(** In record order. *)

val clear : log -> unit

val replay : ?torn:bool -> log -> at:int -> apply:(op -> unit) -> unit
(** Apply the first [at] operations. With [torn], additionally apply a
    half-length version of operation [at] when it is a [Write] (the
    write that was in flight when power failed). *)

val replay_unsynced : seed:string -> log -> at:int -> apply:(op -> unit) -> unit
(** Like {!replay}, but each write issued after the last [Sync] within
    the prefix survives only with probability 1/2 (chosen by [seed]):
    un-synced writes may be dropped, synced ones never are. *)

val describe : op -> string
(** One-line rendering for failure reports. *)
