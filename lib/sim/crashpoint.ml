(* Crash-point op log and prefix replay (see the .mli). *)

type op =
  | Write of { file : string; pos : int; data : string }
  | Truncate of { file : string; size : int }
  | Delete of { file : string }
  | Sync of { file : string }

type log = { mutable rev : op list; mutable n : int }

let create () = { rev = []; n = 0 }

let record l op =
  l.rev <- op :: l.rev;
  l.n <- l.n + 1

let length l = l.n
let ops l = List.rev l.rev

let clear l =
  l.rev <- [];
  l.n <- 0

let torn_write = function
  | Write { file; pos; data } when data <> "" ->
      Some (Write { file; pos; data = String.sub data 0 (String.length data / 2) })
  | _ -> None

let replay ?(torn = false) l ~at ~apply =
  if at < 0 || at > l.n then invalid_arg "Crashpoint.replay: prefix out of range";
  let all = ops l in
  List.iteri (fun i op -> if i < at then apply op) all;
  if torn && at < l.n then
    match torn_write (List.nth all at) with Some w -> apply w | None -> ()

(* Same generator family as Fault's, reseeded per replay so the dropped
   subset is a pure function of (seed, prefix). *)
let replay_unsynced ~seed l ~at ~apply =
  if at < 0 || at > l.n then invalid_arg "Crashpoint.replay_unsynced: out of range";
  let prefix = List.filteri (fun i _ -> i < at) (ops l) in
  (* index of the op after the last sync barrier within the prefix *)
  let barrier =
    List.fold_left
      (fun (i, b) op -> (i + 1, match op with Sync _ -> i + 1 | _ -> b))
      (0, 0) prefix
    |> snd
  in
  let state = ref (Fault.hash_seed (seed ^ ":" ^ string_of_int at)) in
  let keep () =
    let x = !state in
    let x = Int64.logxor x (Int64.shift_left x 13) in
    let x = Int64.logxor x (Int64.shift_right_logical x 7) in
    let x = Int64.logxor x (Int64.shift_left x 17) in
    state := x;
    Int64.logand (Int64.mul x 0x2545f4914f6cdd1dL) 1L = 0L
  in
  List.iteri
    (fun i op ->
      match op with
      | Write _ when i >= barrier -> if keep () then apply op
      | _ -> apply op)
    prefix

let describe = function
  | Write { file; pos; data } ->
      Printf.sprintf "write %s @%d (%d bytes)" file pos (String.length data)
  | Truncate { file; size } -> Printf.sprintf "truncate %s -> %d" file size
  | Delete { file } -> "delete " ^ file
  | Sync { file } -> "sync " ^ file
