(* Chaos schedules: a small textual grammar over Fault rules, so a CLI
   flag (or a bench sweep) can describe a seeded fault schedule without
   writing OCaml. The spec keeps activation windows *relative* to an
   anchor (the serving phase's start): [to_plan ~t0] rebases them onto
   the machine clock at arm time, which is what lets one spec string
   mean "crash mid-steady-state" for any setup duration. *)

type rule_spec = {
  c_site : string;
  c_action : Fault.action;
  c_nth : int option;
  c_prob : float;
  c_count : int option;
  c_from_ns : int option;  (* relative to the anchor passed to [to_plan] *)
  c_until_ns : int option;
}

type spec = { c_seed : string; c_rules : rule_spec list }

let default_seed = "chaos"

(* --- parsing ---

   SPEC  := item (';' item)*
   item  := 'seed=' NAME | rule
   rule  := SITE '=' ACTION tail*
   ACTION:= 'crash' | 'fail' | 'drop' | 'corrupt' | 'torn:' FLOAT
          | 'delay:' DUR
   tail  := '@' N          fire on exactly the N-th operation
          | '%' FLOAT      per-operation probability
          | 'x' N          cap total injections
          | '[' DUR '..' DUR ']'   activation window (relative virtual
                                   time; either bound may be empty)
   DUR   := INT ('ns' | 'us' | 'ms' | 's')?   (default ns) *)

let parse_duration s =
  let num, mult =
    if String.length s >= 2 && String.sub s (String.length s - 2) 2 = "ns" then
      (String.sub s 0 (String.length s - 2), 1)
    else if String.length s >= 2 && String.sub s (String.length s - 2) 2 = "us"
    then (String.sub s 0 (String.length s - 2), 1_000)
    else if String.length s >= 2 && String.sub s (String.length s - 2) 2 = "ms"
    then (String.sub s 0 (String.length s - 2), 1_000_000)
    else if String.length s >= 1 && s.[String.length s - 1] = 's' then
      (String.sub s 0 (String.length s - 1), 1_000_000_000)
    else (s, 1)
  in
  match int_of_string_opt num with
  | Some n when n >= 0 -> Some (n * mult)
  | _ -> None

let parse_action s =
  match String.index_opt s ':' with
  | None -> (
      match s with
      | "crash" -> Some Fault.Crash
      | "fail" -> Some Fault.Fail
      | "drop" -> Some Fault.Drop
      | "corrupt" -> Some Fault.Corrupt
      | _ -> None)
  | Some i -> (
      let head = String.sub s 0 i in
      let arg = String.sub s (i + 1) (String.length s - i - 1) in
      match head with
      | "torn" -> (
          match float_of_string_opt arg with
          | Some f when f >= 0. && f <= 1. -> Some (Fault.Torn f)
          | _ -> None)
      | "delay" -> (
          match parse_duration arg with
          | Some ns -> Some (Fault.Delay ns)
          | None -> None)
      | _ -> None)

(* Split [s] at the first unconsumed tail marker, returning the action
   text and the list of tail tokens (marker, payload). Window brackets
   contain '.' and digits only, so a linear scan suffices. *)
let split_tails s =
  let n = String.length s in
  (* the action may itself contain ':' args with digits; 'x' only marks
     a tail when followed by a digit, so "crash" vs "...x3" disambiguate *)
  let rec scan i =
    if i >= n then n
    else
      match s.[i] with
      | '@' | '%' | '[' -> i
      | 'x' when i + 1 < n && s.[i + 1] >= '0' && s.[i + 1] <= '9' -> i
      | _ -> scan (i + 1)
  in
  let cut = scan 0 in
  let action = String.sub s 0 cut in
  let rec tails i acc =
    if i >= n then List.rev acc
    else
      match s.[i] with
      | '[' -> (
          match String.index_from_opt s i ']' with
          | None -> List.rev (('!', "unterminated window") :: acc)
          | Some j -> tails (j + 1) (('[', String.sub s (i + 1) (j - i - 1)) :: acc))
      | ('@' | '%' | 'x') as m ->
          let j = ref (i + 1) in
          while
            !j < n && (match s.[!j] with '@' | '%' | 'x' | '[' -> false | _ -> true)
          do
            incr j
          done;
          tails !j ((m, String.sub s (i + 1) (!j - i - 1)) :: acc)
      | _ -> List.rev (('!', "bad tail") :: acc)
  in
  (action, tails cut [])

let parse_rule item =
  match String.index_opt item '=' with
  | None -> Error (Printf.sprintf "chaos: %S is not SITE=ACTION" item)
  | Some i -> (
      let site = String.sub item 0 i in
      let rest = String.sub item (i + 1) (String.length item - i - 1) in
      if site = "" then Error "chaos: empty site"
      else
        let action_txt, tails = split_tails rest in
        match parse_action action_txt with
        | None -> Error (Printf.sprintf "chaos: unknown action %S" action_txt)
        | Some action ->
            let r =
              ref
                {
                  c_site = site;
                  c_action = action;
                  c_nth = None;
                  c_prob = 0.;
                  c_count = None;
                  c_from_ns = None;
                  c_until_ns = None;
                }
            in
            let err = ref None in
            List.iter
              (fun (m, payload) ->
                if !err = None then
                  match m with
                  | '@' -> (
                      match int_of_string_opt payload with
                      | Some n when n >= 1 -> r := { !r with c_nth = Some n }
                      | _ -> err := Some ("chaos: bad @nth " ^ payload))
                  | '%' -> (
                      match float_of_string_opt payload with
                      | Some p when p >= 0. && p <= 1. ->
                          r := { !r with c_prob = p }
                      | _ -> err := Some ("chaos: bad %prob " ^ payload))
                  | 'x' -> (
                      match int_of_string_opt payload with
                      | Some n when n >= 1 -> r := { !r with c_count = Some n }
                      | _ -> err := Some ("chaos: bad xcount " ^ payload))
                  | '[' -> (
                      (* FROM..UNTIL, either side may be empty *)
                      let split =
                        let rec find i =
                          if i + 1 >= String.length payload then None
                          else if payload.[i] = '.' && payload.[i + 1] = '.' then
                            Some i
                          else find (i + 1)
                        in
                        find 0
                      in
                      match split with
                      | None -> err := Some ("chaos: bad window " ^ payload)
                      | Some i ->
                          let a = String.sub payload 0 i in
                          let b =
                            String.sub payload (i + 2) (String.length payload - i - 2)
                          in
                          let from_ns =
                            if a = "" then Ok None
                            else
                              match parse_duration a with
                              | Some v -> Ok (Some v)
                              | None -> Error a
                          in
                          let until_ns =
                            if b = "" then Ok None
                            else
                              match parse_duration b with
                              | Some v -> Ok (Some v)
                              | None -> Error b
                          in
                          (match (from_ns, until_ns) with
                          | Ok f, Ok u ->
                              (match (f, u) with
                              | Some f', Some u' when u' <= f' ->
                                  err := Some ("chaos: empty window " ^ payload)
                              | _ ->
                                  r := { !r with c_from_ns = f; c_until_ns = u })
                          | Error d, _ | _, Error d ->
                              err := Some ("chaos: bad duration " ^ d)))
                  | _ -> err := Some ("chaos: " ^ payload))
              tails;
            (match (!r).c_nth with
            | None when (!r).c_prob = 0. ->
                err := Some (Printf.sprintf "chaos: rule for %s never fires (no @nth or %%prob)" site)
            | _ -> ());
            (match !err with Some e -> Error e | None -> Ok !r))

let parse s =
  let items =
    List.filter (fun x -> x <> "") (String.split_on_char ';' (String.trim s))
  in
  if items = [] then Error "chaos: empty spec"
  else
    let seed = ref default_seed in
    let rules = ref [] in
    let err = ref None in
    List.iter
      (fun item ->
        if !err = None then
          let item = String.trim item in
          if String.length item > 5 && String.sub item 0 5 = "seed=" then
            seed := String.sub item 5 (String.length item - 5)
          else
            match parse_rule item with
            | Ok r -> rules := r :: !rules
            | Error e -> err := Some e)
      items;
    match !err with
    | Some e -> Error e
    | None ->
        if !rules = [] then Error "chaos: no rules"
        else Ok { c_seed = !seed; c_rules = List.rev !rules }

(* --- rendering (canonical; parse (render s) = s) --- *)

let render_action = function
  | Fault.Crash -> "crash"
  | Fault.Fail -> "fail"
  | Fault.Drop -> "drop"
  | Fault.Corrupt -> "corrupt"
  | Fault.Torn f -> Printf.sprintf "torn:%g" f
  | Fault.Delay ns -> Printf.sprintf "delay:%d" ns

let render_rule r =
  let b = Buffer.create 32 in
  Buffer.add_string b r.c_site;
  Buffer.add_char b '=';
  Buffer.add_string b (render_action r.c_action);
  (match r.c_nth with
  | Some n -> Buffer.add_string b (Printf.sprintf "@%d" n)
  | None -> ());
  if r.c_prob > 0. then Buffer.add_string b (Printf.sprintf "%%%g" r.c_prob);
  (match r.c_count with
  | Some n -> Buffer.add_string b (Printf.sprintf "x%d" n)
  | None -> ());
  (match (r.c_from_ns, r.c_until_ns) with
  | None, None -> ()
  | f, u ->
      Buffer.add_char b '[';
      (match f with Some v -> Buffer.add_string b (string_of_int v) | None -> ());
      Buffer.add_string b "..";
      (match u with Some v -> Buffer.add_string b (string_of_int v) | None -> ());
      Buffer.add_char b ']');
  Buffer.contents b

let render s =
  String.concat ";"
    ((if s.c_seed = default_seed then [] else [ "seed=" ^ s.c_seed ])
    @ List.map render_rule s.c_rules)

(* Rebase the relative windows onto the virtual clock: [t0] is the
   anchor (e.g. the serving phase's start). *)
let to_plan ?(t0 = 0) s =
  let rules =
    List.map
      (fun r ->
        Fault.rule ?nth:r.c_nth ~prob:r.c_prob ?count:r.c_count
          ?from_ns:(Option.map (fun v -> t0 + v) r.c_from_ns)
          ?until_ns:(Option.map (fun v -> t0 + v) r.c_until_ns)
          r.c_site r.c_action)
      s.c_rules
  in
  Fault.plan ~seed:s.c_seed rules
