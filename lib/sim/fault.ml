(* Deterministic fault injection (see the .mli). The armed plan lives in
   a module-global ref so site hooks cost one dereference when disarmed,
   mirroring the Machine.tracking idiom. All randomness comes from a
   private xorshift64* generator seeded from the plan's seed string, so
   the injected sequence is a pure function of (seed, workload). *)

type action =
  | Torn of float
  | Corrupt
  | Drop
  | Fail
  | Crash
  | Delay of int

type rule = {
  r_site : string;
  r_action : action;
  r_nth : int option;
  r_prob : float;
  mutable r_budget : int;  (* injections left; -1 = unlimited *)
  r_count : int;  (* initial budget, to restore on re-arm *)
  r_from_ns : int option;  (* virtual-time activation window [from, until) *)
  r_until_ns : int option;
}

type injection = { site : string; op : int; action : action }

type plan = {
  seed : string;
  rules : rule list;
  ops : (string, int) Hashtbl.t;  (* per-site operation counters *)
  mutable state : int64;  (* PRNG state *)
  mutable log : injection list;  (* reversed *)
  mutable notify : injection -> unit;
  mutable now : (unit -> int) option;
      (* virtual-clock source for windowed rules, installed at arm time *)
}

exception Transient of string
exception Crashed of string

let rule ?nth ?(prob = 0.) ?count ?from_ns ?until_ns site action =
  if prob < 0. || prob > 1. then invalid_arg "Fault.rule: prob out of range";
  (match nth with
  | Some n when n < 1 -> invalid_arg "Fault.rule: nth must be >= 1"
  | _ -> ());
  (match (from_ns, until_ns) with
  | Some a, Some b when b <= a -> invalid_arg "Fault.rule: empty window"
  | _ -> ());
  let count =
    match (count, nth) with
    | Some c, _ -> c
    | None, Some _ -> 1
    | None, None -> -1
  in
  { r_site = site; r_action = action; r_nth = nth; r_prob = prob;
    r_budget = count; r_count = count; r_from_ns = from_ns;
    r_until_ns = until_ns }

(* FNV-1a over the seed string, then mixed, for the initial PRNG state. *)
let hash_seed s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    s;
  if !h = 0L then 0x9e3779b97f4a7c15L else !h

let plan ?(seed = "fault") rules =
  {
    seed;
    rules;
    ops = Hashtbl.create 8;
    state = hash_seed seed;
    log = [];
    notify = (fun _ -> ());
    now = None;
  }

(* xorshift64*: tiny, dependency-free, good enough for fault schedules. *)
let next_u64 p =
  let x = p.state in
  let x = Int64.logxor x (Int64.shift_left x 13) in
  let x = Int64.logxor x (Int64.shift_right_logical x 7) in
  let x = Int64.logxor x (Int64.shift_left x 17) in
  p.state <- x;
  Int64.mul x 0x2545f4914f6cdd1dL

(* Uniform float in [0, 1) from the top 53 bits. *)
let next_float p =
  Int64.to_float (Int64.shift_right_logical (next_u64 p) 11) /. 9007199254740992.

let armed_plan : plan option ref = ref None

let arm ?(notify = fun _ -> ()) ?now p =
  Hashtbl.reset p.ops;
  p.state <- hash_seed p.seed;
  p.log <- [];
  p.notify <- notify;
  p.now <- now;
  List.iter (fun r -> r.r_budget <- r.r_count) p.rules;
  armed_plan := Some p

let disarm () = armed_plan := None
let armed () = !armed_plan <> None
let injections p = List.rev p.log

let fire p r op =
  if r.r_budget > 0 then r.r_budget <- r.r_budget - 1;
  let inj = { site = r.r_site; op; action = r.r_action } in
  p.log <- inj :: p.log;
  p.notify inj;
  Some inj.action

(* A windowed rule is active only while the plan's virtual clock reads
   inside [from, until). Without a clock source (plain [arm], no [now])
   windowed rules never fire — the window is a statement about virtual
   time, and guessing would break replay determinism. The window check
   runs before any PRNG draw, so an out-of-window probabilistic rule
   consumes no randomness: the injected sequence stays a pure function
   of (seed, workload, virtual timeline) across re-arms. *)
let in_window p r =
  match (r.r_from_ns, r.r_until_ns) with
  | None, None -> true
  | from_ns, until_ns -> (
      match p.now with
      | None -> false
      | Some now ->
          let t = now () in
          (match from_ns with Some a -> t >= a | None -> true)
          && (match until_ns with Some b -> t < b | None -> true))

let consult site =
  match !armed_plan with
  | None -> None
  | Some p ->
      let op = 1 + Option.value ~default:0 (Hashtbl.find_opt p.ops site) in
      Hashtbl.replace p.ops site op;
      let rec scan = function
        | [] -> None
        | r :: rest ->
            if
              r.r_site = site && r.r_budget <> 0 && in_window p r
              && (match r.r_nth with
                 | Some n -> n = op
                 | None -> r.r_prob > 0. && next_float p < r.r_prob)
            then fire p r op
            else scan rest
      in
      scan p.rules

(* Deterministic payload mutilation: the torn length is a fraction of
   the payload, the corrupted bit is picked by hashing the payload so
   the same write is always damaged the same way. *)
let mutilate action data =
  match action with
  | Torn f ->
      let keep = int_of_float (float_of_int (String.length data) *. f) in
      String.sub data 0 (max 0 (min keep (String.length data)))
  | Corrupt ->
      if data = "" then data
      else begin
        let h = Int64.to_int (hash_seed data) land max_int in
        let byte = h mod String.length data in
        let bit = (h / 7) mod 8 in
        let b = Bytes.of_string data in
        Bytes.set b byte (Char.chr (Char.code (Bytes.get b byte) lxor (1 lsl bit)));
        Bytes.to_string b
      end
  | Drop | Fail | Crash | Delay _ -> data
