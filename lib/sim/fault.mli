(** Deterministic fault-injection plane.

    A {!plan} is a seeded set of rules targeting named {e sites} — fixed
    strings such as ["backing.write"], ["svfs.sync"], ["enclave.ecall"]
    or ["wasi.fd_read"] — that instrumented layers consult on every
    operation. The plan is driven purely by per-site operation counters
    and a private deterministic PRNG: no wall clock, no global
    [Random] state, so the same seed and the same workload produce the
    same injected-fault sequence, every time.

    When no plan is armed, {!consult} is a single dereference and a
    match — sites stay effectively free in production runs. *)

type action =
  | Torn of float
      (** keep only this fraction of the payload (a torn write) *)
  | Corrupt  (** flip one payload bit (detected by authentication) *)
  | Drop  (** the operation is silently lost *)
  | Fail  (** raise {!Transient} — a recoverable host-side error *)
  | Crash  (** raise {!Crashed} — power loss / enclave abort *)
  | Delay of int  (** charge this many virtual ns, then proceed *)

type rule
(** One targeting rule: which site, what to inject, and when. *)

type injection = { site : string; op : int; action : action }
(** One recorded injection: the site, its 1-based operation index at
    the moment of injection, and the action taken. *)

type plan

exception Transient of string
(** A recoverable fault (e.g. a failed untrusted I/O operation that a
    caller may retry). *)

exception Crashed of string
(** An unrecoverable fault at this site: simulated power loss on a
    storage path, or an asynchronous enclave abort on a transition. *)

val rule :
  ?nth:int ->
  ?prob:float ->
  ?count:int ->
  ?from_ns:int ->
  ?until_ns:int ->
  string ->
  action ->
  rule
(** [rule site action] fires [action] at [site]. [nth] fires on exactly
    the n-th operation (1-based); otherwise each operation fires with
    probability [prob] (default 0, i.e. never). [count] caps the total
    number of injections from this rule (default 1 for [nth] rules,
    unlimited for probabilistic ones). [from_ns]/[until_ns] restrict the
    rule to the virtual-time window [[from_ns, until_ns)] so chaos can
    target, say, only the steady-state phase of a serving run; windowed
    rules need the plan armed with a clock source ({!arm}'s [now]) and
    never fire without one. The window check precedes any PRNG draw, so
    out-of-window operations consume no randomness and the injected
    sequence replays identically across re-arms.
    @raise Invalid_argument on an empty window. *)

val plan : ?seed:string -> rule list -> plan
(** Build a plan. [seed] (default ["fault"]) keys the PRNG used by
    probabilistic rules. *)

val arm : ?notify:(injection -> unit) -> ?now:(unit -> int) -> plan -> unit
(** Make [plan] the armed plan. [notify] runs at every injection, before
    the action takes effect — the simulator uses it to book the fault
    into the machine ledger and the trace ring. [now] supplies the
    virtual clock that windowed rules ([from_ns]/[until_ns]) test
    against; omitting it leaves those rules inactive. Arming resets the
    plan's op counters and injection log, so a plan can be re-armed to
    replay the identical sequence. *)

val disarm : unit -> unit
(** Disarm; all sites become no-ops again. Idempotent. *)

val armed : unit -> bool

val consult : string -> action option
(** Site hook: advance the site's op counter and return the action to
    inject here, if any. [None] (the common case, and always when
    disarmed) means proceed normally. *)

val injections : plan -> injection list
(** The injection log accumulated since the plan was last armed, in
    order. *)

val hash_seed : string -> int64
(** The seed-string hash used to key the plan PRNG (FNV-1a, never 0).
    Exposed for {!Crashpoint}'s seeded replay variants. *)

val mutilate : action -> string -> string
(** Apply a payload-transforming action ([Torn]/[Corrupt]) to a write
    payload; other actions return the payload unchanged. Deterministic:
    the flipped bit and the torn length depend only on the payload. *)
