(** Discrete-event queue on the virtual clock.

    A binary min-heap of [(time, payload)] events. Ties on time break by
    insertion order (a monotone sequence number), so a scheduler driven
    off this queue is deterministic: the same seed produces the same pop
    order, independent of heap-internal layout. The serving simulator
    ({!Twine_serve}) uses one for request arrivals. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int
val is_empty : 'a t -> bool

val add : 'a t -> at:int -> 'a -> unit
(** Schedule a payload at virtual time [at] (ns).
    @raise Invalid_argument on negative [at]. *)

val peek : 'a t -> (int * 'a) option
(** Earliest event without removing it. *)

val peek_time : 'a t -> int option

val pop : 'a t -> (int * 'a) option
(** Remove and return the earliest event. *)

val drain_until : 'a t -> now:int -> (at:int -> 'a -> unit) -> unit
(** Pop every event with [time <= now], earliest first, calling [f] on
    each. *)
