(** Discrete-event queue on the virtual clock.

    A binary min-heap of [(time, payload)] events. Ties on time break by
    insertion order (a monotone sequence number), so a scheduler driven
    off this queue is deterministic: the same seed produces the same pop
    order, independent of heap-internal layout. The serving simulator
    ({!Twine_serve}) uses one for request arrivals and another for
    deadline/retry timers, which need {!cancel}. *)

type 'a t

type id
(** Handle of a scheduled event, for {!cancel}. Never reused. *)

val create : unit -> 'a t

val length : 'a t -> int
(** Live (scheduled, not yet popped, not cancelled) events. *)

val is_empty : 'a t -> bool

val add : 'a t -> at:int -> 'a -> unit
(** Schedule a payload at virtual time [at] (ns).
    @raise Invalid_argument on negative [at]. *)

val schedule : 'a t -> at:int -> 'a -> id
(** Like {!add} but returns a handle the caller can {!cancel} — the
    serving fleet revokes a request's deadline timer on completion.
    @raise Invalid_argument on negative [at]. *)

val cancel : 'a t -> id -> unit
(** Revoke a scheduled event: it will never be returned by
    {!peek}/{!pop}/{!drain_until}. Tombstone-based — the dead heap entry
    is discarded lazily on its way to the top, so a cancel costs one
    O(log n) heap pop, amortized. Idempotent: cancelling an event that
    already fired (or was already cancelled) is a no-op. Cancelling
    does not disturb FIFO ordering among surviving same-time events. *)

val peek : 'a t -> (int * 'a) option
(** Earliest event without removing it. *)

val peek_time : 'a t -> int option

val pop : 'a t -> (int * 'a) option
(** Remove and return the earliest event. *)

val drain_until : 'a t -> now:int -> (at:int -> 'a -> unit) -> unit
(** Pop every event with [time <= now], earliest first, calling [f] on
    each. *)
