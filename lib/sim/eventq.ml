(* Discrete-event queue for the virtual clock: a binary min-heap of
   events keyed on (time, insertion sequence). The sequence number makes
   ties deterministic — two events scheduled for the same nanosecond pop
   in insertion order, so a simulation driven off this queue replays
   identically for a given seed regardless of heap-internal layout.

   Cancellation is tombstone-based: [cancel] only drops the event's
   sequence number from the live set, and [peek]/[pop] discard dead
   heap entries lazily on their way to the top. Each cancelled entry is
   sifted out of the heap exactly once, so the amortized cost of a
   cancel is one O(log n) heap pop — cheap enough for one deadline
   timer per request in the serving fleet. *)

type id = int  (* the event's insertion sequence number *)

type 'a t = {
  mutable heap : (int * int * 'a) array;  (* (time, seq, payload) *)
  mutable size : int;
  mutable next_seq : int;
  live : (int, unit) Hashtbl.t;  (* seqs in the heap and not cancelled *)
}

let create () = { heap = [||]; size = 0; next_seq = 0; live = Hashtbl.create 16 }

let length t = Hashtbl.length t.live
let is_empty t = Hashtbl.length t.live = 0

let before (t1, s1, _) (t2, s2, _) = t1 < t2 || (t1 = t2 && s1 < s2)

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before t.heap.(i) t.heap.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && before t.heap.(l) t.heap.(!smallest) then smallest := l;
  if r < t.size && before t.heap.(r) t.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let schedule t ~at payload =
  if at < 0 then invalid_arg "Eventq.add: negative time";
  if t.size = Array.length t.heap then begin
    let cap = max 16 (2 * Array.length t.heap) in
    let bigger = Array.make cap (0, 0, payload) in
    Array.blit t.heap 0 bigger 0 t.size;
    t.heap <- bigger
  end;
  let seq = t.next_seq in
  t.heap.(t.size) <- (at, seq, payload);
  t.next_seq <- seq + 1;
  t.size <- t.size + 1;
  sift_up t (t.size - 1);
  Hashtbl.replace t.live seq ();
  seq

let add t ~at payload = ignore (schedule t ~at payload)

(* Idempotent: a seq that already fired (or was already cancelled) is
   no longer in the live set, so cancelling it is a no-op. *)
let cancel t id = Hashtbl.remove t.live id

let heap_pop t =
  if t.size = 0 then None
  else begin
    let at, seq, p = t.heap.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.heap.(0) <- t.heap.(t.size);
      sift_down t 0
    end;
    Some (at, seq, p)
  end

(* Discard cancelled entries off the top until a live one surfaces. *)
let rec settle t =
  if t.size = 0 then ()
  else
    let _, seq, _ = t.heap.(0) in
    if Hashtbl.mem t.live seq then ()
    else begin
      ignore (heap_pop t);
      settle t
    end

let peek t =
  settle t;
  if t.size = 0 then None else Some (let at, _, p = t.heap.(0) in (at, p))

let peek_time t =
  settle t;
  if t.size = 0 then None else Some (let at, _, _ = t.heap.(0) in at)

let pop t =
  settle t;
  match heap_pop t with
  | None -> None
  | Some (at, seq, p) ->
      Hashtbl.remove t.live seq;
      Some (at, p)

(* Pop every event due at or before [now], in order. *)
let drain_until t ~now f =
  let rec go () =
    match peek_time t with
    | Some at when at <= now -> (
        match pop t with
        | Some (at, p) ->
            f ~at p;
            go ()
        | None -> ())
    | _ -> ()
  in
  go ()
