(** Chaos schedules: textual fault plans for the serving fleet.

    A chaos spec is a seeded list of {!Fault} rules written in a small
    grammar, so a CLI flag or a bench sweep can describe deterministic
    fault injection without constructing rules in code:

    {v SPEC  := item (';' item)*
item  := 'seed=' NAME | rule
rule  := SITE '=' ACTION tail*
ACTION:= 'crash' | 'fail' | 'drop' | 'corrupt'
       | 'torn:' FLOAT | 'delay:' DUR
tail  := '@' N        fire on exactly the N-th operation (1-based)
       | '%' FLOAT    per-operation probability
       | 'x' N        cap total injections from this rule
       | '[' DUR '..' DUR ']'  activation window, relative virtual
                               time (either bound may be empty)
DUR   := INT ('ns' | 'us' | 'ms' | 's')?        default ns v}

    Examples: ["enclave.ecall=crash@200"] (crash the 200th ECALL),
    ["seed=c1;enclave.ecall=fail%0.01x5[10ms..50ms]"] (up to five
    transient entry failures at 1% per ECALL, only between 10 ms and
    50 ms of serving time). Windows are {e relative}: {!to_plan}
    rebases them onto the machine clock at arm time. *)

type rule_spec = {
  c_site : string;
  c_action : Fault.action;
  c_nth : int option;
  c_prob : float;
  c_count : int option;
  c_from_ns : int option;  (** relative to the [to_plan] anchor *)
  c_until_ns : int option;
}

type spec = { c_seed : string; c_rules : rule_spec list }

val default_seed : string
(** ["chaos"], used when the spec carries no [seed=] item. *)

val parse : string -> (spec, string) result
(** Parse a spec string. Errors carry a human-readable reason (the CLI
    maps them to exit 2). *)

val render : spec -> string
(** Canonical text of a spec; [parse (render s)] round-trips. *)

val to_plan : ?t0:int -> spec -> Fault.plan
(** Build the fault plan, rebasing every relative activation window by
    [t0] (default 0) — pass the serving phase's virtual start time so a
    window like [[10ms..50ms]] means "10–50 ms into serving" regardless
    of how much virtual time setup consumed. *)
