(* Running kernels on the three execution tiers of Fig 3 and checking
   that they compute the same values. *)

open Twine_wasm

type run_result = {
  wall_ns : int;
  fuel : int;  (* guest instructions executed (0 for native runs) *)
  outputs : (int * float array) list;
}

let now_ns () = Int64.to_int (Int64.of_float (Unix.gettimeofday () *. 1e9))

let run_native (k : Kernel_dsl.kernel) =
  let run, arr = Kernel_dsl.comp_native k in
  let t0 = now_ns () in
  run ();
  let wall_ns = now_ns () - t0 in
  {
    wall_ns;
    fuel = 0;
    outputs = List.map (fun id -> (id, Array.copy (arr id))) k.out_arrays;
  }

(* [hooks] lets a caller attach a call-boundary observer (e.g. the guest
   profiler in twine_obs, which this library does not depend on); it is
   detached before returning. *)
let run_wasm ?hooks ~engine (k : Kernel_dsl.kernel) =
  let m, lay = Kernel_dsl.comp_wasm k in
  let inst = Interp.instantiate m in
  (match engine with
  | `Aot -> ignore (Aot.compile_instance inst)
  | `Interp -> ());
  (match hooks with
  | Some mk -> inst.Instance.hooks <- Some (mk inst)
  | None -> ());
  let t0 = now_ns () in
  let finally () = inst.Instance.hooks <- None in
  Fun.protect ~finally (fun () -> ignore (Interp.invoke inst "kernel" []));
  let wall_ns = now_ns () - t0 in
  {
    wall_ns;
    fuel = Interp.fuel_used inst;
    outputs =
      List.map (fun id -> (id, Kernel_dsl.read_wasm_array inst lay k id)) k.out_arrays;
  }

(* Maximum absolute difference between native and Wasm outputs; both
   engines implement IEEE f64 so the difference should be exactly zero. *)
let max_divergence a b =
  List.fold_left2
    (fun acc (ida, va) (idb, vb) ->
      assert (ida = idb);
      Array.fold_left max acc (Array.mapi (fun i x -> Float.abs (x -. vb.(i))) va))
    0. a.outputs b.outputs

let validate ?(engine = `Interp) k =
  let n = run_native k in
  let w = run_wasm ~engine k in
  max_divergence n w

let checksum result =
  List.fold_left
    (fun acc (_, a) ->
      Array.fold_left (fun s x -> if Float.is_nan x then s else s +. x) acc a)
    0. result.outputs
