(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§V). Sections:

     fig3    PolyBench/C, normalised to native (native / WAMR / TWINE)
     fig4    SQLite Speedtest1 relative performance (29 tests, 4 systems,
             in-memory and in-file)
     fig5    micro-benchmarks: insertion / sequential read / random read
             vs database size (8 series)
     table2  normalised run times split at the EPC boundary
     table3  cost factors (times and sizes)
     fig6    SGX hardware vs software mode
     fig7    IPFS time breakdown, stock vs optimised (§V-F)
     ablate  design-choice ablations (page cache, node cache, engines)
     micro   Bechamel wall-clock micro-benchmarks of core primitives
     report  per-run telemetry report of a WASI-heavy workload (table+JSON)
     profile guest-level profiler: hot functions, interp-vs-AoT parity,
             folded stacks written to polybench-atax.folded
     serve   multi-enclave serving fleet on one shared EPC: open-loop
             replay, ECALL batching, throughput-vs-fleet-size cliff
     sql     per-operator query observability: EXPLAIN ANALYZE trees of
             the serving shapes, the zero-residue attribution audit,
             access-path census and query-stats fingerprints

   Run everything with `dune exec bench/main.exe`, or a single section by
   passing its name (e.g. `dune exec bench/main.exe fig5`).

   Scaling: datasets are reduced from the paper's server-scale runs and
   the simulated EPC is shrunk proportionally so the EPC crossover falls
   inside the sweep; EXPERIMENTS.md records the mapping. Simulated times
   are virtual nanoseconds on the machine clock; PolyBench numbers are
   measured wall-clock. *)

open Twine
open Twine_sgx

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let hr () = print_endline (String.make 78 '-')

(* Conservation audit: after a section, every machine it created must
   satisfy elapsed = booked + 0 residue. Machine.charge is the only
   clock-advance site, so any residue means a charge bypassed the
   ledger — a bookkeeping bug worth failing the whole harness over. *)
let audited name f =
  let (), machines = Machine.with_tracked f in
  let bad =
    List.filter
      (fun m -> not (Twine_obs.Ledger.balanced (Machine.ledger m)))
      machines
  in
  if bad = [] then
    Printf.printf "[audit] %s: books balance on %d machine(s)\n" name
      (List.length machines)
  else begin
    List.iter
      (fun m ->
        let a = Twine_obs.Ledger.audit (Machine.ledger m) in
        Printf.printf
          "[audit] %s: UNATTRIBUTED TIME: elapsed %d ns = booked %d ns + residue %d ns\n"
          name a.Twine_obs.Ledger.elapsed_ns a.Twine_obs.Ledger.booked_ns
          a.Twine_obs.Ledger.residue_ns)
      bad;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Fig 3: PolyBench/C                                                  *)
(* ------------------------------------------------------------------ *)

(* TWINE = AoT engine inside an enclave: measured AoT wall time plus the
   simulated SGX overhead (EPC paging of the Wasm linear memory and the
   run's enclave transitions). The EPC for this experiment is scaled so
   that the biggest kernels exceed it, as deriche/lu/ludcmp did in the
   paper (§V-B). *)
let fig3_epc_bytes = 2 * 1024 * 1024

let twine_kernel_ns k =
  let machine = Machine.create ~seed:"fig3" ~epc_bytes:fig3_epc_bytes () in
  let enclave = Enclave.create machine ~heap_bytes:0 ~code:Runtime.runtime_code () in
  let m, _lay = Twine_polybench.Kernel_dsl.comp_wasm k in
  let inst = Twine_wasm.Interp.instantiate m in
  ignore (Twine_wasm.Aot.compile_instance inst);
  (match inst.Twine_wasm.Instance.memory with
  | Some mem ->
      let base = Enclave.reserve enclave (Twine_wasm.Memory.size_bytes mem) in
      Runtime.install_memory_hook enclave ~base mem
  | None -> ());
  let sim0 = Machine.now_ns machine in
  let t0 = Unix.gettimeofday () in
  Enclave.ecall enclave (fun _ -> ignore (Twine_wasm.Interp.invoke inst "kernel" []));
  let wall = int_of_float ((Unix.gettimeofday () -. t0) *. 1e9) in
  wall + (Machine.now_ns machine - sim0)

let fig3 () =
  section "Fig 3: PolyBench/C performance normalised to native";
  Printf.printf "%-16s %10s %10s %10s   %8s %8s\n" "kernel" "native(us)" "wamr(us)"
    "twine(us)" "wamr/nat" "twine/nat";
  hr ();
  let kernels = Twine_polybench.Kernels.all () in
  let ratios =
    List.map
      (fun k ->
        let native = (Twine_polybench.Suite.run_native k).Twine_polybench.Suite.wall_ns in
        let native = max 1 native in
        let wamr =
          (Twine_polybench.Suite.run_wasm ~engine:`Aot k).Twine_polybench.Suite.wall_ns
        in
        let twine = twine_kernel_ns k in
        let rw = float_of_int wamr /. float_of_int native in
        let rt = float_of_int twine /. float_of_int native in
        Printf.printf "%-16s %10.1f %10.1f %10.1f   %8.2f %8.2f\n"
          k.Twine_polybench.Kernel_dsl.name
          (float_of_int native /. 1e3)
          (float_of_int wamr /. 1e3)
          (float_of_int twine /. 1e3)
          rw rt;
        (rw, rt))
      kernels
  in
  hr ();
  let med l =
    let s = List.sort compare l in
    List.nth s (List.length s / 2)
  in
  Printf.printf
    "median slowdown: wamr %.2fx, twine %.2fx (paper: Wasm 2-4x; TWINE ~ WAMR with EPC outliers)\n"
    (med (List.map fst ratios))
    (med (List.map snd ratios))

(* ------------------------------------------------------------------ *)
(* Fig 4: Speedtest1                                                   *)
(* ------------------------------------------------------------------ *)

let fig4_size = 120

let fig4 () =
  section "Fig 4: SQLite Speedtest1, relative performance (simulated time, ms)";
  let wf = Bench_db.calibrate_wasm_factor () in
  Printf.printf "(size=%d per test; Wasm factor %.2f measured from PolyBench)\n"
    fig4_size wf;
  let series =
    [ ("native", Bench_db.Native); ("wamr", Bench_db.Wamr);
      ("sgx-lkl", Bench_db.Sgx_lkl); ("twine", Bench_db.Twine_rt) ]
  in
  List.iter
    (fun (storage, sname) ->
      Printf.printf "\n-- %s database --\n" sname;
      Printf.printf "%5s  %-38s" "test" "description";
      List.iter (fun (n, _) -> Printf.printf " %9s" n) series;
      Printf.printf "  %9s %9s\n" "wamr/nat" "twine/nat";
      hr ();
      let results =
        List.map
          (fun (_, v) ->
            let machine = Machine.create ~seed:"fig4" () in
            Speedtest.run_suite ~machine ~wasm_factor:wf v storage ~size:fig4_size ())
          series
      in
      List.iteri
        (fun ti t ->
          Printf.printf "%5d  %-38s" t.Speedtest.id
            (String.sub t.Speedtest.label 0 (min 38 (String.length t.Speedtest.label)));
          let times = List.map (fun r -> snd (List.nth r ti)) results in
          List.iter (fun ns -> Printf.printf " %9.2f" (float_of_int ns /. 1e6)) times;
          (match times with
          | [ nat; wamr; _lkl; twine ] when nat > 0 ->
              Printf.printf "  %9.2f %9.2f"
                (float_of_int wamr /. float_of_int nat)
                (float_of_int twine /. float_of_int nat)
          | _ -> ());
          Printf.printf "\n")
        Speedtest.tests;
      match results with
      | [ nat; wamr; _lkl; twine ] ->
          let tot r = List.fold_left (fun a (_, ns) -> a + ns) 0 r in
          Printf.printf "%5s  %-38s" "" "TOTAL";
          List.iter (fun r -> Printf.printf " %9.2f" (float_of_int (tot r) /. 1e6)) results;
          Printf.printf "  %9.2f %9.2f   (paper: wamr/nat ~4x, twine/wamr ~1.7-1.9x)\n"
            (float_of_int (tot wamr) /. float_of_int (tot nat))
            (float_of_int (tot twine) /. float_of_int (tot wamr))
      | _ -> ())
    [ (Bench_db.Mem, "in-memory"); (Bench_db.File, "in-file") ]

(* ------------------------------------------------------------------ *)
(* Fig 5 + Table II: micro-benchmarks                                  *)
(* ------------------------------------------------------------------ *)

(* Scaled sweep: paper went 1k..175k x 1 KiB records against a 93 MiB
   EPC; we go 250..4000 x 256 B against a 768 KiB EPC, so the crossover
   falls inside the sweep. *)
let fig5_sizes = [ 250; 500; 1000; 1500; 2000; 2500; 3000; 3500; 4000 ]
let fig5_epc_bytes = 192 * 4096
let fig5_blob = 256
let fig5_rand_reads = 2500
let fig5_epc_records = 2200

let fig5_series () =
  let wf = Bench_db.calibrate_wasm_factor () in
  List.map
    (fun (name, variant, storage) ->
      let machine = Machine.create ~seed:"fig5" ~epc_bytes:fig5_epc_bytes () in
      let r =
        Microbench.sweep ~machine ~blob_bytes:fig5_blob ~rand_reads:fig5_rand_reads
          ~cache_pages:64 ~wasm_factor:wf variant storage ~sizes:fig5_sizes ()
      in
      (name, r))
    [ ("native/mem", Bench_db.Native, Bench_db.Mem);
      ("native/file", Bench_db.Native, Bench_db.File);
      ("wamr/mem", Bench_db.Wamr, Bench_db.Mem);
      ("wamr/file", Bench_db.Wamr, Bench_db.File);
      ("sgx-lkl/mem", Bench_db.Sgx_lkl, Bench_db.Mem);
      ("sgx-lkl/file", Bench_db.Sgx_lkl, Bench_db.File);
      ("twine/mem", Bench_db.Twine_rt, Bench_db.Mem);
      ("twine/file", Bench_db.Twine_rt, Bench_db.File) ]

let print_fig5 series field title =
  section title;
  Printf.printf "%-8s" "records";
  List.iter (fun (n, _) -> Printf.printf " %12s" n) series;
  print_newline ();
  hr ();
  List.iteri
    (fun idx size ->
      Printf.printf "%-8d" size;
      List.iter
        (fun (_, r) ->
          let p = List.nth r.Microbench.points idx in
          let v =
            match field with
            | `Insert -> p.Microbench.insert_ns
            | `Seq -> p.Microbench.seq_read_ns
            | `Rand -> p.Microbench.rand_read_ns
          in
          Printf.printf " %12.3f" (float_of_int v /. 1e6))
        series;
      print_newline ())
    fig5_sizes;
  ignore field

let table2 series =
  section "Table II: normalised run time (native = 1), split at the EPC boundary";
  Printf.printf "(EPC boundary at ~%d records)\n" fig5_epc_records;
  Printf.printf "%-18s %28s %29s %28s\n" "" "WAMR" "SGX-LKL" "TWINE";
  Printf.printf "%-18s %13s %14s %13s %14s %13s %14s\n" "workload" "<EPC" ">=EPC" "<EPC"
    ">=EPC" "<EPC" ">=EPC";
  hr ();
  let get name = List.assoc name series in
  List.iter
    (fun (label, field, suffix) ->
      let native = get ("native/" ^ suffix) in
      let row sys =
        Microbench.normalise ~native
          ~other:(get (sys ^ "/" ^ suffix))
          ~epc_records:fig5_epc_records field
      in
      let w_lo, w_hi = row "wamr" in
      let l_lo, l_hi = row "sgx-lkl" in
      let t_lo, t_hi = row "twine" in
      Printf.printf "%-18s %13.1f %14.1f %13.1f %14.1f %13.1f %14.1f\n" label w_lo w_hi
        l_lo l_hi t_lo t_hi)
    [ ("Insert mem.", `Insert, "mem"); ("Insert file", `Insert, "file");
      ("Seq. read mem.", `Seq, "mem"); ("Seq. read file", `Seq, "file");
      ("Rand. read mem.", `Rand, "mem"); ("Rand. read file", `Rand, "file") ]

(* ------------------------------------------------------------------ *)
(* Fig 6: hardware vs software SGX                                     *)
(* ------------------------------------------------------------------ *)

let fig6 () =
  section "Fig 6: SGX hardware vs software (simulation) mode, in-file DB";
  let wf = Bench_db.calibrate_wasm_factor () in
  let run variant software =
    let machine = Machine.create ~seed:"fig6" ~epc_bytes:fig5_epc_bytes () in
    if software then Machine.set_software_mode machine;
    let r =
      Microbench.sweep ~machine ~blob_bytes:fig5_blob ~rand_reads:fig5_rand_reads
        ~cache_pages:64 ~wasm_factor:wf variant Bench_db.File ~sizes:[ 3000 ] ()
    in
    List.hd r.Microbench.points
  in
  Printf.printf "%-14s %-10s %12s %12s %12s\n" "system" "mode" "insert(ms)"
    "seqread(ms)" "randread(ms)";
  hr ();
  List.iter
    (fun (name, variant) ->
      List.iter
        (fun (mode, sw) ->
          let p = run variant sw in
          Printf.printf "%-14s %-10s %12.3f %12.3f %12.3f\n" name mode
            (float_of_int p.Microbench.insert_ns /. 1e6)
            (float_of_int p.Microbench.seq_read_ns /. 1e6)
            (float_of_int p.Microbench.rand_read_ns /. 1e6))
        [ ("hardware", false); ("software", true) ])
    [ ("sgx-lkl", Bench_db.Sgx_lkl); ("twine", Bench_db.Twine_rt) ]

(* ------------------------------------------------------------------ *)
(* Fig 7: IPFS breakdown and the SDK optimisation                      *)
(* ------------------------------------------------------------------ *)

let fig7 () =
  section "Fig 7: protected-FS time breakdown (random reads), stock vs optimised";
  let stock = Microbench.ipfs_breakdown Twine_ipfs.Protected_fs.Stock in
  let opt = Microbench.ipfs_breakdown Twine_ipfs.Protected_fs.Optimized in
  let pct part total = 100. *. float_of_int part /. float_of_int (max 1 total) in
  let print (b : Microbench.breakdown) name =
    Printf.printf
      "%-10s total %8.2f ms | memset %5.1f%%  ocall %5.1f%%  read %5.1f%%  sqlite %5.1f%%  other %5.1f%%\n"
      name
      (float_of_int b.Microbench.total_ns /. 1e6)
      (pct b.Microbench.memset_ns b.Microbench.total_ns)
      (pct b.Microbench.ocall_ns b.Microbench.total_ns)
      (pct b.Microbench.read_ns b.Microbench.total_ns)
      (pct b.Microbench.sqlite_ns b.Microbench.total_ns)
      (pct
         (b.Microbench.total_ns - b.Microbench.memset_ns - b.Microbench.ocall_ns
        - b.Microbench.read_ns - b.Microbench.sqlite_ns)
         b.Microbench.total_ns)
  in
  print stock "stock";
  print opt "optimised";
  (* the same phase, attributed by ledger account (disjoint; sums to
     the phase total by the conservation invariant) *)
  Printf.printf "\nledger attribution of the random-read phase:\n";
  Printf.printf "%-22s %12s %7s %12s %7s\n" "account" "stock(ms)" "share"
    "optim.(ms)" "share";
  let all_accounts =
    List.sort_uniq compare
      (List.map fst stock.Microbench.accounts
      @ List.map fst opt.Microbench.accounts)
  in
  let ordered =
    List.sort
      (fun a b ->
        compare
          (try List.assoc b stock.Microbench.accounts with Not_found -> 0)
          (try List.assoc a stock.Microbench.accounts with Not_found -> 0))
      all_accounts
  in
  List.iter
    (fun acct ->
      let get (b : Microbench.breakdown) =
        try List.assoc acct b.Microbench.accounts with Not_found -> 0
      in
      Printf.printf "%-22s %12.2f %6.1f%% %12.2f %6.1f%%\n" acct
        (float_of_int (get stock) /. 1e6)
        (pct (get stock) stock.Microbench.total_ns)
        (float_of_int (get opt) /. 1e6)
        (pct (get opt) opt.Microbench.total_ns))
    ordered;
  Printf.printf "\n";
  Printf.printf
    "random-read speedup from the Section V-F changes: %.2fx (paper: 4.1x)\n"
    (float_of_int stock.Microbench.total_ns /. float_of_int opt.Microbench.total_ns);
  let phase_speedup f =
    let run v =
      let machine = Machine.create ~seed:"fig7b" () in
      let r =
        Microbench.sweep ~machine ~blob_bytes:512 ~rand_reads:200 ~cache_pages:64
          ~ipfs_variant:v ~wasm_factor:2.5 Bench_db.Twine_rt Bench_db.File
          ~sizes:[ 1500 ] ()
      in
      f (List.hd r.Microbench.points)
    in
    float_of_int (run Twine_ipfs.Protected_fs.Stock)
    /. float_of_int (max 1 (run Twine_ipfs.Protected_fs.Optimized))
  in
  Printf.printf
    "insertion speedup: %.2fx (paper: 1.5x); sequential read speedup: %.2fx (paper: 2.5x)\n"
    (phase_speedup (fun p -> p.Microbench.insert_ns))
    (phase_speedup (fun p -> p.Microbench.seq_read_ns))

(* ------------------------------------------------------------------ *)
(* Table III: cost factors                                             *)
(* ------------------------------------------------------------------ *)

let table3 () =
  section "Table III: cost factors of the micro-benchmarks";
  let kernels = Twine_polybench.Kernels.all () in
  let wasm_bytes =
    List.fold_left
      (fun acc k ->
        let m, _ = Twine_polybench.Kernel_dsl.comp_wasm k in
        acc + String.length (Twine_wasm.Binary.encode m))
      0 kernels
  in
  let aot_ratio = 3707. /. 1155. in
  let launch_of ~heap_bytes ~code =
    let machine = Machine.create ~seed:"t3" () in
    let t0 = Machine.now_ns machine in
    let e = Enclave.create machine ~heap_bytes ~code () in
    ignore e;
    Machine.now_ns machine - t0
  in
  (* enclaves sized to hold the full benchmark dataset, as the paper
     configures them (TWINE ~205 MiB, SGX-LKL ~255 MiB + disk image) *)
  let twine_launch =
    launch_of ~heap_bytes:(205 * 1024 * 1024) ~code:Runtime.runtime_code
  in
  let lkl_launch =
    (* SGX-LKL: larger enclave plus decrypting the 242 MiB disk image *)
    let image_bytes = 247_552 * 1024 in
    launch_of ~heap_bytes:(255 * 1024 * 1024) ~code:"sgx-lkl libOS kernel"
    + Costs.bytes_ns Costs.default.aes_ns_per_byte image_bytes
  in
  let time_ms f =
    let t0 = Unix.gettimeofday () in
    f ();
    (Unix.gettimeofday () -. t0) *. 1e3
  in
  let wasm_compile_ms =
    time_ms (fun () ->
        List.iter
          (fun k ->
            let m, _ = Twine_polybench.Kernel_dsl.comp_wasm k in
            ignore (Twine_wasm.Binary.encode m))
          kernels)
  in
  let aot_compile_ms =
    time_ms (fun () ->
        List.iter
          (fun k ->
            let m, _ = Twine_polybench.Kernel_dsl.comp_wasm k in
            let inst = Twine_wasm.Interp.instantiate m in
            ignore (Twine_wasm.Aot.compile_instance inst))
          kernels)
  in
  Printf.printf "(a) Times                           Native    SGX-LKL     WAMR    TWINE\n";
  hr ();
  Printf.printf "Compile Wasm suite [ms, measured]        -          -  %7.1f  %7.1f\n"
    wasm_compile_ms wasm_compile_ms;
  Printf.printf "AoT-compile suite [ms, measured]         -          -  %7.1f  %7.1f\n"
    aot_compile_ms aot_compile_ms;
  Printf.printf "Launch [us, simulated]                  ~0   %8.1f       ~0  %7.1f\n"
    (float_of_int lkl_launch /. 1e3)
    (float_of_int twine_launch /. 1e3);
  Printf.printf "  -> TWINE launches %.2fx faster than SGX-LKL (paper: 1.94x)\n"
    (float_of_int lkl_launch /. float_of_int twine_launch);
  Printf.printf "\n(b) Sizes                           Native    SGX-LKL     WAMR    TWINE\n";
  hr ();
  let self_kib =
    try (Unix.stat Sys.executable_name).Unix.st_size / 1024 with Unix.Unix_error _ -> 0
  in
  Printf.printf "Bench executable, disk [KiB]       %7d   %8d  %7d  %7d\n" self_kib
    (self_kib + 4096) self_kib self_kib;
  Printf.printf "Wasm artifact, disk [KiB]                -          -  %7d  %7d\n"
    (wasm_bytes / 1024) (wasm_bytes / 1024);
  Printf.printf "AoT artifact, disk [KiB, @%.2fx]          -        -  %7d  %7d\n"
    aot_ratio
    (int_of_float (float_of_int wasm_bytes *. aot_ratio /. 1024.))
    (int_of_float (float_of_int wasm_bytes *. aot_ratio /. 1024.));
  let machine = Machine.create ~seed:"t3b" () in
  let twine_enclave =
    Enclave.create machine ~heap_bytes:(205 * 1024 * 1024) ~code:Runtime.runtime_code ()
  in
  let lkl_enclave =
    Enclave.create machine ~heap_bytes:(255 * 1024 * 1024) ~code:"sgx-lkl libOS kernel" ()
  in
  Printf.printf "Enclave, memory [KiB, simulated]         -   %8d        -  %7d\n"
    (Enclave.size_bytes lkl_enclave / 1024)
    (Enclave.size_bytes twine_enclave / 1024);
  Printf.printf "Disk image [KiB, modeled]                -     247552        -        -\n"

(* ------------------------------------------------------------------ *)
(* Ablations of the design choices DESIGN.md calls out                  *)
(* ------------------------------------------------------------------ *)

let ablate () =
  section "Ablation: SQLite page-cache size (the Section V-D cache effect)";
  (* the paper: the in-file sequential-read knee tracks the page cache
     (8 MiB cache -> knee near 16 MiB; doubling the cache moves it) *)
  Printf.printf "%-14s %14s %14s\n" "cache (pages)" "seqread(ms)" "randread(ms)";
  hr ();
  List.iter
    (fun cache_pages ->
      let machine = Machine.create ~seed:"ablate-cache" ~epc_bytes:fig5_epc_bytes () in
      let r =
        Microbench.sweep ~machine ~blob_bytes:fig5_blob ~rand_reads:1000
          ~cache_pages ~wasm_factor:2.5 Bench_db.Twine_rt Bench_db.File
          ~sizes:[ 2000 ] ()
      in
      let pt = List.hd r.Microbench.points in
      Printf.printf "%-14d %14.3f %14.3f\n" cache_pages
        (float_of_int pt.Microbench.seq_read_ns /. 1e6)
        (float_of_int pt.Microbench.rand_read_ns /. 1e6))
    [ 16; 32; 64; 128; 256; 512 ];

  section "Ablation: IPFS node-cache size (random reads, stock variant)";
  Printf.printf "%-14s %14s %10s\n" "cache (nodes)" "randread(ms)" "ocalls";
  hr ();
  List.iter
    (fun cache_nodes ->
      let machine = Machine.create ~seed:"ablate-nodes" () in
      let enclave = Enclave.create machine ~code:"ipfs-abl" () in
      let fs =
        Twine_ipfs.Protected_fs.create enclave (Twine_ipfs.Backing.memory ())
          ~cache_nodes ()
      in
      let f = Twine_ipfs.Protected_fs.open_file fs ~mode:`Trunc "abl" in
      ignore (Twine_ipfs.Protected_fs.write f (String.make (512 * 4096) 'a'));
      Twine_ipfs.Protected_fs.flush f;
      let drbg = Twine_crypto.Drbg.create ~seed:"abl" () in
      let buf = Bytes.create 64 in
      let t0 = Machine.now_ns machine in
      let ocall_charges () =
        match Twine_obs.Obs.hstat machine.Machine.obs "ipfs.ocall" with
        | Some h -> h.Twine_obs.Obs.count
        | None -> 0
      in
      let oc0 = ocall_charges () in
      for _ = 1 to 2000 do
        let pos = Twine_crypto.Drbg.int_below drbg (511 * 4096) in
        ignore (Twine_ipfs.Protected_fs.seek f ~offset:pos ~whence:`Set);
        ignore (Twine_ipfs.Protected_fs.read f buf ~off:0 ~len:64)
      done;
      Printf.printf "%-14d %14.3f %10d\n" cache_nodes
        (float_of_int (Machine.now_ns machine - t0) /. 1e6)
        (ocall_charges () - oc0);
      Twine_ipfs.Protected_fs.close f)
    [ 8; 16; 48; 128; 512 ];

  section "Ablation: interpreter vs AoT engine (PolyBench subset, wall-clock)";
  Printf.printf "%-16s %12s %12s %12s %8s\n" "kernel" "native(us)" "interp(us)"
    "aot(us)" "aot gain";
  hr ();
  List.iter
    (fun name ->
      match Twine_polybench.Kernels.find name (Twine_polybench.Kernels.all ~scale:0.7 ()) with
      | None -> ()
      | Some k ->
          let n = (Twine_polybench.Suite.run_native k).Twine_polybench.Suite.wall_ns in
          let i = (Twine_polybench.Suite.run_wasm ~engine:`Interp k).Twine_polybench.Suite.wall_ns in
          let a = (Twine_polybench.Suite.run_wasm ~engine:`Aot k).Twine_polybench.Suite.wall_ns in
          Printf.printf "%-16s %12.1f %12.1f %12.1f %7.2fx\n" name
            (float_of_int n /. 1e3) (float_of_int i /. 1e3) (float_of_int a /. 1e3)
            (float_of_int i /. float_of_int (max 1 a)))
    [ "gemm"; "atax"; "jacobi-2d"; "floyd-warshall"; "durbin"; "heat-3d" ]

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

let bechamel_suite () =
  section "Wall-clock micro-benchmarks (Bechamel)";
  let open Bechamel in
  let open Toolkit in
  let gcm_key = Twine_crypto.Gcm.of_raw (String.make 16 'k') in
  let block4k = String.make 4096 'x' in
  let gemm =
    List.hd
      (List.filter
         (fun k -> k.Twine_polybench.Kernel_dsl.name = "gemm")
         (Twine_polybench.Kernels.all ~scale:0.5 ()))
  in
  let tests =
    [ Test.make ~name:"aes-gcm-seal-4KiB"
        (Staged.stage (fun () ->
             ignore (Twine_crypto.Gcm.encrypt gcm_key ~iv:(String.make 12 'i') block4k)));
      Test.make ~name:"sha256-4KiB"
        (Staged.stage (fun () -> ignore (Twine_crypto.Sha256.digest block4k)));
      Test.make ~name:"gemm-native"
        (Staged.stage (fun () -> ignore (Twine_polybench.Suite.run_native gemm)));
      Test.make ~name:"gemm-wasm-interp"
        (Staged.stage (fun () ->
             ignore (Twine_polybench.Suite.run_wasm ~engine:`Interp gemm)));
      Test.make ~name:"gemm-wasm-aot"
        (Staged.stage (fun () ->
             ignore (Twine_polybench.Suite.run_wasm ~engine:`Aot gemm)));
      Test.make ~name:"btree-1k-inserts"
        (Staged.stage (fun () ->
             let vfs = Twine_sqldb.Svfs.memory () in
             let p = Twine_sqldb.Pager.create_or_open vfs "b" in
             Twine_sqldb.Pager.begin_txn p;
             let root = Twine_sqldb.Btree.create p Twine_sqldb.Btree.Table in
             for i = 1 to 1000 do
               Twine_sqldb.Btree.insert_table p ~root ~rowid:(Int64.of_int i) "payload"
             done;
             Twine_sqldb.Pager.commit p));
      (let db = Twine_sqldb.Db.open_db ":memory:" in
       ignore (Twine_sqldb.Db.exec db "CREATE TABLE t(a INTEGER PRIMARY KEY, b TEXT)");
       ignore (Twine_sqldb.Db.exec db "BEGIN");
       for i = 1 to 1000 do
         ignore
           (Twine_sqldb.Db.exec db (Printf.sprintf "INSERT INTO t VALUES (%d, 'v%d')" i i))
       done;
       ignore (Twine_sqldb.Db.exec db "COMMIT");
       Test.make ~name:"sql-100-point-queries"
         (Staged.stage (fun () ->
              for i = 1 to 100 do
                ignore
                  (Twine_sqldb.Db.query db
                     (Printf.sprintf "SELECT b FROM t WHERE a = %d" (((i * 7) mod 1000) + 1)))
              done)));
    ]
  in
  Printf.printf "%-26s %16s\n" "benchmark" "time/run";
  hr ();
  List.iter
    (fun test ->
      let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.4) () in
      let results = Benchmark.all cfg Instance.[ monotonic_clock ] test in
      let analysis =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
          Instance.monotonic_clock results
      in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> Printf.printf "%-26s %13.0f ns\n" name est
          | _ -> Printf.printf "%-26s %16s\n" name "n/a")
        analysis)
    tests

(* ------------------------------------------------------------------ *)
(* Telemetry report: one WASI-heavy run through the full stack          *)
(* ------------------------------------------------------------------ *)

(* A file-churning guest: 64 x 4 KiB writes through the protected FS,
   rewind, 64 reads back. Exercises every instrumented layer at once —
   WASI hostcalls, IPFS node cache + crypto, EPC paging of the guest
   linear memory (the machine's EPC is shrunk so the working set does
   not fit), and the single run ECALL with its spans. *)
let report_wat =
  {|(module
      (import "wasi_snapshot_preview1" "path_open"
        (func $path_open (param i32 i32 i32 i32 i32 i64 i64 i32 i32) (result i32)))
      (import "wasi_snapshot_preview1" "fd_write"
        (func $fd_write (param i32 i32 i32 i32) (result i32)))
      (import "wasi_snapshot_preview1" "fd_seek"
        (func $fd_seek (param i32 i64 i32 i32) (result i32)))
      (import "wasi_snapshot_preview1" "fd_read"
        (func $fd_read (param i32 i32 i32 i32) (result i32)))
      (import "wasi_snapshot_preview1" "fd_close"
        (func $fd_close (param i32) (result i32)))
      (import "wasi_snapshot_preview1" "proc_exit"
        (func $proc_exit (param i32)))
      (memory (export "memory") 4)
      (data (i32.const 16) "report.bin")
      (func (export "_start")
        (local $fd i32) (local $i i32)
        ;; open "report.bin" with CREAT in preopen fd 3
        (drop (call $path_open (i32.const 3) (i32.const 0) (i32.const 16) (i32.const 10)
                 (i32.const 1) (i64.const 0x1fffffff) (i64.const 0) (i32.const 0)
                 (i32.const 32)))
        (local.set $fd (i32.load (i32.const 32)))
        ;; iovec: a 4 KiB buffer one page up from the scratch area
        (i32.store (i32.const 40) (i32.const 65536))
        (i32.store (i32.const 44) (i32.const 4096))
        (local.set $i (i32.const 0))
        (block $wrote
          (loop $w
            (br_if $wrote (i32.ge_u (local.get $i) (i32.const 64)))
            (drop (call $fd_write (local.get $fd) (i32.const 40) (i32.const 1)
                     (i32.const 48)))
            (local.set $i (i32.add (local.get $i) (i32.const 1)))
            (br $w)))
        (drop (call $fd_seek (local.get $fd) (i64.const 0) (i32.const 0) (i32.const 56)))
        (local.set $i (i32.const 0))
        (block $read
          (loop $r
            (br_if $read (i32.ge_u (local.get $i) (i32.const 64)))
            (drop (call $fd_read (local.get $fd) (i32.const 40) (i32.const 1)
                     (i32.const 48)))
            (local.set $i (i32.add (local.get $i) (i32.const 1)))
            (br $r)))
        ;; hot loop: re-read the same 4 KiB 32 times (IPFS node-cache hits)
        (local.set $i (i32.const 0))
        (block $hot
          (loop $h
            (br_if $hot (i32.ge_u (local.get $i) (i32.const 32)))
            (drop (call $fd_seek (local.get $fd) (i64.const 0) (i32.const 0)
                     (i32.const 56)))
            (drop (call $fd_read (local.get $fd) (i32.const 40) (i32.const 1)
                     (i32.const 48)))
            (local.set $i (i32.add (local.get $i) (i32.const 1)))
            (br $h)))
        (drop (call $fd_close (local.get $fd)))
        (call $proc_exit (i32.const 0))))|}

let report () =
  section "Telemetry: per-run cost report (WASI file churn, 128 KiB EPC)";
  let machine = Machine.create ~seed:"report" ~epc_bytes:(32 * 4096) () in
  let rt = Runtime.create machine in
  Runtime.deploy rt (Twine_wasm.Wat.parse report_wat);
  let r = Runtime.run rt in
  Printf.printf "exit code %d, simulated time %.3f ms\n" r.Runtime.exit_code
    (float_of_int (Machine.now_ns machine) /. 1e6);
  print_newline ();
  print_string
    (Twine_obs.Report.render ~ledger:(Machine.ledger machine) machine.Machine.obs);
  print_newline ();
  print_endline "-- JSON --";
  print_endline
    (Twine_obs.Report.to_json ~ledger:(Machine.ledger machine) machine.Machine.obs)

(* ------------------------------------------------------------------ *)
(* Guest profiler: hot functions + engine parity                       *)
(* ------------------------------------------------------------------ *)

(* Shadow-stack hooks for a bare [Suite.run_wasm] instance: the namer
   resolves through the module's name section (Builder records "kernel"
   there), fuel comes from the engine's own meter. *)
let profile_hooks prof (inst : Twine_wasm.Instance.t) =
  Twine_obs.Profile.set_namer prof (fun i ->
      match Twine_wasm.Ast.func_name inst.Twine_wasm.Instance.module_ i with
      | Some n -> n
      | None -> Printf.sprintf "func[%d]" i);
  {
    Twine_wasm.Instance.on_enter =
      (fun i ->
        Twine_obs.Profile.enter prof ~fuel:inst.Twine_wasm.Instance.fuel_used i);
    Twine_wasm.Instance.on_exit =
      (fun i ->
        Twine_obs.Profile.exit prof ~fuel:inst.Twine_wasm.Instance.fuel_used i);
  }

let profiled_kernel ~engine k =
  let prof = Twine_obs.Profile.create () in
  let r = Twine_polybench.Suite.run_wasm ~hooks:(profile_hooks prof) ~engine k in
  (prof, r)

let profile_folded_file = "polybench-atax.folded"
let profile_ledger_file = "polybench-atax.ledger.json"

(* fig3-style: atax under AoT inside an enclave on a shrunk EPC, with
   the profiler's shadow stack joined to the machine ledger, so charges
   raised mid-kernel (EPC faults of the linear memory) attribute to the
   guest frame that caused them. *)
let profiled_enclave_atax k =
  let machine = Machine.create ~seed:"fig3" ~epc_bytes:fig3_epc_bytes () in
  let enclave = Enclave.create machine ~heap_bytes:0 ~code:Runtime.runtime_code () in
  let m, _lay = Twine_polybench.Kernel_dsl.comp_wasm k in
  let inst = Twine_wasm.Interp.instantiate m in
  ignore (Twine_wasm.Aot.compile_instance inst);
  let prof = Twine_obs.Profile.create ~now:(fun () -> Machine.now_ns machine) () in
  Twine_obs.Profile.connect_ledger prof (Machine.ledger machine);
  inst.Twine_wasm.Instance.hooks <- Some (profile_hooks prof inst);
  (match inst.Twine_wasm.Instance.memory with
  | Some mem ->
      let base = Enclave.reserve enclave (Twine_wasm.Memory.size_bytes mem) in
      Runtime.install_memory_hook enclave ~base mem
  | None -> ());
  Enclave.ecall enclave (fun _ -> ignore (Twine_wasm.Interp.invoke inst "kernel" []));
  (machine, prof)

let write_ledger_json machine file =
  let oc = open_out file in
  output_string oc
    (Twine_obs.Ledger.to_string
       (Twine_obs.Ledger.snapshot (Machine.ledger machine)));
  output_char oc '\n';
  close_out oc

let profile_section () =
  section "Guest profiler: calling-context attribution (CCT + folded stacks)";
  let k =
    match
      Twine_polybench.Kernels.find "atax" (Twine_polybench.Kernels.all ~scale:0.4 ())
    with
    | Some k -> k
    | None -> failwith "atax kernel missing"
  in
  let prof_i, ri = profiled_kernel ~engine:`Interp k in
  let prof_a, ra = profiled_kernel ~engine:`Aot k in
  Printf.printf "atax: interp %d instr, AoT %d instr — %s\n" ri.Twine_polybench.Suite.fuel
    ra.Twine_polybench.Suite.fuel
    (if
       ri.Twine_polybench.Suite.fuel = ra.Twine_polybench.Suite.fuel
       && Twine_obs.Profile.functions prof_i = Twine_obs.Profile.functions prof_a
     then "engines agree (per-function parity)"
     else "ENGINE MISMATCH");
  print_string (Twine_obs.Report.profile_table prof_a);
  Twine_obs.Trace_export.folded_to_file prof_a profile_folded_file;
  Printf.printf "folded stacks -> %s\n" profile_folded_file;
  (* the WASI-heavy report workload, profiled through the runtime: shows
     hostcall time attributed to the calling guest frame *)
  let machine = Machine.create ~seed:"report" ~epc_bytes:(32 * 4096) () in
  let rt = Runtime.create machine in
  Runtime.deploy rt (Twine_wasm.Wat.parse report_wat);
  let prof =
    Twine_obs.Profile.create ~now:(fun () -> Machine.now_ns machine) ()
  in
  let r = Runtime.run ~profile:prof rt in
  Printf.printf "\nreport workload (exit %d, %d instr):\n" r.Runtime.exit_code
    r.Runtime.fuel;
  print_string (Twine_obs.Report.profile_table prof);
  print_string (Twine_obs.Ledger.render (Machine.ledger machine));
  print_string
    (Twine_obs.Ledger.render_matrix
       (Twine_obs.Ledger.snapshot (Machine.ledger machine)));
  (* the enclave-hosted kernel: same attribution machinery under EPC
     pressure, exported as machine-readable ledger JSON for CI *)
  let lm, lprof = profiled_enclave_atax k in
  Printf.printf "\natax in-enclave (EPC %d KiB):\n" (fig3_epc_bytes / 1024);
  print_string (Twine_obs.Ledger.render ~title:"atax cycle ledger" (Machine.ledger lm));
  print_string
    (Twine_obs.Ledger.render_matrix (Twine_obs.Ledger.snapshot (Machine.ledger lm)));
  ignore lprof;
  write_ledger_json lm profile_ledger_file;
  Printf.printf "ledger JSON -> %s\n" profile_ledger_file

(* ------------------------------------------------------------------ *)
(* Crash matrix: fault injection + crash-point recovery                *)
(* ------------------------------------------------------------------ *)

(* The crash section drives the full storage stack — SQL transactions
   through the pager onto protected files over an untrusted backing —
   while a crash-point log records every backing mutation. It then
   replays EVERY prefix of that log into a fresh store (plus a torn
   variant that half-applies the next write), reopens the database with
   the same machine seed (so sealed files re-derive their keys) and
   checks the recovered rows equal a transaction boundary: the last
   committed state, or — for a crash inside a commit whose writes all
   landed — the in-flight one. Anything else (a torn mix, a spurious
   Integrity_violation) fails the harness.

   A second pass arms a seeded fault plan of Delay injections over the
   same workload twice and checks the injection sequence AND the ledger
   snapshot reproduce exactly — the determinism contract that makes a
   failing fault plan a reproducible artifact. *)

let crash_seed = "crash-matrix"

let crash_workload =
  [
    "INSERT INTO t (id, v) VALUES (1, 'a'), (2, 'b'), (3, 'c')";
    "UPDATE t SET v = 'B' WHERE id = 2";
    "INSERT INTO t (id, v) VALUES (4, 'd')";
    "DELETE FROM t WHERE id = 1";
    "UPDATE t SET v = 'C' WHERE id = 3";
  ]

let crash_select = "SELECT id, v FROM t ORDER BY id"

(* Build the stack over [backing]; small caches so pager and node-cache
   evictions (and hence mid-transaction in-place writes) happen. *)
let crash_stack backing =
  let machine = Machine.create ~seed:crash_seed () in
  let enclave =
    Enclave.create machine ~signer:"crash" ~heap_bytes:(2 * 1024 * 1024)
      ~code:Runtime.runtime_code ()
  in
  let fs =
    Twine_ipfs.Protected_fs.create enclave backing
      ~variant:Twine_ipfs.Protected_fs.Optimized ~cache_nodes:8 ()
  in
  let vfs = Bench_db.pfs_svfs fs in
  let db = Twine_sqldb.Db.open_db ~vfs ~cache_pages:16 ~obs:machine.Machine.obs "crash.db" in
  (machine, db)

let crash_query db =
  match Twine_sqldb.Db.query db crash_select with
  | rows -> Some rows
  | exception Twine_sqldb.Db.Sql_error _ -> None  (* table not created yet *)

let replay_backing log ~at ~torn =
  let b = Twine_ipfs.Backing.memory () in
  Twine_sim.Crashpoint.replay ~torn log ~at
    ~apply:(fun op ->
      match op with
      | Twine_sim.Crashpoint.Write { file; pos; data } ->
          Twine_ipfs.Backing.write b file ~pos data
      | Twine_sim.Crashpoint.Truncate { file; size } ->
          Twine_ipfs.Backing.truncate b file size
      | Twine_sim.Crashpoint.Delete { file } ->
          ignore (Twine_ipfs.Backing.delete b file)
      | Twine_sim.Crashpoint.Sync _ -> ());
  b

let crash_section () =
  section "Crash matrix: every backing-op prefix, recover, verify";
  (* 1. record the workload *)
  let log = Twine_sim.Crashpoint.create () in
  let backing = Twine_ipfs.Backing.logged log (Twine_ipfs.Backing.memory ()) in
  let machine, db = crash_stack backing in
  ignore (Twine_sqldb.Db.exec db "CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)");
  let snapshots = ref [ (Twine_sim.Crashpoint.length log, Some []) ] in
  List.iter
    (fun sql ->
      ignore (Twine_sqldb.Db.exec db sql);
      snapshots :=
        (Twine_sim.Crashpoint.length log, crash_query db) :: !snapshots)
    crash_workload;
  Twine_sqldb.Db.close db;
  let snapshots = List.rev !snapshots in
  let journal_ns = Twine_obs.Ledger.ns (Machine.ledger machine) "ipfs.journal" in
  let total_ns = Machine.now_ns machine in
  let n_ops = Twine_sim.Crashpoint.length log in
  Printf.printf "workload: %d transaction(s), %d backing op(s); \
                 journal overhead %.2f%% of %.3f ms\n"
    (List.length crash_workload + 1) n_ops
    (100. *. float_of_int journal_ns /. float_of_int (max 1 total_ns))
    (float_of_int total_ns /. 1e6);
  (* 2. replay every prefix (clean and torn) and verify recovery *)
  let failures = ref [] in
  let recoveries = ref 0 and max_recovery_ns = ref 0 in
  let verify ~torn at =
    match
      let b = replay_backing log ~at ~torn in
      let m2, db2 = crash_stack b in
      let got = crash_query db2 in
      Twine_sqldb.Db.close db2;
      (got, Twine_obs.Ledger.ns (Machine.ledger m2) "ipfs.recovery")
    with
    | exception e ->
        failures := (at, torn, "exception " ^ Printexc.to_string e) :: !failures
    | got, rec_ns ->
        if rec_ns > 0 then begin
          incr recoveries;
          if rec_ns > !max_recovery_ns then max_recovery_ns := rec_ns
        end;
        (* acceptable: the last state committed within the prefix, or the
           in-flight transaction when its commit writes all made the cut *)
        let committed =
          List.filter (fun (oplen, _) -> oplen <= at) snapshots
          |> List.rev
          |> function (_, s) :: _ -> Some s | [] -> None
        in
        let next =
          List.find_opt (fun (oplen, _) -> oplen > at) snapshots
          |> Option.map snd
        in
        let acceptable =
          (match committed with Some s -> [ s ] | None -> [ None; Some [] ])
          @ (match next with Some s -> [ s ] | None -> [])
        in
        if not (List.mem got acceptable) then
          let desc =
            match got with
            | None -> "no table"
            | Some rows -> Printf.sprintf "%d row(s)" (List.length rows)
          in
          failures := (at, torn, desc) :: !failures
  in
  for at = 0 to n_ops do
    verify ~torn:false at;
    if at < n_ops then verify ~torn:true at
  done;
  Printf.printf
    "replayed %d crash point(s) (+%d torn): all recovered to a transaction \
     boundary\n"
    (n_ops + 1) n_ops;
  Printf.printf "journal rollbacks: %d, worst recovery cost %.1f us\n"
    !recoveries
    (float_of_int !max_recovery_ns /. 1e3);
  if !failures <> [] then begin
    let oc = open_out "crash-failures.txt" in
    Printf.fprintf oc "seed: %s\nworkload:\n" crash_seed;
    List.iter (fun sql -> Printf.fprintf oc "  %s\n" sql) crash_workload;
    List.iter
      (fun (at, torn, desc) ->
        Printf.fprintf oc "cut %d%s: recovered to NON-boundary state (%s)\n" at
          (if torn then " (torn)" else "")
          desc)
      (List.rev !failures);
    close_out oc;
    Printf.printf
      "CRASH MATRIX FAILED: %d bad crash point(s); plan in crash-failures.txt\n"
      (List.length !failures);
    exit 1
  end;
  (* 3. fault-plan determinism: same seed => same injections, same books *)
  let plan =
    Twine_sim.Fault.plan ~seed:crash_seed
      [
        Twine_sim.Fault.rule ~prob:0.05 "backing.write"
          (Twine_sim.Fault.Delay 400);
        Twine_sim.Fault.rule ~prob:0.03 "backing.read"
          (Twine_sim.Fault.Delay 900);
        Twine_sim.Fault.rule ~nth:7 "wasi.fd_write" Twine_sim.Fault.Fail;
      ]
  in
  let injected_run () =
    let machine, db = crash_stack (Twine_ipfs.Backing.memory ()) in
    Machine.arm_faults machine plan;
    Fun.protect ~finally:Machine.disarm_faults (fun () ->
        ignore
          (Twine_sqldb.Db.exec db "CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)");
        List.iter (fun sql -> ignore (Twine_sqldb.Db.exec db sql)) crash_workload;
        Twine_sqldb.Db.close db);
    ( Twine_sim.Fault.injections plan,
      Twine_obs.Ledger.to_string
        (Twine_obs.Ledger.snapshot (Machine.ledger machine)),
      machine )
  in
  let inj1, books1, m1 = injected_run () in
  let inj2, books2, _ = injected_run () in
  if inj1 <> inj2 || books1 <> books2 then begin
    Printf.printf
      "FAULT PLAN NOT DETERMINISTIC: %d vs %d injection(s), books %s\n"
      (List.length inj1) (List.length inj2)
      (if books1 = books2 then "equal" else "differ");
    exit 1
  end;
  Printf.printf
    "fault plan '%s': %d injection(s), identical sequence and ledger across \
     two runs\n"
    crash_seed (List.length inj1);
  List.iter
    (fun acct ->
      let ns = Twine_obs.Ledger.ns (Machine.ledger m1) acct in
      if ns > 0 then Printf.printf "  %-22s %8d ns booked under injection\n" acct ns)
    [ "fault.backing.write"; "fault.backing.read"; "fault.wasi.fd_write" ]

(* ------------------------------------------------------------------ *)
(* serve: a multi-enclave serving fleet on one shared EPC              *)
(* ------------------------------------------------------------------ *)

(* The paper evaluates one enclave at a time; this section scales the
   same stack out. N TWINE runtimes share one machine — one virtual
   clock, one EPC, one ledger — while a run-to-completion scheduler
   replays a seeded open-loop workload, coalescing queued requests
   behind single ECALLs. Three measurements: the gated 100k-request
   operating point, throughput vs fleet size over a shrunk EPC (the
   contention cliff), and the batched-vs-unbatched ledger diff that
   shows transition amortisation. *)

let serve_requests = 100_000
let serve_sweep_requests = 20_000
let serve_cliff_epc_bytes = 288 * 4096

(* The gated objective of the streaming SLO plane: p99 under 2 ms over
   50 ms virtual windows with a 0.1% error budget. Deliberately
   violated at the default operating point (p99 is ~9 ms there), so the
   verdict, burn rate and windowed violation counts are all non-trivial
   gated signals. *)
let serve_slo_spec =
  match Twine_obs.Slo.parse "p99<2ms@50ms,budget=0.1%" with
  | Ok s -> s
  | Error msg -> failwith ("bench: bad serve SLO spec: " ^ msg)

let serve_gated_config =
  {
    Twine_serve.Serve.default_config with
    Twine_serve.Serve.requests = serve_requests;
    slo = Some serve_slo_spec;
  }

let serve_section () =
  let open Twine_serve in
  section "serve: multi-enclave fleet, shared EPC, ECALL batching";
  let stats = Serve.run serve_gated_config in
  print_string (Serve.render stats);
  if stats.Serve.attribution_residue_ns <> 0 then begin
    Printf.printf "PER-REQUEST ATTRIBUTION LOST TIME (residue %d ns)\n"
      stats.Serve.attribution_residue_ns;
    exit 1
  end;
  (* The sketch's advertised guarantee, checked against ground truth:
     retained mode computes exact nearest-rank percentiles over every
     latency, and the mergeable sketch the --stream mode relies on must
     land within alpha relative error of them (+1 ns for integer
     rounding at tiny values). *)
  let check_alpha name exact est =
    let bound =
      int_of_float (Twine_obs.Sketch.alpha *. float_of_int exact) + 1
    in
    Printf.printf
      "  sketch %s %d ns vs exact %d ns (|delta| %d <= alpha bound %d)\n" name
      est exact (abs (est - exact)) bound;
    if abs (est - exact) > bound then begin
      Printf.printf "SKETCH %s OUTSIDE ALPHA OF EXACT\n"
        (String.uppercase_ascii name);
      exit 1
    end
  in
  Printf.printf "\nsketch vs exact percentiles (alpha = %.5f):\n"
    Twine_obs.Sketch.alpha;
  check_alpha "p50" stats.Serve.p50_ns stats.Serve.sketch_p50_ns;
  check_alpha "p99" stats.Serve.p99_ns stats.Serve.sketch_p99_ns;
  print_newline ();
  print_string (Serve.render_blame ~top:5 stats);
  Printf.printf
    "(the whole fleet shares ONE machine; the audit line below counts every \
     machine this section created)\n";
  hr ();
  (* Over the p99 tail (slowest 1%), how much of the summed latency is
     queue wait vs EPC paging (fault + evict slices)? The per-request
     slicing makes this an exact ledger read, not an inference. *)
  let tail_shares (s : Serve.stats) =
    let reqs = Array.copy s.Serve.requests_log in
    Array.sort
      (fun a b -> compare (Serve.latency_ns b) (Serve.latency_ns a))
      reqs;
    let k = max 1 (Array.length reqs / 100) in
    let lat = ref 0 and queue = ref 0 and epc = ref 0 in
    for i = 0 to k - 1 do
      let r = reqs.(i) in
      lat := !lat + Serve.latency_ns r;
      queue := !queue + Serve.queue_ns r;
      epc :=
        !epc + r.Serve.breakdown.Serve.epc_fault_ns
        + r.Serve.breakdown.Serve.epc_evict_ns
    done;
    let pct v = 100. *. float_of_int v /. float_of_int (max 1 !lat) in
    (pct !queue, pct !epc)
  in
  Printf.printf
    "throughput vs fleet size (%d requests, EPC shrunk to %d pages):\n\n"
    serve_sweep_requests
    (serve_cliff_epc_bytes / 4096);
  Printf.printf "  %-9s %12s %12s %14s %10s %11s %10s %8s %8s\n" "enclaves"
    "req/s" "p50 (ns)" "p99 (ns)" "faults" "evictions" "xrefaults" "p99 q%"
    "p99 epc%";
  let cliff_runs =
    List.map
      (fun enclaves ->
        let s =
          Serve.run
            {
              Serve.default_config with
              Serve.enclaves;
              requests = serve_sweep_requests;
              epc_bytes = serve_cliff_epc_bytes;
              slo = Some serve_slo_spec;
            }
        in
        if s.Serve.attribution_residue_ns <> 0 then begin
          Printf.printf "PER-REQUEST ATTRIBUTION LOST TIME (residue %d ns)\n"
            s.Serve.attribution_residue_ns;
          exit 1
        end;
        let qpct, epcpct = tail_shares s in
        Printf.printf "  %-9d %12.0f %12d %14d %10d %11d %10d %7.1f%% %7.1f%%\n"
          enclaves s.Serve.throughput_rps s.Serve.p50_ns s.Serve.p99_ns
          s.Serve.epc_faults s.Serve.epc_evictions s.Serve.cross_refaults qpct
          epcpct;
        (enclaves, s))
      [ 1; 2; 4; 8; 12; 16 ]
  in
  Printf.printf
    "\n(the drop past the EPC capacity is the paper's §V-D paging cliff, here \
     hit by the fleet's aggregate working set; the last three columns read \
     the per-request slices — cross-enclave refaults and the p99 tail's \
     queue vs EPC share)\n";
  hr ();
  (* The same cliff through the SLO plane's eyes: per fleet size, the
     whole-run burn rate against the error budget and the virtual
     instant the slow-burn alert first fires. The onset time localises
     *when* the aggregate working set outgrew the EPC — a timeline the
     end-of-run percentiles cannot give. *)
  Printf.printf "burn-rate timeline over the cliff (%s):\n\n"
    (Twine_obs.Slo.render serve_slo_spec);
  Printf.printf "  %-9s %10s %9s %11s %12s %14s %14s\n" "enclaves" "windows"
    "violating" "burn" "alerts f/s" "fast onset ms" "slow onset ms";
  List.iter
    (fun (enclaves, s) ->
      match s.Serve.slo with
      | None -> ()
      | Some (_, ev) ->
          let open Twine_obs.Slo in
          let onset = function
            | Some ns -> Printf.sprintf "%.1f" (float_of_int ns /. 1e6)
            | None -> "-"
          in
          let fast, slow =
            List.fold_left
              (fun (f, sl) a ->
                match a.al_kind with
                | `Fast -> (f + 1, sl)
                | `Slow -> (f, sl + 1))
              (0, 0) ev.ev_alerts
          in
          Printf.printf "  %-9d %10d %9d %10.1fx %12s %14s %14s\n" enclaves
            ev.ev_windows
            (List.length ev.ev_violations)
            (float_of_int ev.ev_burn_x1000 /. 1000.)
            (Printf.sprintf "%d/%d" fast slow)
            (onset ev.ev_first_fast_ns)
            (onset ev.ev_first_slow_ns))
    cliff_runs;
  Printf.printf
    "\n(burn = observed over-threshold rate / budgeted rate over the whole \
     run; onset = virtual ms at which the fast (14.4x over 1 window) or \
     slow (6x over 5 windows) burn alert first fired)\n";
  hr ();
  Printf.printf "ECALL batching (8 enclaves, %d requests):\n\n" serve_sweep_requests;
  let run_batch batch =
    Serve.run
      { Serve.default_config with Serve.requests = serve_sweep_requests; batch }
  in
  let unbatched = run_batch 1 in
  let batched = run_batch 16 in
  let per_req s = s.Serve.ecall_ns / s.Serve.requests in
  Printf.printf
    "  batch <= 1:  %6d ecalls, %5d ns/request in sgx.transition.ecall\n"
    unbatched.Serve.ecalls (per_req unbatched);
  Printf.printf
    "  batch <= 16: %6d ecalls, %5d ns/request in sgx.transition.ecall\n"
    batched.Serve.ecalls (per_req batched);
  if per_req batched >= per_req unbatched then begin
    Printf.printf "BATCHING DID NOT AMORTISE TRANSITIONS\n";
    exit 1
  end;
  Printf.printf "\nwhere the batched run's time moved (vs unbatched):\n";
  print_string
    (Twine_obs.Ledger.render_diff ~top:8 ~base:unbatched.Serve.ledger
       ~current:batched.Serve.ledger ())

(* ------------------------------------------------------------------ *)
(* chaos: fault-tolerant serving under seeded fault schedules          *)
(* ------------------------------------------------------------------ *)

(* The robustness counterpart of the serve section: the same fleet with
   a seeded chaos schedule armed for the serving phase. One enclave
   crash forces the full failover path — detect, teardown (EPC released
   and provenance purged), relaunch, durable-state recovery through the
   protected-FS crash path — and a capped transient entry fault
   exercises retry with backoff. The gated operating point pins
   goodput, availability, retries, sheds, failovers, recovery p99 and,
   at tolerance zero, the extended conservation law
   (requests + idle + failover = serving-phase booked time). *)

let chaos_requests = 10_000
let chaos_sweep_requests = 6_000

let chaos_parse s =
  match Twine_sim.Chaos.parse s with
  | Ok spec -> spec
  | Error msg -> failwith ("bench: bad chaos spec: " ^ msg)

let chaos_gated_spec =
  chaos_parse "seed=bench;enclave.ecall=crash@150;enclave.ecall=fail%0.002x6[2ms..]"

let chaos_gated_config =
  {
    Twine_serve.Serve.default_config with
    Twine_serve.Serve.enclaves = 4;
    requests = chaos_requests;
    chaos = Some chaos_gated_spec;
    deadline_ns = 50_000_000;
    retries = 3;
    shed_depth = 64;
  }

let chaos_availability_pct ppm = (ppm / 10_000, ppm mod 10_000)

let chaos_section () =
  let open Twine_serve in
  section "chaos: seeded fault schedules, failover, retry, shedding";
  Printf.printf "schedule: %s\n" (Twine_sim.Chaos.render chaos_gated_spec);
  Printf.printf
    "(armed for the serving phase only; activation windows are relative to \
     the phase start)\n\n";
  let stats = Serve.run chaos_gated_config in
  print_string (Serve.render stats);
  if stats.Serve.attribution_residue_ns <> 0 then begin
    Printf.printf "CHAOS ATTRIBUTION LOST TIME (residue %d ns)\n"
      stats.Serve.attribution_residue_ns;
    exit 1
  end;
  if stats.Serve.failovers < 1 || stats.Serve.goodput_rps <= 0. then begin
    Printf.printf "CHAOS RUN DID NOT EXERCISE FAILOVER\n";
    exit 1
  end;
  print_newline ();
  print_string (Serve.render_blame ~top:5 stats);
  hr ();
  (* Replay determinism under chaos: the same (seed, config) must give
     byte-identical request-trace and SLO artifacts, and the --stream
     run (no retention) must still emit the identical SLO bytes. *)
  let again = Serve.run chaos_gated_config in
  let streamed =
    Serve.run { chaos_gated_config with Serve.retain_requests = false }
  in
  let check name a b =
    if a <> b then begin
      Printf.printf "CHAOS %s NOT BYTE-IDENTICAL\n" name;
      exit 1
    end
  in
  check "REPLAY REQUEST TRACE" (Serve.render_requests stats)
    (Serve.render_requests again);
  check "REPLAY SLO ARTIFACT" (Serve.render_slo stats) (Serve.render_slo again);
  check "STREAMED SLO ARTIFACT" (Serve.render_slo stats)
    (Serve.render_slo streamed);
  Printf.printf
    "replay determinism: request trace and %s artifact byte-identical across \
     two retained runs and one --stream run\n"
    Serve.slo_schema;
  hr ();
  (* Availability vs fault rate x fleet size at the §V-D cliff EPC: how
     much goodput the deadline/retry/failover machinery preserves as
     transient entry faults scale up while one crash fires per run. *)
  Printf.printf
    "availability vs fault rate x fleet size (%d requests, EPC %d pages):\n\n"
    chaos_sweep_requests (serve_cliff_epc_bytes / 4096);
  Printf.printf "  %-10s %-9s %10s %12s %8s %10s %6s %9s %15s\n" "fault rate"
    "enclaves" "goodput" "avail %" "retries" "failovers" "sheds" "timeouts"
    "recovery p99";
  List.iter
    (fun rate ->
      List.iter
        (fun enclaves ->
          let spec =
            chaos_parse
              (if rate = 0. then "seed=sweep;enclave.ecall=crash@120"
               else
                 Printf.sprintf
                   "seed=sweep;enclave.ecall=crash@120;enclave.ecall=fail%%%g"
                   rate)
          in
          let s =
            Serve.run
              {
                chaos_gated_config with
                Serve.enclaves;
                requests = chaos_sweep_requests;
                epc_bytes = serve_cliff_epc_bytes;
                chaos = Some spec;
              }
          in
          if s.Serve.attribution_residue_ns <> 0 then begin
            Printf.printf "CHAOS SWEEP LOST TIME (residue %d ns)\n"
              s.Serve.attribution_residue_ns;
            exit 1
          end;
          let ai, af = chaos_availability_pct s.Serve.availability_ppm in
          Printf.printf
            "  %-10g %-9d %10.0f %7d.%04d %8d %10d %6d %9d %12d ns\n" rate
            enclaves s.Serve.goodput_rps ai af s.Serve.retries
            s.Serve.failovers s.Serve.shed s.Serve.timed_out
            s.Serve.recovery_p99_ns)
        [ 2; 4; 8 ])
    [ 0.; 0.005; 0.02 ];
  Printf.printf
    "\n(every run keeps the zero-residue conservation law: requests + idle + \
     failover = serving-phase booked time; the crash rule fires once per \
     run, the transient rate scales retry pressure)\n"

(* ------------------------------------------------------------------ *)
(* Machine-readable baseline: `bench json` / `bench check`             *)
(* ------------------------------------------------------------------ *)

(* Every metric below is produced on the virtual clock from fixed seeds
   and a pinned Wasm slowdown factor, so a healthy tree reproduces the
   committed values exactly; the tolerance bands absorb benign drift
   when the cost model is retuned deliberately. PolyBench wall-clock
   metrics carry no band ([tol] omitted): they are recorded for trend
   inspection but never gate, since CI hardware varies. *)

let baseline_wasm_factor = 2.5

(* ------------------------------------------------------------------ *)
(* sql: per-operator query observability (EXPLAIN ANALYZE)             *)
(* ------------------------------------------------------------------ *)

(* The serving fleet's three query shapes (plus one secondary-index
   shape the fleet never issues) against a serve-like schema on the
   TWINE variant: a file-backed database whose page cache lives in
   enclave memory. Each statement's operator self-work plus the
   profiling overhead must sum exactly to its booked work — the
   zero-residue conservation law the baseline pins at tolerance 0. *)
let sql_shapes =
  [ ("kv_get", "SELECT v FROM kv WHERE k = 42");
    ("point", "SELECT b, c FROM t WHERE a = 123");
    ("range", "SELECT count(*), sum(b) FROM t WHERE a >= 100 AND a < 150");
    ("index", "SELECT a, c FROM t WHERE b = 7") ]

let sql_rows = 400

let sql_setup () =
  let machine = Machine.create ~seed:"sql" () in
  let t =
    Bench_db.create ~machine ~cache_pages:64 ~wasm_factor:baseline_wasm_factor
      Bench_db.Twine_rt Bench_db.File
  in
  ignore (Bench_db.exec t "CREATE TABLE kv (k INTEGER PRIMARY KEY, v TEXT)");
  ignore
    (Bench_db.exec t
       "CREATE TABLE t (a INTEGER PRIMARY KEY, b INTEGER, c TEXT)");
  ignore (Bench_db.exec t "CREATE INDEX t_b ON t (b)");
  for i = 0 to sql_rows - 1 do
    ignore
      (Bench_db.exec t (Printf.sprintf "INSERT INTO kv VALUES (%d, 'v%04d')" i i));
    ignore
      (Bench_db.exec t
         (Printf.sprintf "INSERT INTO t VALUES (%d, %d, 'c%04d')" i (i mod 20) i))
  done;
  ignore (Bench_db.exec t "ANALYZE");
  (* render the cycles column of EXPLAIN ANALYZE at this variant's rate *)
  Twine_sqldb.Db.set_ns_per_work t.Bench_db.db
    (t.Bench_db.ns_per_work *. t.Bench_db.wasm_factor);
  t

(* total - sum(op self-work) - overhead: zero by construction *)
let sql_profile_residue (p : Twine_sqldb.Db.profile) =
  let open Twine_sqldb in
  p.Db.pr_total_work
  - List.fold_left (fun a (o : Db.opstat) -> a + o.Db.os_work) 0 p.Db.pr_ops
  - p.Db.pr_overhead_work

let sql_section () =
  let open Twine_sqldb in
  section "sql: per-operator query observability (EXPLAIN ANALYZE)";
  let t = sql_setup () in
  let residue = ref 0 in
  List.iter
    (fun (name, sql) ->
      Printf.printf "\n%s: EXPLAIN ANALYZE %s\n" name sql;
      let r = Bench_db.exec t ("EXPLAIN ANALYZE " ^ sql) in
      List.iter
        (function
          | [ Value.Text line ] -> Printf.printf "  %s\n" line
          | _ -> ())
        r.Db.rows;
      match Db.last_profile t.Bench_db.db with
      | Some p -> residue := !residue + abs (sql_profile_residue p)
      | None ->
          Printf.printf "NO PROFILE RECORDED FOR %s\n" name;
          exit 1)
    sql_shapes;
  hr ();
  Printf.printf
    "operator attribution audit: residue %d work unit(s) over %d shape(s)\n"
    !residue (List.length sql_shapes);
  if !residue <> 0 then begin
    Printf.printf "OPERATOR ATTRIBUTION LOST WORK\n";
    exit 1
  end;
  let obs = Bench_db.obs t in
  Printf.printf
    "access-path census (sqldb.plan.*): full_scan=%d rowid_range=%d \
     index_range=%d fallback=%d\n"
    (Twine_obs.Obs.value obs "sqldb.plan.full_scan")
    (Twine_obs.Obs.value obs "sqldb.plan.rowid_range")
    (Twine_obs.Obs.value obs "sqldb.plan.index_range")
    (Twine_obs.Obs.value obs "sqldb.plan.fallback");
  Printf.printf "\nfingerprint normalization (query-stats registry keys):\n";
  List.iter
    (fun (_, sql) ->
      Printf.printf "  %s\n    -> %s\n" sql (Sqlstat.fingerprint sql))
    sql_shapes;
  Bench_db.close t

let collect_baseline () =
  let open Twine_obs in
  let metrics = ref [] in
  let put m = metrics := m :: !metrics in
  (* Gate the ledger itself: every account's booked total (band 2%, like
     the other virtual-clock metrics) and the audit residue at exactly
     zero, so any charge site that stops booking fails `bench check`. *)
  let put_ledger group machine =
    let l = Machine.ledger machine in
    let a = Ledger.audit l in
    let pfx = "ledger." ^ group ^ "." in
    put (Baseline.v ~tol:0.0 (pfx ^ "residue_ns") a.Ledger.residue_ns);
    put (Baseline.v ~tol:0.02 (pfx ^ "elapsed_ns") a.Ledger.elapsed_ns);
    List.iter
      (fun (name, e) -> put (Baseline.v ~tol:0.02 (pfx ^ name) e.Ledger.ns))
      (Ledger.accounts l);
    (group, Ledger.snapshot l)
  in
  (* -- the report workload: every instrumented layer in one run -- *)
  let report_snap =
    let machine = Machine.create ~seed:"report" ~epc_bytes:(32 * 4096) () in
    let rt = Runtime.create machine in
    Runtime.deploy rt (Twine_wasm.Wat.parse report_wat);
    let r = Runtime.run rt in
    let obs = machine.Machine.obs in
    put (Baseline.v ~tol:0.0 "report.exit_code" r.Runtime.exit_code);
    (* exact guest instruction count: deterministic in both engines, so
       any drift is an engine regression that time bands would miss *)
    put (Baseline.v ~tol:0.0 "report.fuel" r.Runtime.fuel);
    put (Baseline.v ~tol:0.02 "report.virtual_ns" (Machine.now_ns machine));
    List.iter
      (fun k -> put (Baseline.v ~tol:0.0 ("report." ^ k) (Twine_obs.Obs.value obs k)))
      [ "sgx.ecall"; "sgx.ocall"; "wasi.hostcall"; "epc.fault"; "epc.hit";
        "epc.evict"; "ipfs.cache.hit"; "ipfs.cache.miss" ];
    put_ledger "report" machine
  in
  (* -- SQLite micro-benchmark sweep, TWINE variant on a file DB -- *)
  let micro_snap =
    let machine = Machine.create ~seed:"baseline" () in
    let s =
      Microbench.sweep ~machine ~wasm_factor:baseline_wasm_factor ~rand_reads:300
        ~cache_pages:64 Bench_db.Twine_rt Bench_db.File ~sizes:[ 500; 1500 ] ()
    in
    List.iter
      (fun p ->
        let pfx = Printf.sprintf "micro.twine.file.%d." p.Microbench.records in
        put (Baseline.v ~tol:0.02 (pfx ^ "insert_ns") p.Microbench.insert_ns);
        put (Baseline.v ~tol:0.02 (pfx ^ "seq_read_ns") p.Microbench.seq_read_ns);
        put (Baseline.v ~tol:0.02 (pfx ^ "rand_read_ns") p.Microbench.rand_read_ns))
      s.Microbench.points;
    put_ledger "micro" machine
  in
  (* -- serving fleet: the gated 100k-request operating point -- *)
  let serve_snap =
    let s = Twine_serve.Serve.run serve_gated_config in
    let open Twine_serve in
    put (Baseline.v ~tol:0.0 "serve.requests" s.Serve.requests);
    put (Baseline.v ~tol:0.02 "serve.p50_ns" s.Serve.p50_ns);
    put (Baseline.v ~tol:0.02 "serve.p99_ns" s.Serve.p99_ns);
    put (Baseline.v ~tol:0.02 "serve.throughput_rps"
           (int_of_float s.Serve.throughput_rps));
    put (Baseline.v ~tol:0.02 "serve.batches" s.Serve.batches);
    put (Baseline.v ~tol:0.02 "serve.ecalls" s.Serve.ecalls);
    put (Baseline.v ~tol:0.02 "serve.transitions_per_request_x1000"
           (int_of_float (s.Serve.transitions_per_request *. 1000.)));
    put (Baseline.v ~tol:0.02 "serve.epc_faults" s.Serve.epc_faults);
    put (Baseline.v ~tol:0.02 "serve.epc_evictions" s.Serve.epc_evictions);
    (* per-request attribution: the residue is pinned at exactly zero —
       the conservation invariant of the ledger-slicing layer *)
    put (Baseline.v ~tol:0.0 "serve.blame.residue_ns"
           s.Serve.attribution_residue_ns);
    put (Baseline.v ~tol:0.02 "serve.blame.attributed_ns" s.Serve.attributed_ns);
    put (Baseline.v ~tol:0.02 "serve.blame.unattributed_ns"
           s.Serve.unattributed_ns);
    put (Baseline.v ~tol:0.02 "serve.blame.cross_refaults" s.Serve.cross_refaults);
    put (Baseline.v ~tol:0.02 "serve.sampler.samples" s.Serve.sampler_samples);
    put (Baseline.v ~tol:0.02 "serve.sampler.queue_depth_hwm"
           s.Serve.queue_depth_hwm);
    (* fleet query-stats registry: one entry per statement shape, counts
       and rows exact, cycle totals and sketch quantiles banded *)
    List.iter
      (fun (e : Twine_sqldb.Sqlstat.entry) ->
        let open Twine_sqldb in
        let pfx = "serve.sql." ^ e.Sqlstat.sq_label ^ "." in
        put (Baseline.v ~tol:0.0 (pfx ^ "count") e.Sqlstat.sq_count);
        put (Baseline.v ~tol:0.0 (pfx ^ "rows") e.Sqlstat.sq_rows);
        put (Baseline.v ~tol:0.02 (pfx ^ "exec_ns") e.Sqlstat.sq_exec_ns);
        put (Baseline.v ~tol:0.02 (pfx ^ "pager_ns") e.Sqlstat.sq_pager_ns);
        put (Baseline.v ~tol:0.02 (pfx ^ "p99_ns") (Sqlstat.quantile_ns e 0.99)))
      (Twine_sqldb.Sqlstat.entries s.Serve.sqlstats_fleet);
    (* the streaming SLO plane at the same operating point: the sketch
       estimates ride the exact percentiles' 2% band (their alpha is
       tighter than that), the verdict is pinned exactly *)
    put (Baseline.v ~tol:0.02 "serve.slo.sketch_p50_ns" s.Serve.sketch_p50_ns);
    put (Baseline.v ~tol:0.02 "serve.slo.sketch_p99_ns" s.Serve.sketch_p99_ns);
    (match s.Serve.slo with
    | None -> failwith "bench: gated serve config lost its SLO"
    | Some (_, ev) ->
        let open Twine_obs.Slo in
        let fast, slow =
          List.fold_left
            (fun (f, sl) a ->
              match a.al_kind with `Fast -> (f + 1, sl) | `Slow -> (f, sl + 1))
            (0, 0) ev.ev_alerts
        in
        put (Baseline.v ~tol:0.0 "serve.slo.violated"
               (if ev.ev_violated then 1 else 0));
        put (Baseline.v ~tol:0.02 "serve.slo.windows" ev.ev_windows);
        put (Baseline.v ~tol:0.02 "serve.slo.violating_windows"
               (List.length ev.ev_violations));
        put (Baseline.v ~tol:0.02 "serve.slo.overs" ev.ev_overs);
        put (Baseline.v ~tol:0.02 "serve.slo.burn_x1000" ev.ev_burn_x1000);
        put (Baseline.v ~tol:0.02 "serve.slo.fast_alerts" fast);
        put (Baseline.v ~tol:0.02 "serve.slo.slow_alerts" slow));
    List.iter
      (fun (eid, v) ->
        put
          (Baseline.v ~tol:0.02
             (Printf.sprintf "serve.enclave.e%d.evictions" eid)
             v))
      s.Serve.evictions_by_enclave;
    List.iter
      (fun (eid, v) ->
        put
          (Baseline.v ~tol:0.02
             (Printf.sprintf "serve.enclave.e%d.queue_hwm" eid)
             v))
      s.Serve.queue_depth_hwm_by_enclave;
    put_ledger "serve" s.Serve.machine
  in
  (* -- chaos: the fault-injected operating point (crash + capped
     transient entry faults, deadlines, retries, depth shedding). The
     extended conservation law — requests + idle + failover = booked —
     is pinned at exactly zero; the crash rule fires once, so the
     failover count is exact too. -- *)
  let chaos_snap =
    let s = Twine_serve.Serve.run chaos_gated_config in
    let open Twine_serve in
    put (Baseline.v ~tol:0.0 "serve.chaos.residue_ns"
           s.Serve.attribution_residue_ns);
    put (Baseline.v ~tol:0.0 "serve.chaos.failovers" s.Serve.failovers);
    put (Baseline.v ~tol:0.02 "serve.chaos.goodput_rps"
           (int_of_float s.Serve.goodput_rps));
    put (Baseline.v ~tol:0.02 "serve.chaos.availability_ppm"
           s.Serve.availability_ppm);
    put (Baseline.v ~tol:0.02 "serve.chaos.served" s.Serve.served);
    put (Baseline.v ~tol:0.02 "serve.chaos.shed" s.Serve.shed);
    put (Baseline.v ~tol:0.02 "serve.chaos.timed_out" s.Serve.timed_out);
    put (Baseline.v ~tol:0.02 "serve.chaos.failed" s.Serve.failed);
    put (Baseline.v ~tol:0.02 "serve.chaos.retries" s.Serve.retries);
    put (Baseline.v ~tol:0.02 "serve.chaos.recovery_p99_ns"
           s.Serve.recovery_p99_ns);
    put (Baseline.v ~tol:0.02 "serve.chaos.failover_ns" s.Serve.failover_ns);
    put (Baseline.v ~tol:0.02 "serve.chaos.p99_ns" s.Serve.p99_ns);
    put_ledger "chaos" s.Serve.machine
  in
  (* -- per-operator query observability: the serve shapes' operator
     trees, every op's self-work pinned exactly, residue pinned at 0 -- *)
  let sql_snap =
    let open Twine_sqldb in
    let t = sql_setup () in
    let residue = ref 0 in
    List.iter
      (fun (name, sql) ->
        let r = Bench_db.exec t sql in
        let p =
          match Db.last_profile t.Bench_db.db with
          | Some p -> p
          | None -> failwith "bench: sql shape recorded no profile"
        in
        residue := !residue + abs (sql_profile_residue p);
        let pfx = "sqldb." ^ name ^ "." in
        put (Baseline.v ~tol:0.0 (pfx ^ "rows") (List.length r.Db.rows));
        put (Baseline.v ~tol:0.0 (pfx ^ "total_work") p.Db.pr_total_work);
        put (Baseline.v ~tol:0.0 (pfx ^ "overhead_work") p.Db.pr_overhead_work);
        List.iter
          (fun (o : Db.opstat) ->
            let opfx = Printf.sprintf "%sop.%s." pfx o.Db.os_name in
            put (Baseline.v ~tol:0.0 (opfx ^ "work") o.Db.os_work);
            put (Baseline.v ~tol:0.0 (opfx ^ "rows_out") o.Db.os_rows_out))
          p.Db.pr_ops)
      sql_shapes;
    (* the conservation law: zero residue, gated exactly *)
    put (Baseline.v ~tol:0.0 "sqldb.op.residue_ns" !residue);
    let obs = Bench_db.obs t in
    List.iter
      (fun k ->
        put
          (Baseline.v ~tol:0.0 ("sqldb.plan." ^ k)
             (Obs.value obs ("sqldb.plan." ^ k))))
      [ "full_scan"; "rowid_range"; "index_range"; "fallback" ];
    let snap = put_ledger "sql" t.Bench_db.machine in
    Bench_db.close t;
    snap
  in
  (* -- protected-FS breakdown, stock vs optimised (§V-F) -- *)
  let () =
    List.iter
      (fun variant ->
        let b =
          Microbench.ipfs_breakdown ~records:800 ~blob_bytes:256 ~samples:500
            ~wasm_factor:baseline_wasm_factor variant
        in
        let name =
          match variant with
          | Twine_ipfs.Protected_fs.Stock -> "stock"
          | Twine_ipfs.Protected_fs.Optimized -> "optimized"
        in
        let pfx = "ipfs." ^ name ^ "." in
        put (Baseline.v ~tol:0.02 (pfx ^ "total_ns") b.Microbench.total_ns);
        put (Baseline.v ~tol:0.02 (pfx ^ "memset_ns") b.Microbench.memset_ns);
        put (Baseline.v ~tol:0.02 (pfx ^ "ocall_ns") b.Microbench.ocall_ns);
        put (Baseline.v ~tol:0.02 (pfx ^ "read_ns") b.Microbench.read_ns);
        put (Baseline.v ~tol:0.02 (pfx ^ "sqlite_ns") b.Microbench.sqlite_ns))
      [ Twine_ipfs.Protected_fs.Stock; Twine_ipfs.Protected_fs.Optimized ]
  in
  (* -- PolyBench wall-clock spot checks (informational only) -- *)
  let () =
    List.iter
      (fun k ->
        let n = Twine_polybench.Suite.run_native k in
        let w = Twine_polybench.Suite.run_wasm ~engine:`Aot k in
        let pfx = "polybench." ^ k.Twine_polybench.Kernel_dsl.name ^ "." in
        put (Baseline.v (pfx ^ "native_wall_ns") n.Twine_polybench.Suite.wall_ns);
        put (Baseline.v (pfx ^ "aot_wall_ns") w.Twine_polybench.Suite.wall_ns);
        (* exact: instruction totals are deterministic and engine-equal *)
        put (Baseline.v ~tol:0.0 (pfx ^ "fuel") w.Twine_polybench.Suite.fuel))
      (List.filter
         (fun k ->
           List.mem k.Twine_polybench.Kernel_dsl.name [ "atax"; "trisolv" ])
         (Twine_polybench.Kernels.all ~scale:0.4 ()))
  in
  ( Baseline.create
      ~meta:
        [ ("generator", "bench/main.exe json");
          ("wasm_factor", string_of_float baseline_wasm_factor);
          ("note", "virtual-clock metrics; regenerate with: dune exec bench/main.exe -- json") ]
      (List.rev !metrics),
    [ report_snap; micro_snap; serve_snap; chaos_snap; sql_snap ] )

let default_baseline_file = "BENCH_twine.json"

let load_baseline ~cmd file =
  match
    let ic = open_in file in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s -> (
      match Twine_obs.Baseline.of_string s with
      | Ok b -> b
      | Error msg ->
          Printf.eprintf "bench %s: %s: %s\n" cmd file msg;
          exit 2)
  | exception Sys_error msg ->
      Printf.eprintf "bench %s: %s\n" cmd msg;
      exit 2

(* Rebuild a ledger snapshot for one workload group from the flat
   [ledger.<group>.*] metrics of a committed baseline, so `bench diff`
   can attribute drift without a second JSON artifact. *)
let snapshot_of_baseline group (b : Twine_obs.Baseline.t) =
  let open Twine_obs in
  let pfx = "ledger." ^ group ^ "." in
  let plen = String.length pfx in
  let tail path = String.sub path plen (String.length path - plen) in
  let accounts =
    List.filter_map
      (fun (path, (m : Baseline.metric)) ->
        if
          String.length path > plen
          && String.sub path 0 plen = pfx
          && tail path <> "residue_ns"
          && tail path <> "elapsed_ns"
        then
          Some (tail path, { Ledger.ns = int_of_float m.Baseline.value; events = 0 })
        else None)
      b.Baseline.metrics
  in
  match accounts with
  | [] -> None
  | _ ->
      let num name fallback =
        match List.assoc_opt (pfx ^ name) b.Baseline.metrics with
        | Some (m : Baseline.metric) -> int_of_float m.Baseline.value
        | None -> fallback
      in
      let booked = List.fold_left (fun a (_, e) -> a + e.Ledger.ns) 0 accounts in
      Some
        {
          Ledger.elapsed_ns = num "elapsed_ns" (booked + num "residue_ns" 0);
          booked_ns = booked;
          accounts;
          matrix = [];
        }

let bench_json file =
  let b, _snaps = collect_baseline () in
  let oc = open_out file in
  output_string oc (Twine_obs.Baseline.to_string b);
  output_char oc '\n';
  close_out oc;
  Printf.eprintf "bench: wrote %d metric(s) to %s\n"
    (List.length b.Twine_obs.Baseline.metrics) file

(* `bench diff [BASELINE]`: ranked attribution of where the current
   tree's virtual time moved relative to the committed baseline — by
   account, then by hot guest function within the top accounts. *)
let bench_diff file =
  let baseline = load_baseline ~cmd:"diff" file in
  let _current, snaps = collect_baseline () in
  List.iter
    (fun (group, current) ->
      Printf.printf "\n-- %s workload vs %s --\n" group file;
      match snapshot_of_baseline group baseline with
      | None ->
          Printf.printf
            "no ledger.%s.* metrics in the baseline; regenerate it with `bench json`\n"
            group
      | Some base -> print_string (Twine_obs.Ledger.render_diff ~base ~current ()))
    snaps

let bench_check file =
  let baseline = load_baseline ~cmd:"check" file in
  let current, snaps = collect_baseline () in
  let verdicts = Twine_obs.Baseline.check ~baseline ~current in
  print_string (Twine_obs.Baseline.render verdicts);
  if Twine_obs.Baseline.all_ok verdicts then begin
    Printf.printf "\nbench check: %d metric(s) within tolerance of %s\n"
      (List.length verdicts) file;
    exit 0
  end
  else begin
    let failed = List.filter (fun v -> not v.Twine_obs.Baseline.ok) verdicts in
    Printf.printf "\nbench check: REGRESSION: %d of %d metric(s) out of band:\n"
      (List.length failed) (List.length verdicts);
    List.iter
      (fun v -> Printf.printf "  - %s\n" v.Twine_obs.Baseline.path)
      failed;
    (* Explain each failure from the ledger where we can: a drifted
       metric of the report/micro workloads gets the ranked account
       attribution of that workload's delta. *)
    let group_of path =
      let has pfx =
        String.length path >= String.length pfx
        && String.sub path 0 (String.length pfx) = pfx
      in
      if has "report." || has "ledger.report." then Some "report"
      else if has "micro." || has "ledger.micro." then Some "micro"
      else if has "serve.chaos." || has "ledger.chaos." then Some "chaos"
      else if has "serve." || has "ledger.serve." then Some "serve"
      else if has "sqldb." || has "ledger.sql." then Some "sql"
      else None
    in
    let blamed =
      List.sort_uniq compare
        (List.filter_map (fun v -> group_of v.Twine_obs.Baseline.path) failed)
    in
    let unattributed =
      List.filter (fun v -> group_of v.Twine_obs.Baseline.path = None) failed
    in
    List.iter
      (fun group ->
        match
          (snapshot_of_baseline group baseline, List.assoc_opt group snaps)
        with
        | Some base, Some current ->
            Printf.printf "\nwhere the %s workload's time moved:\n" group;
            print_string (Twine_obs.Ledger.render_diff ~base ~current ())
        | _ ->
            Printf.printf
              "\n(no ledger.%s.* metrics in the baseline to attribute the %s drift)\n"
              group group)
      blamed;
    List.iter
      (fun v ->
        Printf.printf "(no ledger attribution for %s)\n" v.Twine_obs.Baseline.path)
      unattributed;
    exit 1
  end

(* ------------------------------------------------------------------ *)

let () =
  let argv1 = if Array.length Sys.argv > 1 then Some Sys.argv.(1) else None in
  let argv2 = if Array.length Sys.argv > 2 then Some Sys.argv.(2) else None in
  (match argv1 with
  | Some "json" ->
      bench_json (Option.value argv2 ~default:default_baseline_file);
      exit 0
  | Some "check" -> bench_check (Option.value argv2 ~default:default_baseline_file)
  | Some "diff" ->
      bench_diff (Option.value argv2 ~default:default_baseline_file);
      exit 0
  | _ -> ());
  let only = argv1 in
  let want name = match only with None -> true | Some o -> o = name in
  Printf.printf "TWINE reproduction bench harness (simulated SGX; see DESIGN.md)\n";
  if want "fig3" then audited "fig3" fig3;
  if want "fig4" then audited "fig4" fig4;
  if want "fig5" || want "table2" then
    audited "fig5/table2" (fun () ->
        let series = fig5_series () in
        if want "fig5" then begin
          print_fig5 series `Insert
            "Fig 5a: insertion time vs database size (ms, simulated)";
          print_fig5 series `Seq
            "Fig 5b: sequential-read time vs database size (ms, simulated)";
          print_fig5 series `Rand
            (Printf.sprintf
               "Fig 5c: random-read time (one read per record, cap %d) vs size (ms, simulated)"
               fig5_rand_reads)
        end;
        table2 series);
  if want "fig6" then audited "fig6" fig6;
  if want "fig7" then audited "fig7" fig7;
  if want "table3" then audited "table3" table3;
  if want "ablate" then audited "ablate" ablate;
  if want "micro" then bechamel_suite ();
  if want "report" then audited "report" report;
  if want "profile" then audited "profile" profile_section;
  if want "crash" then audited "crash" crash_section;
  if want "serve" then audited "serve" serve_section;
  if want "chaos" then audited "chaos" chaos_section;
  if want "sql" then audited "sql" sql_section;
  Printf.printf "\ndone.\n"
