(* twine — command-line front end.

   twine run app.wat            run a WASI command inside the simulated enclave
   twine run --no-sgx app.wat   run it outside (plain WAMR-style host)
   twine validate app.wat       type-check a module
   twine wat2wasm app.wat       assemble text format to binary
   twine inspect app.wasm       print module structure *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_module path =
  let content = read_file path in
  if Filename.check_suffix path ".wasm"
     || (String.length content >= 4 && String.sub content 0 4 = "\x00asm")
  then Twine_wasm.Binary.decode content
  else Twine_wasm.Wat.parse content

let path_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"MODULE" ~doc:"Wasm module (.wat or .wasm)")

(* --- run --- *)

let run_cmd =
  let no_sgx =
    Arg.(value & flag & info [ "no-sgx" ] ~doc:"Run outside the simulated enclave (plain WASI host).")
  in
  let interp =
    Arg.(value & flag & info [ "interpreter" ] ~doc:"Use the interpreter instead of AoT compilation.")
  in
  let strict =
    Arg.(value & flag & info [ "strict" ] ~doc:"Disable the untrusted POSIX fallback inside the enclave.")
  in
  let dir =
    Arg.(value & opt (some string) None & info [ "dir" ] ~docv:"DIR"
           ~doc:"Host directory backing the (protected) file system.")
  in
  let args =
    Arg.(value & opt_all string [] & info [ "arg" ] ~docv:"ARG" ~doc:"Argument passed to the guest.")
  in
  let fuel_limit =
    Arg.(value & opt (some int) None & info [ "fuel-limit" ] ~docv:"N"
           ~doc:"Trap the guest deterministically after executing $(docv) \
                 instructions (same trap point in both engines).")
  in
  let stats = Arg.(value & flag & info [ "stats" ] ~doc:"Print enclave statistics after the run.") in
  let profile =
    Arg.(value & opt (some string) None & info [ "profile" ] ~docv:"FILE"
           ~doc:"Write the telemetry report as JSON to $(docv) after the run.")
  in
  let trace =
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
           ~doc:"Record a flight-recorder trace of the run and write it as \
                 Chrome trace-event JSON (loadable in ui.perfetto.dev) to $(docv).")
  in
  let profile_wasm =
    Arg.(value & opt ~vopt:(Some "profile.folded") (some string) None
         & info [ "profile-wasm" ] ~docv:"FILE"
             ~doc:"Profile the guest: per-function instruction and \
                   virtual-cycle attribution on a shadow call stack. Prints \
                   a hot-function table to stderr and writes folded stacks \
                   (flamegraph.pl / speedscope input) to $(docv) (default \
                   profile.folded). Combine with $(b,--trace) to see guest \
                   frames in Perfetto.")
  in
  let ledger_out =
    Arg.(value & opt (some string) None
         & info [ "ledger" ] ~docv:"FILE"
             ~doc:"Write the run's cycle ledger (per-account booked time \
                   with the conservation audit totals) as JSON to $(docv). \
                   Two such files feed $(b,twine diff).")
  in
  let run path no_sgx interp strict dir args fuel_limit stats profile trace
      profile_wasm ledger_out =
    let module_ = load_module path in
    if no_sgx then begin
      let preopens =
        match dir with
        | Some d -> [ (".", Twine_wasi.Vfs.os d) ]
        | None -> [ (".", Twine_wasi.Vfs.memory ()) ]
      in
      let ctx = Twine_wasi.Api.create ~args:(Filename.basename path :: args) ~preopens () in
      exit (Twine_wasi.Api.run_command ctx module_)
    end
    else begin
      let machine = Twine_sgx.Machine.create () in
      let config =
        {
          Twine.Runtime.default_config with
          engine = (if interp then Twine.Runtime.Interpreter else Twine.Runtime.Aot);
          strict_wasi = strict;
        }
      in
      let backing =
        match dir with
        | Some d -> Twine_ipfs.Backing.directory d
        | None -> Twine_ipfs.Backing.memory ()
      in
      let tracer =
        match trace with
        | Some _ -> Some (Twine_sgx.Machine.attach_tracer machine)
        | None -> None
      in
      let prof =
        match profile_wasm with
        | Some _ ->
            Some
              (Twine_obs.Profile.create ?tracer
                 ~now:(fun () -> Twine_sgx.Machine.now_ns machine)
                 ())
        | None -> None
      in
      let rt = Twine.Runtime.create ~config ~backing machine in
      Twine.Runtime.deploy rt module_;
      let write_wasm_profile () =
        match (profile_wasm, prof) with
        | Some file, Some p -> (
            try
              Twine_obs.Trace_export.folded_to_file p file;
              prerr_string (Twine_obs.Report.profile_table p);
              Printf.eprintf "twine: wasm profile: %d instruction(s) over %d function(s); \
                              folded stacks in %s\n"
                (Twine_obs.Profile.total_fuel p)
                (List.length (Twine_obs.Profile.functions p))
                file
            with Sys_error msg ->
              Printf.eprintf "twine: cannot write wasm profile: %s\n" msg;
              exit 2)
        | _ -> ()
      in
      let r =
        try
          Twine.Runtime.run ~args:(Filename.basename path :: args) ?profile:prof
            ?fuel_limit rt
        with Twine_wasm.Values.Trap _ as e ->
          Printf.eprintf "twine: guest trap: %s\n" (Twine_wasm.Interp.trap_message e);
          (* the profile up to the trap point is still valid (the shadow
             stack unwinds on the way out) — write it for post-mortems *)
          write_wasm_profile ();
          exit 134
      in
      print_string r.Twine.Runtime.stdout;
      if stats then begin
        Printf.eprintf "-- twine stats --\n";
        Printf.eprintf "exit code:            %d\n" r.Twine.Runtime.exit_code;
        Printf.eprintf "boundary crossings:   %d\n"
          (Twine_sgx.Enclave.transitions (Twine.Runtime.enclave rt));
        Printf.eprintf "EPC faults:           %d\n"
          (Twine_sgx.Epc.faults machine.Twine_sgx.Machine.epc);
        Printf.eprintf "simulated time:       %.3f ms\n"
          (float_of_int (Twine_sgx.Machine.now_ns machine) /. 1e6);
        prerr_newline ();
        prerr_string
          (Twine_obs.Report.render ?profile:prof
             ~ledger:(Twine_sgx.Machine.ledger machine)
             machine.Twine_sgx.Machine.obs)
      end;
      write_wasm_profile ();
      (match profile with
      | Some file -> (
          try
            let oc = open_out file in
            output_string oc
              (Twine_obs.Report.to_json ?profile:prof machine.Twine_sgx.Machine.obs);
            output_char oc '\n';
            close_out oc
          with Sys_error msg ->
            Printf.eprintf "twine: cannot write profile: %s\n" msg;
            exit 2)
      | None -> ());
      (match ledger_out with
      | Some file -> (
          try
            let oc = open_out file in
            output_string oc
              (Twine_obs.Ledger.to_string
                 (Twine_obs.Ledger.snapshot (Twine_sgx.Machine.ledger machine)));
            output_char oc '\n';
            close_out oc;
            Printf.eprintf "twine: ledger written to %s\n" file
          with Sys_error msg ->
            Printf.eprintf "twine: cannot write ledger: %s\n" msg;
            exit 2)
      | None -> ());
      (match (trace, tracer) with
      | Some file, Some tr -> (
          try
            Twine_obs.Trace_export.to_file ~process_name:"twine-sim" tr file;
            Printf.eprintf "twine: trace: %d event(s) written to %s (%d dropped)\n"
              (Twine_obs.Trace.length tr) file (Twine_obs.Trace.dropped tr)
          with Sys_error msg ->
            Printf.eprintf "twine: cannot write trace: %s\n" msg;
            exit 2)
      | _ -> ());
      exit r.Twine.Runtime.exit_code
    end
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run a WASI command inside the simulated TWINE enclave.")
    Term.(const run $ path_arg $ no_sgx $ interp $ strict $ dir $ args $ fuel_limit
          $ stats $ profile $ trace $ profile_wasm $ ledger_out)

(* --- serve --- *)

let serve_cmd =
  let enclaves =
    Arg.(value & opt int 8 & info [ "enclaves" ] ~docv:"N"
           ~doc:"Fleet size: enclaves sharing one machine (and one EPC).")
  in
  let requests =
    Arg.(value & opt int 100_000 & info [ "requests" ] ~docv:"N"
           ~doc:"Synthetic client requests to replay.")
  in
  let batch =
    Arg.(value & opt int 16 & info [ "batch" ] ~docv:"N"
           ~doc:"Max requests coalesced behind one ECALL (1 = unbatched).")
  in
  let seed =
    Arg.(value & opt string "twine-serve" & info [ "seed" ] ~docv:"SEED"
           ~doc:"Workload seed; the same seed replays byte-identically.")
  in
  let epc_kib =
    Arg.(value & opt (some int) None & info [ "epc-kib" ] ~docv:"KIB"
           ~doc:"Override the shared EPC size (KiB) to move the paging cliff.")
  in
  let trace =
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
           ~doc:"Record the serving phase in the flight recorder and write \
                 Chrome trace-event JSON (loadable in ui.perfetto.dev) to $(docv).")
  in
  let ledger_out =
    Arg.(value & opt (some string) None & info [ "ledger" ] ~docv:"FILE"
           ~doc:"Write the serving-phase cycle ledger as JSON to $(docv); \
                 two such files feed $(b,twine diff) (e.g. batched vs not).")
  in
  let blame =
    Arg.(value & flag & info [ "blame" ]
           ~doc:"Print the tail-latency blame report: the slowest requests \
                 with their exact per-request cycle slices, the dominant \
                 component of each, the p99 dominant-account census and \
                 cross-enclave EPC interference attribution.")
  in
  let top =
    Arg.(value & opt int 10 & info [ "top" ] ~docv:"N"
           ~doc:"How many tail requests $(b,--blame) ranks (default 10).")
  in
  let timeline =
    Arg.(value & opt (some string) None & info [ "timeline" ] ~docv:"FILE"
           ~doc:"Like $(b,--trace), but with per-enclave request tracks and \
                 the sampler's counter series (queue depth, EPC residency, \
                 completed requests) named for Perfetto's track view.")
  in
  let mean_gap_ns =
    Arg.(value & opt (some int) None & info [ "mean-gap-ns" ] ~docv:"NS"
           ~doc:"Mean client inter-arrival gap in virtual nanoseconds \
                 (open loop; 0 = every request arrives at time zero). \
                 Default 4000.")
  in
  let mix =
    Arg.(value & opt (some string) None & info [ "mix" ] ~docv:"KV:SQL:RANGE"
           ~doc:"Relative request-kind weights as three colon-separated \
                 non-negative integers: key-value gets, SQL point queries, \
                 SQL range slices (default 6:3:1).")
  in
  let stream =
    Arg.(value & flag & info [ "stream" ]
           ~doc:"Streaming mode: drop per-request retention and fold every \
                 completion into the windowed series and mergeable latency \
                 sketch as it happens — O(windows + sketch) memory, so \
                 10-100x request counts replay byte-identically. p50/p99 \
                 become sketch estimates (within 1/128 relative error); \
                 the per-request views ($(b,--blame)) are unavailable.")
  in
  let slo =
    Arg.(value & opt (some string) None & info [ "slo" ] ~docv:"SPEC"
           ~doc:"Latency objective to evaluate over the windowed series, \
                 e.g. $(b,p99<2ms\\@50ms,budget=0.1%). Optional \
                 $(b,,fast=14.4x1) / $(b,,slow=6x5) override the burn-rate \
                 alert thresholds (multiplier x windows). Exit code 3 when \
                 the objective is violated over the whole run.")
  in
  let slo_out =
    Arg.(value & opt (some string) None & info [ "slo-out" ] ~docv:"FILE"
           ~doc:"Write the twine-slo/v1 artifact (spec, verdict, burn-rate \
                 alerts, fleet latency sketch, every track's windows) as \
                 canonical JSON to $(docv). Byte-identical across replays \
                 and across retained vs $(b,--stream) runs.")
  in
  let chaos =
    Arg.(value & opt (some string) None & info [ "chaos" ] ~docv:"SPEC"
           ~doc:"Arm a seeded fault schedule for the serving phase, e.g. \
                 $(b,enclave.ecall=crash\\@500) (crash the 500th entry) or \
                 $(b,seed=c1;enclave.ecall=fail%0.01x5[10ms..80ms]) \
                 (transient entry failures at 1% in a virtual-time \
                 window, at most 5). ;-separated rules; actions crash, \
                 fail, drop, corrupt, torn:F, delay:DUR. Deterministic: \
                 the same spec and seed replay byte-identically.")
  in
  let deadline_ns =
    Arg.(value & opt int 0 & info [ "deadline-ns" ] ~docv:"NS"
           ~doc:"Client deadline: a request still unserved $(docv) virtual \
                 ns after arrival completes as timed out (0 = off).")
  in
  let retries =
    Arg.(value & opt (some int) None & info [ "retries" ] ~docv:"N"
           ~doc:"Requeues allowed per request after enclave faults before \
                 it fails permanently (default 2).")
  in
  let backoff =
    Arg.(value & opt (some int) None & info [ "backoff" ] ~docv:"NS"
           ~doc:"Retry backoff base in virtual ns: requeue k waits \
                 base*2^(k-1) plus deterministic jitter, capped at 50x \
                 base (default 100000).")
  in
  let shed_depth =
    Arg.(value & opt int 0 & info [ "shed-depth" ] ~docv:"N"
           ~doc:"Admission control: shed an arrival whose enclave queue \
                 already holds $(docv) live requests (0 = off).")
  in
  let hedge =
    Arg.(value & flag & info [ "hedge" ]
           ~doc:"Hedged retries: requeue onto the least-loaded enclave \
                 instead of the request's home queue.")
  in
  let sql_stats =
    Arg.(value & opt (some string) None & info [ "sql-stats" ] ~docv:"FILE"
           ~doc:"Write the twine-sqlstats/v1 query-stats artifact (fleet \
                 and per-enclave registries keyed by normalized statement \
                 fingerprint: counts, rows, pager I/O, cycle totals and \
                 p50/p99 latency sketches) as canonical JSON to $(docv). \
                 Byte-identical across replays and across retained vs \
                 $(b,--stream) runs.")
  in
  let run enclaves requests batch seed epc_kib trace ledger_out blame top
      timeline mean_gap_ns mix stream slo slo_out chaos deadline_ns retries
      backoff shed_depth hedge sql_stats =
    if enclaves <= 0 || batch <= 0 || requests < 0 then begin
      prerr_endline "twine serve: --enclaves and --batch must be positive, --requests non-negative";
      exit 2
    end;
    let mix =
      match mix with
      | None -> Twine_serve.Serve.default_config.Twine_serve.Serve.mix
      | Some s -> (
          match String.split_on_char ':' s with
          | [ a; b; c ] -> (
              match (int_of_string_opt a, int_of_string_opt b, int_of_string_opt c) with
              | Some kv_get, Some sql_point, Some sql_range
                when kv_get >= 0 && sql_point >= 0 && sql_range >= 0
                     && kv_get + sql_point + sql_range > 0 ->
                  { Twine_serve.Workload.kv_get; sql_point; sql_range }
              | _ ->
                  Printf.eprintf
                    "twine serve: --mix %s: weights must be non-negative \
                     integers, not all zero\n" s;
                  exit 2)
          | _ ->
              Printf.eprintf
                "twine serve: --mix %s: expected KV:SQL:RANGE (e.g. 6:3:1)\n" s;
              exit 2)
    in
    let slo =
      match slo with
      | None -> None
      | Some spec -> (
          match Twine_obs.Slo.parse spec with
          | Ok s -> Some s
          | Error msg ->
              Printf.eprintf "twine serve: --slo %s: %s\n" spec msg;
              exit 2)
    in
    let chaos =
      match chaos with
      | None -> None
      | Some spec -> (
          match Twine_sim.Chaos.parse spec with
          | Ok s -> Some s
          | Error msg ->
              Printf.eprintf "twine serve: --chaos %s: %s\n" spec msg;
              exit 2)
    in
    if deadline_ns < 0 then begin
      prerr_endline "twine serve: --deadline-ns must be non-negative";
      exit 2
    end;
    if shed_depth < 0 then begin
      prerr_endline "twine serve: --shed-depth must be non-negative";
      exit 2
    end;
    (match retries with
    | Some r when r < 0 ->
        prerr_endline "twine serve: --retries must be non-negative";
        exit 2
    | _ -> ());
    (match backoff with
    | Some b when b < 0 ->
        prerr_endline "twine serve: --backoff must be non-negative";
        exit 2
    | _ -> ());
    let cfg =
      {
        Twine_serve.Serve.default_config with
        Twine_serve.Serve.enclaves;
        requests;
        batch;
        seed;
        epc_bytes =
          (match epc_kib with
          | Some k -> k * 1024
          | None -> Twine_serve.Serve.default_config.Twine_serve.Serve.epc_bytes);
        mean_gap_ns =
          (match mean_gap_ns with
          | Some g when g >= 0 -> g
          | Some g ->
              Printf.eprintf "twine serve: --mean-gap-ns %d: must be non-negative\n" g;
              exit 2
          | None -> Twine_serve.Serve.default_config.Twine_serve.Serve.mean_gap_ns);
        mix;
        retain_requests = not stream;
        slo;
        chaos;
        deadline_ns;
        retries =
          (match retries with
          | Some r -> r
          | None -> Twine_serve.Serve.default_config.Twine_serve.Serve.retries);
        backoff_ns =
          (match backoff with
          | Some b -> b
          | None ->
              Twine_serve.Serve.default_config.Twine_serve.Serve.backoff_ns);
        backoff_cap_ns =
          (match backoff with
          | Some b -> b * 50
          | None ->
              Twine_serve.Serve.default_config.Twine_serve.Serve.backoff_cap_ns);
        shed_depth;
        hedge;
      }
    in
    if top <= 0 then begin
      prerr_endline "twine serve: --top must be positive";
      exit 2
    end;
    let tracer = ref None in
    let prepare m =
      if trace <> None || timeline <> None then
        tracer := Some (Twine_sgx.Machine.attach_tracer m)
    in
    let stats = Twine_serve.Serve.run ~prepare cfg in
    print_string (Twine_serve.Serve.render stats);
    if blame then begin
      match Twine_serve.Serve.render_blame ~top stats with
      | s -> print_string s
      | exception Invalid_argument msg ->
          Printf.eprintf "twine serve: %s\n" msg;
          exit 2
    end;
    if not (Twine_obs.Ledger.balanced (Twine_sgx.Machine.ledger stats.Twine_serve.Serve.machine))
    then begin
      prerr_endline "twine serve: ledger conservation audit FAILED";
      exit 1
    end;
    if stats.Twine_serve.Serve.attribution_residue_ns <> 0 then begin
      Printf.eprintf
        "twine serve: per-request attribution audit FAILED (residue %d ns)\n"
        stats.Twine_serve.Serve.attribution_residue_ns;
      exit 1
    end;
    (match ledger_out with
    | Some file -> (
        try
          let oc = open_out file in
          output_string oc (Twine_obs.Ledger.to_string stats.Twine_serve.Serve.ledger);
          output_char oc '\n';
          close_out oc;
          Printf.eprintf "twine serve: ledger written to %s\n" file
        with Sys_error msg ->
          Printf.eprintf "twine serve: cannot write ledger: %s\n" msg;
          exit 2)
    | None -> ());
    let write_trace file threads =
      match !tracer with
      | Some tr -> (
          try
            Twine_obs.Trace_export.to_file ~process_name:"twine-serve" ?threads
              tr file;
            Printf.eprintf
              "twine serve: trace: %d event(s) written to %s (%d dropped, \
               high water %d)\n"
              (Twine_obs.Trace.length tr) file (Twine_obs.Trace.dropped tr)
              (Twine_obs.Trace.high_water tr)
          with Sys_error msg ->
            Printf.eprintf "twine serve: cannot write trace: %s\n" msg;
            exit 2)
      | None -> ()
    in
    (match trace with Some file -> write_trace file None | None -> ());
    (match timeline with
    | Some file -> write_trace file (Some (Twine_serve.Serve.threads stats))
    | None -> ());
    (match slo_out with
    | Some file -> (
        try
          let oc = open_out file in
          output_string oc (Twine_serve.Serve.render_slo stats);
          close_out oc;
          Printf.eprintf "twine serve: %s artifact written to %s\n"
            Twine_serve.Serve.slo_schema file
        with Sys_error msg ->
          Printf.eprintf "twine serve: cannot write slo artifact: %s\n" msg;
          exit 2)
    | None -> ());
    (match sql_stats with
    | Some file -> (
        try
          let oc = open_out file in
          output_string oc (Twine_serve.Serve.render_sqlstats stats);
          close_out oc;
          Printf.eprintf "twine serve: %s artifact written to %s\n"
            Twine_serve.Serve.sqlstats_schema file
        with Sys_error msg ->
          Printf.eprintf "twine serve: cannot write sql-stats artifact: %s\n" msg;
          exit 2)
    | None -> ());
    (match stats.Twine_serve.Serve.slo with
    | Some (spec, ev) when ev.Twine_obs.Slo.ev_violated ->
        Printf.eprintf "twine serve: SLO VIOLATED: %s (%d/%d over threshold)\n"
          (Twine_obs.Slo.render spec) ev.Twine_obs.Slo.ev_overs
          ev.Twine_obs.Slo.ev_total;
        exit 3
    | _ -> ());
    exit 0
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Replay a seeded open-loop workload against a fleet of TWINE \
             enclaves sharing one simulated machine, coalescing queued \
             requests behind single ECALLs. Prints throughput, p50/p99 \
             latency and shared-EPC interference; $(b,--blame) adds \
             per-request tail attribution; $(b,--slo) evaluates a latency \
             objective with burn-rate alerts over 50 ms virtual windows; \
             $(b,--stream) drops per-request retention for bounded-memory \
             runs; $(b,--chaos) arms a seeded fault schedule and the fleet \
             survives it — crashed enclaves are destroyed and relaunched \
             with their durable state recovered, in-flight batches retry \
             with capped exponential backoff ($(b,--retries), \
             $(b,--backoff), $(b,--hedge)), $(b,--deadline-ns) expires \
             waiting clients and $(b,--shed-depth) sheds load at \
             admission. Exit codes: 0 success, 1 conservation-audit or \
             attribution-residue failure, 2 bad arguments or I/O error \
             (including $(b,--blame) with $(b,--stream)), 3 SLO violated.")
    Term.(const run $ enclaves $ requests $ batch $ seed $ epc_kib $ trace
          $ ledger_out $ blame $ top $ timeline $ mean_gap_ns $ mix $ stream
          $ slo $ slo_out $ chaos $ deadline_ns $ retries $ backoff
          $ shed_depth $ hedge $ sql_stats)

(* --- sql --- *)

let sql_cmd =
  let stmts =
    Arg.(non_empty & pos_all string []
         & info [] ~docv:"SQL"
             ~doc:"SQL to execute, in order, against one fresh in-memory \
                   database. Each argument may hold several ;-separated \
                   statements; earlier arguments typically set up schema \
                   and data for the last one.")
  in
  let explain =
    Arg.(value & flag & info [ "explain" ]
           ~doc:"Wrap the last SQL argument in $(b,EXPLAIN): print the \
                 planned operator tree with estimated rows (from ANALYZE \
                 statistics when present) without executing it.")
  in
  let explain_analyze =
    Arg.(value & flag & info [ "explain-analyze" ]
           ~doc:"Wrap the last SQL argument in $(b,EXPLAIN ANALYZE): \
                 execute it and print the operator tree with estimated \
                 rows next to actual rows, loop counts, pager I/O and \
                 attributed virtual cycles.")
  in
  let ns_per_work =
    Arg.(value & opt float 60. & info [ "ns-per-work" ] ~docv:"NS"
           ~doc:"Virtual nanoseconds per work unit used to render the \
                 $(b,cycles) column of $(b,--explain-analyze) (default \
                 60, the serving fleet's rate; 0 hides the column).")
  in
  let run stmts explain explain_analyze ns_per_work =
    if explain && explain_analyze then begin
      prerr_endline "twine sql: --explain and --explain-analyze are exclusive";
      exit 2
    end;
    let db = Twine_sqldb.Db.open_db ":memory:" in
    Twine_sqldb.Db.set_ns_per_work db ns_per_work;
    let last = List.length stmts - 1 in
    let result =
      try
        List.fold_left
          (fun (i, _) sql ->
            let sql =
              if i = last && explain then "EXPLAIN " ^ sql
              else if i = last && explain_analyze then "EXPLAIN ANALYZE " ^ sql
              else sql
            in
            (i + 1, Some (Twine_sqldb.Db.exec db sql)))
          (0, None) stmts
        |> snd
      with
      | Twine_sqldb.Db.Sql_error msg ->
          Printf.eprintf "twine sql: SQL error: %s\n" msg;
          exit 2
      | Twine_sqldb.Parser.Error msg ->
          Printf.eprintf "twine sql: parse error: %s\n" msg;
          exit 2
      | Twine_sqldb.Token.Error msg ->
          Printf.eprintf "twine sql: lex error: %s\n" msg;
          exit 2
    in
    (match result with
    | Some r ->
        if r.Twine_sqldb.Db.columns <> [] then
          print_endline (String.concat " | " r.Twine_sqldb.Db.columns);
        List.iter
          (fun row ->
            print_endline
              (String.concat " | " (List.map Twine_sqldb.Value.to_string row)))
          r.Twine_sqldb.Db.rows;
        if r.Twine_sqldb.Db.rows = [] && r.Twine_sqldb.Db.affected > 0 then
          Printf.printf "(%d row(s) affected)\n" r.Twine_sqldb.Db.affected
    | None -> ());
    (* Zero-residue conservation audit over every executed statement:
       each statement's booked work must equal the sum of its operator
       self-work plus profiling overhead, exactly. *)
    let residue =
      List.fold_left
        (fun acc (p : Twine_sqldb.Db.profile) ->
          let ops =
            List.fold_left
              (fun a (o : Twine_sqldb.Db.opstat) -> a + o.Twine_sqldb.Db.os_work)
              0 p.Twine_sqldb.Db.pr_ops
          in
          acc + abs (p.Twine_sqldb.Db.pr_total_work - ops
                     - p.Twine_sqldb.Db.pr_overhead_work))
        0
        (Twine_sqldb.Db.profiles db)
    in
    Twine_sqldb.Db.close db;
    if residue <> 0 then begin
      Printf.eprintf
        "twine sql: operator attribution audit FAILED (residue %d work units)\n"
        residue;
      exit 1
    end;
    exit 0
  in
  Cmd.v
    (Cmd.info "sql"
       ~doc:"Execute SQL against a fresh in-memory TWINE database and print \
             the last result. $(b,--explain) prints the planned operator \
             tree with row estimates; $(b,--explain-analyze) executes and \
             adds actual rows, loops, pager I/O and attributed virtual \
             cycles per operator. Exit codes: 0 success, 1 operator \
             cycle-attribution residue (conservation audit failed), 2 \
             parse/execution error or bad arguments.")
    Term.(const run $ stmts $ explain $ explain_analyze $ ns_per_work)

(* --- diff --- *)

let diff_cmd =
  let file n =
    Arg.(required & pos n (some file) None
         & info [] ~docv:(if n = 0 then "BASE" else "CURRENT")
             ~doc:"Ledger JSON written by $(b,twine run --ledger).")
  in
  let run base_path cur_path =
    let load path =
      match Twine_obs.Ledger.of_string (read_file path) with
      | Ok s -> s
      | Error msg ->
          Printf.eprintf "twine diff: %s: %s\n" path msg;
          exit 2
      | exception Sys_error msg ->
          Printf.eprintf "twine diff: %s\n" msg;
          exit 2
    in
    let base = load base_path and current = load cur_path in
    print_string (Twine_obs.Ledger.render_diff ~base ~current ())
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:"Attribute the runtime difference between two runs: ranked \
             per-account deltas of their cycle ledgers, with the hot guest \
             functions inside the top accounts when the runs were profiled.")
    Term.(const run $ file 0 $ file 1)

(* --- validate --- *)

let validate_cmd =
  let run path =
    match Twine_wasm.Validate.check_module (load_module path) with
    | () ->
        print_endline "module is valid";
        exit 0
    | exception Twine_wasm.Validate.Invalid msg ->
        Printf.eprintf "invalid: %s\n" msg;
        exit 1
  in
  Cmd.v (Cmd.info "validate" ~doc:"Type-check a Wasm module.") Term.(const run $ path_arg)

(* --- wat2wasm --- *)

let wat2wasm_cmd =
  let out =
    Arg.(value & opt (some string) None & info [ "o" ] ~docv:"OUT" ~doc:"Output path.")
  in
  let run path out =
    let m = load_module path in
    Twine_wasm.Validate.check_module m;
    let bin = Twine_wasm.Binary.encode m in
    let out =
      match out with Some o -> o | None -> Filename.remove_extension path ^ ".wasm"
    in
    let oc = open_out_bin out in
    output_string oc bin;
    close_out oc;
    Printf.printf "wrote %s (%d bytes)\n" out (String.length bin)
  in
  Cmd.v
    (Cmd.info "wat2wasm" ~doc:"Assemble WebAssembly text format to binary.")
    Term.(const run $ path_arg $ out)

(* --- inspect --- *)

let inspect_cmd =
  let run path =
    let m = load_module path in
    let open Twine_wasm.Ast in
    Printf.printf "types:    %d\n" (Array.length m.types);
    Printf.printf "imports:  %d\n" (List.length m.imports);
    List.iter
      (fun im ->
        Printf.printf "  %s.%s : %s\n" im.imp_module im.imp_name
          (match im.imp_desc with
          | Import_func ti -> Twine_wasm.Types.string_of_functype m.types.(ti)
          | Import_memory _ -> "memory"
          | Import_table _ -> "table"
          | Import_global _ -> "global"))
      m.imports;
    Printf.printf "functions: %d\n" (Array.length m.funcs);
    Printf.printf "memory:   %s\n"
      (match m.memories with
      | Some l ->
          Printf.sprintf "%d page(s)%s" l.min
            (match l.max with Some mx -> Printf.sprintf " (max %d)" mx | None -> "")
      | None -> "none");
    Printf.printf "globals:  %d\n" (Array.length m.globals);
    Printf.printf "exports:  %d\n" (List.length m.exports);
    List.iter
      (fun e ->
        Printf.printf "  %s : %s\n" e.exp_name
          (match e.exp_desc with
          | Export_func i -> "func #" ^ string_of_int i
          | Export_memory _ -> "memory"
          | Export_table _ -> "table"
          | Export_global i -> "global #" ^ string_of_int i))
      m.exports;
    Printf.printf "valid:    %b\n" (Twine_wasm.Validate.is_valid m)
  in
  Cmd.v (Cmd.info "inspect" ~doc:"Print module structure.") Term.(const run $ path_arg)

let () =
  let info =
    Cmd.info "twine" ~version:"1.0.0"
      ~doc:"A trusted WebAssembly runtime for (simulated) Intel SGX enclaves."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ run_cmd; serve_cmd; sql_cmd; diff_cmd; validate_cmd; wat2wasm_cmd;
            inspect_cmd ]))
