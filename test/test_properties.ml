(* Cross-module property tests: model-based checking of the storage
   engine, crash-recovery injection, cache-size invariance of the
   protected file system, and random-program equivalence of the two Wasm
   engines. These target the invariants the paper's evaluation rests on:
   whatever the cost model does, results must not change. *)

open Twine_sqldb

let qc = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* B-tree vs Map: random interleavings of insert/replace/delete/range  *)
(* ------------------------------------------------------------------ *)

module I64Map = Map.Make (Int64)

let prop_btree_model =
  let op_gen =
    QCheck.Gen.(
      frequency
        [ (5, map2 (fun k v -> `Insert (Int64.of_int k, Printf.sprintf "v%d" v))
                 (int_range 0 400) small_nat);
          (2, map (fun k -> `Delete (Int64.of_int k)) (int_range 0 400));
          (2, map (fun k -> `Lookup (Int64.of_int k)) (int_range 0 400));
          (1, map2 (fun a b -> `Range (Int64.of_int (min a b), Int64.of_int (max a b)))
                 (int_range 0 400) (int_range 0 400)) ])
  in
  QCheck.Test.make ~name:"btree matches Map under random ops" ~count:60
    (QCheck.make QCheck.Gen.(list_size (int_range 1 120) op_gen))
    (fun ops ->
      let vfs = Svfs.memory () in
      let p = Pager.create_or_open vfs ~cache_pages:16 "m" in
      Pager.begin_txn p;
      let root = Btree.create p Btree.Table in
      let model = ref I64Map.empty in
      let ok = ref true in
      List.iter
        (fun op ->
          match op with
          | `Insert (k, v) ->
              Btree.insert_table p ~root ~rowid:k v;
              model := I64Map.add k v !model
          | `Delete k ->
              let found = Btree.delete_table p ~root k in
              if found <> I64Map.mem k !model then ok := false;
              model := I64Map.remove k !model
          | `Lookup k ->
              if Btree.lookup_table p ~root k <> I64Map.find_opt k !model then ok := false
          | `Range (lo, hi) ->
              let got = ref [] in
              Btree.iter_table p ~root ~min:lo ~max:hi (fun r v ->
                  got := (r, v) :: !got;
                  true);
              let expect =
                I64Map.bindings
                  (I64Map.filter
                     (fun k _ -> Int64.compare k lo >= 0 && Int64.compare k hi <= 0)
                     !model)
              in
              if List.rev !got <> expect then ok := false)
        ops;
      (* final full scan agrees *)
      let all = ref [] in
      Btree.iter_table p ~root (fun r v ->
          all := (r, v) :: !all;
          true);
      Pager.commit p;
      Pager.close p;
      !ok && List.rev !all = I64Map.bindings !model)

(* ------------------------------------------------------------------ *)
(* Crash injection: a transaction that dies mid-flight must leave the   *)
(* database exactly as it was before the transaction                    *)
(* ------------------------------------------------------------------ *)

exception Crash

let prop_crash_recovery =
  QCheck.Test.make ~name:"journal recovery after crash at any point" ~count:40
    QCheck.(pair (int_range 1 60) (int_range 0 59))
    (fun (txn_ops, crash_at) ->
      let crash_at = crash_at mod txn_ops in
      let vfs = Svfs.memory () in
      (* committed baseline *)
      let db = Db.open_db ~vfs ~cache_pages:16 "c.db" in
      ignore (Db.exec db "CREATE TABLE t(a INTEGER PRIMARY KEY, b TEXT)");
      ignore (Db.exec db "BEGIN");
      for i = 1 to 50 do
        ignore (Db.exec db (Printf.sprintf "INSERT INTO t VALUES (%d, 'base%d')" i i))
      done;
      ignore (Db.exec db "COMMIT");
      let baseline = Db.query db "SELECT a, b FROM t ORDER BY a" in
      (* a doomed transaction: crash (exception, no rollback call) midway *)
      (try
         ignore (Db.exec db "BEGIN");
         for k = 0 to txn_ops - 1 do
           if k = crash_at then raise Crash;
           ignore
             (Db.exec db
                (Printf.sprintf "INSERT INTO t VALUES (%d, 'doomed%d')" (1000 + k) k));
           if k mod 7 = 0 then
             ignore (Db.exec db (Printf.sprintf "DELETE FROM t WHERE a = %d" (k + 1)));
           if k mod 5 = 0 then
             ignore
               (Db.exec db (Printf.sprintf "UPDATE t SET b = 'mut' WHERE a = %d" (k + 2)))
         done;
         ignore (Db.exec db "COMMIT")
       with Crash -> ());
      (* abandon the handle (simulating process death), reopen from disk:
         the hot journal must roll the half-done transaction back *)
      let db2 = Db.open_db ~vfs ~cache_pages:16 "c.db" in
      let after = Db.query db2 "SELECT a, b FROM t ORDER BY a" in
      Db.close db2;
      after = baseline)

(* Journal recovery must be idempotent: whatever backing-op prefix a
   power loss left behind, running recovery twice is indistinguishable
   from running it once (the second pass finds no hot journal). *)
let prop_recovery_idempotent =
  QCheck.Test.make ~name:"recovery is idempotent at any crash point" ~count:40
    QCheck.(pair (int_range 1 25) (int_range 0 10_000))
    (fun (txn_rows, cut_salt) ->
      let log = Twine_sim.Crashpoint.create () in
      let vfs = Svfs.recording log (Svfs.memory ()) in
      let db = Db.open_db ~vfs ~cache_pages:16 "i.db" in
      ignore (Db.exec db "CREATE TABLE t(a INTEGER PRIMARY KEY, b TEXT)");
      for i = 1 to txn_rows do
        ignore (Db.exec db (Printf.sprintf "INSERT INTO t VALUES (%d, 'r%d')" i i))
      done;
      ignore (Db.exec db "UPDATE t SET b = 'x' WHERE a = 1");
      Db.close db;
      let at = cut_salt mod (Twine_sim.Crashpoint.length log + 1) in
      let target = Svfs.memory () in
      Twine_sim.Crashpoint.replay log ~at
        ~apply:(fun op ->
          match op with
          | Twine_sim.Crashpoint.Write { file; pos; data } ->
              let f = target.Svfs.v_open file in
              f.Svfs.v_write ~pos data;
              f.Svfs.v_close ()
          | Twine_sim.Crashpoint.Truncate { file; size } ->
              let f = target.Svfs.v_open file in
              f.Svfs.v_truncate size;
              f.Svfs.v_close ()
          | Twine_sim.Crashpoint.Delete { file } -> target.Svfs.v_delete file
          | Twine_sim.Crashpoint.Sync _ -> ());
      let db_bytes () =
        let f = target.Svfs.v_open "i.db" in
        let s = f.Svfs.v_read ~pos:0 ~len:(f.Svfs.v_size ()) in
        f.Svfs.v_close ();
        s
      in
      Pager.recover target "i.db";
      let once = db_bytes () in
      let journal_gone = not (target.Svfs.v_exists "i.db-journal") in
      Pager.recover target "i.db";
      journal_gone && db_bytes () = once)

(* ------------------------------------------------------------------ *)
(* SQL engine vs list model for filters and aggregates                  *)
(* ------------------------------------------------------------------ *)

let prop_sql_filter_model =
  QCheck.Test.make ~name:"WHERE/aggregate results match list model" ~count:40
    QCheck.(pair (small_list (pair (int_range (-50) 50) (int_range (-50) 50)))
              (int_range (-40) 40))
    (fun (rows, threshold) ->
      let db = Db.open_db ":memory:" in
      ignore (Db.exec db "CREATE TABLE t(x INTEGER, y INTEGER)");
      List.iter
        (fun (x, y) ->
          ignore (Db.exec db (Printf.sprintf "INSERT INTO t VALUES (%d, %d)" x y)))
        rows;
      let got =
        Db.query db
          (Printf.sprintf
             "SELECT count(*), sum(x) FROM t WHERE x > %d OR y * 2 = x" threshold)
      in
      let matching = List.filter (fun (x, y) -> x > threshold || y * 2 = x) rows in
      let expect_count = List.length matching in
      let expect_sum = List.fold_left (fun a (x, _) -> a + x) 0 matching in
      Db.close db;
      match got with
      | [ [ Value.Int c; s ] ] ->
          Int64.to_int c = expect_count
          && (if expect_count = 0 then s = Value.Null
              else s = Value.Int (Int64.of_int expect_sum))
      | _ -> false)

let prop_sql_order_model =
  QCheck.Test.make ~name:"ORDER BY matches stable sort" ~count:40
    QCheck.(small_list (int_range (-100) 100))
    (fun xs ->
      let db = Db.open_db ":memory:" in
      ignore (Db.exec db "CREATE TABLE t(x INTEGER)");
      List.iter
        (fun x -> ignore (Db.exec db (Printf.sprintf "INSERT INTO t VALUES (%d)" x)))
        xs;
      let got = Db.query db "SELECT x FROM t ORDER BY x DESC" in
      Db.close db;
      got
      = List.map
          (fun x -> [ Value.Int (Int64.of_int x) ])
          (List.sort (fun a b -> compare b a) xs))

(* index plan and full scan must agree *)
let prop_index_consistency =
  QCheck.Test.make ~name:"indexed lookup = full scan" ~count:30
    QCheck.(pair (small_list (int_range 0 30)) (int_range 0 30))
    (fun (values, probe) ->
      let db = Db.open_db ":memory:" in
      ignore (Db.exec db "CREATE TABLE t(id INTEGER PRIMARY KEY, v INTEGER)");
      List.iteri
        (fun i v ->
          ignore (Db.exec db (Printf.sprintf "INSERT INTO t VALUES (%d, %d)" (i + 1) v)))
        values;
      ignore (Db.exec db "CREATE INDEX t_v ON t(v)");
      (* the planner uses the index for the first query; defeat it with an
         arithmetic identity for the second *)
      let indexed =
        Db.query db (Printf.sprintf "SELECT count(*) FROM t WHERE v = %d" probe)
      in
      let scanned =
        Db.query db (Printf.sprintf "SELECT count(*) FROM t WHERE v + 0 = %d" probe)
      in
      Db.close db;
      indexed = scanned)

(* ------------------------------------------------------------------ *)
(* Protected FS: content must be invariant under cache size and variant *)
(* ------------------------------------------------------------------ *)

let pfs_write_read ~cache_nodes ~variant payload chunks =
  let machine = Twine_sgx.Machine.create ~seed:"inv" () in
  let e = Twine_sgx.Enclave.create machine ~code:"x" () in
  let fs =
    Twine_ipfs.Protected_fs.create e (Twine_ipfs.Backing.memory ()) ~variant
      ~cache_nodes ()
  in
  let f = Twine_ipfs.Protected_fs.open_file fs ~mode:`Trunc "f" in
  (* write in the given chunk sizes *)
  let pos = ref 0 in
  List.iter
    (fun c ->
      let c = min c (String.length payload - !pos) in
      if c > 0 then begin
        ignore (Twine_ipfs.Protected_fs.write f (String.sub payload !pos c));
        pos := !pos + c
      end)
    chunks;
  if !pos < String.length payload then
    ignore
      (Twine_ipfs.Protected_fs.write f
         (String.sub payload !pos (String.length payload - !pos)));
  Twine_ipfs.Protected_fs.close f;
  let f2 = Twine_ipfs.Protected_fs.open_file fs ~mode:`Rdonly "f" in
  let buf = Bytes.create (String.length payload) in
  let rec drain off =
    if off < Bytes.length buf then begin
      let n =
        Twine_ipfs.Protected_fs.read f2 buf ~off ~len:(Bytes.length buf - off)
      in
      if n > 0 then drain (off + n)
    end
  in
  drain 0;
  Twine_ipfs.Protected_fs.close f2;
  Bytes.to_string buf

let prop_pfs_cache_invariance =
  QCheck.Test.make ~name:"protected file content invariant under cache size & cipher"
    ~count:20
    QCheck.(pair (string_of_size Gen.(int_range 1 20_000))
              (small_list (int_range 1 5_000)))
    (fun (payload, chunks) ->
      let reference =
        pfs_write_read ~cache_nodes:1 ~variant:Twine_ipfs.Protected_fs.Stock payload
          chunks
      in
      reference = payload
      && pfs_write_read ~cache_nodes:7 ~variant:Twine_ipfs.Protected_fs.Stock payload
           chunks
         = payload
      && pfs_write_read ~cache_nodes:48 ~variant:Twine_ipfs.Protected_fs.Optimized
           payload chunks
         = payload)

(* ------------------------------------------------------------------ *)
(* Wasm: random straight-line programs agree between interp and AoT     *)
(* ------------------------------------------------------------------ *)

let prop_wasm_engines_agree =
  let open Twine_wasm in
  let instr_gen =
    QCheck.Gen.(
      frequency
        [ (4, map (fun n -> [ Ast.I32_const (Int32.of_int n) ]) small_signed_int);
          (3, oneofl
               [ [ Ast.I32_binop Ast.Add ]; [ Ast.I32_binop Ast.Sub ];
                 [ Ast.I32_binop Ast.Mul ]; [ Ast.I32_binop Ast.And ];
                 [ Ast.I32_binop Ast.Or ]; [ Ast.I32_binop Ast.Xor ];
                 [ Ast.I32_binop Ast.Rotl ]; [ Ast.I32_binop Ast.Shr_u ] ]);
          (2, oneofl
               [ [ Ast.I32_unop Ast.Clz ]; [ Ast.I32_unop Ast.Ctz ];
                 [ Ast.I32_unop Ast.Popcnt ]; [ Ast.I32_eqz ] ]);
          (1, oneofl [ [ Ast.I32_relop Ast.Lt_s ]; [ Ast.I32_relop Ast.Ge_u ] ]);
          (1, return [ Ast.Local_get 0 ]);
          (1, return [ Ast.Local_tee 0; Ast.Drop; Ast.Local_get 0 ]) ])
  in
  QCheck.Test.make ~name:"random i32 programs: interp = aot" ~count:150
    (QCheck.make QCheck.Gen.(list_size (int_range 1 30) instr_gen))
    (fun raw ->
      (* keep the stack depth valid: track arity and only keep instrs that
         fit; then reduce the stack to exactly one value *)
      let depth = ref 0 in
      let body =
        List.concat_map
          (fun group ->
            let needs, gives =
              match group with
              | [ Ast.I32_const _ ] | [ Ast.Local_get 0 ] -> (0, 1)
              | [ Ast.I32_binop _ ] | [ Ast.I32_relop _ ] -> (2, 1)
              | [ Ast.I32_unop _ ] | [ Ast.I32_eqz ] -> (1, 1)
              | [ Ast.Local_tee 0; Ast.Drop; Ast.Local_get 0 ] -> (1, 1)
              | _ -> (0, 0)
            in
            if !depth >= needs then begin
              depth := !depth - needs + gives;
              group
            end
            else [])
          raw
      in
      let body =
        if !depth = 0 then body @ [ Ast.I32_const 0l ]
        else
          body
          @ List.concat (List.init (!depth - 1) (fun _ -> [ Ast.I32_binop Ast.Xor ]))
      in
      let b = Builder.create () in
      ignore
        (Builder.add_func b ~name:"f" ~params:[ Types.I32 ] ~results:[ Types.I32 ]
           ~locals:[] body);
      let m = Builder.build b in
      Validate.check_module m;
      let run aot =
        let inst = Interp.instantiate m in
        if aot then ignore (Aot.compile_instance inst);
        Interp.invoke inst "f" [ Values.I32 42l ]
      in
      run false = run true)

(* WAT pretty-print-free roundtrip: binary encode/decode preserves
   behaviour on the polybench suite was covered elsewhere; here check the
   validator accepts everything the engines execute *)
let prop_valid_modules_run =
  QCheck.Test.make ~name:"validated arithmetic never traps on stack errors" ~count:100
    QCheck.(pair small_signed_int small_signed_int)
    (fun (a, b) ->
      let open Twine_wasm in
      let src =
        Printf.sprintf
          {|(module (func (export "f") (result i32)
              (i32.add (i32.mul (i32.const %d) (i32.const 3)) (i32.const %d))))|}
          a b
      in
      let m = Wat.parse src in
      Validate.check_module m;
      match Interp.invoke (Interp.instantiate m) "f" [] with
      | [ Values.I32 v ] -> v = Int32.add (Int32.mul (Int32.of_int a) 3l) (Int32.of_int b)
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* Simulated time must be deterministic: same workload, same clock      *)
(* ------------------------------------------------------------------ *)

let test_simulation_deterministic () =
  let run () =
    let machine = Twine_sgx.Machine.create ~seed:"det" () in
    let r =
      Twine.Microbench.sweep ~machine ~blob_bytes:128 ~rand_reads:50
        ~wasm_factor:2.0 Twine.Bench_db.Twine_rt Twine.Bench_db.File
        ~sizes:[ 300 ] ()
    in
    let p = List.hd r.Twine.Microbench.points in
    (p.Twine.Microbench.insert_ns, p.Twine.Microbench.seq_read_ns,
     p.Twine.Microbench.rand_read_ns)
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "bit-identical simulated times" true (a = b)

let test_fig7_components_sum_sanely () =
  let b =
    Twine.Microbench.ipfs_breakdown ~records:500 ~samples:200 ~cache_pages:16
      Twine_ipfs.Protected_fs.Stock
  in
  let parts =
    b.Twine.Microbench.memset_ns + b.Twine.Microbench.ocall_ns
    + b.Twine.Microbench.read_ns + b.Twine.Microbench.sqlite_ns
  in
  Alcotest.(check bool) "components do not exceed total" true
    (parts <= b.Twine.Microbench.total_ns);
  Alcotest.(check bool) "components cover most of the total" true
    (float_of_int parts >= 0.5 *. float_of_int b.Twine.Microbench.total_ns)

let suite =
  [ ("storage-model", [
      qc prop_btree_model;
      qc prop_crash_recovery;
      qc prop_recovery_idempotent;
      qc prop_sql_filter_model;
      qc prop_sql_order_model;
      qc prop_index_consistency;
    ]);
    ("pfs-invariance", [ qc prop_pfs_cache_invariance ]);
    ("wasm-equivalence", [
      qc prop_wasm_engines_agree;
      qc prop_valid_modules_run;
    ]);
    ("simulation", [
      Alcotest.test_case "deterministic clock" `Quick test_simulation_deterministic;
      Alcotest.test_case "fig7 components sane" `Quick test_fig7_components_sum_sanely;
    ]);
  ]

let () = Alcotest.run "twine_properties" suite
