(* Flight recorder (ring buffer + Chrome-trace export) and the
   benchmark baseline comparator. *)

open Twine_obs

(* --- ring buffer --- *)

let test_ring_wrap () =
  let clock = ref 0 in
  let tr = Trace.create ~capacity:4 ~now:(fun () -> !clock) () in
  for i = 1 to 10 do
    clock := i * 10;
    Trace.instant tr ~cat:"t" ~args:[ ("i", i) ] "ev"
  done;
  Alcotest.(check int) "total" 10 (Trace.total tr);
  Alcotest.(check int) "length capped" 4 (Trace.length tr);
  Alcotest.(check int) "dropped" 6 (Trace.dropped tr);
  let survivors = List.map (fun e -> List.assoc "i" e.Trace.args) (Trace.events tr) in
  Alcotest.(check (list int)) "newest survive, oldest first" [ 7; 8; 9; 10 ] survivors;
  let ts = List.map (fun e -> e.Trace.ts) (Trace.events tr) in
  Alcotest.(check (list int)) "timestamps preserved" [ 70; 80; 90; 100 ] ts

let test_disabled_records_nothing () =
  let tr = Trace.create ~capacity:8 ~enabled:false ~now:(fun () -> 0) () in
  Trace.instant tr ~cat:"t" "ev";
  Trace.begin_span tr ~cat:"t" "span";
  Trace.end_span tr ~cat:"t" "span";
  Trace.counter tr ~cat:"t" "ctr" [ ("v", 1) ];
  Alcotest.(check int) "nothing recorded" 0 (Trace.total tr);
  Alcotest.(check int) "nothing held" 0 (Trace.length tr);
  Trace.set_enabled tr true;
  Trace.instant tr ~cat:"t" "ev";
  Alcotest.(check int) "records after enable" 1 (Trace.total tr)

let test_clear () =
  let tr = Trace.create ~capacity:4 ~now:(fun () -> 7) () in
  Trace.instant tr ~cat:"t" "a";
  Trace.instant tr ~cat:"t" "b";
  Trace.clear tr;
  Alcotest.(check int) "cleared" 0 (Trace.length tr);
  Alcotest.(check int) "total reset" 0 (Trace.total tr)

let test_lost_and_high_water () =
  let tr = Trace.create ~capacity:4 ~now:(fun () -> 0) () in
  Trace.instant tr ~cat:"t" "a";
  Trace.instant tr ~cat:"t" "b";
  Alcotest.(check int) "no loss below capacity" 0 (Trace.lost tr);
  Alcotest.(check int) "high water tracks the fill" 2 (Trace.high_water tr);
  for _ = 1 to 8 do Trace.instant tr ~cat:"t" "x" done;
  Alcotest.(check int) "wrap overwrites count as lost" 6 (Trace.lost tr);
  Alcotest.(check int) "dropped agrees since last clear" 6 (Trace.dropped tr);
  Alcotest.(check int) "high water saturates at capacity" 4 (Trace.high_water tr);
  (* an intentional clear is not data loss: lost and the peak survive,
     dropped restarts *)
  Trace.clear tr;
  Alcotest.(check int) "dropped restarts after clear" 0 (Trace.dropped tr);
  Alcotest.(check int) "lost accumulates across clears" 6 (Trace.lost tr);
  Alcotest.(check int) "high water survives clear" 4 (Trace.high_water tr);
  Trace.instant tr ~cat:"t" "y";
  Alcotest.(check int) "held restarts" 1 (Trace.length tr);
  Alcotest.(check int) "no new loss" 6 (Trace.lost tr)

(* --- Obs integration: spans auto-emit Begin/End --- *)

let test_obs_span_events () =
  let clock = ref 0 in
  let obs = Obs.create ~now:(fun () -> !clock) () in
  let tr = Trace.create ~now:(fun () -> !clock) () in
  Obs.set_tracer obs (Some tr);
  Obs.in_span obs "outer" (fun () ->
      clock := 100;
      Obs.in_span obs "inner" (fun () -> clock := 250);
      clock := 300);
  let evs = Trace.events tr in
  let phases = List.map (fun e -> (e.Trace.phase, e.Trace.name)) evs in
  Alcotest.(check bool) "balanced nesting" true
    (phases
    = [ (Trace.Begin, "outer"); (Trace.Begin, "inner"); (Trace.End, "inner");
        (Trace.End, "outer") ]);
  let ts = List.map (fun e -> e.Trace.ts) evs in
  Alcotest.(check bool) "non-decreasing ts" true
    (List.for_all2 ( <= ) [ 0; 0; 250; 250 ] ts
    && List.sort compare ts = ts)

let test_out_of_order_close () =
  (* Closing an outer span with an inner one still open must close the
     inner one first, so the outer's self time excludes the child. *)
  let clock = ref 0 in
  let obs = Obs.create ~now:(fun () -> !clock) () in
  Obs.open_span obs "outer";
  clock := 100;
  Obs.open_span obs "inner";
  clock := 400;
  (* close the OUTER span while inner is still open *)
  Obs.close_span obs "outer";
  Alcotest.(check int) "stack drained" 0 (Obs.depth obs);
  let outer = Option.get (Obs.sstat obs "outer") in
  let inner = Option.get (Obs.sstat obs "inner") in
  Alcotest.(check int) "inner total" 300 inner.Obs.total_ns;
  Alcotest.(check int) "outer total" 400 outer.Obs.total_ns;
  Alcotest.(check int) "outer self excludes inner" 100 outer.Obs.self_ns

(* --- Chrome trace-event export --- *)

let test_export_json () =
  let clock = ref 0 in
  let tr = Trace.create ~now:(fun () -> !clock) () in
  Trace.begin_span tr ~cat:"span" "main";
  clock := 1500;
  Trace.instant tr ~cat:"epc" ~args:[ ("page", 3) ] "epc.fault";
  clock := 2000;
  Trace.counter tr ~cat:"epc" "epc.resident" [ ("pages", 8) ];
  Trace.end_span tr ~cat:"span" "main";
  let s = Trace_export.to_string ~process_name:"test" tr in
  let j =
    match Json.parse s with
    | Ok j -> j
    | Error msg -> Alcotest.failf "export did not parse: %s" msg
  in
  let evs = Option.get (Option.bind (Json.member "traceEvents" j) Json.to_list) in
  (* 2 metadata events + 4 recorded *)
  Alcotest.(check int) "event count" 6 (List.length evs);
  let ph e = Option.get (Option.bind (Json.member "ph" e) Json.to_str) in
  let data = List.filter (fun e -> ph e <> "M") evs in
  Alcotest.(check (list string)) "phases" [ "B"; "i"; "C"; "E" ] (List.map ph data);
  let ts e = Option.get (Option.bind (Json.member "ts" e) Json.to_float) in
  let tss = List.map ts data in
  Alcotest.(check bool) "ts non-decreasing (microseconds)" true
    (List.sort compare tss = tss);
  Alcotest.(check (float 1e-9)) "ns -> us" 1.5 (List.nth tss 1);
  (* the instant carries its scope and args *)
  let inst = List.nth data 1 in
  Alcotest.(check (option string)) "instant scope" (Some "t")
    (Option.bind (Json.member "s" inst) Json.to_str);
  Alcotest.(check (option (float 1e-9))) "args.page" (Some 3.)
    (Option.bind (Json.member "args" inst)
       (fun a -> Option.bind (Json.member "page" a) Json.to_float))

let test_export_tracks_and_loss () =
  let tr = Trace.create ~capacity:4 ~now:(fun () -> 0) () in
  for _ = 1 to 5 do Trace.instant tr ~cat:"t" "spill" done;
  Trace.instant tr ~cat:"t" "plain";
  (* the reserved "tid" arg routes an event onto its own track and is
     stripped from the exported args *)
  Trace.instant tr ~cat:"serve" ~args:[ ("tid", 102); ("rid", 7) ] "req";
  let s =
    Trace_export.to_string ~process_name:"fleet"
      ~threads:[ (102, "enclave 2 requests") ]
      tr
  in
  let j =
    match Json.parse s with
    | Ok j -> j
    | Error msg -> Alcotest.failf "export did not parse: %s" msg
  in
  let member_exn path j =
    match Json.member path j with
    | Some v -> v
    | None -> Alcotest.failf "missing member %S" path
  in
  (* ring health is exported for downstream validators *)
  let other = member_exn "otherData" j in
  List.iter
    (fun (k, v) ->
      Alcotest.(check (option (float 0.0)))
        (Printf.sprintf "otherData.%s" k)
        (Some v)
        (Json.to_float (member_exn k other)))
    [ ("recorded", 7.); ("dropped", 3.); ("lost", 3.); ("high_water", 4.);
      ("capacity", 4.) ];
  let evs = Option.get (Option.bind (Json.member "traceEvents" j) Json.to_list) in
  let tid e = Option.bind (Json.member "tid" e) Json.to_float in
  let metas, data =
    List.partition
      (fun e -> Option.bind (Json.member "ph" e) Json.to_str = Some "M")
      evs
  in
  (* the ring wrapped: only the newest 4 events survive *)
  Alcotest.(check int) "held events exported" 4 (List.length data);
  (* the request event rides tid 102 with "tid" gone from its args *)
  let req =
    List.find
      (fun e -> Option.bind (Json.member "name" e) Json.to_str = Some "req")
      evs
  in
  Alcotest.(check (option (float 0.0))) "tid honoured" (Some 102.) (tid req);
  let args = member_exn "args" req in
  Alcotest.(check (option (float 0.0))) "rid survives" (Some 7.)
    (Json.to_float (member_exn "rid" args));
  Alcotest.(check bool) "reserved tid stripped from args" true
    (Json.member "tid" args = None);
  (* thread_name metadata names the track *)
  let thread_meta =
    List.filter
      (fun e ->
        Option.bind (Json.member "name" e) Json.to_str = Some "thread_name")
      metas
  in
  Alcotest.(check bool) "track named" true
    (List.exists
       (fun e ->
         tid e = Some 102.
         && Option.bind (Json.member "args" e) (fun a ->
                Option.bind (Json.member "name" a) Json.to_str)
            = Some "enclave 2 requests")
       thread_meta)

(* --- end-to-end: a traced runtime run --- *)

let trace_wat =
  {|(module
      (import "wasi_snapshot_preview1" "fd_write"
        (func $fd_write (param i32 i32 i32 i32) (result i32)))
      (import "wasi_snapshot_preview1" "proc_exit" (func $proc_exit (param i32)))
      (memory (export "memory") 2)
      (data (i32.const 8) "traced\n")
      (func (export "_start")
        (i32.store (i32.const 0) (i32.const 8))
        (i32.store (i32.const 4) (i32.const 7))
        (drop (call $fd_write (i32.const 1) (i32.const 0) (i32.const 1) (i32.const 20)))
        (call $proc_exit (i32.const 0))))|}

let test_runtime_trace () =
  let machine = Twine_sgx.Machine.create ~seed:"trace" ~epc_bytes:(16 * 4096) () in
  let tr = Twine_sgx.Machine.attach_tracer machine in
  let rt = Twine.Runtime.create machine in
  Twine.Runtime.deploy rt (Twine_wasm.Wat.parse trace_wat);
  let r = Twine.Runtime.run rt in
  Alcotest.(check int) "exit 0" 0 r.Twine.Runtime.exit_code;
  let evs = Trace.events tr in
  let has pred = List.exists pred evs in
  Alcotest.(check bool) "twine.main span" true
    (has (fun e -> e.Trace.phase = Trace.Begin && e.Trace.name = "twine.main"));
  Alcotest.(check bool) "ecall crossing" true
    (has (fun e -> e.Trace.cat = "sgx" && e.Trace.name = "twine.main.crossing"));
  Alcotest.(check bool) "epc fault" true
    (has (fun e -> e.Trace.cat = "epc" && e.Trace.name = "epc.fault"));
  Alcotest.(check bool) "wasi hostcall" true
    (has (fun e -> e.Trace.cat = "wasi" && e.Trace.name = "wasi.fd_write"));
  let ts = List.map (fun e -> e.Trace.ts) evs in
  Alcotest.(check bool) "virtual-time ordered" true (List.sort compare ts = ts);
  (* the exported JSON for a real run still parses *)
  (match Json.parse (Trace_export.to_string tr) with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "real-run export did not parse: %s" msg);
  (* a machine without a tracer records nothing and still runs *)
  let m2 = Twine_sgx.Machine.create ~seed:"trace" ~epc_bytes:(16 * 4096) () in
  Alcotest.(check (option reject)) "no tracer by default" None
    (Obs.tracer m2.Twine_sgx.Machine.obs)

(* --- baseline comparator --- *)

let baseline_of metrics = Baseline.create ~meta:[ ("generator", "test") ] metrics

let test_baseline_roundtrip () =
  let b =
    baseline_of
      [ Baseline.v ~tol:0.0 "counts.ecall" 42;
        Baseline.v ~tol:0.02 "time.virtual_ns" 123456;
        Baseline.v "wall.ns" 999 ]
  in
  match Baseline.of_string (Baseline.to_string b) with
  | Error msg -> Alcotest.failf "round-trip failed: %s" msg
  | Ok b2 ->
      Alcotest.(check int) "metric count" 3 (List.length b2.Baseline.metrics);
      let m = List.assoc "time.virtual_ns" b2.Baseline.metrics in
      Alcotest.(check (float 1e-9)) "value" 123456. m.Baseline.value;
      Alcotest.(check (option (float 1e-9))) "tol" (Some 0.02) m.Baseline.tol;
      let w = List.assoc "wall.ns" b2.Baseline.metrics in
      Alcotest.(check (option (float 1e-9))) "no band" None w.Baseline.tol

let test_baseline_check () =
  let base =
    baseline_of
      [ Baseline.v ~tol:0.0 "exact" 100;
        Baseline.v ~tol:0.05 "banded" 1000;
        Baseline.v "info" 500 ]
  in
  (* identical run passes *)
  let same = Baseline.check ~baseline:base ~current:base in
  Alcotest.(check bool) "identical passes" true (Baseline.all_ok same);
  (* within band passes; outside fails; informational never gates *)
  let drifted =
    baseline_of
      [ Baseline.v ~tol:0.0 "exact" 100;
        Baseline.v ~tol:0.05 "banded" 1040;
        Baseline.v "info" 9999 ]
  in
  Alcotest.(check bool) "4% drift within 5% band" true
    (Baseline.all_ok (Baseline.check ~baseline:base ~current:drifted));
  let broken =
    baseline_of
      [ Baseline.v ~tol:0.0 "exact" 101;
        Baseline.v ~tol:0.05 "banded" 1000;
        Baseline.v "info" 500 ]
  in
  let vs = Baseline.check ~baseline:base ~current:broken in
  Alcotest.(check bool) "perturbed exact metric fails" false (Baseline.all_ok vs);
  let bad = List.filter (fun v -> not v.Baseline.ok) vs in
  Alcotest.(check (list string)) "only the perturbed metric" [ "exact" ]
    (List.map (fun v -> v.Baseline.path) bad);
  (* a metric missing from the current run fails the check *)
  let missing = baseline_of [ Baseline.v ~tol:0.0 "exact" 100 ] in
  Alcotest.(check bool) "missing metric fails" false
    (Baseline.all_ok (Baseline.check ~baseline:base ~current:missing))

let suite =
  [ ( "ring",
      [ Alcotest.test_case "wrap keeps newest" `Quick test_ring_wrap;
        Alcotest.test_case "disabled records nothing" `Quick
          test_disabled_records_nothing;
        Alcotest.test_case "clear" `Quick test_clear;
        Alcotest.test_case "lost and high water" `Quick
          test_lost_and_high_water ] );
    ( "obs",
      [ Alcotest.test_case "span begin/end events" `Quick test_obs_span_events;
        Alcotest.test_case "out-of-order close" `Quick test_out_of_order_close ] );
    ( "export",
      [ Alcotest.test_case "chrome trace json" `Quick test_export_json;
        Alcotest.test_case "tracks, thread names, ring health" `Quick
          test_export_tracks_and_loss ] );
    ( "runtime",
      [ Alcotest.test_case "traced run" `Quick test_runtime_trace ] );
    ( "baseline",
      [ Alcotest.test_case "json round-trip" `Quick test_baseline_roundtrip;
        Alcotest.test_case "check verdicts" `Quick test_baseline_check ] );
  ]

let () = Alcotest.run "twine_trace" suite
