(* The serving fleet: deterministic replay, shared-EPC interference
   across runtimes, ECALL batching amortisation, and the scoped machine
   auditor seeing exactly the fleet's machine. *)

open Twine_sgx
open Twine_serve

let small_config =
  {
    Serve.default_config with
    Serve.enclaves = 4;
    requests = 2_000;
    rows = 256;
    epc_bytes = 256 * 4096;
  }

(* -- workload generator -- *)

let test_workload_deterministic () =
  let shape = Serve.shape_of small_config in
  let a = Workload.generate ~seed:"w" shape in
  let b = Workload.generate ~seed:"w" shape in
  Alcotest.(check bool) "same seed, same arrivals" true (a = b);
  let c = Workload.generate ~seed:"other" shape in
  Alcotest.(check bool) "different seed differs" false (a = c);
  Array.iteri
    (fun i x ->
      if i > 0 then
        Alcotest.(check bool) "arrival times nondecreasing" true
          (x.Workload.at >= a.(i - 1).Workload.at);
      Alcotest.(check bool) "enclave in range" true
        (x.Workload.enclave >= 0 && x.Workload.enclave < shape.Workload.enclaves))
    a

let test_workload_validates () =
  let shape = Serve.shape_of small_config in
  Alcotest.check_raises "empty mix"
    (Invalid_argument "Workload.generate: empty mix") (fun () ->
      ignore
        (Workload.generate ~seed:"w"
           { shape with Workload.mix = { kv_get = 0; sql_point = 0; sql_range = 0 } }))

(* -- deterministic replay: byte-identical books and equal tails -- *)

let test_replay_identical () =
  let s1 = Serve.run small_config in
  let s2 = Serve.run small_config in
  Alcotest.(check string) "byte-identical ledger snapshots"
    (Twine_obs.Ledger.to_string s1.Serve.ledger)
    (Twine_obs.Ledger.to_string s2.Serve.ledger);
  Alcotest.(check int) "p50 equal" s1.Serve.p50_ns s2.Serve.p50_ns;
  Alcotest.(check int) "p99 equal" s1.Serve.p99_ns s2.Serve.p99_ns;
  Alcotest.(check int) "elapsed equal" s1.Serve.elapsed_ns s2.Serve.elapsed_ns;
  let s3 = Serve.run { small_config with Serve.seed = "another" } in
  Alcotest.(check bool) "different seed, different books" false
    (Twine_obs.Ledger.to_string s1.Serve.ledger
    = Twine_obs.Ledger.to_string s3.Serve.ledger)

let test_serving_books_balance () =
  let s = Serve.run small_config in
  Alcotest.(check bool) "conservation audit holds" true
    (Twine_obs.Ledger.balanced (Machine.ledger s.Serve.machine));
  Alcotest.(check int) "every request measured" small_config.Serve.requests
    s.Serve.requests;
  Alcotest.(check bool) "exec time booked" true
    (Twine_obs.Ledger.ns (Machine.ledger s.Serve.machine) "serve.exec" > 0)

(* -- scoped tracking: the auditor sees exactly the fleet's machine -- *)

let test_tracked_sees_fleet () =
  let stats, machines = Machine.with_tracked (fun () -> Serve.run small_config) in
  Alcotest.(check int) "one shared machine for the whole fleet" 1
    (List.length machines);
  Alcotest.(check bool) "and it is the fleet's machine" true
    (match machines with [ m ] -> m == stats.Serve.machine | _ -> false)

(* -- batching amortises enclave transitions -- *)

let test_batching_amortises_ecalls () =
  let unbatched = Serve.run { small_config with Serve.batch = 1 } in
  let batched = Serve.run { small_config with Serve.batch = 16 } in
  Alcotest.(check int) "unbatched: one ecall per request"
    small_config.Serve.requests unbatched.Serve.ecalls;
  Alcotest.(check bool) "batched: fewer ecalls" true
    (batched.Serve.ecalls < unbatched.Serve.ecalls);
  let per_req s = s.Serve.ecall_ns / s.Serve.requests in
  Alcotest.(check bool) "batched: cheaper transitions per request" true
    (per_req batched < per_req unbatched);
  Alcotest.(check bool) "same work either way" true
    (Twine_obs.Ledger.ns (Machine.ledger batched.Serve.machine) "serve.exec"
    = Twine_obs.Ledger.ns (Machine.ledger unbatched.Serve.machine) "serve.exec")

(* -- two runtimes, one machine: shared-EPC eviction interference -- *)

let test_shared_epc_interference () =
  (* A machine whose EPC holds 32 pages. Runtime A touches a working
     set that fills it; runtime B then touches its own pages, which
     must evict A's — and the EPC books every victim to A. *)
  let machine = Machine.create ~seed:"interference" ~epc_bytes:(32 * 4096) () in
  let config =
    { Twine.Runtime.default_config with Twine.Runtime.heap_bytes = 4096 }
  in
  let ra = Twine.Runtime.create ~config machine in
  let rb = Twine.Runtime.create ~config machine in
  let ea = Twine.Runtime.enclave ra and eb = Twine.Runtime.enclave rb in
  let epc = machine.Machine.epc in
  let base_a = Enclave.reserve ea (64 * 4096) in
  let base_b = Enclave.reserve eb (64 * 4096) in
  (* A faults in 32 pages of its own: EPC now entirely A's *)
  Enclave.touch ea ~addr:base_a ~len:(32 * 4096);
  let evicted_a_before = Epc.evictions_of epc (Enclave.id ea) in
  let faults_before = Epc.faults epc in
  (* B faults in ~8 pages (the reserve base need not be page-aligned):
     the EPC is full of A's pages, so every one of B's faults must
     evict one of A's *)
  Enclave.touch eb ~addr:base_b ~len:(8 * 4096);
  let b_faults = Epc.faults epc - faults_before in
  Alcotest.(check bool) "B faulted" true (b_faults >= 8);
  Alcotest.(check int) "B's faults evicted exactly A's pages" b_faults
    (Epc.evictions_of epc (Enclave.id ea) - evicted_a_before);
  Alcotest.(check int) "B suffered no evictions" 0
    (Epc.evictions_of epc (Enclave.id eb));
  (* interference is booked on the shared machine's ledger *)
  Alcotest.(check bool) "evict cost booked" true
    (Twine_obs.Ledger.ns (Machine.ledger machine) "epc.evict" > 0)

let test_fleet_interference_attribution () =
  (* In a full serving run over a too-small EPC, eviction victims land
     on fleet members — and only on fleet members. *)
  let s =
    Serve.run
      { small_config with Serve.enclaves = 4; epc_bytes = 64 * 4096 }
  in
  let total = List.fold_left (fun a (_, v) -> a + v) 0 s.Serve.evictions_by_enclave in
  Alcotest.(check bool) "the fleet thrashes" true (s.Serve.epc_evictions > 0);
  Alcotest.(check int) "every serving-phase victim belongs to a fleet enclave"
    s.Serve.epc_evictions total

let () =
  Alcotest.run "twine_serve"
    [
      ( "workload",
        [
          Alcotest.test_case "deterministic" `Quick test_workload_deterministic;
          Alcotest.test_case "validates" `Quick test_workload_validates;
        ] );
      ( "replay",
        [
          Alcotest.test_case "byte-identical books" `Quick test_replay_identical;
          Alcotest.test_case "books balance" `Quick test_serving_books_balance;
          Alcotest.test_case "tracked sees the fleet" `Quick test_tracked_sees_fleet;
        ] );
      ( "batching",
        [
          Alcotest.test_case "amortises ecalls" `Quick
            test_batching_amortises_ecalls;
        ] );
      ( "shared-epc",
        [
          Alcotest.test_case "cross-enclave eviction" `Quick
            test_shared_epc_interference;
          Alcotest.test_case "fleet attribution" `Quick
            test_fleet_interference_attribution;
        ] );
    ]
