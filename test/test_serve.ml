(* The serving fleet: deterministic replay, shared-EPC interference
   across runtimes, ECALL batching amortisation, and the scoped machine
   auditor seeing exactly the fleet's machine. *)

open Twine_sgx
open Twine_serve

let small_config =
  {
    Serve.default_config with
    Serve.enclaves = 4;
    requests = 2_000;
    rows = 256;
    epc_bytes = 256 * 4096;
  }

(* -- workload generator -- *)

let test_workload_deterministic () =
  let shape = Serve.shape_of small_config in
  let a = Workload.generate ~seed:"w" shape in
  let b = Workload.generate ~seed:"w" shape in
  Alcotest.(check bool) "same seed, same arrivals" true (a = b);
  let c = Workload.generate ~seed:"other" shape in
  Alcotest.(check bool) "different seed differs" false (a = c);
  Array.iteri
    (fun i x ->
      if i > 0 then
        Alcotest.(check bool) "arrival times nondecreasing" true
          (x.Workload.at >= a.(i - 1).Workload.at);
      Alcotest.(check bool) "enclave in range" true
        (x.Workload.enclave >= 0 && x.Workload.enclave < shape.Workload.enclaves))
    a

let test_workload_validates () =
  let shape = Serve.shape_of small_config in
  Alcotest.check_raises "empty mix"
    (Invalid_argument "Workload.stream: empty mix") (fun () ->
      ignore
        (Workload.generate ~seed:"w"
           { shape with Workload.mix = { kv_get = 0; sql_point = 0; sql_range = 0 } }))

(* -- deterministic replay: byte-identical books and equal tails -- *)

let test_replay_identical () =
  let s1 = Serve.run small_config in
  let s2 = Serve.run small_config in
  Alcotest.(check string) "byte-identical ledger snapshots"
    (Twine_obs.Ledger.to_string s1.Serve.ledger)
    (Twine_obs.Ledger.to_string s2.Serve.ledger);
  Alcotest.(check int) "p50 equal" s1.Serve.p50_ns s2.Serve.p50_ns;
  Alcotest.(check int) "p99 equal" s1.Serve.p99_ns s2.Serve.p99_ns;
  Alcotest.(check int) "elapsed equal" s1.Serve.elapsed_ns s2.Serve.elapsed_ns;
  let s3 = Serve.run { small_config with Serve.seed = "another" } in
  Alcotest.(check bool) "different seed, different books" false
    (Twine_obs.Ledger.to_string s1.Serve.ledger
    = Twine_obs.Ledger.to_string s3.Serve.ledger)

let test_serving_books_balance () =
  let s = Serve.run small_config in
  Alcotest.(check bool) "conservation audit holds" true
    (Twine_obs.Ledger.balanced (Machine.ledger s.Serve.machine));
  Alcotest.(check int) "every request measured" small_config.Serve.requests
    s.Serve.requests;
  Alcotest.(check bool) "exec time booked" true
    (Twine_obs.Ledger.ns (Machine.ledger s.Serve.machine) "serve.exec" > 0)

(* -- scoped tracking: the auditor sees exactly the fleet's machine -- *)

let test_tracked_sees_fleet () =
  let stats, machines = Machine.with_tracked (fun () -> Serve.run small_config) in
  Alcotest.(check int) "one shared machine for the whole fleet" 1
    (List.length machines);
  Alcotest.(check bool) "and it is the fleet's machine" true
    (match machines with [ m ] -> m == stats.Serve.machine | _ -> false)

(* -- batching amortises enclave transitions -- *)

let test_batching_amortises_ecalls () =
  let unbatched = Serve.run { small_config with Serve.batch = 1 } in
  let batched = Serve.run { small_config with Serve.batch = 16 } in
  Alcotest.(check int) "unbatched: one ecall per request"
    small_config.Serve.requests unbatched.Serve.ecalls;
  Alcotest.(check bool) "batched: fewer ecalls" true
    (batched.Serve.ecalls < unbatched.Serve.ecalls);
  let per_req s = s.Serve.ecall_ns / s.Serve.requests in
  Alcotest.(check bool) "batched: cheaper transitions per request" true
    (per_req batched < per_req unbatched);
  Alcotest.(check bool) "same work either way" true
    (Twine_obs.Ledger.ns (Machine.ledger batched.Serve.machine) "serve.exec"
    = Twine_obs.Ledger.ns (Machine.ledger unbatched.Serve.machine) "serve.exec")

(* -- two runtimes, one machine: shared-EPC eviction interference -- *)

let test_shared_epc_interference () =
  (* A machine whose EPC holds 32 pages. Runtime A touches a working
     set that fills it; runtime B then touches its own pages, which
     must evict A's — and the EPC books every victim to A. *)
  let machine = Machine.create ~seed:"interference" ~epc_bytes:(32 * 4096) () in
  let config =
    { Twine.Runtime.default_config with Twine.Runtime.heap_bytes = 4096 }
  in
  let ra = Twine.Runtime.create ~config machine in
  let rb = Twine.Runtime.create ~config machine in
  let ea = Twine.Runtime.enclave ra and eb = Twine.Runtime.enclave rb in
  let epc = machine.Machine.epc in
  let base_a = Enclave.reserve ea (64 * 4096) in
  let base_b = Enclave.reserve eb (64 * 4096) in
  (* A faults in 32 pages of its own: EPC now entirely A's *)
  Enclave.touch ea ~addr:base_a ~len:(32 * 4096);
  let evicted_a_before = Epc.evictions_of epc (Enclave.id ea) in
  let faults_before = Epc.faults epc in
  (* B faults in ~8 pages (the reserve base need not be page-aligned):
     the EPC is full of A's pages, so every one of B's faults must
     evict one of A's *)
  Enclave.touch eb ~addr:base_b ~len:(8 * 4096);
  let b_faults = Epc.faults epc - faults_before in
  Alcotest.(check bool) "B faulted" true (b_faults >= 8);
  Alcotest.(check int) "B's faults evicted exactly A's pages" b_faults
    (Epc.evictions_of epc (Enclave.id ea) - evicted_a_before);
  Alcotest.(check int) "B suffered no evictions" 0
    (Epc.evictions_of epc (Enclave.id eb));
  (* interference is booked on the shared machine's ledger *)
  Alcotest.(check bool) "evict cost booked" true
    (Twine_obs.Ledger.ns (Machine.ledger machine) "epc.evict" > 0)

let test_fleet_interference_attribution () =
  (* In a full serving run over a too-small EPC, eviction victims land
     on fleet members — and only on fleet members. *)
  let s =
    Serve.run
      { small_config with Serve.enclaves = 4; epc_bytes = 64 * 4096 }
  in
  let total = List.fold_left (fun a (_, v) -> a + v) 0 s.Serve.evictions_by_enclave in
  Alcotest.(check bool) "the fleet thrashes" true (s.Serve.epc_evictions > 0);
  Alcotest.(check int) "every serving-phase victim belongs to a fleet enclave"
    s.Serve.epc_evictions total

(* -- per-request attribution: the conservation property -- *)

let contains haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let check_conserves label (s : Serve.stats) =
  let booked = s.Serve.ledger.Twine_obs.Ledger.booked_ns in
  Alcotest.(check int) (label ^ ": residue 0") 0 s.Serve.attribution_residue_ns;
  Alcotest.(check int)
    (label ^ ": slices + idle = serving-phase booked total")
    booked
    (s.Serve.attributed_ns + s.Serve.unattributed_ns);
  Alcotest.(check int)
    (label ^ ": stats total = sum of per-request slices")
    s.Serve.attributed_ns
    (Array.fold_left
       (fun a r -> a + Serve.attributed_ns r)
       0 s.Serve.requests_log);
  Alcotest.(check int)
    (label ^ ": every request logged")
    s.Serve.requests
    (Array.length s.Serve.requests_log);
  Array.iteri
    (fun rid r ->
      Alcotest.(check int) (label ^ ": log indexed by rid") rid r.Serve.rid;
      Alcotest.(check int)
        (label ^ ": latency = queue wait + service")
        (Serve.latency_ns r)
        (Serve.queue_ns r + Serve.service_ns r);
      Alcotest.(check bool) (label ^ ": components non-negative") true
        (Serve.queue_ns r >= 0 && Serve.service_ns r >= 0
        && Serve.attributed_ns r >= 0))
    s.Serve.requests_log

let test_attribution_conserves () =
  (* Across seeds, batch sizes and fleet sizes, the per-request cycle
     slices plus scheduler idle must reproduce the serving-phase ledger
     total exactly — the zero-residue conservation law of the tap. *)
  List.iter
    (fun (seed, batch, enclaves) ->
      let cfg =
        { small_config with Serve.seed; batch; enclaves; requests = 600 }
      in
      let label = Printf.sprintf "seed=%s batch=%d fleet=%d" seed batch enclaves in
      check_conserves label (Serve.run cfg))
    [ ("a", 1, 1); ("a", 16, 4); ("b", 16, 4); ("a", 7, 3); ("c", 16, 8) ]

let test_attribution_under_pressure () =
  (* the law survives EPC thrash: paging and eviction cycles land inside
     request windows, not in the idle bucket *)
  let s = Serve.run { small_config with Serve.epc_bytes = 64 * 4096 } in
  check_conserves "shrunk EPC" s;
  let epc_sliced =
    Array.fold_left
      (fun a r ->
        a + r.Serve.breakdown.Serve.epc_fault_ns
        + r.Serve.breakdown.Serve.epc_evict_ns)
      0 s.Serve.requests_log
  in
  Alcotest.(check bool) "EPC paging cycles sliced to requests" true
    (epc_sliced > 0);
  Alcotest.(check int) "which add up to the ledger's epc accounts" epc_sliced
    (Twine_obs.Ledger.ns (Machine.ledger s.Serve.machine) "epc.fault"
    + Twine_obs.Ledger.ns (Machine.ledger s.Serve.machine) "epc.evict")

let test_request_trace_replays () =
  let s1 = Serve.run small_config in
  let s2 = Serve.run small_config in
  let t1 = Serve.render_requests s1 and t2 = Serve.render_requests s2 in
  Alcotest.(check string) "byte-identical request trace across replays" t1 t2;
  Alcotest.(check bool) "schema stamped" true
    (contains t1 Serve.request_trace_schema);
  Alcotest.(check bool) "different seed, different trace" false
    (Serve.render_requests (Serve.run { small_config with Serve.seed = "x" })
    = t1)

(* -- tail-latency blame -- *)

let cliff_config =
  (* the §V-D cliff: 8 enclaves sharing an EPC shrunk to 96 pages, open
     loop — working sets collide and the fleet saturates *)
  {
    small_config with
    Serve.enclaves = 8;
    requests = 3_000;
    epc_bytes = 96 * 4096;
  }

let test_blame_cliff () =
  let s = Serve.run cliff_config in
  check_conserves "cliff" s;
  Alcotest.(check bool) "the shrunk EPC causes cross-enclave refaults" true
    (s.Serve.cross_refaults > 0);
  (* the dominant p99 account: in the saturated open loop, queue wait —
     the cliff shows up as waiting behind EPC-thrashing neighbours, not
     as the victim's own paging time *)
  (match Serve.blame_summary s with
  | (dominant, n) :: _ ->
      Alcotest.(check string) "queue wait dominates the p99 tail" "queue"
        dominant;
      Alcotest.(check bool) "census counts requests" true (n > 0)
  | [] -> Alcotest.fail "empty blame summary");
  (* blame list: slowest first, dominant component consistent *)
  let blames = Serve.blame ~top:30 s in
  Alcotest.(check int) "top N honoured" 30 (List.length blames);
  ignore
    (List.fold_left
       (fun prev b ->
         let lat = Serve.latency_ns b.Serve.b_request in
         Alcotest.(check bool) "sorted slowest first" true (lat <= prev);
         Alcotest.(check bool) "dominant bounded by latency" true
           (b.Serve.b_dominant_ns <= lat && b.Serve.b_dominant_ns >= 0);
         lat)
       max_int blames);
  (* eviction provenance: every cross-enclave refault is pinned on the
     request that paid for it and on the enclave whose fault evicted it *)
  let paid =
    Array.fold_left
      (fun a r -> List.fold_left (fun a (_, c) -> a + c) a r.Serve.interference)
      0 s.Serve.requests_log
  in
  Alcotest.(check int) "every cross refault charged to a request"
    s.Serve.cross_refaults paid;
  Alcotest.(check int) "evictor census agrees" s.Serve.cross_refaults
    (List.fold_left (fun a (_, c) -> a + c) 0 s.Serve.interference_by_evictor);
  Array.iter
    (fun r ->
      List.iter
        (fun (evictor, count) ->
          Alcotest.(check bool) "evictor is a fleet enclave" true
            (evictor >= 1 && evictor <= cliff_config.Serve.enclaves);
          Alcotest.(check bool) "never self-interference" true
            (evictor <> r.Serve.enclave && count > 0))
        r.Serve.interference)
    s.Serve.requests_log;
  let rendered = Serve.render_blame ~top:5 s in
  Alcotest.(check bool) "render names an interfering enclave" true
    (contains rendered "cross-enclave refaults:" && contains rendered "by-e");
  Alcotest.(check bool) "render states the conservation line" true
    (contains rendered "residue 0 ns")

let test_p99_exemplars () =
  let s = Serve.run small_config in
  Alcotest.(check bool) "p99 bucket recorded exemplar rids" true
    (s.Serve.p99_exemplar_rids <> []);
  Alcotest.(check bool) "bounded by the per-bucket cap" true
    (List.length s.Serve.p99_exemplar_rids <= 8);
  List.iter
    (fun rid ->
      Alcotest.(check bool) "exemplar rid is a served request" true
        (rid >= 0 && rid < s.Serve.requests);
      (* the exemplar's recorded latency lands at or below the p99
         bucket's estimate (same covering bucket) *)
      Alcotest.(check bool) "exemplar latency bounded by the estimate" true
        (Serve.latency_ns s.Serve.requests_log.(rid) <= s.Serve.p99_ns))
    s.Serve.p99_exemplar_rids

let test_sampler_and_depth_hwm () =
  let s = Serve.run small_config in
  Alcotest.(check bool) "virtual-time sampler fired" true
    (s.Serve.sampler_samples > 0);
  let deepest =
    List.fold_left (fun a (_, d) -> max a d) 0 s.Serve.queue_depth_hwm_by_enclave
  in
  Alcotest.(check int) "fleet high-water = deepest enclave queue" deepest
    s.Serve.queue_depth_hwm;
  Alcotest.(check bool) "open loop builds a queue" true
    (s.Serve.queue_depth_hwm > 0);
  let off = Serve.run { small_config with Serve.sample_every_ns = 0 } in
  Alcotest.(check int) "sampler disabled by 0" 0 off.Serve.sampler_samples

let test_request_spans_on_tracks () =
  (* with a recorder attached, every request emits a Begin/End span on
     its enclave's request track (reserved "tid" arg) plus a serve.req
     instant keyed by rid *)
  let cfg = { small_config with Serve.requests = 200 } in
  let recorder = ref None in
  let s =
    Serve.run
      ~prepare:(fun m -> recorder := Some (Machine.attach_tracer m))
      cfg
  in
  let tr = Option.get !recorder in
  let evs = Twine_obs.Trace.events tr in
  let spans =
    List.filter
      (fun e ->
        e.Twine_obs.Trace.cat = "serve"
        && e.Twine_obs.Trace.phase = Twine_obs.Trace.Begin
        && List.mem_assoc "tid" e.Twine_obs.Trace.args)
      evs
  in
  Alcotest.(check int) "one span per request" cfg.Serve.requests
    (List.length spans);
  List.iter
    (fun e ->
      let tid = List.assoc "tid" e.Twine_obs.Trace.args in
      Alcotest.(check bool) "span rides a per-enclave request track" true
        (tid > 100 && tid <= 100 + cfg.Serve.enclaves);
      Alcotest.(check bool) "span carries its rid" true
        (List.mem_assoc "rid" e.Twine_obs.Trace.args))
    spans;
  let rids =
    List.filter_map
      (fun e ->
        if e.Twine_obs.Trace.name = "serve.req" then
          List.assoc_opt "rid" e.Twine_obs.Trace.args
        else None)
      evs
  in
  Alcotest.(check int) "one completion instant per request" cfg.Serve.requests
    (List.length rids);
  Alcotest.(check (list int)) "every rid exactly once"
    (List.init cfg.Serve.requests Fun.id)
    (List.sort compare rids);
  (* the thread metadata the exporter needs exists for every track *)
  let threads = Serve.threads s in
  Alcotest.(check int) "a named track per enclave" cfg.Serve.enclaves
    (List.length threads)

(* -- streaming SLO plane -- *)

let slo_spec =
  match Twine_obs.Slo.parse "p99<2ms@50ms,budget=0.1%" with
  | Ok s -> s
  | Error e -> failwith e

let slo_config = { small_config with Serve.slo = Some slo_spec }

let test_stream_matches_retained () =
  let retained = Serve.run slo_config in
  let streamed = Serve.run { slo_config with Serve.retain_requests = false } in
  Alcotest.(check bool) "retained flag" true retained.Serve.retained;
  Alcotest.(check bool) "stream flag" false streamed.Serve.retained;
  Alcotest.(check int) "stream holds no request log" 0
    (Array.length streamed.Serve.requests_log);
  (* the virtual timeline is one code path: identical books *)
  Alcotest.(check string) "byte-identical ledgers"
    (Twine_obs.Ledger.to_string retained.Serve.ledger)
    (Twine_obs.Ledger.to_string streamed.Serve.ledger);
  (* the twine-slo/v1 artifact is mode-independent by construction *)
  Alcotest.(check string) "byte-identical slo artifacts"
    (Serve.render_slo retained)
    (Serve.render_slo streamed);
  (* so is twine-sqlstats/v1: the registry accumulates on the shared
     serving path *)
  Alcotest.(check string) "byte-identical sqlstats artifacts"
    (Serve.render_sqlstats retained)
    (Serve.render_sqlstats streamed);
  (* stream percentiles are the sketch's, and the sketch agrees with
     the retained run's exact values within alpha *)
  Alcotest.(check int) "stream p50 = sketch p50" streamed.Serve.sketch_p50_ns
    streamed.Serve.p50_ns;
  Alcotest.(check int) "stream p99 = sketch p99" streamed.Serve.sketch_p99_ns
    streamed.Serve.p99_ns;
  let within name exact est =
    let bound =
      int_of_float (Twine_obs.Sketch.alpha *. float_of_int exact) + 1
    in
    Alcotest.(check bool)
      (Printf.sprintf "%s within alpha (exact %d, sketch %d)" name exact est)
      true
      (abs (est - exact) <= bound)
  in
  within "p50" retained.Serve.p50_ns retained.Serve.sketch_p50_ns;
  within "p99" retained.Serve.p99_ns retained.Serve.sketch_p99_ns;
  (* per-request views fail loudly without retention *)
  List.iter
    (fun (name, f) ->
      match f () with
      | (_ : string) -> Alcotest.failf "%s did not raise under --stream" name
      | exception Invalid_argument _ -> ())
    [ ("render_blame", fun () -> Serve.render_blame streamed);
      ("render_requests", fun () -> Serve.render_requests streamed) ]

let test_window_invariants () =
  let s = Serve.run slo_config in
  let ws = s.Serve.windows in
  Alcotest.(check bool) "at least one window" true (List.length ws > 0);
  (* contiguous from window 0, uniform width *)
  List.iteri
    (fun i w ->
      let open Twine_obs.Timeseries in
      Alcotest.(check int) "index" i w.w_index;
      Alcotest.(check int) "start"
        (s.Serve.t0_ns + (i * s.Serve.window_ns))
        w.w_start_ns;
      Alcotest.(check int) "width" s.Serve.window_ns (w.w_end_ns - w.w_start_ns);
      Alcotest.(check bool) "overs never exceed count" true
        (w.w_overs <= w.w_count))
    ws;
  let sum f = List.fold_left (fun a w -> a + f w) 0 in
  Alcotest.(check int) "fleet windows hold every request"
    s.Serve.requests
    (sum (fun w -> w.Twine_obs.Timeseries.w_count) ws);
  (* the enclave tracks tile the fleet track *)
  let enclave_total =
    List.fold_left
      (fun acc (eid, _) ->
        acc
        + sum
            (fun w -> w.Twine_obs.Timeseries.w_count)
            (Twine_obs.Timeseries.windows s.Serve.series
               ~track:(Printf.sprintf "e%d" eid)))
      0 s.Serve.epc_resident_by_enclave
  in
  Alcotest.(check int) "enclave tracks tile the fleet" s.Serve.requests
    enclave_total;
  (* the cumulative sketch folded every latency *)
  Alcotest.(check int) "sketch count" s.Serve.requests
    (Twine_obs.Sketch.count s.Serve.sketch);
  (* the whole-run evaluation rides those windows *)
  match s.Serve.slo with
  | None -> Alcotest.fail "slo eval missing"
  | Some (spec, ev) ->
      Alcotest.(check int) "spec threads through" slo_spec.Twine_obs.Slo.window_ns
        spec.Twine_obs.Slo.window_ns;
      Alcotest.(check int) "eval saw every window" (List.length ws)
        ev.Twine_obs.Slo.ev_windows;
      Alcotest.(check int) "eval saw every request" s.Serve.requests
        ev.Twine_obs.Slo.ev_total;
      Alcotest.(check int) "overs consistent"
        (sum (fun w -> w.Twine_obs.Timeseries.w_overs) ws)
        ev.Twine_obs.Slo.ev_overs

let test_slo_verdicts () =
  (* a generous objective passes; a tight one fails, deterministically *)
  let with_threshold t =
    { slo_config with Serve.slo = Some { slo_spec with Twine_obs.Slo.threshold_ns = t } }
  in
  let relaxed = Serve.run (with_threshold max_int) in
  (match relaxed.Serve.slo with
  | Some (_, ev) ->
      Alcotest.(check bool) "relaxed objective holds" false
        ev.Twine_obs.Slo.ev_violated;
      Alcotest.(check int) "no overs" 0 ev.Twine_obs.Slo.ev_overs;
      Alcotest.(check int) "no burn" 0 ev.Twine_obs.Slo.ev_burn_x1000
  | None -> Alcotest.fail "eval missing");
  let tight = Serve.run (with_threshold 1) in
  match tight.Serve.slo with
  | Some (_, ev) ->
      Alcotest.(check bool) "tight objective violated" true
        ev.Twine_obs.Slo.ev_violated;
      Alcotest.(check int) "every request over" tight.Serve.requests
        ev.Twine_obs.Slo.ev_overs
  | None -> Alcotest.fail "eval missing"

(* Query-stats registry: every request lands in exactly one entry of
   its enclave's registry, the fleet view is the merge, and the entries
   are the workload's three statement shapes under their normalized
   fingerprints. *)
let test_sqlstats_registry () =
  let open Twine_sqldb in
  let s = Serve.run small_config in
  let fleet = Sqlstat.entries s.Serve.sqlstats_fleet in
  Alcotest.(check int) "one entry per statement shape" 3 (List.length fleet);
  Alcotest.(check (list string)) "normalized fingerprints"
    [ "SELECT b , c FROM t WHERE a = ?";
      "SELECT count ( * ) , sum ( b ) FROM t WHERE a >= ? AND a < ?";
      "SELECT v FROM kv WHERE k = ?" ]
    (List.map (fun e -> e.Sqlstat.sq_fingerprint) fleet);
  Alcotest.(check int) "fleet counts cover every request"
    s.Serve.requests
    (List.fold_left (fun a e -> a + e.Sqlstat.sq_count) 0 fleet);
  (* fleet = merge of the per-enclave registries, byte-identically *)
  let remerged =
    List.fold_left
      (fun acc (_, reg) -> Sqlstat.merge acc reg)
      (Sqlstat.create ())
      s.Serve.sqlstats_by_enclave
  in
  Alcotest.(check string) "fleet is the merge"
    (Twine_obs.Json.to_string (Sqlstat.to_json s.Serve.sqlstats_fleet))
    (Twine_obs.Json.to_string (Sqlstat.to_json remerged));
  (* per-enclave latency sketches hold every latency the fleet saw *)
  let sketch_count reg =
    List.fold_left
      (fun a e -> a + Twine_obs.Sketch.count e.Sqlstat.sq_latency)
      0 (Sqlstat.entries reg)
  in
  Alcotest.(check int) "sketches cover every request" s.Serve.requests
    (List.fold_left
       (fun a (_, reg) -> a + sketch_count reg)
       0 s.Serve.sqlstats_by_enclave)

let test_stream_scale () =
  (* 10x the small config's requests, streaming: completes in flat
     memory with the books still balanced and every request windowed *)
  let s =
    Serve.run
      { slo_config with Serve.requests = 20_000; retain_requests = false }
  in
  Alcotest.(check int) "all requests served" 20_000 s.Serve.requests;
  Alcotest.(check int) "no request log" 0 (Array.length s.Serve.requests_log);
  Alcotest.(check int) "residue 0" 0 s.Serve.attribution_residue_ns;
  Alcotest.(check int) "sketch folded all" 20_000
    (Twine_obs.Sketch.count s.Serve.sketch);
  Alcotest.(check int) "windows hold all" 20_000
    (List.fold_left
       (fun a w -> a + w.Twine_obs.Timeseries.w_count)
       0 s.Serve.windows);
  Alcotest.(check bool) "books balance" true
    (Twine_obs.Ledger.balanced (Machine.ledger s.Serve.machine))

(* -- failure domain: chaos, failover, deadlines, retries, shedding -- *)

let chaos s =
  match Twine_sim.Chaos.parse s with
  | Ok spec -> Some spec
  | Error e -> failwith ("test chaos spec: " ^ e)

(* The extended conservation law: with a failover bucket in play, the
   per-request slices plus scheduler idle plus the failure domain's
   booked work must reproduce the serving-phase total exactly. *)
let check_conserves_failover label (s : Serve.stats) =
  let booked = s.Serve.ledger.Twine_obs.Ledger.booked_ns in
  Alcotest.(check int) (label ^ ": residue 0") 0 s.Serve.attribution_residue_ns;
  Alcotest.(check int)
    (label ^ ": slices + idle + failover = serving-phase booked total")
    booked
    (s.Serve.attributed_ns + s.Serve.unattributed_ns + s.Serve.failover_ns);
  Alcotest.(check int)
    (label ^ ": stats total = sum of per-request slices")
    s.Serve.attributed_ns
    (Array.fold_left
       (fun a r -> a + Serve.attributed_ns r)
       0 s.Serve.requests_log);
  Alcotest.(check int)
    (label ^ ": outcomes partition the workload")
    s.Serve.requests
    (s.Serve.served + s.Serve.shed + s.Serve.timed_out + s.Serve.failed)

let chaos_config =
  {
    small_config with
    Serve.requests = 1_500;
    chaos = chaos "seed=t;enclave.ecall=crash@40";
    retries = 3;
  }

let test_chaos_failover_recovers () =
  (* the acceptance scenario: one enclave crashes mid-run; the fleet
     detects it, destroys it, relaunches a replacement that recovers
     durable state, requeues the in-flight batch, and finishes the
     workload without failing the run *)
  let s = Serve.run chaos_config in
  Alcotest.(check bool) "an enclave was lost and relaunched" true
    (s.Serve.failovers >= 1);
  Alcotest.(check bool) "goodput survives the crash" true
    (s.Serve.goodput_rps > 0.);
  Alcotest.(check bool) "the crashed batch was retried" true
    (s.Serve.retries >= 1);
  Alcotest.(check bool) "recovery duration recorded" true
    (s.Serve.recovery_p99_ns > 0);
  Alcotest.(check bool) "failover work booked" true (s.Serve.failover_ns > 0);
  let l = Machine.ledger s.Serve.machine in
  List.iter
    (fun a ->
      Alcotest.(check bool) (a ^ " booked") true (Twine_obs.Ledger.ns l a > 0))
    [ "serve.failover.detect"; "serve.failover.teardown";
      "serve.failover.relaunch"; "serve.failover.recover" ];
  check_conserves_failover "chaos" s;
  Array.iter
    (fun r ->
      if r.Serve.outcome = Serve.Served then
        Alcotest.(check bool) "served requests record their attempts" true
          (r.Serve.attempts >= 1))
    s.Serve.requests_log

let test_destroy_relaunch_audit () =
  (* regression: destroy-then-relaunch must leave clean books — the
     machine-level conservation audit and the per-request law both hold
     with zero residue, and the fleet views track the live enclaves *)
  let s = Serve.run { chaos_config with Serve.requests = 1_000 } in
  Alcotest.(check bool) "relaunched" true (s.Serve.failovers >= 1);
  Alcotest.(check bool) "books balance after destroy+relaunch" true
    (Twine_obs.Ledger.balanced (Machine.ledger s.Serve.machine));
  check_conserves_failover "destroy+relaunch" s;
  Alcotest.(check int) "one residency row per live slot" s.Serve.enclaves
    (List.length s.Serve.epc_resident_by_enclave);
  Alcotest.(check int) "one eviction row per live slot" s.Serve.enclaves
    (List.length s.Serve.evictions_by_enclave)

let prop_chaos_modes_agree =
  (* satellite property: across seeds x batch x fleet x chaos rate, the
     retained and --stream runs of one (seed, config) produce
     byte-identical ledgers and twine-slo/v1 artifacts, and the
     extended conservation law holds exactly *)
  QCheck.Test.make ~name:"retained and stream chaos runs agree" ~count:6
    QCheck.(
      quad (oneofl [ "s1"; "s2"; "s3" ]) (oneofl [ 1; 7; 16 ])
        (oneofl [ 1; 3; 8 ])
        (oneofl [ 0.; 0.004; 0.02 ]))
    (fun (seed, batch, enclaves, rate) ->
      let spec =
        if rate = 0. then "seed=p;enclave.ecall=crash@30"
        else
          Printf.sprintf "seed=p;enclave.ecall=crash@30;enclave.ecall=fail%%%g"
            rate
      in
      let cfg =
        {
          small_config with
          Serve.seed;
          batch;
          enclaves;
          requests = 500;
          chaos = chaos spec;
          retries = 3;
          deadline_ns = 80_000_000;
        }
      in
      let r = Serve.run cfg in
      let t = Serve.run { cfg with Serve.retain_requests = false } in
      Serve.render_slo r = Serve.render_slo t
      && Twine_obs.Ledger.to_string r.Serve.ledger
         = Twine_obs.Ledger.to_string t.Serve.ledger
      && r.Serve.attribution_residue_ns = 0
      && t.Serve.attribution_residue_ns = 0
      && r.Serve.ledger.Twine_obs.Ledger.booked_ns
         = Array.fold_left
             (fun a q -> a + Serve.attributed_ns q)
             0 r.Serve.requests_log
           + r.Serve.unattributed_ns + r.Serve.failover_ns)

let test_deadline_expires () =
  (* a deadline shorter than typical queue wait: requests expire while
     queued, each exactly once, finish pinned at arrival + deadline *)
  let cfg =
    { small_config with Serve.requests = 800; deadline_ns = 300_000 }
  in
  let s = Serve.run cfg in
  Alcotest.(check bool) "some requests timed out" true (s.Serve.timed_out > 0);
  Alcotest.(check bool) "some still served" true (s.Serve.served > 0);
  Array.iter
    (fun r ->
      if r.Serve.outcome = Serve.Timed_out then begin
        (* timers drain at batch boundaries, so completion lands at or
           after the scheduled expiry — never before it *)
        Alcotest.(check bool) "finish >= arrival + deadline" true
          (r.Serve.finish_ns >= r.Serve.arrival_ns + cfg.Serve.deadline_ns);
        Alcotest.(check int) "expired while queued: never dispatched" 0
          r.Serve.attempts
      end)
    s.Serve.requests_log;
  check_conserves_failover "deadline" s;
  let off = Serve.run { cfg with Serve.deadline_ns = 0 } in
  Alcotest.(check int) "0 disables deadlines" 0 off.Serve.timed_out

let test_shed_depth () =
  (* an overloaded open loop with admission control: arrivals finding
     the queue at the depth limit fast-fail as Shed with no attempts
     and no cycle slice, and goodput keeps flowing *)
  let cfg =
    {
      small_config with
      Serve.enclaves = 2;
      requests = 1_200;
      mean_gap_ns = 300;
      shed_depth = 16;
    }
  in
  let s = Serve.run cfg in
  Alcotest.(check bool) "overload sheds" true (s.Serve.shed > 0);
  Alcotest.(check bool) "but keeps serving" true (s.Serve.served > 0);
  Array.iter
    (fun r ->
      if r.Serve.outcome = Serve.Shed then begin
        Alcotest.(check int) "shed at admission: no attempts" 0
          r.Serve.attempts;
        Alcotest.(check int) "shed requests carry no cycle slice" 0
          (Serve.attributed_ns r)
      end)
    s.Serve.requests_log;
  Alcotest.(check int) "availability counts only served requests"
    (s.Serve.served * 1_000_000 / cfg.Serve.requests)
    s.Serve.availability_ppm;
  check_conserves_failover "shed" s;
  let off = Serve.run { cfg with Serve.shed_depth = 0 } in
  Alcotest.(check int) "0 disables depth shedding" 0 off.Serve.shed

let test_retry_backoff_and_exhaustion () =
  (* transient entry faults requeue with backoff (no failover); a zero
     retry budget turns the same fault into Failed requests *)
  let cfg =
    {
      small_config with
      Serve.requests = 1_000;
      chaos = chaos "seed=r;enclave.ecall=fail%0.02";
      retries = 5;
    }
  in
  let s = Serve.run cfg in
  Alcotest.(check bool) "transient faults retried" true (s.Serve.retries > 0);
  Alcotest.(check int) "transient faults cause no failover" 0
    s.Serve.failovers;
  let retried =
    Array.to_list s.Serve.requests_log
    |> List.filter (fun r -> r.Serve.attempts > 1)
  in
  Alcotest.(check bool) "some requests took several attempts" true
    (retried <> []);
  List.iter
    (fun r ->
      Alcotest.(check bool) "backoff wait recorded" true
        (r.Serve.retry_wait_ns > 0))
    retried;
  Alcotest.(check int) "budget of 5 absorbs a 2% fault rate" 0 s.Serve.failed;
  check_conserves_failover "retry" s;
  let f =
    Serve.run
      { cfg with Serve.retries = 0; chaos = chaos "seed=r;enclave.ecall=fail@3" }
  in
  Alcotest.(check bool) "retry budget 0 fails the faulted batch" true
    (f.Serve.failed > 0);
  check_conserves_failover "exhausted" f

let () =
  Alcotest.run "twine_serve"
    [
      ( "workload",
        [
          Alcotest.test_case "deterministic" `Quick test_workload_deterministic;
          Alcotest.test_case "validates" `Quick test_workload_validates;
        ] );
      ( "replay",
        [
          Alcotest.test_case "byte-identical books" `Quick test_replay_identical;
          Alcotest.test_case "books balance" `Quick test_serving_books_balance;
          Alcotest.test_case "tracked sees the fleet" `Quick test_tracked_sees_fleet;
        ] );
      ( "batching",
        [
          Alcotest.test_case "amortises ecalls" `Quick
            test_batching_amortises_ecalls;
        ] );
      ( "shared-epc",
        [
          Alcotest.test_case "cross-enclave eviction" `Quick
            test_shared_epc_interference;
          Alcotest.test_case "fleet attribution" `Quick
            test_fleet_interference_attribution;
        ] );
      ( "attribution",
        [
          Alcotest.test_case "conserves across seeds/batch/fleet" `Quick
            test_attribution_conserves;
          Alcotest.test_case "conserves under EPC pressure" `Quick
            test_attribution_under_pressure;
          Alcotest.test_case "request trace replays byte-identical" `Quick
            test_request_trace_replays;
        ] );
      ( "blame",
        [
          Alcotest.test_case "EPC-cliff tail attribution" `Quick
            test_blame_cliff;
          Alcotest.test_case "p99 exemplar rids" `Quick test_p99_exemplars;
          Alcotest.test_case "sampler and queue high-water" `Quick
            test_sampler_and_depth_hwm;
          Alcotest.test_case "request spans on enclave tracks" `Quick
            test_request_spans_on_tracks;
        ] );
      ( "slo-plane",
        [
          Alcotest.test_case "stream matches retained" `Quick
            test_stream_matches_retained;
          Alcotest.test_case "window invariants" `Quick test_window_invariants;
          Alcotest.test_case "verdicts" `Quick test_slo_verdicts;
          Alcotest.test_case "streams 10x in flat memory" `Quick
            test_stream_scale;
        ] );
      ( "sqlstats",
        [
          Alcotest.test_case "fleet registry and merge" `Quick
            test_sqlstats_registry;
        ] );
      ( "failure-domain",
        [
          Alcotest.test_case "chaos crash fails over and recovers" `Quick
            test_chaos_failover_recovers;
          Alcotest.test_case "destroy+relaunch audits clean" `Quick
            test_destroy_relaunch_audit;
          Alcotest.test_case "deadlines expire queued requests" `Quick
            test_deadline_expires;
          Alcotest.test_case "depth shedding under overload" `Quick
            test_shed_depth;
          Alcotest.test_case "retry backoff and exhaustion" `Quick
            test_retry_backoff_and_exhaustion;
          QCheck_alcotest.to_alcotest prop_chaos_modes_agree;
        ] );
    ]
