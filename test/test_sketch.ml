(* The streaming SLO plane's numeric core: the mergeable quantile
   sketch's error and algebra laws, the tumbling-window series'
   close/zero-fill semantics, and the SLO grammar + burn-rate
   evaluator. These are the invariants `twine serve --stream` rests
   on: whatever order requests fold in, the fleet tails and verdicts
   must replay byte-identically and stay within the advertised
   relative error of ground truth. *)

open Twine_obs

let qc = QCheck_alcotest.to_alcotest

(* Latency-like values: a mix that lands in the exact small-value
   range, the mid binades and the deep log-bucketed tail. *)
let value_gen =
  QCheck.Gen.(
    frequency
      [ (3, int_range 0 100);
        (3, int_range 100 100_000);
        (3, int_range 100_000 1_000_000_000);
        (1, int_range 1_000_000_000 (1 lsl 45)) ])

let values_arb = QCheck.make QCheck.Gen.(list_size (int_range 1 300) value_gen)

let sketch_of values =
  let t = Sketch.create () in
  List.iter (Sketch.insert t) values;
  t

let bytes_of t = Json.to_string (Sketch.to_json t)

(* Ground truth: exact nearest-rank quantile over the sorted sample,
   with the same epsilon-guarded rank as the sketch. *)
let exact_quantile values q =
  let a = Array.of_list values in
  Array.sort compare a;
  let n = Array.length a in
  let r = int_of_float (ceil ((q *. float_of_int n) -. 1e-9)) in
  let r = if r < 1 then 1 else if r > n then n else r in
  a.(r - 1)

(* ------------------------------------------------------------------ *)
(* sketch: error bound and algebra                                     *)
(* ------------------------------------------------------------------ *)

let prop_quantile_alpha =
  QCheck.Test.make ~name:"sketch quantiles within alpha of exact" ~count:200
    (QCheck.pair values_arb
       (QCheck.make QCheck.Gen.(frequency
          [ (1, return 0.0); (1, return 1.0); (2, return 0.5);
            (2, return 0.99); (4, float_bound_inclusive 1.0) ])))
    (fun (values, q) ->
      let t = sketch_of values in
      match Sketch.quantile t q with
      | None -> false
      | Some est ->
          let exact = exact_quantile values q in
          abs (est - exact)
          <= int_of_float (Sketch.alpha *. float_of_int exact) + 1)

let prop_merge_commutative =
  QCheck.Test.make ~name:"sketch merge is commutative (byte-identical)"
    ~count:100
    (QCheck.pair values_arb values_arb)
    (fun (xs, ys) ->
      let a = sketch_of xs and b = sketch_of ys in
      bytes_of (Sketch.merge a b) = bytes_of (Sketch.merge b a))

let prop_merge_associative =
  QCheck.Test.make ~name:"sketch merge is associative (byte-identical)"
    ~count:100
    (QCheck.triple values_arb values_arb values_arb)
    (fun (xs, ys, zs) ->
      let a = sketch_of xs and b = sketch_of ys and c = sketch_of zs in
      bytes_of (Sketch.merge (Sketch.merge a b) c)
      = bytes_of (Sketch.merge a (Sketch.merge b c)))

let prop_insert_then_merge =
  QCheck.Test.make ~name:"split insert + merge = bulk insert" ~count:100
    (QCheck.pair values_arb QCheck.small_nat)
    (fun (values, cut) ->
      let n = List.length values in
      let cut = cut mod (n + 1) in
      let left = List.filteri (fun i _ -> i < cut) values in
      let right = List.filteri (fun i _ -> i >= cut) values in
      bytes_of (Sketch.merge (sketch_of left) (sketch_of right))
      = bytes_of (sketch_of values))

let prop_json_roundtrip =
  QCheck.Test.make ~name:"sketch JSON round-trip is byte-identical"
    ~count:100 values_arb
    (fun values ->
      let t = sketch_of values in
      match Sketch.of_json (Sketch.to_json t) with
      | Error _ -> false
      | Ok t' ->
          bytes_of t' = bytes_of t
          && Sketch.quantile t' 0.99 = Sketch.quantile t 0.99)

let test_sketch_basics () =
  let t = Sketch.create () in
  Alcotest.(check (option int)) "empty quantile" None (Sketch.quantile t 0.5);
  Alcotest.(check int) "empty count" 0 (Sketch.count t);
  List.iter (Sketch.insert t) [ 5; 5; 5; 1_000_000; 17 ];
  Alcotest.(check int) "count" 5 (Sketch.count t);
  Alcotest.(check int) "sum" 1_000_032 (Sketch.sum t);
  Alcotest.(check int) "min" 5 (Sketch.vmin t);
  Alcotest.(check int) "max" 1_000_000 (Sketch.vmax t);
  (* q=0 and q=1 are the tracked extremes, exact *)
  Alcotest.(check (option int)) "p0" (Some 5) (Sketch.quantile t 0.);
  Alcotest.(check (option int)) "p100" (Some 1_000_000) (Sketch.quantile t 1.);
  (* small values are exact (one bucket per value below 64) *)
  Alcotest.(check (option int)) "p50 exact small" (Some 5) (Sketch.quantile t 0.5);
  Alcotest.check_raises "negative insert"
    (Invalid_argument "Sketch.insert: negative value") (fun () ->
      Sketch.insert t (-1));
  Alcotest.check_raises "bad q" (Invalid_argument "Sketch.quantile: q outside [0,1]")
    (fun () -> ignore (Sketch.quantile t 1.5))

let test_sketch_json_rejects () =
  let reject what j =
    match Sketch.of_json j with
    | Ok _ -> Alcotest.failf "%s: accepted" what
    | Error _ -> ()
  in
  reject "wrong schema"
    (Json.Obj [ ("schema", Json.Str "nope/v1") ]);
  let t = sketch_of [ 1; 2; 3 ] in
  (match Sketch.to_json t with
  | Json.Obj fields ->
      reject "count mismatch"
        (Json.Obj
           (List.map
              (fun (k, v) -> if k = "count" then (k, Json.Num 99.) else (k, v))
              fields));
      reject "bucket out of range"
        (Json.Obj
           (List.map
              (fun (k, v) ->
                if k = "buckets" then
                  (k, Json.Arr [ Json.Arr [ Json.Num 1e9; Json.Num 3. ] ])
                else (k, v))
              fields))
  | _ -> Alcotest.fail "sketch json not an object")

(* ------------------------------------------------------------------ *)
(* timeseries: window close and zero-fill semantics                    *)
(* ------------------------------------------------------------------ *)

let test_timeseries_windows () =
  let closed = ref [] in
  let ts =
    Timeseries.create ~threshold_ns:100
      ~probe:(fun ~track:_ -> [ ("g", 7) ])
      ~on_close:(fun ~track w -> closed := (track, w.Timeseries.w_index) :: !closed)
      ~t0:1000 ~window_ns:10 ()
  in
  Timeseries.record ts ~now:1001 ~track:"a" ~latency_ns:50 ();
  Timeseries.record ts ~now:1005 ~track:"a" ~latency_ns:150
    ~comps:[ ("exec", 150) ] ();
  (* jumping to window 3 closes windows 0..2, zero-filling 1 and 2 *)
  Timeseries.record ts ~now:1035 ~track:"a" ~latency_ns:30 ();
  Timeseries.finish ts ~now:1040;
  let ws = Timeseries.windows ts ~track:"a" in
  Alcotest.(check int) "4 contiguous windows" 4 (List.length ws);
  let w0 = List.nth ws 0 and w1 = List.nth ws 1 and w3 = List.nth ws 3 in
  Alcotest.(check int) "w0 bounds" 1000 w0.Timeseries.w_start_ns;
  Alcotest.(check int) "w0 end" 1010 w0.Timeseries.w_end_ns;
  Alcotest.(check int) "w0 count" 2 w0.Timeseries.w_count;
  Alcotest.(check int) "w0 overs (strictly above 100)" 1 w0.Timeseries.w_overs;
  Alcotest.(check int) "w0 max" 150 w0.Timeseries.w_max_ns;
  Alcotest.(check (list (pair string int))) "w0 comps" [ ("exec", 150) ]
    w0.Timeseries.w_comps;
  Alcotest.(check (list (pair string int))) "w0 gauges probed" [ ("g", 7) ]
    w0.Timeseries.w_gauges;
  Alcotest.(check int) "zero-filled w1" 0 w1.Timeseries.w_count;
  Alcotest.(check int) "w3 count" 1 w3.Timeseries.w_count;
  Alcotest.(check (list (pair string int)))
    "close order: ascending per track"
    [ ("a", 0); ("a", 1); ("a", 2); ("a", 3) ]
    (List.rev !closed);
  (* cumulative sketch = all samples *)
  (match Timeseries.sketch ts ~track:"a" with
  | Some sk -> Alcotest.(check int) "cumulative sketch count" 3 (Sketch.count sk)
  | None -> Alcotest.fail "no cumulative sketch");
  Alcotest.check_raises "timestamp before open window"
    (Invalid_argument "Timeseries.record: timestamp before the open window")
    (fun () -> Timeseries.record ts ~now:1001 ~track:"a" ~latency_ns:1 ())

let test_timeseries_finish_aligns () =
  let ts = Timeseries.create ~t0:0 ~window_ns:10 () in
  Timeseries.record ts ~now:5 ~track:"a" ~latency_ns:1 ();
  Timeseries.record ts ~now:25 ~track:"b" ~latency_ns:1 ();
  Timeseries.finish ts ~now:30;
  Alcotest.(check int) "a closed through window 2" 3
    (List.length (Timeseries.windows ts ~track:"a"));
  Alcotest.(check int) "b closed through window 2" 3
    (List.length (Timeseries.windows ts ~track:"b"));
  Alcotest.(check (list string)) "tracks sorted" [ "a"; "b" ]
    (Timeseries.tracks ts)

(* ------------------------------------------------------------------ *)
(* slo: grammar round-trip and burn-rate evaluation                    *)
(* ------------------------------------------------------------------ *)

let test_slo_parse_render () =
  let roundtrip s =
    match Slo.parse s with
    | Error e -> Alcotest.failf "parse %s: %s" s e
    | Ok spec -> (
        let r = Slo.render spec in
        match Slo.parse r with
        | Error e -> Alcotest.failf "reparse %s: %s" r e
        | Ok spec' ->
            Alcotest.(check string) ("canonical fixpoint of " ^ s) r
              (Slo.render spec'))
  in
  List.iter roundtrip
    [ "p99<2ms@50ms,budget=0.1%";
      "p50<750us@1ms,budget=5%";
      "p99.9<1s@100ms,budget=0.01%,fast=2x3";
      "p95<1500ns@10us,budget=1%,fast=10x1,slow=2x20" ];
  (match Slo.parse "p99<2ms@50ms,budget=0.1%" with
  | Ok s ->
      Alcotest.(check int) "q_ppm" 990_000 s.Slo.q_ppm;
      Alcotest.(check int) "threshold" 2_000_000 s.Slo.threshold_ns;
      Alcotest.(check int) "window" 50_000_000 s.Slo.window_ns;
      Alcotest.(check int) "budget" 1000 s.Slo.budget_ppm;
      Alcotest.(check int) "default fast" 14_400 s.Slo.fast_x1000;
      Alcotest.(check int) "default slow windows" 5 s.Slo.slow_windows
  | Error e -> Alcotest.failf "parse: %s" e);
  List.iter
    (fun bad ->
      match Slo.parse bad with
      | Ok _ -> Alcotest.failf "accepted %s" bad
      | Error _ -> ())
    [ ""; "p99<2ms"; "q99<2ms@50ms,budget=0.1%"; "p99<2@50ms,budget=0.1%";
      "p99<2ms@50ms,budget=110%"; "p99<2ms@50ms,budget=0.1%,fast=0x1";
      "p101<2ms@50ms,budget=0.1%"; "p99<2ms@50ms,budget=0.1%,bogus=1" ]

(* Drive a synthetic series through Timeseries so w_overs is counted
   the same way serve does, then check the evaluator's arithmetic. *)
let test_slo_evaluate () =
  let spec =
    match Slo.parse "p50<100ns@10ns,budget=10%,fast=4x1,slow=2x3" with
    | Ok s -> s
    | Error e -> Alcotest.failf "spec: %s" e
  in
  let ts = Timeseries.create ~threshold_ns:spec.Slo.threshold_ns ~t0:0
      ~window_ns:spec.Slo.window_ns ()
  in
  (* window 0: 10 fast samples; windows 1-3: mostly over threshold *)
  for i = 0 to 9 do
    Timeseries.record ts ~now:i ~track:"fleet" ~latency_ns:50
      ~comps:[ ("exec", 50) ] ()
  done;
  for w = 1 to 3 do
    for i = 0 to 9 do
      Timeseries.record ts
        ~now:((w * 10) + i)
        ~track:"fleet"
        ~latency_ns:(if i < 8 then 500 else 50)
        ~comps:[ ("pager", (if i < 8 then 500 else 50)) ]
        ()
    done
  done;
  Timeseries.finish ts ~now:40;
  let ev = Slo.evaluate spec (Timeseries.windows ts ~track:"fleet") in
  Alcotest.(check int) "windows" 4 ev.Slo.ev_windows;
  Alcotest.(check int) "total" 40 ev.Slo.ev_total;
  Alcotest.(check int) "overs" 24 ev.Slo.ev_overs;
  (* burn = (24/40) / 10% = 6.0x *)
  Alcotest.(check int) "burn x1000" 6000 ev.Slo.ev_burn_x1000;
  Alcotest.(check bool) "violated" true ev.Slo.ev_violated;
  (* windowed p50 over threshold in windows 1-3 only *)
  Alcotest.(check (list int)) "violating windows" [ 1; 2; 3 ]
    (List.map (fun v -> v.Slo.vi_window) ev.Slo.ev_violations);
  (match ev.Slo.ev_violations with
  | v :: _ ->
      Alcotest.(check int) "violation bounds" 10 v.Slo.vi_start_ns;
      Alcotest.(check int) "violation overs" 8 v.Slo.vi_overs;
      Alcotest.(check string) "violation blame" "pager" v.Slo.vi_blame
  | [] -> Alcotest.fail "no violations");
  (* fast rule: burn >= 4x over 1 trailing window -> fires at windows
     1,2,3 (8/10 over = 8x). slow rule: >= 2x over 3 trailing windows:
     window 2 sees (8+8+0)/30 = 5.33x... window index 2 range covers
     0-2: 16/30 over budget 10% = 5.33x >= 2x -> fires at window 2. *)
  (match ev.Slo.ev_first_fast_ns with
  | Some t -> Alcotest.(check int) "first fast at end of window 1" 20 t
  | None -> Alcotest.fail "fast never fired");
  (match ev.Slo.ev_first_slow_ns with
  | Some t -> Alcotest.(check int) "first slow at end of window 2" 30 t
  | None -> Alcotest.fail "slow never fired");
  let empty = Slo.evaluate spec [] in
  Alcotest.(check bool) "empty series not violated" false
    empty.Slo.ev_violated;
  Alcotest.(check int) "empty burn" 0 empty.Slo.ev_burn_x1000

let () =
  Alcotest.run "twine sketch/slo"
    [
      ( "sketch",
        [
          Alcotest.test_case "basics and extremes" `Quick test_sketch_basics;
          Alcotest.test_case "json rejects malformed" `Quick
            test_sketch_json_rejects;
          qc prop_quantile_alpha;
          qc prop_merge_commutative;
          qc prop_merge_associative;
          qc prop_insert_then_merge;
          qc prop_json_roundtrip;
        ] );
      ( "timeseries",
        [
          Alcotest.test_case "window close, zero-fill, probe" `Quick
            test_timeseries_windows;
          Alcotest.test_case "finish aligns tracks" `Quick
            test_timeseries_finish_aligns;
        ] );
      ( "slo",
        [
          Alcotest.test_case "grammar round-trips" `Quick test_slo_parse_render;
          Alcotest.test_case "burn-rate evaluation" `Quick test_slo_evaluate;
        ] );
    ]
