(* Guest-level calling-context profiler: shadow-stack correctness
   (including traps and reentrant host calls), interpreter-vs-AoT
   parity, folded-stack output, and name-section round-tripping. *)

open Twine_wasm
open Twine_obs

let contains haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

(* Attach a profiler to an instance exactly as Runtime.run does. *)
let attach prof (inst : Instance.t) =
  Profile.set_namer prof (fun i ->
      match Ast.func_name inst.Instance.module_ i with
      | Some n -> n
      | None -> Printf.sprintf "func[%d]" i);
  inst.Instance.hooks <-
    Some
      {
        Instance.on_enter =
          (fun i -> Profile.enter prof ~fuel:inst.Instance.fuel_used i);
        Instance.on_exit =
          (fun i -> Profile.exit prof ~fuel:inst.Instance.fuel_used i);
      }

let fn_by_name prof name =
  match
    List.find_opt (fun f -> f.Profile.fn_name = name) (Profile.functions prof)
  with
  | Some f -> f
  | None -> Alcotest.failf "function %s not in profile" name

(* A comparable engine-independent view (cycles depend on the clock). *)
let flat prof =
  List.map
    (fun (f : Profile.fn) ->
      (f.Profile.fn_name, f.Profile.calls, f.Profile.self_fuel, f.Profile.total_fuel))
    (Profile.functions prof)

let two_level_wat =
  {|(module
      (func $leaf (result i32) (i32.const 2) (i32.const 3) (i32.add))
      (func $main (export "go") (result i32)
        (call $leaf) (i32.const 1) (i32.add)))|}

let run_two_level ~engine =
  let inst = Interp.instantiate (Wat.parse two_level_wat) in
  if engine = `Aot then ignore (Aot.compile_instance inst);
  let prof = Profile.create () in
  attach prof inst;
  ignore (Interp.invoke inst "go" []);
  (prof, Interp.fuel_used inst)

let test_shadow_stack_attribution () =
  List.iter
    (fun engine ->
      let prof, fuel = run_two_level ~engine in
      Alcotest.(check int) "all fuel attributed" fuel (Profile.total_fuel prof);
      Alcotest.(check int) "stack balanced" 0 (Profile.depth prof);
      let main = fn_by_name prof "main" and leaf = fn_by_name prof "leaf" in
      (* main: call+const+add = 3 self; leaf: const+const+add = 3 self *)
      Alcotest.(check int) "main self" 3 main.Profile.self_fuel;
      Alcotest.(check int) "leaf self" 3 leaf.Profile.self_fuel;
      Alcotest.(check int) "main total = self + callee" 6 main.Profile.total_fuel;
      Alcotest.(check int) "leaf total" 3 leaf.Profile.total_fuel;
      Alcotest.(check int) "main calls" 1 main.Profile.calls;
      Alcotest.(check int) "leaf calls" 1 leaf.Profile.calls;
      Alcotest.(check (list (pair int int)))
        "call edges" [ (-1, 1); (1, 0) ]
        (List.map fst (Profile.edges prof)))
    [ `Interp; `Aot ]

let test_engine_parity_two_level () =
  let pi, fi = run_two_level ~engine:`Interp in
  let pa, fa = run_two_level ~engine:`Aot in
  Alcotest.(check int) "fuel parity" fi fa;
  Alcotest.(check bool) "per-function parity" true (flat pi = flat pa)

(* Every PolyBench kernel must retire the identical instruction stream
   under both engines — the profiler doubles as a differential check. *)
let test_engine_parity_polybench () =
  List.iter
    (fun k ->
      let profiled engine =
        let prof = Profile.create () in
        let hooks (inst : Instance.t) =
          attach prof inst;
          match inst.Instance.hooks with Some h -> h | None -> assert false
        in
        let r = Twine_polybench.Suite.run_wasm ~hooks ~engine k in
        (prof, r.Twine_polybench.Suite.fuel)
      in
      let pi, fi = profiled `Interp in
      let pa, fa = profiled `Aot in
      let name = k.Twine_polybench.Kernel_dsl.name in
      Alcotest.(check int) (name ^ ": fuel parity") fi fa;
      Alcotest.(check bool) (name ^ ": nonzero") true (fi > 0);
      Alcotest.(check bool)
        (name ^ ": per-function parity")
        true
        (flat pi = flat pa))
    (Twine_polybench.Kernels.all ~scale:0.2 ())

let test_hostcall_attribution () =
  (* a fake virtual clock bumped only inside the host function: all of
     its cost must land in the *calling* Wasm frame's self cycles *)
  let clock = ref 0 in
  let wat =
    {|(module
        (import "env" "tick" (func $tick))
        (func $busy (export "busy") (call $tick) (call $tick)))|}
  in
  let tick =
    Instance.host_func ~name:"tick"
      { Types.params = []; results = [] }
      (fun _ ->
        clock := !clock + 500;
        [])
  in
  let inst =
    Interp.instantiate ~imports:[ ("env", "tick", Instance.Extern_func tick) ]
      (Wat.parse wat)
  in
  let prof = Profile.create ~now:(fun () -> !clock) () in
  attach prof inst;
  ignore (Interp.invoke inst "busy" []);
  let busy = fn_by_name prof "busy" in
  Alcotest.(check int) "hostcall cycles on caller self" 1000 busy.Profile.self_cycles;
  Alcotest.(check int) "totals match" 1000 busy.Profile.total_cycles;
  (* the host function itself never appears as a frame *)
  Alcotest.(check int) "one profiled function" 1
    (List.length (Profile.functions prof))

let trap_wat =
  {|(module
      (func $boom unreachable)
      (func $mid (call $boom))
      (func $top (export "go") (call $mid)))|}

let test_trap_backtrace () =
  List.iter
    (fun engine ->
      let inst = Interp.instantiate (Wat.parse trap_wat) in
      if engine = `Aot then ignore (Aot.compile_instance inst);
      let prof = Profile.create () in
      attach prof inst;
      match Interp.invoke inst "go" [] with
      | _ -> Alcotest.fail "expected trap"
      | exception (Values.Trap msg as e) ->
          (* message itself is unchanged; context rides out-of-band *)
          Alcotest.(check string) "trap message" "unreachable executed" msg;
          Alcotest.(check (list string))
            "backtrace innermost-first" [ "boom"; "mid"; "top" ]
            (Interp.trap_backtrace e);
          Alcotest.(check string) "rendered context"
            "unreachable executed (in boom)\n\
            \  called from mid\n\
            \  called from top"
            (Interp.trap_message e);
          (* unwinding popped every shadow frame *)
          Alcotest.(check int) "stack balanced after trap" 0 (Profile.depth prof);
          let boom = fn_by_name prof "boom" in
          Alcotest.(check int) "trapping frame recorded" 1 boom.Profile.calls)
    [ `Interp; `Aot ]

let test_trap_backtrace_unprofiled () =
  let inst = Interp.instantiate (Wat.parse trap_wat) in
  match Interp.invoke inst "go" [] with
  | _ -> Alcotest.fail "expected trap"
  | exception (Values.Trap _ as e) ->
      Alcotest.(check (list string))
        "backtrace without hooks" [ "boom"; "mid"; "top" ]
        (Interp.trap_backtrace e)

let test_reentrant_host_call () =
  (* guest -> host -> guest again: the inner activation must nest under
     the outer frame and the stack must stay balanced *)
  let inst_ref = ref None in
  let cb =
    Instance.host_func ~name:"cb"
      { Types.params = []; results = [] }
      (fun _ ->
        (match !inst_ref with
        | Some inst -> ignore (Interp.invoke inst "inner" [])
        | None -> assert false);
        [])
  in
  let wat =
    {|(module
        (import "env" "cb" (func $cb))
        (func $inner (export "inner") (drop (i32.const 1)))
        (func $outer (export "outer") (call $cb)))|}
  in
  let inst =
    Interp.instantiate ~imports:[ ("env", "cb", Instance.Extern_func cb) ]
      (Wat.parse wat)
  in
  inst_ref := Some inst;
  let prof = Profile.create () in
  attach prof inst;
  ignore (Interp.invoke inst "outer" []);
  Alcotest.(check int) "balanced" 0 (Profile.depth prof);
  let paths = ref [] in
  Profile.iter prof (fun ~stack ~calls:_ ~self_fuel:_ ~self_cycles:_ ->
      paths := List.map (Profile.name prof) stack :: !paths);
  Alcotest.(check bool) "inner nests under outer" true
    (List.mem [ "outer"; "inner" ] !paths);
  Alcotest.(check int) "all fuel attributed"
    (Interp.fuel_used inst) (Profile.total_fuel prof)

let test_recursion_totals () =
  let wat =
    {|(module
        (func $down (export "down") (param i32)
          (if (i32.ne (local.get 0) (i32.const 0))
            (then (call $down (i32.sub (local.get 0) (i32.const 1)))))))|}
  in
  let inst = Interp.instantiate (Wat.parse wat) in
  let prof = Profile.create () in
  attach prof inst;
  ignore (Interp.invoke inst "down" [ Values.I32 5l ]);
  let down = fn_by_name prof "down" in
  Alcotest.(check int) "activations" 6 down.Profile.calls;
  (* recursion counted once per outermost activation: the total equals
     everything attributed, not a multiple of it *)
  Alcotest.(check int) "total not double-counted"
    (Profile.total_fuel prof) down.Profile.total_fuel;
  Alcotest.(check int) "self = total for self-recursive leaf"
    down.Profile.self_fuel down.Profile.total_fuel

let test_folded_format () =
  let prof, _ = run_two_level ~engine:`Interp in
  let folded = Trace_export.folded prof in
  Alcotest.(check string) "folded stacks" "main 3\nmain;leaf 3\n" folded;
  (* each line must parse as "path<space>positive-int" *)
  List.iter
    (fun line ->
      match String.rindex_opt line ' ' with
      | None -> Alcotest.failf "bad folded line: %s" line
      | Some i ->
          let n = String.sub line (i + 1) (String.length line - i - 1) in
          Alcotest.(check bool) "positive weight" true (int_of_string n > 0))
    (String.split_on_char '\n' (String.trim folded));
  let by_cycles = Trace_export.folded ~metric:`Cycles prof in
  Alcotest.(check string) "no cycles on a constant clock" "" by_cycles

let test_name_section_roundtrip () =
  let m = Wat.parse trap_wat in
  Alcotest.(check (list (pair int string)))
    "wat $ids collected" [ (0, "boom"); (1, "mid"); (2, "top") ]
    m.Ast.names;
  let m' = Binary.decode (Binary.encode m) in
  Alcotest.(check bool) "module round-trips" true (m = m');
  Alcotest.(check (option string)) "func_name from name section"
    (Some "mid") (Binary.func_name m' 1);
  (* encoding is canonical: a second round-trip is byte-identical *)
  Alcotest.(check string) "stable encoding" (Binary.encode m) (Binary.encode m')

let test_name_fallbacks () =
  (* no name section: exports, then module.name for imports *)
  let wat =
    {|(module
        (import "env" "tick" (func (param i32)))
        (func (export "visible") (drop (i32.const 1)))
        (func (drop (i32.const 2))))|}
  in
  let m = Wat.parse wat in
  Alcotest.(check (list (pair int string))) "no debug names" [] m.Ast.names;
  Alcotest.(check (option string)) "import fallback" (Some "env.tick")
    (Ast.func_name m 0);
  Alcotest.(check (option string)) "export fallback" (Some "visible")
    (Ast.func_name m 1);
  Alcotest.(check (option string)) "anonymous" None (Ast.func_name m 2)

let test_disabled_profiler_is_free () =
  (* identical fuel with hooks absent: metering is independent of the
     observer, and no hook means one [None] branch per call *)
  let run hooked =
    let inst = Interp.instantiate (Wat.parse two_level_wat) in
    if hooked then attach (Profile.create ()) inst;
    ignore (Interp.invoke inst "go" []);
    Interp.fuel_used inst
  in
  Alcotest.(check int) "same fuel" (run false) (run true)

let test_report_rendering () =
  let prof, _ = run_two_level ~engine:`Aot in
  let table = Report.profile_table prof in
  Alcotest.(check bool) "table lists main" true (contains table "main");
  let obs = Obs.create () in
  let rendered = Report.render ~profile:prof obs in
  Alcotest.(check bool) "render has hot section" true
    (contains rendered "hot wasm functions");
  let json = Report.to_json ~profile:prof obs in
  Alcotest.(check bool) "json has wasm_profile" true
    (contains json "\"wasm_profile\"");
  Alcotest.(check bool) "json has self_instr" true
    (contains json "\"self_instr\":3")

let () =
  Alcotest.run "twine_profile"
    [
      ( "shadow-stack",
        [
          Alcotest.test_case "exact attribution (both engines)" `Quick
            test_shadow_stack_attribution;
          Alcotest.test_case "hostcall cycles to caller" `Quick
            test_hostcall_attribution;
          Alcotest.test_case "reentrant host call" `Quick test_reentrant_host_call;
          Alcotest.test_case "recursion totals" `Quick test_recursion_totals;
          Alcotest.test_case "disabled profiler is free" `Quick
            test_disabled_profiler_is_free;
        ] );
      ( "engine-parity",
        [
          Alcotest.test_case "two-level module" `Quick test_engine_parity_two_level;
          Alcotest.test_case "all polybench kernels" `Slow
            test_engine_parity_polybench;
        ] );
      ( "traps",
        [
          Alcotest.test_case "symbolic backtrace (both engines)" `Quick
            test_trap_backtrace;
          Alcotest.test_case "backtrace without profiler" `Quick
            test_trap_backtrace_unprofiled;
        ] );
      ( "export",
        [
          Alcotest.test_case "folded stacks" `Quick test_folded_format;
          Alcotest.test_case "report + json" `Quick test_report_rendering;
        ] );
      ( "names",
        [
          Alcotest.test_case "name-section round-trip" `Quick
            test_name_section_roundtrip;
          Alcotest.test_case "fallback symbolication" `Quick test_name_fallbacks;
        ] );
    ]
