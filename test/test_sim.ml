(* Simulation substrate: virtual clock, LRU cache. (The former Meter
   accumulators were folded into the Twine_obs registry — see
   test_obs.ml for the accounting coverage.) *)

open Twine_sim

let test_clock_basic () =
  let c = Clock.create () in
  Alcotest.(check int) "starts at zero" 0 (Clock.now_ns c);
  Clock.advance c 100;
  Clock.advance c 50;
  Alcotest.(check int) "accumulates" 150 (Clock.now_ns c);
  Alcotest.(check int) "elapsed" 50 (Clock.elapsed_since c 100);
  Alcotest.check_raises "negative" (Invalid_argument "Clock.advance: negative")
    (fun () -> Clock.advance c (-1))

let test_lru_basic () =
  let l = Lru.create ~capacity:2 () in
  Alcotest.(check (option (pair int string))) "no evict" None (Lru.put l 1 "a");
  Alcotest.(check (option (pair int string))) "no evict 2" None (Lru.put l 2 "b");
  Alcotest.(check (option string)) "find 1" (Some "a") (Lru.find l 1);
  (* 2 is now LRU; inserting 3 evicts it *)
  Alcotest.(check (option (pair int string))) "evicts lru" (Some (2, "b")) (Lru.put l 3 "c");
  Alcotest.(check bool) "2 gone" false (Lru.mem l 2);
  Alcotest.(check int) "length" 2 (Lru.length l)

let test_lru_update_promotes () =
  let l = Lru.create ~capacity:2 () in
  ignore (Lru.put l 1 "a");
  ignore (Lru.put l 2 "b");
  ignore (Lru.put l 1 "a2");  (* update in place; promotes 1 *)
  Alcotest.(check (option string)) "updated" (Some "a2") (Lru.peek l 1);
  Alcotest.(check (option (pair int string))) "evicts 2" (Some (2, "b")) (Lru.put l 3 "c")

let test_lru_peek_no_promote () =
  let l = Lru.create ~capacity:2 () in
  ignore (Lru.put l 1 "a");
  ignore (Lru.put l 2 "b");
  ignore (Lru.peek l 1);
  (* 1 was not promoted, so it is still LRU *)
  Alcotest.(check (option (pair int string))) "evicts 1" (Some (1, "a")) (Lru.put l 3 "c")

let test_lru_remove () =
  let l = Lru.create ~capacity:3 () in
  ignore (Lru.put l 1 "a");
  ignore (Lru.put l 2 "b");
  Alcotest.(check (option string)) "removed value" (Some "a") (Lru.remove l 1);
  Alcotest.(check (option string)) "gone" None (Lru.remove l 1);
  Alcotest.(check int) "length" 1 (Lru.length l);
  Alcotest.(check (list (pair int string))) "to_list" [ (2, "b") ] (Lru.to_list l)

let test_lru_set_capacity () =
  let l = Lru.create ~capacity:4 () in
  List.iter (fun i -> ignore (Lru.put l i (string_of_int i))) [ 1; 2; 3; 4 ];
  let evicted = Lru.set_capacity l 2 in
  Alcotest.(check (list (pair int string))) "evicted lru-first"
    [ (1, "1"); (2, "2") ] evicted;
  Alcotest.(check int) "capacity" 2 (Lru.capacity l);
  Alcotest.(check (list (pair int string))) "mru order" [ (4, "4"); (3, "3") ]
    (Lru.to_list l)

let test_lru_clear () =
  let l = Lru.create ~capacity:2 () in
  ignore (Lru.put l 1 "a");
  Lru.clear l;
  Alcotest.(check int) "empty" 0 (Lru.length l);
  ignore (Lru.put l 5 "e");
  Alcotest.(check (option string)) "usable after clear" (Some "e") (Lru.find l 5)

(* Model-based property test: compare against a naive list implementation. *)
let prop_lru_model =
  let open QCheck in
  Test.make ~name:"lru matches reference model" ~count:300
    (pair (int_range 1 8) (small_list (pair (int_range 0 9) (int_range 0 2))))
    (fun (cap, ops) ->
      let lru = Twine_sim.Lru.create ~capacity:cap () in
      (* model: assoc list, MRU first *)
      let model = ref [] in
      let model_find k =
        match List.assoc_opt k !model with
        | None -> None
        | Some v ->
            model := (k, v) :: List.remove_assoc k !model;
            Some v
      in
      let model_put k v =
        if List.mem_assoc k !model then
          model := (k, v) :: List.remove_assoc k !model
        else begin
          if List.length !model >= cap then begin
            let rest = List.rev (List.tl (List.rev !model)) in
            model := rest
          end;
          model := (k, v) :: !model
        end
      in
      List.for_all
        (fun (k, op) ->
          match op with
          | 0 -> (
              let a = Twine_sim.Lru.find lru k and b = model_find k in
              a = b)
          | 1 ->
              ignore (Twine_sim.Lru.put lru k k);
              model_put k k;
              true
          | _ ->
              let a = Twine_sim.Lru.remove lru k in
              let b = List.assoc_opt k !model in
              model := List.remove_assoc k !model;
              a = b)
        ops
      && Twine_sim.Lru.to_list lru = !model)

(* --- Eventq --- *)

let test_eventq_order () =
  let q = Twine_sim.Eventq.create () in
  Twine_sim.Eventq.add q ~at:30 "c";
  Twine_sim.Eventq.add q ~at:10 "a";
  Twine_sim.Eventq.add q ~at:20 "b";
  Alcotest.(check int) "length" 3 (Twine_sim.Eventq.length q);
  Alcotest.(check (option (pair int string))) "peek" (Some (10, "a"))
    (Twine_sim.Eventq.peek q);
  Alcotest.(check (option (pair int string))) "pop a" (Some (10, "a"))
    (Twine_sim.Eventq.pop q);
  Alcotest.(check (option (pair int string))) "pop b" (Some (20, "b"))
    (Twine_sim.Eventq.pop q);
  Alcotest.(check (option (pair int string))) "pop c" (Some (30, "c"))
    (Twine_sim.Eventq.pop q);
  Alcotest.(check (option (pair int string))) "empty" None (Twine_sim.Eventq.pop q)

let test_eventq_ties_fifo () =
  (* same timestamp: insertion order decides — scheduler determinism *)
  let q = Twine_sim.Eventq.create () in
  List.iter (fun s -> Twine_sim.Eventq.add q ~at:5 s) [ "x"; "y"; "z" ];
  let popped = List.init 3 (fun _ -> snd (Option.get (Twine_sim.Eventq.pop q))) in
  Alcotest.(check (list string)) "fifo among ties" [ "x"; "y"; "z" ] popped

let test_eventq_drain_until () =
  let q = Twine_sim.Eventq.create () in
  List.iteri (fun i s -> Twine_sim.Eventq.add q ~at:(i * 10) s) [ "a"; "b"; "c"; "d" ];
  let seen = ref [] in
  Twine_sim.Eventq.drain_until q ~now:20 (fun ~at s -> seen := (at, s) :: !seen);
  Alcotest.(check (list (pair int string))) "due events, earliest first"
    [ (0, "a"); (10, "b"); (20, "c") ]
    (List.rev !seen);
  Alcotest.(check int) "one left" 1 (Twine_sim.Eventq.length q);
  Alcotest.check_raises "negative time" (Invalid_argument "Eventq.add: negative time")
    (fun () -> Twine_sim.Eventq.add q ~at:(-1) "bad")

let test_eventq_cancel_before_fire () =
  let q = Twine_sim.Eventq.create () in
  Twine_sim.Eventq.add q ~at:10 "a";
  let b = Twine_sim.Eventq.schedule q ~at:20 "b" in
  Twine_sim.Eventq.add q ~at:30 "c";
  Twine_sim.Eventq.cancel q b;
  Alcotest.(check int) "length drops" 2 (Twine_sim.Eventq.length q);
  Alcotest.(check (option (pair int string))) "pop a" (Some (10, "a"))
    (Twine_sim.Eventq.pop q);
  Alcotest.(check (option int)) "peek_time skips tombstone" (Some 30)
    (Twine_sim.Eventq.peek_time q);
  Alcotest.(check (option (pair int string))) "pop skips b" (Some (30, "c"))
    (Twine_sim.Eventq.pop q);
  Alcotest.(check (option (pair int string))) "empty" None
    (Twine_sim.Eventq.pop q)

let test_eventq_cancel_after_fire () =
  (* cancelling an event that already fired (or was already cancelled)
     is a no-op — the serving fleet revokes deadline timers without
     tracking whether they already popped *)
  let q = Twine_sim.Eventq.create () in
  let a = Twine_sim.Eventq.schedule q ~at:5 "a" in
  Twine_sim.Eventq.add q ~at:7 "b";
  Alcotest.(check (option (pair int string))) "a fires" (Some (5, "a"))
    (Twine_sim.Eventq.pop q);
  Twine_sim.Eventq.cancel q a;
  Twine_sim.Eventq.cancel q a;
  Alcotest.(check int) "b untouched" 1 (Twine_sim.Eventq.length q);
  Alcotest.(check (option (pair int string))) "b fires" (Some (7, "b"))
    (Twine_sim.Eventq.pop q);
  let c = Twine_sim.Eventq.schedule q ~at:9 "c" in
  Twine_sim.Eventq.cancel q c;
  Twine_sim.Eventq.cancel q c;
  Alcotest.(check int) "double cancel counts once" 0
    (Twine_sim.Eventq.length q)

let test_eventq_cancel_keeps_fifo_ties () =
  (* cancelling one of several same-time events must not disturb the
     insertion order of the survivors *)
  let q = Twine_sim.Eventq.create () in
  Twine_sim.Eventq.add q ~at:5 "w";
  let x = Twine_sim.Eventq.schedule q ~at:5 "x" in
  Twine_sim.Eventq.add q ~at:5 "y";
  Twine_sim.Eventq.add q ~at:5 "z";
  Twine_sim.Eventq.cancel q x;
  let popped =
    List.init 3 (fun _ -> snd (Option.get (Twine_sim.Eventq.pop q)))
  in
  Alcotest.(check (list string)) "fifo among survivors" [ "w"; "y"; "z" ]
    popped

let prop_eventq_sorted =
  QCheck.Test.make ~name:"eventq pops in nondecreasing time order" ~count:200
    QCheck.(list (int_bound 1000))
    (fun times ->
      let q = Twine_sim.Eventq.create () in
      List.iter (fun t -> Twine_sim.Eventq.add q ~at:t t) times;
      let rec drain acc =
        match Twine_sim.Eventq.pop q with
        | Some (t, _) -> drain (t :: acc)
        | None -> List.rev acc
      in
      let popped = drain [] in
      popped = List.sort compare times)

(* --- Fault: activation windows and re-arm determinism --- *)

let test_fault_window () =
  let now = ref 0 in
  let p =
    Fault.plan ~seed:"w"
      [ Fault.rule ~prob:1.0 ~from_ns:100 ~until_ns:200 "site" Fault.Drop ]
  in
  Fault.arm ~now:(fun () -> !now) p;
  Fun.protect ~finally:Fault.disarm (fun () ->
      now := 50;
      Alcotest.(check bool) "before window" true (Fault.consult "site" = None);
      now := 100;
      Alcotest.(check bool) "window open (inclusive)" true
        (Fault.consult "site" = Some Fault.Drop);
      now := 199;
      Alcotest.(check bool) "inside window" true
        (Fault.consult "site" = Some Fault.Drop);
      now := 200;
      Alcotest.(check bool) "window closed (exclusive)" true
        (Fault.consult "site" = None);
      now := 250;
      Alcotest.(check bool) "after window" true (Fault.consult "site" = None));
  (* a windowed rule armed without a clock source never fires *)
  Fault.arm p;
  Fun.protect ~finally:Fault.disarm (fun () ->
      Alcotest.(check bool) "no clock, no fire" true
        (Fault.consult "site" = None))

let test_fault_window_rearm_determinism () =
  (* out-of-window operations consume no randomness, so the in-window
     injection pattern replays identically even when the two runs see
     different numbers of out-of-window operations *)
  let now = ref 0 in
  let p =
    Fault.plan ~seed:"rearm"
      [ Fault.rule ~prob:0.5 ~from_ns:1000 "site" Fault.Fail ]
  in
  let drive ~cold ~hot =
    Fault.arm ~now:(fun () -> !now) p;
    Fun.protect ~finally:Fault.disarm (fun () ->
        now := 0;
        for _ = 1 to cold do
          ignore (Fault.consult "site")
        done;
        now := 5000;
        List.init hot (fun _ -> Fault.consult "site" <> None))
  in
  let run1 = drive ~cold:17 ~hot:40 in
  let run2 = drive ~cold:0 ~hot:40 in
  Alcotest.(check (list bool)) "same in-window pattern" run1 run2;
  Alcotest.(check bool) "some injections fired" true
    (List.exists Fun.id run1)

(* --- Chaos: spec grammar round-trip and window rebasing --- *)

let chaos_ok s =
  match Chaos.parse s with
  | Ok spec -> spec
  | Error msg -> Alcotest.failf "parse %S: %s" s msg

let test_chaos_roundtrip () =
  List.iter
    (fun s ->
      let spec = chaos_ok s in
      let r = Chaos.render spec in
      Alcotest.(check bool)
        (Printf.sprintf "%S round-trips via %S" s r)
        true
        (chaos_ok r = spec))
    [ "enclave.ecall=crash@200";
      "seed=c1;enclave.ecall=fail%0.01x5[10ms..50ms]";
      "backing.write=torn:0.5%0.25;backing.read=delay:900ns%0.1";
      "enclave.ecall=drop%1.0[..2us];svfs.sync=corrupt@3x2";
      "seed=z;enclave.ecall=fail%0.001[1ms..]" ]

let test_chaos_parse_errors () =
  List.iter
    (fun s ->
      match Chaos.parse s with
      | Ok _ -> Alcotest.failf "expected %S to be rejected" s
      | Error _ -> ())
    [ ""; "enclave.ecall"; "enclave.ecall=explode"; "=crash";
      "enclave.ecall=crash@0"; "enclave.ecall=fail%2.0";
      "enclave.ecall=crash[5ms..2ms]"; "enclave.ecall=crash@2x0";
      "backing.read=delay:900ns"; "seed=" ]

let test_chaos_to_plan_rebases_windows () =
  (* [100..200] relative, armed with t0 = 1000: fires only in
     [1100, 1200) of machine time *)
  let spec = chaos_ok "seed=rb;site=drop%1.0[100..200]" in
  let plan = Chaos.to_plan ~t0:1000 spec in
  let now = ref 0 in
  Fault.arm ~now:(fun () -> !now) plan;
  Fun.protect ~finally:Fault.disarm (fun () ->
      now := 150;
      Alcotest.(check bool) "relative time not rebased" true
        (Fault.consult "site" = None);
      now := 1150;
      Alcotest.(check bool) "inside rebased window" true
        (Fault.consult "site" = Some Fault.Drop);
      now := 1200;
      Alcotest.(check bool) "rebased window closes" true
        (Fault.consult "site" = None))

let qc = QCheck_alcotest.to_alcotest

let suite =
  [ ("clock", [ Alcotest.test_case "basic" `Quick test_clock_basic ]);
    ("lru", [
      Alcotest.test_case "insert/evict" `Quick test_lru_basic;
      Alcotest.test_case "update promotes" `Quick test_lru_update_promotes;
      Alcotest.test_case "peek does not promote" `Quick test_lru_peek_no_promote;
      Alcotest.test_case "remove" `Quick test_lru_remove;
      Alcotest.test_case "set_capacity" `Quick test_lru_set_capacity;
      Alcotest.test_case "clear" `Quick test_lru_clear;
      qc prop_lru_model;
    ]);
    ("eventq", [
      Alcotest.test_case "time order" `Quick test_eventq_order;
      Alcotest.test_case "ties are fifo" `Quick test_eventq_ties_fifo;
      Alcotest.test_case "drain_until" `Quick test_eventq_drain_until;
      Alcotest.test_case "cancel before fire" `Quick
        test_eventq_cancel_before_fire;
      Alcotest.test_case "cancel after fire is a no-op" `Quick
        test_eventq_cancel_after_fire;
      Alcotest.test_case "cancel keeps fifo ties" `Quick
        test_eventq_cancel_keeps_fifo_ties;
      qc prop_eventq_sorted;
    ]);
    ("fault", [
      Alcotest.test_case "activation window" `Quick test_fault_window;
      Alcotest.test_case "window re-arm determinism" `Quick
        test_fault_window_rearm_determinism;
    ]);
    ("chaos", [
      Alcotest.test_case "parse/render round-trip" `Quick test_chaos_roundtrip;
      Alcotest.test_case "parse errors" `Quick test_chaos_parse_errors;
      Alcotest.test_case "to_plan rebases windows" `Quick
        test_chaos_to_plan_rebases_windows;
    ]);
  ]

let () = Alcotest.run "twine_sim" suite
