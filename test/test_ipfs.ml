(* Intel Protected File System simulation: backing store, protected file
   round-trips, integrity, cost accounting, stock-vs-optimised ablation. *)

open Twine_sgx
open Twine_ipfs

let setup ?variant ?cache_nodes ?epc_bytes () =
  let m = Machine.create ?epc_bytes ~seed:"ipfs-test" () in
  let e = Enclave.create m ~code:"ipfs" () in
  let backing = Backing.memory () in
  let fs = Protected_fs.create e backing ?variant ?cache_nodes () in
  (m, e, backing, fs)

(* --- Backing store --- *)

let test_backing_rw () =
  let b = Backing.memory () in
  Backing.write b "f" ~pos:0 "hello";
  Alcotest.(check string) "read back" "hello" (Backing.read b "f" ~pos:0 ~len:5);
  Backing.write b "f" ~pos:3 "LO!";
  Alcotest.(check string) "overwrite" "helLO!" (Backing.read b "f" ~pos:0 ~len:10);
  Backing.write b "f" ~pos:10 "gap";
  Alcotest.(check (option int)) "size with gap" (Some 13) (Backing.size b "f");
  Alcotest.(check string) "gap zero-filled" "\000\000\000\000"
    (Backing.read b "f" ~pos:6 ~len:4);
  Alcotest.(check string) "read past eof" "" (Backing.read b "f" ~pos:100 ~len:4)

let test_backing_delete_truncate () =
  let b = Backing.memory () in
  Backing.write b "x" ~pos:0 "0123456789";
  Backing.truncate b "x" 4;
  Alcotest.(check (option int)) "truncated" (Some 4) (Backing.size b "x");
  Alcotest.(check bool) "delete" true (Backing.delete b "x");
  Alcotest.(check bool) "gone" false (Backing.exists b "x");
  Alcotest.(check bool) "double delete" false (Backing.delete b "x")

let test_backing_directory () =
  let dir = Filename.temp_file "twine" "" in
  Sys.remove dir;
  let b = Backing.directory dir in
  Backing.write b "a/b" ~pos:0 "data";
  Alcotest.(check string) "dir read" "data" (Backing.read b "a/b" ~pos:0 ~len:4);
  Alcotest.(check bool) "key encoded, no subdir" true
    (Sys.file_exists (Filename.concat dir "a%2fb"));
  Alcotest.(check (list string)) "list" [ "a%2fb" ] (Backing.list b);
  ignore (Backing.delete b "a/b");
  Unix.rmdir dir

let test_backing_key_escapes () =
  (* hostile keys must stay inside the root as ordinary flat files *)
  let dir = Filename.temp_file "twine" "" in
  Sys.remove dir;
  let b = Backing.directory dir in
  let keys = [ ".."; "."; ""; "%2f"; "a/../b"; ".hidden" ] in
  List.iteri (fun i k -> Backing.write b k ~pos:0 (string_of_int i)) keys;
  List.iteri
    (fun i k ->
      Alcotest.(check string)
        (Printf.sprintf "key %S kept distinct" k)
        (string_of_int i)
        (Backing.read b k ~pos:0 ~len:8))
    keys;
  Alcotest.(check int) "one flat file per key" (List.length keys)
    (List.length (Backing.list b));
  let parent = Filename.dirname dir in
  Alcotest.(check bool) "\"..\" did not write outside the root" false
    (Sys.file_exists (Filename.concat parent "0"));
  List.iter (fun k -> ignore (Backing.delete b k)) keys;
  Unix.rmdir dir

let test_backing_short_read_zero_extend () =
  (* the directory backend must match the in-memory reference semantics:
     short read at EOF, zero-fill for gaps left by sparse writes *)
  let dir = Filename.temp_file "twine" "" in
  Sys.remove dir;
  let mem = Backing.memory () in
  let on_disk = Backing.directory dir in
  List.iter
    (fun b ->
      Backing.write b "f" ~pos:0 "head";
      Backing.write b "f" ~pos:10 "tail")
    [ mem; on_disk ];
  List.iter
    (fun (what, b) ->
      Alcotest.(check string) (what ^ ": gap reads as zeros")
        "head\000\000\000\000\000\000tail"
        (Backing.read b "f" ~pos:0 ~len:14);
      Alcotest.(check string) (what ^ ": short read at eof") "ail"
        (Backing.read b "f" ~pos:11 ~len:64);
      Alcotest.(check string) (what ^ ": read past eof") ""
        (Backing.read b "f" ~pos:100 ~len:8);
      Alcotest.(check (option int)) (what ^ ": size") (Some 14)
        (Backing.size b "f"))
    [ ("memory", mem); ("directory", on_disk) ];
  ignore (Backing.delete on_disk "f");
  Unix.rmdir dir

let test_backing_logged_records_mutations_only () =
  let log = Twine_sim.Crashpoint.create () in
  let b = Backing.logged log (Backing.memory ()) in
  Backing.write b "f" ~pos:0 "data";
  ignore (Backing.read b "f" ~pos:0 ~len:4);
  Backing.truncate b "f" 2;
  ignore (Backing.delete b "f");
  Alcotest.(check int) "write/truncate/delete logged, read not" 3
    (Twine_sim.Crashpoint.length log);
  Alcotest.(check (list string)) "op order"
    [ "write f @0 (4 bytes)"; "truncate f -> 2"; "delete f" ]
    (List.map Twine_sim.Crashpoint.describe (Twine_sim.Crashpoint.ops log))

(* --- Protected files: functional behaviour --- *)

let test_pfs_write_read_roundtrip () =
  let _, _, _, fs = setup () in
  let f = Protected_fs.open_file fs ~mode:`Trunc "db" in
  let n = Protected_fs.write f "hello protected world" in
  Alcotest.(check int) "write length" 21 n;
  Alcotest.(check int) "size" 21 (Protected_fs.file_size f);
  Alcotest.(check bool) "seek home" true (Protected_fs.seek f ~offset:0 ~whence:`Set = Ok 0);
  let buf = Bytes.create 64 in
  let r = Protected_fs.read f buf ~off:0 ~len:64 in
  Alcotest.(check int) "read length" 21 r;
  Alcotest.(check string) "content" "hello protected world" (Bytes.sub_string buf 0 r);
  Protected_fs.close f

let test_pfs_persist_reopen () =
  let _, _, _, fs = setup () in
  let f = Protected_fs.open_file fs ~mode:`Trunc "db" in
  ignore (Protected_fs.write f "persisted across open/close");
  Protected_fs.close f;
  let f2 = Protected_fs.open_file fs ~mode:`Rdonly "db" in
  let buf = Bytes.create 128 in
  let r = Protected_fs.read f2 buf ~off:0 ~len:128 in
  Alcotest.(check string) "reopen reads back" "persisted across open/close"
    (Bytes.sub_string buf 0 r);
  Protected_fs.close f2

let test_pfs_multi_node_file () =
  (* spans several 4 KiB nodes with a partial tail *)
  let _, _, _, fs = setup ~cache_nodes:4 () in
  let payload =
    String.init 20_000 (fun i -> Char.chr ((i * 7 / 13) land 0xff))
  in
  let f = Protected_fs.open_file fs ~mode:`Trunc "big" in
  ignore (Protected_fs.write f payload);
  Protected_fs.close f;
  let f2 = Protected_fs.open_file fs ~mode:`Rdonly "big" in
  let buf = Bytes.create 20_000 in
  let rec drain off =
    if off < 20_000 then begin
      let r = Protected_fs.read f2 buf ~off ~len:(min 3000 (20_000 - off)) in
      if r > 0 then drain (off + r)
    end
  in
  drain 0;
  Alcotest.(check bool) "20k roundtrip" true (Bytes.to_string buf = payload);
  Protected_fs.close f2

let test_pfs_random_access_overwrite () =
  let _, _, _, fs = setup () in
  let f = Protected_fs.open_file fs ~mode:`Trunc "r" in
  ignore (Protected_fs.write f (String.make 10_000 'a'));
  Alcotest.(check bool) "seek mid" true (Protected_fs.seek f ~offset:5_000 ~whence:`Set = Ok 5_000);
  ignore (Protected_fs.write f "XYZ");
  Protected_fs.close f;
  let f2 = Protected_fs.open_file fs ~mode:`Rdonly "r" in
  ignore (Protected_fs.seek f2 ~offset:4_999 ~whence:`Set);
  let buf = Bytes.create 5 in
  ignore (Protected_fs.read f2 buf ~off:0 ~len:5);
  Alcotest.(check string) "overwrite visible" "aXYZa" (Bytes.to_string buf);
  Protected_fs.close f2

let test_pfs_seek_semantics () =
  let _, _, _, fs = setup () in
  let f = Protected_fs.open_file fs ~mode:`Trunc "s" in
  ignore (Protected_fs.write f "0123456789");
  Alcotest.(check bool) "seek end" true (Protected_fs.seek f ~offset:0 ~whence:`End = Ok 10);
  Alcotest.(check bool) "seek cur back" true
    (Protected_fs.seek f ~offset:(-4) ~whence:`Cur = Ok 6);
  Alcotest.(check int) "tell" 6 (Protected_fs.tell f);
  (* sgx_fseek refuses to go beyond EOF (paper §IV-E) *)
  Alcotest.(check bool) "beyond eof refused" true
    (Result.is_error (Protected_fs.seek f ~offset:100 ~whence:`Set));
  Alcotest.(check bool) "negative refused" true
    (Result.is_error (Protected_fs.seek f ~offset:(-1) ~whence:`Set));
  Protected_fs.close f

let test_pfs_ciphertext_only_on_disk () =
  let _, _, backing, fs = setup () in
  let secret = "TOP-SECRET-PATTERN-1234567890" in
  let f = Protected_fs.open_file fs ~mode:`Trunc "leak" in
  ignore (Protected_fs.write f secret);
  Protected_fs.close f;
  let contains_sub hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun key ->
      match Backing.size backing key with
      | None -> ()
      | Some n ->
          let raw = Backing.read backing key ~pos:0 ~len:n in
          Alcotest.(check bool) (key ^ " has no plaintext") false
            (contains_sub raw secret))
    (Backing.list backing)

let test_pfs_tamper_detection () =
  let _, _, backing, fs = setup () in
  let f = Protected_fs.open_file fs ~mode:`Trunc "t" in
  ignore (Protected_fs.write f (String.make 5000 'q'));
  Protected_fs.close f;
  (* flip one ciphertext byte in the second node *)
  let raw = Backing.read backing "t" ~pos:4100 ~len:1 in
  Backing.write backing "t" ~pos:4100
    (String.make 1 (Char.chr (Char.code raw.[0] lxor 0x40)));
  let f2 = Protected_fs.open_file fs ~mode:`Rdonly "t" in
  let buf = Bytes.create 5000 in
  Alcotest.(check bool) "tampered node detected" true
    (try
       ignore (Protected_fs.read f2 buf ~off:0 ~len:5000);
       false
     with Protected_fs.Integrity_violation _ -> true)

let test_pfs_node_swap_detection () =
  (* swapping two ciphertext nodes within the file must fail: node index is
     authenticated data *)
  let _, _, backing, fs = setup () in
  let f = Protected_fs.open_file fs ~mode:`Trunc "swap" in
  ignore (Protected_fs.write f (String.make 4096 'A'));
  ignore (Protected_fs.write f (String.make 4096 'B'));
  Protected_fs.close f;
  let n0 = Backing.read backing "swap" ~pos:0 ~len:4096 in
  let n1 = Backing.read backing "swap" ~pos:4096 ~len:4096 in
  Backing.write backing "swap" ~pos:0 n1;
  Backing.write backing "swap" ~pos:4096 n0;
  let f2 = Protected_fs.open_file fs ~mode:`Rdonly "swap" in
  let buf = Bytes.create 8192 in
  Alcotest.(check bool) "swapped nodes detected" true
    (try
       ignore (Protected_fs.read f2 buf ~off:0 ~len:8192);
       false
     with Protected_fs.Integrity_violation _ -> true)

let test_pfs_header_tamper () =
  let _, _, backing, fs = setup () in
  let f = Protected_fs.open_file fs ~mode:`Trunc "h" in
  ignore (Protected_fs.write f "data");
  Protected_fs.close f;
  let meta = "h.pfsmeta" in
  let n = Option.get (Backing.size backing meta) in
  let raw = Backing.read backing meta ~pos:(n - 1) ~len:1 in
  Backing.write backing meta ~pos:(n - 1)
    (String.make 1 (Char.chr (Char.code raw.[0] lxor 1)));
  Alcotest.(check bool) "header tamper detected" true
    (try
       ignore (Protected_fs.open_file fs ~mode:`Rdonly "h");
       false
     with Protected_fs.Integrity_violation _ -> true)

let test_pfs_explicit_key () =
  let _, _, backing, fs = setup () in
  let key = String.make 16 'K' in
  let f = Protected_fs.open_file fs ~key ~mode:`Trunc "shared" in
  ignore (Protected_fs.write f "cross-enclave data");
  Protected_fs.close f;
  (* A different enclave (even a different machine) with the key can read. *)
  let m2 = Machine.create ~seed:"other-cpu" () in
  let e2 = Enclave.create m2 ~code:"other" () in
  let fs2 = Protected_fs.create e2 backing () in
  let f2 = Protected_fs.open_file fs2 ~key ~mode:`Rdonly "shared" in
  let buf = Bytes.create 64 in
  let r = Protected_fs.read f2 buf ~off:0 ~len:64 in
  Alcotest.(check string) "explicit key crosses machines" "cross-enclave data"
    (Bytes.sub_string buf 0 r);
  (* Without the key (auto derivation) the header must not authenticate. *)
  Alcotest.(check bool) "auto key fails" true
    (try
       ignore (Protected_fs.open_file fs2 ~mode:`Rdonly "shared");
       false
     with Protected_fs.Integrity_violation _ -> true)

let test_pfs_auto_key_is_machine_bound () =
  let backing = Backing.memory () in
  let m1 = Machine.create ~seed:"cpu-one" () in
  let e1 = Enclave.create m1 ~code:"same-code" () in
  let fs1 = Protected_fs.create e1 backing () in
  let f = Protected_fs.open_file fs1 ~mode:`Trunc "bound" in
  ignore (Protected_fs.write f "sealed to cpu-one");
  Protected_fs.close f;
  let m2 = Machine.create ~seed:"cpu-two" () in
  let e2 = Enclave.create m2 ~code:"same-code" () in
  let fs2 = Protected_fs.create e2 backing () in
  Alcotest.(check bool) "other cpu cannot open" true
    (try
       ignore (Protected_fs.open_file fs2 ~mode:`Rdonly "bound");
       false
     with Protected_fs.Integrity_violation _ -> true)

let test_pfs_delete_exists () =
  let _, _, _, fs = setup () in
  let f = Protected_fs.open_file fs ~mode:`Trunc "d" in
  ignore (Protected_fs.write f "x");
  Protected_fs.close f;
  Alcotest.(check bool) "exists" true (Protected_fs.exists fs "d");
  Alcotest.(check bool) "delete" true (Protected_fs.delete fs "d");
  Alcotest.(check bool) "gone" false (Protected_fs.exists fs "d");
  Alcotest.(check bool) "rdonly on missing raises" true
    (try
       ignore (Protected_fs.open_file fs ~mode:`Rdonly "d");
       false
     with Sys_error _ -> true)

let test_pfs_optimized_variant_roundtrip () =
  let _, _, _, fs = setup ~variant:Protected_fs.Optimized () in
  let payload = String.init 9000 (fun i -> Char.chr (i land 0xff)) in
  let f = Protected_fs.open_file fs ~mode:`Trunc "opt" in
  ignore (Protected_fs.write f payload);
  Protected_fs.close f;
  let f2 = Protected_fs.open_file fs ~mode:`Rdonly "opt" in
  let buf = Bytes.create 9000 in
  let rec drain off =
    if off < 9000 then
      let r = Protected_fs.read f2 buf ~off ~len:(9000 - off) in
      if r > 0 then drain (off + r)
  in
  drain 0;
  Alcotest.(check bool) "ccm variant roundtrip" true (Bytes.to_string buf = payload)

(* --- Cost-model behaviour (the §V-F effect) --- *)

let random_read_cost variant =
  let m, _, _, fs =
    let m = Machine.create ~seed:"cost" () in
    let e = Enclave.create m ~code:"ipfs" () in
    let fs = Protected_fs.create e (Backing.memory ()) ~variant ~cache_nodes:8 () in
    (m, e, (), fs)
  in
  let f = Protected_fs.open_file fs ~mode:`Trunc "c" in
  ignore (Protected_fs.write f (String.make (256 * 4096) 'z'));
  Protected_fs.flush f;
  let t0 = Machine.now_ns m in
  let drbg = Twine_crypto.Drbg.create ~seed:"reads" () in
  let buf = Bytes.create 64 in
  for _ = 1 to 300 do
    let pos = Twine_crypto.Drbg.int_below drbg (255 * 4096) in
    ignore (Protected_fs.seek f ~offset:pos ~whence:`Set);
    ignore (Protected_fs.read f buf ~off:0 ~len:64)
  done;
  let cost = Machine.now_ns m - t0 in
  Protected_fs.close f;
  (cost, m)

let test_optimized_is_faster () =
  let stock_cost, stock_m = random_read_cost Protected_fs.Stock in
  let opt_cost, opt_m = random_read_cost Protected_fs.Optimized in
  Alcotest.(check bool)
    (Printf.sprintf "optimised (%d ns) beats stock (%d ns)" opt_cost stock_cost)
    true (opt_cost < stock_cost);
  (* the stock variant spends time in memset; the optimised variant none *)
  let memset_ns m =
    match Twine_obs.Obs.hstat m.Machine.obs "ipfs.memset" with
    | Some h -> h.Twine_obs.Obs.sum
    | None -> 0
  in
  Alcotest.(check bool) "stock memsets" true (memset_ns stock_m > 0);
  Alcotest.(check int) "optimised never memsets" 0 (memset_ns opt_m)

let test_cache_hit_avoids_ocall () =
  let m, _, _, fs =
    let m = Machine.create ~seed:"hits" () in
    let e = Enclave.create m ~code:"ipfs" () in
    (m, e, (), Protected_fs.create e (Backing.memory ()) ~cache_nodes:8 ())
  in
  let f = Protected_fs.open_file fs ~mode:`Trunc "x" in
  ignore (Protected_fs.write f (String.make 4096 'p'));
  let ocall_charges () =
    match Twine_obs.Obs.hstat m.Machine.obs "ipfs.ocall" with
    | Some h -> h.Twine_obs.Obs.count
    | None -> 0
  in
  let ocalls_before = ocall_charges () in
  let buf = Bytes.create 16 in
  for _ = 1 to 50 do
    ignore (Protected_fs.seek f ~offset:0 ~whence:`Set);
    ignore (Protected_fs.read f buf ~off:0 ~len:16)
  done;
  Alcotest.(check int) "cached reads do not leave the enclave" ocalls_before
    (ocall_charges ());
  let hits, _ = Protected_fs.cache_stats fs in
  Alcotest.(check bool) "hits recorded" true (hits >= 50)

let prop_pfs_roundtrip =
  QCheck.Test.make ~name:"protected file write/read roundtrip" ~count:30
    QCheck.(pair (string_of_size QCheck.Gen.(int_range 0 12_000)) (int_range 1 6))
    (fun (payload, cache_nodes) ->
      let _, _, _, fs = setup ~cache_nodes () in
      let f = Protected_fs.open_file fs ~mode:`Trunc "prop" in
      ignore (Protected_fs.write f payload);
      Protected_fs.close f;
      let f2 = Protected_fs.open_file fs ~mode:`Rdonly "prop" in
      let buf = Bytes.create (String.length payload) in
      let rec drain off =
        if off < String.length payload then begin
          let r = Protected_fs.read f2 buf ~off ~len:(String.length payload - off) in
          if r > 0 then drain (off + r)
        end
      in
      drain 0;
      Protected_fs.close f2;
      Bytes.to_string buf = payload)

let qc = QCheck_alcotest.to_alcotest

let suite =
  [ ("backing", [
      Alcotest.test_case "read/write/gap" `Quick test_backing_rw;
      Alcotest.test_case "delete/truncate" `Quick test_backing_delete_truncate;
      Alcotest.test_case "directory backend" `Quick test_backing_directory;
      Alcotest.test_case "hostile key escapes" `Quick test_backing_key_escapes;
      Alcotest.test_case "short read / zero extend" `Quick
        test_backing_short_read_zero_extend;
      Alcotest.test_case "logged backend records mutations" `Quick
        test_backing_logged_records_mutations_only;
    ]);
    ("protected_fs", [
      Alcotest.test_case "roundtrip" `Quick test_pfs_write_read_roundtrip;
      Alcotest.test_case "persist/reopen" `Quick test_pfs_persist_reopen;
      Alcotest.test_case "multi-node" `Quick test_pfs_multi_node_file;
      Alcotest.test_case "random overwrite" `Quick test_pfs_random_access_overwrite;
      Alcotest.test_case "seek semantics" `Quick test_pfs_seek_semantics;
      Alcotest.test_case "ciphertext only on disk" `Quick test_pfs_ciphertext_only_on_disk;
      Alcotest.test_case "node tamper" `Quick test_pfs_tamper_detection;
      Alcotest.test_case "node swap" `Quick test_pfs_node_swap_detection;
      Alcotest.test_case "header tamper" `Quick test_pfs_header_tamper;
      Alcotest.test_case "explicit key" `Quick test_pfs_explicit_key;
      Alcotest.test_case "auto key machine-bound" `Quick test_pfs_auto_key_is_machine_bound;
      Alcotest.test_case "delete/exists" `Quick test_pfs_delete_exists;
      Alcotest.test_case "optimised variant roundtrip" `Quick test_pfs_optimized_variant_roundtrip;
      qc prop_pfs_roundtrip;
    ]);
    ("costs", [
      Alcotest.test_case "optimised beats stock" `Quick test_optimized_is_faster;
      Alcotest.test_case "cache hits avoid ocalls" `Quick test_cache_hit_avoids_ocall;
    ]);
  ]

let () = Alcotest.run "twine_ipfs" suite
