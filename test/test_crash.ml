(* Fault-injection plane and crash-point recovery (ISSUE 5).

   Covers: determinism of seeded fault plans (identical injection
   sequence AND identical ledger books across runs), the pager
   crash matrix (every recorded backing-op prefix recovers to a
   transaction boundary, including torn and unsynced-write variants),
   the protected-FS crash matrix (old-or-new header commit, recovery
   idempotence, never a spurious Integrity_violation), fuel-limit
   parity between the two engines, WASI hostcall containment, host
   OCALL retry under transient faults, and enclave poisoning after an
   injected abort. *)

open Twine_sim
open Twine_sgx
open Twine_sqldb

(* ------------------------------------------------------------------ *)
(* Shared SQL workload over a recording VFS                            *)
(* ------------------------------------------------------------------ *)

let sql_workload =
  [
    "INSERT INTO t (id, v) VALUES (1, 'a'), (2, 'b'), (3, 'c')";
    "UPDATE t SET v = 'B' WHERE id = 2";
    "INSERT INTO t (id, v) VALUES (4, 'd')";
    "DELETE FROM t WHERE id = 1";
  ]

let query_opt db =
  match Db.query db "SELECT id, v FROM t ORDER BY id" with
  | rows -> Some rows
  | exception Db.Sql_error _ -> None

(* Run the workload over [vfs]; returns the per-transaction snapshots
   [(ops_in_log_so_far, state)] in commit order. *)
let run_workload ?obs ~log vfs =
  let db = Db.open_db ~vfs ~cache_pages:8 ?obs "t.db" in
  ignore (Db.exec db "CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)");
  let snaps = ref [ (Crashpoint.length log, query_opt db) ] in
  List.iter
    (fun sql ->
      ignore (Db.exec db sql);
      snaps := (Crashpoint.length log, query_opt db) :: !snaps)
    sql_workload;
  Db.close db;
  List.rev !snaps

(* Apply one recorded op to a fresh VFS (prefix replay). *)
let apply_to_vfs vfs op =
  match op with
  | Crashpoint.Write { file; pos; data } ->
      let f = vfs.Svfs.v_open file in
      f.Svfs.v_write ~pos data;
      f.Svfs.v_close ()
  | Crashpoint.Truncate { file; size } ->
      let f = vfs.Svfs.v_open file in
      f.Svfs.v_truncate size;
      f.Svfs.v_close ()
  | Crashpoint.Delete { file } -> vfs.Svfs.v_delete file
  | Crashpoint.Sync _ -> ()

(* Old-or-new acceptance: after replaying [at] ops, recovery must land
   on the last snapshot whose ops all made the cut, or the next one
   (commit was in flight and every write survived). *)
let check_boundary ~what snaps ~at got =
  let committed =
    List.filter (fun (oplen, _) -> oplen <= at) snaps
    |> List.rev
    |> function (_, s) :: _ -> Some s | [] -> None
  in
  let next =
    List.find_opt (fun (oplen, _) -> oplen > at) snaps |> Option.map snd
  in
  let acceptable =
    (match committed with Some s -> [ s ] | None -> [ None; Some [] ])
    @ (match next with Some s -> [ s ] | None -> [])
  in
  if not (List.mem got acceptable) then
    Alcotest.failf "%s: cut %d recovered to a non-boundary state (%s)" what at
      (match got with
      | None -> "no table"
      | Some rows -> Printf.sprintf "%d rows" (List.length rows))

(* ------------------------------------------------------------------ *)
(* Fault-plan determinism                                              *)
(* ------------------------------------------------------------------ *)

let test_plan_determinism () =
  let plan =
    Fault.plan ~seed:"determinism"
      [
        Fault.rule ~prob:0.15 "svfs.write" (Fault.Delay 300);
        Fault.rule ~prob:0.10 "svfs.sync" (Fault.Delay 700);
      ]
  in
  let run_once () =
    let machine = Machine.create ~seed:"det" () in
    Machine.arm_faults machine plan;
    Fun.protect ~finally:Machine.disarm_faults (fun () ->
        let log = Crashpoint.create () in
        let vfs = Svfs.recording log (Svfs.memory ()) in
        let snaps = run_workload ~obs:(Machine.obs machine) ~log vfs in
        ( snaps,
          Fault.injections plan,
          Twine_obs.Ledger.to_string
            (Twine_obs.Ledger.snapshot (Machine.ledger machine)),
          Twine_obs.Ledger.ns (Machine.ledger machine) "fault.svfs.write"
          + Twine_obs.Ledger.ns (Machine.ledger machine) "fault.svfs.sync",
          Twine_obs.Ledger.balanced (Machine.ledger machine) ))
  in
  let snaps1, inj1, books1, fault_ns1, bal1 = run_once () in
  let snaps2, inj2, books2, _, _ = run_once () in
  Alcotest.(check bool) "workload deterministic" true (snaps1 = snaps2);
  Alcotest.(check bool) "injections fired" true (List.length inj1 > 0);
  Alcotest.(check bool) "same injection sequence" true (inj1 = inj2);
  Alcotest.(check string) "same ledger books" books1 books2;
  Alcotest.(check bool) "delays booked under fault.*" true (fault_ns1 > 0);
  Alcotest.(check bool) "books balance under injection" true bal1

let test_rearm_resets () =
  let plan = Fault.plan [ Fault.rule ~nth:2 "site.x" Fault.Fail ] in
  let fire () =
    Fault.arm plan;
    Fun.protect ~finally:Fault.disarm (fun () ->
        let a = Fault.consult "site.x" in
        let b = Fault.consult "site.x" in
        (a, b))
  in
  let r1 = fire () in
  let r2 = fire () in
  Alcotest.(check bool) "nth=2 fires on second op" true
    (r1 = (None, Some Fault.Fail));
  Alcotest.(check bool) "re-arm replays identically" true (r1 = r2);
  Alcotest.(check bool) "disarmed is free" true (Fault.consult "site.x" = None)

(* ------------------------------------------------------------------ *)
(* Pager crash matrix                                                  *)
(* ------------------------------------------------------------------ *)

let test_pager_crash_matrix () =
  let log = Crashpoint.create () in
  let snaps = run_workload ~log (Svfs.recording log (Svfs.memory ())) in
  let n = Crashpoint.length log in
  for at = 0 to n do
    List.iter
      (fun torn ->
        if (not torn) || at < n then begin
          let vfs = Svfs.memory () in
          Crashpoint.replay ~torn log ~at ~apply:(apply_to_vfs vfs);
          let db = Db.open_db ~vfs ~cache_pages:8 "t.db" in
          let got = query_opt db in
          Db.close db;
          check_boundary ~what:(if torn then "pager torn" else "pager") snaps
            ~at got
        end)
      [ false; true ]
  done

let test_pager_unsynced_matrix () =
  (* The journal is synced before any page write and the database is
     synced before the journal is invalidated; losing any subset of
     unsynced writes must therefore still recover to a boundary. *)
  let log = Crashpoint.create () in
  let snaps = run_workload ~log (Svfs.recording log (Svfs.memory ())) in
  let n = Crashpoint.length log in
  List.iter
    (fun seed ->
      for at = 0 to n do
        let vfs = Svfs.memory () in
        Crashpoint.replay_unsynced ~seed log ~at ~apply:(apply_to_vfs vfs);
        let db = Db.open_db ~vfs ~cache_pages:8 "t.db" in
        let got = query_opt db in
        Db.close db;
        check_boundary ~what:("pager unsynced " ^ seed) snaps ~at got
      done)
    [ "power-a"; "power-b"; "power-c" ]

(* ------------------------------------------------------------------ *)
(* Protected-FS crash matrix                                           *)
(* ------------------------------------------------------------------ *)

let pfs_stack backing =
  let machine = Machine.create ~seed:"pfs-crash" () in
  let enclave = Enclave.create machine ~code:"pfs-crash-test" () in
  (machine, Twine_ipfs.Protected_fs.create enclave backing ~cache_nodes:4 ())

let pfs_read_all fs path =
  if not (Twine_ipfs.Protected_fs.exists fs path) then None
  else
    (* [exists] may report a torn-first-commit remnant that [open_file]
       recovery resolves to "never existed" — that is the absent state *)
    match Twine_ipfs.Protected_fs.open_file fs ~mode:`Rdonly path with
    | exception Sys_error _ -> None
    | f ->
        let n = Twine_ipfs.Protected_fs.file_size f in
        let b = Bytes.create n in
        let got = Twine_ipfs.Protected_fs.read f b ~off:0 ~len:n in
        Twine_ipfs.Protected_fs.close f;
        Some (Bytes.sub_string b 0 got)

let test_pfs_crash_matrix () =
  (* commit three growing versions; every backing prefix must yield one
     of the committed versions — and recovery must be idempotent. *)
  let log = Crashpoint.create () in
  let backing = Twine_ipfs.Backing.logged log (Twine_ipfs.Backing.memory ()) in
  let _, fs = pfs_stack backing in
  let f = Twine_ipfs.Protected_fs.open_file fs ~mode:`Rdwr "a" in
  let versions = [ "aaaa"; "bbbbbbbb"; "cccccccccccc" ] in
  let boundaries = ref [] in
  List.iter
    (fun v ->
      ignore (Twine_ipfs.Protected_fs.seek f ~offset:0 ~whence:`Set);
      ignore (Twine_ipfs.Protected_fs.write f v);
      Twine_ipfs.Protected_fs.flush f;
      boundaries := (Crashpoint.length log, Some v) :: !boundaries)
    versions;
  Twine_ipfs.Protected_fs.close f;
  let boundaries = List.rev !boundaries in
  let n = Crashpoint.length log in
  for at = 0 to n do
    List.iter
      (fun torn ->
        if (not torn) || at < n then begin
          let b = Twine_ipfs.Backing.memory () in
          Crashpoint.replay ~torn log ~at
            ~apply:(fun op ->
              match op with
              | Crashpoint.Write { file; pos; data } ->
                  Twine_ipfs.Backing.write b file ~pos data
              | Crashpoint.Truncate { file; size } ->
                  Twine_ipfs.Backing.truncate b file size
              | Crashpoint.Delete { file } ->
                  ignore (Twine_ipfs.Backing.delete b file)
              | Crashpoint.Sync _ -> ());
          let got =
            try
              let _, fs1 = pfs_stack b in
              pfs_read_all fs1 "a"
            with Twine_ipfs.Protected_fs.Integrity_violation m ->
              Alcotest.failf "cut %d%s: spurious Integrity_violation (%s)" at
                (if torn then " torn" else "")
                m
          in
          let committed =
            List.filter (fun (oplen, _) -> oplen <= at) boundaries
            |> List.rev
            |> function (_, s) :: _ -> s | [] -> None
          in
          let next =
            List.find_opt (fun (oplen, _) -> oplen > at) boundaries
            |> Option.map snd
          in
          let acceptable =
            [ committed ] @ (match next with Some s -> [ s ] | None -> [])
          in
          if not (List.mem got acceptable) then
            Alcotest.failf "cut %d%s: content %s is not old-or-new" at
              (if torn then " torn" else "")
              (match got with None -> "<absent>" | Some s -> s);
          (* recovery idempotence: a second open over the same backing
             (recovery already ran) must see the identical content *)
          let _, fs2 = pfs_stack b in
          let again = pfs_read_all fs2 "a" in
          Alcotest.(check bool)
            (Printf.sprintf "cut %d%s: recover twice = once" at
               (if torn then " torn" else ""))
            true (got = again)
        end)
      [ false; true ]
  done

(* ------------------------------------------------------------------ *)
(* Fuel limits: engine parity                                          *)
(* ------------------------------------------------------------------ *)

let loop_wat =
  {|(module
      (func (export "spin")
        (local $i i32)
        (local.set $i (i32.const 1000000))
        (block
          (loop
            (br_if 1 (i32.eqz (local.get $i)))
            (local.set $i (i32.sub (local.get $i) (i32.const 1)))
            (br 0)))))|}

let test_fuel_parity () =
  let m = Twine_wasm.Wat.parse loop_wat in
  let run_engine aot =
    let inst = Twine_wasm.Interp.instantiate m in
    if aot then ignore (Twine_wasm.Aot.compile_instance inst);
    inst.Twine_wasm.Instance.fuel_limit <- 500;
    (match Twine_wasm.Interp.invoke inst "spin" [] with
    | _ -> Alcotest.fail "expected fuel-exhausted trap"
    | exception Twine_wasm.Values.Trap msg ->
        Alcotest.(check string) "trap message" "fuel exhausted" msg);
    Twine_wasm.Interp.fuel_used inst
  in
  let fi = run_engine false in
  let fa = run_engine true in
  Alcotest.(check int) "trap just past the limit" 501 fi;
  Alcotest.(check int) "engines trap at identical fuel" fi fa

let spin_start_wat =
  {|(module
      (memory (export "memory") 1)
      (func (export "_start") (loop (br 0))))|}

let test_runtime_fuel_limit () =
  let machine = Machine.create ~seed:"fuel" () in
  let rt = Twine.Runtime.create machine in
  Twine.Runtime.deploy rt (Twine_wasm.Wat.parse spin_start_wat);
  (match Twine.Runtime.run_safe ~fuel_limit:10_000 rt with
  | Error (Twine.Runtime.Guest_trap msg) ->
      Alcotest.(check bool) "fuel trap" true
        (String.length msg >= 14 && String.sub msg 0 14 = "fuel exhausted")
  | Ok _ -> Alcotest.fail "runaway guest did not trap"
  | Error (Twine.Runtime.Enclave_lost m) -> Alcotest.failf "enclave lost: %s" m);
  (* the trap unwound cleanly: the same enclave runs the next module *)
  Twine.Runtime.deploy rt (Twine_wasm.Wat.parse {|(module (memory (export "memory") 1) (func (export "_start")))|});
  (match Twine.Runtime.run_safe ~fuel_limit:10_000 rt with
  | Ok r -> Alcotest.(check int) "clean exit after trap" 0 r.Twine.Runtime.exit_code
  | Error _ -> Alcotest.fail "enclave not reusable after guest trap");
  Alcotest.check_raises "negative limit rejected"
    (Invalid_argument "Runtime.run: negative fuel limit") (fun () ->
      ignore (Twine.Runtime.run ~fuel_limit:(-1) rt))

(* ------------------------------------------------------------------ *)
(* WASI hostcall containment                                           *)
(* ------------------------------------------------------------------ *)

let mem_module =
  Twine_wasm.Wat.parse {|(module (memory (export "memory") 2))|}

let test_wasi_containment () =
  let obs = Twine_obs.Obs.create () in
  let boom =
    { Twine_wasi.Api.default_providers with stdout = (fun _ -> failwith "boom") }
  in
  let ctx = Twine_wasi.Api.create ~providers:boom ~obs () in
  let inst =
    Twine_wasm.Interp.instantiate ~imports:(Twine_wasi.Api.imports ctx)
      mem_module
  in
  Twine_wasi.Api.bind_memory ctx inst;
  let m = Twine_wasi.Api.memory ctx in
  let fns = Twine_wasi.Api.functions ctx in
  let call name args =
    match List.assoc_opt name fns with
    | Some f -> (
        match Twine_wasm.Interp.call_func f args with
        | [ Twine_wasm.Values.I32 e ] -> Int32.to_int e
        | _ -> Alcotest.fail "unexpected results")
    | None -> Alcotest.fail ("no such wasi function " ^ name)
  in
  (* iovec at 8 -> 3 bytes at 100 *)
  Twine_wasm.Memory.store32 m 8 100l;
  Twine_wasm.Memory.store32 m 12 3l;
  let args =
    Twine_wasm.Values.
      [ I32 1l; I32 8l; I32 1l; I32 20l ]
  in
  (* a provider exception must come back as EIO, not unwind the guest *)
  Alcotest.(check int) "contained -> EIO" Twine_wasi.Errno.eio
    (call "fd_write" args);
  Alcotest.(check int) "containment counted" 1
    (Twine_obs.Obs.value obs "wasi.fault.contained");
  (* an injected transient fault short-circuits to EAGAIN *)
  Fault.arm (Fault.plan [ Fault.rule ~nth:1 "wasi.fd_write" Fault.Fail ]);
  Fun.protect ~finally:Fault.disarm (fun () ->
      Alcotest.(check int) "injected -> EAGAIN" Twine_wasi.Errno.eagain
        (call "fd_write" args));
  Alcotest.(check int) "injection counted" 1
    (Twine_obs.Obs.value obs "wasi.fault.injected")

(* ------------------------------------------------------------------ *)
(* Host OCALL retry under transient faults                             *)
(* ------------------------------------------------------------------ *)

let clock_wat =
  {|(module
      (import "wasi_snapshot_preview1" "clock_time_get"
        (func $ctg (param i32 i64 i32) (result i32)))
      (memory (export "memory") 1)
      (func (export "_start")
        (drop (call $ctg (i32.const 0) (i64.const 0) (i32.const 8)))))|}

let test_host_ocall_retry () =
  let machine = Machine.create ~seed:"retry" () in
  let rt = Twine.Runtime.create machine in
  Twine.Runtime.deploy rt (Twine_wasm.Wat.parse clock_wat);
  Machine.arm_faults machine
    (Fault.plan
       [
         Fault.rule ~nth:1 "host.ocall" Fault.Fail;
         Fault.rule ~nth:2 "host.ocall" Fault.Fail;
       ]);
  let r =
    Fun.protect ~finally:Machine.disarm_faults (fun () ->
        Twine.Runtime.run rt)
  in
  Alcotest.(check int) "succeeded after retries" 0 r.Twine.Runtime.exit_code;
  (* each retry charged exponential virtual backoff under fault.retry *)
  Alcotest.(check int) "backoff booked" 3000
    (Twine_obs.Ledger.ns (Machine.ledger machine) "fault.retry");
  Alcotest.(check bool) "books balance" true
    (Twine_obs.Ledger.balanced (Machine.ledger machine))

(* ------------------------------------------------------------------ *)
(* Enclave poisoning                                                   *)
(* ------------------------------------------------------------------ *)

let test_enclave_poison () =
  let machine = Machine.create ~seed:"poison" () in
  let rt = Twine.Runtime.create machine in
  Twine.Runtime.deploy rt
    (Twine_wasm.Wat.parse
       {|(module (memory (export "memory") 1) (func (export "_start") unreachable))|});
  (* a guest trap is contained and the enclave stays usable *)
  (match Twine.Runtime.run_safe rt with
  | Error (Twine.Runtime.Guest_trap _) -> ()
  | _ -> Alcotest.fail "expected a guest trap");
  Alcotest.(check bool) "not poisoned by a guest trap" false
    (Enclave.poisoned (Twine.Runtime.enclave rt));
  (* an injected abort on the next ECALL poisons the enclave for good *)
  Machine.arm_faults machine
    (Fault.plan [ Fault.rule ~nth:1 "enclave.ecall" Fault.Crash ]);
  (match
     Fun.protect ~finally:Machine.disarm_faults (fun () ->
         Twine.Runtime.run_safe rt)
   with
  | Error (Twine.Runtime.Enclave_lost _) -> ()
  | _ -> Alcotest.fail "expected Enclave_lost on injected abort");
  Alcotest.(check bool) "poisoned" true
    (Enclave.poisoned (Twine.Runtime.enclave rt));
  (* ... even with the plan disarmed: the enclave must be relaunched *)
  (match Twine.Runtime.run_safe rt with
  | Error (Twine.Runtime.Enclave_lost _) -> ()
  | _ -> Alcotest.fail "poisoned enclave accepted another call")

let () =
  Alcotest.run "twine-crash"
    [
      ( "fault-plan",
        [
          Alcotest.test_case "seeded plan determinism" `Quick
            test_plan_determinism;
          Alcotest.test_case "re-arm replays, disarm frees" `Quick
            test_rearm_resets;
        ] );
      ( "pager-crash",
        [
          Alcotest.test_case "prefix + torn matrix" `Quick
            test_pager_crash_matrix;
          Alcotest.test_case "unsynced-write matrix" `Quick
            test_pager_unsynced_matrix;
        ] );
      ( "pfs-crash",
        [
          Alcotest.test_case "old-or-new + idempotent recovery" `Quick
            test_pfs_crash_matrix;
        ] );
      ( "fuel",
        [
          Alcotest.test_case "engine parity at the limit" `Quick
            test_fuel_parity;
          Alcotest.test_case "runtime fuel limit" `Quick
            test_runtime_fuel_limit;
        ] );
      ( "containment",
        [
          Alcotest.test_case "wasi errno containment" `Quick
            test_wasi_containment;
          Alcotest.test_case "host ocall retry" `Quick test_host_ocall_retry;
          Alcotest.test_case "enclave poison semantics" `Quick
            test_enclave_poison;
        ] );
    ]
