(* SGX simulator: EPC paging, enclave lifecycle, boundary crossings,
   sealing and attestation. *)

open Twine_sgx

let page = Costs.page_size

let fresh_machine ?costs ?epc_bytes () =
  Machine.create ?costs ?epc_bytes ~seed:"test-machine" ()

(* --- EPC --- *)

let test_epc_fault_then_hit () =
  let epc = Epc.create ~limit_bytes:(4 * page) () in
  let p i = Epc.page_of ~enclave_id:1 ~page_no:i in
  let faulted = match Epc.touch epc (p 0) with `Fault _ -> true | `Hit -> false in
  Alcotest.(check bool) "first touch faults" true faulted;
  Alcotest.(check bool) "second touch hits" true (Epc.touch epc (p 0) = `Hit);
  Alcotest.(check int) "one fault" 1 (Epc.faults epc)

let test_epc_eviction () =
  let epc = Epc.create ~limit_bytes:(2 * page) () in
  let p i = Epc.page_of ~enclave_id:1 ~page_no:i in
  ignore (Epc.touch epc (p 0));
  ignore (Epc.touch epc (p 1));
  (match Epc.touch epc (p 2) with
  | `Fault (Some victim) ->
      Alcotest.(check int) "LRU page is the victim" (p 0) victim
  | `Fault None -> Alcotest.fail "full EPC must evict"
  | `Hit -> Alcotest.fail "cold page cannot hit");
  let refault =
    match Epc.touch epc (p 0) with
    | `Fault (Some _) -> true  (* full EPC: the refault also evicts *)
    | `Fault None | `Hit -> false
  in
  Alcotest.(check bool) "evicted page refaults (and evicts)" true refault;
  Alcotest.(check int) "resident bounded" 2 (Epc.resident_pages epc)

(* Regression: the epc.evict trace instant must carry the *victim* page
   (the one encrypted out), not the incoming page that caused the fault.
   Before the fix, the event's enclave/page args described the incoming
   page, so cross-enclave interference was invisible and the timeline
   blamed the wrong enclave. *)
let test_epc_evict_trace_names_victim () =
  let m = fresh_machine ~epc_bytes:(2 * page) () in
  let tr = Machine.attach_tracer m in
  let epc = Epc.create ~obs:m.Machine.obs ~limit_bytes:(2 * page) () in
  (* enclave 1 owns both resident pages; enclave 2 faults one in *)
  ignore (Epc.touch epc (Epc.page_of ~enclave_id:1 ~page_no:7));
  ignore (Epc.touch epc (Epc.page_of ~enclave_id:1 ~page_no:8));
  ignore (Epc.touch epc (Epc.page_of ~enclave_id:2 ~page_no:3));
  let evicts =
    List.filter
      (fun (e : Twine_obs.Trace.event) -> e.Twine_obs.Trace.name = "epc.evict")
      (Twine_obs.Trace.events tr)
  in
  match evicts with
  | [ e ] ->
      let arg k = List.assoc k e.Twine_obs.Trace.args in
      Alcotest.(check int) "victim enclave is 1" 1 (arg "enclave");
      Alcotest.(check int) "victim page is the LRU page" 7 (arg "page");
      Alcotest.(check int) "faulting enclave recorded" 2 (arg "by")
  | l -> Alcotest.failf "expected exactly one epc.evict event, got %d" (List.length l)

let test_epc_victim_attribution () =
  (* shared-EPC interference: enclave 2's faults evict enclave 1's pages,
     and the books say so (victim counts, not toucher counts) *)
  let epc = Epc.create ~limit_bytes:(4 * page) () in
  for i = 0 to 3 do
    ignore (Epc.touch epc (Epc.page_of ~enclave_id:1 ~page_no:i))
  done;
  for i = 0 to 1 do
    ignore (Epc.touch epc (Epc.page_of ~enclave_id:2 ~page_no:i))
  done;
  Alcotest.(check int) "enclave 1 lost two pages" 2 (Epc.evictions_of epc 1);
  Alcotest.(check int) "enclave 2 lost none" 0 (Epc.evictions_of epc 2);
  Alcotest.(check int) "totals agree" 2 (Epc.evictions epc)

let test_epc_page_packing () =
  let p = Epc.page_of ~enclave_id:5 ~page_no:77 in
  Alcotest.(check int) "enclave decodes" 5 (Epc.enclave_of_page p);
  Alcotest.(check int) "page decodes" 77 (Epc.page_no_of_page p);
  let max_p = Epc.page_of ~enclave_id:Epc.max_enclave_id ~page_no:Epc.max_page_no in
  Alcotest.(check int) "max enclave decodes" Epc.max_enclave_id
    (Epc.enclave_of_page max_p);
  Alcotest.(check int) "max page decodes" Epc.max_page_no
    (Epc.page_no_of_page max_p);
  Alcotest.check_raises "page_no overflow would alias another enclave"
    (Invalid_argument "Epc.page_of: page_no out of range") (fun () ->
      ignore (Epc.page_of ~enclave_id:1 ~page_no:(Epc.max_page_no + 1)));
  Alcotest.check_raises "enclave_id overflow would corrupt the tag"
    (Invalid_argument "Epc.page_of: enclave_id out of range") (fun () ->
      ignore (Epc.page_of ~enclave_id:(Epc.max_enclave_id + 1) ~page_no:0));
  Alcotest.check_raises "negative page_no"
    (Invalid_argument "Epc.page_of: page_no out of range") (fun () ->
      ignore (Epc.page_of ~enclave_id:1 ~page_no:(-1)))

let test_epc_release_enclave () =
  let epc = Epc.create ~limit_bytes:(8 * page) () in
  ignore (Epc.touch epc (Epc.page_of ~enclave_id:1 ~page_no:0));
  ignore (Epc.touch epc (Epc.page_of ~enclave_id:2 ~page_no:0));
  Epc.release_enclave epc 1;
  Alcotest.(check int) "only enclave 2 remains" 1 (Epc.resident_pages epc);
  Alcotest.(check bool) "enclave 2 still resident" true
    (Epc.touch epc (Epc.page_of ~enclave_id:2 ~page_no:0) = `Hit)

(* Regression: teardown hygiene. release_enclave must purge the
   eviction-provenance table on BOTH sides — entries whose victim owner
   is the destroyed enclave (they would leak forever, and misfire if
   the id were ever reused) and entries naming it as evictor (a
   destroyed enclave must never be blamed for a future refault). The
   serving fleet's failover path relies on this: a relaunched
   replacement starts with clean blame books. *)
let test_epc_release_purges_provenance () =
  let cross_entry () =
    (* enclave 1 owns both resident pages; enclave 2's fault evicts
       enclave 1's LRU page, leaving a provenance entry (owner 1, by 2) *)
    let epc = Epc.create ~limit_bytes:(2 * page) () in
    let fired = ref [] in
    Epc.set_refault_hook epc
      (Some (fun ~owner ~evictor -> fired := (owner, evictor) :: !fired));
    ignore (Epc.touch epc (Epc.page_of ~enclave_id:1 ~page_no:0));
    ignore (Epc.touch epc (Epc.page_of ~enclave_id:1 ~page_no:1));
    ignore (Epc.touch epc (Epc.page_of ~enclave_id:2 ~page_no:0));
    (epc, fired)
  in
  (* sanity: with no release, the owner's refault blames enclave 2 *)
  let epc, fired = cross_entry () in
  ignore (Epc.touch epc (Epc.page_of ~enclave_id:1 ~page_no:0));
  Alcotest.(check (list (pair int int))) "refault blames the evictor"
    [ (1, 2) ] !fired;
  Alcotest.(check int) "cross refault counted" 1 (Epc.cross_refaults epc);
  (* victim-side purge: destroy the owner; its pending entry must die
     with it, so a reused id refaulting the same page stays blameless *)
  let epc, fired = cross_entry () in
  Epc.release_enclave epc 1;
  Alcotest.(check int) "owner's pages dropped" 1 (Epc.resident_pages epc);
  ignore (Epc.touch epc (Epc.page_of ~enclave_id:1 ~page_no:0));
  Alcotest.(check (list (pair int int))) "purged victim entry never fires"
    [] !fired;
  Alcotest.(check int) "no cross refault" 0 (Epc.cross_refaults epc);
  (* evictor-side purge: destroy the evictor; the surviving owner's
     refault must not blame the destroyed enclave *)
  let epc, fired = cross_entry () in
  Epc.release_enclave epc 2;
  ignore (Epc.touch epc (Epc.page_of ~enclave_id:1 ~page_no:0));
  Alcotest.(check (list (pair int int)))
    "destroyed evictor never blamed" [] !fired;
  Alcotest.(check int) "no cross refault either" 0 (Epc.cross_refaults epc)

(* --- Enclave lifecycle & crossings --- *)

let test_enclave_identity () =
  let m = fresh_machine () in
  let e1 = Enclave.create m ~code:"codeA" () in
  let e2 = Enclave.create m ~code:"codeA" () in
  let e3 = Enclave.create m ~code:"codeB" () in
  Alcotest.(check string) "same code, same measurement"
    (Enclave.measurement e1) (Enclave.measurement e2);
  Alcotest.(check bool) "different code differs" true
    (Enclave.measurement e1 <> Enclave.measurement e3);
  Alcotest.(check bool) "distinct ids" true (Enclave.id e1 <> Enclave.id e2)

let test_enclave_launch_cost_scales () =
  let m = fresh_machine () in
  let t0 = Machine.now_ns m in
  let _small = Enclave.create m ~heap_bytes:(64 * 1024) ~code:"c" () in
  let small_cost = Machine.now_ns m - t0 in
  let t1 = Machine.now_ns m in
  let _large = Enclave.create m ~heap_bytes:(16 * 1024 * 1024) ~code:"c" () in
  let large_cost = Machine.now_ns m - t1 in
  Alcotest.(check bool) "bigger enclave launches slower" true (large_cost > small_cost)

let test_ecall_ocall_costs () =
  let m = fresh_machine () in
  let e = Enclave.create m ~code:"c" () in
  let t0 = Machine.now_ns m in
  let v = Enclave.ecall e (fun _ -> 41 + 1) in
  Alcotest.(check int) "ecall returns" 42 v;
  let ecall_cost = Machine.now_ns m - t0 in
  let expected = 2 * Costs.cycles_ns m.costs m.costs.transition_cycles in
  (* cycle charges carry their sub-ns remainder forward, so a pair of
     crossings lands within 1 ns of the rounded per-crossing figure *)
  let within label tol want got =
    Alcotest.(check bool)
      (Printf.sprintf "%s (want %d +/-%d, got %d)" label want tol got)
      true
      (abs (got - want) <= tol)
  in
  within "ecall = 2 crossings" 1 expected ecall_cost;
  Alcotest.(check int) "transition count" 2 (Enclave.transitions e);
  (* nested ecall is free *)
  let t1 = Machine.now_ns m in
  ignore (Enclave.ecall e (fun _ -> Enclave.ecall e (fun _ -> ())));
  within "nested ecall charges once" 1 expected (Machine.now_ns m - t1);
  (* ocall requires being inside *)
  Alcotest.check_raises "ocall outside"
    (Invalid_argument "Enclave.ocall: not inside an ecall") (fun () ->
      Enclave.ocall e (fun () -> ()));
  let t2 = Machine.now_ns m in
  Enclave.ecall e (fun _ -> Enclave.ocall e (fun () -> ()));
  within "ecall+ocall = 4 crossings" 2 (2 * expected) (Machine.now_ns m - t2)

let test_enclave_alloc_touch_faults () =
  (* EPC smaller than the allocation: touching it all causes faults and
     advances the clock. *)
  let m = fresh_machine ~epc_bytes:(16 * page) () in
  let e = Enclave.create m ~heap_bytes:0 ~code:"c" () in
  let addr = Enclave.alloc e (64 * page) in
  let before = Epc.faults m.epc in
  let t0 = Machine.now_ns m in
  Enclave.touch e ~addr ~len:(64 * page);
  Alcotest.(check bool) "faults happened" true (Epc.faults m.epc > before);
  Alcotest.(check bool) "time charged" true (Machine.now_ns m > t0);
  (* working set fits: re-touching the last 8 pages is free *)
  let t1 = Machine.now_ns m in
  Enclave.touch e ~addr:(addr + (56 * page)) ~len:(8 * page);
  Alcotest.(check int) "hits are free" t1 (Machine.now_ns m)

let test_software_mode_no_fault_cost () =
  let m = fresh_machine ~epc_bytes:(4 * page) () in
  Machine.set_software_mode m;
  let e = Enclave.create m ~heap_bytes:0 ~code:"c" () in
  let addr = Enclave.alloc e (16 * page) in
  let fault_ns () =
    match Twine_obs.Obs.hstat m.obs "sgx.epc_fault" with
    | Some h -> h.Twine_obs.Obs.sum
    | None -> 0
  in
  let fault_ns_before = fault_ns () in
  Enclave.touch e ~addr ~len:(16 * page);
  Alcotest.(check int) "no paging cost in software mode" fault_ns_before
    (fault_ns ())

let test_destroyed_enclave () =
  let m = fresh_machine () in
  let e = Enclave.create m ~code:"c" () in
  Enclave.destroy e;
  Alcotest.check_raises "ecall after destroy" Enclave.Destroyed (fun () ->
      Enclave.ecall e (fun _ -> ()));
  Enclave.destroy e (* idempotent *)

let test_enclave_random_deterministic () =
  let mk () =
    let m = fresh_machine () in
    Enclave.random (Enclave.create m ~code:"c" ()) 32
  in
  Alcotest.(check string) "same machine+code reproduce" (mk ()) (mk ());
  let m = fresh_machine () in
  let e = Enclave.create m ~code:"c" () in
  Alcotest.(check bool) "stream advances" true (Enclave.random e 16 <> Enclave.random e 16)

(* --- Sealing --- *)

let test_seal_roundtrip () =
  let m = fresh_machine () in
  let e = Enclave.create m ~code:"sealer" () in
  let blob = Seal.seal e "secret data" in
  Alcotest.(check (option string)) "unseal" (Some "secret data") (Seal.unseal e blob)

let test_seal_other_enclave_fails () =
  let m = fresh_machine () in
  let e1 = Enclave.create m ~code:"codeA" () in
  let e2 = Enclave.create m ~code:"codeB" () in
  let blob = Seal.seal e1 "secret" in
  Alcotest.(check (option string)) "other enclave cannot unseal" None
    (Seal.unseal e2 blob)

let test_seal_other_machine_fails () =
  let m1 = Machine.create ~seed:"cpu1" () in
  let m2 = Machine.create ~seed:"cpu2" () in
  let e1 = Enclave.create m1 ~code:"codeA" () in
  let e2 = Enclave.create m2 ~code:"codeA" () in
  let blob = Seal.seal e1 "secret" in
  Alcotest.(check (option string)) "same code, other cpu cannot unseal" None
    (Seal.unseal e2 blob)

let test_seal_mrsigner_policy () =
  let m = fresh_machine () in
  let e1 = Enclave.create m ~signer:"vendor" ~code:"v1" () in
  let e2 = Enclave.create m ~signer:"vendor" ~code:"v2" () in
  let e3 = Enclave.create m ~signer:"other" ~code:"v1" () in
  let blob = Seal.seal e1 ~policy:Seal.Mr_signer "shared" in
  Alcotest.(check (option string)) "same signer unseals" (Some "shared")
    (Seal.unseal e2 blob);
  Alcotest.(check (option string)) "other signer cannot" None (Seal.unseal e3 blob)

let test_seal_label_separation () =
  let m = fresh_machine () in
  let e = Enclave.create m ~code:"c" () in
  let blob = Seal.seal e ~label:"db" "x" in
  Alcotest.(check (option string)) "wrong label fails" None
    (Seal.unseal e ~label:"log" blob);
  Alcotest.(check (option string)) "right label works" (Some "x")
    (Seal.unseal e ~label:"db" blob)

let test_seal_tamper () =
  let m = fresh_machine () in
  let e = Enclave.create m ~code:"c" () in
  let blob = Seal.seal e "payload" in
  let bad = Bytes.of_string blob in
  Bytes.set bad (Bytes.length bad - 1)
    (Char.chr (Char.code (Bytes.get bad (Bytes.length bad - 1)) lxor 1));
  Alcotest.(check (option string)) "tampered blob rejected" None
    (Seal.unseal e (Bytes.to_string bad))

(* --- Attestation --- *)

let test_local_report () =
  let m = fresh_machine () in
  let e = Enclave.create m ~code:"app" () in
  let r = Attestation.report e ~data:"channel-binding" in
  Alcotest.(check bool) "verifies on same machine" true (Attestation.verify_report m r);
  let m2 = Machine.create ~seed:"other-cpu" () in
  Alcotest.(check bool) "fails on other machine" false (Attestation.verify_report m2 r)

let test_report_tamper () =
  let m = fresh_machine () in
  let e = Enclave.create m ~code:"app" () in
  let r = Attestation.report e ~data:"d" in
  let forged = { r with Attestation.measurement = String.make 32 'x' } in
  Alcotest.(check bool) "forged measurement fails" false
    (Attestation.verify_report m forged)

let test_remote_quote () =
  let m = fresh_machine () in
  let e = Enclave.create m ~code:"app" () in
  let service = Attestation.service_for m in
  let q = Attestation.quote e ~data:"nonce42" in
  Alcotest.(check bool) "service accepts" true (Attestation.verify_quote service q);
  Alcotest.(check bool) "pinned measurement accepted" true
    (Attestation.verify_quote service
       ~expected_measurement:(Enclave.measurement e) q);
  Alcotest.(check bool) "wrong measurement rejected" false
    (Attestation.verify_quote service ~expected_measurement:(String.make 32 'z') q);
  let rogue = Attestation.service_for (Machine.create ~seed:"rogue" ()) in
  Alcotest.(check bool) "unregistered cpu rejected" false
    (Attestation.verify_quote rogue q)

let test_report_data_too_long () =
  let m = fresh_machine () in
  let e = Enclave.create m ~code:"app" () in
  Alcotest.check_raises "data > 64"
    (Invalid_argument "Attestation: report data > 64 bytes") (fun () ->
      ignore (Attestation.report e ~data:(String.make 65 'a')))

(* --- Costs --- *)

let test_costs_software_mode () =
  let c = Costs.default in
  let s = Costs.software_mode c in
  Alcotest.(check int) "no fault cost" 0 s.epc_fault_cycles;
  Alcotest.(check bool) "cheaper transitions" true
    (s.transition_cycles < c.transition_cycles)

let test_costs_conversions () =
  Alcotest.(check int) "cycles at 3.8GHz" 263 (Costs.cycles_ns Costs.default 1000);
  Alcotest.(check int) "bytes_ns rounds" 3 (Costs.bytes_ns 0.25 10)

let suite =
  [ ("epc", [
      Alcotest.test_case "fault then hit" `Quick test_epc_fault_then_hit;
      Alcotest.test_case "lru eviction" `Quick test_epc_eviction;
      Alcotest.test_case "evict trace names victim" `Quick
        test_epc_evict_trace_names_victim;
      Alcotest.test_case "victim attribution" `Quick test_epc_victim_attribution;
      Alcotest.test_case "page packing bounds" `Quick test_epc_page_packing;
      Alcotest.test_case "release enclave" `Quick test_epc_release_enclave;
      Alcotest.test_case "release purges provenance" `Quick
        test_epc_release_purges_provenance;
    ]);
    ("enclave", [
      Alcotest.test_case "identity" `Quick test_enclave_identity;
      Alcotest.test_case "launch cost scales" `Quick test_enclave_launch_cost_scales;
      Alcotest.test_case "ecall/ocall costs" `Quick test_ecall_ocall_costs;
      Alcotest.test_case "alloc+touch faults" `Quick test_enclave_alloc_touch_faults;
      Alcotest.test_case "software mode paging free" `Quick test_software_mode_no_fault_cost;
      Alcotest.test_case "destroyed" `Quick test_destroyed_enclave;
      Alcotest.test_case "trusted randomness" `Quick test_enclave_random_deterministic;
    ]);
    ("seal", [
      Alcotest.test_case "roundtrip" `Quick test_seal_roundtrip;
      Alcotest.test_case "other enclave" `Quick test_seal_other_enclave_fails;
      Alcotest.test_case "other machine" `Quick test_seal_other_machine_fails;
      Alcotest.test_case "mrsigner policy" `Quick test_seal_mrsigner_policy;
      Alcotest.test_case "label separation" `Quick test_seal_label_separation;
      Alcotest.test_case "tamper" `Quick test_seal_tamper;
    ]);
    ("attestation", [
      Alcotest.test_case "local report" `Quick test_local_report;
      Alcotest.test_case "report tamper" `Quick test_report_tamper;
      Alcotest.test_case "remote quote" `Quick test_remote_quote;
      Alcotest.test_case "oversized data" `Quick test_report_data_too_long;
    ]);
    ("costs", [
      Alcotest.test_case "software mode" `Quick test_costs_software_mode;
      Alcotest.test_case "conversions" `Quick test_costs_conversions;
    ]);
  ]

let () = Alcotest.run "twine_sgx" suite
